#include "common/half.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace qserve {
namespace {

TEST(Half, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(float(Half(float(i))), float(i)) << i;
  }
}

TEST(Half, RoundTripPreservesRepresentableValues) {
  // Every binary16 bit pattern that is finite must round-trip exactly.
  for (uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const Half h = Half::from_bits(static_cast<uint16_t>(bits));
    const float f = float(h);
    if (std::isnan(f)) continue;
    if (std::isinf(f)) continue;
    EXPECT_EQ(Half(f).bits(), bits) << "bits=" << bits;
  }
}

TEST(Half, RoundsToNearestEven) {
  // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half; ties to
  // even keep 1.0.
  EXPECT_EQ(float(Half(1.0f + 0.00048828125f)), 1.0f);
  // 1.0 + 3*2^-11 ties between mantissa 1 (odd) and 2 (even): even wins.
  EXPECT_EQ(float(Half(1.0f + 3 * 0.00048828125f)), 1.0f + 2 * 0.0009765625f);
  // A value just above the tie rounds up off the tie as usual.
  EXPECT_EQ(float(Half(1.0f + 3.1f * 0.00048828125f)),
            1.0f + 2 * 0.0009765625f);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(float(Half(70000.0f))));
  EXPECT_TRUE(std::isinf(float(Half(-70000.0f))));
  EXPECT_EQ(float(Half(65504.0f)), 65504.0f);  // max normal half
}

TEST(Half, SubnormalsPreserved) {
  const float smallest = 5.960464477539063e-08f;  // 2^-24
  EXPECT_EQ(float(Half(smallest)), smallest);
  EXPECT_EQ(float(Half(smallest / 2.0f)), 0.0f);  // underflow
}

TEST(Half, NegativeZeroKeepsSign) {
  EXPECT_TRUE(std::signbit(float(Half(-0.0f))));
}

TEST(Half, NanPropagates) {
  EXPECT_TRUE(std::isnan(float(Half(std::nanf("")))));
}

TEST(Half, PrecisionLossMatchesEpsilon) {
  // Relative error of a half round-trip is bounded by 2^-11.
  for (float v : {0.1f, 3.14159f, 123.456f, 9999.5f, 1e-3f}) {
    const float r = to_half_precision(v);
    EXPECT_LE(std::abs(r - v) / v, 1.0f / 2048.0f) << v;
  }
}

TEST(Half, CompoundAssignRoundsEachStep) {
  Half h(1.0f);
  h += 0.0004f;  // below half precision at 1.0 -> rounds away
  EXPECT_EQ(float(h), 1.0f);
  h += 1.0f;
  EXPECT_EQ(float(h), 2.0f);
}

}  // namespace
}  // namespace qserve
