// Speculative decoding subsystem: per-row logit plumbing through the batched
// executor (verify spans score all k+1 positions bitwise-identically to
// sequential decode steps), KV rollback via truncate_sequence, and the
// draft/verify engine loop whose greedy token streams are bitwise identical
// to the non-speculative engine across ISAs, thread counts, and preemption
// churn — in both high-acceptance (draft == target) and near-zero-acceptance
// (divergent draft) regimes.
#include <gtest/gtest.h>

#include <map>

#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "serving/engine.h"

namespace qserve {
namespace {

struct Fixture {
  ModelWeights target;     // 2-layer toy model
  ModelWeights same;       // the same weights (acceptance == 1 draft)
  ModelWeights divergent;  // different seed (acceptance ~ 0 draft)
  Fixture()
      : target(make_synthetic_weights(toy_config(2))),
        same(target),
        divergent(make_synthetic_weights(toy_config(2), [] {
          SyntheticOptions o;
          o.seed = 777;
          return o;
        }())) {}
};

const Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

struct Workload {
  std::vector<std::vector<int>> prompts;
  std::vector<int> max_new;
};

Workload random_workload(Rng& rng, int n_requests) {
  Workload w;
  for (int i = 0; i < n_requests; ++i) {
    std::vector<int> prompt(static_cast<size_t>(rng.uniform_int(1, 24)));
    for (auto& t : prompt) t = rng.uniform_int(0, 511);
    w.prompts.push_back(std::move(prompt));
    w.max_new.push_back(rng.uniform_int(1, 10));
  }
  return w;
}

struct RunOutcome {
  std::vector<std::vector<int>> streams;
  EngineStats stats;
};

// draft_weights == nullptr runs the non-speculative baseline.
RunOutcome run_engine(const Workload& w, const ModelWeights* draft_weights,
                      int lookahead_k, int64_t kv_max_pages = 1 << 20) {
  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = kv_max_pages;
  QuantizedModel model(fixture().target, scheme);
  std::unique_ptr<QuantizedModel> draft;
  if (draft_weights != nullptr)
    draft = std::make_unique<QuantizedModel>(
        *draft_weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  cfg.scheduler.prefill_chunk = 8;
  cfg.speculative.lookahead_k = lookahead_k;
  ServingEngine engine(&model, draft.get(), cfg);
  std::vector<int> ids;
  for (size_t i = 0; i < w.prompts.size(); ++i)
    ids.push_back(engine.submit(w.prompts[i], w.max_new[i]));
  RunOutcome out;
  out.stats = engine.run_to_completion();
  for (int id : ids) out.streams.push_back(engine.request(id).generated);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
  if (draft) {
    EXPECT_EQ(draft->kv_cache().pages_in_use(), 0);
  }
  return out;
}

// --- model level: per-row logits and rollback --------------------------------

TEST(QuantizedModel, VerifySpanLogitsMatchSequentialDecodesBitwise) {
  // A k+1-row decode span with logit_rows = k+1 must reproduce, at every
  // position, the exact logits of sequential decode_step calls — the
  // property the speculative verify forward rests on. The span travels the
  // gather+attention_prefill path while decode_step uses the fused kernel,
  // so this also pins the two attention paths to the same bits.
  const auto& f = fixture();
  QuantizedModel seq_m(f.target, QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel bat_m(f.target, QuantSchemeConfig::qserve_w4a8kv4_g128());

  const std::vector<int> ctx = {3, 1, 4, 1, 5, 9};
  const std::vector<int> cand = {42, 17, 8, 100};  // pending + 3 candidates

  const int ss = seq_m.begin_sequence();
  const int bs = bat_m.begin_sequence();
  seq_m.prefill(ss, ctx);
  bat_m.prefill(bs, ctx);

  std::vector<Tensor> expect;
  for (int t : cand) expect.push_back(seq_m.decode_step(ss, t));

  BatchedStep step;
  step.chunks.push_back({bs, cand, static_cast<int>(ctx.size()),
                         static_cast<int>(cand.size())});
  const Tensor got = bat_m.forward_step(step);
  ASSERT_EQ(got.rows(), static_cast<int64_t>(cand.size()));
  for (size_t i = 0; i < cand.size(); ++i)
    for (int64_t v = 0; v < got.cols(); ++v)
      ASSERT_EQ(got.at2(static_cast<int64_t>(i), v), expect[i][v])
          << "position " << i;
}

TEST(QuantizedModel, TruncateThenReappendMatchesNeverAppendedBitwise) {
  // Rollback: append a rejected tail, truncate it away, then continue — the
  // continued logits must equal a model that never saw the tail. Covers
  // mid-page truncation (the boundary page's slots are rewritten).
  const auto& f = fixture();
  QuantizedModel clean(f.target, QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel rolled(f.target, QuantSchemeConfig::qserve_w4a8kv4_g128());

  const std::vector<int> ctx = {7, 2, 9, 4};
  const int sc = clean.begin_sequence();
  const int sr = rolled.begin_sequence();
  clean.prefill(sc, ctx);
  rolled.prefill(sr, ctx);

  // rolled speculates 5 tokens (crossing the 16-token page boundary is
  // covered by the longer continuation below), rejects all but the first.
  BatchedStep spec;
  spec.chunks.push_back({sr, {11, 13, 17, 19, 23}, 4, 5});
  rolled.forward_step(spec);
  ASSERT_EQ(rolled.seq_pos(sr), 9);
  rolled.truncate_sequence(sr, 5);
  ASSERT_EQ(rolled.seq_pos(sr), 5);

  clean.decode_step(sc, 11);

  // Continue both with the same 14 tokens (crosses a page boundary).
  for (int t = 0; t < 14; ++t) {
    const Tensor a = clean.decode_step(sc, 50 + t);
    const Tensor b = rolled.decode_step(sr, 50 + t);
    for (int64_t v = 0; v < a.numel(); ++v) ASSERT_EQ(b[v], a[v]) << t;
  }

  // Truncating below / above the valid range fails loudly.
  EXPECT_THROW(rolled.truncate_sequence(sr, 100), CheckError);
  EXPECT_THROW(rolled.truncate_sequence(sr, -1), CheckError);
}

TEST(QuantizedModel, LogitRowSelectionShapesAndValidation) {
  const auto& f = fixture();
  QuantizedModel m(f.target, QuantSchemeConfig::qserve_w4a8kv4_g128());
  const int a = m.begin_sequence();
  const int b = m.begin_sequence();

  // Mixed logit_rows: a 3-token chunk wanting no logits (mid-prompt prefill)
  // stacked with a 2-token chunk wanting both rows.
  BatchedStep step;
  step.chunks.push_back({a, {1, 2, 3}, 0, /*logit_rows=*/0});
  step.chunks.push_back({b, {4, 5}, 0, /*logit_rows=*/2});
  const Tensor logits = m.forward_step(step);
  EXPECT_EQ(logits.rows(), 2);
  EXPECT_EQ(logits.cols(), m.config().vocab);

  // The two rows must equal chunk b's per-position logits computed alone.
  QuantizedModel solo(f.target, QuantSchemeConfig::qserve_w4a8kv4_g128());
  const int s = solo.begin_sequence();
  const Tensor l0 = solo.prefill_chunk(s, {4}, 0);
  const Tensor l1 = solo.decode_step(s, 5);
  for (int64_t v = 0; v < logits.cols(); ++v) {
    ASSERT_EQ(logits.at2(0, v), l0[v]);
    ASSERT_EQ(logits.at2(1, v), l1[v]);
  }

  // All chunks logit_rows = 0: the LM head is skipped, result is [0, vocab].
  BatchedStep none;
  none.chunks.push_back({a, {6}, 3, 0});
  const Tensor empty = m.forward_step(none);
  EXPECT_EQ(empty.rows(), 0);
  EXPECT_EQ(empty.cols(), m.config().vocab);

  // logit_rows outside [0, |tokens|] fails loudly.
  BatchedStep bad;
  bad.chunks.push_back({b, {7}, 2, 2});
  EXPECT_THROW(m.forward_step(bad), CheckError);
  BatchedStep neg;
  neg.chunks.push_back({b, {7}, 2, -1});
  EXPECT_THROW(m.forward_step(neg), CheckError);
}

// --- engine level: bitwise identity ------------------------------------------

TEST(ServingEngineSpec, MatchesBaselineBitwiseAcrossIsasAndThreads) {
  // The speculative engine's greedy streams must equal the non-speculative
  // engine's for every ISA the host can run and at 1 and 8 threads, in both
  // acceptance regimes: a draft identical to the target (every proposal
  // accepted, steps advance k+1 tokens) and a divergent draft (most
  // proposals rejected, constant rollback).
  Rng rng(4321);
  const Workload w = random_workload(rng, 6);
  for (const cpu::Isa isa :
       {cpu::Isa::kScalar, cpu::Isa::kAvx2, cpu::Isa::kAvx512}) {
    cpu::set_isa(isa);
    for (const int threads : {1, 8}) {
      set_num_threads(threads);
      const auto baseline = run_engine(w, nullptr, 0);
      const auto accept_all = run_engine(w, &fixture().same, 3);
      const auto reject_most = run_engine(w, &fixture().divergent, 2);
      EXPECT_EQ(baseline.streams, accept_all.streams)
          << "identical draft, isa=" << cpu::isa_name(isa)
          << " threads=" << threads;
      EXPECT_EQ(baseline.streams, reject_most.streams)
          << "divergent draft, isa=" << cpu::isa_name(isa)
          << " threads=" << threads;
      // An identical draft always matches the target's argmax.
      EXPECT_DOUBLE_EQ(accept_all.stats.acceptance_rate, 1.0);
      EXPECT_GT(accept_all.stats.proposed_tokens, 0);
      // Speculation must finish in fewer engine steps when everything is
      // accepted (k+1 tokens per verify step vs 1).
      EXPECT_LT(accept_all.stats.steps, baseline.stats.steps);
    }
  }
  set_num_threads(0);
  cpu::clear_isa_override();
}

TEST(ServingEngineSpec, PreemptionChurnMatchesBaseline) {
  // A 6-page pool forces eviction and recompute-on-resume while verify
  // steps append and roll back k+1-token spans — the new concurrent KV
  // mutation path composing with the old one. Streams must stay identical
  // and both pools must drain to zero.
  Workload w;
  for (int i = 0; i < 3; ++i) {
    w.prompts.push_back(std::vector<int>(8, 2 + i));
    w.max_new.push_back(18 + 4 * i);
  }
  const auto baseline = run_engine(w, nullptr, 0, /*kv_max_pages=*/6);
  const auto spec = run_engine(w, &fixture().same, 2, /*kv_max_pages=*/6);
  const auto spec_div =
      run_engine(w, &fixture().divergent, 2, /*kv_max_pages=*/6);
  EXPECT_GE(spec.stats.preemptions, 1);
  EXPECT_EQ(baseline.streams, spec.streams);
  EXPECT_EQ(baseline.streams, spec_div.streams);
}

// --- stats -------------------------------------------------------------------

TEST(ServingEngineSpec, StatsCountMultiTokenStepsHonestly) {
  Workload w;
  w.prompts.push_back(std::vector<int>(6, 3));
  w.max_new.push_back(12);
  w.prompts.push_back(std::vector<int>(4, 5));
  w.max_new.push_back(9);

  const auto spec = run_engine(w, &fixture().same, 3);
  int64_t generated = 0;
  for (const auto& s : spec.streams)
    generated += static_cast<int64_t>(s.size());
  // Every generated token is either a first token or a decode token —
  // multi-token verify steps must not double- or under-count.
  EXPECT_EQ(spec.stats.first_tokens, 2);
  EXPECT_EQ(spec.stats.decode_tokens, generated - 2);
  EXPECT_GT(spec.stats.speculative_steps, 0);
  EXPECT_EQ(spec.stats.proposed_tokens, 3 * spec.stats.verify_forwards);
  EXPECT_LE(spec.stats.accepted_tokens, spec.stats.proposed_tokens);
  // Acceptance working means fewer target verify forwards than decode
  // tokens emitted — the whole point of speculation.
  EXPECT_LT(spec.stats.target_forwards_per_decode_token, 1.0);
  EXPECT_GT(spec.stats.target_forwards_per_decode_token, 0.0);
  // Per-request counters sum to the engine totals.
  // (streams already checked; run again to read request state)
  QuantizedModel model(fixture().target,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel draft(fixture().same,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.speculative.lookahead_k = 3;
  ServingEngine engine(&model, &draft, cfg);
  std::vector<int> ids;
  for (size_t i = 0; i < w.prompts.size(); ++i)
    ids.push_back(engine.submit(w.prompts[i], w.max_new[i]));
  const EngineStats stats = engine.drain();
  int64_t proposed = 0, accepted = 0;
  for (int id : ids) {
    proposed += engine.request(id).draft_proposed;
    accepted += engine.request(id).draft_accepted;
  }
  EXPECT_EQ(proposed, stats.proposed_tokens);
  EXPECT_EQ(accepted, stats.accepted_tokens);
}

TEST(ServingEngineSpec, StreamingCallbacksSurviveSpeculation) {
  // Multi-token verify emissions must still fire on_token once per token in
  // stream order and on_finish exactly once.
  QuantizedModel model(fixture().target,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel draft(fixture().same,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.speculative.lookahead_k = 4;
  ServingEngine engine(&model, &draft, cfg);
  std::map<int, std::vector<int>> streamed;
  std::map<int, int> finishes;
  RequestOptions opts;
  std::vector<int> ids;
  for (int i = 0; i < 3; ++i) {
    opts.max_new_tokens = 5 + 3 * i;
    ids.push_back(engine.submit(
        std::vector<int>(3 + i, 2 + i), opts,
        [&](const Request& r, int token) {
          EXPECT_EQ(r.generated.back(), token);
          streamed[r.id].push_back(token);
          EXPECT_EQ(streamed[r.id].size(), r.generated.size());
        },
        [&](const Request& r) { ++finishes[r.id]; }));
  }
  engine.drain();
  for (int id : ids) {
    EXPECT_EQ(streamed[id], engine.request(id).generated);
    EXPECT_EQ(finishes[id], 1);
  }
}

// --- validation --------------------------------------------------------------

TEST(ServingEngineSpec, ValidationRejectsBadSpeculativeConfigs) {
  const auto& f = fixture();
  QuantizedModel model(f.target, QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel draft(f.same, QuantSchemeConfig::qserve_w4a8kv4_g128());
  {
    EngineConfig bad;
    bad.temperature = 0.7f;  // speculation is greedy-only
    bad.speculative.lookahead_k = 2;
    EXPECT_THROW(ServingEngine(&model, &draft, bad), CheckError);
  }
  {
    EngineConfig bad;
    bad.speculative.lookahead_k = 0;
    EXPECT_THROW(ServingEngine(&model, &draft, bad), CheckError);
  }
  {
    // Vocabulary mismatch between draft and target.
    ModelConfig small = toy_config(1);
    small.vocab = 128;
    ModelWeights sw = make_synthetic_weights(small);
    QuantizedModel tiny(sw, QuantSchemeConfig::qserve_w4a8kv4_g128());
    EngineConfig cfg;
    cfg.speculative.lookahead_k = 2;
    EXPECT_THROW(ServingEngine(&model, &tiny, cfg), CheckError);
  }
  // A null draft is simply the non-speculative engine, whatever the config.
  EngineConfig ok;
  ok.temperature = 0.5f;
  ServingEngine plain(&model, nullptr, ok);
}

}  // namespace
}  // namespace qserve
