#include "kernels/attention.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qserve {
namespace {

Tensor random_tensor(int64_t m, int64_t d, uint64_t seed) {
  Rng rng(seed);
  Tensor t({m, d});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal();
  return t;
}

TEST(Attention, SingleTokenIsIdentityOverValues) {
  // One query, one key: softmax over a single score = 1 -> output = value.
  AttentionConfig cfg{1, 1, 8, false};
  const Tensor q = random_tensor(1, 8, 1);
  const Tensor k = random_tensor(1, 8, 2);
  const Tensor v = random_tensor(1, 8, 3);
  const Tensor o = attention_prefill(q, k, v, cfg);
  EXPECT_LT(max_abs_diff(o, v), 1e-6f);
}

TEST(Attention, AttendsToMatchingKey) {
  // Query aligned with key 1 and orthogonal to key 0 -> output ~ value 1.
  AttentionConfig cfg{1, 1, 4, false};
  Tensor q({1, 4}), k({2, 4}), v({2, 4});
  q.at2(0, 0) = 20.0f;               // large magnitude -> sharp softmax
  k.at2(0, 1) = 20.0f;               // orthogonal
  k.at2(1, 0) = 20.0f;               // aligned
  for (int64_t c = 0; c < 4; ++c) {
    v.at2(0, c) = -1.0f;
    v.at2(1, c) = 1.0f;
  }
  // Single new token attending over both cached keys.
  std::vector<float> out(4);
  attention_decode_token(q.row(0), k, v, cfg, out.data());
  for (float x : out) EXPECT_NEAR(x, 1.0f, 1e-3f);
}

TEST(Attention, CausalMaskBlocksFuture) {
  // With two new tokens, token 0 must ignore token 1's key/value: make
  // token 1's value huge; token 0's output must not contain it.
  AttentionConfig cfg{1, 1, 4, false};
  const Tensor q = random_tensor(2, 4, 4);
  const Tensor k = random_tensor(2, 4, 5);
  Tensor v({2, 4});
  for (int64_t c = 0; c < 4; ++c) {
    v.at2(0, c) = 1.0f;
    v.at2(1, c) = 1000.0f;
  }
  const Tensor o = attention_prefill(q, k, v, cfg);
  for (int64_t c = 0; c < 4; ++c) EXPECT_NEAR(o.at2(0, c), 1.0f, 1e-4f);
}

TEST(Attention, GqaSharesKvHeads) {
  // 4 query heads, 2 kv heads: heads 0,1 read kv head 0; heads 2,3 read kv
  // head 1. Give the two kv heads different constant values.
  AttentionConfig cfg{4, 2, 4, false};
  const Tensor q = random_tensor(1, 16, 6);
  const Tensor k = random_tensor(3, 8, 7);
  Tensor v({3, 8});
  for (int64_t t = 0; t < 3; ++t)
    for (int64_t c = 0; c < 8; ++c)
      v.at2(t, c) = c < 4 ? 2.0f : -3.0f;  // head 0 => 2, head 1 => -3
  std::vector<float> out(16);
  attention_decode_token(q.row(0), k, v, cfg, out.data());
  for (int h = 0; h < 4; ++h) {
    const float expect = h < 2 ? 2.0f : -3.0f;
    for (int d = 0; d < 4; ++d) EXPECT_NEAR(out[h * 4 + d], expect, 1e-4f);
  }
}

TEST(Attention, DecodeMatchesLastPrefillRow) {
  AttentionConfig cfg{2, 2, 8, false};
  const Tensor q = random_tensor(4, 16, 8);
  const Tensor k = random_tensor(4, 16, 9);
  const Tensor v = random_tensor(4, 16, 10);
  const Tensor o = attention_prefill(q, k, v, cfg);
  std::vector<float> out(16);
  attention_decode_token(q.row(3), k, v, cfg, out.data());
  for (int64_t c = 0; c < 16; ++c)
    EXPECT_NEAR(out[size_t(c)], o.at2(3, c), 1e-5f);
}

TEST(Attention, Fp16AccumulationIsCloseButNotIdentical) {
  AttentionConfig fp32{4, 4, 32, false};
  AttentionConfig fp16{4, 4, 32, true};
  const Tensor q = random_tensor(1, 128, 11);
  const Tensor k = random_tensor(64, 128, 12);
  const Tensor v = random_tensor(64, 128, 13);
  std::vector<float> o32(128), o16(128);
  attention_decode_token(q.row(0), k, v, fp32, o32.data());
  attention_decode_token(q.row(0), k, v, fp16, o16.data());
  float diff = 0, any = 0;
  for (int i = 0; i < 128; ++i) {
    diff = std::max(diff, std::abs(o32[size_t(i)] - o16[size_t(i)]));
    any += std::abs(o32[size_t(i)]);
  }
  EXPECT_GT(diff, 0.0f);       // FP16 rounding is visible...
  EXPECT_LT(diff, 0.05f);      // ...but small (§5.3 relies on this)
  EXPECT_GT(any, 0.0f);
}

TEST(Attention, SoftmaxWeightsSumToOneImplied) {
  // Constant values => output equals that constant regardless of scores.
  AttentionConfig cfg{2, 2, 4, false};
  const Tensor q = random_tensor(1, 8, 14);
  const Tensor k = random_tensor(16, 8, 15);
  const Tensor v = Tensor::full({16, 8}, 3.25f);
  std::vector<float> out(8);
  attention_decode_token(q.row(0), k, v, cfg, out.data());
  for (float x : out) EXPECT_NEAR(x, 3.25f, 1e-4f);
}

}  // namespace
}  // namespace qserve
