// Quantizer unit + property tests, including the §4.1 protective-range
// theorem and its counterexample.
#include "quant/quantize.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quant/w4a16.h"

namespace qserve {
namespace {

Tensor random_tensor(int64_t n, int64_t k, uint64_t seed, float scale = 1.0f,
                     float df = 5.0f) {
  Rng rng(seed);
  Tensor t({n, k});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.heavy_tailed(scale, df);
  return t;
}

// --- W8 per-channel ------------------------------------------------------------

TEST(W8PerChannel, CodesInRangeAndLowError) {
  const Tensor w = random_tensor(16, 64, 1);
  const auto q = quantize_w8_per_channel(w);
  for (int64_t i = 0; i < q.qw.numel(); ++i) {
    EXPECT_GE(q.qw[i], -127);
    EXPECT_LE(q.qw[i], 127);
  }
  const Tensor deq = dequantize(q);
  // Max error bounded by half a quantization step per channel.
  for (int64_t r = 0; r < w.rows(); ++r)
    for (int64_t c = 0; c < w.cols(); ++c)
      EXPECT_LE(std::abs(w.at2(r, c) - deq.at2(r, c)), 0.51f * q.s[r] + 1e-6f);
}

TEST(W8PerChannel, ZeroRowHandled) {
  Tensor w({2, 8});  // all zeros
  const auto q = quantize_w8_per_channel(w);
  const Tensor deq = dequantize(q);
  for (int64_t i = 0; i < deq.numel(); ++i) EXPECT_EQ(deq[i], 0.0f);
}

// --- W4 per-channel ------------------------------------------------------------

TEST(W4PerChannel, CodesAndZeroPointsInRange) {
  const Tensor w = random_tensor(8, 32, 2);
  const auto q = quantize_w4_per_channel(w);
  for (int64_t r = 0; r < q.n(); ++r) {
    EXPECT_LE(q.z[r], 15);
    for (int64_t c = 0; c < q.k(); ++c) EXPECT_LE(get_u4(q.qw, r, c), 15);
  }
}

TEST(W4PerChannel, AsymmetricRangeCoversSkewedRows) {
  // A strictly positive row must still quantize well (symmetric INT4 would
  // waste half its range).
  Tensor w({1, 16});
  for (int64_t c = 0; c < 16; ++c) w[c] = 1.0f + 0.1f * float(c);
  const auto q = quantize_w4_per_channel(w);
  const Tensor deq = dequantize(q);
  for (int64_t c = 0; c < 16; ++c)
    EXPECT_NEAR(deq[c], w[c], 0.51f * q.s[0] + 1e-5f);
}

TEST(W4PerChannel, SzwEqualsZTimesScale) {
  const Tensor w = random_tensor(8, 32, 3);
  const auto q = quantize_w4_per_channel(w);
  for (int64_t r = 0; r < q.n(); ++r)
    EXPECT_NEAR(q.szw[r], float(q.z[r]) * q.s[r], 1e-2f * q.s[r] + 1e-6f);
}

// --- progressive group quantization ------------------------------------------------

class ProgressiveProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProgressiveProperty, Level1CodesNeverLeaveInt8WithProtectiveRange) {
  // The §4.1 theorem: with level-1 range [-119,119], the level-2 round trip
  // (q-z)*s1 always stays within [-128, 127].
  const Tensor w = random_tensor(16, 256, GetParam(), 0.5f, 3.0f);
  ProgressiveOptions opt;
  opt.group = 64;
  const auto q = quantize_progressive(w, opt);
  const I32Tensor codes = dequantize_level1_codes(q);
  for (int64_t i = 0; i < codes.numel(); ++i) {
    EXPECT_GE(codes[i], -128);
    EXPECT_LE(codes[i], 127);
  }
}

TEST_P(ProgressiveProperty, ScalesAndZerosInHardwareRanges) {
  const Tensor w = random_tensor(8, 256, GetParam() + 100, 2.0f);
  const auto q = quantize_progressive(w, {.group = 128});
  for (int64_t i = 0; i < q.s1.numel(); ++i) {
    EXPECT_GE(q.s1[i], 1);
    EXPECT_LE(q.s1[i], 17);
    EXPECT_LE(q.z[i], 15);
  }
}

TEST_P(ProgressiveProperty, ReconstructionErrorBounded) {
  const Tensor w = random_tensor(8, 256, GetParam() + 200);
  const auto q = quantize_progressive(w, {.group = 128});
  const Tensor deq = dequantize(q);
  for (int64_t r = 0; r < w.rows(); ++r) {
    // Two rounding stages plus zero-point rounding: conservatively bounded
    // by (1.5*s1 + 1) quantization steps of the level-1 scale.
    for (int64_t c = 0; c < w.cols(); ++c) {
      const int s1 = q.s1.at2(r, c / q.group);
      EXPECT_LE(std::abs(w.at2(r, c) - deq.at2(r, c)),
                (1.5f * float(s1) + 1.0f) * q.s0[r] + 1e-5f)
          << "row " << r << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgressiveProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Progressive, PaperCounterexampleOverflowsWithoutProtectiveRange) {
  // §4.1's worked example: level-1 codes spanning [-113, 120] yield s1=16,
  // z=7, and 120 dequantizes to (15-7)*16 = 128 > 127. Reproduce it by
  // constructing weights that hit those codes with level1_range=127.
  Tensor w({1, 128});
  // Make abs-max map to 127 exactly: w = code * (amax/127).
  const float s = 1.0f / 127.0f;
  for (int64_t c = 0; c < 128; ++c) w[c] = float(-113 + (c % 8)) * s;
  w[64] = 120.0f * s;
  w[0] = -113.0f * s;
  w[127] = 127.0f * s;  // force the level-1 scale to amax/127

  ProgressiveOptions naive;
  naive.group = 64;
  naive.level1_range = 127;
  const auto q = quantize_progressive(w, naive);
  const I32Tensor codes = dequantize_level1_codes(q);
  int32_t worst = 0;
  for (int64_t i = 0; i < codes.numel(); ++i)
    worst = std::max(worst, std::abs(codes[i]));
  EXPECT_GT(worst, 127) << "naive range should overflow INT8";

  ProgressiveOptions prot;
  prot.group = 64;
  const auto q2 = quantize_progressive(w, prot);
  const I32Tensor codes2 = dequantize_level1_codes(q2);
  for (int64_t i = 0; i < codes2.numel(); ++i) {
    EXPECT_GE(codes2[i], -128);
    EXPECT_LE(codes2[i], 127);
  }
}

TEST(Progressive, GroupSizeMustDivideK) {
  const Tensor w = random_tensor(4, 100, 9);
  EXPECT_THROW(quantize_progressive(w, {.group = 64}), CheckError);
}

TEST(Progressive, ConstantGroupQuantizesExactly) {
  Tensor w = Tensor::full({2, 128}, 0.5f);
  const auto q = quantize_progressive(w, {.group = 128});
  const Tensor deq = dequantize(q);
  for (int64_t i = 0; i < deq.numel(); ++i) EXPECT_NEAR(deq[i], 0.5f, 0.01f);
}

// --- two-level baseline (VSQuant/DoubleQuant) ---------------------------------------

TEST(TwoLevelBaseline, GroupDequantLeavesInt8Range) {
  // The §4.1 distinction: in the VSQuant/DoubleQuant flow, (q-z)*s1 is NOT
  // bounded by the INT8 range (s1 quantizes an arbitrary FP scale, reaching
  // 255), so the intermediate cannot feed INT8 tensor cores. Progressive
  // quantization's protective construction is what makes that possible.
  const Tensor w = random_tensor(8, 512, 11, 1.0f, 3.0f);
  const auto q = quantize_two_level_baseline(w, 128);
  const U8Tensor codes = unpack_u4(q.qw);
  int out_of_int8 = 0;
  for (int64_t r = 0; r < codes.rows(); ++r) {
    for (int64_t c = 0; c < codes.cols(); ++c) {
      const int64_t g = c / q.group;
      const int prod = (int(codes.at2(r, c)) - int(q.z.at2(r, g))) *
                       int(q.s1.at2(r, g));
      if (prod < -128 || prod > 127) ++out_of_int8;
    }
  }
  EXPECT_GT(out_of_int8, 0);
}

TEST(TwoLevelBaseline, ReconstructionComparableToProgressive) {
  const Tensor w = random_tensor(8, 256, 12);
  const double mse_prog = mse(w, dequantize(quantize_progressive(w, {})));
  const double mse_base = mse(w, dequantize(quantize_two_level_baseline(w, 128)));
  // Both are 4-bit schemes; errors must be the same order of magnitude.
  EXPECT_LT(mse_prog, mse_base * 4.0);
  EXPECT_LT(mse_base, mse_prog * 4.0);
}

// --- activations ------------------------------------------------------------------

TEST(ActQuant, PerTokenSymmetricRoundTrip) {
  const Tensor x = random_tensor(6, 64, 13, 3.0f);
  const auto q = quantize_acts_per_token(x);
  const Tensor deq = dequantize(q);
  for (int64_t t = 0; t < x.rows(); ++t)
    for (int64_t c = 0; c < x.cols(); ++c)
      EXPECT_LE(std::abs(x.at2(t, c) - deq.at2(t, c)), 0.51f * q.s[t] + 1e-5f);
}

TEST(ActQuant, TokenSumMatchesUnquantizedInput) {
  // tX must be the sum of the *unquantized* activations (Eq. 13 replaces
  // QX·SX with X).
  const Tensor x = random_tensor(4, 32, 14);
  const auto q = quantize_acts_per_token(x);
  for (int64_t t = 0; t < x.rows(); ++t) {
    float sum = 0;
    for (int64_t c = 0; c < x.cols(); ++c) sum += x.at2(t, c);
    EXPECT_NEAR(q.token_sum[t], sum, std::abs(sum) * 1e-3f + 1e-2f);
  }
}

TEST(ActQuant, Int4CodesInRange) {
  const Tensor x = random_tensor(4, 32, 15);
  const auto q = quantize_acts_per_token_int4(x);
  for (int64_t i = 0; i < q.q.numel(); ++i) {
    EXPECT_GE(q.q[i], -7);
    EXPECT_LE(q.q[i], 7);
  }
}

// --- W4A16 ------------------------------------------------------------------------

TEST(W4A16, GroupScalesAreFp16Values) {
  const Tensor w = random_tensor(8, 256, 16);
  const auto q = quantize_w4a16(w, 128);
  for (int64_t i = 0; i < q.s.numel(); ++i)
    EXPECT_EQ(q.s[i], to_half_precision(q.s[i]));
}

TEST(W4A16, BetterThanPerChannelW4) {
  // Per-group quantization must beat per-channel on heavy-tailed weights.
  const Tensor w = random_tensor(16, 512, 17, 1.0f, 3.0f);
  const double mse_group = mse(w, dequantize(quantize_w4a16(w, 128)));
  const double mse_chan = mse(w, dequantize(quantize_w4_per_channel(w)));
  EXPECT_LT(mse_group, mse_chan);
}

// --- W4A4 -------------------------------------------------------------------------

TEST(W4A4, SymmetricCodesInRange) {
  const Tensor w = random_tensor(8, 256, 18);
  const auto q = quantize_w4a4_per_group(w, 128);
  for (int64_t i = 0; i < q.qw.numel(); ++i) {
    EXPECT_GE(q.qw[i], -7);
    EXPECT_LE(q.qw[i], 7);
  }
}

}  // namespace
}  // namespace qserve
