// Quantized executor: scheme plumbing, KV-precision effects, accuracy
// ordering across precisions (the Table-2 claim at toy scale), and
// prefill/decode streaming consistency.
#include "model/quantized_model.h"

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "model/reference_model.h"

namespace qserve {
namespace {

struct Fixture {
  ModelWeights weights;
  ReferenceModel ref;
  std::vector<int> tokens;
  Tensor ref_logits;

  Fixture() : weights(make_synthetic_weights(toy_config(2))), ref(&weights) {
    for (int i = 0; i < 20; ++i) tokens.push_back((11 * i + 5) % 512);
    ref_logits = ref.forward(tokens);
  }
};

const Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

double logits_rel_err(const Tensor& a, const Tensor& b) {
  double num = 0, den = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    num += std::abs(double(a[i]) - b[i]);
    den += std::abs(double(b[i]));
  }
  return num / den;
}

TEST(QuantizedModel, Fp16SchemeNearlyExact) {
  const auto& f = fixture();
  QuantizedModel qm(f.weights, QuantSchemeConfig::fp16());
  const Tensor logits = qm.forward(f.tokens);
  EXPECT_LT(logits_rel_err(logits, f.ref_logits), 0.01);
}

TEST(QuantizedModel, W8A8CloseToReference) {
  const auto& f = fixture();
  QuantizedModel qm(f.weights, QuantSchemeConfig::trt_w8a8());
  EXPECT_LT(logits_rel_err(qm.forward(f.tokens), f.ref_logits), 0.08);
}

TEST(QuantizedModel, PrecisionErrorOrdering) {
  // W8A8 <= W4A8KV4-g128 <= W4A4: the central accuracy claim at toy scale.
  const auto& f = fixture();
  QuantizedModel m8(f.weights, QuantSchemeConfig::trt_w8a8());
  QuantizedModel m48(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel m44(f.weights, QuantSchemeConfig::atom_w4a4());
  const double e8 = logits_rel_err(m8.forward(f.tokens), f.ref_logits);
  const double e48 = logits_rel_err(m48.forward(f.tokens), f.ref_logits);
  const double e44 = logits_rel_err(m44.forward(f.tokens), f.ref_logits);
  EXPECT_LT(e8, e48);
  EXPECT_LT(e48, e44);
}

TEST(QuantizedModel, PerGroupBeatsPerChannel) {
  const auto& f = fixture();
  QuantizedModel mg(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel mc(f.weights, QuantSchemeConfig::qserve_w4a8kv4_per_channel());
  EXPECT_LT(logits_rel_err(mg.forward(f.tokens), f.ref_logits),
            logits_rel_err(mc.forward(f.tokens), f.ref_logits));
}

TEST(QuantizedModel, Kv4WorseThanKv8WithoutSmoothing) {
  // Key outliers make naive KV4 visibly worse than KV8 (Fig. 16 step 5).
  const auto& f = fixture();
  QuantSchemeConfig kv8 = QuantSchemeConfig::qserve_w4a8kv4_g128();
  kv8.kv = KvPrecision::kInt8;
  QuantizedModel m8(f.weights, kv8);
  QuantizedModel m4(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EXPECT_LT(logits_rel_err(m8.forward(f.tokens), f.ref_logits),
            logits_rel_err(m4.forward(f.tokens), f.ref_logits));
}

TEST(QuantizedModel, PrefillThenDecodeMatchesBatchForward) {
  const auto& f = fixture();
  QuantizedModel qm(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());

  // Batch forward over the full sequence.
  const Tensor batch_logits = qm.forward(f.tokens);

  // Streaming: prefill all but last, then decode the last token.
  const int seq = qm.begin_sequence();
  std::vector<int> prompt(f.tokens.begin(), f.tokens.end() - 1);
  qm.prefill(seq, prompt);
  const Tensor dec = qm.decode_step(seq, f.tokens.back());
  qm.end_sequence(seq);

  const int64_t last = batch_logits.rows() - 1;
  for (int64_t v = 0; v < 64; ++v)
    EXPECT_NEAR(dec[v], batch_logits.at2(last, v),
                2e-2f * std::abs(batch_logits.at2(last, v)) + 2e-2f);
}

TEST(QuantizedModel, ChunkedPrefillBitwiseMatchesMonolithic) {
  // prefill_chunk over uneven slices must reproduce the monolithic prefill
  // exactly: same KV page contents (per-token quantization is independent of
  // chunking), same causal attention (the mask offsets against the cached
  // prefix), same final logits bit for bit.
  const auto& f = fixture();
  QuantizedModel mono(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel chunked(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());

  const int sm = mono.begin_sequence();
  const Tensor lm = mono.prefill(sm, f.tokens);

  const int sc = chunked.begin_sequence();
  Tensor lc;
  int pos = 0;
  for (const int step : {7, 1, 9, 3}) {  // 7+1+9+3 = 20 = |tokens|
    std::vector<int> slice(f.tokens.begin() + pos,
                           f.tokens.begin() + pos + step);
    lc = chunked.prefill_chunk(sc, slice, pos);
    pos += step;
  }
  EXPECT_EQ(chunked.seq_pos(sc), 20);
  for (int64_t v = 0; v < lm.numel(); ++v) EXPECT_EQ(lm[v], lc[v]) << v;

  // The next decode step continues identically from either cache state.
  const Tensor dm = mono.decode_step(sm, 42);
  const Tensor dc = chunked.decode_step(sc, 42);
  for (int64_t v = 0; v < dm.numel(); ++v) EXPECT_EQ(dm[v], dc[v]) << v;
  mono.end_sequence(sm);
  chunked.end_sequence(sc);
}

TEST(QuantizedModel, PrefillChunkRejectsWrongPosition) {
  const auto& f = fixture();
  QuantizedModel qm(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  const int seq = qm.begin_sequence();
  qm.prefill_chunk(seq, {1, 2, 3}, 0);
  EXPECT_THROW(qm.prefill_chunk(seq, {4}, 1), CheckError);  // must be 3
  qm.end_sequence(seq);
}

TEST(QuantizedModel, SequencesAreIndependent) {
  const auto& f = fixture();
  QuantizedModel qm(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  const int a = qm.begin_sequence();
  const int b = qm.begin_sequence();
  const Tensor la1 = qm.prefill(a, {1, 2, 3});
  qm.prefill(b, {400, 401, 402, 403});
  // Sequence a's next decode must not be affected by b's existence.
  const Tensor la2 = qm.decode_step(a, 4);
  qm.end_sequence(a);
  qm.end_sequence(b);

  QuantizedModel qm2(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  const int c = qm2.begin_sequence();
  qm2.prefill(c, {1, 2, 3});
  const Tensor lc = qm2.decode_step(c, 4);
  for (int64_t v = 0; v < la2.numel(); ++v) EXPECT_EQ(la2[v], lc[v]);
  (void)la1;
}

TEST(QuantizedModel, EndSequenceReleasesKvPages) {
  const auto& f = fixture();
  QuantizedModel qm(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  const int seq = qm.begin_sequence();
  qm.prefill(seq, f.tokens);
  EXPECT_GT(qm.kv_cache().pages_in_use(), 0);
  qm.end_sequence(seq);
  EXPECT_EQ(qm.kv_cache().pages_in_use(), 0);
}

TEST(QuantizedModel, NaiveLevel1RangeDegradesVsProtective) {
  // Using the full [-127,127] level-1 range without saturation is exactly
  // the overflow hazard; our kernel clamps in debug but the codes degrade.
  const auto& f = fixture();
  QuantSchemeConfig prot = QuantSchemeConfig::qserve_w4a8kv4_g128();
  QuantSchemeConfig naive = prot;
  naive.level1_range = 127;
  QuantizedModel mp(f.weights, prot);
  QuantizedModel mn(f.weights, naive);
  const double ep = logits_rel_err(mp.forward(f.tokens), f.ref_logits);
  const double en = logits_rel_err(mn.forward(f.tokens), f.ref_logits);
  // Protective range costs a little range (119 vs 127) but both must stay
  // in the same accuracy regime; this documents the trade-off is tiny.
  EXPECT_LT(ep, en * 3.0 + 0.05);
}

}  // namespace
}  // namespace qserve
