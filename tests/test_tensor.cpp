#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/int4.h"

namespace qserve {
namespace {

TEST(Tensor, ShapeAndNumel) {
  Tensor t({3, 4});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.numel(), 12);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, At2RowMajorLayout) {
  Tensor t({2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.row(1)[2], 7.0f);
}

TEST(Tensor, FullAndReshape) {
  Tensor t = Tensor::full({6}, 2.5f);
  Tensor r = t.reshaped({2, 3});
  EXPECT_EQ(r.rows(), 2);
  EXPECT_EQ(r.at2(1, 1), 2.5f);
}

TEST(Tensor, ReshapeRejectsWrongNumel) {
  Tensor t({4});
  EXPECT_THROW(t.reshaped({5}), CheckError);
}

TEST(Tensor, AbsMax) {
  Tensor t({4});
  t[0] = -3.0f;
  t[1] = 2.0f;
  t[2] = 0.5f;
  t[3] = -0.25f;
  EXPECT_EQ(abs_max(t.data(), t.numel()), 3.0f);
}

TEST(Tensor, MaxAbsDiffAndMse) {
  Tensor a({3}), b({3});
  a[0] = 1;
  a[1] = 2;
  a[2] = 3;
  b[0] = 1;
  b[1] = 2.5f;
  b[2] = 3;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
  EXPECT_NEAR(mse(a, b), 0.25 / 3.0, 1e-9);
}

TEST(Tensor, IntTensorTypes) {
  I8Tensor q({2, 2});
  q.at2(0, 1) = -100;
  EXPECT_EQ(q.at2(0, 1), -100);
  I32Tensor acc({2});
  acc[1] = 1 << 20;
  EXPECT_EQ(acc[1], 1 << 20);
}

// --- INT4 packing --------------------------------------------------------------

TEST(Int4, PackUnpackRoundTripEven) {
  U8Tensor codes({3, 8});
  for (int64_t i = 0; i < codes.numel(); ++i)
    codes[i] = static_cast<uint8_t>(i % 16);
  const PackedU4 p = pack_u4(codes);
  EXPECT_EQ(p.bytes_per_row(), 4);
  const U8Tensor out = unpack_u4(p);
  for (int64_t i = 0; i < codes.numel(); ++i) EXPECT_EQ(out[i], codes[i]);
}

TEST(Int4, PackUnpackRoundTripOddCols) {
  U8Tensor codes({2, 7});
  for (int64_t i = 0; i < codes.numel(); ++i)
    codes[i] = static_cast<uint8_t>((i * 3) % 16);
  const U8Tensor out = unpack_u4(pack_u4(codes));
  EXPECT_EQ(out.cols(), 7);
  for (int64_t i = 0; i < codes.numel(); ++i) EXPECT_EQ(out[i], codes[i]);
}

TEST(Int4, GetU4MatchesUnpack) {
  U8Tensor codes({2, 6});
  for (int64_t i = 0; i < codes.numel(); ++i)
    codes[i] = static_cast<uint8_t>((7 * i + 1) % 16);
  const PackedU4 p = pack_u4(codes);
  for (int64_t r = 0; r < 2; ++r)
    for (int64_t c = 0; c < 6; ++c)
      EXPECT_EQ(get_u4(p, r, c), codes.at2(r, c));
}

TEST(Int4, LowNibbleFirst) {
  U8Tensor codes({1, 2});
  codes[0] = 0x3;
  codes[1] = 0xA;
  const PackedU4 p = pack_u4(codes);
  EXPECT_EQ(p.bytes[0], 0xA3);  // low nibble = element 0
}

}  // namespace
}  // namespace qserve
