// Request-lifecycle robustness: structured FinishReasons (reject / shed /
// cancel / deadline / error), bounded admission, throwing-callback
// containment, and the deterministic fault-injection harness. The central
// invariant under test: any per-request failure — including injected KV
// allocation faults under preemption churn — finishes only the affected
// request (exactly one on_finish, a definite reason), leaks zero pages, and
// leaves every other request's token stream bitwise identical to a
// fault-free run, across ISAs and thread counts.
#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "model/quantized_model.h"
#include "model/weights.h"
#include "serving/engine.h"

namespace qserve {
namespace {

using cpu::Isa;

// RAII: pin an ISA for a scope, always return control to env/detection.
struct IsaGuard {
  explicit IsaGuard(Isa isa) { cpu::set_isa(isa); }
  ~IsaGuard() { cpu::clear_isa_override(); }
};

std::vector<Isa> supported_isas() {
  std::vector<Isa> v{Isa::kScalar};
  if (static_cast<int>(cpu::detected_isa()) >= static_cast<int>(Isa::kAvx2))
    v.push_back(Isa::kAvx2);
  if (static_cast<int>(cpu::detected_isa()) >= static_cast<int>(Isa::kAvx512))
    v.push_back(Isa::kAvx512);
  return v;
}

// Disarm fault injection on entry AND exit, so tests compose in any order
// and never inherit another test's armed sites.
struct FaultGuard {
  FaultGuard() { fault::clear(); }
  ~FaultGuard() { fault::clear(); }
};

struct Fixture {
  ModelWeights weights;
  Fixture() : weights(make_synthetic_weights(toy_config(1))) {}
};

const Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

QuantSchemeConfig tiny_pool_scheme(int64_t pages) {
  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = pages;
  return scheme;
}

struct Workload {
  std::vector<std::vector<int>> prompts;
  std::vector<int> max_new;
};

Workload make_workload(int n, uint64_t seed) {
  Workload w;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<int> p(static_cast<size_t>(rng.uniform_int(3, 12)));
    for (auto& t : p) t = rng.uniform_int(0, 511);
    w.prompts.push_back(std::move(p));
    w.max_new.push_back(rng.uniform_int(4, 14));
  }
  return w;
}

// Each request served alone in a roomy fault-free pool: the reference
// streams every churn configuration must reproduce bitwise.
std::vector<std::vector<int>> solo_streams(const Workload& w) {
  fault::clear();
  std::vector<std::vector<int>> out;
  for (size_t i = 0; i < w.prompts.size(); ++i) {
    QuantizedModel model(fixture().weights,
                         QuantSchemeConfig::qserve_w4a8kv4_g128());
    ServingEngine engine(&model, EngineConfig{});
    const int id = engine.submit(w.prompts[i], w.max_new[i]);
    engine.run_to_completion();
    out.push_back(engine.request(id).generated);
  }
  return out;
}

struct ChurnOutcome {
  std::vector<FinishReason> reasons;
  std::vector<int> finish_count;
  std::vector<std::vector<int>> streams;
  EngineStats stats;
};

// Submit the workload with optional per-request cancel points (cancel_at[i]
// tokens, -1 = never, issued from inside on_token) and deadlines, pump the
// engine to idle, and assert the universal invariants: termination, exactly
// one on_finish per request with a definite reason, and zero pages leaked.
ChurnOutcome run_churn(QuantizedModel& model, QuantizedModel* draft,
                       const EngineConfig& cfg, const Workload& w,
                       const std::vector<int>& cancel_at,
                       const std::vector<int64_t>& deadlines) {
  ServingEngine engine(&model, draft, cfg);
  const size_t n = w.prompts.size();
  ChurnOutcome out;
  out.reasons.assign(n, FinishReason::kNone);
  out.finish_count.assign(n, 0);
  out.streams.resize(n);
  std::vector<int> ids(n, -1);
  for (size_t i = 0; i < n; ++i) {
    RequestOptions opts;
    opts.max_new_tokens = w.max_new[i];
    opts.deadline_steps = deadlines[i];
    const int cancel_after = cancel_at[i];
    ids[i] = engine.submit(
        w.prompts[i], opts,
        [&engine, cancel_after](const Request& r, int) {
          if (cancel_after >= 0 &&
              static_cast<int>(r.generated.size()) == cancel_after)
            engine.cancel(r.id);
        },
        [&out, i](const Request& r) {
          ++out.finish_count[i];
          out.reasons[i] = r.finish_reason;
        });
  }
  int guard = 0;
  while (engine.step()) {
    if (++guard >= 50000) {
      ADD_FAILURE() << "engine must terminate";
      break;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const Request& r = engine.request(ids[i]);
    EXPECT_TRUE(r.done()) << "request " << i;
    EXPECT_EQ(out.finish_count[i], 1) << "request " << i;
    EXPECT_NE(out.reasons[i], FinishReason::kNone) << "request " << i;
    EXPECT_EQ(r.finish_reason, out.reasons[i]) << "request " << i;
    EXPECT_EQ(r.seq_handle, -1) << "request " << i;
    EXPECT_EQ(r.draft_seq_handle, -1) << "request " << i;
    out.streams[i] = r.generated;
  }
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0) << "target pool leak";
  if (draft != nullptr) {
    EXPECT_EQ(draft->kv_cache().pages_in_use(), 0) << "draft pool leak";
  }
  out.stats = engine.stats();
  return out;
}

bool is_prefix(const std::vector<int>& prefix, const std::vector<int>& full) {
  return prefix.size() <= full.size() &&
         std::equal(prefix.begin(), prefix.end(), full.begin());
}

// ---------------------------------------------------------------------------
// Fault-injection module
// ---------------------------------------------------------------------------

TEST(FaultInjection, DisabledIsFreeAndNeverFires) {
  FaultGuard guard;
  EXPECT_FALSE(fault::enabled());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fault::should_fail("nope"));
  fault::maybe_fail("nope");  // must not throw
}

TEST(FaultInjection, DeterministicSiteKeyedDraws) {
  FaultGuard guard;
  const auto draw_hits = [](double rate, uint64_t seed, int n) {
    fault::set_site("site_a", rate, seed);
    std::set<int> hits;
    for (int i = 0; i < n; ++i)
      if (fault::should_fail("site_a")) hits.insert(i);
    return hits;
  };
  const std::set<int> first = draw_hits(0.3, 42, 200);
  const std::set<int> again = draw_hits(0.3, 42, 200);
  EXPECT_EQ(first, again) << "same (site, rate, seed) must reproduce";
  EXPECT_GT(first.size(), 0u);
  EXPECT_LT(first.size(), 200u);
  // A different seed draws a different schedule (overwhelmingly likely for
  // these parameters; pinned by the deterministic hash).
  EXPECT_NE(draw_hits(0.3, 43, 200), first);
  // Counters track both sides of the draw.
  fault::set_site("site_a", 0.3, 42);
  int injected = 0;
  for (int i = 0; i < 200; ++i) injected += fault::should_fail("site_a");
  EXPECT_EQ(fault::counters("site_a").draws, 200);
  EXPECT_EQ(fault::counters("site_a").injected, injected);
  EXPECT_EQ(static_cast<size_t>(injected), first.size());
}

TEST(FaultInjection, RateEndpointsAndUnknownSites) {
  FaultGuard guard;
  fault::set_site("never", 0.0, 1);
  fault::set_site("always", 1.0, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(fault::should_fail("never"));
    EXPECT_TRUE(fault::should_fail("always"));
    EXPECT_FALSE(fault::should_fail("unarmed"));
  }
  EXPECT_THROW(fault::maybe_fail("always"), FaultInjectedError);
  try {
    fault::maybe_fail("always");
    FAIL() << "must throw";
  } catch (const FaultInjectedError& e) {
    EXPECT_EQ(e.site(), "always");
  }
  EXPECT_EQ(fault::counters("unarmed").draws, 0);
}

TEST(FaultInjection, ConfigureParsesSpecStrings) {
  FaultGuard guard;
  fault::configure("kv_alloc:0.5:7, kv_append:0.0 ,engine_step:1.0:3");
  EXPECT_TRUE(fault::enabled());
  bool step_fired = fault::should_fail(fault::kEngineStep);
  EXPECT_TRUE(step_fired);
  for (int i = 0; i < 20; ++i)
    EXPECT_FALSE(fault::should_fail(fault::kKvAppend));
  fault::configure("");
  EXPECT_FALSE(fault::enabled());
  EXPECT_THROW(fault::configure("missing_rate"), CheckError);
  EXPECT_THROW(fault::configure("site:2.0"), CheckError);
  EXPECT_THROW(fault::configure("site:abc"), CheckError);
}

// ---------------------------------------------------------------------------
// Structured finishes: rejection, shedding, backpressure
// ---------------------------------------------------------------------------

TEST(Lifecycle, UnservableSubmissionsRejectNotAbort) {
  FaultGuard guard;
  QuantizedModel model(fixture().weights, tiny_pool_scheme(4));
  ServingEngine engine(&model, EngineConfig{});

  std::vector<FinishReason> seen;
  const auto on_finish = [&seen](const Request& r) {
    seen.push_back(r.finish_reason);
  };
  // Empty prompt.
  const int a = engine.submit({}, RequestOptions{}, nullptr, on_finish);
  // Non-positive token budget.
  RequestOptions bad;
  bad.max_new_tokens = 0;
  const int b = engine.submit({1, 2}, bad, nullptr, on_finish);
  // Larger than the entire pool (4 pages * 16 tokens = 64-token pool).
  const int c = engine.submit(std::vector<int>(200, 7), RequestOptions{},
                              nullptr, on_finish);
  ASSERT_EQ(seen.size(), 3u) << "on_finish fires during submit()";
  for (FinishReason r : seen) EXPECT_EQ(r, FinishReason::kRejected);
  for (int id : {a, b, c}) {
    EXPECT_TRUE(engine.request(id).done());
    EXPECT_FALSE(engine.request(id).error.empty());
    EXPECT_TRUE(engine.request(id).generated.empty());
  }
  // The engine still serves well-formed work afterwards.
  const int good = engine.submit({3, 4, 5}, 4);
  engine.run_to_completion();
  EXPECT_EQ(engine.request(good).finish_reason, FinishReason::kLength);
  EXPECT_EQ(engine.request(good).generated.size(), 4u);
  EXPECT_EQ(engine.stats().rejected, 3);
  EXPECT_EQ(engine.stats().completed, 1);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(Lifecycle, BoundedQueueShedsAndTrySubmitReportsBackpressure) {
  FaultGuard guard;
  QuantizedModel model(fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.max_queued_requests = 2;
  ServingEngine engine(&model, cfg);

  const int a = engine.submit({1, 2}, 3);
  const int b = engine.submit({3, 4}, 3);
  // Queue is at its cap: try_submit refuses WITHOUT creating a request...
  EXPECT_EQ(engine.try_submit({5, 6}, RequestOptions{}), -1);
  // ...while submit() creates one and sheds it with an immediate finish.
  bool shed_finished = false;
  const int c = engine.submit({5, 6}, RequestOptions{}, nullptr,
                              [&shed_finished](const Request& r) {
                                shed_finished = true;
                                EXPECT_EQ(r.finish_reason,
                                          FinishReason::kShedOverload);
                              });
  EXPECT_TRUE(shed_finished);
  EXPECT_TRUE(engine.request(c).done());
  // Invalid input through try_submit is still a rejection, not backpressure:
  // retrying an empty prompt can never succeed.
  const int d = engine.try_submit({}, RequestOptions{});
  EXPECT_GE(d, 0);
  EXPECT_EQ(engine.request(d).finish_reason, FinishReason::kRejected);

  engine.run_to_completion();
  EXPECT_EQ(engine.request(a).finish_reason, FinishReason::kLength);
  EXPECT_EQ(engine.request(b).finish_reason, FinishReason::kLength);
  EXPECT_EQ(engine.stats().shed, 1);
  EXPECT_EQ(engine.stats().rejected, 1);
  EXPECT_EQ(engine.stats().queue_depth_high_water, 2);
  // Once drained, the queue has room again.
  EXPECT_GE(engine.try_submit({7, 8}, RequestOptions{}), 0);
  engine.run_to_completion();
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(Lifecycle, PromptTokenCapShedsIndependentlyOfRequestCap) {
  FaultGuard guard;
  QuantizedModel model(fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.max_queued_prompt_tokens = 10;
  ServingEngine engine(&model, cfg);
  const int a = engine.submit(std::vector<int>(6, 1), 2);  // 6 queued tokens
  EXPECT_EQ(engine.try_submit(std::vector<int>(5, 2), RequestOptions{}), -1);
  const int b = engine.submit(std::vector<int>(4, 3), 2);  // 6 + 4 fits
  const int c = engine.submit(std::vector<int>(1, 4), 2);  // 11 > 10: shed
  engine.run_to_completion();
  EXPECT_EQ(engine.request(a).finish_reason, FinishReason::kLength);
  EXPECT_EQ(engine.request(b).finish_reason, FinishReason::kLength);
  EXPECT_EQ(engine.request(c).finish_reason, FinishReason::kShedOverload);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(Lifecycle, CancelQueuedRunningAndFinished) {
  FaultGuard guard;
  const Workload w = make_workload(3, 11);
  const auto solo = solo_streams(w);
  QuantizedModel model(fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 1;  // keeps request 2 queued while 0 runs
  ServingEngine engine(&model, cfg);
  int finishes = 0;
  std::vector<int> ids;
  for (size_t i = 0; i < 3; ++i) {
    RequestOptions opts;
    opts.max_new_tokens = w.max_new[i];
    ids.push_back(engine.submit(w.prompts[i], opts, nullptr,
                                [&finishes](const Request&) { ++finishes; }));
  }
  // Queued-then-cancelled: request 2 has no KV state yet.
  EXPECT_TRUE(engine.cancel(ids[2]));
  EXPECT_TRUE(engine.request(ids[2]).done());
  EXPECT_EQ(engine.request(ids[2]).finish_reason, FinishReason::kCancelled);
  EXPECT_TRUE(engine.request(ids[2]).generated.empty());
  // Running-then-cancelled: step until request 0 has 2 tokens, then cancel
  // from outside the step loop — it must keep an exact prefix of its solo
  // stream and free its pages immediately.
  int steps = 0;
  while (engine.request(ids[0]).generated.size() < 2) {
    ASSERT_TRUE(engine.step());
    ASSERT_LT(++steps, 1000);
  }
  EXPECT_TRUE(engine.cancel(ids[0]));
  EXPECT_EQ(engine.request(ids[0]).finish_reason, FinishReason::kCancelled);
  EXPECT_TRUE(is_prefix(engine.request(ids[0]).generated, solo[0]));
  // Cancelling again, or cancelling a finished request, reports false.
  EXPECT_FALSE(engine.cancel(ids[0]));
  EXPECT_FALSE(engine.cancel(ids[2]));
  engine.run_to_completion();
  EXPECT_EQ(engine.request(ids[1]).finish_reason, FinishReason::kLength);
  EXPECT_EQ(engine.request(ids[1]).generated, solo[1]);
  EXPECT_FALSE(engine.cancel(ids[1]));
  EXPECT_EQ(finishes, 3);
  EXPECT_EQ(engine.stats().cancelled, 2);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(Lifecycle, CancelFromOnTokenMidStream) {
  FaultGuard guard;
  const Workload w = make_workload(4, 12);
  const auto solo = solo_streams(w);
  QuantizedModel model(fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  ServingEngine engine(&model, EngineConfig{});
  std::vector<int> cancel_at = {2, -1, 3, -1};
  std::vector<int64_t> deadlines(4, 0);
  const ChurnOutcome out =
      run_churn(model, nullptr, EngineConfig{}, w, cancel_at, deadlines);
  for (size_t i = 0; i < 4; ++i) {
    if (cancel_at[i] >= 0 && cancel_at[i] < w.max_new[i]) {
      EXPECT_EQ(out.reasons[i], FinishReason::kCancelled) << i;
      EXPECT_EQ(static_cast<int>(out.streams[i].size()), cancel_at[i]) << i;
      EXPECT_TRUE(is_prefix(out.streams[i], solo[i])) << i;
    } else {
      EXPECT_EQ(out.reasons[i], FinishReason::kLength) << i;
      EXPECT_EQ(out.streams[i], solo[i]) << i;
    }
  }
  EXPECT_EQ(out.stats.cancelled, 2);
}

TEST(Lifecycle, PreemptedThenCancelledLeavesNothingDangling) {
  FaultGuard guard;
  // A 4-page pool (64 tokens, page 16) with multi-page prompts forces
  // eviction churn; cancelling mid-churn must work whether the victim is
  // currently running or sitting evicted in the queue, with zero pages left
  // after drain.
  Workload w;
  for (int i = 0; i < 6; ++i) {
    w.prompts.push_back(std::vector<int>(static_cast<size_t>(20 + 3 * i),
                                         100 + i));
    w.max_new.push_back(6);
  }
  QuantizedModel model(fixture().weights, tiny_pool_scheme(4));
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  ServingEngine engine(&model, cfg);
  std::vector<int> ids;
  int finishes = 0;
  for (size_t i = 0; i < w.prompts.size(); ++i) {
    RequestOptions opts;
    opts.max_new_tokens = w.max_new[i];
    ids.push_back(engine.submit(w.prompts[i], opts, nullptr,
                                [&finishes](const Request&) { ++finishes; }));
  }
  // Let churn develop, then cancel whatever is mid-flight.
  int warm = 0;
  while (engine.stats().preemptions < 1 && engine.step())
    ASSERT_LT(++warm, 5000);
  EXPECT_GE(engine.stats().preemptions, 1) << "pool must be under pressure";
  engine.cancel(ids[1]);
  engine.cancel(ids[4]);
  int guard_steps = 0;
  while (engine.step()) ASSERT_LT(++guard_steps, 5000);
  for (int id : ids) {
    EXPECT_TRUE(engine.request(id).done());
    EXPECT_EQ(engine.request(id).seq_handle, -1);
    EXPECT_EQ(engine.request(id).draft_seq_handle, -1);
  }
  EXPECT_EQ(finishes, static_cast<int>(ids.size()));
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(Lifecycle, DeadlineAndTtftDeadlineExpire) {
  FaultGuard guard;
  const Workload w = make_workload(2, 14);
  const auto solo = solo_streams(w);
  QuantizedModel model(fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 1;  // the second request waits behind the first
  ServingEngine engine(&model, cfg);
  // Request 0: generous budget but a 3-step completion deadline — it expires
  // mid-decode holding an exact prefix of its solo stream.
  RequestOptions opts0;
  opts0.max_new_tokens = 50;
  opts0.deadline_steps = 3;
  const int a = engine.submit(w.prompts[0], opts0, nullptr, nullptr);
  // Request 1: TTFT deadline it cannot meet while queued behind request 0's
  // admission (batch of one) — expires without ever producing a token.
  RequestOptions opts1;
  opts1.max_new_tokens = 4;
  opts1.ttft_deadline_steps = 2;
  const int b = engine.submit(w.prompts[1], opts1, nullptr, nullptr);
  int steps = 0;
  while (engine.step()) ASSERT_LT(++steps, 1000);
  EXPECT_EQ(engine.request(a).finish_reason, FinishReason::kDeadline);
  EXPECT_TRUE(is_prefix(engine.request(a).generated, solo[0]));
  EXPECT_LT(engine.request(a).generated.size(), 50u);
  EXPECT_EQ(engine.request(b).finish_reason, FinishReason::kDeadline);
  EXPECT_TRUE(engine.request(b).generated.empty());
  EXPECT_EQ(engine.stats().deadline_expired, 2);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
  // A deadline later than completion never fires.
  RequestOptions relaxed;
  relaxed.max_new_tokens = 3;
  relaxed.deadline_steps = 10000;
  const int c = engine.submit(w.prompts[1], relaxed, nullptr, nullptr);
  engine.run_to_completion();
  EXPECT_EQ(engine.request(c).finish_reason, FinishReason::kLength);
}

// ---------------------------------------------------------------------------
// Throwing user callbacks
// ---------------------------------------------------------------------------

TEST(Lifecycle, ThrowingOnTokenFailsOnlyItsRequest) {
  FaultGuard guard;
  const Workload w = make_workload(2, 15);
  const auto solo = solo_streams(w);
  QuantizedModel model(fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  ServingEngine engine(&model, EngineConfig{});
  int finishes = 0;
  const int bad = engine.submit(
      w.prompts[0], RequestOptions{},
      [](const Request& r, int) {
        if (r.generated.size() == 2) throw std::runtime_error("user bug");
      },
      [&finishes](const Request& r) {
        ++finishes;
        EXPECT_EQ(r.finish_reason, FinishReason::kError);
      });
  RequestOptions opts1;
  opts1.max_new_tokens = w.max_new[1];
  const int good = engine.submit(w.prompts[1], opts1, nullptr,
                                 [&finishes](const Request&) { ++finishes; });
  int steps = 0;
  while (engine.step()) ASSERT_LT(++steps, 1000);
  EXPECT_EQ(engine.request(bad).finish_reason, FinishReason::kError);
  EXPECT_EQ(engine.request(bad).error, "on_token callback threw");
  EXPECT_EQ(engine.request(bad).generated.size(), 2u);
  // The bystander's stream is untouched by its neighbour's exploding
  // callback.
  EXPECT_EQ(engine.request(good).finish_reason, FinishReason::kLength);
  EXPECT_EQ(engine.request(good).generated, solo[1]);
  EXPECT_EQ(finishes, 2);
  EXPECT_EQ(engine.stats().errored, 1);
  EXPECT_EQ(engine.stats().callback_exceptions, 1);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(Lifecycle, ThrowingOnFinishIsContained) {
  FaultGuard guard;
  QuantizedModel model(fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  ServingEngine engine(&model, EngineConfig{});
  const int id = engine.submit({1, 2, 3}, RequestOptions{}, nullptr,
                               [](const Request&) {
                                 throw std::runtime_error("finish bug");
                               });
  engine.run_to_completion();  // must not propagate
  EXPECT_EQ(engine.request(id).finish_reason, FinishReason::kLength);
  EXPECT_EQ(engine.stats().callback_exceptions, 1);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

// ---------------------------------------------------------------------------
// Injected faults
// ---------------------------------------------------------------------------

TEST(Faults, AllocFaultConvertsToPreemptionNotAbort) {
  FaultGuard guard;
  set_num_threads(1);
  Workload w;  // multi-page requests: every one crosses page boundaries
  for (int i = 0; i < 6; ++i) {
    w.prompts.push_back(std::vector<int>(static_cast<size_t>(18 + 5 * i),
                                         200 + i));
    w.max_new.push_back(8);
  }
  const auto solo = solo_streams(w);
  fault::set_site(fault::kKvAlloc, 0.25, 2024);
  QuantizedModel model(fixture().weights, tiny_pool_scheme(6));
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  const ChurnOutcome out =
      run_churn(model, nullptr, cfg, w, std::vector<int>(6, -1),
                std::vector<int64_t>(6, 0));
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(out.reasons[i], FinishReason::kLength) << i;
    EXPECT_EQ(out.streams[i], solo[i])
        << "stream " << i << " must be bitwise fault-invariant";
  }
  EXPECT_GT(fault::counters(fault::kKvAlloc).injected, 0)
      << "the schedule must actually inject at this rate/seed";
  EXPECT_GE(out.stats.faulted_steps, 1);
  set_num_threads(0);
}

TEST(Faults, EngineStepAndAppendSitesRecoverToo) {
  FaultGuard guard;
  set_num_threads(1);
  const Workload w = make_workload(4, 17);
  const auto solo = solo_streams(w);
  fault::configure("engine_step:0.15:5,kv_append:0.05:6");
  QuantizedModel model(fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  const ChurnOutcome out =
      run_churn(model, nullptr, EngineConfig{}, w, std::vector<int>(4, -1),
                std::vector<int64_t>(4, 0));
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(out.streams[i], solo[i]) << i;
  EXPECT_GE(out.stats.faulted_steps, 1);
  set_num_threads(0);
}

TEST(Faults, SpeculativeEngineRecoversWithBothPools) {
  FaultGuard guard;
  set_num_threads(1);
  const Workload w = make_workload(4, 18);
  const auto solo = solo_streams(w);
  fault::set_site(fault::kKvAlloc, 0.08, 31);
  QuantizedModel model(fixture().weights, tiny_pool_scheme(8));
  QuantizedModel draft(fixture().weights, tiny_pool_scheme(8));
  EngineConfig cfg;
  cfg.scheduler.max_batch = 2;
  cfg.speculative.lookahead_k = 2;
  const ChurnOutcome out = run_churn(model, &draft, cfg, w,
                                     std::vector<int>(4, -1),
                                     std::vector<int64_t>(4, 0));
  // Speculative decoding is bitwise-identical to the baseline, and fault
  // recovery must preserve that: same streams, both pools empty (run_churn
  // asserts the pools).
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out.reasons[i], FinishReason::kLength) << i;
    EXPECT_EQ(out.streams[i], solo[i]) << i;
  }
  set_num_threads(0);
}

// The acceptance-criteria sweep: randomized cancel/deadline/shed/alloc-fault
// mix, re-run across every supported ISA and {1, 8} threads. Non-faulted
// requests must match the fault-free solo baseline bitwise in every
// configuration; every configuration must drain to zero pages.
TEST(Faults, ChurnSweepAcrossIsasAndThreadCounts) {
  FaultGuard guard;
  const int n = 16;
  const Workload w = make_workload(n, 19);
  const auto solo = solo_streams(w);

  std::vector<int> cancel_at(n, -1);
  std::vector<int64_t> deadlines(n, 0);
  for (int i = 0; i < n; ++i) {
    if (i % 5 == 0) cancel_at[i] = 2;       // cancelled from on_token
    if (i % 7 == 3) deadlines[i] = 6;       // may expire under churn
  }

  for (Isa isa : supported_isas()) {
    IsaGuard isa_guard(isa);
    for (int threads : {1, 8}) {
      set_num_threads(threads);
      fault::set_site(fault::kKvAlloc, 0.10, 77);
      QuantizedModel model(fixture().weights, tiny_pool_scheme(6));
      EngineConfig cfg;
      cfg.scheduler.max_batch = 4;
      cfg.max_queued_requests = 12;  // the last submissions shed
      const ChurnOutcome out =
          run_churn(model, nullptr, cfg, w, cancel_at, deadlines);
      const std::string tag = std::string(cpu::isa_name(isa)) + "/" +
                              std::to_string(threads) + "t";
      int shed = 0;
      for (int i = 0; i < n; ++i) {
        switch (out.reasons[i]) {
          case FinishReason::kLength:
            EXPECT_EQ(out.streams[i], solo[i]) << tag << " request " << i;
            break;
          case FinishReason::kCancelled:
          case FinishReason::kDeadline:
            // Partial service is always an exact prefix of the baseline.
            EXPECT_TRUE(is_prefix(out.streams[i], solo[i]))
                << tag << " request " << i;
            break;
          case FinishReason::kShedOverload:
            ++shed;
            EXPECT_TRUE(out.streams[i].empty()) << tag << " request " << i;
            break;
          default:
            FAIL() << tag << " request " << i << " finished with reason "
                   << to_string(out.reasons[i]);
        }
      }
      EXPECT_EQ(shed, n - 12) << tag << ": queue cap sheds deterministically";
      EXPECT_EQ(out.stats.completed + out.stats.cancelled +
                    out.stats.deadline_expired + out.stats.shed +
                    out.stats.rejected + out.stats.errored,
                n)
          << tag;
    }
  }
  set_num_threads(0);
}

// CI hook: when QSERVE_FAULT is set in the environment, rerun the churn
// workload under exactly that spec (applied programmatically so this test is
// independent of what earlier tests armed). Streams must STILL match the
// fault-free baseline — fault recovery is preemption, and preemption is
// bitwise stream-preserving.
TEST(Faults, ChurnUnderEnvFaultSpec) {
  FaultGuard guard;
  const char* env = std::getenv("QSERVE_FAULT");
  fault::configure(env != nullptr ? env : "");
  const Workload w = make_workload(8, 20);
  // Baselines are solo fault-free runs; compute under a clean registry,
  // then re-arm the env spec for the churn run.
  fault::clear();
  const auto solo = solo_streams(w);
  fault::configure(env != nullptr ? env : "");
  QuantizedModel model(fixture().weights, tiny_pool_scheme(6));
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  const ChurnOutcome out =
      run_churn(model, nullptr, cfg, w, std::vector<int>(8, -1),
                std::vector<int64_t>(8, 0));
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out.reasons[i], FinishReason::kLength) << i;
    EXPECT_EQ(out.streams[i], solo[i]) << i;
  }
  if (env != nullptr && fault::enabled()) {
    EXPECT_GE(out.stats.faulted_steps, 0);  // smoke: reached idle under env
  }
}

// EngineStats counters add up for a mixed outcome, including the speculative
// engine.
TEST(Lifecycle, StatsCountersSumToFinishedRequests) {
  FaultGuard guard;
  const Workload w = make_workload(5, 21);
  for (const bool speculative : {false, true}) {
    QuantizedModel model(fixture().weights,
                         QuantSchemeConfig::qserve_w4a8kv4_g128());
    std::unique_ptr<QuantizedModel> draft;
    if (speculative)
      draft = std::make_unique<QuantizedModel>(
          fixture().weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
    EngineConfig cfg;
    cfg.max_queued_requests = 4;
    cfg.speculative.lookahead_k = 2;
    ServingEngine engine(&model, draft.get(), cfg);
    std::vector<int> ids;
    for (size_t i = 0; i < w.prompts.size(); ++i) {
      RequestOptions opts;
      opts.max_new_tokens = w.max_new[i];
      if (i == 1) opts.deadline_steps = 10000;  // never fires
      ids.push_back(engine.submit(w.prompts[i], opts, nullptr, nullptr));
    }
    // 5th submission shed (cap 4), plus one rejection and one cancellation.
    const int rejected = engine.submit({}, RequestOptions{}, nullptr, nullptr);
    engine.cancel(ids[2]);
    engine.run_to_completion();
    const EngineStats& s = engine.stats();
    EXPECT_EQ(s.shed, 1) << "speculative=" << speculative;
    EXPECT_EQ(s.rejected, 1);
    EXPECT_EQ(s.cancelled, 1);
    EXPECT_EQ(s.completed, 3);
    EXPECT_EQ(s.deadline_expired, 0);
    EXPECT_EQ(s.errored, 0);
    EXPECT_TRUE(engine.request(rejected).done());
    EXPECT_GE(s.queue_depth_high_water, 4);
    EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
    if (draft) {
      EXPECT_EQ(draft->kv_cache().pages_in_use(), 0);
    }
  }
}

}  // namespace
}  // namespace qserve
