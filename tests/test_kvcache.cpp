// Paged KV cache: quantization round trips, page accounting, sequence
// lifecycle, and the per-head dynamic-scale layout of §5.1.
#include "kvcache/paged_kv_cache.h"

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "quant/kv_quant.h"

namespace qserve {
namespace {

KvCacheConfig small_cfg(KvPrecision p, int max_pages = 64) {
  KvCacheConfig cfg;
  cfg.n_kv_heads = 2;
  cfg.head_dim = 8;
  cfg.page_size = 4;
  cfg.precision = p;
  cfg.max_pages = max_pages;
  return cfg;
}

std::vector<float> random_vec(Rng& rng, int n, float outlier = 0.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.normal();
  if (outlier != 0.0f) v[0] = outlier;
  return v;
}

TEST(KvQuant, Int8RoundTripError) {
  Rng rng(1);
  const auto x = random_vec(rng, 64);
  std::vector<uint8_t> codes(64);
  const auto p = kv_quantize(x.data(), 64, 8, codes.data());
  std::vector<float> out(64);
  kv_dequantize(codes.data(), 64, p, out.data());
  for (int i = 0; i < 64; ++i)
    EXPECT_NEAR(out[size_t(i)], x[size_t(i)], 0.51f * p.scale + 1e-3f);
}

TEST(KvQuant, Int4RoundTripCoarserThanInt8) {
  Rng rng(2);
  const auto x = random_vec(rng, 128);
  std::vector<uint8_t> c8(128), c4(128);
  const auto p8 = kv_quantize(x.data(), 128, 8, c8.data());
  const auto p4 = kv_quantize(x.data(), 128, 4, c4.data());
  std::vector<float> o8(128), o4(128);
  kv_dequantize(c8.data(), 128, p8, o8.data());
  kv_dequantize(c4.data(), 128, p4, o4.data());
  double e8 = 0, e4 = 0;
  for (int i = 0; i < 128; ++i) {
    e8 += std::pow(o8[size_t(i)] - x[size_t(i)], 2);
    e4 += std::pow(o4[size_t(i)] - x[size_t(i)], 2);
  }
  EXPECT_LT(e8, e4);
}

TEST(KvQuant, OutlierStretchesInt4Scale) {
  // A 10x outlier channel forces a ~10x coarser INT4 step for the whole
  // head — the §4.2 motivation for SmoothAttention.
  Rng rng(3);
  const auto clean = random_vec(rng, 64);
  auto dirty = clean;
  dirty[0] = 20.0f;
  std::vector<uint8_t> codes(64);
  const auto pc = kv_quantize(clean.data(), 64, 4, codes.data());
  const auto pd = kv_quantize(dirty.data(), 64, 4, codes.data());
  EXPECT_GT(pd.scale, 3.0f * pc.scale);
}

TEST(PagedKvCache, AppendGatherRoundTripFp16) {
  PagedKvCache cache(small_cfg(KvPrecision::kFp16));
  Rng rng(4);
  const int seq = cache.alloc_sequence();
  std::vector<std::vector<float>> ks, vs;
  for (int t = 0; t < 10; ++t) {
    ks.push_back(random_vec(rng, 16));
    vs.push_back(random_vec(rng, 16));
    cache.append(seq, ks.back().data(), vs.back().data());
  }
  Tensor k, v;
  cache.gather(seq, k, v);
  ASSERT_EQ(k.rows(), 10);
  for (int t = 0; t < 10; ++t)
    for (int i = 0; i < 16; ++i) {
      EXPECT_NEAR(k.at2(t, i), ks[size_t(t)][size_t(i)], 2e-3f);
      EXPECT_NEAR(v.at2(t, i), vs[size_t(t)][size_t(i)], 2e-3f);
    }
}

class KvCacheRoundTrip : public ::testing::TestWithParam<KvPrecision> {};

TEST_P(KvCacheRoundTrip, ErrorBoundedByHeadScale) {
  PagedKvCache cache(small_cfg(GetParam()));
  Rng rng(5);
  const int seq = cache.alloc_sequence();
  const auto k0 = random_vec(rng, 16, 8.0f);  // outlier in head 0
  const auto v0 = random_vec(rng, 16);
  cache.append(seq, k0.data(), v0.data());
  Tensor k, v;
  cache.gather(seq, k, v);
  const int bits = static_cast<int>(GetParam());
  const float max_step = bits >= 16 ? 0.01f : 17.0f / float((1 << bits) - 1);
  for (int i = 0; i < 16; ++i)
    EXPECT_NEAR(k.at2(0, i), k0[size_t(i)], max_step) << i;
}

INSTANTIATE_TEST_SUITE_P(Precisions, KvCacheRoundTrip,
                         ::testing::Values(KvPrecision::kFp16,
                                           KvPrecision::kInt8,
                                           KvPrecision::kInt4));

TEST(PagedKvCache, PerHeadScalesIsolateOutliers) {
  // An outlier in head 0 must not degrade head 1's INT4 round trip — the
  // reason QServe quantizes per head, not per tensor.
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  Rng rng(6);
  const int seq = cache.alloc_sequence();
  std::vector<float> kvec = random_vec(rng, 16);
  kvec[0] = 50.0f;  // head 0 outlier
  const auto vvec = random_vec(rng, 16);
  cache.append(seq, kvec.data(), vvec.data());
  Tensor k, v;
  cache.gather(seq, k, v);
  for (int i = 8; i < 16; ++i)  // head 1 channels
    EXPECT_NEAR(k.at2(0, i), kvec[size_t(i)], 0.3f);
}

TEST(PagedKvCache, PageAllocationGrowsByPageSize) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  const int seq = cache.alloc_sequence();
  EXPECT_EQ(cache.pages_in_use(), 0);
  Rng rng(7);
  const auto k = random_vec(rng, 16);
  for (int t = 0; t < 9; ++t) cache.append(seq, k.data(), k.data());
  // page_size=4: 9 tokens -> 3 pages.
  EXPECT_EQ(cache.pages_in_use(), 3);
  EXPECT_EQ(cache.seq_len(seq), 9);
}

TEST(PagedKvCache, FreeSequenceReleasesPages) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt4, 8));
  Rng rng(8);
  const auto k = random_vec(rng, 16);
  const int a = cache.alloc_sequence();
  for (int t = 0; t < 8; ++t) cache.append(a, k.data(), k.data());
  EXPECT_EQ(cache.free_pages(), 6);
  cache.free_sequence(a);
  EXPECT_EQ(cache.free_pages(), 8);
  EXPECT_FALSE(cache.is_live(a));
  // Freed pages are reusable by a new sequence.
  const int b = cache.alloc_sequence();
  for (int t = 0; t < 32; ++t) cache.append(b, k.data(), k.data());
  EXPECT_EQ(cache.pages_in_use(), 8);
}

TEST(PagedKvCache, PoolExhaustionThrows) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt4, 2));
  Rng rng(9);
  const auto k = random_vec(rng, 16);
  const int seq = cache.alloc_sequence();
  for (int t = 0; t < 8; ++t) cache.append(seq, k.data(), k.data());
  EXPECT_THROW(cache.append(seq, k.data(), k.data()), CheckError);
}

TEST(PagedKvCache, CanGrowAccountsForPartialPages) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt4, 2));
  Rng rng(10);
  const auto k = random_vec(rng, 16);
  const int seq = cache.alloc_sequence();
  cache.append(seq, k.data(), k.data());  // 1 token, 1 page (3 slots spare)
  EXPECT_TRUE(cache.can_grow(seq, 7));    // 3 spare + 4 in the last free page
  EXPECT_FALSE(cache.can_grow(seq, 8));
}

TEST(PagedKvCache, MultipleSequencesIsolated) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt8));
  Rng rng(11);
  const int a = cache.alloc_sequence();
  const int b = cache.alloc_sequence();
  const auto ka = random_vec(rng, 16, 3.0f);
  const auto kb = random_vec(rng, 16, -5.0f);
  cache.append(a, ka.data(), ka.data());
  cache.append(b, kb.data(), kb.data());
  Tensor k, v;
  cache.gather(a, k, v);
  EXPECT_NEAR(k.at2(0, 0), 3.0f, 0.1f);
  cache.gather(b, k, v);
  EXPECT_NEAR(k.at2(0, 0), -5.0f, 0.1f);
}

TEST(PagedKvCache, PageBytesLayout) {
  // INT4 page: 2 (K,V) * 4 tokens * 16 span * 0.5B + dynamic params
  // 2 * 4 * 2 heads * 4B = 64 + 64.
  const auto cfg = small_cfg(KvPrecision::kInt4);
  EXPECT_EQ(kv_page_bytes(cfg), 64 + 64);
  // INT8 static: codes only.
  auto cfg8 = small_cfg(KvPrecision::kInt8);
  cfg8.static_scales = true;
  EXPECT_EQ(kv_page_bytes(cfg8), 2 * 4 * 16);
}

TEST(PagedKvCache, ModeledPageBytesMatchMeasuredStorage) {
  // Regression: INT4 codes used to be stored one per byte while
  // kv_page_bytes modeled nibble packing, understating real usage 2x. The
  // payload vectors (nibble-packed codes, binary16 payload and params) must
  // now occupy exactly the modeled bytes.
  for (KvPrecision p :
       {KvPrecision::kFp16, KvPrecision::kInt8, KvPrecision::kInt4}) {
    PagedKvCache cache(small_cfg(p));
    EXPECT_EQ(kv_page_bytes(cache.config()), cache.measured_page_bytes())
        << "precision " << static_cast<int>(p);
  }
  auto cfg8 = small_cfg(KvPrecision::kInt8);
  cfg8.static_scales = true;
  PagedKvCache static8(cfg8);
  EXPECT_EQ(kv_page_bytes(cfg8), static8.measured_page_bytes());
}

TEST(KvQuant, NibblePackedDequantMatchesUnpacked) {
  Rng rng(12);
  const auto x = random_vec(rng, 32);
  std::vector<uint8_t> codes(32), packed(16);
  const auto p = kv_quantize(x.data(), 32, 4, codes.data());
  kv_pack_nibbles(codes.data(), 32, packed.data());
  std::vector<float> from_codes(32), from_packed(32);
  kv_dequantize(codes.data(), 32, p, from_codes.data());
  kv_dequantize_packed4(packed.data(), 32, p, from_packed.data());
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(from_packed[size_t(i)], from_codes[size_t(i)]) << i;
}

TEST(PagedKvCache, Int4RequiresEvenHeadDim) {
  KvCacheConfig cfg = small_cfg(KvPrecision::kInt4);
  cfg.head_dim = 7;
  EXPECT_THROW(PagedKvCache{cfg}, CheckError);
  cfg.precision = KvPrecision::kInt8;  // one code per byte: odd dim is fine
  PagedKvCache ok(cfg);
  EXPECT_EQ(kv_page_bytes(cfg), ok.measured_page_bytes());
}

TEST(PagedKvCache, StaleSeqViewDetectedAfterFree) {
  // Regression for preemption: SeqView holds raw page pointers, and
  // free_sequence() can recycle those pages mid-flight. The per-page
  // generation counter turns a silent stale read into a QS_DCHECK failure.
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  Rng rng(13);
  const int a = cache.alloc_sequence();
  const auto k = random_vec(rng, 16);
  cache.append(a, k.data(), k.data());
  const PagedKvCache::SeqView view = cache.view(a);
  std::vector<float> out(8);
  view.read_k(0, 0, out.data());  // live view reads fine
  cache.free_sequence(a);
#ifndef NDEBUG
  EXPECT_THROW(view.read_k(0, 0, out.data()), CheckError);
  // The page may since have been recycled into another sequence; the stale
  // view must still trip even though the page is live again.
  const int b = cache.alloc_sequence();
  cache.append(b, k.data(), k.data());
  EXPECT_THROW(view.read_v(0, 0, out.data()), CheckError);
#else
  GTEST_SKIP() << "generation checks are QS_DCHECK (compiled out in NDEBUG)";
#endif
}

TEST(PagedKvCache, StaticKv8MatchesStaticQuantizer) {
  auto cfg = small_cfg(KvPrecision::kInt8);
  cfg.static_scales = true;
  cfg.static_scale_k = 0.1f;
  cfg.static_scale_v = 0.1f;
  PagedKvCache cache(cfg);
  const int seq = cache.alloc_sequence();
  std::vector<float> kvec(16, 1.0f), vvec(16, -2.0f);
  cache.append(seq, kvec.data(), vvec.data());
  Tensor k, v;
  cache.gather(seq, k, v);
  EXPECT_NEAR(k.at2(0, 0), 1.0f, 0.05f);
  EXPECT_NEAR(v.at2(0, 0), -2.0f, 0.05f);
  // Static scale clips out-of-range values (the KV8 baseline's weakness).
  std::vector<float> big(16, 100.0f);
  cache.append(seq, big.data(), big.data());
  cache.gather(seq, k, v);
  EXPECT_NEAR(k.at2(1, 0), 12.7f, 0.1f);  // clamped at 127 * 0.1
}

TEST(PagedKvCache, AppendBatchMatchesSingleAppendsBitwise) {
  // The batched scatter the step executor uses must store byte-identical
  // pages to token-by-token appends, across every precision and across page
  // boundaries (page_size=4, 13 tokens => 4 pages, last partially filled).
  for (const KvPrecision p :
       {KvPrecision::kFp16, KvPrecision::kInt8, KvPrecision::kInt4}) {
    PagedKvCache one(small_cfg(p)), batch(small_cfg(p));
    const int sa = one.alloc_sequence();
    const int sb = batch.alloc_sequence();
    Rng rng(7);
    const int span = 16;  // n_kv_heads * head_dim
    const int n = 13;
    std::vector<float> k, v;
    for (int t = 0; t < n; ++t) {
      const auto kt = random_vec(rng, span, /*outlier=*/t % 3 ? 0.f : 8.f);
      const auto vt = random_vec(rng, span);
      k.insert(k.end(), kt.begin(), kt.end());
      v.insert(v.end(), vt.begin(), vt.end());
      one.append(sa, kt.data(), vt.data());
    }
    // Mixed batch sizes: 5 + 1 + 7 tokens.
    batch.append_batch(sb, k.data(), v.data(), 5);
    batch.append_batch(sb, k.data() + 5 * span, v.data() + 5 * span, 1);
    batch.append_batch(sb, k.data() + 6 * span, v.data() + 6 * span, 7);
    EXPECT_EQ(one.seq_len(sa), n);
    EXPECT_EQ(batch.seq_len(sb), n);
    EXPECT_EQ(one.pages_in_use(), batch.pages_in_use());
    Tensor k1, v1, k2, v2;
    one.gather(sa, k1, v1);
    batch.gather(sb, k2, v2);
    EXPECT_EQ(max_abs_diff(k1, k2), 0.0f);
    EXPECT_EQ(max_abs_diff(v1, v2), 0.0f);
  }
}

TEST(PagedKvCache, AppendBatchTooLargeThrowsWithoutMutating) {
  // A batch the pool cannot hold must fail before any sequence state
  // mutates: seq_len may never claim tokens whose page slots were not
  // written (gather would dequantize unwritten bytes as valid K/V).
  PagedKvCache cache(small_cfg(KvPrecision::kInt8, /*max_pages=*/2));
  const int seq = cache.alloc_sequence();
  Rng rng(3);
  const int span = 16;
  const auto k = random_vec(rng, 3 * span), v = random_vec(rng, 3 * span);
  cache.append_batch(seq, k.data(), v.data(), 3);
  // Pool holds 2 pages x 4 tokens = 8; 3 used, 6 more cannot fit.
  std::vector<float> big_k(6 * span, 1.0f), big_v(6 * span, 1.0f);
  EXPECT_THROW(cache.append_batch(seq, big_k.data(), big_v.data(), 6),
               CheckError);
  EXPECT_EQ(cache.seq_len(seq), 3);
  Tensor kd, vd;
  cache.gather(seq, kd, vd);
  EXPECT_EQ(kd.rows(), 3);
}

TEST(PagedKvCache, AppendBatchConcurrentDistinctSequences) {
  // The batched step executor scatters whole chunks into distinct sequences
  // concurrently; contents must match a serial run exactly and the pool
  // accounting must stay conserved.
  const int kSeqs = 6, kTokens = 23, span = 16;
  Rng rng(11);
  std::vector<std::vector<float>> ks(kSeqs), vs(kSeqs);
  for (int s = 0; s < kSeqs; ++s)
    for (int t = 0; t < kTokens; ++t) {
      const auto kt = random_vec(rng, span);
      const auto vt = random_vec(rng, span);
      ks[size_t(s)].insert(ks[size_t(s)].end(), kt.begin(), kt.end());
      vs[size_t(s)].insert(vs[size_t(s)].end(), vt.begin(), vt.end());
    }

  PagedKvCache serial(small_cfg(KvPrecision::kInt4, 256));
  PagedKvCache parallel_cache(small_cfg(KvPrecision::kInt4, 256));
  std::vector<int> serial_ids(kSeqs), parallel_ids(kSeqs);
  for (int s = 0; s < kSeqs; ++s) {
    serial_ids[size_t(s)] = serial.alloc_sequence();
    parallel_ids[size_t(s)] = parallel_cache.alloc_sequence();
    serial.append_batch(serial_ids[size_t(s)], ks[size_t(s)].data(),
                        vs[size_t(s)].data(), kTokens);
  }
  parallel_for(0, kSeqs, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s)
      parallel_cache.append_batch(parallel_ids[size_t(s)],
                                  ks[size_t(s)].data(), vs[size_t(s)].data(),
                                  kTokens);
  });

  EXPECT_EQ(serial.pages_in_use(), parallel_cache.pages_in_use());
  for (int s = 0; s < kSeqs; ++s) {
    Tensor k1, v1, k2, v2;
    serial.gather(serial_ids[size_t(s)], k1, v1);
    parallel_cache.gather(parallel_ids[size_t(s)], k2, v2);
    EXPECT_EQ(max_abs_diff(k1, k2), 0.0f);
    EXPECT_EQ(max_abs_diff(v1, v2), 0.0f);
  }
}

// --- truncate_sequence (speculative-decoding rollback) -----------------------

TEST(PagedKvCache, TruncateFreesPagesAndComposesWithAppend) {
  // page_size = 4: 13 tokens span 4 pages. Truncating to 9 keeps 3 pages,
  // to 8 keeps 2 (exact boundary), and re-appending after a rollback stores
  // byte-identical state to a cache that never held the rejected tail.
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  PagedKvCache replay(small_cfg(KvPrecision::kInt4));
  const int seq = cache.alloc_sequence();
  const int rep = replay.alloc_sequence();
  Rng rng(21);
  const int span = 16;  // n_kv_heads * head_dim
  std::vector<std::vector<float>> ks, vs;
  for (int t = 0; t < 13; ++t) {
    ks.push_back(random_vec(rng, span, t % 4 ? 0.f : 6.f));
    vs.push_back(random_vec(rng, span));
    cache.append(seq, ks.back().data(), vs.back().data());
  }
  EXPECT_EQ(cache.seq_len(seq), 13);
  EXPECT_EQ(cache.pages_in_use(), 4);

  cache.truncate_sequence(seq, 9);
  EXPECT_EQ(cache.seq_len(seq), 9);
  EXPECT_EQ(cache.pages_in_use(), 3);
  cache.truncate_sequence(seq, 8);
  EXPECT_EQ(cache.seq_len(seq), 8);
  EXPECT_EQ(cache.pages_in_use(), 2);
  cache.truncate_sequence(seq, 8);  // no-op at the same length
  EXPECT_EQ(cache.pages_in_use(), 2);

  // Roll forward again with DIFFERENT tokens (the accepted continuation).
  std::vector<float> k2, v2;
  for (int t = 0; t < 5; ++t) {
    const auto kt = random_vec(rng, span);
    const auto vt = random_vec(rng, span);
    k2.insert(k2.end(), kt.begin(), kt.end());
    v2.insert(v2.end(), vt.begin(), vt.end());
  }
  cache.append_batch(seq, k2.data(), v2.data(), 5);
  EXPECT_EQ(cache.seq_len(seq), 13);

  for (int t = 0; t < 8; ++t)
    replay.append(rep, ks[size_t(t)].data(), vs[size_t(t)].data());
  replay.append_batch(rep, k2.data(), v2.data(), 5);
  Tensor ka, va, kb, vb;
  cache.gather(seq, ka, va);
  replay.gather(rep, kb, vb);
  EXPECT_EQ(max_abs_diff(ka, kb), 0.0f);
  EXPECT_EQ(max_abs_diff(va, vb), 0.0f);

  cache.free_sequence(seq);
  EXPECT_EQ(cache.pages_in_use(), 0);
  EXPECT_THROW(cache.truncate_sequence(seq, 0), CheckError);  // not live
}

TEST(PagedKvCache, TruncateValidatesLength) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt8));
  const int seq = cache.alloc_sequence();
  Rng rng(3);
  const auto k = random_vec(rng, 16);
  cache.append(seq, k.data(), k.data());
  EXPECT_THROW(cache.truncate_sequence(seq, 2), CheckError);   // > length
  EXPECT_THROW(cache.truncate_sequence(seq, -1), CheckError);  // negative
  cache.truncate_sequence(seq, 0);  // to empty is legal
  EXPECT_EQ(cache.seq_len(seq), 0);
  EXPECT_EQ(cache.pages_in_use(), 0);
}

TEST(PagedKvCache, TruncateFuzzInterleavedInvariants) {
  // Randomized interleaving of append_batch / truncate_sequence /
  // free+realloc across 4 sequences, with a float mirror of every live
  // sequence. After each op: seq_len, used_pages (sum of per-sequence page
  // needs), and byte accounting must hold; periodically a live sequence's
  // gather must equal a fresh cache replaying the mirror — rollback plus
  // re-append must be indistinguishable from never having appended the tail.
  for (const KvPrecision p : {KvPrecision::kInt4, KvPrecision::kInt8}) {
    PagedKvCache cache(small_cfg(p, /*max_pages=*/256));
    Rng rng(static_cast<uint64_t>(77 + static_cast<int>(p)));
    const int span = 16;
    const int64_t page = cache.config().page_size;
    struct Mirror {
      int id = -1;
      std::vector<float> k, v;  // span floats per token
      int64_t len() const { return static_cast<int64_t>(k.size()) / 16; }
    };
    std::vector<Mirror> seqs(4);
    for (auto& s : seqs) s.id = cache.alloc_sequence();

    const auto check_accounting = [&]() {
      int64_t pages = 0;
      for (const auto& s : seqs) {
        ASSERT_EQ(cache.seq_len(s.id), s.len());
        pages += (s.len() + page - 1) / page;
      }
      ASSERT_EQ(cache.pages_in_use(), pages);
      ASSERT_EQ(cache.bytes_in_use(),
                pages * kv_page_bytes(cache.config()));
    };

    for (int op = 0; op < 240; ++op) {
      Mirror& s = seqs[static_cast<size_t>(rng.uniform_int(0, 3))];
      const int action = rng.uniform_int(0, 9);
      if (action <= 4) {  // append_batch of 1..6 tokens
        const int n = rng.uniform_int(1, 6);
        std::vector<float> k, v;
        for (int t = 0; t < n; ++t) {
          const auto kt = random_vec(rng, span, t % 3 ? 0.f : 7.f);
          const auto vt = random_vec(rng, span);
          k.insert(k.end(), kt.begin(), kt.end());
          v.insert(v.end(), vt.begin(), vt.end());
        }
        cache.append_batch(s.id, k.data(), v.data(), n);
        s.k.insert(s.k.end(), k.begin(), k.end());
        s.v.insert(s.v.end(), v.begin(), v.end());
      } else if (action <= 8) {  // truncate to a random shorter length
        const int64_t new_len =
            rng.uniform_int(0, static_cast<int>(s.len()));
        cache.truncate_sequence(s.id, new_len);
        s.k.resize(static_cast<size_t>(new_len * span));
        s.v.resize(static_cast<size_t>(new_len * span));
      } else {  // free and immediately re-alloc (page recycling churn)
        cache.free_sequence(s.id);
        s.id = cache.alloc_sequence();
        s.k.clear();
        s.v.clear();
      }
      check_accounting();

      if (op % 16 == 15) {
        const Mirror& probe = seqs[static_cast<size_t>(rng.uniform_int(0, 3))];
        if (probe.len() == 0) continue;
        PagedKvCache fresh(small_cfg(p, /*max_pages=*/256));
        const int f = fresh.alloc_sequence();
        fresh.append_batch(f, probe.k.data(), probe.v.data(), probe.len());
        Tensor ka, va, kb, vb;
        cache.gather(probe.id, ka, va);
        fresh.gather(f, kb, vb);
        ASSERT_EQ(max_abs_diff(ka, kb), 0.0f);
        ASSERT_EQ(max_abs_diff(va, vb), 0.0f);
      }
    }
  }
}

TEST(PagedKvCache, StaleSeqViewDetectedAfterTruncate) {
  // Rollback recycles the freed tail pages and rewrites the truncated slots
  // of the kept boundary page, so a SeqView taken before truncate_sequence
  // must trip the generation QS_DCHECK exactly like preemption's
  // free_sequence — on the freed pages AND on the partially-truncated one.
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  Rng rng(31);
  const int seq = cache.alloc_sequence();
  std::vector<float> kv;
  for (int t = 0; t < 7; ++t) {  // 2 pages: 4 + 3 tokens
    const auto x = random_vec(rng, 16);
    kv.insert(kv.end(), x.begin(), x.end());
  }
  cache.append_batch(seq, kv.data(), kv.data(), 7);
  const PagedKvCache::SeqView before = cache.view(seq);
  std::vector<float> out(8);
  before.read_k(6, 0, out.data());  // live view reads fine

  cache.truncate_sequence(seq, 2);  // frees page 1, cuts into page 0
#ifndef NDEBUG
  EXPECT_THROW(before.read_k(5, 0, out.data()), CheckError);  // freed page
  EXPECT_THROW(before.read_k(1, 0, out.data()), CheckError);  // cut page
  // A view taken AFTER the rollback snapshots the bumped generation and
  // reads the surviving prefix fine.
  const PagedKvCache::SeqView after = cache.view(seq);
  after.read_k(1, 0, out.data());
  EXPECT_EQ(after.length(), 2);

  // Boundary-exact truncation leaves kept pages untouched: the old view
  // still reads them, only the freed tail trips.
  PagedKvCache c2(small_cfg(KvPrecision::kInt8));
  const int s2 = c2.alloc_sequence();
  c2.append_batch(s2, kv.data(), kv.data(), 7);
  const PagedKvCache::SeqView v2 = c2.view(s2);
  c2.truncate_sequence(s2, 4);  // exact page boundary
  v2.read_k(3, 0, out.data());                               // kept page: ok
  EXPECT_THROW(v2.read_k(4, 0, out.data()), CheckError);     // freed page
#else
  GTEST_SKIP() << "generation checks are QS_DCHECK (compiled out in NDEBUG)";
#endif
}

}  // namespace
}  // namespace qserve
