// Paged KV cache: quantization round trips, page accounting, sequence
// lifecycle, and the per-head dynamic-scale layout of §5.1.
#include "kvcache/paged_kv_cache.h"

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "quant/kv_quant.h"

namespace qserve {
namespace {

KvCacheConfig small_cfg(KvPrecision p, int max_pages = 64) {
  KvCacheConfig cfg;
  cfg.n_kv_heads = 2;
  cfg.head_dim = 8;
  cfg.page_size = 4;
  cfg.precision = p;
  cfg.max_pages = max_pages;
  return cfg;
}

std::vector<float> random_vec(Rng& rng, int n, float outlier = 0.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.normal();
  if (outlier != 0.0f) v[0] = outlier;
  return v;
}

TEST(KvQuant, Int8RoundTripError) {
  Rng rng(1);
  const auto x = random_vec(rng, 64);
  std::vector<uint8_t> codes(64);
  const auto p = kv_quantize(x.data(), 64, 8, codes.data());
  std::vector<float> out(64);
  kv_dequantize(codes.data(), 64, p, out.data());
  for (int i = 0; i < 64; ++i)
    EXPECT_NEAR(out[size_t(i)], x[size_t(i)], 0.51f * p.scale + 1e-3f);
}

TEST(KvQuant, Int4RoundTripCoarserThanInt8) {
  Rng rng(2);
  const auto x = random_vec(rng, 128);
  std::vector<uint8_t> c8(128), c4(128);
  const auto p8 = kv_quantize(x.data(), 128, 8, c8.data());
  const auto p4 = kv_quantize(x.data(), 128, 4, c4.data());
  std::vector<float> o8(128), o4(128);
  kv_dequantize(c8.data(), 128, p8, o8.data());
  kv_dequantize(c4.data(), 128, p4, o4.data());
  double e8 = 0, e4 = 0;
  for (int i = 0; i < 128; ++i) {
    e8 += std::pow(o8[size_t(i)] - x[size_t(i)], 2);
    e4 += std::pow(o4[size_t(i)] - x[size_t(i)], 2);
  }
  EXPECT_LT(e8, e4);
}

TEST(KvQuant, OutlierStretchesInt4Scale) {
  // A 10x outlier channel forces a ~10x coarser INT4 step for the whole
  // head — the §4.2 motivation for SmoothAttention.
  Rng rng(3);
  const auto clean = random_vec(rng, 64);
  auto dirty = clean;
  dirty[0] = 20.0f;
  std::vector<uint8_t> codes(64);
  const auto pc = kv_quantize(clean.data(), 64, 4, codes.data());
  const auto pd = kv_quantize(dirty.data(), 64, 4, codes.data());
  EXPECT_GT(pd.scale, 3.0f * pc.scale);
}

TEST(PagedKvCache, AppendGatherRoundTripFp16) {
  PagedKvCache cache(small_cfg(KvPrecision::kFp16));
  Rng rng(4);
  const int seq = cache.alloc_sequence();
  std::vector<std::vector<float>> ks, vs;
  for (int t = 0; t < 10; ++t) {
    ks.push_back(random_vec(rng, 16));
    vs.push_back(random_vec(rng, 16));
    cache.append(seq, ks.back().data(), vs.back().data());
  }
  Tensor k, v;
  cache.gather(seq, k, v);
  ASSERT_EQ(k.rows(), 10);
  for (int t = 0; t < 10; ++t)
    for (int i = 0; i < 16; ++i) {
      EXPECT_NEAR(k.at2(t, i), ks[size_t(t)][size_t(i)], 2e-3f);
      EXPECT_NEAR(v.at2(t, i), vs[size_t(t)][size_t(i)], 2e-3f);
    }
}

class KvCacheRoundTrip : public ::testing::TestWithParam<KvPrecision> {};

TEST_P(KvCacheRoundTrip, ErrorBoundedByHeadScale) {
  PagedKvCache cache(small_cfg(GetParam()));
  Rng rng(5);
  const int seq = cache.alloc_sequence();
  const auto k0 = random_vec(rng, 16, 8.0f);  // outlier in head 0
  const auto v0 = random_vec(rng, 16);
  cache.append(seq, k0.data(), v0.data());
  Tensor k, v;
  cache.gather(seq, k, v);
  const int bits = static_cast<int>(GetParam());
  const float max_step = bits >= 16 ? 0.01f : 17.0f / float((1 << bits) - 1);
  for (int i = 0; i < 16; ++i)
    EXPECT_NEAR(k.at2(0, i), k0[size_t(i)], max_step) << i;
}

INSTANTIATE_TEST_SUITE_P(Precisions, KvCacheRoundTrip,
                         ::testing::Values(KvPrecision::kFp16,
                                           KvPrecision::kInt8,
                                           KvPrecision::kInt4));

TEST(PagedKvCache, PerHeadScalesIsolateOutliers) {
  // An outlier in head 0 must not degrade head 1's INT4 round trip — the
  // reason QServe quantizes per head, not per tensor.
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  Rng rng(6);
  const int seq = cache.alloc_sequence();
  std::vector<float> kvec = random_vec(rng, 16);
  kvec[0] = 50.0f;  // head 0 outlier
  const auto vvec = random_vec(rng, 16);
  cache.append(seq, kvec.data(), vvec.data());
  Tensor k, v;
  cache.gather(seq, k, v);
  for (int i = 8; i < 16; ++i)  // head 1 channels
    EXPECT_NEAR(k.at2(0, i), kvec[size_t(i)], 0.3f);
}

TEST(PagedKvCache, PageAllocationGrowsByPageSize) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  const int seq = cache.alloc_sequence();
  EXPECT_EQ(cache.pages_in_use(), 0);
  Rng rng(7);
  const auto k = random_vec(rng, 16);
  for (int t = 0; t < 9; ++t) cache.append(seq, k.data(), k.data());
  // page_size=4: 9 tokens -> 3 pages.
  EXPECT_EQ(cache.pages_in_use(), 3);
  EXPECT_EQ(cache.seq_len(seq), 9);
}

TEST(PagedKvCache, FreeSequenceReleasesPages) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt4, 8));
  Rng rng(8);
  const auto k = random_vec(rng, 16);
  const int a = cache.alloc_sequence();
  for (int t = 0; t < 8; ++t) cache.append(a, k.data(), k.data());
  EXPECT_EQ(cache.free_pages(), 6);
  cache.free_sequence(a);
  EXPECT_EQ(cache.free_pages(), 8);
  EXPECT_FALSE(cache.is_live(a));
  // Freed pages are reusable by a new sequence.
  const int b = cache.alloc_sequence();
  for (int t = 0; t < 32; ++t) cache.append(b, k.data(), k.data());
  EXPECT_EQ(cache.pages_in_use(), 8);
}

TEST(PagedKvCache, PoolExhaustionThrows) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt4, 2));
  Rng rng(9);
  const auto k = random_vec(rng, 16);
  const int seq = cache.alloc_sequence();
  for (int t = 0; t < 8; ++t) cache.append(seq, k.data(), k.data());
  EXPECT_THROW(cache.append(seq, k.data(), k.data()), CheckError);
}

TEST(PagedKvCache, CanGrowAccountsForPartialPages) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt4, 2));
  Rng rng(10);
  const auto k = random_vec(rng, 16);
  const int seq = cache.alloc_sequence();
  cache.append(seq, k.data(), k.data());  // 1 token, 1 page (3 slots spare)
  EXPECT_TRUE(cache.can_grow(seq, 7));    // 3 spare + 4 in the last free page
  EXPECT_FALSE(cache.can_grow(seq, 8));
}

TEST(PagedKvCache, MultipleSequencesIsolated) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt8));
  Rng rng(11);
  const int a = cache.alloc_sequence();
  const int b = cache.alloc_sequence();
  const auto ka = random_vec(rng, 16, 3.0f);
  const auto kb = random_vec(rng, 16, -5.0f);
  cache.append(a, ka.data(), ka.data());
  cache.append(b, kb.data(), kb.data());
  Tensor k, v;
  cache.gather(a, k, v);
  EXPECT_NEAR(k.at2(0, 0), 3.0f, 0.1f);
  cache.gather(b, k, v);
  EXPECT_NEAR(k.at2(0, 0), -5.0f, 0.1f);
}

TEST(PagedKvCache, PageBytesLayout) {
  // INT4 page: 2 (K,V) * 4 tokens * 16 span * 0.5B + dynamic params
  // 2 * 4 * 2 heads * 4B = 64 + 64.
  const auto cfg = small_cfg(KvPrecision::kInt4);
  EXPECT_EQ(kv_page_bytes(cfg), 64 + 64);
  // INT8 static: codes only.
  auto cfg8 = small_cfg(KvPrecision::kInt8);
  cfg8.static_scales = true;
  EXPECT_EQ(kv_page_bytes(cfg8), 2 * 4 * 16);
}

TEST(PagedKvCache, ModeledPageBytesMatchMeasuredStorage) {
  // Regression: INT4 codes used to be stored one per byte while
  // kv_page_bytes modeled nibble packing, understating real usage 2x. The
  // payload vectors (nibble-packed codes, binary16 payload and params) must
  // now occupy exactly the modeled bytes.
  for (KvPrecision p :
       {KvPrecision::kFp16, KvPrecision::kInt8, KvPrecision::kInt4}) {
    PagedKvCache cache(small_cfg(p));
    EXPECT_EQ(kv_page_bytes(cache.config()), cache.measured_page_bytes())
        << "precision " << static_cast<int>(p);
  }
  auto cfg8 = small_cfg(KvPrecision::kInt8);
  cfg8.static_scales = true;
  PagedKvCache static8(cfg8);
  EXPECT_EQ(kv_page_bytes(cfg8), static8.measured_page_bytes());
}

TEST(KvQuant, NibblePackedDequantMatchesUnpacked) {
  Rng rng(12);
  const auto x = random_vec(rng, 32);
  std::vector<uint8_t> codes(32), packed(16);
  const auto p = kv_quantize(x.data(), 32, 4, codes.data());
  kv_pack_nibbles(codes.data(), 32, packed.data());
  std::vector<float> from_codes(32), from_packed(32);
  kv_dequantize(codes.data(), 32, p, from_codes.data());
  kv_dequantize_packed4(packed.data(), 32, p, from_packed.data());
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(from_packed[size_t(i)], from_codes[size_t(i)]) << i;
}

TEST(PagedKvCache, Int4RequiresEvenHeadDim) {
  KvCacheConfig cfg = small_cfg(KvPrecision::kInt4);
  cfg.head_dim = 7;
  EXPECT_THROW(PagedKvCache{cfg}, CheckError);
  cfg.precision = KvPrecision::kInt8;  // one code per byte: odd dim is fine
  PagedKvCache ok(cfg);
  EXPECT_EQ(kv_page_bytes(cfg), ok.measured_page_bytes());
}

TEST(PagedKvCache, StaleSeqViewDetectedAfterFree) {
  // Regression for preemption: SeqView holds raw page pointers, and
  // free_sequence() can recycle those pages mid-flight. The per-page
  // generation counter turns a silent stale read into a QS_DCHECK failure.
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  Rng rng(13);
  const int a = cache.alloc_sequence();
  const auto k = random_vec(rng, 16);
  cache.append(a, k.data(), k.data());
  const PagedKvCache::SeqView view = cache.view(a);
  std::vector<float> out(8);
  view.read_k(0, 0, out.data());  // live view reads fine
  cache.free_sequence(a);
#ifndef NDEBUG
  EXPECT_THROW(view.read_k(0, 0, out.data()), CheckError);
  // The page may since have been recycled into another sequence; the stale
  // view must still trip even though the page is live again.
  const int b = cache.alloc_sequence();
  cache.append(b, k.data(), k.data());
  EXPECT_THROW(view.read_v(0, 0, out.data()), CheckError);
#else
  GTEST_SKIP() << "generation checks are QS_DCHECK (compiled out in NDEBUG)";
#endif
}

TEST(PagedKvCache, StaticKv8MatchesStaticQuantizer) {
  auto cfg = small_cfg(KvPrecision::kInt8);
  cfg.static_scales = true;
  cfg.static_scale_k = 0.1f;
  cfg.static_scale_v = 0.1f;
  PagedKvCache cache(cfg);
  const int seq = cache.alloc_sequence();
  std::vector<float> kvec(16, 1.0f), vvec(16, -2.0f);
  cache.append(seq, kvec.data(), vvec.data());
  Tensor k, v;
  cache.gather(seq, k, v);
  EXPECT_NEAR(k.at2(0, 0), 1.0f, 0.05f);
  EXPECT_NEAR(v.at2(0, 0), -2.0f, 0.05f);
  // Static scale clips out-of-range values (the KV8 baseline's weakness).
  std::vector<float> big(16, 100.0f);
  cache.append(seq, big.data(), big.data());
  cache.gather(seq, k, v);
  EXPECT_NEAR(k.at2(1, 0), 12.7f, 0.1f);  // clamped at 127 * 0.1
}

TEST(PagedKvCache, AppendBatchMatchesSingleAppendsBitwise) {
  // The batched scatter the step executor uses must store byte-identical
  // pages to token-by-token appends, across every precision and across page
  // boundaries (page_size=4, 13 tokens => 4 pages, last partially filled).
  for (const KvPrecision p :
       {KvPrecision::kFp16, KvPrecision::kInt8, KvPrecision::kInt4}) {
    PagedKvCache one(small_cfg(p)), batch(small_cfg(p));
    const int sa = one.alloc_sequence();
    const int sb = batch.alloc_sequence();
    Rng rng(7);
    const int span = 16;  // n_kv_heads * head_dim
    const int n = 13;
    std::vector<float> k, v;
    for (int t = 0; t < n; ++t) {
      const auto kt = random_vec(rng, span, /*outlier=*/t % 3 ? 0.f : 8.f);
      const auto vt = random_vec(rng, span);
      k.insert(k.end(), kt.begin(), kt.end());
      v.insert(v.end(), vt.begin(), vt.end());
      one.append(sa, kt.data(), vt.data());
    }
    // Mixed batch sizes: 5 + 1 + 7 tokens.
    batch.append_batch(sb, k.data(), v.data(), 5);
    batch.append_batch(sb, k.data() + 5 * span, v.data() + 5 * span, 1);
    batch.append_batch(sb, k.data() + 6 * span, v.data() + 6 * span, 7);
    EXPECT_EQ(one.seq_len(sa), n);
    EXPECT_EQ(batch.seq_len(sb), n);
    EXPECT_EQ(one.pages_in_use(), batch.pages_in_use());
    Tensor k1, v1, k2, v2;
    one.gather(sa, k1, v1);
    batch.gather(sb, k2, v2);
    EXPECT_EQ(max_abs_diff(k1, k2), 0.0f);
    EXPECT_EQ(max_abs_diff(v1, v2), 0.0f);
  }
}

TEST(PagedKvCache, AppendBatchTooLargeThrowsWithoutMutating) {
  // A batch the pool cannot hold must fail before any sequence state
  // mutates: seq_len may never claim tokens whose page slots were not
  // written (gather would dequantize unwritten bytes as valid K/V).
  PagedKvCache cache(small_cfg(KvPrecision::kInt8, /*max_pages=*/2));
  const int seq = cache.alloc_sequence();
  Rng rng(3);
  const int span = 16;
  const auto k = random_vec(rng, 3 * span), v = random_vec(rng, 3 * span);
  cache.append_batch(seq, k.data(), v.data(), 3);
  // Pool holds 2 pages x 4 tokens = 8; 3 used, 6 more cannot fit.
  std::vector<float> big_k(6 * span, 1.0f), big_v(6 * span, 1.0f);
  EXPECT_THROW(cache.append_batch(seq, big_k.data(), big_v.data(), 6),
               CheckError);
  EXPECT_EQ(cache.seq_len(seq), 3);
  Tensor kd, vd;
  cache.gather(seq, kd, vd);
  EXPECT_EQ(kd.rows(), 3);
}

TEST(PagedKvCache, AppendBatchConcurrentDistinctSequences) {
  // The batched step executor scatters whole chunks into distinct sequences
  // concurrently; contents must match a serial run exactly and the pool
  // accounting must stay conserved.
  const int kSeqs = 6, kTokens = 23, span = 16;
  Rng rng(11);
  std::vector<std::vector<float>> ks(kSeqs), vs(kSeqs);
  for (int s = 0; s < kSeqs; ++s)
    for (int t = 0; t < kTokens; ++t) {
      const auto kt = random_vec(rng, span);
      const auto vt = random_vec(rng, span);
      ks[size_t(s)].insert(ks[size_t(s)].end(), kt.begin(), kt.end());
      vs[size_t(s)].insert(vs[size_t(s)].end(), vt.begin(), vt.end());
    }

  PagedKvCache serial(small_cfg(KvPrecision::kInt4, 256));
  PagedKvCache parallel_cache(small_cfg(KvPrecision::kInt4, 256));
  std::vector<int> serial_ids(kSeqs), parallel_ids(kSeqs);
  for (int s = 0; s < kSeqs; ++s) {
    serial_ids[size_t(s)] = serial.alloc_sequence();
    parallel_ids[size_t(s)] = parallel_cache.alloc_sequence();
    serial.append_batch(serial_ids[size_t(s)], ks[size_t(s)].data(),
                        vs[size_t(s)].data(), kTokens);
  }
  parallel_for(0, kSeqs, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s)
      parallel_cache.append_batch(parallel_ids[size_t(s)],
                                  ks[size_t(s)].data(), vs[size_t(s)].data(),
                                  kTokens);
  });

  EXPECT_EQ(serial.pages_in_use(), parallel_cache.pages_in_use());
  for (int s = 0; s < kSeqs; ++s) {
    Tensor k1, v1, k2, v2;
    serial.gather(serial_ids[size_t(s)], k1, v1);
    parallel_cache.gather(parallel_ids[size_t(s)], k2, v2);
    EXPECT_EQ(max_abs_diff(k1, k2), 0.0f);
    EXPECT_EQ(max_abs_diff(v1, v2), 0.0f);
  }
}

// --- truncate_sequence (speculative-decoding rollback) -----------------------

TEST(PagedKvCache, TruncateFreesPagesAndComposesWithAppend) {
  // page_size = 4: 13 tokens span 4 pages. Truncating to 9 keeps 3 pages,
  // to 8 keeps 2 (exact boundary), and re-appending after a rollback stores
  // byte-identical state to a cache that never held the rejected tail.
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  PagedKvCache replay(small_cfg(KvPrecision::kInt4));
  const int seq = cache.alloc_sequence();
  const int rep = replay.alloc_sequence();
  Rng rng(21);
  const int span = 16;  // n_kv_heads * head_dim
  std::vector<std::vector<float>> ks, vs;
  for (int t = 0; t < 13; ++t) {
    ks.push_back(random_vec(rng, span, t % 4 ? 0.f : 6.f));
    vs.push_back(random_vec(rng, span));
    cache.append(seq, ks.back().data(), vs.back().data());
  }
  EXPECT_EQ(cache.seq_len(seq), 13);
  EXPECT_EQ(cache.pages_in_use(), 4);

  cache.truncate_sequence(seq, 9);
  EXPECT_EQ(cache.seq_len(seq), 9);
  EXPECT_EQ(cache.pages_in_use(), 3);
  cache.truncate_sequence(seq, 8);
  EXPECT_EQ(cache.seq_len(seq), 8);
  EXPECT_EQ(cache.pages_in_use(), 2);
  cache.truncate_sequence(seq, 8);  // no-op at the same length
  EXPECT_EQ(cache.pages_in_use(), 2);

  // Roll forward again with DIFFERENT tokens (the accepted continuation).
  std::vector<float> k2, v2;
  for (int t = 0; t < 5; ++t) {
    const auto kt = random_vec(rng, span);
    const auto vt = random_vec(rng, span);
    k2.insert(k2.end(), kt.begin(), kt.end());
    v2.insert(v2.end(), vt.begin(), vt.end());
  }
  cache.append_batch(seq, k2.data(), v2.data(), 5);
  EXPECT_EQ(cache.seq_len(seq), 13);

  for (int t = 0; t < 8; ++t)
    replay.append(rep, ks[size_t(t)].data(), vs[size_t(t)].data());
  replay.append_batch(rep, k2.data(), v2.data(), 5);
  Tensor ka, va, kb, vb;
  cache.gather(seq, ka, va);
  replay.gather(rep, kb, vb);
  EXPECT_EQ(max_abs_diff(ka, kb), 0.0f);
  EXPECT_EQ(max_abs_diff(va, vb), 0.0f);

  cache.free_sequence(seq);
  EXPECT_EQ(cache.pages_in_use(), 0);
  EXPECT_THROW(cache.truncate_sequence(seq, 0), CheckError);  // not live
}

TEST(PagedKvCache, TruncateValidatesLength) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt8));
  const int seq = cache.alloc_sequence();
  Rng rng(3);
  const auto k = random_vec(rng, 16);
  cache.append(seq, k.data(), k.data());
  EXPECT_THROW(cache.truncate_sequence(seq, 2), CheckError);   // > length
  EXPECT_THROW(cache.truncate_sequence(seq, -1), CheckError);  // negative
  cache.truncate_sequence(seq, 0);  // to empty is legal
  EXPECT_EQ(cache.seq_len(seq), 0);
  EXPECT_EQ(cache.pages_in_use(), 0);
}

TEST(PagedKvCache, TruncateFuzzInterleavedInvariants) {
  // Randomized interleaving of append_batch / truncate_sequence /
  // free+realloc across 4 sequences, with a float mirror of every live
  // sequence. After each op: seq_len, used_pages (sum of per-sequence page
  // needs), and byte accounting must hold; periodically a live sequence's
  // gather must equal a fresh cache replaying the mirror — rollback plus
  // re-append must be indistinguishable from never having appended the tail.
  for (const KvPrecision p : {KvPrecision::kInt4, KvPrecision::kInt8}) {
    PagedKvCache cache(small_cfg(p, /*max_pages=*/256));
    Rng rng(static_cast<uint64_t>(77 + static_cast<int>(p)));
    const int span = 16;
    const int64_t page = cache.config().page_size;
    struct Mirror {
      int id = -1;
      std::vector<float> k, v;  // span floats per token
      int64_t len() const { return static_cast<int64_t>(k.size()) / 16; }
    };
    std::vector<Mirror> seqs(4);
    for (auto& s : seqs) s.id = cache.alloc_sequence();

    const auto check_accounting = [&]() {
      int64_t pages = 0;
      for (const auto& s : seqs) {
        ASSERT_EQ(cache.seq_len(s.id), s.len());
        pages += (s.len() + page - 1) / page;
      }
      ASSERT_EQ(cache.pages_in_use(), pages);
      ASSERT_EQ(cache.bytes_in_use(),
                pages * kv_page_bytes(cache.config()));
    };

    for (int op = 0; op < 240; ++op) {
      Mirror& s = seqs[static_cast<size_t>(rng.uniform_int(0, 3))];
      const int action = rng.uniform_int(0, 9);
      if (action <= 4) {  // append_batch of 1..6 tokens
        const int n = rng.uniform_int(1, 6);
        std::vector<float> k, v;
        for (int t = 0; t < n; ++t) {
          const auto kt = random_vec(rng, span, t % 3 ? 0.f : 7.f);
          const auto vt = random_vec(rng, span);
          k.insert(k.end(), kt.begin(), kt.end());
          v.insert(v.end(), vt.begin(), vt.end());
        }
        cache.append_batch(s.id, k.data(), v.data(), n);
        s.k.insert(s.k.end(), k.begin(), k.end());
        s.v.insert(s.v.end(), v.begin(), v.end());
      } else if (action <= 8) {  // truncate to a random shorter length
        const int64_t new_len =
            rng.uniform_int(0, static_cast<int>(s.len()));
        cache.truncate_sequence(s.id, new_len);
        s.k.resize(static_cast<size_t>(new_len * span));
        s.v.resize(static_cast<size_t>(new_len * span));
      } else {  // free and immediately re-alloc (page recycling churn)
        cache.free_sequence(s.id);
        s.id = cache.alloc_sequence();
        s.k.clear();
        s.v.clear();
      }
      check_accounting();

      if (op % 16 == 15) {
        const Mirror& probe = seqs[static_cast<size_t>(rng.uniform_int(0, 3))];
        if (probe.len() == 0) continue;
        PagedKvCache fresh(small_cfg(p, /*max_pages=*/256));
        const int f = fresh.alloc_sequence();
        fresh.append_batch(f, probe.k.data(), probe.v.data(), probe.len());
        Tensor ka, va, kb, vb;
        cache.gather(probe.id, ka, va);
        fresh.gather(f, kb, vb);
        ASSERT_EQ(max_abs_diff(ka, kb), 0.0f);
        ASSERT_EQ(max_abs_diff(va, vb), 0.0f);
      }
    }
  }
}

TEST(PagedKvCache, StaleSeqViewDetectedAfterTruncate) {
  // Rollback recycles the freed tail pages and rewrites the truncated slots
  // of the kept boundary page, so a SeqView taken before truncate_sequence
  // must trip the generation QS_DCHECK exactly like preemption's
  // free_sequence — on the freed pages AND on the partially-truncated one.
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  Rng rng(31);
  const int seq = cache.alloc_sequence();
  std::vector<float> kv;
  for (int t = 0; t < 7; ++t) {  // 2 pages: 4 + 3 tokens
    const auto x = random_vec(rng, 16);
    kv.insert(kv.end(), x.begin(), x.end());
  }
  cache.append_batch(seq, kv.data(), kv.data(), 7);
  const PagedKvCache::SeqView before = cache.view(seq);
  std::vector<float> out(8);
  before.read_k(6, 0, out.data());  // live view reads fine

  cache.truncate_sequence(seq, 2);  // frees page 1, cuts into page 0
#ifndef NDEBUG
  EXPECT_THROW(before.read_k(5, 0, out.data()), CheckError);  // freed page
  EXPECT_THROW(before.read_k(1, 0, out.data()), CheckError);  // cut page
  // A view taken AFTER the rollback snapshots the bumped generation and
  // reads the surviving prefix fine.
  const PagedKvCache::SeqView after = cache.view(seq);
  after.read_k(1, 0, out.data());
  EXPECT_EQ(after.length(), 2);

  // Boundary-exact truncation leaves kept pages untouched: the old view
  // still reads them, only the freed tail trips.
  PagedKvCache c2(small_cfg(KvPrecision::kInt8));
  const int s2 = c2.alloc_sequence();
  c2.append_batch(s2, kv.data(), kv.data(), 7);
  const PagedKvCache::SeqView v2 = c2.view(s2);
  c2.truncate_sequence(s2, 4);  // exact page boundary
  v2.read_k(3, 0, out.data());                               // kept page: ok
  EXPECT_THROW(v2.read_k(4, 0, out.data()), CheckError);     // freed page
#else
  GTEST_SKIP() << "generation checks are QS_DCHECK (compiled out in NDEBUG)";
#endif
}

TEST(PagedKvCache, ForkAliasesPagesWithoutCopying) {
  // 10 tokens on page_size 4 = pages [4, 4, 2]. Forking the first 8 tokens
  // aliases the two full pages: zero allocation, zero copies, and the fork's
  // bytes ARE the source's bytes.
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  Rng rng(41);
  const int src = cache.alloc_sequence();
  std::vector<float> k, v;
  for (int t = 0; t < 10; ++t) {
    const auto kt = random_vec(rng, 16, t % 4 ? 0.f : 5.f);
    const auto vt = random_vec(rng, 16);
    k.insert(k.end(), kt.begin(), kt.end());
    v.insert(v.end(), vt.begin(), vt.end());
  }
  cache.append_batch(src, k.data(), v.data(), 10);
  ASSERT_EQ(cache.pages_in_use(), 3);

  const int fork = cache.fork_sequence(src, 8);
  EXPECT_EQ(cache.seq_len(fork), 8);
  EXPECT_EQ(cache.pages_in_use(), 3);  // nothing allocated
  EXPECT_EQ(cache.cow_page_copies(), 0);
  EXPECT_EQ(cache.shared_pages(), 2);
  EXPECT_EQ(cache.seq_shared_pages(src), 2);
  EXPECT_EQ(cache.seq_shared_pages(fork), 2);

  Tensor ks, vs, kf, vf;
  cache.gather(src, ks, vs);
  cache.gather(fork, kf, vf);
  for (int64_t t = 0; t < 8; ++t)
    for (int64_t c = 0; c < 16; ++c) {
      ASSERT_EQ(kf.at2(t, c), ks.at2(t, c));
      ASSERT_EQ(vf.at2(t, c), vs.at2(t, c));
    }

  // Freeing the source keeps the shared pages alive for the fork; the
  // source's private tail page is the only one released.
  cache.free_sequence(src);
  EXPECT_EQ(cache.pages_in_use(), 2);
  EXPECT_EQ(cache.shared_pages(), 0);  // refcounts dropped to 1
  Tensor kf2, vf2;
  cache.gather(fork, kf2, vf2);
  EXPECT_EQ(max_abs_diff(kf, kf2), 0.0f);
  cache.free_sequence(fork);
  EXPECT_EQ(cache.pages_in_use(), 0);
}

TEST(PagedKvCache, ForkZeroAndFullLength) {
  PagedKvCache cache(small_cfg(KvPrecision::kInt8));
  Rng rng(42);
  const int src = cache.alloc_sequence();
  const auto x = random_vec(rng, 16);
  cache.append(src, x.data(), x.data());
  const int empty = cache.fork_sequence(src, 0);
  EXPECT_EQ(cache.seq_len(empty), 0);
  EXPECT_EQ(cache.shared_pages(), 0);
  const int full = cache.fork_sequence(src, 1);  // partial boundary page
  EXPECT_EQ(cache.seq_len(full), 1);
  EXPECT_EQ(cache.shared_pages(), 1);
  EXPECT_THROW(cache.fork_sequence(src, 2), CheckError);   // > length
  EXPECT_THROW(cache.fork_sequence(src, -1), CheckError);  // negative
  cache.free_sequence(src);
  cache.free_sequence(empty);
  cache.free_sequence(full);
  EXPECT_EQ(cache.pages_in_use(), 0);
}

TEST(PagedKvCache, CowWriterGetsPrivateCopySourceUnchanged) {
  // Fork including the partial boundary page, then append to the FORK: the
  // shared tail page is copied privately first, the source's bytes and its
  // pre-existing SeqView stay untouched, and the fork's content equals a
  // replay that never shared anything.
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  PagedKvCache replay(small_cfg(KvPrecision::kInt4));
  Rng rng(43);
  const int src = cache.alloc_sequence();
  std::vector<float> k, v;
  for (int t = 0; t < 6; ++t) {  // pages [4, 2]
    const auto kt = random_vec(rng, 16, t % 3 ? 0.f : 4.f);
    const auto vt = random_vec(rng, 16);
    k.insert(k.end(), kt.begin(), kt.end());
    v.insert(v.end(), vt.begin(), vt.end());
  }
  cache.append_batch(src, k.data(), v.data(), 6);
  const int fork = cache.fork_sequence(src, 6);
  EXPECT_EQ(cache.shared_pages(), 2);
  const PagedKvCache::SeqView src_view = cache.view(src);

  Tensor ks0, vs0;
  cache.gather(src, ks0, vs0);
  const auto kx = random_vec(rng, 16);
  const auto vx = random_vec(rng, 16);
  cache.append(fork, kx.data(), vx.data());  // writes slot 2 of the tail page
  EXPECT_EQ(cache.cow_page_copies(), 1);
  EXPECT_EQ(cache.pages_in_use(), 3);   // the private copy
  EXPECT_EQ(cache.shared_pages(), 1);   // only the full page stays shared
  EXPECT_EQ(cache.seq_shared_pages(src), 1);
  EXPECT_EQ(cache.seq_shared_pages(fork), 1);

  // Source is bitwise untouched — including through the pre-CoW view (a CoW
  // copy must NOT bump the shared page's generation).
  Tensor ks1, vs1;
  cache.gather(src, ks1, vs1);
  EXPECT_EQ(max_abs_diff(ks0, ks1), 0.0f);
  EXPECT_EQ(max_abs_diff(vs0, vs1), 0.0f);
  std::vector<float> out(8);
  src_view.read_k(5, 1, out.data());

  // Fork content == replay without sharing.
  const int rep = replay.alloc_sequence();
  replay.append_batch(rep, k.data(), v.data(), 6);
  replay.append(rep, kx.data(), vx.data());
  Tensor ka, va, kb, vb;
  cache.gather(fork, ka, va);
  replay.gather(rep, kb, vb);
  EXPECT_EQ(max_abs_diff(ka, kb), 0.0f);
  EXPECT_EQ(max_abs_diff(va, vb), 0.0f);

  // The fork's tail is now private: further appends copy nothing more.
  cache.append(fork, kx.data(), vx.data());
  EXPECT_EQ(cache.cow_page_copies(), 1);
  cache.free_sequence(src);
  cache.free_sequence(fork);
  EXPECT_EQ(cache.pages_in_use(), 0);
  EXPECT_EQ(cache.shared_pages(), 0);
}

TEST(PagedKvCache, SourceAppendAfterForkCopiesOnWrite) {
  // Sharing is symmetric: after a boundary-inclusive fork, the SOURCE is a
  // writer into a shared page too and must CoW before appending.
  PagedKvCache cache(small_cfg(KvPrecision::kInt8));
  Rng rng(44);
  const int src = cache.alloc_sequence();
  std::vector<float> k;
  for (int t = 0; t < 5; ++t) {  // pages [4, 1]
    const auto kt = random_vec(rng, 16);
    k.insert(k.end(), kt.begin(), kt.end());
  }
  cache.append_batch(src, k.data(), k.data(), 5);
  const int fork = cache.fork_sequence(src, 5);
  Tensor kf0, vf0;
  cache.gather(fork, kf0, vf0);

  const auto kx = random_vec(rng, 16);
  cache.append(src, kx.data(), kx.data());
  EXPECT_EQ(cache.cow_page_copies(), 1);
  EXPECT_EQ(cache.seq_len(src), 6);
  EXPECT_EQ(cache.seq_len(fork), 5);
  Tensor kf1, vf1;
  cache.gather(fork, kf1, vf1);
  EXPECT_EQ(max_abs_diff(kf0, kf1), 0.0f);
  EXPECT_EQ(max_abs_diff(vf0, vf1), 0.0f);
  cache.free_sequence(src);
  cache.free_sequence(fork);
  EXPECT_EQ(cache.pages_in_use(), 0);
}

TEST(PagedKvCache, TruncateNeverTouchesSharedBoundaryPage) {
  // The speculative-rollback hazard: truncating a sequence whose boundary
  // page is shared must leave the page's bytes and generation alone — the
  // other owner keeps reading through a pre-rollback view. The truncated
  // writer CoWs on its next append instead.
  PagedKvCache cache(small_cfg(KvPrecision::kInt4));
  Rng rng(45);
  const int src = cache.alloc_sequence();
  std::vector<float> k;
  for (int t = 0; t < 8; ++t) {  // pages [4, 4]
    const auto kt = random_vec(rng, 16);
    k.insert(k.end(), kt.begin(), kt.end());
  }
  cache.append_batch(src, k.data(), k.data(), 8);
  const int fork = cache.fork_sequence(src, 8);
  const PagedKvCache::SeqView fork_view = cache.view(fork);

  cache.truncate_sequence(src, 6);  // cuts INTO shared page 1
  EXPECT_EQ(cache.seq_len(src), 6);
  EXPECT_EQ(cache.seq_len(fork), 8);
  EXPECT_EQ(cache.pages_in_use(), 2);   // nothing freed (both refs live)
  EXPECT_EQ(cache.shared_pages(), 2);   // still shared
  std::vector<float> out(8);
  fork_view.read_k(7, 0, out.data());   // no generation bump

  // Appending after the shared-boundary truncate copies the page first;
  // the fork still sees the ORIGINAL tokens 6 and 7.
  Tensor kf0, vf0;
  cache.gather(fork, kf0, vf0);
  const auto kx = random_vec(rng, 16);
  cache.append(src, kx.data(), kx.data());
  EXPECT_EQ(cache.cow_page_copies(), 1);
  Tensor kf1, vf1;
  cache.gather(fork, kf1, vf1);
  EXPECT_EQ(max_abs_diff(kf0, kf1), 0.0f);
  fork_view.read_k(7, 0, out.data());

  // Truncating the tail page AWAY entirely just drops a reference: the fork
  // keeps the page; the source's table shrinks.
  cache.truncate_sequence(fork, 3);  // fork's page 1 ref dropped (src CoW'd)
  EXPECT_EQ(cache.seq_len(fork), 3);
  cache.free_sequence(src);
  cache.free_sequence(fork);
  EXPECT_EQ(cache.pages_in_use(), 0);
  EXPECT_EQ(cache.shared_pages(), 0);
}

TEST(PagedKvCache, ForkCowFuzzInterleavedInvariants) {
  // Randomized interleaving of fork / append_batch / truncate / free across
  // up to 6 sequences, against TWO mirrors: a float mirror per sequence
  // (bitwise replay-equivalence) and a shadow page model implementing the
  // documented refcount semantics (exact pages_in_use / shared_pages /
  // seq_shared_pages / cow_page_copies accounting at every step).
  for (const KvPrecision p : {KvPrecision::kInt4, KvPrecision::kInt8}) {
    PagedKvCache cache(small_cfg(p, /*max_pages=*/512));
    Rng rng(static_cast<uint64_t>(55 + static_cast<int>(p)));
    const int span = 16;
    const int64_t page = cache.config().page_size;

    struct Shadow {
      int id = -1;                 // cache sequence handle
      std::vector<float> k, v;     // span floats per token
      std::vector<int> pages;      // shadow page ids
      int64_t len() const { return static_cast<int64_t>(k.size()) / 16; }
    };
    std::vector<Shadow> seqs;
    std::vector<int> ref;  // shadow page id -> refcount (0 = free)
    int64_t shadow_cows = 0;
    const auto new_page = [&ref]() {
      ref.push_back(1);
      return static_cast<int>(ref.size()) - 1;
    };
    // First write into a sequence's existing tail page: CoW if shared.
    const auto shadow_tail_write = [&](Shadow& s) {
      if (s.len() % page == 0 || s.pages.empty()) return;
      int& rc = ref[static_cast<size_t>(s.pages.back())];
      if (rc > 1) {
        --rc;
        s.pages.back() = new_page();
        ++shadow_cows;
      }
    };
    const auto check = [&]() {
      int64_t in_use = 0, shared = 0;
      for (const int rc : ref) {
        in_use += rc > 0;
        shared += rc > 1;
      }
      ASSERT_EQ(cache.pages_in_use(), in_use);
      ASSERT_EQ(cache.shared_pages(), shared);
      ASSERT_EQ(cache.cow_page_copies(), shadow_cows);
      for (const auto& s : seqs) {
        ASSERT_EQ(cache.seq_len(s.id), s.len());
        int64_t mine = 0;
        for (const int pid : s.pages)
          mine += ref[static_cast<size_t>(pid)] > 1;
        ASSERT_EQ(cache.seq_shared_pages(s.id), mine);
      }
    };

    seqs.push_back({});
    seqs.back().id = cache.alloc_sequence();
    for (int op = 0; op < 400; ++op) {
      Shadow& s = seqs[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int>(seqs.size()) - 1))];
      const int action = rng.uniform_int(0, 9);
      if (action <= 3) {  // append_batch of 1..6 tokens
        const int n = rng.uniform_int(1, 6);
        std::vector<float> k, v;
        for (int t = 0; t < n; ++t) {
          const auto kt = random_vec(rng, span, t % 3 ? 0.f : 6.f);
          const auto vt = random_vec(rng, span);
          k.insert(k.end(), kt.begin(), kt.end());
          v.insert(v.end(), vt.begin(), vt.end());
        }
        cache.append_batch(s.id, k.data(), v.data(), n);
        shadow_tail_write(s);
        const int64_t target = s.len() + n;
        while (static_cast<int64_t>(s.pages.size()) * page < target)
          s.pages.push_back(new_page());
        s.k.insert(s.k.end(), k.begin(), k.end());
        s.v.insert(s.v.end(), v.begin(), v.end());
      } else if (action <= 5 && seqs.size() < 6) {  // fork a random prefix
        const int64_t upto = rng.uniform_int(0, static_cast<int>(s.len()));
        Shadow f;
        f.id = cache.fork_sequence(s.id, upto);
        const int64_t n_pages = (upto + page - 1) / page;
        for (int64_t pi = 0; pi < n_pages; ++pi) {
          f.pages.push_back(s.pages[static_cast<size_t>(pi)]);
          ++ref[static_cast<size_t>(f.pages.back())];
        }
        f.k.assign(s.k.begin(), s.k.begin() + upto * span);
        f.v.assign(s.v.begin(), s.v.begin() + upto * span);
        seqs.push_back(std::move(f));  // note: `s` may dangle; re-looped next
      } else if (action <= 8) {  // truncate to a random shorter length
        const int64_t new_len = rng.uniform_int(0, static_cast<int>(s.len()));
        cache.truncate_sequence(s.id, new_len);
        const int64_t keep = (new_len + page - 1) / page;
        while (static_cast<int64_t>(s.pages.size()) > keep) {
          --ref[static_cast<size_t>(s.pages.back())];
          s.pages.pop_back();
        }
        s.k.resize(static_cast<size_t>(new_len * span));
        s.v.resize(static_cast<size_t>(new_len * span));
      } else if (seqs.size() > 1) {  // free a sequence
        cache.free_sequence(s.id);
        for (const int pid : s.pages) --ref[static_cast<size_t>(pid)];
        if (&s != &seqs.back()) s = std::move(seqs.back());
        seqs.pop_back();
      }
      check();

      if (op % 16 == 15) {
        const Shadow& probe = seqs[static_cast<size_t>(
            rng.uniform_int(0, static_cast<int>(seqs.size()) - 1))];
        if (probe.len() == 0) continue;
        PagedKvCache fresh(small_cfg(p, /*max_pages=*/512));
        const int f = fresh.alloc_sequence();
        fresh.append_batch(f, probe.k.data(), probe.v.data(), probe.len());
        Tensor ka, va, kb, vb;
        cache.gather(probe.id, ka, va);
        fresh.gather(f, kb, vb);
        ASSERT_EQ(max_abs_diff(ka, kb), 0.0f);
        ASSERT_EQ(max_abs_diff(va, vb), 0.0f);
      }
    }
    for (const auto& s : seqs) cache.free_sequence(s.id);
    ASSERT_EQ(cache.pages_in_use(), 0);
    ASSERT_EQ(cache.shared_pages(), 0);
  }
}

}  // namespace
}  // namespace qserve
