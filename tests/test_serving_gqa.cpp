// Grouped-query attention end to end: a g=4 model (8 query heads sharing 2
// KV heads, the Llama-3-70B ratio) must stream bitwise identically across
// ISAs, thread counts, and tensor-parallel shard counts; its KV cache must
// cost 4x fewer bytes per token than the MHA layout at the same query width;
// and head-layout validation must reject indivisible configurations loudly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "serving/engine.h"

namespace qserve {
namespace {

struct Fixture {
  ModelWeights weights;
  Fixture() : weights(make_synthetic_weights(toy_config_gqa4(1))) {}
};

const Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

struct EnvGuard {
  ~EnvGuard() {
    set_num_threads(0);
    set_tp_shards(0);
    cpu::clear_isa_override();
  }
};

struct Workload {
  std::vector<std::vector<int>> prompts;
  std::vector<int> max_new;
};

Workload random_workload(Rng& rng, int n_requests) {
  Workload w;
  for (int i = 0; i < n_requests; ++i) {
    std::vector<int> prompt(static_cast<size_t>(rng.uniform_int(1, 24)));
    for (auto& t : prompt) t = rng.uniform_int(0, 511);
    w.prompts.push_back(std::move(prompt));
    w.max_new.push_back(rng.uniform_int(4, 12));
  }
  return w;
}

struct RunOutcome {
  std::vector<std::vector<int>> streams;
  EngineStats stats;
};

RunOutcome run_engine(const Workload& w, int shards, const EngineConfig& cfg,
                      const RequestOptions& base_opts = {}) {
  QuantizedModel model(fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128(),
                       TpConfig{shards});
  ServingEngine engine(&model, cfg);
  std::vector<int> ids;
  for (size_t i = 0; i < w.prompts.size(); ++i) {
    RequestOptions opts = base_opts;
    opts.max_new_tokens = w.max_new[i];
    ids.push_back(engine.submit(w.prompts[i], opts, nullptr, nullptr));
  }
  RunOutcome out;
  out.stats = engine.run_to_completion();
  for (int id : ids) out.streams.push_back(engine.request(id).generated);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
  return out;
}

TEST(GqaConfig, Group4LayoutAndKvBytesReduction) {
  const ModelConfig gqa = toy_config_gqa4(1);
  ASSERT_EQ(gqa.n_heads / gqa.n_kv_heads, 4);
  ASSERT_EQ(gqa.n_heads % gqa.n_kv_heads, 0);
  // Same query width (8 heads x 32 = 256), 4x fewer KV heads: the per-token
  // KV bytes — and every cache page — shrink exactly 4x vs MHA.
  KvCacheConfig mha_kv, gqa_kv;
  mha_kv.n_kv_heads = gqa.n_heads;
  mha_kv.head_dim = gqa.head_dim;
  gqa_kv.n_kv_heads = gqa.n_kv_heads;
  gqa_kv.head_dim = gqa.head_dim;
  EXPECT_EQ(kv_page_bytes(mha_kv), 4 * kv_page_bytes(gqa_kv));
  const ModelConfig mha_like = [&] {
    ModelConfig m = gqa;
    m.n_kv_heads = m.n_heads;
    return m;
  }();
  EXPECT_EQ(mha_like.kv_bytes_per_token(4), 4 * gqa.kv_bytes_per_token(4));
}

TEST(GqaConfig, IndivisibleHeadLayoutThrowsLoudly) {
  ModelConfig bad = toy_config_gqa4(1);
  bad.n_kv_heads = 3;  // 8 % 3 != 0: no whole query group per KV head
  EXPECT_THROW(QuantizedModel(make_synthetic_weights(bad),
                              QuantSchemeConfig::qserve_w4a8kv4_g128()),
               CheckError);
  // More shards than KV heads cannot give each shard a whole query group.
  EXPECT_THROW(QuantizedModel(fixture().weights,
                              QuantSchemeConfig::qserve_w4a8kv4_g128(),
                              TpConfig{4}),
               CheckError);
}

TEST(GqaEngine, StreamsBitwiseAcrossIsaThreadsAndShards) {
  EnvGuard guard;
  Rng rng(4100);
  const Workload w = random_workload(rng, 5);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  cfg.scheduler.prefill_chunk = 8;
  std::vector<cpu::Isa> isas = {cpu::Isa::kScalar};
  if (cpu::detected_isa() != cpu::Isa::kScalar)
    isas.push_back(cpu::detected_isa());
  set_num_threads(1);
  cpu::set_isa(cpu::Isa::kScalar);
  const RunOutcome base = run_engine(w, 1, cfg);
  for (const cpu::Isa isa : isas) {
    cpu::set_isa(isa);
    for (const int threads : {1, 8}) {
      set_num_threads(threads);
      for (const int shards : {1, 2}) {
        const RunOutcome run = run_engine(w, shards, cfg);
        EXPECT_EQ(base.streams, run.streams)
            << "isa=" << cpu::isa_name(isa) << " threads=" << threads
            << " shards=" << shards;
      }
    }
  }
}

TEST(GqaEngine, PreemptionChurnStreamsMatch) {
  EnvGuard guard;
  Workload w;
  for (int i = 0; i < 3; ++i) {
    w.prompts.push_back(std::vector<int>(8, 2 + i));
    w.max_new.push_back(18 + 4 * i);
  }
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  auto run_pool = [&](int64_t pages, int shards) {
    QuantizedModel model(fixture().weights, [&] {
      QuantSchemeConfig s = QuantSchemeConfig::qserve_w4a8kv4_g128();
      s.kv_max_pages = pages;
      return s;
    }(), TpConfig{shards});
    ServingEngine engine(&model, cfg);
    std::vector<int> ids;
    for (size_t i = 0; i < w.prompts.size(); ++i)
      ids.push_back(engine.submit(w.prompts[i], w.max_new[i]));
    RunOutcome out;
    out.stats = engine.run_to_completion();
    for (int id : ids) out.streams.push_back(engine.request(id).generated);
    EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
    return out;
  };
  const RunOutcome roomy = run_pool(1 << 20, 1);
  const RunOutcome tight = run_pool(3, 1);
  EXPECT_GE(tight.stats.preemptions, 1);
  EXPECT_EQ(roomy.streams, tight.streams);
  const RunOutcome tight_tp = run_pool(3, 2);
  EXPECT_EQ(roomy.streams, tight_tp.streams);
  EXPECT_EQ(tight.stats.preemptions, tight_tp.stats.preemptions);
}

TEST(GqaEngine, SlidingWindowComposesWithGroupedHeads) {
  // GQA + windowed KV: the ring walks KV heads, query groups walk the ring's
  // runs; streams must be shard-invariant and recycling must engage.
  EnvGuard guard;
  Rng rng(4101);
  Workload w = random_workload(rng, 3);
  // Cross sink + window + slack + boundary page (= 80 tokens at the
  // engine's 16-token slack) so the ring genuinely recycles.
  for (auto& m : w.max_new) m += 90;
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  cfg.scheduler.prefill_chunk = 16;
  RequestOptions opts;
  opts.attention_window = 32;
  opts.sink_tokens = 16;
  const RunOutcome base = run_engine(w, 1, cfg, opts);
  EXPECT_EQ(base.stats.windowed_requests, 3);
  EXPECT_GT(base.stats.kv_recycled_pages, 0);
  const RunOutcome tp = run_engine(w, 2, cfg, opts);
  EXPECT_EQ(base.streams, tp.streams);
  // The same workload without a window streams identically while every
  // context stays under sink + window... which it does not here, so the
  // windowed run is genuinely exercising the grouped windowed kernels:
  // recycled pages prove pages were reused in place.
  EXPECT_EQ(base.stats.kv_recycled_pages, tp.stats.kv_recycled_pages);
}

}  // namespace
}  // namespace qserve
