// Cross-ISA equivalence of the GEMM microkernel subsystem: the scalar, AVX2
// and AVX-512 VNNI paths must produce bitwise-identical INT32 accumulators
// and FP16 outputs for every quant scheme, across m in {1, 7, 64}, odd n/k,
// mixed activation magnitudes (including rows whose codes clamp to -128),
// and both protective-range and naive-range (deliberate INT8 overflow)
// per-group weights. Also covers the QSERVE_ISA override plumbing and the
// streamed kernel's single-token bypass.
#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "kernels/cpu/microkernel.h"
#include "kernels/gemm.h"
#include "kernels/weight_layout.h"
#include "model/quantized_model.h"
#include "model/weights.h"
#include "quant/quantize.h"

namespace qserve {
namespace {

using cpu::Isa;

// RAII: pin an ISA for a scope, always return control to env/detection.
struct IsaGuard {
  explicit IsaGuard(Isa isa) { cpu::set_isa(isa); }
  ~IsaGuard() { cpu::clear_isa_override(); }
};

std::vector<Isa> supported_isas() {
  std::vector<Isa> v{Isa::kScalar};
  if (static_cast<int>(cpu::detected_isa()) >= static_cast<int>(Isa::kAvx2))
    v.push_back(Isa::kAvx2);
  if (static_cast<int>(cpu::detected_isa()) >= static_cast<int>(Isa::kAvx512))
    v.push_back(Isa::kAvx512);
  return v;
}

// Activations spanning ~12 orders of magnitude across rows: tiny rows push
// the FP16 subnormal scale path where codes can clamp to -128, exercising
// the full operand range of the SIMD tricks.
Tensor random_acts(int64_t m, int64_t k, uint64_t seed) {
  Rng rng(seed);
  Tensor t({m, k});
  for (int64_t r = 0; r < m; ++r) {
    const float row_scale = std::pow(10.0f, float(r % 13) - 6.0f);
    for (int64_t c = 0; c < k; ++c)
      t.at2(r, c) = rng.heavy_tailed(row_scale);
  }
  return t;
}

Tensor random_weights(int64_t n, int64_t k, uint64_t seed) {
  Rng rng(seed);
  Tensor t({n, k});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.heavy_tailed();
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const char* tag) {
  ASSERT_TRUE(a.same_shape(b)) << tag;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           sizeof(float) * static_cast<size_t>(a.numel())))
      << tag;
}

void expect_bitwise_equal(const I32Tensor& a, const I32Tensor& b,
                          const char* tag) {
  ASSERT_TRUE(a.same_shape(b)) << tag;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           sizeof(int32_t) * static_cast<size_t>(a.numel())))
      << tag;
}

// Run `gemm(qx)` (a plain-API kernel) and `pack()` + accumulators under every
// supported ISA and require bitwise identity with the scalar result.
template <typename Weights, typename GemmFn>
void check_all_isas(const QuantizedActs& qx, const Weights& qw,
                    const GemmFn& gemm, const char* tag) {
  Tensor y_scalar;
  I32Tensor acc_scalar;
  {
    IsaGuard guard(Isa::kScalar);
    y_scalar = gemm(qx, qw);
    acc_scalar = gemm_blocked_acc(
        qx, pack_gemm_b(qw, cpu::microkernel_for(Isa::kScalar).nr));
  }
  for (Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    const Tensor y = gemm(qx, qw);
    const I32Tensor acc =
        gemm_blocked_acc(qx, pack_gemm_b(qw, cpu::microkernel_for(isa).nr));
    SCOPED_TRACE(std::string(tag) + " isa=" + cpu::isa_name(isa));
    expect_bitwise_equal(y_scalar, y, tag);
    expect_bitwise_equal(acc_scalar, acc, tag);
  }
}

struct Shape {
  int64_t m, n, k;
  int group;  // for per-group schemes; must divide k
};

const Shape kShapes[] = {
    {1, 33, 131, 131},   // odd n, odd (prime) k, group == k
    {7, 17, 96, 32},     // panel remainder rows, multiple groups
    {7, 64, 256, 128},   // aligned shape, two groups
    {64, 48, 132, 66},   // prefill-sized m, odd-ish n/k
};

TEST(GemmIsaEquivalence, W8A8) {
  uint64_t seed = 100;
  for (const Shape& s : kShapes) {
    const auto qx = quantize_acts_per_token(random_acts(s.m, s.k, seed++));
    const auto qw = quantize_w8_per_channel(random_weights(s.n, s.k, seed++));
    check_all_isas(qx, qw,
                   [](const QuantizedActs& x, const W8PerChannel& w) {
                     return gemm_w8a8(x, w);
                   },
                   "w8a8");
  }
}

TEST(GemmIsaEquivalence, W4A8PerChannel) {
  uint64_t seed = 200;
  for (const Shape& s : kShapes) {
    const auto qx = quantize_acts_per_token(random_acts(s.m, s.k, seed++));
    const auto qw = quantize_w4_per_channel(random_weights(s.n, s.k, seed++));
    check_all_isas(qx, qw,
                   [](const QuantizedActs& x, const W4PerChannel& w) {
                     return gemm_w4a8_per_channel(x, w);
                   },
                   "w4a8_per_channel");
  }
}

TEST(GemmIsaEquivalence, W4A8PerGroupProtectiveRange) {
  uint64_t seed = 300;
  for (const Shape& s : kShapes) {
    const auto qx = quantize_acts_per_token(random_acts(s.m, s.k, seed++));
    const auto qw = quantize_progressive(random_weights(s.n, s.k, seed++),
                                         {.group = s.group});
    check_all_isas(qx, qw,
                   [](const QuantizedActs& x, const W4PerGroup& w) {
                     return gemm_w4a8_per_group(x, w);
                   },
                   "w4a8_per_group");
  }
}

TEST(GemmIsaEquivalence, W4A8PerGroupNaiveRangeOverflowWraps) {
  // level1_range = 127 makes (q - z) * s1 overflow INT8 (the Fig. 6 accuracy
  // bug); the wrap must be identical on every ISA — including the -128 codes
  // that break vpmaddubsw-style sign-splitting tricks.
  uint64_t seed = 400;
  for (const Shape& s : kShapes) {
    const auto qx = quantize_acts_per_token(random_acts(s.m, s.k, seed++));
    const auto qw =
        quantize_progressive(random_weights(s.n, s.k, seed++),
                             {.group = s.group, .level1_range = 127});
    check_all_isas(qx, qw,
                   [](const QuantizedActs& x, const W4PerGroup& w) {
                     return gemm_w4a8_per_group(x, w);
                   },
                   "w4a8_per_group_naive");
  }
}

TEST(GemmIsaEquivalence, ModelLogitsBitwiseIdentical) {
  // End-to-end: a toy model quantized+packed under each ISA produces
  // bit-identical logits (attention/normalization are FP paths shared by all
  // ISAs; every INT8 GEMM goes through the dispatched blocked driver).
  const ModelWeights weights = make_synthetic_weights(toy_config(2));
  std::vector<int> tokens;
  for (int i = 0; i < 12; ++i) tokens.push_back((7 * i + 3) % 512);

  Tensor ref;
  {
    IsaGuard guard(Isa::kScalar);
    QuantizedModel qm(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
    ref = qm.forward(tokens);
  }
  for (Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    QuantizedModel qm(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
    SCOPED_TRACE(cpu::isa_name(isa));
    expect_bitwise_equal(ref, qm.forward(tokens), "model_logits");
  }
}

TEST(GemmIsaEquivalence, MismatchedPackWidthFallsBackCorrectly) {
  // Pack under one ISA, run under another: the driver must fall back to the
  // scalar microkernel (any nr) and still match bitwise.
  const auto qx = quantize_acts_per_token(random_acts(5, 96, 900));
  const auto qw = quantize_w8_per_channel(random_weights(24, 96, 901));
  Tensor ref;
  PackedGemmB packed;
  {
    IsaGuard guard(Isa::kScalar);
    ref = gemm_w8a8(qx, qw);
    packed = pack_gemm_b(qw, cpu::microkernel_for(Isa::kScalar).nr);
  }
  for (Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    SCOPED_TRACE(cpu::isa_name(isa));
    expect_bitwise_equal(ref, gemm_blocked(qx, packed), "fallback");
  }
}

TEST(GemmIsaEquivalence, StreamedM1BypassMatchesStreamWalk) {
  // Above the bypass threshold the streamed kernel reroutes m == 1 calls to
  // the plain (blocked) kernel; below it, it walks the stream. Both paths
  // must agree bitwise with the plain kernel (n, k multiples of 32 as the
  // stream layout requires). 128x128 = 16384 elements hits the threshold.
  for (int64_t n : {64, 128}) {
    const int64_t k = 128;
    const auto qx = quantize_acts_per_token(random_acts(1, k, 950 + n));
    const auto qw =
        quantize_progressive(random_weights(n, k, 960 + n), {.group = 128});
    const auto stream = reorder_w4_for_compute(qw.qw);
    const auto meta = reorder_group_meta(qw);
    const Tensor plain = gemm_w4a8_per_group(qx, qw);
    const Tensor streamed = gemm_w4a8_per_group_streamed(qx, qw, stream, meta);
    SCOPED_TRACE(n);
    expect_bitwise_equal(plain, streamed, "streamed_m1");
  }
}

// --- dispatch plumbing -------------------------------------------------------

TEST(IsaDispatch, ParseAndNames) {
  EXPECT_EQ(Isa::kScalar, cpu::parse_isa("scalar"));
  EXPECT_EQ(Isa::kAvx2, cpu::parse_isa("avx2"));
  EXPECT_EQ(Isa::kAvx512, cpu::parse_isa("avx512"));
  EXPECT_EQ(Isa::kAvx512, cpu::parse_isa("avx512vnni"));
  EXPECT_EQ(std::nullopt, cpu::parse_isa("neon"));
  EXPECT_EQ(std::nullopt, cpu::parse_isa(""));
  EXPECT_EQ(std::nullopt, cpu::parse_isa(nullptr));
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512})
    EXPECT_EQ(isa, cpu::parse_isa(cpu::isa_name(isa)));
}

TEST(IsaDispatch, EnvOverrideForcesIsaAndClampsToDetected) {
  cpu::clear_isa_override();
  ASSERT_EQ(0, setenv("QSERVE_ISA", "scalar", 1));
  EXPECT_EQ(Isa::kScalar, cpu::active_isa());
  // Requests above the host's capability clamp down instead of faulting.
  ASSERT_EQ(0, setenv("QSERVE_ISA", "avx512", 1));
  EXPECT_EQ(static_cast<int>(cpu::detected_isa()) >=
                    static_cast<int>(Isa::kAvx512)
                ? Isa::kAvx512
                : cpu::detected_isa(),
            cpu::active_isa());
  // Unrecognized values fall back to detection.
  ASSERT_EQ(0, setenv("QSERVE_ISA", "quantum", 1));
  EXPECT_EQ(cpu::detected_isa(), cpu::active_isa());
  ASSERT_EQ(0, unsetenv("QSERVE_ISA"));
  EXPECT_EQ(cpu::detected_isa(), cpu::active_isa());
}

TEST(IsaDispatch, SetIsaWinsOverEnv) {
  ASSERT_EQ(0, setenv("QSERVE_ISA", "avx2", 1));
  {
    IsaGuard guard(Isa::kScalar);
    EXPECT_EQ(Isa::kScalar, cpu::active_isa());
  }
  ASSERT_EQ(0, unsetenv("QSERVE_ISA"));
}

TEST(IsaDispatch, MicrokernelTableIsConsistent) {
  for (Isa isa : supported_isas()) {
    const cpu::Microkernel& mk = cpu::microkernel_for(isa);
    EXPECT_EQ(isa, mk.isa) << cpu::isa_name(isa);
    EXPECT_GT(mk.nr, 0);
    EXPECT_NE(nullptr, mk.dot_s8);
    EXPECT_NE(nullptr, mk.dot_u4);
  }
  // Unsupported ISAs resolve to a usable kernel rather than nullptr.
  const cpu::Microkernel& fallback = cpu::microkernel_for(Isa::kAvx512);
  EXPECT_NE(nullptr, fallback.dot_s8);
}

}  // namespace
}  // namespace qserve
