// Tensor-parallel execution: shard-count invariance of the whole stack.
// Model-level forward_step logits and KV state, engine token streams (plain,
// preemption churn, speculative, prefix caching + parallel sampling), and
// programmatic fault schedules must all be bitwise identical at 1/2/4 shards
// across ISAs and thread counts; shard-count resolution clamps the runtime
// default and loudly rejects infeasible explicit configs; the TP stats
// (comm_seconds, shard_imbalance) behave as documented.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/fault_injection.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "serving/engine.h"

namespace qserve {
namespace {

struct Fixture {
  ModelWeights weights;        // 4 KV heads: shards up to 4 ways
  ModelWeights draft_weights;  // divergent draft for speculative runs
  Fixture()
      : weights(make_synthetic_weights(toy_config_mha(1))),
        draft_weights(make_synthetic_weights(toy_config_mha(1), [] {
          SyntheticOptions o;
          o.seed = 777;
          return o;
        }())) {}
};

const Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

// Restores thread count / ISA / shard default on scope exit so a failing
// assertion cannot leak overrides into later tests.
struct EnvGuard {
  ~EnvGuard() {
    set_num_threads(0);
    set_tp_shards(0);
    cpu::clear_isa_override();
    fault::clear();
  }
};

struct Workload {
  std::vector<std::vector<int>> prompts;
  std::vector<int> max_new;
};

Workload random_workload(Rng& rng, int n_requests) {
  Workload w;
  for (int i = 0; i < n_requests; ++i) {
    std::vector<int> prompt(static_cast<size_t>(rng.uniform_int(1, 24)));
    for (auto& t : prompt) t = rng.uniform_int(0, 511);
    w.prompts.push_back(std::move(prompt));
    w.max_new.push_back(rng.uniform_int(1, 10));
  }
  return w;
}

struct RunOutcome {
  std::vector<std::vector<int>> streams;
  EngineStats stats;
};

RunOutcome run_engine(const Workload& w, int shards, const EngineConfig& cfg,
                      const QuantSchemeConfig& scheme, bool speculative) {
  QuantizedModel model(fixture().weights, scheme, TpConfig{shards});
  std::unique_ptr<QuantizedModel> draft;
  if (speculative)
    draft = std::make_unique<QuantizedModel>(fixture().draft_weights, scheme,
                                             TpConfig{shards});
  ServingEngine engine(&model, draft.get(), cfg);
  std::vector<int> ids;
  for (size_t i = 0; i < w.prompts.size(); ++i)
    ids.push_back(engine.submit(w.prompts[i], w.max_new[i]));
  RunOutcome out;
  out.stats = engine.run_to_completion();
  for (int id : ids) out.streams.push_back(engine.request(id).generated);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
  return out;
}

// --- model-level bitwise identity -------------------------------------------

TEST(TensorParallelModel, ForwardStepBitwiseAcrossShardsIsasThreadsSchemes) {
  // A mixed step (two decode rows + two prefill chunks) must produce the
  // same logits AND the same continued KV state at 2 and 4 shards as the
  // single-shard engine, for every INT8-path scheme, at scalar and the
  // detected ISA, at 1 and 8 threads.
  EnvGuard guard;
  const auto& f = fixture();
  const QuantSchemeConfig schemes[] = {
      QuantSchemeConfig::qserve_w4a8kv4_g128(),
      QuantSchemeConfig::qserve_w4a8kv4_per_channel(),
      QuantSchemeConfig::trt_w8a8(),
  };
  std::vector<cpu::Isa> isas = {cpu::Isa::kScalar};
  if (cpu::detected_isa() != cpu::Isa::kScalar)
    isas.push_back(cpu::detected_isa());

  for (const QuantSchemeConfig& scheme : schemes) {
    for (const cpu::Isa isa : isas) {
      cpu::set_isa(isa);
      for (const int threads : {1, 8}) {
        set_num_threads(threads);
        auto run_one = [&](int shards) {
          QuantizedModel m(f.weights, scheme, TpConfig{shards});
          EXPECT_EQ(m.tp_shards(), shards);
          const int sa = m.begin_sequence(), sb = m.begin_sequence(),
                    sc = m.begin_sequence(), sd = m.begin_sequence();
          m.prefill(sa, {3, 1, 4, 1, 5});
          m.prefill(sb, {9, 2, 6});
          BatchedStep step;
          step.chunks.push_back({sa, {42}, 5});
          step.chunks.push_back({sb, {17}, 3});
          step.chunks.push_back({sc, {2, 7, 1, 8, 2, 8}, 0});
          step.chunks.push_back({sd, {11, 13}, 0});
          Tensor logits = m.forward_step(step);
          // Continuation probes the KV bytes every shard wrote.
          BatchedStep next;
          next.chunks.push_back({sa, {100}, 6});
          next.chunks.push_back({sc, {5}, 6});
          Tensor cont = m.forward_step(next);
          std::vector<float> out(logits.data(), logits.data() + logits.numel());
          out.insert(out.end(), cont.data(), cont.data() + cont.numel());
          return out;
        };
        const std::vector<float> base = run_one(1);
        for (const int shards : {2, 4}) {
          const std::vector<float> tp = run_one(shards);
          ASSERT_EQ(base.size(), tp.size());
          for (size_t i = 0; i < base.size(); ++i)
            ASSERT_EQ(base[i], tp[i])
                << "shards=" << shards << " isa=" << cpu::isa_name(isa)
                << " threads=" << threads << " i=" << i;
        }
      }
    }
  }
}

// --- shard-count resolution ---------------------------------------------------

TEST(TensorParallelConfig, RuntimeDefaultClampsToFeasible) {
  EnvGuard guard;
  const auto& f = fixture();
  set_tp_shards(8);
  // INT8-path MHA toy: 4 KV heads cap the 8 requested shards at 4.
  QuantizedModel clamped(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EXPECT_EQ(clamped.tp_shards(), 4);
  // Non-INT8-path scheme: always single-shard under the runtime default.
  QuantizedModel w4a16(f.weights, QuantSchemeConfig::trt_w4a16());
  EXPECT_EQ(w4a16.tp_shards(), 1);
  set_tp_shards(0);
  // Back on the environment default (QSERVE_TP_SHARDS or 1), still clamped
  // to the 4 KV heads so the CI shard sweep can run this suite unchanged.
  QuantizedModel plain(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EXPECT_EQ(plain.tp_shards(), std::min(tp_shards(), 4));
}

TEST(TensorParallelConfig, ExplicitInfeasibleConfigsThrow) {
  const auto& f = fixture();
  // More shards than KV heads.
  EXPECT_THROW(QuantizedModel(f.weights,
                              QuantSchemeConfig::qserve_w4a8kv4_g128(),
                              TpConfig{8}),
               CheckError);
  // Sharding a scheme without exact INT32 accumulators.
  EXPECT_THROW(
      QuantizedModel(f.weights, QuantSchemeConfig::trt_w4a16(), TpConfig{2}),
      CheckError);
  EXPECT_THROW(
      QuantizedModel(f.weights, QuantSchemeConfig::fp16(), TpConfig{2}),
      CheckError);
  EXPECT_THROW(QuantizedModel(f.weights,
                              QuantSchemeConfig::qserve_w4a8kv4_g128(),
                              TpConfig{-1}),
               CheckError);
  // An explicit single shard is always fine, any scheme.
  QuantizedModel one(f.weights, QuantSchemeConfig::trt_w4a16(), TpConfig{1});
  EXPECT_EQ(one.tp_shards(), 1);
}

// --- engine-level stream identity --------------------------------------------

TEST(TensorParallelEngine, StreamsMatchSingleShardAcrossShardCounts) {
  EnvGuard guard;
  Rng rng(4242);
  const Workload w = random_workload(rng, 6);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  cfg.scheduler.prefill_chunk = 8;
  const QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  for (const int threads : {1, 8}) {
    set_num_threads(threads);
    const RunOutcome base = run_engine(w, 1, cfg, scheme, false);
    for (const int shards : {2, 4}) {
      const RunOutcome tp = run_engine(w, shards, cfg, scheme, false);
      EXPECT_EQ(base.streams, tp.streams)
          << "shards=" << shards << " threads=" << threads;
      // TP runs report the reduction-boundary time and a sane imbalance
      // factor; the single-shard run reports neither.
      EXPECT_GT(tp.stats.comm_seconds, 0.0);
      EXPECT_GE(tp.stats.shard_imbalance, 1.0);
    }
    EXPECT_EQ(base.stats.comm_seconds, 0.0);
    EXPECT_EQ(base.stats.shard_imbalance, 0.0);
  }
}

TEST(TensorParallelEngine, PreemptionChurnStreamsMatch) {
  // A 3-page pool forces eviction + re-prefill; scheduling decisions depend
  // only on token streams and page math, so every shard count must take the
  // same path and emit the same streams.
  EnvGuard guard;
  Workload w;
  for (int i = 0; i < 3; ++i) {
    w.prompts.push_back(std::vector<int>(8, 2 + i));
    w.max_new.push_back(18 + 4 * i);
  }
  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = 3;
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  const RunOutcome base = run_engine(w, 1, cfg, scheme, false);
  EXPECT_GE(base.stats.preemptions, 1);
  for (const int shards : {2, 4}) {
    const RunOutcome tp = run_engine(w, shards, cfg, scheme, false);
    EXPECT_EQ(base.streams, tp.streams) << "shards=" << shards;
    EXPECT_EQ(base.stats.preemptions, tp.stats.preemptions);
  }
}

TEST(TensorParallelEngine, SpeculativeStreamsMatch) {
  // Draft and target both shard; greedy acceptance must decide identically,
  // so streams and acceptance counters match the single-shard speculative
  // engine bitwise.
  EnvGuard guard;
  Rng rng(99);
  const Workload w = random_workload(rng, 4);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  cfg.scheduler.prefill_chunk = 8;
  cfg.speculative.lookahead_k = 3;
  const QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  const RunOutcome base = run_engine(w, 1, cfg, scheme, true);
  for (const int shards : {2, 4}) {
    const RunOutcome tp = run_engine(w, shards, cfg, scheme, true);
    EXPECT_EQ(base.streams, tp.streams) << "shards=" << shards;
    EXPECT_EQ(base.stats.accepted_tokens, tp.stats.accepted_tokens);
    EXPECT_EQ(base.stats.verify_forwards, tp.stats.verify_forwards);
    EXPECT_GT(tp.stats.comm_seconds, 0.0);
  }
}

TEST(TensorParallelEngine, PrefixCachingAndParallelSamplingMatch) {
  // Shared-prefix workload + parallel sampling exercises fork/CoW against
  // the head-ranged KV writes; hits and streams must be shard-invariant.
  EnvGuard guard;
  // 20 shared tokens = one full 16-token KV page after alignment, so later
  // prompts actually hit the cache.
  const std::vector<int> common(20, 7);
  auto run = [&](int shards) {
    QuantizedModel model(fixture().weights,
                         QuantSchemeConfig::qserve_w4a8kv4_g128(),
                         TpConfig{shards});
    EngineConfig cfg;
    cfg.scheduler.max_batch = 4;
    cfg.scheduler.prefill_chunk = 8;
    cfg.prefix_caching = true;
    ServingEngine engine(&model, cfg);
    std::vector<int> ids;
    for (int i = 0; i < 3; ++i) {
      std::vector<int> prompt = common;
      prompt.push_back(100 + i);
      RequestOptions opts;
      opts.max_new_tokens = 6;
      opts.n = (i == 0) ? 2 : 1;
      ids.push_back(engine.submit(prompt, opts, nullptr, nullptr));
    }
    RunOutcome out;
    out.stats = engine.run_to_completion();
    for (int id : ids) out.streams.push_back(engine.request(id).generated);
    engine.clear_prefix_cache();
    EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
    return out;
  };
  const RunOutcome base = run(1);
  EXPECT_GE(base.stats.prefix_hits, 1);
  for (const int shards : {2, 4}) {
    const RunOutcome tp = run(shards);
    EXPECT_EQ(base.streams, tp.streams) << "shards=" << shards;
    EXPECT_EQ(base.stats.prefix_hits, tp.stats.prefix_hits);
    EXPECT_EQ(base.stats.prefill_tokens_saved, tp.stats.prefill_tokens_saved);
  }
}

// --- fault-schedule invariance ------------------------------------------------

TEST(TensorParallelEngine, FaultSchedulesAreShardCountInvariant) {
  // The TP executor reserves KV spans centrally with ONE kv_append draw per
  // span — append_batch's schedule — and kv_alloc draws happen inside the
  // same reservation path. At one thread the draw order is deterministic, so
  // an armed site fires at the same step whatever the shard count and the
  // engines recover into identical streams.
  EnvGuard guard;
  set_num_threads(1);
  Rng rng(7);
  const Workload w = random_workload(rng, 4);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  cfg.scheduler.prefill_chunk = 8;
  const QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  auto run_faulted = [&](int shards) {
    fault::set_site(fault::kKvAlloc, 0.05, 11);
    const RunOutcome out = run_engine(w, shards, cfg, scheme, false);
    fault::clear();
    return out;
  };
  const RunOutcome base = run_faulted(1);
  for (const int shards : {2, 4}) {
    const RunOutcome tp = run_faulted(shards);
    EXPECT_EQ(base.streams, tp.streams) << "shards=" << shards;
    EXPECT_EQ(base.stats.faulted_steps + base.stats.preemptions,
              tp.stats.faulted_steps + tp.stats.preemptions)
        << "shards=" << shards;
  }
}

}  // namespace
}  // namespace qserve
