// Parallel runtime correctness: exact index coverage under adversarial grain
// sizes, nested regions (the documented no-nesting rule), exception
// propagation, the tensor-parallel shard substrate (run_sharded /
// current_shard / shard-local pools), the fixed pairwise summation tree, and
// bitwise equivalence of the parallel kernels and the serving engine against
// single-thread runs.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "kernels/gemm.h"
#include "quant/quantize.h"
#include "serving/engine.h"

namespace qserve {
namespace {

// Restores the default thread count when a test ends.
struct ThreadGuard {
  explicit ThreadGuard(int n) { set_num_threads(n); }
  ~ThreadGuard() { set_num_threads(0); }
};

void expect_exact_coverage(int64_t begin, int64_t end, int64_t grain) {
  const int64_t n = end > begin ? end - begin : 0;
  std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
  for (auto& h : hits) h.store(0);
  parallel_for(begin, end, grain, [&](int64_t lo, int64_t hi) {
    ASSERT_LE(begin, lo);
    ASSERT_LT(lo, hi);
    ASSERT_LE(hi, end);
    for (int64_t i = lo; i < hi; ++i)
      hits[static_cast<size_t>(i - begin)].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
        << "index " << begin + i << " grain " << grain;
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard(8);
  const int64_t sizes[] = {1, 2, 7, 64, 1000, 4099};
  const int64_t grains[] = {-5, 0, 1, 2, 3, 7, 63, 64, 65, 1 << 30};
  for (int64_t n : sizes)
    for (int64_t g : grains) expect_exact_coverage(0, n, g);
}

TEST(ParallelFor, CoversNonZeroBasedRanges) {
  ThreadGuard guard(8);
  expect_exact_coverage(17, 1003, 3);
  expect_exact_coverage(-50, 50, 7);
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  ThreadGuard guard(8);
  std::atomic<int> calls{0};
  parallel_for(0, 0, 1, [&](int64_t, int64_t) { calls.fetch_add(1); });
  parallel_for(10, 3, 4, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, NestedRegionsRunInlineAndStillCover) {
  ThreadGuard guard(8);
  constexpr int64_t kOuter = 16, kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  parallel_for(0, kOuter, 1, [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      parallel_for(0, kInner, 4, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
          hits[static_cast<size_t>(o * kInner + i)].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptionsToCaller) {
  ThreadGuard guard(8);
  EXPECT_THROW(parallel_for(0, 1000, 1,
                            [&](int64_t lo, int64_t) {
                              QS_CHECK_NE(lo, 500);
                            }),
               CheckError);
}

TEST(ParallelFor, PoolSurvivesAnExceptionalRegion) {
  ThreadGuard guard(8);
  try {
    parallel_for(0, 100, 1, [](int64_t, int64_t) { QS_CHECK(false); });
  } catch (const CheckError&) {
  }
  expect_exact_coverage(0, 1000, 3);
}

TEST(ParallelConfig, OverrideAndReset) {
  set_num_threads(6);
  EXPECT_EQ(num_threads(), 6);
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
}

// --- tensor-parallel shard substrate -----------------------------------------

TEST(RunSharded, EveryShardRunsOnceWithItsOwnIdentity) {
  ThreadGuard guard(8);
  constexpr int kShards = 4;
  std::vector<std::atomic<int>> calls(kShards);
  for (auto& c : calls) c.store(0);
  std::vector<int> seen_shard(kShards, -2);
  std::vector<int> pool_size(kShards, 0);
  std::vector<double> seconds(kShards, -1.0);
  EXPECT_EQ(current_shard(), -1);
  run_sharded(
      kShards,
      [&](int s) {
        calls[static_cast<size_t>(s)].fetch_add(1);
        seen_shard[static_cast<size_t>(s)] = current_shard();
        // Inside a shard body the thread budget is the shard-local pool's.
        pool_size[static_cast<size_t>(s)] = num_threads();
        EXPECT_FALSE(in_parallel_region());
      },
      seconds.data());
  EXPECT_EQ(current_shard(), -1);
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(calls[static_cast<size_t>(s)].load(), 1) << "shard " << s;
    EXPECT_EQ(seen_shard[static_cast<size_t>(s)], s);
    EXPECT_EQ(pool_size[static_cast<size_t>(s)], 8 / kShards);
    EXPECT_GE(seconds[static_cast<size_t>(s)], 0.0);
  }
}

TEST(RunSharded, ParallelForInsideShardCoversOnShardPool) {
  ThreadGuard guard(8);
  constexpr int kShards = 2;
  constexpr int64_t kN = 500;
  std::vector<std::atomic<int>> hits(kShards * kN);
  for (auto& h : hits) h.store(0);
  run_sharded(kShards, [&](int s) {
    parallel_for(0, kN, 3, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i)
        hits[static_cast<size_t>(s * kN + i)].fetch_add(1);
    });
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(RunSharded, NestedShardedRegionsRunInlineInShardOrder) {
  // The no-nesting rule: run_sharded from inside a parallel region or a
  // shard body runs every shard inline on the caller, sequentially — same
  // coverage, no deadlock.
  ThreadGuard guard(8);
  std::vector<int> order;
  run_sharded(2, [&](int outer) {
    if (outer != 0) return;
    run_sharded(3, [&](int inner) {
      EXPECT_EQ(current_shard(), inner);
      order.push_back(inner);
    });
    // Identity restored after the inline nested region.
    EXPECT_EQ(current_shard(), 0);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));

  std::vector<int> from_region;
  parallel_for(0, 8, 1, [&](int64_t lo, int64_t) {
    if (lo != 0) return;  // one chunk exercises the nested call
    EXPECT_TRUE(in_parallel_region());
    run_sharded(2, [&](int s) { from_region.push_back(s); });
  });
  EXPECT_EQ(from_region, (std::vector<int>{0, 1}));
}

TEST(RunSharded, LowestThrowingShardWinsAndGroupSurvives) {
  ThreadGuard guard(8);
  try {
    run_sharded(4, [&](int s) {
      QS_CHECK_MSG(s != 1 && s != 3, "shard " << s << " failed");
    });
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::strstr(e.what(), "shard 1 failed"), nullptr) << e.what();
  }
  // The shard group is reusable after an exceptional region.
  std::atomic<int> ok{0};
  run_sharded(4, [&](int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(RunSharded, SingleShardRunsInlineOnCallerPool) {
  ThreadGuard guard(8);
  run_sharded(1, [&](int s) {
    EXPECT_EQ(s, 0);
    EXPECT_EQ(current_shard(), 0);
    EXPECT_EQ(num_threads(), 8);  // no partitioning at one shard
  });
}

TEST(TpShardsConfig, OverrideAndReset) {
  set_tp_shards(3);
  EXPECT_EQ(tp_shards(), 3);
  set_tp_shards(0);
  EXPECT_GE(tp_shards(), 1);  // env default (QSERVE_TP_SHARDS or 1)
}

// --- fixed pairwise summation tree -------------------------------------------

TEST(PairwiseTreeSum, MatchesExplicitTreeAndHandlesEdges) {
  const float v[] = {1.5f, -2.25f, 4.0f, 0.125f, -8.5f, 3.0f, 0.75f};
  EXPECT_EQ(pairwise_tree_sum(v, 0), 0.0f);
  EXPECT_EQ(pairwise_tree_sum(v, 1), v[0]);
  EXPECT_EQ(pairwise_tree_sum(v, 2), v[0] + v[1]);
  // n = 7 splits at 4 (largest power of two < 7): ((01)(23)) + ((45)(6)).
  const float left = (v[0] + v[1]) + (v[2] + v[3]);
  const float right = (v[4] + v[5]) + v[6];
  EXPECT_EQ(pairwise_tree_sum(v, 7), left + right);
}

TEST(PairwiseTreeSum, ExactForIntegers) {
  Rng rng(5);
  std::vector<int64_t> v(1000);
  for (auto& x : v) x = rng.uniform_int(-1000000, 1000000);
  EXPECT_EQ(pairwise_tree_sum(v.data(), int64_t(v.size())),
            std::accumulate(v.begin(), v.end(), int64_t{0}));
}

TEST(PairwiseTreeSum, AlignedPartitionPartialsComposeBitwise) {
  // The property the TP all-reduce leans on: splitting the input at
  // power-of-two-aligned boundaries, tree-summing each block, and
  // tree-summing the partials reproduces the full tree BITWISE — so any
  // shard count whose partials land on aligned boundaries reduces to the
  // same float. Heavy-tailed magnitudes make naive-order sums visibly
  // different, which the last assertion demonstrates is a real hazard.
  Rng rng(17);
  std::vector<float> v(64);
  for (auto& x : v) x = rng.heavy_tailed(1.0f) * (rng.uniform_int(0, 1) != 0
                                                      ? 1e6f
                                                      : 1e-6f);
  const float full = pairwise_tree_sum(v.data(), 64);
  for (const int blocks : {2, 4, 8, 16, 32, 64}) {
    const int64_t w = 64 / blocks;
    std::vector<float> partials;
    for (int b = 0; b < blocks; ++b)
      partials.push_back(pairwise_tree_sum(v.data() + b * w, w));
    EXPECT_EQ(pairwise_tree_sum(partials.data(), blocks), full)
        << blocks << " blocks";
  }
  // Naive left-to-right accumulation is NOT bitwise-stable against the tree;
  // if it were, the fixed tree would be unnecessary. At 1e8 the float ulp is
  // 8: adding 3 three times one-by-one is absorbed each step, while the tree
  // pairs (3 + 3) = 6 first, which rounds up to the next representable.
  const float w[] = {1e8f, 3.0f, 3.0f, 3.0f};
  const float naive = ((w[0] + w[1]) + w[2]) + w[3];
  EXPECT_NE(naive, pairwise_tree_sum(w, 4));
}

// --- bitwise equivalence of the parallel kernels --------------------------------

Tensor random_tensor(int64_t n, int64_t k, uint64_t seed) {
  Rng rng(seed);
  Tensor t({n, k});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.heavy_tailed(1.0f);
  return t;
}

TEST(ParallelKernels, W4A8PerGroupBitwiseIdenticalAcrossThreadCounts) {
  const Tensor x = random_tensor(5, 256, 21);
  const Tensor w = random_tensor(48, 256, 22);
  const auto qx = quantize_acts_per_token(x);
  const auto qw = quantize_progressive(w, {.group = 128});

  set_num_threads(1);
  const Tensor serial = gemm_w4a8_per_group(qx, qw);
  set_num_threads(8);
  const Tensor parallel = gemm_w4a8_per_group(qx, qw);
  set_num_threads(0);

  ASSERT_TRUE(serial.same_shape(parallel));
  for (int64_t i = 0; i < serial.numel(); ++i)
    ASSERT_EQ(serial[i], parallel[i]) << i;
}

TEST(ParallelKernels, W8A8BitwiseIdenticalAcrossThreadCounts) {
  const Tensor x = random_tensor(4, 128, 23);
  const Tensor w = random_tensor(40, 128, 24);
  const auto qx = quantize_acts_per_token(x);
  const auto qw = quantize_w8_per_channel(w);

  set_num_threads(1);
  const Tensor serial = gemm_w8a8(qx, qw);
  set_num_threads(8);
  const Tensor parallel = gemm_w8a8(qx, qw);
  set_num_threads(0);

  for (int64_t i = 0; i < serial.numel(); ++i)
    ASSERT_EQ(serial[i], parallel[i]) << i;
}

// --- the serving engine's fan-out is deterministic -------------------------------

std::vector<std::vector<int>> run_engine(int threads) {
  set_num_threads(threads);
  QuantizedModel model(make_synthetic_weights(toy_config(1)),
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  cfg.temperature = 0.8f;  // exercise the rng-consuming sampling path
  ServingEngine engine(&model, cfg);
  std::vector<int> ids;
  ids.push_back(engine.submit({1, 2, 3, 4}, 5));
  ids.push_back(engine.submit({5, 6}, 7));
  ids.push_back(engine.submit({7, 8, 9}, 3));
  ids.push_back(engine.submit({2, 4, 6, 8, 10}, 4));
  engine.run_to_completion();
  std::vector<std::vector<int>> out;
  for (int id : ids) out.push_back(engine.request(id).generated);
  set_num_threads(0);
  return out;
}

TEST(ParallelEngine, GeneratedStreamsIdenticalAcrossThreadCounts) {
  const auto serial = run_engine(1);
  const auto parallel = run_engine(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "request " << i;
}

}  // namespace
}  // namespace qserve
