// Parallel runtime correctness: exact index coverage under adversarial grain
// sizes, nested regions, exception propagation, and bitwise equivalence of
// the parallel kernels and the serving engine against single-thread runs.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "kernels/gemm.h"
#include "quant/quantize.h"
#include "serving/engine.h"

namespace qserve {
namespace {

// Restores the default thread count when a test ends.
struct ThreadGuard {
  explicit ThreadGuard(int n) { set_num_threads(n); }
  ~ThreadGuard() { set_num_threads(0); }
};

void expect_exact_coverage(int64_t begin, int64_t end, int64_t grain) {
  const int64_t n = end > begin ? end - begin : 0;
  std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
  for (auto& h : hits) h.store(0);
  parallel_for(begin, end, grain, [&](int64_t lo, int64_t hi) {
    ASSERT_LE(begin, lo);
    ASSERT_LT(lo, hi);
    ASSERT_LE(hi, end);
    for (int64_t i = lo; i < hi; ++i)
      hits[static_cast<size_t>(i - begin)].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
        << "index " << begin + i << " grain " << grain;
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard(8);
  const int64_t sizes[] = {1, 2, 7, 64, 1000, 4099};
  const int64_t grains[] = {-5, 0, 1, 2, 3, 7, 63, 64, 65, 1 << 30};
  for (int64_t n : sizes)
    for (int64_t g : grains) expect_exact_coverage(0, n, g);
}

TEST(ParallelFor, CoversNonZeroBasedRanges) {
  ThreadGuard guard(8);
  expect_exact_coverage(17, 1003, 3);
  expect_exact_coverage(-50, 50, 7);
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  ThreadGuard guard(8);
  std::atomic<int> calls{0};
  parallel_for(0, 0, 1, [&](int64_t, int64_t) { calls.fetch_add(1); });
  parallel_for(10, 3, 4, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, NestedRegionsRunInlineAndStillCover) {
  ThreadGuard guard(8);
  constexpr int64_t kOuter = 16, kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  parallel_for(0, kOuter, 1, [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      parallel_for(0, kInner, 4, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
          hits[static_cast<size_t>(o * kInner + i)].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptionsToCaller) {
  ThreadGuard guard(8);
  EXPECT_THROW(parallel_for(0, 1000, 1,
                            [&](int64_t lo, int64_t) {
                              QS_CHECK_NE(lo, 500);
                            }),
               CheckError);
}

TEST(ParallelFor, PoolSurvivesAnExceptionalRegion) {
  ThreadGuard guard(8);
  try {
    parallel_for(0, 100, 1, [](int64_t, int64_t) { QS_CHECK(false); });
  } catch (const CheckError&) {
  }
  expect_exact_coverage(0, 1000, 3);
}

TEST(ParallelConfig, OverrideAndReset) {
  set_num_threads(6);
  EXPECT_EQ(num_threads(), 6);
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
}

// --- bitwise equivalence of the parallel kernels --------------------------------

Tensor random_tensor(int64_t n, int64_t k, uint64_t seed) {
  Rng rng(seed);
  Tensor t({n, k});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.heavy_tailed(1.0f);
  return t;
}

TEST(ParallelKernels, W4A8PerGroupBitwiseIdenticalAcrossThreadCounts) {
  const Tensor x = random_tensor(5, 256, 21);
  const Tensor w = random_tensor(48, 256, 22);
  const auto qx = quantize_acts_per_token(x);
  const auto qw = quantize_progressive(w, {.group = 128});

  set_num_threads(1);
  const Tensor serial = gemm_w4a8_per_group(qx, qw);
  set_num_threads(8);
  const Tensor parallel = gemm_w4a8_per_group(qx, qw);
  set_num_threads(0);

  ASSERT_TRUE(serial.same_shape(parallel));
  for (int64_t i = 0; i < serial.numel(); ++i)
    ASSERT_EQ(serial[i], parallel[i]) << i;
}

TEST(ParallelKernels, W8A8BitwiseIdenticalAcrossThreadCounts) {
  const Tensor x = random_tensor(4, 128, 23);
  const Tensor w = random_tensor(40, 128, 24);
  const auto qx = quantize_acts_per_token(x);
  const auto qw = quantize_w8_per_channel(w);

  set_num_threads(1);
  const Tensor serial = gemm_w8a8(qx, qw);
  set_num_threads(8);
  const Tensor parallel = gemm_w8a8(qx, qw);
  set_num_threads(0);

  for (int64_t i = 0; i < serial.numel(); ++i)
    ASSERT_EQ(serial[i], parallel[i]) << i;
}

// --- the serving engine's fan-out is deterministic -------------------------------

std::vector<std::vector<int>> run_engine(int threads) {
  set_num_threads(threads);
  QuantizedModel model(make_synthetic_weights(toy_config(1)),
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  cfg.temperature = 0.8f;  // exercise the rng-consuming sampling path
  ServingEngine engine(&model, cfg);
  std::vector<int> ids;
  ids.push_back(engine.submit({1, 2, 3, 4}, 5));
  ids.push_back(engine.submit({5, 6}, 7));
  ids.push_back(engine.submit({7, 8, 9}, 3));
  ids.push_back(engine.submit({2, 4, 6, 8, 10}, 4));
  engine.run_to_completion();
  std::vector<std::vector<int>> out;
  for (int id : ids) out.push_back(engine.request(id).generated);
  set_num_threads(0);
  return out;
}

TEST(ParallelEngine, GeneratedStreamsIdenticalAcrossThreadCounts) {
  const auto serial = run_engine(1);
  const auto parallel = run_engine(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "request " << i;
}

}  // namespace
}  // namespace qserve
