// Batched step executor: bitwise identity between the batched engine path
// (one forward_step per engine step across all requests) and the per-request
// reference path, across ISAs and thread counts; streaming-callback ordering;
// loud construction-time config validation; batched-GEMM occupancy stats.
#include <gtest/gtest.h>

#include <map>

#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "serving/engine.h"

namespace qserve {
namespace {

struct Fixture {
  ModelWeights weights;
  Fixture() : weights(make_synthetic_weights(toy_config(1))) {}
};

const Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

struct Workload {
  std::vector<std::vector<int>> prompts;
  std::vector<int> max_new;
};

Workload random_workload(Rng& rng, int n_requests) {
  Workload w;
  for (int i = 0; i < n_requests; ++i) {
    std::vector<int> prompt(static_cast<size_t>(rng.uniform_int(1, 24)));
    for (auto& t : prompt) t = rng.uniform_int(0, 511);
    w.prompts.push_back(std::move(prompt));
    w.max_new.push_back(rng.uniform_int(1, 10));
  }
  return w;
}

std::vector<std::vector<int>> run_engine(const Workload& w,
                                         const EngineConfig& cfg) {
  QuantizedModel model(fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  ServingEngine engine(&model, cfg);
  std::vector<int> ids;
  for (size_t i = 0; i < w.prompts.size(); ++i)
    ids.push_back(engine.submit(w.prompts[i], w.max_new[i]));
  engine.run_to_completion();
  std::vector<std::vector<int>> out;
  for (int id : ids) out.push_back(engine.request(id).generated);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
  return out;
}

// --- model-level identity ----------------------------------------------------

TEST(QuantizedModel, ForwardStepMatchesSequentialCallsBitwise) {
  // One batched step mixing two decode rows and two prefill chunks must
  // reproduce the logits AND the KV state of per-sequence prefill_chunk /
  // decode_step calls exactly.
  const auto& f = fixture();
  QuantizedModel seq_m(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel bat_m(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());

  const std::vector<int> ctx_a = {3, 1, 4, 1, 5}, ctx_b = {9, 2, 6};
  const std::vector<int> pre_c = {2, 7, 1, 8, 2, 8}, pre_d = {11, 13};

  // Sequences a/b are mid-decode (context prefilled); c/d start prefilling.
  int sa = seq_m.begin_sequence(), sb = seq_m.begin_sequence(),
      sc = seq_m.begin_sequence(), sd = seq_m.begin_sequence();
  int ba = bat_m.begin_sequence(), bb = bat_m.begin_sequence(),
      bc = bat_m.begin_sequence(), bd = bat_m.begin_sequence();
  seq_m.prefill(sa, ctx_a);
  seq_m.prefill(sb, ctx_b);
  bat_m.prefill(ba, ctx_a);
  bat_m.prefill(bb, ctx_b);

  const Tensor la = seq_m.decode_step(sa, 42);
  const Tensor lb = seq_m.decode_step(sb, 17);
  const Tensor lc = seq_m.prefill_chunk(sc, pre_c, 0);
  const Tensor ld = seq_m.prefill_chunk(sd, pre_d, 0);

  BatchedStep step;
  step.chunks.push_back({ba, {42}, 5});
  step.chunks.push_back({bb, {17}, 3});
  step.chunks.push_back({bc, pre_c, 0});
  step.chunks.push_back({bd, pre_d, 0});
  const Tensor batched = bat_m.forward_step(step);

  ASSERT_EQ(batched.rows(), 4);
  const Tensor* expect[] = {&la, &lb, &lc, &ld};
  for (int i = 0; i < 4; ++i)
    for (int64_t v = 0; v < batched.cols(); ++v)
      ASSERT_EQ(batched.at2(i, v), (*expect[i])[v]) << "chunk " << i;

  // The KV state written by the batched scatter must continue identically.
  const Tensor na = seq_m.decode_step(sa, 100);
  BatchedStep next;
  next.chunks.push_back({ba, {100}, 6});
  const Tensor nb = bat_m.forward_step(next);
  for (int64_t v = 0; v < na.numel(); ++v) ASSERT_EQ(nb.at2(0, v), na[v]);
}

TEST(QuantizedModel, ForwardStepValidatesChunks) {
  const auto& f = fixture();
  QuantizedModel m(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  const int s = m.begin_sequence();
  EXPECT_THROW(m.forward_step({}), CheckError);  // no chunks
  BatchedStep dup;
  dup.chunks.push_back({s, {1}, 0});
  dup.chunks.push_back({s, {2}, 0});  // same sequence twice
  EXPECT_THROW(m.forward_step(dup), CheckError);
  BatchedStep bad_pos;
  bad_pos.chunks.push_back({s, {1}, 3});  // pos0 != seq_pos
  EXPECT_THROW(m.forward_step(bad_pos), CheckError);
  BatchedStep bad_tok;
  // Token id out of vocab range.
  bad_tok.chunks.push_back({s, {static_cast<int>(m.config().vocab)}, 0});
  EXPECT_THROW(m.forward_step(bad_tok), CheckError);
}

// --- engine-level identity across ISAs and thread counts ---------------------

TEST(ServingEngineBatched, MatchesPerRequestBitwiseAcrossIsasAndThreads) {
  // Randomized mixed decode+prefill batches: with a small prefill chunk and
  // staggered lengths, most steps stack decode rows from some requests with
  // prefill chunks from others. The batched executor's streams must equal
  // the per-request path's bitwise — greedy and sampled — for every ISA the
  // host can run (requests above detected_isa() clamp down, so the pair
  // stays self-consistent) and at 1 and 8 threads.
  Rng rng(1234);
  const Workload w = random_workload(rng, 6);
  for (const cpu::Isa isa :
       {cpu::Isa::kScalar, cpu::Isa::kAvx2, cpu::Isa::kAvx512}) {
    cpu::set_isa(isa);
    for (const int threads : {1, 8}) {
      set_num_threads(threads);
      for (const float temperature : {0.0f, 0.8f}) {
        EngineConfig cfg;
        cfg.scheduler.max_batch = 4;
        cfg.scheduler.prefill_chunk = 8;
        cfg.temperature = temperature;
        cfg.batched_step = false;
        const auto sequential = run_engine(w, cfg);
        cfg.batched_step = true;
        const auto batched = run_engine(w, cfg);
        EXPECT_EQ(sequential, batched)
            << "isa=" << cpu::isa_name(isa) << " threads=" << threads
            << " temperature=" << temperature;
      }
    }
  }
  set_num_threads(0);
  cpu::clear_isa_override();
}

TEST(ServingEngineBatched, PreemptionChurnMatchesPerRequestPath) {
  // A 3-page pool forces eviction + re-prefill; the batched path must take
  // the same scheduling decisions and produce the same streams.
  Rng rng(99);
  Workload w;
  for (int i = 0; i < 3; ++i) {
    std::vector<int> prompt(8, 2 + i);
    w.prompts.push_back(prompt);
    w.max_new.push_back(18 + 4 * i);
  }
  auto run = [&](bool batched) {
    QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
    scheme.kv_max_pages = 3;
    QuantizedModel model(fixture().weights, scheme);
    EngineConfig cfg;
    cfg.scheduler.max_batch = 4;
    cfg.batched_step = batched;
    ServingEngine engine(&model, cfg);
    std::vector<int> ids;
    for (size_t i = 0; i < w.prompts.size(); ++i)
      ids.push_back(engine.submit(w.prompts[i], w.max_new[i]));
    const EngineStats stats = engine.run_to_completion();
    EXPECT_GE(stats.preemptions, 1);
    std::vector<std::vector<int>> out;
    for (int id : ids) out.push_back(engine.request(id).generated);
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

// --- streaming API -----------------------------------------------------------

TEST(ServingEngineBatched, StreamingCallbacksArriveInOrderFinishOnce) {
  const auto& f = fixture();
  QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  ServingEngine engine(&model, cfg);

  std::map<int, std::vector<int>> streamed;
  std::map<int, int> finishes;
  std::map<int, bool> finished_before_token;
  auto submit_streaming = [&](std::vector<int> prompt, int max_new) {
    RequestOptions opts;
    opts.max_new_tokens = max_new;
    return engine.submit(
        std::move(prompt), opts,
        [&](const Request& r, int token) {
          // Tokens arrive in stream order, after being appended, and never
          // after the finish callback.
          EXPECT_FALSE(finished_before_token[r.id]);
          EXPECT_EQ(r.generated.back(), token);
          streamed[r.id].push_back(token);
          EXPECT_EQ(streamed[r.id].size(), r.generated.size());
        },
        [&](const Request& r) {
          ++finishes[r.id];
          finished_before_token[r.id] = true;
          EXPECT_TRUE(r.done());
        });
  };
  const int a = submit_streaming({1, 2, 3}, 5);
  const int b = submit_streaming({5, 6}, 3);
  const int c = submit_streaming({7, 8, 9, 10}, 1);
  engine.drain();

  for (int id : {a, b, c}) {
    EXPECT_EQ(streamed[id], engine.request(id).generated);
    EXPECT_EQ(finishes[id], 1);  // finish fires exactly once
  }
  EXPECT_EQ(streamed[a].size(), 5u);
  EXPECT_EQ(streamed[b].size(), 3u);
  EXPECT_EQ(streamed[c].size(), 1u);
}

TEST(ServingEngineBatched, StreamingSurvivesPreemption) {
  // Preemption re-prefills prompt + generated; already-delivered tokens must
  // NOT be re-delivered through on_token.
  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = 3;
  QuantizedModel model(fixture().weights, scheme);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  ServingEngine engine(&model, cfg);
  std::map<int, std::vector<int>> streamed;
  RequestOptions opts;
  std::vector<int> ids;
  for (int i = 0; i < 2; ++i) {
    opts.max_new_tokens = 20 + 10 * i;
    ids.push_back(engine.submit(
        std::vector<int>(8, 2 + i), opts,
        [&](const Request& r, int token) { streamed[r.id].push_back(token); },
        nullptr));
  }
  const EngineStats stats = engine.drain();
  EXPECT_GE(stats.preemptions, 1);
  for (int id : ids) EXPECT_EQ(streamed[id], engine.request(id).generated);
}

// --- config validation -------------------------------------------------------

TEST(Validation, BadEngineAndSchedulerConfigsThrowAtConstruction) {
  const auto& f = fixture();
  QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  {
    EngineConfig bad;
    bad.temperature = -0.5f;
    EXPECT_THROW(ServingEngine(&model, bad), CheckError);
  }
  {
    EngineConfig bad;
    bad.scheduler.prefill_chunk = 0;
    EXPECT_THROW(ServingEngine(&model, bad), CheckError);
  }
  {
    EngineConfig bad;
    bad.scheduler.max_batch = -1;
    EXPECT_THROW(ServingEngine(&model, bad), CheckError);
  }
  EXPECT_THROW(Scheduler({.max_batch = 1, .prefill_chunk = 1}, /*page_size=*/0,
                         /*n_layers=*/1),
               CheckError);
  EXPECT_THROW(Scheduler({.max_batch = 1, .prefill_chunk = 1}, /*page_size=*/16,
                         /*n_layers=*/0),
               CheckError);
}

TEST(Validation, BadSchemeConfigsThrowAtConstruction) {
  const auto& f = fixture();
  {
    QuantSchemeConfig bad = QuantSchemeConfig::qserve_w4a8kv4_g128();
    bad.kv_max_pages = 0;
    EXPECT_THROW(QuantizedModel(f.weights, bad), CheckError);
  }
  {
    QuantSchemeConfig bad = QuantSchemeConfig::qserve_w4a8kv4_g128();
    bad.group = 0;
    EXPECT_THROW(QuantizedModel(f.weights, bad), CheckError);
  }
  {
    QuantSchemeConfig bad = QuantSchemeConfig::qserve_w4a8kv4_g128();
    bad.level1_range = 0;
    EXPECT_THROW(QuantizedModel(f.weights, bad), CheckError);
  }
  {
    QuantSchemeConfig bad = QuantSchemeConfig::qserve_w4a8kv4_g128();
    bad.level1_range = 128;
    EXPECT_THROW(QuantizedModel(f.weights, bad), CheckError);
  }
}

// --- batch occupancy stats ---------------------------------------------------

TEST(ServingEngineBatched, BatchTokenStatsCountRowsNotRequests) {
  const auto& f = fixture();
  QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  ServingEngine engine(&model, cfg);
  for (int i = 0; i < 3; ++i) engine.submit(std::vector<int>(8, 1 + i), 4);
  const EngineStats stats = engine.run_to_completion();
  // Step 1 stacks 3 prefill chunks of 8 rows; steps 2-4 stack 3 decode rows.
  EXPECT_EQ(stats.peak_batch, 3);              // requests
  EXPECT_EQ(stats.peak_batch_tokens, 24);      // rows
  EXPECT_EQ(stats.steps, 4);
  EXPECT_EQ(stats.step_tokens, 24 + 9);
  EXPECT_DOUBLE_EQ(stats.mean_tokens_per_step, 33.0 / 4.0);
}

}  // namespace
}  // namespace qserve