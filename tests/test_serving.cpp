// Scheduler unit tests (decode-priority planning, chunked prefill shares,
// preemption) + serving-engine integration tests (continuous batching over
// the real quantized model and paged KV cache).
#include <gtest/gtest.h>

#include "serving/engine.h"

namespace qserve {
namespace {

// --- scheduler ------------------------------------------------------------------

Request make_request(int id, int prompt_len, int max_new) {
  Request r;
  r.id = id;
  r.prompt.assign(static_cast<size_t>(prompt_len), 1);
  r.max_new_tokens = max_new;
  return r;
}

// A request mid-decode with `kv` tokens already in the cache.
Request make_decoding(int id, int kv_tokens) {
  Request r = make_request(id, kv_tokens, 64);
  r.state = RequestState::kDecoding;
  r.generated.push_back(1);
  r.prefill_pos = kv_tokens;  // prefill completed
  return r;
}

// A request mid-prefill with `remaining` context tokens still to run.
Request make_prefilling(int id, int prompt_len, int done = 0) {
  Request r = make_request(id, prompt_len, 64);
  r.state = RequestState::kPrefilling;
  r.prefill_pos = done;
  return r;
}

Scheduler make_sched(int max_batch, int chunk, int page_size = 16,
                     int n_layers = 1) {
  return Scheduler({.max_batch = max_batch, .prefill_chunk = chunk},
                   page_size, n_layers);
}

TEST(Scheduler, AdmitsFcfsUpToMaxBatch) {
  Scheduler s = make_sched(2, 128);
  Request a = make_request(0, 4, 4), b = make_request(1, 4, 4),
          c = make_request(2, 4, 4);
  s.enqueue(&a);
  s.enqueue(&b);
  s.enqueue(&c);
  const StepPlan plan = s.plan({}, 1000);
  ASSERT_EQ(plan.admitted.size(), 2u);
  EXPECT_EQ(plan.admitted[0]->id, 0);
  EXPECT_EQ(plan.admitted[1]->id, 1);
  EXPECT_EQ(plan.prefills.size(), 2u);  // both get chunk shares immediately
  EXPECT_EQ(s.queued(), 1);
}

TEST(Scheduler, NoAdmissionWhenBatchFull) {
  Scheduler s = make_sched(2, 128);
  Request a = make_decoding(0, 8), b = make_decoding(1, 8);
  Request c = make_request(2, 4, 4);
  s.enqueue(&c);
  const StepPlan plan = s.plan({&a, &b}, 1000);
  EXPECT_EQ(plan.admitted.size(), 0u);
  EXPECT_EQ(plan.decodes.size(), 2u);  // decodes always run
  EXPECT_EQ(s.queued(), 1);
}

TEST(Scheduler, FcfsNoAdmissionWithoutPages) {
  // No free pages -> head not admitted, and nothing behind it skips ahead.
  Scheduler s = make_sched(8, 128);
  Request a = make_request(0, 100, 10), b = make_request(1, 2, 2);
  s.enqueue(&a);
  s.enqueue(&b);
  const StepPlan plan = s.plan({}, 0);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(s.queued(), 2);
}

TEST(Scheduler, DecodeReservationsBlockAdmission) {
  // One decoding request sits exactly at a page boundary: its next token
  // takes the only free page, so the queued request must wait (decode
  // priority — queued prefill never starves a running decode).
  Scheduler s = make_sched(8, 128);
  Request a = make_decoding(0, 16);  // 16 tokens = 1 full page
  Request b = make_request(1, 4, 4);
  s.enqueue(&b);
  const StepPlan plan = s.plan({&a}, 1);
  EXPECT_EQ(plan.decodes.size(), 1u);
  EXPECT_EQ(plan.admitted.size(), 0u);
  EXPECT_EQ(s.queued(), 1);
}

TEST(Scheduler, EvictsYoungestWhenDecodesDoNotFit) {
  Scheduler s = make_sched(8, 128);
  Request a = make_decoding(0, 16), b = make_decoding(1, 16);
  const StepPlan plan = s.plan({&a, &b}, 1);  // both need a page, one free
  ASSERT_EQ(plan.evicted.size(), 1u);
  EXPECT_EQ(plan.evicted[0]->id, 1);  // youngest (back of running order)
  ASSERT_EQ(plan.decodes.size(), 1u);
  EXPECT_EQ(plan.decodes[0]->id, 0);
  EXPECT_EQ(s.queued(), 1);  // victim re-queued at the front
  // No admission on an eviction step: the freed pages serve the decodes.
  EXPECT_EQ(plan.admitted.size(), 0u);
}

TEST(Scheduler, EvictionRequeuesOldestEvicteeFirst) {
  Scheduler s = make_sched(8, 128);
  Request a = make_decoding(0, 16), b = make_decoding(1, 16),
          c = make_decoding(2, 16);
  const StepPlan plan = s.plan({&a, &b, &c}, 0);
  ASSERT_EQ(plan.evicted.size(), 2u);
  EXPECT_EQ(plan.evicted[0]->id, 2);  // youngest evicted first
  EXPECT_EQ(plan.evicted[1]->id, 1);
  // Queue order must preserve original arrival order among evictees.
  Request d = make_request(3, 4, 4);
  s.enqueue(&d);  // behind both evictees
  b.state = RequestState::kQueued;
  b.prefill_pos = 0;
  c.state = RequestState::kQueued;
  c.prefill_pos = 0;
  const StepPlan next = s.plan({&a}, 1000);
  ASSERT_GE(next.admitted.size(), 2u);
  EXPECT_EQ(next.admitted[0]->id, 1);
  EXPECT_EQ(next.admitted[1]->id, 2);
}

TEST(Scheduler, ChunkSharedShortestRemainingFirst) {
  // A long prompt mid-prefill must not monopolize the chunk: the short
  // request completes its prefill in this step (TTFT bounded by one chunk).
  Scheduler s = make_sched(8, 128);
  Request a = make_prefilling(0, 1000);  // oldest, huge remaining
  Request b = make_prefilling(1, 8);
  const StepPlan plan = s.plan({&a, &b}, 1 << 20);
  ASSERT_EQ(plan.prefills.size(), 2u);
  EXPECT_EQ(plan.prefills[0].req->id, 1);  // shortest first
  EXPECT_EQ(plan.prefills[0].tokens, 8);
  EXPECT_EQ(plan.prefills[1].req->id, 0);
  EXPECT_EQ(plan.prefills[1].tokens, 120);  // rest of the chunk
}

TEST(Scheduler, OldestPrefillKeepsHalfTheChunk) {
  // Anti-starvation: short arrivals cannot take more than half the chunk
  // away from the oldest prefilling request.
  Scheduler s = make_sched(8, 128);
  Request a = make_prefilling(0, 1000);
  Request b = make_prefilling(1, 500);
  const StepPlan plan = s.plan({&a, &b}, 1 << 20);
  ASSERT_EQ(plan.prefills.size(), 2u);
  EXPECT_EQ(plan.prefills[0].req->id, 1);
  EXPECT_EQ(plan.prefills[0].tokens, 64);  // capped at chunk/2
  EXPECT_EQ(plan.prefills[1].req->id, 0);
  EXPECT_EQ(plan.prefills[1].tokens, 64);
}

TEST(Scheduler, PrefillSharesClampedToFreePages) {
  Scheduler s = make_sched(8, 128);
  Request a = make_prefilling(0, 100);
  const StepPlan one_layer = s.plan({&a}, 2);
  ASSERT_EQ(one_layer.prefills.size(), 1u);
  EXPECT_EQ(one_layer.prefills[0].tokens, 32);  // 2 pages x 16 tokens

  Scheduler s2 = make_sched(8, 128, /*page_size=*/16, /*n_layers=*/2);
  const StepPlan two_layer = s2.plan({&a}, 3);
  ASSERT_EQ(two_layer.prefills.size(), 1u);
  EXPECT_EQ(two_layer.prefills[0].tokens, 16);  // floor(3/2) pages per layer
}

// --- engine integration ------------------------------------------------------------

struct EngineFixture {
  ModelWeights weights;
  EngineFixture() : weights(make_synthetic_weights(toy_config(1))) {}
};

const EngineFixture& engine_fixture() {
  static EngineFixture* f = new EngineFixture();
  return *f;
}

TEST(ServingEngine, CompletesAllRequests) {
  QuantizedModel model(engine_fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  ServingEngine engine(&model, cfg);
  const int a = engine.submit({1, 2, 3}, 4);
  const int b = engine.submit({5, 6}, 6);
  const int c = engine.submit({7, 8, 9, 10}, 2);
  const EngineStats stats = engine.run_to_completion();

  EXPECT_EQ(engine.request(a).generated.size(), 4u);
  EXPECT_EQ(engine.request(b).generated.size(), 6u);
  EXPECT_EQ(engine.request(c).generated.size(), 2u);
  // First tokens (sampled when prefill completes) are not decode tokens.
  EXPECT_EQ(stats.first_tokens, 3);
  EXPECT_EQ(stats.decode_tokens, 9);
  EXPECT_EQ(stats.prefill_tokens, 9);
  EXPECT_EQ(stats.peak_batch, 3);
  EXPECT_EQ(stats.preemptions, 0);
  // All pages released at the end.
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(ServingEngine, GreedyDecodingMatchesOfflineGeneration) {
  // The engine's greedy output must equal step-by-step greedy decoding on a
  // standalone model instance (token-order preservation).
  const auto& f = engine_fixture();
  QuantizedModel m1(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel m2(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());

  EngineConfig cfg;
  ServingEngine engine(&m1, cfg);
  const std::vector<int> prompt = {3, 1, 4, 1, 5};
  const int id = engine.submit(prompt, 6);
  engine.run_to_completion();

  const int seq = m2.begin_sequence();
  Tensor logits = m2.prefill(seq, prompt);
  std::vector<int> expect;
  for (int i = 0; i < 6; ++i) {
    int64_t best = 0;
    for (int64_t v = 1; v < logits.numel(); ++v)
      if (logits[v] > logits[best]) best = v;
    expect.push_back(static_cast<int>(best));
    if (i + 1 < 6) logits = m2.decode_step(seq, expect.back());
  }
  m2.end_sequence(seq);
  EXPECT_EQ(engine.request(id).generated, expect);
}

TEST(ServingEngine, ChunkedPrefillMatchesMonolithicBitwise) {
  // Splitting a prompt into 7-token chunks must reproduce the monolithic
  // prefill's token stream exactly — the causal mask offsets against the
  // cached prefix and every per-token computation is position-local.
  const auto& f = engine_fixture();
  std::vector<int> prompt;
  for (int i = 0; i < 40; ++i) prompt.push_back((7 * i + 3) % 512);

  auto run = [&](int chunk) {
    QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
    EngineConfig cfg;
    cfg.scheduler.prefill_chunk = chunk;
    ServingEngine engine(&model, cfg);
    const int id = engine.submit(prompt, 6);
    engine.run_to_completion();
    return std::make_pair(engine.request(id).generated,
                          engine.request(id).first_token_step);
  };
  const auto [monolithic, first_mono] = run(128);
  const auto [chunked, first_chunked] = run(7);
  EXPECT_EQ(monolithic, chunked);
  EXPECT_EQ(first_mono, 0);   // whole prompt in one step
  EXPECT_EQ(first_chunked, 5);  // ceil(40/7) = 6 chunk steps
}

TEST(ServingEngine, ContinuousBatchingJoinsMidFlight) {
  // max_batch=1 forces the second request to join only after the first
  // finishes; with max_batch=2 it joins while the first is decoding.
  const auto& f = engine_fixture();
  QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 2;
  ServingEngine engine(&model, cfg);
  engine.submit({1, 2, 3}, 8);
  engine.step();  // request 0 prefilled + 1 token
  const int late = engine.submit({9, 9}, 2);
  const EngineStats stats = engine.run_to_completion();
  EXPECT_EQ(stats.peak_batch, 2);
  EXPECT_EQ(engine.request(late).generated.size(), 2u);
}

TEST(ServingEngine, TinyPoolAdmitsIncrementally) {
  // Regression (replaces the conservative max-final-length reservation):
  // with a 2-page pool, request A (8 prompt + 24 new) will eventually need
  // both pages, but admission is incremental, so B (8 + 8, one page) runs
  // *concurrently* and finishes before A's KV spills into the second page.
  // The old engine serialized them (peak batch 1).
  const auto& f = engine_fixture();
  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = 2;  // 2 pages x 16 tokens, 1 layer
  QuantizedModel model(f.weights, scheme);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  ServingEngine engine(&model, cfg);
  const int a = engine.submit(std::vector<int>(8, 2), 24);
  const int b = engine.submit(std::vector<int>(8, 3), 8);
  const EngineStats stats = engine.run_to_completion();  // must not throw
  EXPECT_EQ(engine.request(a).generated.size(), 24u);
  EXPECT_EQ(engine.request(b).generated.size(), 8u);
  EXPECT_EQ(stats.peak_batch, 2);
  EXPECT_EQ(stats.preemptions, 0);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(Scheduler, PrefillDeadlockResolvedByEvictingYoungest) {
  // Two mid-prefill requests jointly exhaust the pool with no decoder to
  // drive eviction: both page-aligned, zero pages free. The planner must
  // evict the youngest so the oldest progresses, instead of returning an
  // empty (stalled) plan.
  Scheduler s = make_sched(8, 32);
  Request a = make_prefilling(0, 24, /*done=*/16);
  Request b = make_prefilling(1, 17, /*done=*/16);
  const StepPlan plan = s.plan({&a, &b}, 0);  // a holds 1 page, b holds 1
  ASSERT_EQ(plan.evicted.size(), 1u);
  EXPECT_EQ(plan.evicted[0]->id, 1);
  ASSERT_EQ(plan.prefills.size(), 1u);
  EXPECT_EQ(plan.prefills[0].req->id, 0);
  EXPECT_EQ(plan.prefills[0].tokens, 8);  // a's remaining 24 - 16
  EXPECT_EQ(s.queued(), 1);
}

TEST(ServingEngine, ConcurrentPrefillsLargerThanPoolComplete) {
  // Regression: each request fits the 2-page (32-token) pool alone, but
  // their prefills together exhaust it mid-flight with nothing decoding.
  // The engine used to abort ("serving stalled"); preemption must instead
  // serialize them and both must finish.
  const auto& f = engine_fixture();
  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = 2;
  QuantizedModel model(f.weights, scheme);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  cfg.scheduler.prefill_chunk = 32;
  ServingEngine engine(&model, cfg);
  const int a = engine.submit(std::vector<int>(24, 2), 8);  // 32 tokens max
  const int b = engine.submit(std::vector<int>(17, 3), 7);  // 24 tokens max
  const EngineStats stats = engine.run_to_completion();  // must not throw
  EXPECT_EQ(engine.request(a).generated.size(), 8u);
  EXPECT_EQ(engine.request(b).generated.size(), 7u);
  EXPECT_GE(stats.preemptions, 1);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(ServingEngine, PreemptionRoundTripBitwiseIdentical) {
  // A 3-page pool forces eviction: A (needs 3 pages eventually) and B
  // (needs 2) both cross a page boundary on the same step with one page
  // free, so the younger B is evicted mid-decode, re-queued, re-prefilled
  // (prompt + generated so far), and must finish with a token stream
  // bitwise identical to an uncontended solo run.
  const auto& f = engine_fixture();
  const std::vector<int> prompt_a(8, 2), prompt_b(8, 3);
  const int new_a = 30, new_b = 20;

  auto solo = [&](const std::vector<int>& prompt, int max_new) {
    QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
    ServingEngine engine(&model, EngineConfig{});
    const int id = engine.submit(prompt, max_new);
    engine.run_to_completion();
    return engine.request(id).generated;
  };
  const auto solo_a = solo(prompt_a, new_a);
  const auto solo_b = solo(prompt_b, new_b);

  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = 3;
  QuantizedModel model(f.weights, scheme);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  ServingEngine engine(&model, cfg);
  const int a = engine.submit(prompt_a, new_a);
  const int b = engine.submit(prompt_b, new_b);
  const EngineStats stats = engine.run_to_completion();

  EXPECT_GE(stats.preemptions, 1);
  EXPECT_GE(engine.request(b).preemptions, 1);
  EXPECT_EQ(engine.request(a).generated, solo_a);
  EXPECT_EQ(engine.request(b).generated, solo_b);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(ServingEngine, LongPromptDoesNotDelayShortRequestsTtft) {
  // Acceptance: with prefill_chunk=128, a 1024-token prompt admitted
  // alongside short requests leaves the short requests' mean TTFT within
  // one chunk-step of their solo latency.
  const auto& f = engine_fixture();
  const auto scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  std::vector<int> long_prompt;
  for (int i = 0; i < 1024; ++i) long_prompt.push_back((5 * i + 1) % 512);
  const std::vector<int> short_prompt = {4, 8, 15, 16, 23, 42, 7, 9};

  int64_t solo_ttft;
  {
    QuantizedModel model(f.weights, scheme);
    ServingEngine engine(&model, EngineConfig{});
    const int id = engine.submit(short_prompt, 4);
    engine.run_to_completion();
    const Request& r = engine.request(id);
    solo_ttft = r.first_token_step - r.submitted_step;
  }

  QuantizedModel model(f.weights, scheme);
  EngineConfig cfg;
  cfg.scheduler.prefill_chunk = 128;
  ServingEngine engine(&model, cfg);
  const int big = engine.submit(long_prompt, 4);
  std::vector<int> shorts;
  for (int i = 0; i < 3; ++i) shorts.push_back(engine.submit(short_prompt, 4));
  engine.run_to_completion();

  double mean_ttft = 0;
  for (int id : shorts) {
    const Request& r = engine.request(id);
    mean_ttft +=
        double(r.first_token_step - r.submitted_step) / double(shorts.size());
  }
  EXPECT_LE(mean_ttft, double(solo_ttft) + 1.0);
  // The long prompt still progresses at ~a chunk per step: 1024 tokens at
  // >= 64/step (oldest-keeps-half) and <= 128/step.
  const Request& lr = engine.request(big);
  EXPECT_GE(lr.first_token_step, 1024 / 128 - 1);
  EXPECT_LE(lr.first_token_step, 1024 / 64 + 1);
  EXPECT_EQ(lr.generated.size(), 4u);
}

TEST(ServingEngine, StatsSplitPrefillAndDecodeTime) {
  const auto& f = engine_fixture();
  QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  ServingEngine engine(&model, EngineConfig{});
  engine.submit(std::vector<int>(24, 5), 4);
  engine.submit({1, 2, 3}, 6);
  const EngineStats stats = engine.run_to_completion();
  EXPECT_EQ(stats.first_tokens, 2);
  EXPECT_EQ(stats.decode_tokens, 8);  // (4 - 1) + (6 - 1)
  EXPECT_EQ(stats.prefill_tokens, 27);
  EXPECT_GT(stats.prefill_seconds, 0.0);
  EXPECT_GT(stats.decode_seconds, 0.0);
  EXPECT_LE(stats.prefill_seconds + stats.decode_seconds,
            stats.wall_seconds + 1e-9);
  EXPECT_GT(stats.decode_tokens_per_second, 0.0);
  EXPECT_GT(stats.prefill_tokens_per_second, 0.0);
  // Occupancy stats count rows, not requests: the first step stacks a
  // 24-token and a 3-token prefill chunk into one 27-row forward.
  EXPECT_EQ(stats.peak_batch, 2);
  EXPECT_EQ(stats.peak_batch_tokens, 27);
  // Every executed row is either a prefill-chunk row or a decode row (first
  // tokens are sampled from prefill rows, so they add no rows; this identity
  // holds on preemption-free runs).
  EXPECT_EQ(stats.step_tokens, stats.prefill_tokens + stats.decode_tokens);
  EXPECT_GT(stats.mean_tokens_per_step, 0.0);
}

TEST(ServingEngine, FirstTokenLatencyOrderedByArrival) {
  const auto& f = engine_fixture();
  QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 1;  // strictly serial
  ServingEngine engine(&model, cfg);
  const int a = engine.submit({1}, 2);
  const int b = engine.submit({2}, 2);
  engine.run_to_completion();
  EXPECT_LT(engine.request(a).first_token_step,
            engine.request(b).first_token_step);
}

}  // namespace
}  // namespace qserve
