// Scheduler unit tests + serving-engine integration tests (continuous
// batching over the real quantized model and paged KV cache).
#include <gtest/gtest.h>

#include "serving/engine.h"

namespace qserve {
namespace {

// --- scheduler ------------------------------------------------------------------

Request make_request(int id, int prompt_len, int max_new) {
  Request r;
  r.id = id;
  r.prompt.assign(static_cast<size_t>(prompt_len), 1);
  r.max_new_tokens = max_new;
  return r;
}

TEST(Scheduler, AdmitsUpToMaxBatch) {
  Scheduler s({.max_batch = 2});
  Request a = make_request(0, 4, 4), b = make_request(1, 4, 4),
          c = make_request(2, 4, 4);
  s.enqueue(&a);
  s.enqueue(&b);
  s.enqueue(&c);
  const auto admitted = s.admit(0, 1000);
  EXPECT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0]->id, 0);
  EXPECT_EQ(admitted[1]->id, 1);
  EXPECT_EQ(s.admit(2, 1000).size(), 0u);  // batch full
}

TEST(Scheduler, RespectsKvBudget) {
  Scheduler s({.max_batch = 8});
  Request a = make_request(0, 10, 10), b = make_request(1, 10, 10);
  s.enqueue(&a);
  s.enqueue(&b);
  // Budget fits exactly one request (20 tokens each).
  const auto admitted = s.admit(0, 25);
  EXPECT_EQ(admitted.size(), 1u);
}

TEST(Scheduler, FcfsNeverSkipsHead) {
  Scheduler s({.max_batch = 8});
  Request big = make_request(0, 100, 10), small = make_request(1, 2, 2);
  s.enqueue(&big);
  s.enqueue(&small);
  // Head doesn't fit -> nothing admitted, even though `small` would fit.
  EXPECT_EQ(s.admit(0, 50).size(), 0u);
  EXPECT_EQ(s.queued(), 2);
}

TEST(Scheduler, PageRoundingReservesWholePages) {
  Scheduler s({.max_batch = 8, .page_round = 16});
  Request a = make_request(0, 10, 10);  // 20 tokens -> 32 rounded
  s.enqueue(&a);
  EXPECT_EQ(s.admit(0, 31).size(), 0u);
  EXPECT_EQ(s.admit(0, 32).size(), 1u);
}

// --- engine integration ------------------------------------------------------------

struct EngineFixture {
  ModelWeights weights;
  EngineFixture() : weights(make_synthetic_weights(toy_config(1))) {}
};

const EngineFixture& engine_fixture() {
  static EngineFixture* f = new EngineFixture();
  return *f;
}

TEST(ServingEngine, CompletesAllRequests) {
  QuantizedModel model(engine_fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  ServingEngine engine(&model, cfg);
  const int a = engine.submit({1, 2, 3}, 4);
  const int b = engine.submit({5, 6}, 6);
  const int c = engine.submit({7, 8, 9, 10}, 2);
  const EngineStats stats = engine.run_to_completion();

  EXPECT_EQ(engine.request(a).generated.size(), 4u);
  EXPECT_EQ(engine.request(b).generated.size(), 6u);
  EXPECT_EQ(engine.request(c).generated.size(), 2u);
  EXPECT_EQ(stats.decode_tokens, 12);
  EXPECT_EQ(stats.prefill_tokens, 9);
  EXPECT_EQ(stats.peak_batch, 3);
  // All pages released at the end.
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(ServingEngine, GreedyDecodingMatchesOfflineGeneration) {
  // The engine's greedy output must equal step-by-step greedy decoding on a
  // standalone model instance (token-order preservation).
  const auto& f = engine_fixture();
  QuantizedModel m1(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel m2(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());

  EngineConfig cfg;
  ServingEngine engine(&m1, cfg);
  const std::vector<int> prompt = {3, 1, 4, 1, 5};
  const int id = engine.submit(prompt, 6);
  engine.run_to_completion();

  const int seq = m2.begin_sequence();
  Tensor logits = m2.prefill(seq, prompt);
  std::vector<int> expect;
  for (int i = 0; i < 6; ++i) {
    int64_t best = 0;
    for (int64_t v = 1; v < logits.numel(); ++v)
      if (logits[v] > logits[best]) best = v;
    expect.push_back(static_cast<int>(best));
    if (i + 1 < 6) logits = m2.decode_step(seq, expect.back());
  }
  m2.end_sequence(seq);
  EXPECT_EQ(engine.request(id).generated, expect);
}

TEST(ServingEngine, ContinuousBatchingJoinsMidFlight) {
  // max_batch=1 forces the second request to join only after the first
  // finishes; with max_batch=2 it joins while the first is decoding.
  const auto& f = engine_fixture();
  QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 2;
  ServingEngine engine(&model, cfg);
  engine.submit({1, 2, 3}, 8);
  engine.step();  // request 0 prefilled + 1 token
  const int late = engine.submit({9, 9}, 2);
  const EngineStats stats = engine.run_to_completion();
  EXPECT_EQ(stats.peak_batch, 2);
  EXPECT_EQ(engine.request(late).generated.size(), 2u);
}

TEST(ServingEngine, MemoryPressureDefersAdmission) {
  // A tiny KV pool forces sequential execution: peak batch stays 1 and both
  // requests still complete (no deadlock, no eviction).
  const auto& f = engine_fixture();
  QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  // Pool of 3 pages x 16 tokens with 1 layer: ~48 token budget.
  // Each request needs 8+24=32 -> only one fits at a time.
  // (Directly shrink the pool via the cache config's max_pages.)
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  cfg.scheduler.page_round = 16;
  ServingEngine engine(&model, cfg);
  // Note: QuantizedModel's internal pool is large; emulate pressure via the
  // scheduler's budget by submitting requests whose reservations exceed the
  // per-step snapshot. Here we assert only liveness + order preservation.
  const int a = engine.submit(std::vector<int>(8, 2), 24);
  const int b = engine.submit(std::vector<int>(8, 3), 24);
  const EngineStats stats = engine.run_to_completion();
  EXPECT_EQ(engine.request(a).generated.size(), 24u);
  EXPECT_EQ(engine.request(b).generated.size(), 24u);
  EXPECT_GE(stats.steps, 24);
}

TEST(ServingEngine, PageReservationsPreventMidDecodeExhaustion) {
  // Regression: admission must account for the growth pages running
  // requests have reserved but not yet allocated. With a 2-page pool,
  // request A (8 prompt + 24 new = 32 tokens) needs both pages eventually
  // but holds only one after prefill; budgeting from free_pages alone would
  // admit B onto the last page and strand A mid-decode ("pool exhausted").
  const auto& f = engine_fixture();
  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = 2;  // 2 pages x 16 tokens, 1 layer
  QuantizedModel model(f.weights, scheme);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  ServingEngine engine(&model, cfg);
  const int a = engine.submit(std::vector<int>(8, 2), 24);
  const int b = engine.submit(std::vector<int>(8, 3), 8);
  const EngineStats stats = engine.run_to_completion();  // must not throw
  EXPECT_EQ(engine.request(a).generated.size(), 24u);
  EXPECT_EQ(engine.request(b).generated.size(), 8u);
  EXPECT_EQ(stats.peak_batch, 1);  // B deferred until A released its pages
}

TEST(ServingEngine, FirstTokenLatencyOrderedByArrival) {
  const auto& f = engine_fixture();
  QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 1;  // strictly serial
  ServingEngine engine(&model, cfg);
  const int a = engine.submit({1}, 2);
  const int b = engine.submit({2}, 2);
  engine.run_to_completion();
  EXPECT_LT(engine.request(a).first_token_step,
            engine.request(b).first_token_step);
}

}  // namespace
}  // namespace qserve
