// Prefix caching & parallel sampling at the engine level. The central
// invariants: a request served from a warm prefix cache produces a token
// stream BITWISE identical to a cold start (the KV bytes of a token prefix
// are a pure function of the prefix), across ISAs and thread counts, under
// preemption churn and injected faults; engine-level forks are page-aligned
// and therefore never trigger copy-on-write; and every test drains to
// pages_in_use() == 0 once the cache is cleared.
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "model/quantized_model.h"
#include "model/weights.h"
#include "serving/engine.h"

namespace qserve {
namespace {

using cpu::Isa;

struct IsaGuard {
  explicit IsaGuard(Isa isa) { cpu::set_isa(isa); }
  ~IsaGuard() { cpu::clear_isa_override(); }
};

std::vector<Isa> supported_isas() {
  std::vector<Isa> v{Isa::kScalar};
  if (static_cast<int>(cpu::detected_isa()) >= static_cast<int>(Isa::kAvx2))
    v.push_back(Isa::kAvx2);
  if (static_cast<int>(cpu::detected_isa()) >= static_cast<int>(Isa::kAvx512))
    v.push_back(Isa::kAvx512);
  return v;
}

struct FaultGuard {
  FaultGuard() { fault::clear(); }
  ~FaultGuard() { fault::clear(); }
};

const ModelWeights& fixture_weights() {
  static const ModelWeights* w =
      new ModelWeights(make_synthetic_weights(toy_config(1)));
  return *w;
}

QuantSchemeConfig pool_scheme(int64_t pages) {
  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = pages;
  return scheme;
}

// Prompts sharing a long system prefix (page_size = 16 tokens in the toy
// model's KV config) with short distinct user suffixes.
struct Workload {
  std::vector<std::vector<int>> prompts;
  std::vector<int> max_new;
};

Workload shared_prefix_workload(int n, int prefix_len, uint64_t seed) {
  Workload w;
  Rng rng(seed);
  std::vector<int> prefix(static_cast<size_t>(prefix_len));
  for (auto& t : prefix) t = rng.uniform_int(0, 511);
  for (int i = 0; i < n; ++i) {
    auto p = prefix;
    const int suffix = rng.uniform_int(1, 6);
    for (int s = 0; s < suffix; ++s) p.push_back(rng.uniform_int(0, 511));
    w.prompts.push_back(std::move(p));
    w.max_new.push_back(rng.uniform_int(4, 10));
  }
  return w;
}

// Each request served alone, cold, caching off: the bitwise reference.
std::vector<std::vector<int>> solo_streams(const Workload& w) {
  fault::clear();
  std::vector<std::vector<int>> out;
  for (size_t i = 0; i < w.prompts.size(); ++i) {
    QuantizedModel model(fixture_weights(),
                         QuantSchemeConfig::qserve_w4a8kv4_g128());
    ServingEngine engine(&model, EngineConfig{});
    const int id = engine.submit(w.prompts[i], w.max_new[i]);
    engine.run_to_completion();
    out.push_back(engine.request(id).generated);
  }
  return out;
}

void pump(ServingEngine& engine) {
  int guard = 0;
  while (engine.step()) {
    if (++guard >= 50000) {
      ADD_FAILURE() << "engine must terminate";
      break;
    }
  }
}

TEST(PrefixCaching, WarmStreamsBitwiseIdenticalAcrossIsaAndThreads) {
  FaultGuard fg;
  const Workload w = shared_prefix_workload(5, /*prefix_len=*/96, 301);
  const auto solo = solo_streams(w);

  for (Isa isa : supported_isas()) {
    IsaGuard isa_guard(isa);
    for (int threads : {1, 8}) {
      set_num_threads(threads);
      const std::string tag = std::string(cpu::isa_name(isa)) + "/" +
                              std::to_string(threads) + "t";
      QuantizedModel model(fixture_weights(), pool_scheme(64));
      EngineConfig cfg;
      cfg.prefix_caching = true;
      cfg.scheduler.prefill_chunk = 16;
      cfg.scheduler.max_batch = 4;
      ServingEngine engine(&model, cfg);

      // Cold request first (drained alone so its donation is in the index
      // before any other request is planned), then the warm batch.
      std::vector<int> ids;
      ids.push_back(engine.submit(w.prompts[0], w.max_new[0]));
      pump(engine);
      for (size_t i = 1; i < w.prompts.size(); ++i)
        ids.push_back(engine.submit(w.prompts[i], w.max_new[i]));
      pump(engine);

      const EngineStats& s = engine.stats();
      for (size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(engine.request(ids[i]).generated, solo[i])
            << tag << " request " << i;
        EXPECT_EQ(engine.request(ids[i]).finish_reason, FinishReason::kLength);
      }
      EXPECT_EQ(s.prefix_insertions, int64_t(w.prompts.size()))
          << tag << ": every completed prefill donates its distinct key";
      EXPECT_GE(s.prefix_hits, int64_t(w.prompts.size()) - 1) << tag;
      // Every hit skipped the full 96-token (6-page) shared prefix.
      EXPECT_EQ(s.prefill_tokens_saved, 96 * s.prefix_hits) << tag;
      EXPECT_EQ(s.prefix_tokens_reused, s.prefill_tokens_saved) << tag;
      // Engine forks are page-aligned; no writer ever lands in a shared
      // page, so the refactor's CoW machinery must never have fired.
      EXPECT_EQ(s.cow_page_copies, 0) << tag;
      EXPECT_GE(s.prefix_cache_entries, 1) << tag;
      EXPECT_GE(s.prefix_cache_pages, 6) << tag;

      // Drained but warm: the cache still holds pages. Clearing it is the
      // only thing standing between the engine and an empty pool.
      EXPECT_GT(model.kv_cache().pages_in_use(), 0) << tag;
      engine.clear_prefix_cache();
      EXPECT_EQ(model.kv_cache().pages_in_use(), 0) << tag;
      EXPECT_EQ(model.kv_cache().shared_pages(), 0) << tag;
    }
  }
  set_num_threads(0);
}

TEST(PrefixCaching, WarmFirstTokenTakesOneChunkStepColdTakesSix) {
  // The TTFT mechanism, pinned in steps: an 82-token prompt at
  // prefill_chunk=16 costs 6 chunk steps cold; warm, the 80-token (5-page)
  // aligned prefix is forked and only the 2-token tail is prefilled — first
  // token after 1 step, a 6x step-count improvement (the bench measures the
  // same effect in wall-clock on a 1024-token system prompt).
  FaultGuard fg;
  const Workload w = shared_prefix_workload(2, /*prefix_len=*/80, 302);
  const auto solo = solo_streams(w);
  QuantizedModel model(fixture_weights(), pool_scheme(64));
  EngineConfig cfg;
  cfg.prefix_caching = true;
  cfg.scheduler.prefill_chunk = 16;
  ServingEngine engine(&model, cfg);

  const int cold = engine.submit(w.prompts[0], w.max_new[0]);
  pump(engine);
  const int warm = engine.submit(w.prompts[1], w.max_new[1]);
  pump(engine);

  const Request& rc = engine.request(cold);
  const Request& rw = engine.request(warm);
  EXPECT_EQ(rc.generated, solo[0]);
  EXPECT_EQ(rw.generated, solo[1]);
  // first_token_step records the pre-increment step counter, so the number
  // of engine steps executed up to and including the sampling one is
  // (first - submitted + 1).
  const int64_t cold_ttft = rc.first_token_step - rc.submitted_step + 1;
  const int64_t warm_ttft = rw.first_token_step - rw.submitted_step + 1;
  EXPECT_EQ(cold_ttft, 6);
  EXPECT_EQ(warm_ttft, 1);
  EXPECT_GE(cold_ttft, 5 * warm_ttft);
  EXPECT_EQ(engine.stats().prefill_tokens_saved, 80);

  engine.clear_prefix_cache();
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(PrefixCaching, SurvivesPreemptionChurnSmallPool) {
  // A pool too small for the whole batch forces eviction round trips while
  // cached entries hold pages. Under-pressure reclaim may sacrifice cache
  // hits, never correctness: every completed stream stays bitwise solo.
  FaultGuard fg;
  const Workload w = shared_prefix_workload(6, /*prefix_len=*/48, 303);
  const auto solo = solo_streams(w);
  for (const int64_t pool_pages : {12, 20}) {
    QuantizedModel model(fixture_weights(), pool_scheme(pool_pages));
    EngineConfig cfg;
    cfg.prefix_caching = true;
    cfg.scheduler.prefill_chunk = 16;
    cfg.scheduler.max_batch = 4;
    ServingEngine engine(&model, cfg);
    std::vector<int> ids;
    for (size_t i = 0; i < w.prompts.size(); ++i)
      ids.push_back(engine.submit(w.prompts[i], w.max_new[i]));
    pump(engine);
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(engine.request(ids[i]).finish_reason, FinishReason::kLength)
          << "pool=" << pool_pages << " request " << i;
      EXPECT_EQ(engine.request(ids[i]).generated, solo[i])
          << "pool=" << pool_pages << " request " << i;
    }
    engine.clear_prefix_cache();
    EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
    EXPECT_EQ(model.kv_cache().shared_pages(), 0);
  }
}

TEST(PrefixCaching, EntryCapEvictsLruAndPressureEvictsBeforePreempting) {
  FaultGuard fg;
  // Three distinct prompts (no shared prefix) through a cap-2 cache.
  Rng rng(304);
  QuantizedModel model(fixture_weights(), pool_scheme(64));
  EngineConfig cfg;
  cfg.prefix_caching = true;
  cfg.prefix_cache_max_entries = 2;
  ServingEngine engine(&model, cfg);
  for (int i = 0; i < 3; ++i) {
    std::vector<int> p(20);
    for (auto& t : p) t = rng.uniform_int(0, 511);
    engine.submit(std::move(p), 4);
    pump(engine);
  }
  EXPECT_EQ(engine.stats().prefix_insertions, 3);
  EXPECT_GE(engine.stats().prefix_evictions, 1);
  EXPECT_LE(engine.stats().prefix_cache_entries, 2);

  // Pressure: a prompt that needs most of a small pool must reclaim cached
  // pages (prefix_evictions grows) instead of failing or preempting forever.
  QuantizedModel small(fixture_weights(), pool_scheme(8));
  ServingEngine engine2(&small, cfg);
  std::vector<int> warmup(32);
  for (auto& t : warmup) t = rng.uniform_int(0, 511);
  engine2.submit(warmup, 4);
  pump(engine2);
  EXPECT_EQ(engine2.stats().prefix_insertions, 1);
  std::vector<int> big(96);
  for (auto& t : big) t = rng.uniform_int(0, 511);
  const int id = engine2.submit(big, 4);
  pump(engine2);
  EXPECT_EQ(engine2.request(id).finish_reason, FinishReason::kLength);
  EXPECT_GE(engine2.stats().prefix_evictions, 1);
  engine2.clear_prefix_cache();
  EXPECT_EQ(small.kv_cache().pages_in_use(), 0);
  engine.clear_prefix_cache();
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(PrefixCaching, ChurnUnderFaultInjectionStaysBitwise) {
  // Deterministic kv_alloc faults + the QSERVE_FAULT env spec (when CI sets
  // it): fault recovery is preemption, preemption is stream-preserving, and
  // neither may corrupt a shared page.
  FaultGuard fg;
  const Workload w = shared_prefix_workload(6, /*prefix_len=*/48, 305);
  const auto solo = solo_streams(w);
  const char* env = std::getenv("QSERVE_FAULT");
  if (env != nullptr) {
    fault::configure(env);
  } else {
    fault::set_site(fault::kKvAlloc, 0.05, 91);
  }
  QuantizedModel model(fixture_weights(), pool_scheme(24));
  EngineConfig cfg;
  cfg.prefix_caching = true;
  cfg.scheduler.prefill_chunk = 16;
  cfg.scheduler.max_batch = 4;
  ServingEngine engine(&model, cfg);
  std::vector<int> ids;
  for (size_t i = 0; i < w.prompts.size(); ++i)
    ids.push_back(engine.submit(w.prompts[i], w.max_new[i]));
  pump(engine);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(engine.request(ids[i]).finish_reason, FinishReason::kLength)
        << i;
    EXPECT_EQ(engine.request(ids[i]).generated, solo[i]) << i;
  }
  fault::clear();
  engine.clear_prefix_cache();
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
  EXPECT_EQ(model.kv_cache().shared_pages(), 0);
}

TEST(ParallelSampling, GreedySiblingsEmitThePrimaryStream) {
  // n=4 at temperature 0: all four completions must equal the solo stream —
  // with the cache on (siblings fork the donated prompt pages) AND off
  // (siblings re-prefill cold). Demuxing metadata must line up.
  FaultGuard fg;
  const Workload w = shared_prefix_workload(1, /*prefix_len=*/40, 306);
  const auto solo = solo_streams(w);
  for (const bool caching : {false, true}) {
    QuantizedModel model(fixture_weights(), pool_scheme(64));
    EngineConfig cfg;
    cfg.prefix_caching = caching;
    cfg.scheduler.prefill_chunk = 16;
    ServingEngine engine(&model, cfg);
    RequestOptions opts;
    opts.max_new_tokens = w.max_new[0];
    opts.n = 4;
    std::map<int, int> finishes;
    const int primary = engine.submit(
        w.prompts[0], opts, nullptr,
        [&finishes](const Request& r) { ++finishes[r.id]; });
    pump(engine);

    const Request& rp = engine.request(primary);
    ASSERT_EQ(rp.sibling_ids.size(), 3u) << "caching=" << caching;
    EXPECT_EQ(rp.n_samples, 4);
    EXPECT_EQ(rp.sample_index, 0);
    EXPECT_EQ(rp.generated, solo[0]) << "caching=" << caching;
    int index = 1;
    for (const int sid : rp.sibling_ids) {
      const Request& rs = engine.request(sid);
      EXPECT_EQ(rs.finish_reason, FinishReason::kLength);
      EXPECT_EQ(rs.generated, solo[0])
          << "caching=" << caching << " sibling " << rs.sample_index;
      EXPECT_EQ(rs.parent_id, primary);
      EXPECT_EQ(rs.sample_index, index++);
      EXPECT_EQ(rs.n_samples, 4);
      EXPECT_EQ(finishes[sid], 1);
    }
    EXPECT_EQ(finishes[primary], 1);
    engine.clear_prefix_cache();
    EXPECT_EQ(model.kv_cache().pages_in_use(), 0) << "caching=" << caching;
  }
}

TEST(ParallelSampling, TemperatureRunsAreReproducible) {
  // temperature > 0: the four streams draw from one seeded RNG in a fixed
  // order (primary, then siblings ascending), so two identical runs must
  // produce identical stream sets; every completion runs to full length.
  FaultGuard fg;
  const Workload w = shared_prefix_workload(1, /*prefix_len=*/40, 307);
  const auto run = [&w]() {
    QuantizedModel model(fixture_weights(), pool_scheme(64));
    EngineConfig cfg;
    cfg.prefix_caching = true;
    cfg.temperature = 0.8f;
    cfg.sample_seed = 1234;
    ServingEngine engine(&model, cfg);
    RequestOptions opts;
    opts.max_new_tokens = 8;
    opts.n = 4;
    const int primary = engine.submit(w.prompts[0], opts, nullptr, nullptr);
    int guard = 0;
    while (engine.step() && ++guard < 50000) {
    }
    std::vector<std::vector<int>> streams;
    streams.push_back(engine.request(primary).generated);
    for (const int sid : engine.request(primary).sibling_ids)
      streams.push_back(engine.request(sid).generated);
    engine.clear_prefix_cache();
    EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
    return streams;
  };
  const auto first = run();
  const auto again = run();
  ASSERT_EQ(first.size(), 4u);
  for (const auto& s : first) EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(first, again);
}

TEST(PrefixCaching, SpeculativeEngineComposesWithWarmCache) {
  // Speculative decode + prefix cache: verify-step rollbacks truncate only
  // above the shared prefix, so warm streams still match the solo baseline
  // (which is itself bitwise equal to non-speculative decoding by the
  // speculative engine's greedy-acceptance invariant).
  FaultGuard fg;
  const Workload w = shared_prefix_workload(3, /*prefix_len=*/48, 308);
  const auto solo = solo_streams(w);
  QuantizedModel target(fixture_weights(), pool_scheme(64));
  QuantizedModel draft(fixture_weights(), pool_scheme(64));
  EngineConfig cfg;
  cfg.prefix_caching = true;
  cfg.scheduler.prefill_chunk = 16;
  cfg.speculative.lookahead_k = 2;
  ServingEngine engine(&target, &draft, cfg);
  std::vector<int> ids;
  ids.push_back(engine.submit(w.prompts[0], w.max_new[0]));
  pump(engine);
  for (size_t i = 1; i < w.prompts.size(); ++i)
    ids.push_back(engine.submit(w.prompts[i], w.max_new[i]));
  pump(engine);
  for (size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(engine.request(ids[i]).generated, solo[i]) << i;
  EXPECT_GE(engine.stats().prefix_hits, 1);
  engine.clear_prefix_cache();
  EXPECT_EQ(target.kv_cache().pages_in_use(), 0);
  EXPECT_EQ(draft.kv_cache().pages_in_use(), 0);
}

}  // namespace
}  // namespace qserve
