// Long-context terms of the serving estimator: a sliding window caps both
// the KV pool bytes and the decode attention cost at sinks + window, so the
// estimated decode curve flattens with context instead of growing linearly,
// and windowed throughput is never below full attention's.
#include <gtest/gtest.h>

#include "simulator/serving_model.h"

namespace qserve {
namespace {

using namespace qserve::sim;

ServingWorkload windowed_wl(int input_len, int output_len) {
  ServingWorkload wl;
  wl.input_len = input_len;
  wl.output_len = output_len;
  wl.attention_window = 4096;
  wl.sink_tokens = 64;
  return wl;
}

TEST(SimulatorLongContext, VisibleLenClampsAtSinkPlusWindow) {
  const ServingWorkload wl = windowed_wl(1024, 512);
  EXPECT_EQ(wl.visible_len(100), 100);
  EXPECT_EQ(wl.visible_len(4160), 4160);
  EXPECT_EQ(wl.visible_len(32768), 4096 + 64);
  ServingWorkload full;
  EXPECT_EQ(full.visible_len(32768), 32768);
}

TEST(SimulatorLongContext, WindowCapsKvPoolBytes) {
  const ModelConfig model = model_by_name("Llama-2-7B");
  const auto sys = system_profile(System::kQServePerChannel);
  ServingWorkload full;
  full.input_len = 28 * 1024;
  full.output_len = 4096;
  const ServingWorkload win = [&] {
    ServingWorkload w = windowed_wl(full.input_len, full.output_len);
    return w;
  }();
  const double full_bytes = kv_pool_bytes(sys, model, full, 8);
  const double win_bytes = kv_pool_bytes(sys, model, win, 8);
  // 32k tokens vs 4160 retained: ~7.9x smaller pool.
  EXPECT_NEAR(full_bytes / win_bytes, 32768.0 / 4160.0, 0.01);
  // And the bound actually admits bigger batches on a fixed device.
  EXPECT_GE(max_feasible_batch(a100_80g(), sys, model, win),
            max_feasible_batch(a100_80g(), sys, model, full));
}

TEST(SimulatorLongContext, WindowedDecodeFlattensAndNeverLoses) {
  // The end-to-end sanity check against bench_longcontext's shape: full
  // attention's mid-decode attention term keeps growing with context, the
  // windowed term is constant once context > sinks + window, and windowed
  // throughput dominates full attention at every context length.
  const ModelConfig model = model_by_name("Llama-2-7B");
  const auto sys = system_profile(System::kQServePerChannel);
  const DeviceSpec dev = a100_80g();
  double prev_full_attn = 0, prev_win_attn = 0;
  for (const int ctx : {8 * 1024, 16 * 1024, 28 * 1024}) {
    ServingWorkload full;
    full.input_len = ctx;
    full.output_len = 512;
    const ServingWorkload win = windowed_wl(ctx, 512);
    const ServingEstimate ef = estimate_throughput(dev, sys, model, full, 4);
    const ServingEstimate ew = estimate_throughput(dev, sys, model, win, 4);
    ASSERT_FALSE(ef.oom);
    ASSERT_FALSE(ew.oom);
    EXPECT_GE(ew.tokens_per_second, ef.tokens_per_second) << ctx;
    EXPECT_LT(ew.mid_decode_step.attention_seconds,
              ef.mid_decode_step.attention_seconds)
        << ctx;
    // Full attention's decode attention grows with context...
    EXPECT_GT(ef.mid_decode_step.attention_seconds, prev_full_attn) << ctx;
    prev_full_attn = ef.mid_decode_step.attention_seconds;
    // ...the windowed term is flat once ctx exceeds sinks + window.
    if (prev_win_attn > 0) {
      EXPECT_DOUBLE_EQ(ew.mid_decode_step.attention_seconds, prev_win_attn)
          << ctx;
    }
    prev_win_attn = ew.mid_decode_step.attention_seconds;
  }
}

TEST(SimulatorLongContext, WindowLargerThanContextChangesNothing) {
  const ModelConfig model = model_by_name("Llama-2-7B");
  const auto sys = system_profile(System::kQServePerChannel);
  const DeviceSpec dev = a100_80g();
  ServingWorkload full;
  full.input_len = 1024;
  full.output_len = 256;
  ServingWorkload win = full;
  win.attention_window = 4096;  // 1280 final tokens never reach the window
  win.sink_tokens = 64;
  const ServingEstimate ef = estimate_throughput(dev, sys, model, full, 8);
  const ServingEstimate ew = estimate_throughput(dev, sys, model, win, 8);
  EXPECT_DOUBLE_EQ(ef.tokens_per_second, ew.tokens_per_second);
  EXPECT_DOUBLE_EQ(kv_pool_bytes(sys, model, full, 8),
                   kv_pool_bytes(sys, model, win, 8));
}

}  // namespace
}  // namespace qserve
