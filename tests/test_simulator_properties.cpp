// Property tests for the performance models: monotonicity, consistency and
// conservation laws the cost models must obey regardless of calibration.
#include <gtest/gtest.h>

#include "simulator/serving_model.h"

namespace qserve {
namespace {

using namespace qserve::sim;

class GemmCostMonotone : public ::testing::TestWithParam<GemmPipeline> {};

TEST_P(GemmCostMonotone, CostIncreasesWithEveryDimension) {
  const DeviceSpec dev = a100_80g();
  GemmShape base{.m = 16, .n = 2048, .k = 2048};
  const double t0 = gemm_cost(dev, GetParam(), base).seconds;
  for (auto grow : {&GemmShape::m, &GemmShape::n, &GemmShape::k}) {
    GemmShape s = base;
    s.*grow *= 2;
    EXPECT_GE(gemm_cost(dev, GetParam(), s).seconds, t0) << "dim";
  }
}

TEST_P(GemmCostMonotone, TotalIsMaxOfMemoryAndCompute) {
  const DeviceSpec dev = l40s_48g();
  for (int m : {1, 8, 64, 256}) {
    GemmShape s{.m = m, .n = 4096, .k = 4096};
    const auto c = gemm_cost(dev, GetParam(), s);
    EXPECT_DOUBLE_EQ(
        c.seconds,
        std::max(c.memory_seconds,
                 c.tensor_core_seconds + c.cuda_core_seconds));
    EXPECT_EQ(c.memory_bound,
              c.memory_seconds >=
                  c.tensor_core_seconds + c.cuda_core_seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(Pipelines, GemmCostMonotone,
                         ::testing::Values(GemmPipeline::kFp16,
                                           GemmPipeline::kW8A8,
                                           GemmPipeline::kW4A16,
                                           GemmPipeline::kW4A4Atom,
                                           GemmPipeline::kW4A8PerChannel,
                                           GemmPipeline::kW4A8PerGroup,
                                           GemmPipeline::kW4A8DGQ));

TEST(GemmCostProperties, LowerWeightBitsNeverMoreMemoryTime) {
  const DeviceSpec dev = a100_80g();
  const GemmShape s{.m = 4, .n = 4096, .k = 4096};
  const double m16 = gemm_cost(dev, GemmPipeline::kFp16, s).memory_seconds;
  const double m8 = gemm_cost(dev, GemmPipeline::kW8A8, s).memory_seconds;
  const double m4 =
      gemm_cost(dev, GemmPipeline::kW4A8PerGroup, s).memory_seconds;
  EXPECT_GT(m16, m8);
  EXPECT_GT(m8, m4);
}

TEST(AttentionCostProperties, MonotoneInBatchSeqAndBits) {
  const DeviceSpec dev = a100_80g();
  const auto cfg = AttentionKernelConfig::qserve_kv4();
  AttentionShape s;
  const double base = attention_decode_cost(dev, cfg, s).seconds;
  AttentionShape s2 = s;
  s2.batch *= 2;
  EXPECT_GT(attention_decode_cost(dev, cfg, s2).seconds, base);
  AttentionShape s3 = s;
  s3.seq_len *= 2;
  EXPECT_GT(attention_decode_cost(dev, cfg, s3).seconds, base);
  auto kv8 = cfg;
  kv8.kv_bits = 8;
  EXPECT_GT(attention_decode_cost(dev, kv8, s).memory_seconds,
            attention_decode_cost(dev, cfg, s).memory_seconds);
}

TEST(AttentionCostProperties, GqaReducesMemoryNotMacs) {
  const DeviceSpec dev = a100_80g();
  const auto cfg = AttentionKernelConfig::trt_kv8();
  AttentionShape mha{64, 1024, 32, 32, 128};
  AttentionShape gqa{64, 1024, 32, 8, 128};
  const auto cm = attention_decode_cost(dev, cfg, mha);
  const auto cg = attention_decode_cost(dev, cfg, gqa);
  EXPECT_LT(cg.memory_seconds, cm.memory_seconds);
}

TEST(ServingProperties, ThroughputEventuallySaturatesOrDropsWithBatch) {
  // tokens/s should increase with batch in the memory-bound regime and
  // flatten once compute-bound; it must never be negative or NaN.
  const DeviceSpec dev = a100_80g();
  const auto sys = system_profile(System::kQServePerChannel);
  const auto model = model_by_name("Llama-2-7B");
  const ServingWorkload wl;
  double prev = 0;
  bool increased = false;
  for (int b : {1, 4, 16, 64}) {
    const auto est = estimate_throughput(dev, sys, model, wl, b);
    ASSERT_FALSE(est.oom);
    ASSERT_GT(est.tokens_per_second, 0);
    if (est.tokens_per_second > prev * 1.5) increased = true;
    prev = est.tokens_per_second;
  }
  EXPECT_TRUE(increased);
}

TEST(ServingProperties, BiggerModelsNeverFaster) {
  const DeviceSpec dev = a100_80g();
  const auto sys = system_profile(System::kQServePerChannel);
  const ServingWorkload wl;
  double prev = 1e18;
  for (const char* name :
       {"Llama-2-7B", "Llama-2-13B", "Llama-30B", "Llama-2-70B"}) {
    const double t =
        max_throughput(dev, sys, model_by_name(name), wl).tokens_per_second;
    EXPECT_LT(t, prev) << name;
    prev = t;
  }
}

TEST(ServingProperties, KvPoolScalesWithWorkloadLength) {
  const auto sys = system_profile(System::kQServePerGroup);
  const auto model = model_by_name("Llama-2-7B");
  ServingWorkload wl1{1024, 512};
  ServingWorkload wl2{2048, 1024};
  EXPECT_NEAR(kv_pool_bytes(sys, model, wl2, 8) /
                  kv_pool_bytes(sys, model, wl1, 8),
              2.0, 1e-9);
}

TEST(ServingProperties, MaxFeasibleBatchMonotoneInMemory) {
  DeviceSpec small = l40s_48g();
  DeviceSpec big = small;
  big.memory_gib = 96;
  const auto sys = system_profile(System::kQServePerGroup);
  const auto model = model_by_name("Llama-2-13B");
  const ServingWorkload wl;
  EXPECT_GT(max_feasible_batch(big, sys, model, wl),
            max_feasible_batch(small, sys, model, wl));
}

TEST(ServingProperties, UnsupportedAndOomAreDistinct) {
  const ServingWorkload wl;
  const auto atom = system_profile(System::kAtomW4A4);
  const auto est =
      max_throughput(a100_80g(), atom, model_by_name("Yi-34B"), wl);
  EXPECT_FALSE(est.supported);
  EXPECT_FALSE(est.oom);
  EXPECT_EQ(est.tokens_per_second, 0);

  const auto fp16 = system_profile(System::kTrtFp16);
  const auto est2 =
      max_throughput(l40s_48g(), fp16, model_by_name("Qwen1.5-72B"), wl);
  EXPECT_TRUE(est2.supported);
  EXPECT_TRUE(est2.oom);
}

TEST(ServingProperties, PrefillScalesWithPromptLength) {
  const DeviceSpec dev = a100_80g();
  const auto sys = system_profile(System::kTrtW8A8);
  const auto model = model_by_name("Llama-2-7B");
  const auto short_wl = ServingWorkload{256, 64};
  const auto long_wl = ServingWorkload{2048, 64};
  const auto a = estimate_throughput(dev, sys, model, short_wl, 8);
  const auto b = estimate_throughput(dev, sys, model, long_wl, 8);
  EXPECT_GT(b.prefill_seconds, a.prefill_seconds * 4);
}

TEST(ModelConfigProperties, ParamCountsMatchPublishedScale) {
  // Sanity: our shape tables land near the nominal parameter counts.
  EXPECT_NEAR(double(model_by_name("Llama-2-7B").param_count()) / 1e9, 6.7,
              0.5);
  EXPECT_NEAR(double(model_by_name("Llama-3-8B").param_count()) / 1e9, 8.0,
              0.6);
  EXPECT_NEAR(double(model_by_name("Llama-2-13B").param_count()) / 1e9, 13.0,
              0.8);
  EXPECT_NEAR(double(model_by_name("Llama-2-70B").param_count()) / 1e9, 69.0,
              3.0);
  EXPECT_NEAR(double(model_by_name("Qwen1.5-72B").param_count()) / 1e9, 72.0,
              4.0);
}

TEST(ModelConfigProperties, KvBytesPerTokenMatchesFormula) {
  const auto m = model_by_name("Llama-2-7B");
  // 2 (K+V) * 32 layers * 4096 kv_dim * 1 byte = 256 KiB/token at KV8.
  EXPECT_EQ(m.kv_bytes_per_token(8), 2 * 32 * 4096);
  EXPECT_EQ(m.kv_bytes_per_token(4), 32 * 4096);
}

}  // namespace
}  // namespace qserve
