// QoQ transform units: Hadamard rotation (§4.3.1), SmoothAttention (§4.2),
// output smoothing (§4.3.2), channel reordering (§4.3.3), clipping (§4.3.4).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/gemm.h"
#include "kernels/ops.h"
#include "qoq/hadamard.h"
#include "qoq/reorder.h"
#include "qoq/smooth.h"
#include "qoq/smooth_attention.h"
#include "quant/clip.h"
#include "quant/kv_quant.h"
#include "quant/quantize.h"

namespace qserve {
namespace {

Tensor random_tensor(int64_t m, int64_t d, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  Tensor t({m, d});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal(0.0f, scale);
  return t;
}

// --- Hadamard -------------------------------------------------------------------

TEST(Hadamard, Orthonormal) {
  const Tensor q = hadamard_matrix(16);
  const Tensor qqT = gemm_f32_ref(q, q);  // Q Q^T since H is symmetric
  for (int64_t r = 0; r < 16; ++r)
    for (int64_t c = 0; c < 16; ++c)
      EXPECT_NEAR(qqT.at2(r, c), r == c ? 1.0f : 0.0f, 1e-5f);
}

TEST(Hadamard, RequiresPowerOfTwo) {
  EXPECT_THROW(hadamard_matrix(12), CheckError);
}

TEST(Hadamard, RotationPreservesLayerOutput) {
  const Tensor x = random_tensor(4, 32, 1);
  const Tensor w = random_tensor(8, 32, 2);
  const Tensor q = hadamard_matrix(32);
  const Tensor ref = gemm_f32_ref(x, w);
  const Tensor out = gemm_f32_ref(rotate_activations(x, q),
                                  rotate_weight_for_rotated_input(w, q));
  EXPECT_LT(max_abs_diff(ref, out), 1e-3f);
}

TEST(Hadamard, ProducerRotationPreRotatesOutput) {
  const Tensor x = random_tensor(4, 16, 3);
  const Tensor w = random_tensor(32, 16, 4);
  const Tensor q = hadamard_matrix(32);
  const Tensor expect = rotate_activations(gemm_f32_ref(x, w), q);
  const Tensor got =
      gemm_f32_ref(x, rotate_weight_producing_rotated_output(w, q));
  EXPECT_LT(max_abs_diff(expect, got), 1e-3f);
}

TEST(Hadamard, SuppressesOutlierChannels) {
  // A single 50x channel spreads across all channels after rotation.
  Tensor x = random_tensor(16, 64, 5);
  for (int64_t t = 0; t < 16; ++t) x.at2(t, 3) = 50.0f;
  const float before = channel_outlier_ratio(x);
  const Tensor rot = rotate_activations(x, hadamard_matrix(64));
  const float after = channel_outlier_ratio(rot);
  EXPECT_GT(before, 10.0f);
  EXPECT_LT(after, before / 4.0f);
}

TEST(Hadamard, FwhtMatchesMatrixProduct) {
  Tensor x = random_tensor(3, 64, 6);
  const Tensor expect = rotate_activations(x, hadamard_matrix(64));
  fwht_rows_inplace(x);
  EXPECT_LT(max_abs_diff(expect, x), 1e-4f);
}

TEST(Hadamard, RotationImprovesInt8Quantization) {
  // Quantization error of per-token INT8 drops when the outlier channel is
  // spread out — the point of §4.3.1.
  Tensor x = random_tensor(8, 64, 7);
  for (int64_t t = 0; t < 8; ++t) x.at2(t, 5) = 30.0f;
  const Tensor rot = rotate_activations(x, hadamard_matrix(64));
  const double err_raw = mse(x, dequantize(quantize_acts_per_token(x)));
  const double err_rot = mse(rot, dequantize(quantize_acts_per_token(rot)));
  EXPECT_LT(err_rot, err_raw / 2.0);
}

// --- SmoothAttention ---------------------------------------------------------------

TEST(SmoothAttention, LambdaSatisfiesRopePairing) {
  Tensor keys = random_tensor(32, 128, 8);
  for (int64_t t = 0; t < 32; ++t) keys.at2(t, 10) = 25.0f;  // outlier
  const auto s = compute_smooth_attention_scales(keys, 64);
  for (int64_t h = 0; h < 2; ++h)
    for (int i = 0; i < 32; ++i)
      EXPECT_EQ(s.lambda[h * 64 + i], s.lambda[h * 64 + i + 32]);
}

TEST(SmoothAttention, CommutesWithRope) {
  // RoPE(K Λ^{-1}) == RoPE(K) Λ^{-1} given the pairing constraint.
  Tensor keys = random_tensor(6, 128, 9);
  for (int64_t t = 0; t < 6; ++t) keys.at2(t, 3) = 12.0f;
  const auto s = compute_smooth_attention_scales(keys, 64);
  const std::vector<int> pos = {0, 2, 4, 6, 8, 10};

  Tensor a = smooth_keys(keys, s);
  rope_inplace(a, pos, 64);
  Tensor b = keys;
  rope_inplace(b, pos, 64);
  b = smooth_keys(b, s);
  EXPECT_LT(max_abs_diff(a, b), 1e-4f);
}

TEST(SmoothAttention, QKProductExactlyPreserved) {
  // Q' K'^T == Q K^T: the transform is exact because queries absorb Λ.
  const int n_heads = 4, head_dim = 16;
  Tensor keys = random_tensor(8, 2 * head_dim, 10);  // 2 kv heads (GQA)
  for (int64_t t = 0; t < 8; ++t) keys.at2(t, 1) = 15.0f;
  Tensor queries = random_tensor(8, n_heads * head_dim, 11);
  const auto s = compute_smooth_attention_scales(keys, head_dim);
  const Tensor k2 = smooth_keys(keys, s);
  const Tensor q2 = scale_queries(queries, s, n_heads);
  // Per-head score check: q head h uses kv head h/2.
  for (int h = 0; h < n_heads; ++h) {
    for (int64_t tq = 0; tq < 8; ++tq) {
      for (int64_t tk = 0; tk < 8; ++tk) {
        double dot1 = 0, dot2 = 0;
        for (int d = 0; d < head_dim; ++d) {
          dot1 += double(queries.at2(tq, h * head_dim + d)) *
                  keys.at2(tk, (h / 2) * head_dim + d);
          dot2 += double(q2.at2(tq, h * head_dim + d)) *
                  k2.at2(tk, (h / 2) * head_dim + d);
        }
        EXPECT_NEAR(dot1, dot2, 1e-3 * std::abs(dot1) + 1e-3);
      }
    }
  }
}

TEST(SmoothAttention, FoldIntoWeightsEqualsActivationScaling) {
  const int n_heads = 2, n_kv = 2, head_dim = 8, hidden = 16;
  Tensor wq = random_tensor(n_heads * head_dim, hidden, 12);
  Tensor wk = random_tensor(n_kv * head_dim, hidden, 13);
  const Tensor x = random_tensor(5, hidden, 14);
  Tensor keys = gemm_f32_ref(x, wk);
  const auto s = compute_smooth_attention_scales(keys, head_dim);

  const Tensor q_ref = scale_queries(gemm_f32_ref(x, wq), s, n_heads);
  const Tensor k_ref = smooth_keys(keys, s);
  fold_smooth_attention(s, n_heads, n_kv, wq, wk);
  EXPECT_LT(max_abs_diff(gemm_f32_ref(x, wq), q_ref), 1e-4f);
  EXPECT_LT(max_abs_diff(gemm_f32_ref(x, wk), k_ref), 1e-4f);
}

TEST(SmoothAttention, ReducesKeyOutlierRatioAndKv4Error) {
  Tensor keys = random_tensor(64, 128, 15);
  for (int64_t t = 0; t < 64; ++t) {
    keys.at2(t, 7) = 20.0f + float(t % 3);
    keys.at2(t, 70) = -18.0f;
  }
  const auto s = compute_smooth_attention_scales(keys, 64);
  const Tensor smoothed = smooth_keys(keys, s);
  EXPECT_LT(channel_outlier_ratio(smoothed), channel_outlier_ratio(keys));

  // INT4 per-head round-trip error in the *score space* must improve:
  // compare relative errors since smoothing changes scales.
  auto rel_kv4_error = [](const Tensor& k) {
    double err = 0, mag = 0;
    std::vector<uint8_t> codes(64);
    std::vector<float> out(64);
    for (int64_t t = 0; t < k.rows(); ++t) {
      for (int h = 0; h < 2; ++h) {
        const float* hp = k.row(t) + h * 64;
        const auto p = kv_quantize(hp, 64, 4, codes.data());
        kv_dequantize(codes.data(), 64, p, out.data());
        for (int i = 0; i < 64; ++i) {
          err += std::pow(out[size_t(i)] - hp[i], 2);
          mag += std::pow(hp[i], 2);
        }
      }
    }
    return err / mag;
  };
  EXPECT_LT(rel_kv4_error(smoothed), rel_kv4_error(keys));
}

// --- output smoothing -----------------------------------------------------------------

TEST(Smoothing, FoldPreservesComposition) {
  // producer -> intermediate -> consumer must compute the same function
  // after folding λ.
  const Tensor x = random_tensor(4, 16, 16);
  Tensor producer = random_tensor(24, 16, 17);
  Tensor consumer = random_tensor(8, 24, 18);
  const Tensor inter = gemm_f32_ref(x, producer);
  const Tensor ref = gemm_f32_ref(inter, consumer);

  const Tensor lambda = compute_smoothing_scales(inter, consumer, 0.05f);
  fold_smoothing(lambda, producer, consumer);
  const Tensor out = gemm_f32_ref(gemm_f32_ref(x, producer), consumer);
  EXPECT_LT(max_abs_diff(ref, out), 1e-3f);
}

TEST(Smoothing, AlphaNearZeroEqualizesWeightRanges) {
  // §4.3.2: with α ≈ 0, λ_j ≈ 1 / max|W_j| — consumer columns end up with
  // equal dynamic ranges.
  const Tensor acts = random_tensor(8, 16, 19);
  Tensor consumer = random_tensor(8, 16, 20);
  for (int64_t r = 0; r < 8; ++r) consumer.at2(r, 2) *= 30.0f;
  Tensor producer = random_tensor(16, 8, 21);
  const Tensor lambda = compute_smoothing_scales(acts, consumer, 0.0f);
  fold_smoothing(lambda, producer, consumer);
  float cmax_min = 1e30f, cmax_max = 0.0f;
  for (int64_t j = 0; j < 16; ++j) {
    float cm = 0;
    for (int64_t r = 0; r < 8; ++r)
      cm = std::max(cm, std::abs(consumer.at2(r, j)));
    cmax_min = std::min(cmax_min, cm);
    cmax_max = std::max(cmax_max, cm);
  }
  EXPECT_LT(cmax_max / cmax_min, 1.5f);
}

TEST(Smoothing, OffsetSelectsProducerSpan) {
  Tensor producer = random_tensor(10, 4, 22);  // rows 6..9 feed the consumer
  Tensor consumer = random_tensor(3, 4, 23);
  const Tensor orig = producer;
  Tensor lambda = Tensor::full({4}, 2.0f);
  fold_smoothing(lambda, producer, consumer, 6);
  for (int64_t r = 0; r < 6; ++r)
    for (int64_t c = 0; c < 4; ++c)
      EXPECT_EQ(producer.at2(r, c), orig.at2(r, c));
  for (int64_t r = 6; r < 10; ++r)
    for (int64_t c = 0; c < 4; ++c)
      EXPECT_FLOAT_EQ(producer.at2(r, c), orig.at2(r, c) * 0.5f);
}

// --- channel reordering -------------------------------------------------------------

TEST(Reorder, SalienceOrderDescending) {
  Tensor x({2, 4});
  x.at2(0, 0) = 1.0f;
  x.at2(0, 1) = 9.0f;
  x.at2(1, 2) = -5.0f;
  x.at2(0, 3) = 2.0f;
  const auto perm = salience_order(x);
  EXPECT_EQ(perm[0], 1);
  EXPECT_EQ(perm[1], 2);
  EXPECT_EQ(perm[2], 3);
  EXPECT_EQ(perm[3], 0);
}

TEST(Reorder, PermutationPreservesGemm) {
  const Tensor x = random_tensor(4, 32, 24);
  const Tensor w = random_tensor(8, 32, 25);
  const auto perm = salience_order(x);
  const Tensor ref = gemm_f32_ref(x, w);
  const Tensor out =
      gemm_f32_ref(permute_columns(x, perm), permute_columns(w, perm));
  EXPECT_LT(max_abs_diff(ref, out), 1e-5f);
}

TEST(Reorder, InvertPermutationRoundTrip) {
  Rng rng(26);
  const auto perm = rng.permutation(17);
  const auto inv = invert_permutation(perm);
  for (int i = 0; i < 17; ++i) EXPECT_EQ(perm[size_t(inv[size_t(i)])], i);
}

TEST(Reorder, GroupsSimilarSalienceImprovesGroupQuant) {
  // Interleave salient channels so every group contains one outlier; the
  // reorder gathers them together, shrinking total group-quant error.
  Rng rng(27);
  const int64_t k = 256, n = 8;
  Tensor x({16, k});
  for (int64_t t = 0; t < 16; ++t)
    for (int64_t c = 0; c < k; ++c)
      x.at2(t, c) = rng.normal() * ((c % 8 == 0) ? 20.0f : 1.0f);
  Tensor w = random_tensor(n, k, 28);
  for (int64_t r = 0; r < n; ++r)
    for (int64_t c = 0; c < k; ++c)
      if (c % 8 == 0) w.at2(r, c) *= 10.0f;  // weight range follows salience

  const auto perm = salience_order(x);
  const Tensor wp = permute_columns(w, perm);
  const double err_orig =
      mse(w, dequantize(quantize_progressive(w, {.group = 32})));
  const double err_perm =
      mse(wp, dequantize(quantize_progressive(wp, {.group = 32})));
  EXPECT_LT(err_perm, err_orig);
}

// --- weight clipping ------------------------------------------------------------------

TEST(Clip, ClipWeightsBoundsRange) {
  const Tensor w = random_tensor(4, 32, 29, 2.0f);
  const Tensor clipped = clip_weights(w, 0.5f);
  for (int64_t r = 0; r < 4; ++r) {
    const float bound = abs_max(w.row(r), 32) * 0.5f;
    for (int64_t c = 0; c < 32; ++c)
      EXPECT_LE(std::abs(clipped.at2(r, c)), bound + 1e-6f);
  }
}

TEST(Clip, SearchReturnsRatioWithinGrid) {
  const Tensor w = random_tensor(8, 128, 30);
  const Tensor x = random_tensor(8, 128, 31);
  ClipSearchOptions opt;
  opt.group = 128;
  const auto r = search_clip_output_mse(w, x, opt);
  EXPECT_GE(r.ratio, opt.min_ratio);
  EXPECT_LE(r.ratio, 1.0f);
}

TEST(Clip, OutlierOnQuietChannelPrefersClipping) {
  // Clipping wins when the range-stretching weight outlier sits on a
  // low-activation channel: the clipped outlier barely affects the output,
  // while every other weight gains quantization resolution (the AWQ/QoQ
  // rationale for output-MSE clip search).
  Rng rng(32);
  Tensor w({4, 128});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal(0.0f, 0.5f);
  w.at2(0, 5) = 30.0f;  // extreme outlier stretching the quant range
  Tensor x = random_tensor(8, 128, 33);
  for (int64_t t = 0; t < x.rows(); ++t) x.at2(t, 5) *= 0.01f;  // quiet input
  ClipSearchOptions opt;
  opt.group = 128;
  opt.progressive = false;  // per-channel: the outlier hurts the most
  const auto r = search_clip_output_mse(w, x, opt);
  EXPECT_LT(r.ratio, 1.0f);
}

TEST(Clip, SearchIsConsistentWithBruteForce) {
  // The returned ratio must be the argmin of its own objective over the grid.
  const Tensor w = random_tensor(4, 128, 35, 1.5f);
  const Tensor x = random_tensor(6, 128, 36);
  ClipSearchOptions opt;
  opt.group = 128;
  opt.steps = 6;
  const auto r = search_clip_output_mse(w, x, opt);
  for (int i = 0; i < opt.steps; ++i) {
    const float ratio =
        1.0f - (1.0f - opt.min_ratio) * float(i) / float(opt.steps - 1);
    const Tensor deq = quantize_dequantize_clipped(w, ratio, opt);
    const Tensor ref = gemm_f32_ref(x, w);
    const double err = mse(gemm_f32_ref(x, deq), ref) * double(ref.numel());
    EXPECT_GE(err + 1e-9, r.error * 0.999) << ratio;
  }
}

TEST(Clip, CustomObjectiveIsUsed) {
  // An objective minimized at small ratios must drive the search there.
  const auto r = search_clip_custom(
      [](float ratio) { return double(ratio); }, {});
  EXPECT_NEAR(r.ratio, 0.5f, 1e-5f);
}

TEST(Clip, WeightMseObjectivePrefersNoClipForUniformWeights) {
  // Uniformly distributed weights have no outliers: the best weight-space
  // ratio is (near) 1.
  Rng rng(34);
  Tensor w({2, 128});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.uniform(-1.0f, 1.0f);
  const auto r = search_clip_weight_mse(w, {});
  EXPECT_GT(r.ratio, 0.85f);
}

}  // namespace
}  // namespace qserve
