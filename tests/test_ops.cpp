#include "kernels/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "quant/quantize.h"

namespace qserve {
namespace {

Tensor random_tensor(int64_t m, int64_t d, uint64_t seed) {
  Rng rng(seed);
  Tensor t({m, d});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal();
  return t;
}

TEST(RmsNorm, UnitRmsOutput) {
  const Tensor x = random_tensor(4, 64, 1);
  const Tensor gamma = Tensor::full({64}, 1.0f);
  const Tensor y = rms_norm(x, gamma);
  for (int64_t t = 0; t < y.rows(); ++t) {
    double ss = 0;
    for (int64_t c = 0; c < y.cols(); ++c) ss += double(y.at2(t, c)) * y.at2(t, c);
    EXPECT_NEAR(std::sqrt(ss / 64.0), 1.0, 1e-3);
  }
}

TEST(RmsNorm, GammaScalesChannels) {
  Tensor x({1, 4});
  x[0] = x[1] = x[2] = x[3] = 1.0f;
  Tensor gamma({4});
  gamma[0] = 2.0f;
  gamma[1] = gamma[2] = gamma[3] = 1.0f;
  const Tensor y = rms_norm(x, gamma);
  EXPECT_NEAR(y[0] / y[1], 2.0f, 1e-5);
}

TEST(RmsNorm, ScaleInvariance) {
  // RMSNorm output is invariant to scaling the input row — the property that
  // lets rotation commute after gamma folding.
  const Tensor x = random_tensor(2, 32, 2);
  Tensor x2 = x;
  for (int64_t i = 0; i < x2.numel(); ++i) x2[i] *= 5.0f;
  const Tensor gamma = Tensor::full({32}, 1.0f);
  EXPECT_LT(max_abs_diff(rms_norm(x, gamma, 0.0f), rms_norm(x2, gamma, 0.0f)),
            1e-5f);
}

TEST(RmsNormQuant, FusedEqualsSeparate) {
  const Tensor x = random_tensor(3, 64, 3);
  const Tensor gamma = Tensor::full({64}, 1.0f);
  const auto fused = rms_norm_quant(x, gamma);
  const auto separate = quantize_acts_per_token(rms_norm(x, gamma));
  for (int64_t i = 0; i < fused.q.numel(); ++i)
    EXPECT_EQ(fused.q[i], separate.q[i]);
}

TEST(Silu, KnownValues) {
  Tensor x({1, 3});
  x[0] = 0.0f;
  x[1] = 10.0f;
  x[2] = -10.0f;
  const Tensor y = silu(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-6);
  EXPECT_NEAR(y[1], 10.0f, 1e-3);
  EXPECT_NEAR(y[2], 0.0f, 1e-3);
}

TEST(Swiglu, GateTimesUp) {
  Tensor gu({1, 4});
  gu[0] = 1.0f;  // gate
  gu[1] = -1.0f;
  gu[2] = 3.0f;  // up
  gu[3] = 2.0f;
  const Tensor y = swiglu(gu);
  const float silu1 = 1.0f / (1.0f + std::exp(-1.0f));
  const float silum1 = -1.0f / (1.0f + std::exp(1.0f));
  EXPECT_NEAR(y[0], silu1 * 3.0f, 1e-5);
  EXPECT_NEAR(y[1], silum1 * 2.0f, 1e-5);
}

TEST(Rope, PreservesNorm) {
  Tensor x = random_tensor(3, 128, 4);
  Tensor orig = x;
  rope_inplace(x, {5, 9, 13}, 64);
  for (int64_t t = 0; t < 3; ++t) {
    double n0 = 0, n1 = 0;
    for (int64_t c = 0; c < 128; ++c) {
      n0 += double(orig.at2(t, c)) * orig.at2(t, c);
      n1 += double(x.at2(t, c)) * x.at2(t, c);
    }
    EXPECT_NEAR(n0, n1, 1e-3 * n0);
  }
}

TEST(Rope, PositionZeroIsIdentity) {
  Tensor x = random_tensor(1, 64, 5);
  const Tensor orig = x;
  rope_inplace(x, {0}, 64);
  EXPECT_LT(max_abs_diff(x, orig), 1e-6f);
}

TEST(Rope, RelativePositionProperty) {
  // <RoPE(q, m), RoPE(k, n)> depends only on m - n.
  Tensor q = random_tensor(1, 64, 6);
  Tensor k = random_tensor(1, 64, 7);
  auto dot_at = [&](int pq, int pk) {
    Tensor qq = q, kk = k;
    rope_inplace(qq, {pq}, 64);
    rope_inplace(kk, {pk}, 64);
    double d = 0;
    for (int64_t c = 0; c < 64; ++c) d += double(qq[c]) * kk[c];
    return d;
  };
  EXPECT_NEAR(dot_at(3, 1), dot_at(10, 8), 1e-3);
  EXPECT_NEAR(dot_at(7, 0), dot_at(12, 5), 1e-3);
}

TEST(Rope, PairsChannelIWithIPlusHalf) {
  // Channel i and i + D/2 rotate together: zeroing both leaves the rest
  // untouched regardless of position.
  Tensor x({1, 8});
  for (int64_t c = 0; c < 8; ++c) x[c] = 1.0f;
  x[1] = 0.0f;
  x[5] = 0.0f;  // pair (1, 1+4)
  Tensor rot = x;
  rope_inplace(rot, {3}, 8);
  // Pair (1,5) stays zero; other channels moved.
  EXPECT_EQ(rot[1], 0.0f);
  EXPECT_EQ(rot[5], 0.0f);
}

TEST(AddInplace, Adds) {
  Tensor a = Tensor::full({2, 2}, 1.0f);
  const Tensor b = Tensor::full({2, 2}, 2.0f);
  add_inplace(a, b);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(a[i], 3.0f);
}

}  // namespace
}  // namespace qserve
