// Long-context serving: sliding-window attention with sinks, end to end.
//
// Cache layer: the page ring recycles the oldest non-sink page in place, so
// a windowed sequence's footprint is flat no matter how long it grows;
// resident bytes are bitwise the bytes a full-attention sequence holds at
// the same positions; truncate-then-append across the ring boundary matches
// a sequence that never held the rejected tail. Model layer: window >=
// context is bitwise identical to full attention. Engine layer: windowed
// streams are bitwise stable across ISA x threads x TP shards x preemption
// churn, option validation rejects loudly, and a long generation completes
// in a pool a full-attention run could never fit.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "kvcache/paged_kv_cache.h"
#include "serving/engine.h"

namespace qserve {
namespace {

KvCacheConfig ring_cfg(int max_pages = 256) {
  KvCacheConfig cfg;
  cfg.n_kv_heads = 2;
  cfg.head_dim = 8;
  cfg.page_size = 4;
  cfg.precision = KvPrecision::kInt4;
  cfg.max_pages = max_pages;
  return cfg;
}

std::vector<float> random_vec(Rng& rng, int n) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.normal();
  return v;
}

struct EnvGuard {
  ~EnvGuard() {
    set_num_threads(0);
    set_tp_shards(0);
    cpu::clear_isa_override();
    fault::clear();
  }
};

// --- cache layer: page ring ---------------------------------------------------

TEST(KvWindow, PageCapArithmeticAndValidation) {
  const KvCacheConfig cfg = ring_cfg();
  // sink pages + window pages + ceil(slack) pages + 1 boundary page.
  EXPECT_EQ(PagedKvCache::window_page_cap(cfg, 0, 8, 3), 0 + 2 + 1 + 1);
  EXPECT_EQ(PagedKvCache::window_page_cap(cfg, 4, 8, 4), 1 + 2 + 1 + 1);
  EXPECT_EQ(PagedKvCache::window_page_cap(cfg, 8, 12, 0), 2 + 3 + 0 + 1);

  PagedKvCache cache(cfg);
  const int seq = cache.alloc_sequence();
  // Page-alignment and positivity are QS_CHECKed loudly.
  EXPECT_THROW(cache.set_window(seq, 0, 6, 4), CheckError);   // window % page
  EXPECT_THROW(cache.set_window(seq, 2, 8, 4), CheckError);   // sink % page
  EXPECT_THROW(cache.set_window(seq, 0, 0, 4), CheckError);   // no window
  cache.set_window(seq, 4, 8, 4);
  EXPECT_THROW(cache.set_window(seq, 4, 8, 4), CheckError);   // double install
  cache.free_sequence(seq);
  // Installing after the sequence outgrew the ring's identity prefix throws.
  const int late = cache.alloc_sequence();
  Rng rng(11);
  const auto k = random_vec(rng, 16), v = random_vec(rng, 16);
  for (int t = 0; t < 40; ++t) cache.append(late, k.data(), v.data());
  EXPECT_THROW(cache.set_window(late, 0, 8, 4), CheckError);
  cache.free_sequence(late);
  EXPECT_EQ(cache.pages_in_use(), 0);
}

TEST(KvWindow, RingRecyclesInPlaceWithFlatFootprint) {
  // 200 appended tokens, footprint capped at window_page_cap, and every
  // resident byte bitwise equal to a full-attention shadow sequence (the
  // per-token quantization is position-independent, so residency is the only
  // difference).
  const KvCacheConfig cfg = ring_cfg();
  PagedKvCache cache(cfg);
  PagedKvCache shadow(ring_cfg(1024));
  const int64_t sink = 4, window = 8, slack = 4;
  const int64_t cap = PagedKvCache::window_page_cap(cfg, sink, window, slack);
  const int seq = cache.alloc_sequence();
  const int ref = shadow.alloc_sequence();
  cache.set_window(seq, sink, window, slack);
  Rng rng(12);
  int64_t peak = 0;
  for (int t = 0; t < 200; ++t) {
    const auto k = random_vec(rng, 16), v = random_vec(rng, 16);
    cache.append(seq, k.data(), v.data());
    shadow.append(ref, k.data(), v.data());
    peak = std::max(peak, cache.pages_in_use());
  }
  EXPECT_EQ(cache.seq_len(seq), 200);
  EXPECT_LE(peak, cap);
  EXPECT_GT(cache.recycled_pages(), 0);
  // After the ring fills the footprint is exactly flat.
  EXPECT_EQ(cache.pages_in_use(), peak);

  Tensor k_vis, v_vis;
  const int64_t tail0 = cache.gather_visible(seq, k_vis, v_vis);
  // Retained tail: at least the window, at most the whole ring (window +
  // slack rounded up to whole pages + the boundary page).
  EXPECT_GE(tail0, 200 - window - slack - cfg.page_size);
  EXPECT_LE(tail0, 200 - window);
  ASSERT_EQ(k_vis.rows(), sink + (200 - tail0));
  Tensor k_ref, v_ref;
  shadow.gather(ref, k_ref, v_ref);
  for (int64_t r = 0; r < k_vis.rows(); ++r) {
    const int64_t logical = r < sink ? r : tail0 + (r - sink);
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(k_vis.at2(r, i), k_ref.at2(logical, i)) << r << "," << i;
      ASSERT_EQ(v_vis.at2(r, i), v_ref.at2(logical, i)) << r << "," << i;
    }
  }
  cache.free_sequence(seq);
  shadow.free_sequence(ref);
  EXPECT_EQ(cache.pages_in_use(), 0);
}

TEST(KvWindow, TruncateAcrossRingMatchesNeverAppended) {
  // Speculative rollback across the ring boundary: append a rejected tail,
  // truncate it, append the real tokens — resident state must be bitwise a
  // sequence that never held the tail.
  const int64_t sink = 4, window = 8, slack = 4;
  Rng rng(13);
  std::vector<std::vector<float>> hist_k, hist_v, next_k, next_v;
  for (int t = 0; t < 40; ++t) {
    hist_k.push_back(random_vec(rng, 16));
    hist_v.push_back(random_vec(rng, 16));
  }
  for (int t = 0; t < 3; ++t) {
    next_k.push_back(random_vec(rng, 16));
    next_v.push_back(random_vec(rng, 16));
  }
  PagedKvCache a(ring_cfg()), b(ring_cfg());
  const int sa = a.alloc_sequence(), sb = b.alloc_sequence();
  a.set_window(sa, sink, window, slack);
  b.set_window(sb, sink, window, slack);
  for (int t = 0; t < 40; ++t) {
    a.append(sa, hist_k[size_t(t)].data(), hist_v[size_t(t)].data());
    b.append(sb, hist_k[size_t(t)].data(), hist_v[size_t(t)].data());
  }
  // Rejected tail on `a` only, then rollback.
  for (int t = 0; t < 3; ++t)
    a.append(sa, next_v[size_t(t)].data(), next_k[size_t(t)].data());
  a.truncate_sequence(sa, 40);
  for (int t = 0; t < 3; ++t) {
    a.append(sa, next_k[size_t(t)].data(), next_v[size_t(t)].data());
    b.append(sb, next_k[size_t(t)].data(), next_v[size_t(t)].data());
  }
  Tensor ka, va, kb, vb;
  const int64_t ta = a.gather_visible(sa, ka, va);
  const int64_t tb = b.gather_visible(sb, kb, vb);
  EXPECT_EQ(ta, tb);
  ASSERT_EQ(ka.rows(), kb.rows());
  for (int64_t r = 0; r < ka.rows(); ++r)
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(ka.at2(r, i), kb.at2(r, i)) << r << "," << i;
      ASSERT_EQ(va.at2(r, i), vb.at2(r, i)) << r << "," << i;
    }
  a.free_sequence(sa);
  b.free_sequence(sb);
  EXPECT_EQ(a.pages_in_use(), 0);
}

TEST(KvWindow, ForkRestrictedToNeverRecycledPages) {
  const int64_t sink = 4, window = 8, slack = 4;
  PagedKvCache cache(ring_cfg());
  const int seq = cache.alloc_sequence();
  cache.set_window(seq, sink, window, slack);
  Rng rng(14);
  // While nothing has been recycled yet, any prefix is forkable.
  for (int t = 0; t < 10; ++t) {
    const auto k = random_vec(rng, 16), v = random_vec(rng, 16);
    cache.append(seq, k.data(), v.data());
  }
  const int early = cache.fork_sequence(seq, 8);
  cache.free_sequence(early);
  // Grow past the ring: only the sink prefix stays forkable.
  for (int t = 10; t < 60; ++t) {
    const auto k = random_vec(rng, 16), v = random_vec(rng, 16);
    cache.append(seq, k.data(), v.data());
  }
  ASSERT_GT(cache.recycled_pages(), 0);
  const int sinks = cache.fork_sequence(seq, sink);
  cache.free_sequence(sinks);
  EXPECT_THROW(cache.fork_sequence(seq, sink + 8), CheckError);
  cache.free_sequence(seq);
  EXPECT_EQ(cache.pages_in_use(), 0);
}

// --- model layer: window >= context == full attention -------------------------

TEST(ModelWindow, WindowCoveringContextIsBitwiseFullAttention) {
  // Every row of a windowed sequence whose context never exceeds sinks +
  // window attends the identical adjacent range as full attention, so the
  // logits must match bitwise — prefill chunks and decode steps alike.
  EnvGuard guard;
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  const QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  std::vector<int> prompt(24);
  Rng rng(15);
  for (auto& t : prompt) t = rng.uniform_int(0, 511);
  QuantizedModel full(weights, scheme), windowed(weights, scheme);
  const int sf = full.begin_sequence();
  const int sw = windowed.begin_sequence();
  windowed.set_sequence_window(sw, 16, 64, 128);  // 24 + 12 << 16 + 64
  Tensor lf = full.prefill(sf, prompt);
  Tensor lw = windowed.prefill(sw, prompt);
  for (int step = 0; step < 12; ++step) {
    ASSERT_EQ(lf.numel(), lw.numel());
    int arg = 0;
    for (int64_t i = 0; i < lf.numel(); ++i) {
      ASSERT_EQ(lf.data()[i], lw.data()[i]) << "step " << step << " i " << i;
      if (lf.data()[i] > lf.data()[arg]) arg = int(i);
    }
    lf = full.decode_step(sf, arg);
    lw = windowed.decode_step(sw, arg);
  }
  full.end_sequence(sf);
  windowed.end_sequence(sw);
}

// --- engine layer -------------------------------------------------------------

struct StreamSetup {
  std::vector<std::vector<int>> prompts;
  std::vector<int> max_new;
  RequestOptions opts;
};

StreamSetup windowed_workload(Rng& rng, int n_requests) {
  StreamSetup w;
  for (int i = 0; i < n_requests; ++i) {
    std::vector<int> prompt(static_cast<size_t>(rng.uniform_int(4, 40)));
    for (auto& t : prompt) t = rng.uniform_int(0, 511);
    w.prompts.push_back(std::move(prompt));
    // Long enough that context crosses sink + window = 48 and recycles.
    w.max_new.push_back(rng.uniform_int(30, 60));
  }
  w.opts.attention_window = 32;
  w.opts.sink_tokens = 16;
  return w;
}

struct RunOutcome {
  std::vector<std::vector<int>> streams;
  EngineStats stats;
};

RunOutcome run_windowed(const ModelWeights& weights, const StreamSetup& w,
                        int shards, const EngineConfig& cfg,
                        const QuantSchemeConfig& scheme,
                        const ModelWeights* draft_weights = nullptr) {
  QuantizedModel model(weights, scheme, TpConfig{shards});
  std::unique_ptr<QuantizedModel> draft;
  if (draft_weights)
    draft = std::make_unique<QuantizedModel>(*draft_weights, scheme,
                                             TpConfig{shards});
  ServingEngine engine(&model, draft.get(), cfg);
  std::vector<int> ids;
  for (size_t i = 0; i < w.prompts.size(); ++i) {
    RequestOptions opts = w.opts;
    opts.max_new_tokens = w.max_new[i];
    ids.push_back(engine.submit(w.prompts[i], opts, nullptr, nullptr));
  }
  RunOutcome out;
  out.stats = engine.run_to_completion();
  for (int id : ids) out.streams.push_back(engine.request(id).generated);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
  return out;
}

TEST(EngineWindow, StreamsBitwiseAcrossIsaThreadsAndShards) {
  EnvGuard guard;
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  Rng rng(1600);
  const StreamSetup w = windowed_workload(rng, 4);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  cfg.scheduler.prefill_chunk = 16;
  const QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  std::vector<cpu::Isa> isas = {cpu::Isa::kScalar};
  if (cpu::detected_isa() != cpu::Isa::kScalar)
    isas.push_back(cpu::detected_isa());
  set_num_threads(1);
  cpu::set_isa(cpu::Isa::kScalar);
  const RunOutcome base = run_windowed(weights, w, 1, cfg, scheme);
  EXPECT_EQ(base.stats.windowed_requests, 4);
  EXPECT_GT(base.stats.kv_recycled_pages, 0);
  for (const cpu::Isa isa : isas) {
    cpu::set_isa(isa);
    for (const int threads : {1, 8}) {
      set_num_threads(threads);
      for (const int shards : {1, 2}) {
        const RunOutcome run = run_windowed(weights, w, shards, cfg, scheme);
        EXPECT_EQ(base.streams, run.streams)
            << "isa=" << cpu::isa_name(isa) << " threads=" << threads
            << " shards=" << shards;
      }
    }
  }
}

TEST(EngineWindow, PreemptionChurnPreservesWindowedStreams) {
  // A tiny pool forces eviction + recompute-on-resume re-prefill of windowed
  // requests; per-row windows make the re-derived ring state, and thus the
  // streams, bitwise identical to the uncontended run.
  EnvGuard guard;
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  Rng rng(1601);
  const StreamSetup w = windowed_workload(rng, 3);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  cfg.scheduler.prefill_chunk = 16;
  QuantSchemeConfig roomy = QuantSchemeConfig::qserve_w4a8kv4_g128();
  const RunOutcome base = run_windowed(weights, w, 1, cfg, roomy);
  QuantSchemeConfig tight = roomy;
  // Enough for one windowed request's ring (sink 1 + window 2 + slack 1 + 1
  // boundary = 5 pages/layer) plus a little contention headroom.
  tight.kv_max_pages = 8;
  const RunOutcome churn = run_windowed(weights, w, 1, cfg, tight);
  EXPECT_GE(churn.stats.preemptions, 1);
  EXPECT_EQ(base.streams, churn.streams);
}

TEST(EngineWindow, FaultInjectionPreservesWindowedStreams) {
  EnvGuard guard;
  set_num_threads(1);
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  Rng rng(1602);
  const StreamSetup w = windowed_workload(rng, 3);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  cfg.scheduler.prefill_chunk = 16;
  const QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  const RunOutcome base = run_windowed(weights, w, 1, cfg, scheme);
  fault::set_site(fault::kKvAppend, 0.05, 21);
  const RunOutcome faulted = run_windowed(weights, w, 1, cfg, scheme);
  fault::clear();
  EXPECT_GE(faulted.stats.faulted_steps, 1);
  EXPECT_EQ(base.streams, faulted.streams);
}

TEST(EngineWindow, SpeculativeWindowedStreamsMatchBaseline) {
  // Greedy draft/verify over windowed requests: rollbacks truncate across
  // the ring, and the streams must still equal the non-speculative engine's.
  EnvGuard guard;
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  const ModelWeights draft = make_synthetic_weights(toy_config(1), [] {
    SyntheticOptions o;
    o.seed = 777;
    return o;
  }());
  Rng rng(1603);
  const StreamSetup w = windowed_workload(rng, 3);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  cfg.scheduler.prefill_chunk = 16;
  const QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  const RunOutcome base = run_windowed(weights, w, 1, cfg, scheme);
  EngineConfig spec_cfg = cfg;
  spec_cfg.speculative.lookahead_k = 3;
  const RunOutcome spec =
      run_windowed(weights, w, 1, spec_cfg, scheme, &draft);
  // Every rejected draft token is a truncate across the ring; acceptance is
  // incidental (the toy draft rarely agrees with the target).
  EXPECT_GT(spec.stats.proposed_tokens, 0);
  EXPECT_EQ(base.streams, spec.streams);
}

TEST(EngineWindow, WindowCoveringContextMatchesFullAttention) {
  EnvGuard guard;
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  const QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  std::vector<int> prompt(20, 9);
  EngineConfig cfg;
  auto run_one = [&](int64_t window, int64_t sink) {
    QuantizedModel model(weights, scheme);
    ServingEngine engine(&model, cfg);
    RequestOptions opts;
    opts.max_new_tokens = 24;
    opts.attention_window = window;
    opts.sink_tokens = sink;
    const int id = engine.submit(prompt, opts, nullptr, nullptr);
    engine.run_to_completion();
    return engine.request(id).generated;
  };
  const auto full = run_one(0, 0);
  // 20 + 24 = 44 context <= 16 + 64: never recycles, bitwise full attention.
  EXPECT_EQ(full, run_one(64, 16));
}

TEST(EngineWindow, InvalidOptionsRejectLoudly) {
  EnvGuard guard;
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  ServingEngine engine(&model, EngineConfig{});
  auto rejected = [&](RequestOptions opts) {
    const int id = engine.submit({1, 2, 3}, opts, nullptr, nullptr);
    return engine.request(id).finish_reason == FinishReason::kRejected;
  };
  RequestOptions neg;
  neg.attention_window = -16;
  EXPECT_TRUE(rejected(neg));
  RequestOptions unaligned;
  unaligned.attention_window = 24;  // not a multiple of the 16-token page
  EXPECT_TRUE(rejected(unaligned));
  RequestOptions sink_only;
  sink_only.sink_tokens = 16;  // sink without a window
  EXPECT_TRUE(rejected(sink_only));
  RequestOptions ok;
  ok.attention_window = 32;
  ok.sink_tokens = 16;
  ok.max_new_tokens = 4;
  const int id = engine.submit({1, 2, 3}, ok, nullptr, nullptr);
  engine.run_to_completion();
  EXPECT_EQ(engine.request(id).finish_reason, FinishReason::kLength);
  EXPECT_EQ(engine.stats().rejected, 3);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(EngineWindow, LongGenerationCompletesInSmallPoolWithFlatFootprint) {
  // The acceptance scenario at test scale: a generation whose full-attention
  // KV (608 tokens = 38 pages) could never fit the 10-page pool completes
  // under a 64-token window with a flat page footprint, while the same
  // request without a window dies mid-flight once its growth can no longer
  // be placed.
  EnvGuard guard;
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = 10;
  EngineConfig cfg;
  cfg.scheduler.prefill_chunk = 16;  // slack 16 -> ring cap 7 pages/layer
  const std::vector<int> prompt(8, 3);

  {
    QuantizedModel model(weights, scheme);
    ServingEngine engine(&model, cfg);
    RequestOptions full;
    full.max_new_tokens = 600;
    const int id = engine.submit(prompt, full, nullptr, nullptr);
    engine.run_to_completion();
    EXPECT_EQ(engine.request(id).finish_reason, FinishReason::kError);
    EXPECT_LT(engine.request(id).generated.size(), 600u);
    EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
  }

  QuantizedModel model(weights, scheme);
  ServingEngine engine(&model, cfg);
  RequestOptions opts;
  opts.max_new_tokens = 600;
  opts.attention_window = 64;
  opts.sink_tokens = 16;
  std::vector<int64_t> pages_at_token;
  const int id = engine.submit(
      prompt, opts,
      [&](const Request&, int) {
        pages_at_token.push_back(model.kv_cache().pages_in_use());
      },
      nullptr);
  const EngineStats stats = engine.run_to_completion();
  EXPECT_EQ(engine.request(id).finish_reason, FinishReason::kLength);
  EXPECT_EQ(engine.request(id).generated.size(), 600u);
  EXPECT_EQ(stats.preemptions, 0);
  EXPECT_GT(stats.kv_recycled_pages, 0);
  ASSERT_EQ(pages_at_token.size(), 600u);
  // Once the ring fills (well before token 200), the footprint never moves.
  for (size_t t = 200; t < pages_at_token.size(); ++t)
    ASSERT_EQ(pages_at_token[t], pages_at_token[199]) << t;
  EXPECT_LE(pages_at_token[199], 10);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(EngineWindow, ParallelSamplingSiblingsInheritWindow) {
  EnvGuard guard;
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.prefill_chunk = 16;
  ServingEngine engine(&model, cfg);
  RequestOptions opts;
  opts.max_new_tokens = 60;  // crosses sink + window = 48
  opts.attention_window = 32;
  opts.sink_tokens = 16;
  opts.n = 2;
  const std::vector<int> prompt(10, 4);
  const int id = engine.submit(prompt, opts, nullptr, nullptr);
  engine.run_to_completion();
  const Request& primary = engine.request(id);
  ASSERT_EQ(primary.sibling_ids.size(), 1u);
  const Request& sibling = engine.request(primary.sibling_ids[0]);
  EXPECT_EQ(sibling.attention_window, 32);
  EXPECT_EQ(sibling.sink_tokens, 16);
  EXPECT_EQ(sibling.window_page_cap, primary.window_page_cap);
  // Greedy siblings replay the primary's stream — through their own ring.
  EXPECT_EQ(primary.generated, sibling.generated);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
}

TEST(EngineWindow, PrefixCachingSharesOnlyPolicyIndependentPrefix) {
  // Windowed donors clamp their donation to the sink+window prefix (or the
  // sinks alone once recycling has begun), so later hits reuse only KV bytes
  // that are bitwise what full attention would hold — streams must equal the
  // cache-off run exactly.
  EnvGuard guard;
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  const std::vector<int> common(20, 7);
  auto run = [&](bool caching) {
    QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
    EngineConfig cfg;
    cfg.scheduler.max_batch = 1;  // serialize: donate, then hit, then hit
    cfg.scheduler.prefill_chunk = 16;
    cfg.prefix_caching = caching;
    ServingEngine engine(&model, cfg);
    RunOutcome out;
    std::vector<int> ids;
    for (int i = 0; i < 3; ++i) {
      std::vector<int> prompt = common;
      prompt.push_back(100 + i);
      RequestOptions opts;
      opts.max_new_tokens = 50;
      opts.attention_window = 32;
      opts.sink_tokens = 16;
      ids.push_back(engine.submit(prompt, opts, nullptr, nullptr));
    }
    out.stats = engine.run_to_completion();
    for (int id : ids) out.streams.push_back(engine.request(id).generated);
    engine.clear_prefix_cache();
    EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
    return out;
  };
  const RunOutcome cold = run(false);
  const RunOutcome cached = run(true);
  EXPECT_GE(cached.stats.prefix_hits, 1);
  EXPECT_EQ(cold.streams, cached.streams);
}

}  // namespace
}  // namespace qserve
