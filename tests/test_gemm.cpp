// GEMM kernel correctness: each quantized pipeline against its mathematical
// reference, the zero-point epilogue fusion identity (Eq. 12/13), and the
// streamed (compute-aware reordered + SWAR) kernel against the plain one.
#include "kernels/gemm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/weight_layout.h"
#include "quant/quantize.h"

namespace qserve {
namespace {

Tensor random_tensor(int64_t n, int64_t k, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  Tensor t({n, k});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.heavy_tailed(scale);
  return t;
}

TEST(GemmRef, MatchesManualDotProduct) {
  Tensor x({2, 3}), w({2, 3});
  for (int64_t i = 0; i < 6; ++i) {
    x[i] = float(i + 1);
    w[i] = float(6 - i);
  }
  const Tensor y = gemm_f32_ref(x, w);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 1 * 6 + 2 * 5 + 3 * 4);
  EXPECT_FLOAT_EQ(y.at2(1, 1), 4 * 3 + 5 * 2 + 6 * 1);
}

TEST(GemmI8, Int32AccumulationExact) {
  // Worst-case magnitude accumulation must not overflow int32 for k=4096:
  // 127*127*4096 < 2^31.
  I8Tensor x({1, 4096}), w({1, 4096});
  for (int64_t i = 0; i < 4096; ++i) {
    x[i] = 127;
    w[i] = 127;
  }
  const I32Tensor y = gemm_i8i8_i32(x, w);
  EXPECT_EQ(y[0], 127 * 127 * 4096);
}

TEST(GemmW8A8, CloseToFp32Reference) {
  const Tensor x = random_tensor(4, 128, 1);
  const Tensor w = random_tensor(16, 128, 2);
  const Tensor ref = gemm_f32_ref(x, w);
  const Tensor y = gemm_w8a8(quantize_acts_per_token(x),
                             quantize_w8_per_channel(w));
  // W8A8 per-channel+per-token is near-lossless.
  for (int64_t i = 0; i < y.numel(); ++i)
    EXPECT_NEAR(y[i], ref[i], 0.05f * std::abs(ref[i]) + 0.3f);
}

TEST(GemmW8A8, ExactlyEqualsIntegerEpilogueFormula) {
  const Tensor x = random_tensor(3, 64, 3);
  const Tensor w = random_tensor(8, 64, 4);
  const auto qx = quantize_acts_per_token(x);
  const auto qw = quantize_w8_per_channel(w);
  const Tensor y = gemm_w8a8(qx, qw);
  const I32Tensor acc = gemm_i8i8_i32(qx.q, qw.qw);
  for (int64_t t = 0; t < y.rows(); ++t)
    for (int64_t r = 0; r < y.cols(); ++r)
      EXPECT_EQ(y.at2(t, r),
                to_half_precision(float(acc.at2(t, r)) * qx.s[t] * qw.s[r]));
}

// --- W4A8 per-channel: epilogue zero-point fusion ---------------------------------

TEST(GemmW4A8PerChannel, EpilogueFusionMatchesInLoopSubtraction) {
  // Eq. 12: MAC'ing raw UINT4 codes then subtracting tX*(z*s) in the
  // epilogue equals dequantizing (q - z) inside the loop.
  const Tensor x = random_tensor(4, 96, 5);
  const Tensor w = random_tensor(12, 96, 6);
  const auto qx = quantize_acts_per_token(x);
  const auto qw = quantize_w4_per_channel(w);
  const Tensor fused = gemm_w4a8_per_channel(qx, qw);

  // In-loop variant: integer (q - z) MACs, epilogue outer-product scaling,
  // but using the *quantized* activation path for the zero-point term too.
  for (int64_t t = 0; t < fused.rows(); ++t) {
    for (int64_t r = 0; r < fused.cols(); ++r) {
      int32_t acc = 0;
      for (int64_t c = 0; c < 96; ++c)
        acc += int32_t(qx.q.at2(t, c)) *
               (int32_t(get_u4(qw.qw, r, c)) - int32_t(qw.z[r]));
      const float exact = float(acc) * qx.s[t] * qw.s[r];
      // The fused kernel replaces sum(QX*SX) with the unquantized token sum
      // tX (Eq. 13) — a deliberate approximation whose error is bounded by
      // the activation rounding (<= 0.5*sx per element) times z*s.
      EXPECT_NEAR(fused.at2(t, r), exact,
                  std::abs(qw.szw[r]) * 0.51f * qx.s[t] * 96.0f +
                      0.02f * std::abs(exact) + 0.2f);
    }
  }
}

TEST(GemmW4A8PerChannel, CloseToFp32Reference) {
  const Tensor x = random_tensor(4, 128, 7);
  const Tensor w = random_tensor(16, 128, 8, 0.2f);
  const Tensor ref = gemm_f32_ref(x, w);
  const Tensor y =
      gemm_w4a8_per_channel(quantize_acts_per_token(x),
                            quantize_w4_per_channel(w));
  double err = 0, mag = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    err += std::abs(y[i] - ref[i]);
    mag += std::abs(ref[i]);
  }
  EXPECT_LT(err / mag, 0.15);  // 4-bit weights: coarse but correlated
}

// --- W4A8 per-group: progressive dequant in main loop ------------------------------

TEST(GemmW4A8PerGroup, BitExactAgainstLevel1CodeGemm) {
  const Tensor x = random_tensor(5, 256, 9);
  const Tensor w = random_tensor(8, 256, 10);
  const auto qx = quantize_acts_per_token(x);
  const auto qw = quantize_progressive(w, {.group = 128});
  const Tensor y = gemm_w4a8_per_group(qx, qw);

  // Reference: dequantize level-2 -> level-1 int codes, int GEMM, epilogue.
  const I32Tensor codes = dequantize_level1_codes(qw);
  I8Tensor wi8({qw.n(), qw.k()});
  for (int64_t i = 0; i < codes.numel(); ++i) {
    ASSERT_GE(codes[i], -128);
    ASSERT_LE(codes[i], 127);
    wi8[i] = static_cast<int8_t>(codes[i]);
  }
  const I32Tensor acc = gemm_i8i8_i32(qx.q, wi8);
  for (int64_t t = 0; t < y.rows(); ++t)
    for (int64_t r = 0; r < y.cols(); ++r)
      EXPECT_EQ(y.at2(t, r), to_half_precision(float(acc.at2(t, r)) *
                                               qx.s[t] * qw.s0[r]));
}

TEST(GemmW4A8PerGroup, StreamedKernelBitExactToPlainKernel) {
  // The compute-aware reordered stream + SWAR RLP dequant must produce the
  // identical result — layout and register tricks change nothing numerically.
  const Tensor x = random_tensor(3, 128, 11);
  const Tensor w = random_tensor(64, 128, 12);
  const auto qx = quantize_acts_per_token(x);
  const auto qw = quantize_progressive(w, {.group = 128});
  const auto stream = reorder_w4_for_compute(qw.qw);
  const auto meta = reorder_group_meta(qw);
  const Tensor plain = gemm_w4a8_per_group(qx, qw);
  const Tensor streamed = gemm_w4a8_per_group_streamed(qx, qw, stream, meta);
  for (int64_t i = 0; i < plain.numel(); ++i)
    EXPECT_EQ(plain[i], streamed[i]) << i;
}

class GemmGroupSweep : public ::testing::TestWithParam<int> {};

TEST_P(GemmGroupSweep, PerGroupBeatsPerChannelAccuracy) {
  const int group = GetParam();
  const Tensor x = random_tensor(4, 512, 13);
  const Tensor w = random_tensor(16, 512, 14, 1.0f);
  const Tensor ref = gemm_f32_ref(x, w);
  const Tensor yg = gemm_w4a8_per_group(
      quantize_acts_per_token(x),
      quantize_progressive(w, {.group = group}));
  const Tensor yc = gemm_w4a8_per_channel(quantize_acts_per_token(x),
                                          quantize_w4_per_channel(w));
  EXPECT_LT(mse(yg, ref), mse(yc, ref));
}

INSTANTIATE_TEST_SUITE_P(Groups, GemmGroupSweep,
                         ::testing::Values(32, 64, 128, 256));

// --- W4A4 Atom path -----------------------------------------------------------------

TEST(GemmW4A4, MatchesDequantizedReferenceClosely) {
  const Tensor x = random_tensor(4, 256, 15, 0.5f);
  const Tensor w = random_tensor(8, 256, 16, 0.3f);
  const auto qx = quantize_acts_per_token_int4(x);
  const auto qw = quantize_w4a4_per_group(w, 128);
  const Tensor y = gemm_w4a4_atom(qx, qw);
  const Tensor ref = gemm_f32_ref(dequantize(qx), dequantize(qw));
  for (int64_t i = 0; i < y.numel(); ++i)
    EXPECT_NEAR(y[i], ref[i], 0.01f * std::abs(ref[i]) + 0.05f);
}

TEST(GemmW4A4, LessAccurateThanW4A8) {
  // The headline accuracy claim at kernel level: INT4 activations hurt.
  const Tensor x = random_tensor(8, 512, 17);
  const Tensor w = random_tensor(16, 512, 18);
  const Tensor ref = gemm_f32_ref(x, w);
  const double e44 = mse(gemm_w4a4_atom(quantize_acts_per_token_int4(x),
                                        quantize_w4a4_per_group(w, 128)),
                         ref);
  const double e48 = mse(gemm_w4a8_per_group(
                             quantize_acts_per_token(x),
                             quantize_progressive(w, {.group = 128})),
                         ref);
  EXPECT_LT(e48, e44);
}

// --- W4A16 --------------------------------------------------------------------------

TEST(GemmW4A16, NearLosslessVsDequantizedWeights) {
  const Tensor x = random_tensor(4, 256, 19);
  const Tensor w = random_tensor(8, 256, 20);
  const auto qw = quantize_w4a16(w, 128);
  const Tensor y = gemm_w4a16(x, qw);
  const Tensor ref = gemm_f32_ref(x, dequantize(qw));
  for (int64_t i = 0; i < y.numel(); ++i)
    EXPECT_NEAR(y[i], ref[i], 0.02f * std::abs(ref[i]) + 0.1f);
}

}  // namespace
}  // namespace qserve
