// Register-level-parallelism SWAR tests: Figure 13 unpack, vadd4 semantics,
// and the Figure 14 sub-before-mul vs sub-after-mul overflow demonstration.
#include "kernels/rlp.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qserve {
namespace {

TEST(Rlp, InterleaveUnpackRoundTrip) {
  const uint8_t a[4] = {0x0, 0x7, 0xF, 0x3};
  const uint8_t b[4] = {0x8, 0x1, 0xE, 0x5};
  const uint32_t packed = interleave_u4x8(a, b);
  const UnpackedU4x8 u = unpack_u4x8(packed);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(lane_u8(u.low, i), a[i]);
    EXPECT_EQ(lane_u8(u.high, i), b[i]);
  }
}

TEST(Rlp, UnpackIsThreeLogicalOps) {
  // Structural property of Fig. 13: low = packed & mask, high = (packed>>4)
  // & mask. Verify against all single-nibble patterns.
  for (int pos = 0; pos < 8; ++pos) {
    const uint32_t packed = 0xFu << (4 * pos);
    const UnpackedU4x8 u = unpack_u4x8(packed);
    if (pos % 2 == 0) {
      EXPECT_EQ(lane_u8(u.low, pos / 2), 0xF);
      EXPECT_EQ(u.high, 0u);
    } else {
      EXPECT_EQ(lane_u8(u.high, pos / 2), 0xF);
      EXPECT_EQ(u.low, 0u);
    }
  }
}

TEST(Rlp, Vadd4MatchesPerLaneAddition) {
  Rng rng(7);
  for (int trial = 0; trial < 1000; ++trial) {
    uint32_t a = 0, b = 0;
    int8_t ea[4], eb[4];
    for (int l = 0; l < 4; ++l) {
      ea[l] = static_cast<int8_t>(rng.uniform_int(-128, 127));
      eb[l] = static_cast<int8_t>(rng.uniform_int(-128, 127));
      a |= uint32_t(uint8_t(ea[l])) << (8 * l);
      b |= uint32_t(uint8_t(eb[l])) << (8 * l);
    }
    const uint32_t sum = vadd4(a, b);
    for (int l = 0; l < 4; ++l) {
      // Hardware vadd4 wraps per lane (mod-256); no cross-lane carries.
      const uint8_t expect =
          static_cast<uint8_t>(uint8_t(ea[l]) + uint8_t(eb[l]));
      EXPECT_EQ(lane_u8(sum, l), expect);
    }
  }
}

TEST(Rlp, Vadd4DoesNotPropagateCarry) {
  // 0xFF + 0x01 in lane 0 must NOT carry into lane 1.
  const uint32_t sum = vadd4(0x000000FFu, 0x00000001u);
  EXPECT_EQ(sum, 0x00000000u);
}

TEST(Rlp, Broadcast4) {
  EXPECT_EQ(broadcast4(0xAB), 0xABABABABu);
}

// --- Figure 14: computation order ------------------------------------------------

TEST(Rlp, SubAfterMulMatchesScalarWhenProtected) {
  // With QoQ's protective range, (q-z)*s1 in [-128,127] and q*s1 <= 255, so
  // the packed path must equal exact scalar arithmetic.
  Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    const int s1 = rng.uniform_int(1, 16);
    // Pick z and codes so that products stay in the guaranteed ranges.
    const int z = rng.uniform_int(0, std::min(15, 127 / s1));
    uint8_t q[4];
    uint32_t lanes = 0;
    for (int l = 0; l < 4; ++l) {
      // code such that (q-z)*s1 in [-128, 127] and q*s1 <= 255
      int lo = std::max(0, z - 128 / s1);
      int hi = std::min({15, z + 127 / s1, 255 / s1});
      q[l] = static_cast<uint8_t>(rng.uniform_int(lo, hi));
      lanes |= uint32_t(q[l]) << (8 * l);
    }
    const uint32_t out =
        dequant4_sub_after_mul(lanes, static_cast<uint8_t>(s1),
                               static_cast<uint8_t>(z));
    for (int l = 0; l < 4; ++l) {
      const int expect = (int(q[l]) - z) * s1;
      EXPECT_EQ(int(lane_s8(out, l)), expect)
          << "q=" << int(q[l]) << " z=" << z << " s1=" << s1;
    }
  }
}

TEST(Rlp, Figure14aSubBeforeMulOverflows) {
  // The paper's example (Fig. 14a): codes {7, 0, 3, 15}, z = 8, s = 2.
  // Sub-before-mul computes lanes {-1,-8,-5,7} then multiplies the packed
  // register — the 2's-complement bytes are treated as unsigned, producing
  // garbage, while sub-after-mul yields the correct {-2,-16,-10,14}.
  const uint8_t q[4] = {7, 0, 3, 15};
  uint32_t lanes = 0;
  for (int l = 0; l < 4; ++l) lanes |= uint32_t(q[l]) << (8 * l);

  const uint32_t good = dequant4_sub_after_mul(lanes, 2, 8);
  const int expect[4] = {-2, -16, -10, 14};
  for (int l = 0; l < 4; ++l) EXPECT_EQ(int(lane_s8(good, l)), expect[l]);

  const uint32_t bad = dequant4_sub_before_mul(lanes, 2, 8);
  int mismatches = 0;
  for (int l = 0; l < 4; ++l)
    if (int(lane_s8(bad, l)) != expect[l]) ++mismatches;
  EXPECT_GT(mismatches, 0) << "sub-before-mul should corrupt lanes";
}

TEST(Rlp, SubBeforeMulCorrectOnlyWithoutNegativeLanes) {
  // When q >= z for every lane (no negative intermediate), even
  // sub-before-mul happens to work — showing the failure is specifically
  // about signed lanes entering the unsigned multiply.
  const uint8_t q[4] = {9, 10, 12, 15};
  uint32_t lanes = 0;
  for (int l = 0; l < 4; ++l) lanes |= uint32_t(q[l]) << (8 * l);
  const uint32_t out = dequant4_sub_before_mul(lanes, 2, 8);
  for (int l = 0; l < 4; ++l)
    EXPECT_EQ(int(lane_s8(out, l)), (int(q[l]) - 8) * 2);
}

TEST(Rlp, MulOverflowCorruptsNeighbourLane) {
  // One lane product exceeding 255 must visibly corrupt the lane above it —
  // the exact hazard the protective range eliminates.
  const uint32_t lanes = 0x00000040u;  // lane0 = 64
  const uint32_t out = mul4_u8_scalar(lanes, 8);  // 64*8 = 512 = 0x200
  EXPECT_EQ(lane_u8(out, 0), 0x00);
  EXPECT_EQ(lane_u8(out, 1), 0x02);  // carry leaked into lane 1
}

}  // namespace
}  // namespace qserve
