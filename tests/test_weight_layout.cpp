// Compute-aware weight reordering (§5.2.1): bijection, thread-mapping
// consistency, and metadata alignment.
#include "kernels/weight_layout.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "quant/quantize.h"

namespace qserve {
namespace {

U8Tensor random_codes(int64_t n, int64_t k, uint64_t seed) {
  Rng rng(seed);
  U8Tensor codes({n, k});
  for (int64_t i = 0; i < codes.numel(); ++i)
    codes[i] = static_cast<uint8_t>(rng.uniform_int(0, 15));
  return codes;
}

TEST(WeightLayout, ThreadMappingCoversTileExactlyOnce) {
  // Every (out, in) pair of a 32x32 tile must be owned by exactly one
  // (thread, word, lane) triple.
  std::set<std::pair<int, int>> covered;
  for (int t = 0; t < kThreadsPerTile; ++t) {
    for (int j = 0; j < kWordsPerThread; ++j) {
      const int out = tile_out_channel(t, j);
      for (int l = 0; l < 4; ++l) {
        covered.insert({out, tile_in_channel_a(t, l)});
        covered.insert({out, tile_in_channel_b(t, l)});
      }
    }
  }
  EXPECT_EQ(covered.size(), size_t(kTileN * kTileK));
}

TEST(WeightLayout, MatchesPaperThreadExample) {
  // Fig. 12: thread 0 uses input channels 0-3 and 16-19 for output channels
  // 0, 8, 16, 24.
  EXPECT_EQ(tile_out_channel(0, 0), 0);
  EXPECT_EQ(tile_out_channel(0, 1), 8);
  EXPECT_EQ(tile_out_channel(0, 2), 16);
  EXPECT_EQ(tile_out_channel(0, 3), 24);
  EXPECT_EQ(tile_in_channel_a(0, 0), 0);
  EXPECT_EQ(tile_in_channel_a(0, 3), 3);
  EXPECT_EQ(tile_in_channel_b(0, 0), 16);
  EXPECT_EQ(tile_in_channel_b(0, 3), 19);
}

TEST(WeightLayout, ReorderRoundTrip) {
  const U8Tensor codes = random_codes(64, 96, 1);
  const PackedU4 packed = pack_u4(codes);
  const ReorderedW4 stream = reorder_w4_for_compute(packed);
  const U8Tensor back = unreorder_w4(stream);
  for (int64_t i = 0; i < codes.numel(); ++i)
    EXPECT_EQ(back[i], codes[i]) << i;
}

TEST(WeightLayout, StreamSizeIs128BitsPerThread) {
  const PackedU4 packed = pack_u4(random_codes(32, 64, 2));
  const ReorderedW4 stream = reorder_w4_for_compute(packed);
  // 1 n-tile x 2 k-tiles x 32 threads x 4 words.
  EXPECT_EQ(stream.words.size(), size_t(1 * 2 * 32 * 4));
}

TEST(WeightLayout, RejectsUnalignedShapes) {
  const PackedU4 packed = pack_u4(random_codes(30, 64, 3));
  EXPECT_THROW(reorder_w4_for_compute(packed), CheckError);
}

TEST(WeightLayout, GroupMetaAlignsWithStream) {
  Rng rng(4);
  Tensor w({32, 256});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  const auto qw = quantize_progressive(w, {.group = 128});
  const auto stream = reorder_w4_for_compute(qw.qw);
  const auto meta = reorder_group_meta(qw);
  ASSERT_EQ(meta.s1.size(), stream.words.size());
  // Spot-check: fragment (nt=0, kt=1, thread=5, word=2) must carry the
  // scale of (row = tile_out_channel(5,2), group = 32*1/128 = 0).
  const int64_t idx = stream.index(0, 1, 5, 2);
  const int64_t row = tile_out_channel(5, 2);
  EXPECT_EQ(meta.s1[size_t(idx)], qw.s1.at2(row, 0));
  EXPECT_EQ(meta.z[size_t(idx)], qw.z.at2(row, 0));
}

TEST(WeightLayout, GroupMetaRequiresTileAlignedGroups) {
  Rng rng(5);
  Tensor w({32, 64});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  auto qw = quantize_progressive(w, {.group = 16});  // group < tile
  EXPECT_THROW(reorder_group_meta(qw), CheckError);
}

}  // namespace
}  // namespace qserve
