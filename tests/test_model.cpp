// Reference model + QoQ transform pipeline: numerical-equivalence properties
// of every offline transform, and synthetic-pathology sanity.
#include <gtest/gtest.h>

#include "eval/harness.h"
#include "model/qoq_quantizer.h"
#include "model/reference_model.h"
#include "qoq/smooth_attention.h"

namespace qserve {
namespace {

struct Fixture {
  ModelWeights weights;
  ReferenceModel ref;
  std::vector<int> tokens;
  CalibrationData calib;
  Tensor ref_logits;

  Fixture()
      : weights(make_synthetic_weights(toy_config(2))), ref(&weights) {
    for (int i = 0; i < 24; ++i) tokens.push_back((7 * i + 3) % 512);
    ref_logits = ref.forward_calibrate(tokens, &calib);
  }
};

const Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

TEST(ReferenceModel, LogitsShapeAndFiniteness) {
  const auto& f = fixture();
  EXPECT_EQ(f.ref_logits.rows(), 24);
  EXPECT_EQ(f.ref_logits.cols(), 512);
  for (int64_t i = 0; i < f.ref_logits.numel(); ++i)
    ASSERT_TRUE(std::isfinite(f.ref_logits[i]));
}

TEST(ReferenceModel, CausalPrefixConsistency) {
  // Logits of a prefix must equal the corresponding rows of the full run.
  const auto& f = fixture();
  std::vector<int> prefix(f.tokens.begin(), f.tokens.begin() + 10);
  const Tensor lp = f.ref.forward(prefix);
  for (int64_t t = 0; t < 10; ++t)
    for (int64_t v = 0; v < 64; ++v)
      EXPECT_NEAR(lp.at2(t, v), f.ref_logits.at2(t, v),
                  1e-3f * std::abs(f.ref_logits.at2(t, v)) + 1e-3f);
}

TEST(ReferenceModel, CalibrationShapes) {
  const auto& f = fixture();
  ASSERT_EQ(f.calib.attn_input.size(), 2u);
  EXPECT_EQ(f.calib.attn_input[0].cols(), 256);
  EXPECT_EQ(f.calib.post_rope_keys[0].cols(), 128);  // 2 kv heads x 64
  EXPECT_EQ(f.calib.attn_out[0].cols(), 256);
  EXPECT_EQ(f.calib.ffn_act[0].cols(), 512);
}

TEST(SyntheticWeights, KeysHaveFixedOutlierChannels) {
  // The Fig. 7 pathology must be present in calibration keys...
  const auto& f = fixture();
  EXPECT_GT(channel_outlier_ratio(f.calib.post_rope_keys[0]), 3.0f);
}

TEST(SyntheticWeights, ValuesHaveNoOutlierChannels) {
  // ...and absent from Values, as the paper observes.
  const auto& f = fixture();
  EXPECT_LT(channel_outlier_ratio(f.calib.values[0]),
            channel_outlier_ratio(f.calib.post_rope_keys[0]));
}

TEST(SyntheticWeights, ResidualStreamHasOutlierChannels) {
  const auto& f = fixture();
  EXPECT_GT(channel_outlier_ratio(f.calib.attn_input[0]), 3.0f);
}

TEST(SyntheticWeights, GenerationIsDeterministicPerSeed) {
  const auto& f = fixture();
  const auto a = f.ref.generate({1, 2, 3}, 5, 1.0f, 99);
  const auto b = f.ref.generate({1, 2, 3}, 5, 1.0f, 99);
  EXPECT_EQ(a, b);
}

// --- transform equivalence in FP32 ------------------------------------------------

double logits_rel_err(const Tensor& a, const Tensor& b) {
  double num = 0, den = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    num += std::abs(double(a[i]) - b[i]);
    den += std::abs(double(b[i]));
  }
  return num / den;
}

class TransformEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, QoQOptions>> {};

TEST_P(TransformEquivalence, Fp32ForwardUnchanged) {
  const auto& f = fixture();
  const QoQOptions opt = std::get<1>(GetParam());
  const ModelWeights transformed = qoq_transform(f.weights, f.calib, opt);
  const ReferenceModel t_ref(&transformed);
  const Tensor logits = t_ref.forward(f.tokens);
  EXPECT_LT(logits_rel_err(logits, f.ref_logits), 2e-3)
      << std::get<0>(GetParam());
}

QoQOptions only(void (*set)(QoQOptions&)) {
  QoQOptions o = rtn_options();
  set(o);
  return o;
}

INSTANTIATE_TEST_SUITE_P(
    Transforms, TransformEquivalence,
    ::testing::Values(
        std::make_tuple("fold_norms",
                        only([](QoQOptions& o) { o.fold_norms = true; })),
        std::make_tuple("rotation", only([](QoQOptions& o) {
                          o.fold_norms = true;
                          o.rotate_inputs = true;
                        })),
        std::make_tuple("smooth_attention", only([](QoQOptions& o) {
                          o.smooth_attention = true;
                        })),
        std::make_tuple("smooth_outputs", only([](QoQOptions& o) {
                          o.smooth_outputs = true;
                        })),
        std::make_tuple("reorder", only([](QoQOptions& o) {
                          o.reorder_channels = true;
                        })),
        std::make_tuple("all_lossless", only([](QoQOptions& o) {
                          o.fold_norms = true;
                          o.rotate_inputs = true;
                          o.smooth_attention = true;
                          o.smooth_outputs = true;
                          o.reorder_channels = true;
                        }))));

TEST(Transforms, RotationSuppressesInputOutliers) {
  const auto& f = fixture();
  QoQOptions opt = rtn_options();
  opt.fold_norms = true;
  opt.rotate_inputs = true;
  const ModelWeights transformed = qoq_transform(f.weights, f.calib, opt);
  const ReferenceModel t_ref(&transformed);
  CalibrationData t_calib;
  t_ref.forward_calibrate(f.tokens, &t_calib);
  EXPECT_LT(channel_outlier_ratio(t_calib.attn_input[0]),
            channel_outlier_ratio(f.calib.attn_input[0]) / 1.4f);
}

TEST(Transforms, SmoothAttentionSuppressesKeyOutliers) {
  const auto& f = fixture();
  QoQOptions opt = rtn_options();
  opt.smooth_attention = true;
  const ModelWeights transformed = qoq_transform(f.weights, f.calib, opt);
  const ReferenceModel t_ref(&transformed);
  CalibrationData t_calib;
  t_ref.forward_calibrate(f.tokens, &t_calib);
  EXPECT_LT(channel_outlier_ratio(t_calib.post_rope_keys[0]),
            channel_outlier_ratio(f.calib.post_rope_keys[0]) / 1.5f);
}

TEST(Transforms, ClipChangesWeightsButKeepsOutputClose) {
  const auto& f = fixture();
  QoQOptions opt = rtn_options();
  opt.weight_clip = true;
  opt.clip_steps = 4;
  const ModelWeights transformed = qoq_transform(f.weights, f.calib, opt);
  const ReferenceModel t_ref(&transformed);
  const Tensor logits = t_ref.forward(f.tokens);
  // Clipping is lossy in FP32 but must remain a small perturbation.
  EXPECT_LT(logits_rel_err(logits, f.ref_logits), 0.2);
}

}  // namespace
}  // namespace qserve
