// Fused decode attention over quantized pages: must be bit-identical to the
// gather-then-attend reference at every KV precision and GQA configuration.
#include "kvcache/fused_attention.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qserve {
namespace {

struct FusedFixture {
  KvCacheConfig cache_cfg;
  AttentionConfig attn_cfg;
  PagedKvCache cache;
  int seq;
  std::vector<float> q;

  FusedFixture(KvPrecision p, int n_heads, int n_kv_heads, int tokens,
        bool fp16_accum, uint64_t seed)
      : cache_cfg{n_kv_heads, 32, 8, p, false, 1.0f, 1.0f, 1024},
        attn_cfg{n_heads, n_kv_heads, 32, fp16_accum},
        cache(cache_cfg),
        seq(cache.alloc_sequence()) {
    Rng rng(seed);
    const int span = n_kv_heads * 32;
    std::vector<float> k(static_cast<size_t>(span)),
        v(static_cast<size_t>(span));
    for (int t = 0; t < tokens; ++t) {
      for (auto& x : k) x = rng.normal();
      for (auto& x : v) x = rng.normal();
      k[0] = 9.0f;  // persistent outlier channel, like real Keys
      cache.append(seq, k.data(), v.data());
    }
    q.resize(static_cast<size_t>(n_heads) * 32);
    for (auto& x : q) x = rng.normal();
  }

  std::vector<float> fused() const {
    std::vector<float> out(q.size());
    fused_decode_attention(cache, seq, q.data(), attn_cfg, out.data());
    return out;
  }

  std::vector<float> reference() const {
    Tensor k, v;
    cache.gather(seq, k, v);
    std::vector<float> out(q.size());
    attention_decode_token(q.data(), k, v, attn_cfg, out.data());
    return out;
  }
};

class FusedAttentionParity
    : public ::testing::TestWithParam<std::tuple<KvPrecision, int, int>> {};

TEST_P(FusedAttentionParity, BitIdenticalToGatherPath) {
  const auto [precision, n_heads, n_kv_heads] = GetParam();
  for (const bool fp16 : {false, true}) {
    FusedFixture s(precision, n_heads, n_kv_heads, 37, fp16, 11);
    const auto a = s.fused();
    const auto b = s.reference();
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FusedAttentionParity,
    ::testing::Values(std::make_tuple(KvPrecision::kFp16, 4, 4),
                      std::make_tuple(KvPrecision::kInt8, 4, 4),
                      std::make_tuple(KvPrecision::kInt4, 4, 4),
                      std::make_tuple(KvPrecision::kInt4, 8, 2),
                      std::make_tuple(KvPrecision::kInt8, 6, 3)));

TEST(FusedAttention, SpansMultiplePages) {
  // 37 tokens at page size 8 -> 5 pages; fused walk must cross boundaries.
  FusedFixture s(KvPrecision::kInt4, 4, 2, 37, false, 3);
  EXPECT_EQ(s.cache.pages_in_use(), 5);
  const auto a = s.fused();
  const auto b = s.reference();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(FusedAttention, ReadKvMatchesGatherEntries) {
  FusedFixture s(KvPrecision::kInt4, 4, 2, 19, false, 5);
  Tensor k, v;
  s.cache.gather(s.seq, k, v);
  std::vector<float> buf(32);
  for (int64_t t = 0; t < 19; ++t) {
    for (int h = 0; h < 2; ++h) {
      s.cache.read_k(s.seq, t, h, buf.data());
      for (int d = 0; d < 32; ++d)
        EXPECT_EQ(buf[size_t(d)], k.at2(t, h * 32 + d));
      s.cache.read_v(s.seq, t, h, buf.data());
      for (int d = 0; d < 32; ++d)
        EXPECT_EQ(buf[size_t(d)], v.at2(t, h * 32 + d));
    }
  }
}

TEST(FusedAttention, RejectsEmptySequence) {
  KvCacheConfig cfg{2, 32, 8, KvPrecision::kInt4, false, 1.0f, 1.0f, 16};
  PagedKvCache cache(cfg);
  const int seq = cache.alloc_sequence();
  AttentionConfig acfg{2, 2, 32, false};
  std::vector<float> q(64), out(64);
  EXPECT_THROW(fused_decode_attention(cache, seq, q.data(), acfg, out.data()),
               CheckError);
}

TEST(FusedAttention, RejectsMismatchedHeadDim) {
  FusedFixture s(KvPrecision::kInt4, 4, 2, 5, false, 7);
  AttentionConfig bad = s.attn_cfg;
  bad.head_dim = 64;
  std::vector<float> out(256);
  EXPECT_THROW(
      fused_decode_attention(s.cache, s.seq, s.q.data(), bad, out.data()),
      CheckError);
}

TEST(FusedAttention, ReadRejectsOutOfRangeToken) {
  FusedFixture s(KvPrecision::kInt4, 4, 2, 5, false, 9);
  std::vector<float> buf(32);
  EXPECT_THROW(s.cache.read_k(s.seq, 5, 0, buf.data()), CheckError);
  EXPECT_THROW(s.cache.read_k(s.seq, -1, 0, buf.data()), CheckError);
  EXPECT_THROW(s.cache.read_k(s.seq, 0, 2, buf.data()), CheckError);
}

}  // namespace
}  // namespace qserve
