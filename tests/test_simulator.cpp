// Performance-model tests: roofline turning points (§3.1), GEMM main-loop
// overhead ordering (Fig. 5/18), attention roofline behaviour (Table 1,
// §5.3) and end-to-end serving estimates (Table 4 shape).
#include <gtest/gtest.h>

#include "simulator/roofline.h"
#include "simulator/serving_model.h"

namespace qserve {
namespace {

using namespace qserve::sim;

// --- device + roofline ----------------------------------------------------------

TEST(Roofline, A100CrossoverNearM78) {
  // §3.1: W4A16 has higher attainable throughput than W8A8 below m ≈ 78 and
  // lower above — the crossover where W8A8's bigger roof wins.
  const DeviceSpec dev = a100_80g();
  const auto curves = gemm_roofline_curves(dev);
  const auto& w4a16 = curves[2];
  const auto& w8a8 = curves[1];
  double crossover = 0;
  for (double i = 1; i <= 192; i += 0.5) {
    if (attainable_tops(dev, w8a8, i) > attainable_tops(dev, w4a16, i)) {
      crossover = i;
      break;
    }
  }
  EXPECT_NEAR(crossover, 78, 5);
  // W8A8 turns compute-bound at ~153; W4A8 saturates its 624-TOPS roof at
  // ~76 — half of W8A8, which is why it dominates at every batch (Fig. 3).
  EXPECT_NEAR(turning_point(dev, w8a8), 153, 8);
  EXPECT_NEAR(turning_point(dev, curves[3]), 76.5, 5);
}

TEST(Roofline, W4A8DominatesW4A16AndW8A8) {
  // Fig. 3's headline: the W4A8 roofline is >= both at every intensity.
  const DeviceSpec dev = a100_80g();
  const auto curves = gemm_roofline_curves(dev);
  for (double intensity = 1; intensity <= 192; intensity += 1) {
    const double w4a16 = attainable_tops(dev, curves[2], intensity);
    const double w8a8 = attainable_tops(dev, curves[1], intensity);
    const double w4a8 = attainable_tops(dev, curves[3], intensity);
    EXPECT_GE(w4a8 + 1e-9, w4a16) << intensity;
    EXPECT_GE(w4a8 + 1e-9, w8a8) << intensity;
  }
}

TEST(Roofline, KvQuantizationRaisesAttentionRoof) {
  // At intensity 1 (decode attention), KV4 doubles KV8's attainable TOPS.
  const DeviceSpec dev = a100_80g();
  const auto curves = attention_roofline_curves(dev);
  const double fp16 = attainable_tops(dev, curves[0], 1.0);
  const double int8 = attainable_tops(dev, curves[1], 1.0);
  const double int4 = attainable_tops(dev, curves[2], 1.0);
  EXPECT_NEAR(int8 / fp16, 2.0, 0.01);
  EXPECT_NEAR(int4 / int8, 2.0, 0.01);
}

TEST(Device, CudaTurningPointIs9point8OpsPerByte) {
  EXPECT_NEAR(a100_80g().cuda_turning_point(false), 9.56, 0.5);  // §5.3: ~9.8
}

// --- GEMM cost model -------------------------------------------------------------

TEST(GemmModel, W8A8HasNoMainLoopOverhead) {
  const GemmShape s{.m = 64, .n = 4096, .k = 4096};
  const auto c = gemm_cost(a100_80g(), GemmPipeline::kW8A8, s);
  EXPECT_EQ(c.cuda_core_seconds, 0.0);
}

TEST(GemmModel, DequantOverheadOrdering) {
  // Fig. 18: Atom-W4A4 overhead (up to 90%) >> W4A16 >> QServe-W4A8.
  const DeviceSpec dev = a100_80g();
  const GemmShape s{.m = 64, .n = 4096, .k = 4096};
  const double atom = gemm_cost(dev, GemmPipeline::kW4A4Atom, s).dequant_overhead();
  const double w4a16 = gemm_cost(dev, GemmPipeline::kW4A16, s).dequant_overhead();
  const double qserve =
      gemm_cost(dev, GemmPipeline::kW4A8PerGroup, s).dequant_overhead();
  EXPECT_GT(atom, 0.5);
  EXPECT_GT(w4a16, qserve * 0.9);
  EXPECT_LT(qserve, 0.45);
}

TEST(GemmModel, QServeFasterThanW8A8AtSmallBatch) {
  // Memory-bound small-m GEMM: 4-bit weights halve the traffic (§4.1's
  // claimed 1.5x over W8A8 for per-group W4A8).
  const DeviceSpec dev = a100_80g();
  const GemmShape s{.m = 16, .n = 4096, .k = 4096};
  const double w8 = gemm_cost(dev, GemmPipeline::kW8A8, s).seconds;
  const double w4 = gemm_cost(dev, GemmPipeline::kW4A8PerGroup, s).seconds;
  EXPECT_GT(w8 / w4, 1.3);
  EXPECT_LT(w8 / w4, 2.2);
}

TEST(GemmModel, DgqSlowerThanW8A8DespiteFourBitWeights) {
  // §4.1: DGQ's separate dequant kernel makes its end-to-end W4A8 GEMM
  // slower than cuBLAS W8A8.
  const DeviceSpec dev = a100_80g();
  const GemmShape s{.m = 16, .n = 4096, .k = 4096};
  const double w8 = gemm_cost(dev, GemmPipeline::kW8A8, s).seconds;
  const double dgq = gemm_cost(dev, GemmPipeline::kW4A8DGQ, s).seconds;
  EXPECT_GT(dgq, w8);
}

TEST(GemmModel, AtomSlowerThanW8A8DespiteInt4TensorCores) {
  // §3.2's paradox at batch 64.
  const DeviceSpec dev = a100_80g();
  const GemmShape s{.m = 64, .n = 4096, .k = 4096};
  EXPECT_GT(gemm_cost(dev, GemmPipeline::kW4A4Atom, s).seconds,
            gemm_cost(dev, GemmPipeline::kW8A8, s).seconds);
}

TEST(GemmModel, StridedAccessCostsMore) {
  const DeviceSpec dev = a100_80g();
  GemmShape s{.m = 16, .n = 4096, .k = 4096};
  const double reordered =
      gemm_cost(dev, GemmPipeline::kW4A8PerGroup, s).seconds;
  s.strided_weight_access = true;
  const double strided = gemm_cost(dev, GemmPipeline::kW4A8PerGroup, s).seconds;
  EXPECT_GT(strided, reordered * 1.2);
}

TEST(GemmModel, CrossoverNearM78OnA100) {
  // W4A16 beats W8A8 below m≈78 and loses above (§3.1).
  const DeviceSpec dev = a100_80g();
  GemmShape s{.m = 32, .n = 8192, .k = 8192};
  EXPECT_LT(gemm_cost(dev, GemmPipeline::kW4A16, s).seconds,
            gemm_cost(dev, GemmPipeline::kW8A8, s).seconds);
  s.m = 160;
  EXPECT_GT(gemm_cost(dev, GemmPipeline::kW4A16, s).seconds,
            gemm_cost(dev, GemmPipeline::kW8A8, s).seconds);
}

// --- attention cost model -----------------------------------------------------------

TEST(AttentionModel, NaiveKv4SlowerThanKv8OnA100) {
  // Table 1's surprise: the naive KV4 kernel is ~1.15x slower than KV8 on
  // A100 because dequant pushes it compute-bound.
  const DeviceSpec dev = a100_80g();
  AttentionShape shape;
  shape.seq_len = 1024;
  const auto kv8 =
      attention_decode_cost(dev, AttentionKernelConfig::trt_kv8(), shape);
  const auto naive =
      attention_decode_cost(dev, AttentionKernelConfig::naive_kv4(), shape);
  EXPECT_GT(naive.seconds, kv8.seconds);
  EXPECT_TRUE(naive.compute_bound);
  EXPECT_FALSE(kv8.compute_bound);
}

TEST(AttentionModel, QServeKv4FasterThanKv8OnA100) {
  // §5.3: ~1.5x after FP16 arithmetic + bit tricks + prefetch.
  const DeviceSpec dev = a100_80g();
  AttentionShape shape;
  shape.seq_len = 1024;
  const auto kv8 =
      attention_decode_cost(dev, AttentionKernelConfig::trt_kv8(), shape);
  const auto ours =
      attention_decode_cost(dev, AttentionKernelConfig::qserve_kv4(), shape);
  const double speedup = kv8.seconds / ours.seconds;
  EXPECT_GT(speedup, 1.25);
  EXPECT_LT(speedup, 2.1);
  EXPECT_FALSE(ours.compute_bound);
}

TEST(AttentionModel, NaiveKv4FasterThanKv8OnL40S) {
  // Table 1 note: the naive swap is already 1.7x faster on L40S — its CUDA
  // cores are strong relative to bandwidth.
  const DeviceSpec dev = l40s_48g();
  AttentionShape shape;
  shape.seq_len = 1024;
  const auto kv8 =
      attention_decode_cost(dev, AttentionKernelConfig::trt_kv8(), shape);
  const auto naive =
      attention_decode_cost(dev, AttentionKernelConfig::naive_kv4(), shape);
  EXPECT_LT(naive.seconds, kv8.seconds);
}

TEST(AttentionModel, OptimizationLadderMonotone) {
  // Each §5.3 optimization must not hurt (breakdown in §6.4).
  const DeviceSpec dev = a100_80g();
  AttentionShape shape;
  shape.seq_len = 1024;
  AttentionKernelConfig cfg = AttentionKernelConfig::naive_kv4();
  double prev =
      attention_decode_cost(dev, cfg, shape).seconds;
  cfg.bit_trick_dequant = true;
  double t = attention_decode_cost(dev, cfg, shape).seconds;
  EXPECT_LE(t, prev);
  prev = t;
  cfg.simplified_control = true;
  t = attention_decode_cost(dev, cfg, shape).seconds;
  EXPECT_LE(t, prev);
  prev = t;
  cfg.fp16_arithmetic = true;
  t = attention_decode_cost(dev, cfg, shape).seconds;
  EXPECT_LE(t, prev);
  prev = t;
  cfg.prefetch_scales = true;
  t = attention_decode_cost(dev, cfg, shape).seconds;
  EXPECT_LE(t, prev);
}

TEST(AttentionModel, ScalesLinearlyInSeqLen) {
  const DeviceSpec dev = a100_80g();
  AttentionShape shape;
  shape.seq_len = 512;
  const double t1 =
      attention_decode_cost(dev, AttentionKernelConfig::qserve_kv4(), shape)
          .seconds;
  shape.seq_len = 1024;
  const double t2 =
      attention_decode_cost(dev, AttentionKernelConfig::qserve_kv4(), shape)
          .seconds;
  EXPECT_NEAR(t2 / t1, 2.0, 0.15);
}

// --- serving estimator ---------------------------------------------------------------

TEST(ServingModel, QServeBeatsAllTrtConfigsOnA100Llama7B) {
  const DeviceSpec dev = a100_80g();
  const auto model = model_by_name("Llama-2-7B");
  const ServingWorkload wl;
  const double qserve =
      max_throughput(dev, system_profile(System::kQServePerChannel), model, wl)
          .tokens_per_second;
  for (System s : {System::kTrtFp16, System::kTrtW4A16, System::kTrtW8A8}) {
    const double base =
        max_throughput(dev, system_profile(s), model, wl).tokens_per_second;
    EXPECT_GT(qserve, base) << system_profile(s).name;
  }
}

TEST(ServingModel, SpeedupOverBestTrtInPaperBand) {
  // Table 4 reports 1.2-1.4x for 7B-13B class models on A100; allow a wide
  // band (shape, not absolute).
  const DeviceSpec dev = a100_80g();
  const auto model = model_by_name("Llama-2-7B");
  const ServingWorkload wl;
  double best_trt = 0;
  for (System s : {System::kTrtFp16, System::kTrtW4A16, System::kTrtW8A8}) {
    best_trt = std::max(best_trt, max_throughput(dev, system_profile(s), model,
                                                 wl).tokens_per_second);
  }
  const double qserve =
      max_throughput(dev, system_profile(System::kQServePerChannel), model, wl)
          .tokens_per_second;
  EXPECT_GT(qserve / best_trt, 1.05);
  EXPECT_LT(qserve / best_trt, 2.5);
}

TEST(ServingModel, Fp16OomsFor70BClassOnBothDevices) {
  const auto model = model_by_name("Llama-2-70B");
  const ServingWorkload wl;
  EXPECT_TRUE(max_throughput(a100_80g(), system_profile(System::kTrtFp16),
                             model, wl).oom);
  EXPECT_TRUE(max_throughput(l40s_48g(), system_profile(System::kTrtFp16),
                             model, wl).oom);
}

TEST(ServingModel, AtomOnlySupportsLlama27B) {
  const auto profile = system_profile(System::kAtomW4A4);
  EXPECT_TRUE(profile.supports(model_by_name("Llama-2-7B")));
  EXPECT_FALSE(profile.supports(model_by_name("Llama-2-13B")));
}

TEST(ServingModel, QuarotRejectsGqaModels) {
  const auto profile = system_profile(System::kQuarotW4A4);
  EXPECT_FALSE(profile.supports(model_by_name("Llama-3-8B")));
  EXPECT_TRUE(profile.supports(model_by_name("Llama-2-13B")));
}

TEST(ServingModel, W4A4SystemsLoseToTrtW8A8) {
  // Fig. 2b: Atom/QuaRot underperform TRT-W8A8 despite INT4 tensor cores.
  const DeviceSpec dev = a100_80g();
  const auto model = model_by_name("Llama-2-7B");
  const ServingWorkload wl;
  const double w8a8 =
      max_throughput(dev, system_profile(System::kTrtW8A8), model, wl)
          .tokens_per_second;
  const double atom =
      max_throughput(dev, system_profile(System::kAtomW4A4), model, wl)
          .tokens_per_second;
  EXPECT_LT(atom, w8a8);
}

TEST(ServingModel, QServeOnL40SRivalsTrtOnA100ForSmallModels) {
  // Figure 1's dollar-cost claim: an L40S running QServe serves the <= 8B
  // models at (at least) the same order of throughput as TRT-LLM on an A100
  // that costs ~3x more. The paper's measured margins are a few percent;
  // the analytical model reproduces parity within ~20%.
  const ServingWorkload wl;
  for (const char* name : {"Llama-3-8B", "Llama-2-7B", "Mistral-7B"}) {
    const auto model = model_by_name(name);
    const double l40s =
        max_throughput(l40s_48g(), system_profile(System::kQServePerGroup),
                       model, wl).tokens_per_second;
    double best_a100_trt = 0;
    for (System s : {System::kTrtFp16, System::kTrtW4A16, System::kTrtW8A8}) {
      best_a100_trt = std::max(
          best_a100_trt, max_throughput(a100_80g(), system_profile(s), model,
                                        wl).tokens_per_second);
    }
    EXPECT_GT(l40s, best_a100_trt * 0.8) << name;
  }
}

TEST(ServingModel, LargerBatchNeedsMoreKv) {
  const auto model = model_by_name("Llama-2-7B");
  const auto sys = system_profile(System::kQServePerChannel);
  const ServingWorkload wl;
  EXPECT_GT(kv_pool_bytes(sys, model, wl, 64),
            kv_pool_bytes(sys, model, wl, 32) * 1.9);
}

TEST(ServingModel, AttentionDominatesAtLargeBatch) {
  // Fig. 2a: at batch 64 attention exceeds 50% of decode-step time for
  // FP16 serving of Llama-2-7B.
  const DeviceSpec dev = a100_80g();
  const auto model = model_by_name("Llama-2-7B");
  const ServingWorkload wl;
  const auto est = estimate_throughput(dev, system_profile(System::kTrtFp16),
                                       model, wl, 64);
  ASSERT_FALSE(est.oom);
  const auto& mid = est.mid_decode_step;
  EXPECT_GT(mid.attention_seconds / mid.total(), 0.5);
}

TEST(ServingModel, Qwen72BGapIsLargest) {
  // Table 4: Qwen1.5-72B shows the biggest A100 speedup (~2.4x) because
  // W8A8 barely fits while QServe's W4 + KV4 leave room for real batches.
  const DeviceSpec dev = a100_80g();
  const auto model = model_by_name("Qwen1.5-72B");
  const ServingWorkload wl;
  const double w8a8 =
      max_throughput(dev, system_profile(System::kTrtW8A8), model, wl)
          .tokens_per_second;
  const double qserve =
      max_throughput(dev, system_profile(System::kQServePerChannel), model, wl)
          .tokens_per_second;
  EXPECT_GT(qserve / w8a8, 1.5);
}

}  // namespace
}  // namespace qserve
