// Evaluation-harness tests: metric sanity and the end-to-end QoQ accuracy
// ordering that Tables 2/3 and Figure 16 rest on.
#include <gtest/gtest.h>

#include "eval/harness.h"

namespace qserve {
namespace {

struct Fixture {
  ModelWeights weights;
  ReferenceModel ref;
  CalibrationData calib;
  EvalCorpus corpus;
  ForwardFn ref_fwd;

  Fixture() : weights(make_synthetic_weights(toy_config(2))), ref(&weights) {
    EvalCorpusOptions opt;
    opt.calib_sequences = 1;
    opt.calib_len = 32;
    opt.eval_sequences = 2;
    opt.eval_len = 24;
    opt.n_choice_tasks = 10;
    opt.n_long_prompts = 1;
    opt.long_prompt_len = 32;
    corpus = build_eval_corpus(ref, opt);
    ref.forward_calibrate(corpus.calibration[0], &calib);
    ref_fwd = [this](const std::vector<int>& t) { return ref.forward(t); };
  }
};

Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

TEST(Metrics, ReferencePerplexityIsFiniteAndModest) {
  auto& f = fixture();
  const double ppl = pseudo_perplexity(f.ref_fwd, f.corpus.eval);
  EXPECT_GT(ppl, 1.0);
  // Sequences were sampled from the model itself, so it must predict them
  // better than chance (vocab = 512; a random untrained transformer does
  // not compress much, but must beat uniform).
  EXPECT_LT(ppl, 480.0);
}

TEST(Metrics, KlToSelfIsZero) {
  auto& f = fixture();
  EXPECT_NEAR(mean_kl_to_reference(f.ref_fwd, f.ref_fwd, f.corpus.eval), 0.0,
              1e-9);
}

TEST(Metrics, ReferenceWinsItsOwnChoiceTasks) {
  auto& f = fixture();
  EXPECT_GE(choice_accuracy(f.ref_fwd, f.corpus.choice_tasks), 0.8);
}

TEST(Metrics, GreedyAgreementWithSelfIsPerfect) {
  auto& f = fixture();
  EXPECT_EQ(greedy_agreement(f.ref_fwd, f.ref_fwd, f.corpus.long_prompts, 4),
            1.0);
}

TEST(Metrics, NoisyModelHasHigherPerplexity) {
  auto& f = fixture();
  ForwardFn noisy = [&](const std::vector<int>& t) {
    Tensor logits = f.ref.forward(t);
    Rng rng(5);
    for (int64_t i = 0; i < logits.numel(); ++i)
      logits[i] += rng.normal(0.0f, 2.0f);
    return logits;
  };
  EXPECT_GT(pseudo_perplexity(noisy, f.corpus.eval),
            pseudo_perplexity(f.ref_fwd, f.corpus.eval));
}

// --- end-to-end scheme evaluation -------------------------------------------------

TEST(EvalHarness, QoQImprovesOverRtnAtW4A8KV4) {
  // The Figure-16 claim in one assertion: full QoQ < plain RTN perplexity.
  auto& f = fixture();
  const auto scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  const auto rtn = evaluate_scheme("rtn", f.weights, f.calib, rtn_options(),
                                   scheme, f.ref, f.corpus);
  const auto qoq = evaluate_scheme("qoq", f.weights, f.calib, QoQOptions{},
                                   scheme, f.ref, f.corpus);
  EXPECT_LT(qoq.perplexity, rtn.perplexity);
}

TEST(EvalHarness, W8A8NearLossless) {
  auto& f = fixture();
  const double ref_ppl = pseudo_perplexity(f.ref_fwd, f.corpus.eval);
  const auto w8 = evaluate_scheme("w8a8", f.weights, f.calib, rtn_options(),
                                  QuantSchemeConfig::trt_w8a8(), f.ref,
                                  f.corpus);
  EXPECT_LT(w8.perplexity, ref_ppl * 1.35 + 0.5);
}

TEST(EvalHarness, PrecisionLadderOrdering) {
  // FP16 <= W8A8 <= QoQ-W4A8KV4 <= RTN-W4A4 in perplexity (Table 2 shape).
  auto& f = fixture();
  const auto fp16 = evaluate_scheme("fp16", f.weights, f.calib, rtn_options(),
                                    QuantSchemeConfig::fp16(), f.ref,
                                    f.corpus);
  const auto w8 = evaluate_scheme("w8a8", f.weights, f.calib, rtn_options(),
                                  QuantSchemeConfig::trt_w8a8(), f.ref,
                                  f.corpus);
  const auto qoq = evaluate_scheme("qoq", f.weights, f.calib, QoQOptions{},
                                   QuantSchemeConfig::qserve_w4a8kv4_g128(),
                                   f.ref, f.corpus);
  const auto w4a4 = evaluate_scheme("w4a4", f.weights, f.calib, rtn_options(),
                                    QuantSchemeConfig::atom_w4a4(), f.ref,
                                    f.corpus);
  EXPECT_LE(fp16.perplexity, w8.perplexity * 1.05);
  EXPECT_LE(w8.perplexity, qoq.perplexity * 1.1);
  EXPECT_LT(qoq.perplexity, w4a4.perplexity);
}

}  // namespace
}  // namespace qserve
