// Tensor-parallel scaling calibration (MLSYSIM discipline): the simulator's
// first-principles TP decode model against the engine's measured 1/2/4-shard
// scaling curve. The model-shape tests always run; the measurement comparison
// skips gracefully on single-core runners where partitioned pools time-slice
// one core and wall-clock scaling is pure scheduler noise.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "serving/engine.h"
#include "simulator/serving_model.h"
#include "simulator/system_config.h"

namespace qserve {
namespace {

using namespace qserve::sim;

TpScalingEstimate tp_est(const qserve::ModelConfig& m, int shards,
                         int threads) {
  return estimate_tp_decode_scaling(a100_80g(),
                                    system_profile(System::kQServePerChannel),
                                    m, /*batch=*/4, /*seq_len=*/64, shards,
                                    threads);
}

TEST(TpScalingModel, SingleShardIsTheBaseline) {
  const qserve::ModelConfig m = toy_config_mha(2);
  const TpScalingEstimate one = tp_est(m, 1, 8);
  EXPECT_DOUBLE_EQ(one.relative_throughput, 1.0);
  EXPECT_DOUBLE_EQ(one.comm_seconds, 0.0);
  EXPECT_GT(one.step_seconds, 0.0);
}

TEST(TpScalingModel, FixedBudgetScalingIsBoundedAndCommGrows) {
  // With the thread budget partitioned across shards, TP adds no FLOPs:
  // relative throughput must stay <= 1 and degrade through the reduction /
  // concat boundary as shards grow — never collapse (comm is a small
  // fraction of the step at these shapes).
  const qserve::ModelConfig m = toy_config_mha(2);
  double prev_comm = 0.0;
  for (const int s : {2, 4}) {
    const TpScalingEstimate est = tp_est(m, s, 8);
    EXPECT_LE(est.relative_throughput, 1.0) << s << " shards";
    EXPECT_GT(est.relative_throughput, 0.5) << s << " shards";
    EXPECT_GT(est.comm_seconds, prev_comm) << s << " shards";
    EXPECT_LT(est.comm_seconds, est.step_seconds) << s << " shards";
    prev_comm = est.comm_seconds;
  }
  // Uneven partition (8 threads / 3 shards leaves threads idle) predicts
  // strictly worse than the even 4-shard split's compute term alone.
  EXPECT_LT(tp_est(m, 3, 8).relative_throughput, 1.0);
}

TEST(TpScalingModel, OversubscribedHostTimeSlicesEvenly) {
  // T < S: the engine's leader threads oversubscribe the host; the model
  // time-slices the device across shards, so the step costs roughly the
  // single-shard step plus the boundary — still <= 1 relative.
  const qserve::ModelConfig m = toy_config_mha(2);
  const TpScalingEstimate est = tp_est(m, 4, 1);
  EXPECT_LE(est.relative_throughput, 1.0);
  EXPECT_GT(est.relative_throughput, 0.5);
}

// --- calibration against the measured engine ---------------------------------

double measured_decode_tps(const ModelWeights& weights, int shards) {
  QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_per_channel(),
                       TpConfig{shards});
  ServingEngine engine(&model, nullptr, EngineConfig{});
  Rng rng(99);
  for (int i = 0; i < 4; ++i) {
    std::vector<int> prompt(16);
    for (auto& t : prompt) t = rng.uniform_int(0, 511);
    engine.submit(prompt, /*max_new_tokens=*/48);
  }
  const EngineStats stats = engine.run_to_completion();
  return stats.decode_tokens_per_second;
}

TEST(TpScalingCalibration, PredictionTracksMeasuredShardCurve) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) {
    GTEST_SKIP() << "single-core runner: shard pools time-slice one core and "
                    "measured scaling is scheduler noise";
  }
  const int threads = static_cast<int>(hw < 8 ? hw : 8);
  set_num_threads(threads);
  set_tp_shards(0);

  const ModelWeights weights = make_synthetic_weights(toy_config_mha(2));
  // Warm-up run so lazy pool/leader spawning is off the measured path.
  (void)measured_decode_tps(weights, 2);

  const double base = measured_decode_tps(weights, 1);
  ASSERT_GT(base, 0.0);
  for (const int s : {2, 4}) {
    const double measured_rel = measured_decode_tps(weights, s) / base;
    const double predicted_rel =
        tp_est(toy_config_mha(2), s, threads).relative_throughput;
    // Generous bound: a toy model on a shared CI host measures with real
    // variance, but the prediction must land on the right curve — near flat,
    // not near linear speedup or collapse.
    EXPECT_NEAR(predicted_rel, measured_rel, 0.75 * measured_rel)
        << s << " shards at " << threads << " threads (measured "
        << measured_rel << ", predicted " << predicted_rel << ")";
  }
  set_num_threads(0);
}

}  // namespace
}  // namespace qserve
