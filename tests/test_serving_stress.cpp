// Randomized stress tests for the serving stack: scheduler plan invariants
// under random workloads, engine liveness under mixed request shapes,
// preemption churn in a tiny KV pool, and pool conservation across churn.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "serving/engine.h"

namespace qserve {
namespace {

TEST(SchedulerStress, PlanNeverExceedsBatchChunkOrPageBudget) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const int max_batch = rng.uniform_int(1, 6);
    const int chunk = rng.uniform_int(4, 64);
    const int page_size = 8;
    Scheduler s({.max_batch = max_batch, .prefill_chunk = chunk}, page_size,
                /*n_layers=*/1);
    std::vector<Request> reqs(16);
    for (auto& r : reqs) {
      r.prompt.assign(static_cast<size_t>(rng.uniform_int(1, 30)), 0);
      r.max_new_tokens = rng.uniform_int(1, 20);
      s.enqueue(&r);
    }
    const int64_t free_pages = rng.uniform_int(0, 20);
    const StepPlan plan = s.plan({}, free_pages);
    EXPECT_LE(static_cast<int>(plan.admitted.size()), max_batch);
    int64_t tokens = 0, pages = 0;
    for (const PrefillWork& w : plan.prefills) {
      EXPECT_GT(w.tokens, 0);
      EXPECT_LE(w.tokens, static_cast<int>(w.req->prompt.size()));
      tokens += w.tokens;
      pages += (w.tokens + page_size - 1) / page_size;  // from empty seqs
    }
    EXPECT_LE(tokens, chunk);
    EXPECT_LE(pages, free_pages);
  }
}

TEST(SchedulerStress, DrainsCompletelyWithRepeatedAdmission) {
  Rng rng(2);
  Scheduler s({.max_batch = 3, .prefill_chunk = 64}, 16, 1);
  std::vector<Request> reqs(20);
  for (auto& r : reqs) {
    r.prompt.assign(static_cast<size_t>(rng.uniform_int(1, 10)), 0);
    r.max_new_tokens = rng.uniform_int(1, 10);
    s.enqueue(&r);
  }
  int total = 0;
  int guard = 0;
  while (s.queued() > 0 && guard++ < 100) {
    total += static_cast<int>(s.plan({}, 1000).admitted.size());
  }
  EXPECT_EQ(total, 20);
}

struct StressFixture {
  ModelWeights weights;
  StressFixture() : weights(make_synthetic_weights(toy_config(1))) {}
};

const StressFixture& stress_fixture() {
  static StressFixture* f = new StressFixture();
  return *f;
}

TEST(EngineStress, RandomWorkloadAllComplete) {
  QuantizedModel model(stress_fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  cfg.temperature = 1.0f;
  ServingEngine engine(&model, cfg);

  Rng rng(3);
  std::vector<int> ids;
  std::vector<int> want;
  for (int i = 0; i < 10; ++i) {
    std::vector<int> prompt(static_cast<size_t>(rng.uniform_int(1, 12)));
    for (auto& t : prompt) t = rng.uniform_int(0, 511);
    const int n = rng.uniform_int(1, 8);
    ids.push_back(engine.submit(prompt, n));
    want.push_back(n);
  }
  const EngineStats stats = engine.run_to_completion();
  int64_t total = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    const Request& r = engine.request(ids[i]);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(static_cast<int>(r.generated.size()), want[i]);
    total += want[i];
  }
  // Every request's first token is counted separately from decode tokens.
  EXPECT_EQ(stats.first_tokens, static_cast<int64_t>(ids.size()));
  EXPECT_EQ(stats.decode_tokens, total - static_cast<int64_t>(ids.size()));
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
  EXPECT_LE(stats.peak_batch, 3);
}

TEST(EngineStress, SubmissionsBetweenStepsJoinTheBatch) {
  QuantizedModel model(stress_fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  ServingEngine engine(&model, cfg);
  Rng rng(4);
  std::vector<int> ids;
  ids.push_back(engine.submit({1, 2}, 12));
  int steps = 0;
  while (engine.step()) {
    if (steps < 5) {
      std::vector<int> prompt(static_cast<size_t>(rng.uniform_int(1, 4)));
      for (auto& t : prompt) t = rng.uniform_int(0, 511);
      ids.push_back(engine.submit(prompt, 3 + steps));
    }
    ASSERT_LT(++steps, 200) << "engine must terminate";
  }
  for (int id : ids) EXPECT_TRUE(engine.request(id).done());
  EXPECT_GE(engine.stats().peak_batch, 2);
}

TEST(EngineStress, KvPagesConservedAcrossChurn) {
  // Run three waves of requests through the same engine; the pool must
  // return to empty between waves (no leaks, no double frees).
  QuantizedModel model(stress_fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 2;
  ServingEngine engine(&model, cfg);
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 3; ++i)
      engine.submit({wave * 3 + i + 1, 2, 3}, 2 + i);
    engine.run_to_completion();
    EXPECT_EQ(model.kv_cache().pages_in_use(), 0) << "wave " << wave;
  }
}

TEST(EngineStress, PreemptionChurnStreamsMatchSoloRuns) {
  // A 4-page pool with a crowded batch forces repeated eviction/resume.
  // Greedy decoding is deterministic, so every request must emit exactly
  // the stream an uncontended solo engine produces, regardless of how many
  // times it was preempted and re-prefilled.
  const auto& f = stress_fixture();
  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = 4;  // 64 tokens, 1 layer

  Rng rng(5);
  std::vector<std::vector<int>> prompts;
  std::vector<int> max_new;
  for (int i = 0; i < 6; ++i) {
    std::vector<int> p(static_cast<size_t>(rng.uniform_int(3, 12)));
    for (auto& t : p) t = rng.uniform_int(0, 511);
    prompts.push_back(std::move(p));
    max_new.push_back(rng.uniform_int(8, 20));
  }

  std::vector<std::vector<int>> solo;
  for (size_t i = 0; i < prompts.size(); ++i) {
    QuantizedModel model(f.weights, scheme);
    ServingEngine engine(&model, EngineConfig{});
    const int id = engine.submit(prompts[i], max_new[i]);
    engine.run_to_completion();
    solo.push_back(engine.request(id).generated);
  }

  QuantizedModel model(f.weights, scheme);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  ServingEngine engine(&model, cfg);
  std::vector<int> ids;
  for (size_t i = 0; i < prompts.size(); ++i)
    ids.push_back(engine.submit(prompts[i], max_new[i]));
  const EngineStats stats = engine.run_to_completion();

  for (size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(engine.request(ids[i]).generated, solo[i]) << "request " << i;
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
  // The pool is small enough that the batch cannot coexist peacefully.
  EXPECT_GE(stats.preemptions, 1);
}

TEST(EngineStress, SamplingTemperatureChangesOutputsGreedyDoesNot) {
  const auto& f = stress_fixture();
  auto run = [&](float temp, uint64_t seed) {
    QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
    EngineConfig cfg;
    cfg.temperature = temp;
    cfg.sample_seed = seed;
    ServingEngine engine(&model, cfg);
    const int id = engine.submit({5, 6, 7}, 8);
    engine.run_to_completion();
    return engine.request(id).generated;
  };
  EXPECT_EQ(run(0.0f, 1), run(0.0f, 2));  // greedy: seed-independent
  EXPECT_EQ(run(1.5f, 3), run(1.5f, 3));  // sampled: seed-deterministic
  EXPECT_NE(run(1.5f, 3), run(1.5f, 4));  // ...and seed-sensitive
}

}  // namespace
}  // namespace qserve
