// Randomized stress tests for the serving stack: scheduler invariants under
// random workloads, engine liveness under mixed request shapes, and KV-pool
// conservation across request churn.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "serving/engine.h"

namespace qserve {
namespace {

TEST(SchedulerStress, NeverExceedsMaxBatchOrBudget) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const int max_batch = rng.uniform_int(1, 6);
    Scheduler s({.max_batch = max_batch, .page_round = 8});
    std::vector<Request> reqs(16);
    for (auto& r : reqs) {
      r.prompt.assign(static_cast<size_t>(rng.uniform_int(1, 30)), 0);
      r.max_new_tokens = rng.uniform_int(1, 20);
      s.enqueue(&r);
    }
    int running = rng.uniform_int(0, max_batch);
    int64_t budget = rng.uniform_int(0, 200);
    const auto admitted = s.admit(running, budget);
    EXPECT_LE(running + static_cast<int>(admitted.size()), max_batch);
    int64_t reserved = 0;
    for (const Request* r : admitted) {
      const int64_t raw =
          static_cast<int64_t>(r->prompt.size()) + r->max_new_tokens;
      reserved += (raw + 7) / 8 * 8;
    }
    EXPECT_LE(reserved, budget);
  }
}

TEST(SchedulerStress, DrainsCompletelyWithRepeatedAdmission) {
  Rng rng(2);
  Scheduler s({.max_batch = 3});
  std::vector<Request> reqs(20);
  for (auto& r : reqs) {
    r.prompt.assign(static_cast<size_t>(rng.uniform_int(1, 10)), 0);
    r.max_new_tokens = rng.uniform_int(1, 10);
    s.enqueue(&r);
  }
  int total = 0;
  int guard = 0;
  while (s.queued() > 0 && guard++ < 100) {
    total += static_cast<int>(s.admit(0, 1000).size());
  }
  EXPECT_EQ(total, 20);
}

struct StressFixture {
  ModelWeights weights;
  StressFixture() : weights(make_synthetic_weights(toy_config(1))) {}
};

const StressFixture& stress_fixture() {
  static StressFixture* f = new StressFixture();
  return *f;
}

TEST(EngineStress, RandomWorkloadAllComplete) {
  QuantizedModel model(stress_fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  cfg.temperature = 1.0f;
  ServingEngine engine(&model, cfg);

  Rng rng(3);
  std::vector<int> ids;
  std::vector<int> want;
  for (int i = 0; i < 10; ++i) {
    std::vector<int> prompt(static_cast<size_t>(rng.uniform_int(1, 12)));
    for (auto& t : prompt) t = rng.uniform_int(0, 511);
    const int n = rng.uniform_int(1, 8);
    ids.push_back(engine.submit(prompt, n));
    want.push_back(n);
  }
  const EngineStats stats = engine.run_to_completion();
  int64_t total = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    const Request& r = engine.request(ids[i]);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(static_cast<int>(r.generated.size()), want[i]);
    total += want[i];
  }
  EXPECT_EQ(stats.decode_tokens, total);
  EXPECT_EQ(model.kv_cache().pages_in_use(), 0);
  EXPECT_LE(stats.peak_batch, 3);
}

TEST(EngineStress, SubmissionsBetweenStepsJoinTheBatch) {
  QuantizedModel model(stress_fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  ServingEngine engine(&model, cfg);
  Rng rng(4);
  std::vector<int> ids;
  ids.push_back(engine.submit({1, 2}, 12));
  int steps = 0;
  while (engine.step()) {
    if (steps < 5) {
      std::vector<int> prompt(static_cast<size_t>(rng.uniform_int(1, 4)));
      for (auto& t : prompt) t = rng.uniform_int(0, 511);
      ids.push_back(engine.submit(prompt, 3 + steps));
    }
    ASSERT_LT(++steps, 200) << "engine must terminate";
  }
  for (int id : ids) EXPECT_TRUE(engine.request(id).done());
  EXPECT_GE(engine.stats().peak_batch, 2);
}

TEST(EngineStress, KvPagesConservedAcrossChurn) {
  // Run three waves of requests through the same engine; the pool must
  // return to empty between waves (no leaks, no double frees).
  QuantizedModel model(stress_fixture().weights,
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 2;
  ServingEngine engine(&model, cfg);
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 3; ++i)
      engine.submit({wave * 3 + i + 1, 2, 3}, 2 + i);
    engine.run_to_completion();
    EXPECT_EQ(model.kv_cache().pages_in_use(), 0) << "wave " << wave;
  }
}

TEST(EngineStress, SamplingTemperatureChangesOutputsGreedyDoesNot) {
  const auto& f = stress_fixture();
  auto run = [&](float temp, uint64_t seed) {
    QuantizedModel model(f.weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
    EngineConfig cfg;
    cfg.temperature = temp;
    cfg.sample_seed = seed;
    ServingEngine engine(&model, cfg);
    const int id = engine.submit({5, 6, 7}, 8);
    engine.run_to_completion();
    return engine.request(id).generated;
  };
  EXPECT_EQ(run(0.0f, 1), run(0.0f, 2));  // greedy: seed-independent
  EXPECT_EQ(run(1.5f, 3), run(1.5f, 3));  // sampled: seed-deterministic
  EXPECT_NE(run(1.5f, 3), run(1.5f, 4));  // ...and seed-sensitive
}

}  // namespace
}  // namespace qserve
