// Exhaustive / randomized property tests for the progressive quantization
// theorems the QServe kernels rely on (§4.1, §5.2.3):
//   T1: level-2 round trip stays in INT8  (protective range theorem)
//   T2: q * s1 <= 255                      (RLP multiply is lane-safe)
//   T3: z * s1 <= 127                      (negated zero-point term is SINT8)
// over many weight distributions, group sizes and seeds — plus an
// end-to-end check that every fragment the streamed kernel would touch obeys
// the SWAR-safety preconditions.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/rlp.h"
#include "quant/quantize.h"

namespace qserve {
namespace {

enum class Dist { kNormal, kHeavyTail, kUniform, kBimodal, kSparseOutlier };

Tensor make_weights(Dist dist, int64_t n, int64_t k, uint64_t seed) {
  Rng rng(seed);
  Tensor w({n, k});
  switch (dist) {
    case Dist::kNormal:
      for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
      break;
    case Dist::kHeavyTail:
      for (int64_t i = 0; i < w.numel(); ++i)
        w[i] = rng.heavy_tailed(1.0f, 3.0f);
      break;
    case Dist::kUniform:
      for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.uniform(-2, 2);
      break;
    case Dist::kBimodal:
      for (int64_t i = 0; i < w.numel(); ++i)
        w[i] = rng.normal((i % 2) ? 3.0f : -3.0f, 0.3f);
      break;
    case Dist::kSparseOutlier:
      for (int64_t i = 0; i < w.numel(); ++i)
        w[i] = rng.normal(0.0f, 0.05f);
      for (int64_t r = 0; r < n; ++r)
        w.at2(r, (r * 37) % k) = (r % 2 ? 30.0f : -25.0f);
      break;
  }
  return w;
}

class ProgressiveTheorems
    : public ::testing::TestWithParam<std::tuple<Dist, int, uint64_t>> {};

TEST_P(ProgressiveTheorems, AllThreeSafetyBoundsHold) {
  const auto [dist, group, seed] = GetParam();
  const Tensor w = make_weights(dist, 16, 512, seed);
  ProgressiveOptions opt;
  opt.group = group;
  const auto q = quantize_progressive(w, opt);

  for (int64_t r = 0; r < q.n(); ++r) {
    for (int64_t c = 0; c < q.k(); ++c) {
      const int64_t g = c / q.group;
      const int s1 = q.s1.at2(r, g);
      const int z = q.z.at2(r, g);
      const int code = get_u4(q.qw, r, c);
      // T2: the 4-way multiply must not overflow a byte lane.
      ASSERT_LE(code * s1, 255) << "T2 at (" << r << "," << c << ")";
      // T3: the broadcast zero-point product must fit SINT8.
      ASSERT_LE(z * s1, 127) << "T3 at (" << r << "," << c << ")";
      // T1: the reconstructed level-1 code must fit SINT8.
      const int level1 = (code - z) * s1;
      ASSERT_GE(level1, -128) << "T1 at (" << r << "," << c << ")";
      ASSERT_LE(level1, 127) << "T1 at (" << r << "," << c << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProgressiveTheorems,
    ::testing::Combine(::testing::Values(Dist::kNormal, Dist::kHeavyTail,
                                         Dist::kUniform, Dist::kBimodal,
                                         Dist::kSparseOutlier),
                       ::testing::Values(32, 64, 128),
                       ::testing::Values(1u, 2u, 3u)));

class SwarMatchesScalar
    : public ::testing::TestWithParam<std::tuple<Dist, uint64_t>> {};

TEST_P(SwarMatchesScalar, PackedDequantEqualsExactArithmetic) {
  // Feed real quantizer outputs through the packed SWAR dequant: every
  // 4-lane word must reproduce exact integer arithmetic.
  const auto [dist, seed] = GetParam();
  const Tensor w = make_weights(dist, 8, 256, seed + 100);
  const auto q = quantize_progressive(w, {.group = 64});
  for (int64_t r = 0; r < q.n(); ++r) {
    for (int64_t c = 0; c + 4 <= q.k(); c += 4) {
      const int64_t g = c / q.group;
      const uint8_t s1 = q.s1.at2(r, g);
      const uint8_t z = q.z.at2(r, g);
      uint32_t lanes = 0;
      for (int l = 0; l < 4; ++l)
        lanes |= uint32_t(get_u4(q.qw, r, c + l)) << (8 * l);
      const uint32_t out = dequant4_sub_after_mul(lanes, s1, z);
      for (int l = 0; l < 4; ++l) {
        const int expect = (int(get_u4(q.qw, r, c + l)) - int(z)) * int(s1);
        ASSERT_EQ(int(lane_s8(out, l)), expect)
            << "(" << r << "," << c + l << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SwarMatchesScalar,
    ::testing::Combine(::testing::Values(Dist::kNormal, Dist::kHeavyTail,
                                         Dist::kSparseOutlier),
                       ::testing::Values(7u, 8u)));

// Exhaustive RLP check over the full reachable (s1, z, q) space: for every
// s1 in [1,17] and z in [0,15] with z*s1 <= 127, all codes q whose products
// stay in the guaranteed ranges must dequantize exactly.
TEST(RlpExhaustive, AllReachableParameterTriplesAreSafe) {
  int64_t checked = 0;
  for (int s1 = 1; s1 <= 17; ++s1) {
    for (int z = 0; z <= 15; ++z) {
      if (z * s1 > 127) continue;  // T3 excludes these
      for (int code = 0; code <= 15; ++code) {
        if (code * s1 > 255) continue;          // T2 excludes these
        const int level1 = (code - z) * s1;
        if (level1 < -128 || level1 > 127) continue;  // T1 excludes these
        const uint32_t lanes = broadcast4(static_cast<uint8_t>(code)) &
                               0x0F0F0F0Fu;
        const uint32_t out = dequant4_sub_after_mul(
            lanes, static_cast<uint8_t>(s1), static_cast<uint8_t>(z));
        for (int l = 0; l < 4; ++l)
          ASSERT_EQ(int(lane_s8(out, l)), level1)
              << "s1=" << s1 << " z=" << z << " q=" << code;
        ++checked;
      }
    }
  }
  // The reachable space is large — make sure we actually exercised it.
  EXPECT_GT(checked, 1500);
}

// The protective bound is tight: range 120 can already overflow.
TEST(RlpExhaustive, Range120AdmitsOverflow) {
  bool found_overflow = false;
  for (uint64_t seed = 1; seed <= 30 && !found_overflow; ++seed) {
    Rng rng(seed);
    Tensor w({1, 64});
    for (int64_t i = 0; i < 64; ++i) w[i] = rng.heavy_tailed(1.0f, 2.0f);
    ProgressiveOptions opt;
    opt.group = 64;
    opt.level1_range = 125;  // > 119.5 bound
    const auto q = quantize_progressive(w, opt);
    const I32Tensor codes = dequantize_level1_codes(q);
    for (int64_t i = 0; i < codes.numel(); ++i)
      if (codes[i] < -128 || codes[i] > 127) found_overflow = true;
  }
  EXPECT_TRUE(found_overflow)
      << "ranges beyond 119 should eventually overflow INT8";
}

// Accuracy monotonicity: smaller groups can only help reconstruction.
TEST(ProgressiveMonotone, FinerGroupsReduceError) {
  const Tensor w = make_weights(Dist::kHeavyTail, 16, 512, 9);
  double prev = 1e30;
  for (int group : {512, 256, 128, 64, 32}) {
    const double err = mse(w, dequantize(quantize_progressive(
                               w, {.group = group})));
    EXPECT_LE(err, prev * 1.02) << group;  // small slack for rounding luck
    prev = err;
  }
}

}  // namespace
}  // namespace qserve
