// Cross-ISA equivalence of the attention microkernel subsystem: the scalar,
// AVX2 and AVX-512 paths must produce bitwise-identical attention outputs —
// and identical engine token streams — for every KV storage form
// (INT4/INT8 dynamic, INT8 static-scale, FP16), odd sequence lengths that
// cross page boundaries, GQA head ratios, head_dims off the 16-lane grid,
// and FP16-accumulation on/off. Also pins the batched decode executor to the
// per-sequence path under preemption churn, the one-dispatch-per-layer
// counter contract, and the QSERVE_ISA override plumbing.
#include <cstdlib>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/attention.h"
#include "kernels/cpu/attention_kernel.h"
#include "kernels/cpu/isa.h"
#include "kvcache/fused_attention.h"
#include "model/quantized_model.h"
#include "model/weights.h"
#include "serving/engine.h"

namespace qserve {
namespace {

using cpu::Isa;

// RAII: pin an ISA for a scope, always return control to env/detection.
struct IsaGuard {
  explicit IsaGuard(Isa isa) { cpu::set_isa(isa); }
  ~IsaGuard() { cpu::clear_isa_override(); }
};

std::vector<Isa> supported_isas() {
  std::vector<Isa> v{Isa::kScalar};
  if (static_cast<int>(cpu::detected_isa()) >= static_cast<int>(Isa::kAvx2))
    v.push_back(Isa::kAvx2);
  if (static_cast<int>(cpu::detected_isa()) >= static_cast<int>(Isa::kAvx512))
    v.push_back(Isa::kAvx512);
  return v;
}

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b, const char* tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  for (size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << tag << " element " << i;
}

// A populated quantized KV cache + query, parameterized over every axis the
// kernels dispatch on. page_size 8 keeps several page runs in play; token
// counts that are not multiples of 8 make the last run a partial page.
struct CacheFixture {
  KvCacheConfig ccfg;
  AttentionConfig acfg;
  PagedKvCache cache;
  int seq;
  std::vector<float> q;

  CacheFixture(KvPrecision p, bool static_scales, int n_heads, int n_kv_heads,
               int head_dim, int tokens, bool fp16_accum, uint64_t seed)
      : ccfg{n_kv_heads, head_dim, 8, p, static_scales, 0.25f, 0.5f, 4096},
        acfg{n_heads, n_kv_heads, head_dim, fp16_accum},
        cache(ccfg),
        seq(cache.alloc_sequence()) {
    Rng rng(seed);
    const size_t span = static_cast<size_t>(n_kv_heads) * head_dim;
    std::vector<float> k(span), v(span);
    for (int t = 0; t < tokens; ++t) {
      for (auto& x : k) x = rng.normal();
      for (auto& x : v) x = rng.normal();
      k[0] = 9.0f;  // persistent outlier channel, like real Keys
      cache.append(seq, k.data(), v.data());
    }
    q.resize(static_cast<size_t>(n_heads) * head_dim);
    for (auto& x : q) x = rng.normal();
  }

  std::vector<float> fused() const {
    std::vector<float> out(q.size());
    fused_decode_attention(cache, seq, q.data(), acfg, out.data());
    return out;
  }

  std::vector<float> gather_reference() const {
    Tensor k, v;
    cache.gather(seq, k, v);
    std::vector<float> out(q.size());
    attention_decode_token(q.data(), k, v, acfg, out.data());
    return out;
  }
};

struct KvForm {
  KvPrecision precision;
  bool static_scales;
  const char* name;
};

const KvForm kKvForms[] = {
    {KvPrecision::kInt4, false, "int4"},
    {KvPrecision::kInt8, false, "int8"},
    {KvPrecision::kInt8, true, "int8_static"},
    {KvPrecision::kFp16, false, "fp16"},
};

TEST(AttentionIsaEquivalence, FusedBitwiseAcrossIsasAllKvForms) {
  uint64_t seed = 50;
  for (const KvForm& f : kKvForms) {
    for (const auto& [n_heads, n_kv_heads] : {std::pair{4, 4},
                                              std::pair{8, 2},
                                              std::pair{6, 3}}) {
      for (const bool fp16 : {false, true}) {
        // 37 tokens at page size 8: 4 full page runs + a 5-token tail run.
        CacheFixture s(f.precision, f.static_scales, n_heads, n_kv_heads, 32,
                       37, fp16, seed++);
        std::vector<float> ref;
        {
          IsaGuard guard(Isa::kScalar);
          ref = s.fused();
        }
        for (Isa isa : supported_isas()) {
          IsaGuard guard(isa);
          SCOPED_TRACE(std::string(f.name) + " heads=" +
                       std::to_string(n_heads) + "/" +
                       std::to_string(n_kv_heads) + " fp16=" +
                       std::to_string(fp16) + " isa=" + cpu::isa_name(isa));
          expect_bitwise_equal(ref, s.fused(), "fused");
          // Cross-path: every ISA's fused result must also equal the
          // gather-then-attend reference (itself running on `isa`).
          expect_bitwise_equal(ref, s.gather_reference(), "gather");
        }
      }
    }
  }
}

TEST(AttentionIsaEquivalence, HeadDimsOffTheLaneGrid) {
  // head_dim 24 exercises the 8-element scalar tail after one 16-lane block;
  // head_dim 8 never enters the vector loop at all. Both must match scalar
  // bitwise (the tails walk the same virtual lanes).
  uint64_t seed = 150;
  for (const int head_dim : {8, 24, 48}) {
    for (const KvForm& f : kKvForms) {
      CacheFixture s(f.precision, f.static_scales, 4, 2, head_dim, 21, true,
                     seed++);
      std::vector<float> ref;
      {
        IsaGuard guard(Isa::kScalar);
        ref = s.fused();
      }
      for (Isa isa : supported_isas()) {
        IsaGuard guard(isa);
        SCOPED_TRACE(std::string(f.name) + " head_dim=" +
                     std::to_string(head_dim) + " isa=" + cpu::isa_name(isa));
        expect_bitwise_equal(ref, s.fused(), "odd_head_dim");
        expect_bitwise_equal(ref, s.gather_reference(), "odd_head_dim_gather");
      }
    }
  }
}

TEST(AttentionIsaEquivalence, PrefillGatherPathAcrossIsas) {
  // The float-KV (gather) path runs the same kernels via kF32 runs: a causal
  // prefill over random K/V must be bitwise identical on every ISA.
  Rng rng(77);
  const AttentionConfig cfg{6, 3, 24, true};
  const int64_t n = 9, s = 13;
  Tensor q({n, int64_t(cfg.n_heads) * cfg.head_dim});
  Tensor k({s, int64_t(cfg.n_kv_heads) * cfg.head_dim});
  Tensor v({s, int64_t(cfg.n_kv_heads) * cfg.head_dim});
  for (int64_t i = 0; i < q.numel(); ++i) q[i] = rng.normal();
  for (int64_t i = 0; i < k.numel(); ++i) k[i] = rng.normal();
  for (int64_t i = 0; i < v.numel(); ++i) v[i] = rng.normal();

  Tensor ref;
  {
    IsaGuard guard(Isa::kScalar);
    ref = attention_prefill(q, k, v, cfg);
  }
  for (Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    const Tensor got = attention_prefill(q, k, v, cfg);
    SCOPED_TRACE(cpu::isa_name(isa));
    ASSERT_TRUE(ref.same_shape(got));
    for (int64_t i = 0; i < ref.numel(); ++i) ASSERT_EQ(ref[i], got[i]) << i;
  }
}

TEST(AttentionIsaEquivalence, BatchedMatchesPerSequenceUnderChurn) {
  // Several sequences of different odd lengths, with free/realloc churn so
  // later sequences land on recycled pages out of allocation order — the
  // preemption pattern. The batched executor must reproduce per-sequence
  // fused_decode_attention bitwise on every ISA.
  for (const KvForm& f : kKvForms) {
    KvCacheConfig ccfg{2, 32, 8, f.precision, f.static_scales,
                       0.25f, 0.5f, 4096};
    const AttentionConfig acfg{4, 2, 32, true};
    PagedKvCache cache(ccfg);
    Rng rng(901);
    const size_t span = static_cast<size_t>(ccfg.n_kv_heads) * ccfg.head_dim;
    std::vector<float> kb(span), vb(span);
    auto fill = [&](int seq, int tokens) {
      for (int t = 0; t < tokens; ++t) {
        for (auto& x : kb) x = rng.normal();
        for (auto& x : vb) x = rng.normal();
        cache.append(seq, kb.data(), vb.data());
      }
    };
    // Churn: a and b claim pages, a is preempted, c/d/e reuse its pages.
    const int a = cache.alloc_sequence();
    fill(a, 20);
    const int b = cache.alloc_sequence();
    fill(b, 37);
    cache.free_sequence(a);
    const int c = cache.alloc_sequence();
    fill(c, 11);
    const int d = cache.alloc_sequence();
    fill(d, 1);
    const int e = cache.alloc_sequence();
    fill(e, 9);
    const std::vector<int> live = {b, c, d, e};

    const size_t hd = static_cast<size_t>(acfg.n_heads) * acfg.head_dim;
    std::vector<std::vector<float>> qs;
    for (size_t i = 0; i < live.size(); ++i) {
      qs.emplace_back(hd);
      for (auto& x : qs.back()) x = rng.normal();
    }

    std::vector<float> ref;  // scalar per-sequence results, concatenated
    {
      IsaGuard guard(Isa::kScalar);
      ref.resize(hd * live.size());
      for (size_t i = 0; i < live.size(); ++i)
        fused_decode_attention(cache, live[i], qs[i].data(), acfg,
                               ref.data() + i * hd);
    }
    for (Isa isa : supported_isas()) {
      IsaGuard guard(isa);
      SCOPED_TRACE(std::string(f.name) + " isa=" + cpu::isa_name(isa));
      std::vector<float> got(hd * live.size());
      std::vector<DecodeAttentionItem> items;
      for (size_t i = 0; i < live.size(); ++i)
        items.push_back({live[i], qs[i].data(), got.data() + i * hd});
      batched_fused_decode_attention(cache, items, acfg);
      expect_bitwise_equal(ref, got, "batched_vs_per_seq");
    }
  }
}

// --- model / engine level ----------------------------------------------------

const ModelWeights& toy_weights() {
  static ModelWeights* w =
      new ModelWeights(make_synthetic_weights(toy_config(2)));
  return *w;
}

TEST(BatchedAttentionExecutor, OneDispatchPerLayerPerStep) {
  QuantizedModel m(toy_weights(), QuantSchemeConfig::qserve_w4a8kv4_g128());
  const int n_layers = m.config().n_layers;

  std::vector<int> seqs;
  for (int i = 0; i < 3; ++i) {
    const int s = m.begin_sequence();
    m.prefill(s, {3, 1, 4, 1, 5});
    seqs.push_back(s);
  }
  // Prefill is a single multi-row span per step: no batched-decode dispatch.
  EXPECT_EQ(0, m.batched_attention_calls());
  EXPECT_GT(m.attention_seconds(), 0.0);

  // One step with 3 decode rows: exactly one batched dispatch per layer
  // covering all 3 sequences — never a per-sequence fan-out.
  BatchedStep step;
  for (const int s : seqs)
    step.chunks.push_back({s, {7}, static_cast<int>(m.seq_pos(s)), 1});
  m.forward_step(step);
  EXPECT_EQ(n_layers, m.batched_attention_calls());
  EXPECT_EQ(int64_t(3) * n_layers, m.decode_attention_items());

  // A lone decode_step still goes through the batched executor (1 item).
  m.decode_step(seqs[0], 9);
  EXPECT_EQ(2 * n_layers, m.batched_attention_calls());
  EXPECT_EQ(int64_t(3 + 1) * n_layers, m.decode_attention_items());
}

struct EngineRun {
  std::vector<std::vector<int>> streams;
  EngineStats stats;
};

EngineRun run_workload(bool speculative) {
  QuantizedModel model(toy_weights(),
                       QuantSchemeConfig::qserve_w4a8kv4_g128());
  std::unique_ptr<QuantizedModel> draft;
  if (speculative)
    draft = std::make_unique<QuantizedModel>(
        toy_weights(), QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = 3;
  cfg.scheduler.prefill_chunk = 8;
  cfg.speculative.lookahead_k = 3;
  ServingEngine engine(&model, draft.get(), cfg);

  Rng rng(31);
  std::vector<int> ids;
  for (int i = 0; i < 5; ++i) {
    std::vector<int> prompt(static_cast<size_t>(rng.uniform_int(1, 20)));
    for (auto& t : prompt) t = rng.uniform_int(0, 511);
    ids.push_back(engine.submit(prompt, rng.uniform_int(1, 8)));
  }
  EngineRun out;
  out.stats = engine.run_to_completion();
  for (int id : ids) out.streams.push_back(engine.request(id).generated);
  return out;
}

TEST(AttentionIsaEquivalence, EngineTokenStreamsIdenticalAcrossIsas) {
  for (const bool speculative : {false, true}) {
    std::vector<std::vector<int>> ref;
    {
      IsaGuard guard(Isa::kScalar);
      ref = run_workload(speculative).streams;
    }
    for (Isa isa : supported_isas()) {
      IsaGuard guard(isa);
      SCOPED_TRACE(std::string(speculative ? "spec" : "batched") + " isa=" +
                   cpu::isa_name(isa));
      EXPECT_EQ(ref, run_workload(speculative).streams);
    }
  }
}

TEST(EngineStats, AttentionSecondsSplitOutOfStepTime) {
  const EngineRun r = run_workload(/*speculative=*/false);
  EXPECT_GT(r.stats.attention_seconds, 0.0);
  EXPECT_GT(r.stats.attention_share, 0.0);
  EXPECT_LE(r.stats.attention_share, 1.0);
  EXPECT_LE(r.stats.attention_seconds, r.stats.wall_seconds);
}

// --- validation --------------------------------------------------------------

TEST(AttentionConfigValidation, RejectsBadShapesLoudly) {
  EXPECT_NO_THROW((AttentionConfig{8, 2, 64, false}).validate());
  EXPECT_THROW((AttentionConfig{0, 1, 64, false}).validate(), CheckError);
  EXPECT_THROW((AttentionConfig{8, 0, 64, false}).validate(), CheckError);
  EXPECT_THROW((AttentionConfig{8, 8, 0, false}).validate(), CheckError);
  EXPECT_THROW((AttentionConfig{8, 3, 64, false}).validate(), CheckError);
  // Odd head_dim is fine for float/INT8 KV but not for nibble-packed INT4.
  EXPECT_NO_THROW((AttentionConfig{4, 4, 33, false}).validate(false));
  EXPECT_THROW((AttentionConfig{4, 4, 33, false}).validate(true), CheckError);
}

// --- dispatch plumbing -------------------------------------------------------

TEST(AttentionIsaDispatch, KernelTableIsConsistent) {
  for (Isa isa : supported_isas()) {
    const cpu::AttentionKernels& ker = cpu::attention_kernel_for(isa);
    EXPECT_EQ(isa, ker.isa) << cpu::isa_name(isa);
    EXPECT_NE(nullptr, ker.qk_dot);
    EXPECT_NE(nullptr, ker.sv_accum);
  }
  // Unsupported ISAs resolve to a usable kernel rather than nullptr.
  const cpu::AttentionKernels& fallback =
      cpu::attention_kernel_for(Isa::kAvx512);
  EXPECT_NE(nullptr, fallback.qk_dot);
}

TEST(AttentionIsaDispatch, EnvOverridePinsTheFusedKernel) {
  CacheFixture s(KvPrecision::kInt4, false, 4, 2, 32, 19, true, 999);
  std::vector<float> scalar_ref;
  {
    IsaGuard guard(Isa::kScalar);
    scalar_ref = s.fused();
  }
  cpu::clear_isa_override();
  ASSERT_EQ(0, setenv("QSERVE_ISA", "scalar", 1));
  EXPECT_EQ(Isa::kScalar, cpu::active_isa());
  expect_bitwise_equal(scalar_ref, s.fused(), "env_scalar");
  // Requests above the host's capability clamp down instead of faulting.
  ASSERT_EQ(0, setenv("QSERVE_ISA", "avx512", 1));
  expect_bitwise_equal(scalar_ref, s.fused(), "env_clamped");
  ASSERT_EQ(0, unsetenv("QSERVE_ISA"));
}

}  // namespace
}  // namespace qserve
