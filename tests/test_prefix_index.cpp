// Radix-tree prefix index: insertion with edge splitting, longest-prefix
// lookup, LRU eviction with pinning, and validator-driven invalidation.
#include "serving/prefix_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace qserve {
namespace {

std::vector<int> key(std::initializer_list<int> t) { return std::vector<int>(t); }

TEST(PrefixIndex, EmptyLookupMisses) {
  PrefixIndex idx;
  EXPECT_FALSE(idx.lookup(key({1, 2, 3})).has_value());
  EXPECT_EQ(idx.size(), 0);
  EXPECT_EQ(idx.pages(), 0);
}

TEST(PrefixIndex, ExactAndPartialMatch) {
  PrefixIndex idx;
  const int64_t uid = idx.insert(key({1, 2, 3, 4}), /*seq=*/7,
                                 /*cached_len=*/4, {}, /*pages=*/2);
  ASSERT_GE(uid, 0);
  EXPECT_EQ(idx.size(), 1);
  EXPECT_EQ(idx.pages(), 2);

  auto hit = idx.lookup(key({1, 2, 3, 4}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->uid, uid);
  EXPECT_EQ(hit->seq, 7);
  EXPECT_EQ(hit->match_len, 4);

  // Longer prompt sharing the whole key: match is the key length.
  hit = idx.lookup(key({1, 2, 3, 4, 9, 9}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->match_len, 4);

  // Shorter prompt sharing a prefix: match is the common prefix.
  hit = idx.lookup(key({1, 2, 9}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->match_len, 2);

  // Disjoint prompt: miss.
  EXPECT_FALSE(idx.lookup(key({5, 1, 2})).has_value());
}

TEST(PrefixIndex, MatchClampedToCachedLen) {
  PrefixIndex idx;
  // Key is 6 tokens but only 4 are cached (page alignment at the engine).
  idx.insert(key({1, 2, 3, 4, 5, 6}), 3, /*cached_len=*/4, {}, 1);
  auto hit = idx.lookup(key({1, 2, 3, 4, 5, 6}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->match_len, 4);
}

TEST(PrefixIndex, LongestEntryWinsOnSharedPrefix) {
  PrefixIndex idx;
  const int64_t a = idx.insert(key({1, 2}), 10, 2, {}, 1);
  const int64_t b = idx.insert(key({1, 2, 3, 4}), 11, 4, {}, 2);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);

  // The walk follows the prompt as deep as the tree allows; the deeper
  // entry is returned when the prompt covers its key.
  auto hit = idx.lookup(key({1, 2, 3, 4, 5}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->uid, b);
  EXPECT_EQ(hit->match_len, 4);

  // A prompt stopping mid-way matches the shallower entry exactly.
  hit = idx.lookup(key({1, 2, 9}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->uid, a);
  EXPECT_EQ(hit->match_len, 2);
}

TEST(PrefixIndex, DuplicateKeyRejected) {
  PrefixIndex idx;
  EXPECT_GE(idx.insert(key({4, 5, 6}), 1, 3, {}, 1), 0);
  EXPECT_EQ(idx.insert(key({4, 5, 6}), 2, 3, {}, 1), -1);
  EXPECT_EQ(idx.size(), 1);
  EXPECT_EQ(idx.pages(), 1);
}

TEST(PrefixIndex, EdgeSplitKeepsBothEntriesReachable) {
  PrefixIndex idx;
  // Second insert splits the first key's edge mid-way.
  const int64_t a = idx.insert(key({1, 2, 3, 4, 5}), 1, 5, {}, 1);
  const int64_t b = idx.insert(key({1, 2, 3, 9, 9}), 2, 5, {}, 1);
  auto ha = idx.lookup(key({1, 2, 3, 4, 5}));
  auto hb = idx.lookup(key({1, 2, 3, 9, 9}));
  ASSERT_TRUE(ha.has_value());
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(ha->uid, a);
  EXPECT_EQ(ha->match_len, 5);
  EXPECT_EQ(hb->uid, b);
  EXPECT_EQ(hb->match_len, 5);
  // A prompt diverging right at the split point still matches 3 tokens.
  auto hm = idx.lookup(key({1, 2, 3, 7}));
  ASSERT_TRUE(hm.has_value());
  EXPECT_EQ(hm->match_len, 3);
}

TEST(PrefixIndex, LruEvictionOrderAndTouchOnLookup) {
  PrefixIndex idx;
  const int64_t a = idx.insert(key({1, 1}), 1, 2, {}, 1);
  const int64_t b = idx.insert(key({2, 2}), 2, 2, {}, 1);
  const int64_t c = idx.insert(key({3, 3}), 3, 2, {}, 1);
  // Touch `a` so `b` becomes LRU.
  ASSERT_TRUE(idx.lookup(key({1, 1})).has_value());
  auto dead = idx.evict_lru_unpinned();
  ASSERT_TRUE(dead.has_value());
  EXPECT_EQ(dead->uid, b);
  EXPECT_EQ(dead->seq, 2);
  // Next LRU is `c` (never touched after insert order a,b,c with a touched).
  dead = idx.evict_lru_unpinned();
  ASSERT_TRUE(dead.has_value());
  EXPECT_EQ(dead->uid, c);
  dead = idx.evict_lru_unpinned();
  ASSERT_TRUE(dead.has_value());
  EXPECT_EQ(dead->uid, a);
  EXPECT_FALSE(idx.evict_lru_unpinned().has_value());
  EXPECT_EQ(idx.size(), 0);
  EXPECT_EQ(idx.pages(), 0);
}

TEST(PrefixIndex, PinnedEntriesSkippedByEviction) {
  PrefixIndex idx;
  const int64_t a = idx.insert(key({1, 1}), 1, 2, {}, 1);
  const int64_t b = idx.insert(key({2, 2}), 2, 2, {}, 1);
  idx.pin(a);
  idx.pin(b);
  EXPECT_FALSE(idx.evict_lru_unpinned().has_value());
  idx.unpin(a);
  auto dead = idx.evict_lru_unpinned();
  ASSERT_TRUE(dead.has_value());
  EXPECT_EQ(dead->uid, a);
  // Double-pin requires matching unpins.
  idx.pin(b);
  idx.unpin(b);
  EXPECT_FALSE(idx.evict_lru_unpinned().has_value());
  idx.unpin(b);
  dead = idx.evict_lru_unpinned();
  ASSERT_TRUE(dead.has_value());
  EXPECT_EQ(dead->uid, b);
  // Unpin of an erased uid is a tolerated no-op.
  idx.unpin(b);
  idx.unpin(12345);
}

TEST(PrefixIndex, ValidatorInvalidationErasesAndRetries) {
  PrefixIndex idx;
  const int64_t stale = idx.insert(key({1, 2, 3, 4}), 1, 4, {7, 7}, 2);
  const int64_t fresh = idx.insert(key({1, 2}), 2, 2, {9}, 1);
  std::vector<int64_t> released;
  const auto validate = [&](const PrefixEntry& e) { return e.uid != stale; };
  const auto release = [&](const PrefixEntry& e) { released.push_back(e.uid); };
  // The deep (stale) entry is found first, fails validation, is erased, and
  // the lookup retries: the shallower valid entry is returned.
  auto hit = idx.lookup(key({1, 2, 3, 4}), validate, release);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->uid, fresh);
  EXPECT_EQ(hit->match_len, 2);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], stale);
  EXPECT_EQ(idx.size(), 1);
  // All entries invalid -> miss, everything released.
  released.clear();
  hit = idx.lookup(key({1, 2}), [](const PrefixEntry&) { return false; },
                   release);
  EXPECT_FALSE(hit.has_value());
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], fresh);
  EXPECT_EQ(idx.size(), 0);
  EXPECT_EQ(idx.pages(), 0);
}

TEST(PrefixIndex, ClearReleasesEverything) {
  PrefixIndex idx;
  idx.insert(key({1}), 1, 1, {}, 1);
  idx.insert(key({2, 3}), 2, 2, {}, 2);
  idx.pin(0);  // pinned entries are released by clear() too
  std::vector<int> seqs;
  idx.clear([&](const PrefixEntry& e) { seqs.push_back(e.seq); });
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(seqs, (std::vector<int>{1, 2}));
  EXPECT_EQ(idx.size(), 0);
  EXPECT_EQ(idx.pages(), 0);
  EXPECT_FALSE(idx.lookup(key({1})).has_value());
}

TEST(PrefixIndex, FuzzAgainstLinearScanReference) {
  // Reference model: a flat list of (key, uid). Longest-prefix lookup is a
  // linear scan; LRU is a vector reordered on touch. The radix tree must
  // agree on hit/miss and match length for every probe.
  Rng rng(99);
  PrefixIndex idx;
  struct Ref {
    std::vector<int> key;
    int64_t uid;
  };
  std::vector<Ref> ref;
  const auto rand_key = [&rng]() {
    const int len = rng.uniform_int(1, 12);
    std::vector<int> k(static_cast<size_t>(len));
    for (auto& t : k) t = rng.uniform_int(0, 3);  // small alphabet -> collisions
    return k;
  };
  for (int iter = 0; iter < 2000; ++iter) {
    const int op = rng.uniform_int(0, 2);
    if (op == 0) {
      auto k = rand_key();
      const int64_t uid = idx.insert(k, int(iter), int64_t(k.size()), {}, 1);
      const bool dup = std::any_of(ref.begin(), ref.end(), [&](const Ref& r) {
        return r.key == k;
      });
      EXPECT_EQ(uid < 0, dup) << "duplicate-key detection diverged";
      if (uid >= 0) ref.push_back({std::move(k), uid});
    } else if (op == 1 && !ref.empty()) {
      // Evict LRU-unpinned; reference: erase any one entry the index names.
      auto dead = idx.evict_lru_unpinned();
      ASSERT_TRUE(dead.has_value());
      const auto it = std::find_if(ref.begin(), ref.end(), [&](const Ref& r) {
        return r.uid == dead->uid;
      });
      ASSERT_TRUE(it != ref.end());
      ref.erase(it);
    } else {
      const auto probe = rand_key();
      size_t best = 0;
      for (const auto& r : ref) {
        size_t m = 0;
        while (m < r.key.size() && m < probe.size() && r.key[m] == probe[m])
          ++m;
        best = std::max(best, m);
      }
      const auto hit = idx.lookup(probe);
      EXPECT_EQ(hit.has_value(), best > 0);
      if (hit) {
        EXPECT_EQ(size_t(hit->match_len), best);
        const auto it = std::find_if(ref.begin(), ref.end(),
                                     [&](const Ref& r) {
                                       return r.uid == hit->uid;
                                     });
        ASSERT_TRUE(it != ref.end());
        // The returned entry must actually share `best` tokens.
        ASSERT_GE(it->key.size(), best);
        for (size_t m = 0; m < best; ++m) EXPECT_EQ(it->key[m], probe[m]);
      }
    }
  }
  ASSERT_EQ(idx.size(), int64_t(ref.size()));
  idx.clear([](const PrefixEntry&) {});
  EXPECT_EQ(idx.size(), 0);
  EXPECT_EQ(idx.pages(), 0);
}

}  // namespace
}  // namespace qserve
