// Speculative decoding end to end on the real quantized CPU engine:
// a layer-skip draft (the target's first 2 of 4 layers, sharing embedding
// and LM head) proposes k tokens per step, the target scores all k+1
// positions in ONE batched verify forward, the longest matching prefix is
// accepted, and the rejected tail is rolled back from both KV caches with
// truncate_sequence. Greedy acceptance keeps the streams bitwise identical
// to the non-speculative engine — this example checks that claim on every
// request it runs.
#include <cstdio>

#include "serving/engine.h"

using namespace qserve;

namespace {

ModelConfig demo_config() {
  ModelConfig cfg;
  cfg.name = "spec-demo";
  cfg.hidden = 256;
  cfg.n_layers = 4;
  cfg.n_heads = 4;
  cfg.n_kv_heads = 2;
  cfg.head_dim = 64;
  cfg.ffn_dim = 512;
  cfg.vocab = 512;
  return cfg;
}

std::vector<std::vector<int>> run(QuantizedModel* target,
                                  QuantizedModel* draft, int lookahead_k,
                                  EngineStats* stats_out) {
  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  cfg.speculative.lookahead_k = lookahead_k;
  ServingEngine engine(target, draft, cfg);
  std::vector<int> ids;
  for (int i = 0; i < 4; ++i) {
    std::vector<int> prompt;
    for (int t = 0; t < 6 + 2 * i; ++t) prompt.push_back((13 * t + i) % 512);
    ids.push_back(engine.submit(prompt, 24));
  }
  *stats_out = engine.run_to_completion();
  std::vector<std::vector<int>> streams;
  for (int id : ids) streams.push_back(engine.request(id).generated);
  return streams;
}

}  // namespace

int main() {
  const ModelWeights target_w = make_synthetic_weights(demo_config());
  ModelWeights draft_w = target_w;  // layer-skip self-draft: first 2 layers
  draft_w.cfg.n_layers = 2;
  draft_w.layers.resize(2);

  QuantizedModel target(target_w, QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel draft(draft_w, QuantSchemeConfig::qserve_w4a8kv4_g128());
  QuantizedModel baseline(target_w,
                          QuantSchemeConfig::qserve_w4a8kv4_g128());

  std::printf("4 requests, W4A8KV4 target (4 layers) + layer-skip draft "
              "(2 layers), k=4\n\n");

  EngineStats spec_stats, base_stats;
  const auto spec_streams = run(&target, &draft, /*lookahead_k=*/4,
                                &spec_stats);
  const auto base_streams = run(&baseline, nullptr, 0, &base_stats);

  std::printf("speculative engine: %lld steps (%lld verify steps), "
              "decode %.1f tok/s\n",
              static_cast<long long>(spec_stats.steps),
              static_cast<long long>(spec_stats.speculative_steps),
              spec_stats.decode_tokens_per_second);
  std::printf("  proposed %lld draft tokens, accepted %lld "
              "(acceptance %.0f%%)\n",
              static_cast<long long>(spec_stats.proposed_tokens),
              static_cast<long long>(spec_stats.accepted_tokens),
              100.0 * spec_stats.acceptance_rate);
  std::printf("  target forwards per decode token: %.2f (baseline spends "
              "exactly 1.00)\n",
              spec_stats.target_forwards_per_decode_token);
  std::printf("baseline engine:    %lld steps, decode %.1f tok/s\n\n",
              static_cast<long long>(base_stats.steps),
              base_stats.decode_tokens_per_second);

  bool identical = spec_streams == base_streams;
  std::printf("token streams bitwise identical to the baseline: %s\n",
              identical ? "yes" : "NO — BUG");
  return identical ? 0 : 1;
}
