// Paged KV cache walkthrough: page accounting, per-head dynamic quantization,
// precision/accuracy trade-off, and what SmoothAttention buys KV4.
#include <cstdio>

#include "common/rng.h"
#include "kvcache/paged_kv_cache.h"
#include "qoq/smooth_attention.h"

using namespace qserve;

int main() {
  KvCacheConfig cfg;
  cfg.n_kv_heads = 4;
  cfg.head_dim = 64;
  cfg.page_size = 16;
  cfg.precision = KvPrecision::kInt4;
  cfg.max_pages = 64;

  std::printf("page size: %d tokens, bytes/page: %lld (INT4 codes + "
              "in-page FP16 scales/zeros per head)\n",
              cfg.page_size, static_cast<long long>(kv_page_bytes(cfg)));

  PagedKvCache cache(cfg);
  Rng rng(3);
  const int span = cfg.n_kv_heads * cfg.head_dim;

  // Two sequences of different lengths share the pool.
  const int a = cache.alloc_sequence();
  const int b = cache.alloc_sequence();
  std::vector<float> k(static_cast<size_t>(span)), v(k);
  auto fill = [&](float outlier) {
    for (auto& x : k) x = rng.normal();
    for (auto& x : v) x = rng.normal();
    k[3] = outlier;  // fixed outlier channel in head 0, like real Keys
  };
  for (int t = 0; t < 40; ++t) {
    fill(12.0f);
    cache.append(a, k.data(), v.data());
  }
  for (int t = 0; t < 10; ++t) {
    fill(12.0f);
    cache.append(b, k.data(), v.data());
  }
  std::printf("seq A: %lld tokens, seq B: %lld tokens -> %lld pages in use "
              "(%lld free)\n",
              static_cast<long long>(cache.seq_len(a)),
              static_cast<long long>(cache.seq_len(b)),
              static_cast<long long>(cache.pages_in_use()),
              static_cast<long long>(cache.free_pages()));

  cache.free_sequence(a);
  std::printf("after freeing seq A: %lld pages in use\n",
              static_cast<long long>(cache.pages_in_use()));

  // Accuracy comparison across KV precisions, with and without smoothing.
  std::printf("\nKV round-trip relative error (head with a 12x outlier "
              "channel):\n");
  for (KvPrecision p :
       {KvPrecision::kFp16, KvPrecision::kInt8, KvPrecision::kInt4}) {
    KvCacheConfig pc = cfg;
    pc.precision = p;
    PagedKvCache c2(pc);
    const int s = c2.alloc_sequence();
    Rng r2(7);
    std::vector<std::vector<float>> kept;
    for (int t = 0; t < 32; ++t) {
      std::vector<float> kk(static_cast<size_t>(span));
      for (auto& x : kk) x = r2.normal();
      kk[3] = 12.0f;
      c2.append(s, kk.data(), kk.data());
      kept.push_back(std::move(kk));
    }
    Tensor kd, vd;
    c2.gather(s, kd, vd);
    double err = 0, mag = 0;
    for (int t = 0; t < 32; ++t)
      for (int i = 0; i < span; ++i) {
        const double d = kd.at2(t, i) - kept[size_t(t)][size_t(i)];
        err += d * d;
        mag += double(kept[size_t(t)][size_t(i)]) *
               kept[size_t(t)][size_t(i)];
      }
    std::printf("  %-6s %.4f%%\n",
                p == KvPrecision::kFp16  ? "FP16"
                : p == KvPrecision::kInt8 ? "INT8"
                                          : "INT4",
                100.0 * err / mag);
  }
  std::printf("\n(per-head dynamic scales keep INT8 nearly lossless; INT4 "
              "suffers from the outlier channel — which is exactly what "
              "SmoothAttention removes before the cache sees the keys)\n");
  return 0;
}
