// Parallel sampling end to end on the real quantized CPU engine: one prompt,
// RequestOptions::n = 4 completions. The submitted request prefills the
// prompt once; at first-token time the engine forks three sibling requests
// whose KV sequences share the prompt's pages copy-on-write through the
// prefix cache — each sibling's admission forks the cached page-aligned
// prefix (refcount++, zero bytes copied) and prefills only the unaligned
// tail. The example prints how many pages were shared vs. copied, and
// demonstrates a true CoW copy with an unaligned model-level fork at the
// end. With temperature > 0 the four streams diverge; at temperature 0 they
// would all repeat the primary's stream.
#include <cstdio>

#include "serving/engine.h"

using namespace qserve;

namespace {

ModelConfig demo_config() {
  ModelConfig cfg;
  cfg.name = "parallel-sampling-demo";
  cfg.hidden = 256;
  cfg.n_layers = 4;
  cfg.n_heads = 4;
  cfg.n_kv_heads = 2;
  cfg.head_dim = 64;
  cfg.ffn_dim = 512;
  cfg.vocab = 512;
  return cfg;
}

}  // namespace

int main() {
  const ModelWeights weights = make_synthetic_weights(demo_config());
  QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());

  EngineConfig cfg;
  cfg.prefix_caching = true;  // siblings fork the prompt's cached pages
  cfg.temperature = 0.8f;
  cfg.sample_seed = 42;
  cfg.scheduler.prefill_chunk = 32;

  ServingEngine engine(&model, cfg);
  std::vector<int> prompt;
  for (int t = 0; t < 48; ++t) prompt.push_back((17 * t + 3) % 512);

  RequestOptions opts;
  opts.n = 4;
  opts.max_new_tokens = 16;
  std::printf("1 prompt (%zu tokens), n=%d sampled completions, "
              "temperature %.1f, W4A8KV4\n\n",
              prompt.size(), opts.n, double(cfg.temperature));

  const int primary = engine.submit(prompt, opts, nullptr, nullptr);
  const EngineStats stats = engine.run_to_completion();

  const Request& rp = engine.request(primary);
  std::vector<int> ids{primary};
  ids.insert(ids.end(), rp.sibling_ids.begin(), rp.sibling_ids.end());
  for (const int id : ids) {
    const Request& r = engine.request(id);
    std::printf("sample %d:", r.sample_index);
    for (const int tok : r.generated) std::printf(" %d", tok);
    std::printf("\n");
  }

  // Page accounting: each sibling's fork bumped refcounts on the prompt's
  // cached pages instead of copying them; engine forks are page-aligned, so
  // no sibling ever wrote into a shared page.
  std::printf("\nprompt KV reused from shared pages: %lld tokens "
              "(%lld prefill tokens skipped)\n",
              static_cast<long long>(stats.prefix_tokens_reused),
              static_cast<long long>(stats.prefill_tokens_saved));
  std::printf("copy-on-write page copies during serving: %lld (forks are "
              "page-aligned)\n",
              static_cast<long long>(stats.cow_page_copies));
  std::printf("prefix cache after drain: %lld entries holding %lld pages\n",
              static_cast<long long>(stats.prefix_cache_entries),
              static_cast<long long>(stats.prefix_cache_pages));

  // An UNALIGNED fork at the model level shows the CoW machinery itself:
  // fork mid-page, append to the fork, and the shared boundary page is
  // copied before the write — the donor's bytes never change.
  engine.clear_prefix_cache();
  const int src = model.begin_sequence();
  model.prefill(src, std::vector<int>(prompt.begin(), prompt.begin() + 10));
  const int64_t copies_before = model.kv_cache().cow_page_copies();
  const int fork = model.fork_sequence(src, /*upto_len=*/10);  // mid-page
  const int64_t shared = model.kv_cache().shared_pages();
  // First write into the shared tail page: the cache copies it privately.
  model.prefill_chunk(fork, {1, 2, 3}, /*pos0=*/10);
  const int64_t copies = model.kv_cache().cow_page_copies() - copies_before;
  std::printf("\nunaligned model-level fork at token 10: %lld shared pages, "
              "appending to the fork copied %lld page(s) on write\n",
              static_cast<long long>(shared),
              static_cast<long long>(copies));

  model.end_sequence(src);
  model.end_sequence(fork);
  const bool clean = model.kv_cache().pages_in_use() == 0 &&
                     model.kv_cache().shared_pages() == 0;
  std::printf("pool drained to zero pages: %s\n", clean ? "yes" : "NO — BUG");
  return clean && copies > 0 ? 0 : 1;
}
