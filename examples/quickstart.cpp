// Quickstart: quantize a model with QoQ (W4A8KV4) and compare it against the
// FP32 reference — the 60-second tour of the public API.
//
//   1. build a (synthetic) transformer + reference executor
//   2. capture calibration activations
//   3. run the QoQ transform pipeline (rotation, SmoothAttention, smoothing,
//      reordering, clipping)
//   4. quantize to W4A8KV4 g128 and run generation on the quantized engine
#include <cstdio>

#include "eval/harness.h"
#include "model/qoq_quantizer.h"
#include "model/quantized_model.h"
#include "model/reference_model.h"

using namespace qserve;

int main() {
  // 1. A miniature Llama-style model with the activation/key outlier
  //    pathologies of real LLMs (see DESIGN.md for the substitution).
  const ModelConfig cfg = toy_config(/*n_layers=*/2);
  const ModelWeights weights = make_synthetic_weights(cfg);
  const ReferenceModel reference(&weights);
  std::printf("model: %s — hidden %ld, %d layers, %d heads (%d KV), "
              "%.1fM params\n",
              cfg.name.c_str(), long(cfg.hidden), cfg.n_layers, cfg.n_heads,
              cfg.n_kv_heads, double(cfg.param_count()) / 1e6);

  // 2. Calibration: one pass over sample tokens, capturing per-layer inputs,
  //    post-RoPE keys and block intermediates.
  std::vector<int> calib_tokens;
  for (int i = 0; i < 32; ++i) calib_tokens.push_back((13 * i + 7) % 512);
  CalibrationData calib;
  reference.forward_calibrate(calib_tokens, &calib);

  // 3. QoQ offline transforms (§4 of the paper); all exact in FP32.
  const ModelWeights transformed = qoq_transform(weights, calib, QoQOptions{});

  // 4. Quantize to W4A8KV4 g128 and serve.
  QuantizedModel engine(transformed,
                        QuantSchemeConfig::qserve_w4a8kv4_g128());

  const std::vector<int> prompt = {42, 7, 99, 123};
  const int seq = engine.begin_sequence();
  Tensor logits = engine.prefill(seq, prompt);
  std::printf("\ngenerating 12 tokens (greedy):\n  prompt: ");
  for (int t : prompt) std::printf("%d ", t);
  std::printf("\n  output: ");
  int token = 0;
  for (int step = 0; step < 12; ++step) {
    int64_t best = 0;
    for (int64_t v = 1; v < logits.numel(); ++v)
      if (logits[v] > logits[best]) best = v;
    token = static_cast<int>(best);
    std::printf("%d ", token);
    logits = engine.decode_step(seq, token);
  }
  engine.end_sequence(seq);
  std::printf("\n");

  // How close is the quantized model to the reference?
  const EvalCorpus corpus = build_eval_corpus(reference);
  ForwardFn ref_fwd = [&](const std::vector<int>& t) {
    return reference.forward(t);
  };
  QuantizedModel qoq_model(transformed,
                           QuantSchemeConfig::qserve_w4a8kv4_g128());
  ForwardFn qoq_fwd = [&](const std::vector<int>& t) {
    return qoq_model.forward(t);
  };
  std::printf("\npseudo-perplexity: FP32 reference %.3f | QoQ W4A8KV4 %.3f\n",
              pseudo_perplexity(ref_fwd, corpus.eval),
              pseudo_perplexity(qoq_fwd, corpus.eval));
  std::printf("KL(reference || quantized) = %.5f nats/token\n",
              mean_kl_to_reference(ref_fwd, qoq_fwd, corpus.eval));
  return 0;
}
