// QoQ pipeline walkthrough: applies each offline transform one at a time and
// prints the statistics it targets — outlier ratios, chosen clip ratios,
// level-2 scale distributions — so you can see *why* each step exists.
#include <cstdio>

#include "model/qoq_quantizer.h"
#include "model/reference_model.h"
#include "qoq/smooth_attention.h"
#include "quant/quantize.h"

using namespace qserve;

namespace {

void report(const char* label, const ModelWeights& weights,
            const std::vector<int>& tokens) {
  const ReferenceModel ref(&weights);
  CalibrationData calib;
  ref.forward_calibrate(tokens, &calib);
  std::printf("%-34s attn-input outliers %5.1fx | key outliers %5.1fx | "
              "ffn-act outliers %5.1fx\n",
              label, channel_outlier_ratio(calib.attn_input[0]),
              channel_outlier_ratio(calib.post_rope_keys[0]),
              channel_outlier_ratio(calib.ffn_act[0]));
}

}  // namespace

int main() {
  const ModelConfig cfg = toy_config(2);
  const ModelWeights weights = make_synthetic_weights(cfg);
  std::vector<int> tokens;
  for (int i = 0; i < 32; ++i) tokens.push_back((17 * i + 3) % 512);

  CalibrationData calib;
  ReferenceModel(&weights).forward_calibrate(tokens, &calib);

  std::printf("== QoQ transform pipeline, step by step ==\n");
  report("original", weights, tokens);

  QoQOptions opt;
  opt.rotate_inputs = false;
  opt.smooth_attention = false;
  opt.smooth_outputs = false;
  opt.reorder_channels = false;
  opt.weight_clip = false;

  opt.rotate_inputs = true;
  report("+ block input rotation", qoq_transform(weights, calib, opt),
         tokens);

  opt.smooth_attention = true;
  report("+ SmoothAttention", qoq_transform(weights, calib, opt), tokens);

  opt.smooth_outputs = true;
  report("+ block output smoothing", qoq_transform(weights, calib, opt),
         tokens);

  opt.reorder_channels = true;
  report("+ channel reordering", qoq_transform(weights, calib, opt), tokens);

  opt.weight_clip = true;
  const ModelWeights final_weights = qoq_transform(weights, calib, opt);
  report("+ weight clipping (full QoQ)", final_weights, tokens);

  // Progressive quantization statistics on the transformed weights.
  std::printf("\n== progressive group quantization of layer-0 wq ==\n");
  const auto q = quantize_progressive(final_weights.layers[0].wq,
                                      {.group = 128});
  int hist[18] = {};
  for (int64_t i = 0; i < q.s1.numel(); ++i) ++hist[q.s1[i]];
  std::printf("level-2 scale (s1) histogram [1..17]:\n");
  for (int s = 1; s <= 17; ++s)
    if (hist[s]) std::printf("  s1=%-3d %d groups\n", s, hist[s]);
  const I32Tensor codes = dequantize_level1_codes(q);
  int32_t lo = 0, hi = 0;
  for (int64_t i = 0; i < codes.numel(); ++i) {
    lo = std::min(lo, codes[i]);
    hi = std::max(hi, codes[i]);
  }
  std::printf("level-1 reconstructed code range: [%d, %d] — inside INT8, as "
              "the protective range guarantees\n", lo, hi);
  return 0;
}
