// Serving demo: (1) stream tokens from the real continuous-batching engine
// on the CPU quantized model — requests join and leave the batch in flight,
// and each step executes ONE batched forward across every request's rows;
// (2) use the GPU performance simulator to size a deployment of a real model.
#include <cstdio>

#include "serving/engine.h"
#include "simulator/serving_model.h"

using namespace qserve;

int main() {
  // ---- part 1: actual serving on the CPU engine ------------------------------
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());

  EngineConfig cfg;
  cfg.scheduler.max_batch = 4;
  cfg.temperature = 0.8f;
  ServingEngine engine(&model, cfg);

  std::printf("submitting 6 streaming requests with mixed lengths...\n");
  // Streaming API: tokens arrive through per-request callbacks during the
  // step that sampled them; finish fires exactly once per request. drain()
  // pumps the engine until idle — no polling of request state needed.
  std::vector<int> ids;
  for (int i = 0; i < 6; ++i) {
    std::vector<int> prompt;
    for (int t = 0; t < 4 + i * 2; ++t) prompt.push_back((t * 31 + i) % 512);
    RequestOptions opts;
    opts.max_new_tokens = 6 + (i % 3) * 4;
    ids.push_back(engine.submit(
        prompt, opts,
        [](const Request& r, int token) {
          if (r.generated.size() == 1)
            std::printf("  request %d streamed its first token: %d\n", r.id,
                        token);
        },
        [](const Request& r) {
          std::printf("  request %d finished with %zu tokens\n", r.id,
                      r.generated.size());
        }));
  }
  const EngineStats stats = engine.drain();

  std::printf("engine finished in %lld steps (peak batch %d requests, "
              "%lld rows; mean %.1f rows/step)\n",
              static_cast<long long>(stats.steps), stats.peak_batch,
              static_cast<long long>(stats.peak_batch_tokens),
              stats.mean_tokens_per_step);
  std::printf("  prefill tokens: %lld, first tokens: %lld, decode tokens: "
              "%lld, preemptions: %lld\n",
              static_cast<long long>(stats.prefill_tokens),
              static_cast<long long>(stats.first_tokens),
              static_cast<long long>(stats.decode_tokens),
              static_cast<long long>(stats.preemptions));
  std::printf("  CPU decode throughput: %.1f tok/s (prefill %.1f tok/s)\n",
              stats.decode_tokens_per_second,
              stats.prefill_tokens_per_second);
  std::printf("  mean time-to-first-token: %.1f steps, completion: %.1f\n",
              stats.mean_first_token_steps, stats.mean_completion_steps);
  for (int id : ids) {
    const Request& r = engine.request(id);
    std::printf("  request %d: prompt %zu -> %zu tokens (first token @step "
                "%lld)\n",
                id, r.prompt.size(), r.generated.size(),
                static_cast<long long>(r.first_token_step));
  }

  // ---- part 2: capacity planning with the GPU simulator -----------------------
  using namespace qserve::sim;
  std::printf("\nsizing Llama-3-8B deployments (1024-in / 512-out):\n");
  const ServingWorkload wl;
  for (const DeviceSpec& dev : {a100_80g(), l40s_48g()}) {
    const System variant = qserve_variant_for(dev);
    const auto profile = system_profile(variant);
    const auto est =
        max_throughput(dev, profile, model_by_name("Llama-3-8B"), wl);
    std::printf("  %-12s %-24s batch %-4d -> %.0f tok/s "
                "(prefill %.2fs + decode %.2fs per round)\n",
                dev.name.c_str(), profile.name.c_str(), est.batch,
                est.tokens_per_second, est.prefill_seconds,
                est.decode_seconds);
  }
  return 0;
}
