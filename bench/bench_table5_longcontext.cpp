// Table 5 reproduction (synthetic proxy): long-context fidelity of QoQ
// W4A8KV4 g128 vs the FP16/BF16 reference — greedy-continuation agreement
// over long prompts (the LongBench substitute; DESIGN.md §1).
#include <cstdio>

#include "accuracy_common.h"
#include "bench_util.h"

using namespace qserve;
using namespace qserve::benchacc;
using namespace qserve::benchutil;

int main() {
  AccuracySetup setup(toy_config(2));
  ForwardFn ref_fwd = [&](const std::vector<int>& t) {
    return setup.ref.forward(t);
  };

  header("Table 5 (synthetic proxy): long-context greedy agreement vs BF16");
  row({"scheme", "agreement@16", "pseudo-ppl(long)"}, 22);

  // Reference against itself (sanity row).
  row({"BF16", fmt(100 * greedy_agreement(ref_fwd, ref_fwd,
                                          setup.corpus.long_prompts, 16), 1),
       fmt(pseudo_perplexity(ref_fwd, setup.corpus.long_prompts), 2)},
      22);

  struct Row {
    const char* name;
    QoQOptions qoq;
    QuantSchemeConfig scheme;
  };
  const std::vector<Row> rows = {
      {"QoQ W4A8KV4 g128", QoQOptions{},
       QuantSchemeConfig::qserve_w4a8kv4_g128()},
      {"RTN W4A8KV4 g128", rtn_options(),
       QuantSchemeConfig::qserve_w4a8kv4_g128()},
      {"Atom W4A4 g128", rtn_options(), QuantSchemeConfig::atom_w4a4()},
  };
  double qoq_agreement = -1;
  for (const auto& r : rows) {
    const ModelWeights transformed =
        qoq_transform(setup.weights, setup.calib, r.qoq);
    QuantizedModel qm(transformed, r.scheme);
    ForwardFn fwd = [&](const std::vector<int>& t) { return qm.forward(t); };
    const double agree =
        greedy_agreement(ref_fwd, fwd, setup.corpus.long_prompts, 16);
    if (qoq_agreement < 0) qoq_agreement = agree;
    row({r.name, fmt(100 * agree, 1),
         fmt(pseudo_perplexity(fwd, setup.corpus.long_prompts), 2)}, 22);
  }

  // Sliding-window rows: QoQ with windowed KV. A window covering the whole
  // context (sink 16 + window 112 >= the 88-token max context here) must
  // reproduce full attention bit for bit, so its agreement row must equal the
  // plain QoQ row exactly. A genuinely short window (sink 16 + window 32)
  // reports how much greedy agreement StreamingLLM-style retention keeps on
  // this synthetic corpus.
  const ModelWeights qoq_w =
      qoq_transform(setup.weights, setup.calib, QoQOptions{});
  QuantizedModel wm(qoq_w, QuantSchemeConfig::qserve_w4a8kv4_g128());
  auto windowed_fwd = [&](int64_t sink, int64_t window) {
    return ForwardFn([&wm, sink, window](const std::vector<int>& t) {
      const int seq = wm.begin_sequence();
      // Slack must cover the one-shot append span (whole prompt + horizon).
      wm.set_sequence_window(seq, sink, window, 96);
      StepSeqChunk chunk;
      chunk.seq = seq;
      chunk.tokens = t;
      chunk.logit_rows = static_cast<int>(t.size());
      BatchedStep step;
      step.chunks.push_back(chunk);
      Tensor logits = wm.forward_step(step);
      wm.end_sequence(seq);
      return logits;
    });
  };
  ForwardFn covering = windowed_fwd(16, 112);
  const double covering_agree =
      greedy_agreement(ref_fwd, covering, setup.corpus.long_prompts, 16);
  row({"QoQ win>=ctx (112+16)", fmt(100 * covering_agree, 1),
       fmt(pseudo_perplexity(covering, setup.corpus.long_prompts), 2)}, 22);
  ForwardFn windowed = windowed_fwd(16, 32);
  row({"QoQ win 32 sink 16",
       fmt(100 * greedy_agreement(ref_fwd, windowed,
                                  setup.corpus.long_prompts, 16), 1),
       fmt(pseudo_perplexity(windowed, setup.corpus.long_prompts), 2)}, 22);

  std::printf("\n(paper Table 5: QoQ matches BF16 within 0.14 LongBench "
              "points on average — the reproducible claim is that QoQ's "
              "long-context agreement stays near the reference while "
              "coarser schemes drift; a window covering the context is "
              "bitwise full attention, so its row must equal QoQ's)\n");
  if (covering_agree != qoq_agreement) {
    std::fprintf(stderr,
                 "FAIL: covering-window agreement %.4f != full-attention "
                 "QoQ agreement %.4f (window >= context must be bitwise "
                 "identical)\n",
                 covering_agree, qoq_agreement);
    return 1;
  }
  return 0;
}
