// Table 5 reproduction (synthetic proxy): long-context fidelity of QoQ
// W4A8KV4 g128 vs the FP16/BF16 reference — greedy-continuation agreement
// over long prompts (the LongBench substitute; DESIGN.md §1).
#include <cstdio>

#include "accuracy_common.h"
#include "bench_util.h"

using namespace qserve;
using namespace qserve::benchacc;
using namespace qserve::benchutil;

int main() {
  AccuracySetup setup(toy_config(2));
  ForwardFn ref_fwd = [&](const std::vector<int>& t) {
    return setup.ref.forward(t);
  };

  header("Table 5 (synthetic proxy): long-context greedy agreement vs BF16");
  row({"scheme", "agreement@16", "pseudo-ppl(long)"}, 22);

  // Reference against itself (sanity row).
  row({"BF16", fmt(100 * greedy_agreement(ref_fwd, ref_fwd,
                                          setup.corpus.long_prompts, 16), 1),
       fmt(pseudo_perplexity(ref_fwd, setup.corpus.long_prompts), 2)},
      22);

  struct Row {
    const char* name;
    QoQOptions qoq;
    QuantSchemeConfig scheme;
  };
  const std::vector<Row> rows = {
      {"QoQ W4A8KV4 g128", QoQOptions{},
       QuantSchemeConfig::qserve_w4a8kv4_g128()},
      {"RTN W4A8KV4 g128", rtn_options(),
       QuantSchemeConfig::qserve_w4a8kv4_g128()},
      {"Atom W4A4 g128", rtn_options(), QuantSchemeConfig::atom_w4a4()},
  };
  for (const auto& r : rows) {
    const ModelWeights transformed =
        qoq_transform(setup.weights, setup.calib, r.qoq);
    QuantizedModel qm(transformed, r.scheme);
    ForwardFn fwd = [&](const std::vector<int>& t) { return qm.forward(t); };
    row({r.name,
         fmt(100 * greedy_agreement(ref_fwd, fwd, setup.corpus.long_prompts,
                                    16), 1),
         fmt(pseudo_perplexity(fwd, setup.corpus.long_prompts), 2)},
        22);
  }
  std::printf("\n(paper Table 5: QoQ matches BF16 within 0.14 LongBench "
              "points on average — the reproducible claim is that QoQ's "
              "long-context agreement stays near the reference while "
              "coarser schemes drift)\n");
  return 0;
}
