// Tensor-parallel scaling sweep: decode throughput and time-to-first-token at
// 1/2/4 shards on the toy MHA model (4 KV heads, so the plan shards evenly up
// to 4 ways). Shard pools partition the engine's thread budget, so on a fixed
// budget the curve is expected near-flat with a small reduction/concat cost —
// the point of the rows is catching regressions in that boundary, not
// advertising speedup. Token streams at every shard count are verified
// bitwise identical to the single-shard engine before any number is reported.
//
// Invoked with `--json <path>` it writes regression records for
// bench/check_regression.py. Rows reuse the GemmBenchRecord schema:
// `serving_tp_decode_sN` carries decode tokens/second in `gops`;
// `serving_tp_ttft_sN` carries first-tokens/second (1e3 / TTFT-ms). m = the
// shard count, n = concurrent requests, k = new tokens per request.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "kernels/cpu/isa.h"
#include "serving/engine.h"

using namespace qserve;

namespace {

constexpr int kRequests = 4;
constexpr int kPrompt = 16;
constexpr int kMaxNew = 32;

std::vector<int> request_prompt(int r) {
  std::vector<int> p;
  p.reserve(kPrompt);
  for (int i = 0; i < kPrompt; ++i) p.push_back((41 * r + 7 * i + 3) % 512);
  return p;
}

struct RunResult {
  double decode_tps = 0;
  double ttft_ms = 0;  // first request, admission to first token
  std::vector<std::vector<int>> streams;
};

RunResult run(const ModelWeights& weights, int shards) {
  QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_per_channel(),
                       TpConfig{shards});
  ServingEngine engine(&model, EngineConfig{});
  std::vector<int> ids;
  for (int r = 0; r < kRequests; ++r)
    ids.push_back(engine.submit(request_prompt(r), kMaxNew));

  RunResult out;
  const auto t0 = std::chrono::steady_clock::now();
  while (engine.step()) {
    if (out.ttft_ms <= 0 && engine.request(ids[0]).first_token_step >= 0) {
      out.ttft_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    }
  }
  out.decode_tps = engine.stats().decode_tokens_per_second;
  for (int id : ids) out.streams.push_back(engine.request(id).generated);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const ModelWeights weights = make_synthetic_weights(toy_config_mha(1));
  std::vector<benchutil::GemmBenchRecord> rows;
  std::vector<cpu::Isa> isas{cpu::Isa::kScalar};
  if (cpu::detected_isa() != cpu::Isa::kScalar)
    isas.push_back(cpu::detected_isa());

  std::printf(
      "%d requests x %d new tokens, toy MHA W4A8KV4 model, %d threads\n",
      kRequests, kMaxNew, num_threads());
  std::printf("%-8s %-8s %16s %12s %10s\n", "isa", "shards", "decode tok/s",
              "TTFT ms", "streams");
  for (cpu::Isa isa : isas) {
    cpu::set_isa(isa);
    const char* iname = cpu::isa_name(isa);
    std::vector<std::vector<int>> reference;
    for (const int shards : {1, 2, 4}) {
      // Best-of-2 per metric: the engine is deterministic, the wall clock is
      // not, and these rows gate CI like every other bench's.
      RunResult best = run(weights, shards);
      const RunResult again = run(weights, shards);
      if (best.streams != again.streams) {
        std::printf("FAIL: repeat run diverged at %d shards (%s)\n", shards,
                    iname);
        return 1;
      }
      best.decode_tps = std::max(best.decode_tps, again.decode_tps);
      best.ttft_ms = std::min(best.ttft_ms, again.ttft_ms);
      if (shards == 1) {
        reference = best.streams;
      } else if (best.streams != reference) {
        std::printf(
            "FAIL: %d-shard streams diverged from the single-shard engine "
            "(%s)\n",
            shards, iname);
        return 1;
      }
      std::printf("%-8s %-8d %16.1f %12.2f %10s\n", iname, shards,
                  best.decode_tps, best.ttft_ms, "ok");

      benchutil::GemmBenchRecord d;
      d.name = "serving_tp_decode_s" + std::to_string(shards);
      d.isa = iname;
      d.m = shards;
      d.n = kRequests;
      d.k = kMaxNew;
      d.seconds = best.decode_tps > 0 ? 1.0 / best.decode_tps : 0;
      d.gops = best.decode_tps;
      rows.push_back(d);

      benchutil::GemmBenchRecord t;
      t.name = "serving_tp_ttft_s" + std::to_string(shards);
      t.isa = iname;
      t.m = shards;
      t.n = kRequests;
      t.k = kMaxNew;
      t.seconds = best.ttft_ms / 1e3;
      t.gops = best.ttft_ms > 0 ? 1e3 / best.ttft_ms : 0;
      rows.push_back(t);
    }
    cpu::clear_isa_override();
  }

  if (!json_path.empty()) {
    if (!benchutil::write_bench_json(json_path,
                                     cpu::isa_name(cpu::detected_isa()),
                                     num_threads(), rows))
      return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
