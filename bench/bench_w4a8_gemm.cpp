// Google-benchmark microbenchmarks of the CPU kernel implementations: the
// W4A8 GEMM family (per-channel, per-group, streamed/SWAR), the baselines
// they are compared against, and the RLP dequantization primitives. These
// measure the *reproduction's* CPU kernels — wall-clock GPU claims live in
// the simulator benches.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "kernels/gemm.h"
#include "kernels/rlp.h"
#include "kernels/weight_layout.h"
#include "quant/quantize.h"

namespace qserve {
namespace {

struct GemmSetup {
  Tensor x, w;
  QuantizedActs qx, qx4;
  W8PerChannel w8;
  W4PerChannel w4c;
  W4PerGroup w4g;
  W4A4PerGroup w44;
  ReorderedW4 stream;
  ReorderedGroupMeta meta;

  GemmSetup(int64_t m, int64_t n, int64_t k) {
    Rng rng(1);
    x = Tensor({m, k});
    w = Tensor({n, k});
    for (int64_t i = 0; i < x.numel(); ++i) x[i] = rng.normal();
    for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
    qx = quantize_acts_per_token(x);
    qx4 = quantize_acts_per_token_int4(x);
    w8 = quantize_w8_per_channel(w);
    w4c = quantize_w4_per_channel(w);
    w4g = quantize_progressive(w, {.group = 128});
    w44 = quantize_w4a4_per_group(w, 128);
    stream = reorder_w4_for_compute(w4g.qw);
    meta = reorder_group_meta(w4g);
  }
};

const GemmSetup& setup() {
  static GemmSetup* s = new GemmSetup(8, 256, 512);
  return *s;
}

void BM_GemmW8A8(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state) benchmark::DoNotOptimize(gemm_w8a8(s.qx, s.w8));
}
BENCHMARK(BM_GemmW8A8);

void BM_GemmW4A8PerChannel(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(gemm_w4a8_per_channel(s.qx, s.w4c));
}
BENCHMARK(BM_GemmW4A8PerChannel);

void BM_GemmW4A8PerGroup(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(gemm_w4a8_per_group(s.qx, s.w4g));
}
BENCHMARK(BM_GemmW4A8PerGroup);

void BM_GemmW4A8Streamed(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        gemm_w4a8_per_group_streamed(s.qx, s.w4g, s.stream, s.meta));
}
BENCHMARK(BM_GemmW4A8Streamed);

void BM_GemmW4A4Atom(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(gemm_w4a4_atom(s.qx4, s.w44));
}
BENCHMARK(BM_GemmW4A4Atom);

void BM_GemmF32Reference(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state) benchmark::DoNotOptimize(gemm_f32_ref(s.x, s.w));
}
BENCHMARK(BM_GemmF32Reference);

// --- quantizers ----------------------------------------------------------------

void BM_QuantizeProgressive(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(quantize_progressive(s.w, {.group = 128}));
}
BENCHMARK(BM_QuantizeProgressive);

void BM_QuantizeActsPerToken(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(quantize_acts_per_token(s.x));
}
BENCHMARK(BM_QuantizeActsPerToken);

// --- RLP primitives ---------------------------------------------------------------

void BM_RlpDequantSubAfterMul(benchmark::State& state) {
  uint32_t acc = 0;
  for (auto _ : state) {
    for (uint32_t i = 0; i < 1024; ++i) {
      acc ^= dequant4_sub_after_mul(0x0F3A2C1Du ^ i, 7, 5);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 1024 * 8);
}
BENCHMARK(BM_RlpDequantSubAfterMul);

void BM_ScalarDequantReference(benchmark::State& state) {
  // Scalar one-code-at-a-time dequant for comparison with the SWAR path.
  int acc = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      for (int l = 0; l < 8; ++l) {
        const int q = (i >> l) & 0xF;
        acc ^= (q - 5) * 7;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 1024 * 8);
}
BENCHMARK(BM_ScalarDequantReference);

}  // namespace
}  // namespace qserve

BENCHMARK_MAIN();
