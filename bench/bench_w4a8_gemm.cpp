// Google-benchmark microbenchmarks of the CPU kernel implementations: the
// W4A8 GEMM family (per-channel, per-group, streamed/SWAR), the baselines
// they are compared against, and the RLP dequantization primitives. These
// measure the *reproduction's* CPU kernels — wall-clock GPU claims live in
// the simulator benches.
//
// Invoked with `--json <path>` it instead runs a fixed decode/prefill shape
// matrix over every supported ISA (scalar + the host's best) on pre-packed
// weights and writes machine-readable records (GOPS, GB/s, shape) — the
// artifact bench/check_regression.py compares against bench/baseline.json.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "kernels/cpu/microkernel.h"
#include "kernels/gemm.h"
#include "kernels/rlp.h"
#include "kernels/weight_layout.h"
#include "quant/quantize.h"

namespace qserve {
namespace {

struct GemmSetup {
  Tensor x, w;
  QuantizedActs qx, qx4;
  W8PerChannel w8;
  W4PerChannel w4c;
  W4PerGroup w4g;
  W4A4PerGroup w44;
  ReorderedW4 stream;
  ReorderedGroupMeta meta;

  GemmSetup(int64_t m, int64_t n, int64_t k) {
    Rng rng(1);
    x = Tensor({m, k});
    w = Tensor({n, k});
    for (int64_t i = 0; i < x.numel(); ++i) x[i] = rng.normal();
    for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
    qx = quantize_acts_per_token(x);
    qx4 = quantize_acts_per_token_int4(x);
    w8 = quantize_w8_per_channel(w);
    w4c = quantize_w4_per_channel(w);
    w4g = quantize_progressive(w, {.group = 128});
    w44 = quantize_w4a4_per_group(w, 128);
    stream = reorder_w4_for_compute(w4g.qw);
    meta = reorder_group_meta(w4g);
  }
};

const GemmSetup& setup() {
  static GemmSetup* s = new GemmSetup(8, 256, 512);
  return *s;
}

void BM_GemmW8A8(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state) benchmark::DoNotOptimize(gemm_w8a8(s.qx, s.w8));
}
BENCHMARK(BM_GemmW8A8);

void BM_GemmW4A8PerChannel(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(gemm_w4a8_per_channel(s.qx, s.w4c));
}
BENCHMARK(BM_GemmW4A8PerChannel);

void BM_GemmW4A8PerGroup(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(gemm_w4a8_per_group(s.qx, s.w4g));
}
BENCHMARK(BM_GemmW4A8PerGroup);

void BM_GemmW4A8Streamed(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        gemm_w4a8_per_group_streamed(s.qx, s.w4g, s.stream, s.meta));
}
BENCHMARK(BM_GemmW4A8Streamed);

// Pre-packed blocked driver (what the model layers run): pack once, then
// GEMM — amortizing the layout transform the plain entry points pay per call.
void BM_GemmW4A8PerGroupPacked(benchmark::State& state) {
  const auto& s = setup();
  const auto packed =
      pack_gemm_b(s.w4g, cpu::microkernel_for(cpu::active_isa()).nr);
  for (auto _ : state)
    benchmark::DoNotOptimize(gemm_blocked(s.qx, packed));
}
BENCHMARK(BM_GemmW4A8PerGroupPacked);

void BM_GemmW4A8PerGroupPackedScalarIsa(benchmark::State& state) {
  const auto& s = setup();
  cpu::set_isa(cpu::Isa::kScalar);
  const auto packed =
      pack_gemm_b(s.w4g, cpu::microkernel_for(cpu::active_isa()).nr);
  for (auto _ : state)
    benchmark::DoNotOptimize(gemm_blocked(s.qx, packed));
  cpu::clear_isa_override();
}
BENCHMARK(BM_GemmW4A8PerGroupPackedScalarIsa);

void BM_GemmW4A4Atom(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(gemm_w4a4_atom(s.qx4, s.w44));
}
BENCHMARK(BM_GemmW4A4Atom);

void BM_GemmF32Reference(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state) benchmark::DoNotOptimize(gemm_f32_ref(s.x, s.w));
}
BENCHMARK(BM_GemmF32Reference);

// --- quantizers ----------------------------------------------------------------

void BM_QuantizeProgressive(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(quantize_progressive(s.w, {.group = 128}));
}
BENCHMARK(BM_QuantizeProgressive);

void BM_QuantizeActsPerToken(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(quantize_acts_per_token(s.x));
}
BENCHMARK(BM_QuantizeActsPerToken);

// --- RLP primitives ---------------------------------------------------------------

void BM_RlpDequantSubAfterMul(benchmark::State& state) {
  uint32_t acc = 0;
  for (auto _ : state) {
    for (uint32_t i = 0; i < 1024; ++i) {
      acc ^= dequant4_sub_after_mul(0x0F3A2C1Du ^ i, 7, 5);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 1024 * 8);
}
BENCHMARK(BM_RlpDequantSubAfterMul);

void BM_ScalarDequantReference(benchmark::State& state) {
  // Scalar one-code-at-a-time dequant for comparison with the SWAR path.
  int acc = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      for (int l = 0; l < 8; ++l) {
        const int q = (i >> l) & 0xF;
        acc ^= (q - 5) * 7;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 1024 * 8);
}
BENCHMARK(BM_ScalarDequantReference);

// --- machine-readable regression suite (--json) --------------------------------

// Shapes mirror the two serving regimes: single-token decode and a stacked
// 64-token prefill. Small enough to finish in seconds on a 1-core CI runner.
struct JsonShape {
  int64_t m, n, k;
  const char* tag;
  int reps;
};

constexpr JsonShape kJsonShapes[] = {
    {1, 512, 512, "decode", 30},
    {64, 512, 512, "prefill", 5},
};

// Bytes a packed W4A8 GEMM touches: INT8 activation codes, 4-bit weight
// codes (their storage size — the packed panels hold one code per byte, but
// the deployable format is nibble-packed), FP16 outputs.
int64_t w4_bytes_touched(int64_t m, int64_t n, int64_t k) {
  return m * k + n * k / 2 + m * n * 2;
}

int64_t w8_bytes_touched(int64_t m, int64_t n, int64_t k) {
  return m * k + n * k + m * n * 2;
}

int run_json_suite(const std::string& path) {
  std::vector<benchutil::GemmBenchRecord> rows;
  // scalar first, then the host's best ISA (skipped when the host is
  // scalar-only so rows stay unique).
  std::vector<cpu::Isa> isas{cpu::Isa::kScalar};
  if (cpu::detected_isa() != cpu::Isa::kScalar)
    isas.push_back(cpu::detected_isa());

  float sink = 0.0f;
  for (const JsonShape& shape : kJsonShapes) {
    Rng rng(7);
    Tensor x({shape.m, shape.k}), w({shape.n, shape.k});
    for (int64_t i = 0; i < x.numel(); ++i) x[i] = rng.normal();
    for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
    const auto qx = quantize_acts_per_token(x);
    const auto w8 = quantize_w8_per_channel(w);
    const auto w4c = quantize_w4_per_channel(w);
    const auto w4g = quantize_progressive(w, {.group = 128});

    for (cpu::Isa isa : isas) {
      cpu::set_isa(isa);
      const int nr = cpu::microkernel_for(cpu::active_isa()).nr;
      const auto p8 = pack_gemm_b(w8, nr);
      const auto p4c = pack_gemm_b(w4c, nr);
      const auto p4g = pack_gemm_b(w4g, nr);
      const struct {
        const char* name;
        const PackedGemmB* packed;
        int64_t bytes;
      } cases[] = {
          {"w8a8", &p8, w8_bytes_touched(shape.m, shape.n, shape.k)},
          {"w4a8_per_channel", &p4c,
           w4_bytes_touched(shape.m, shape.n, shape.k)},
          {"w4a8_per_group", &p4g,
           w4_bytes_touched(shape.m, shape.n, shape.k)},
      };
      for (const auto& c : cases) {
        const double secs = benchutil::time_best_of(
            [&] {
              const Tensor y = gemm_blocked(qx, *c.packed);
              sink += y[0];
            },
            shape.reps);
        rows.push_back(benchutil::make_record(
            std::string(c.name) + "/" + shape.tag, cpu::isa_name(isa),
            shape.m, shape.n, shape.k, secs, c.bytes));
      }
      cpu::clear_isa_override();
    }
  }
  benchmark::DoNotOptimize(sink);

  if (!benchutil::write_bench_json(path, cpu::isa_name(cpu::detected_isa()),
                                   num_threads(), rows))
    return 1;
  std::printf("%-28s %-8s %12s %10s\n", "kernel/shape", "isa", "GOPS",
              "GB/s");
  for (const auto& r : rows)
    std::printf("%-28s %-8s %12.2f %10.2f\n", r.name.c_str(), r.isa.c_str(),
                r.gops, r.gbps);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace qserve

int main(int argc, char** argv) {
  // Strip `--json <path>` before handing the rest to google-benchmark.
  std::string json_path;
  std::vector<char*> args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return qserve::run_json_suite(json_path);

  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
