// Prefix-caching demo: wall-clock time-to-first-token for N clients whose
// prompts share a 1024-token system prompt. The first (cold) client pays the
// full prefill; every later (warm) client's admission forks the cached
// prompt pages copy-on-write and prefills only its private suffix, so warm
// TTFT collapses to roughly one short chunk step. Token streams are verified
// bitwise identical to cold no-cache runs before any number is reported.
//
// Invoked with `--json <path>` it writes regression records for
// bench/check_regression.py. Rows reuse the GemmBenchRecord schema with
// `gops` carrying first-tokens/second (1e3 / TTFT-ms); m = clients measured,
// n = the shared system prompt length, k = prefill tokens saved per warm
// client (page-aligned match length).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "kernels/cpu/isa.h"
#include "serving/engine.h"

using namespace qserve;

namespace {

constexpr int kSystemPrompt = 1024;
constexpr int kClients = 4;
constexpr int kSuffix = 8;
constexpr int kMaxNew = 8;
constexpr int kChunk = 128;

std::vector<int> client_prompt(int client) {
  std::vector<int> p;
  p.reserve(kSystemPrompt + kSuffix);
  for (int i = 0; i < kSystemPrompt; ++i) p.push_back((5 * i + 1) % 512);
  for (int i = 0; i < kSuffix; ++i) p.push_back((37 * client + 11 * i) % 512);
  return p;
}

// Each client alone, cold, caching off: the bitwise reference streams.
std::vector<std::vector<int>> reference_streams(const ModelWeights& weights) {
  std::vector<std::vector<int>> out;
  for (int c = 0; c < kClients; ++c) {
    QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
    ServingEngine engine(&model, EngineConfig{});
    const int id = engine.submit(client_prompt(c), kMaxNew);
    engine.run_to_completion();
    out.push_back(engine.request(id).generated);
  }
  return out;
}

struct RunResult {
  double cold_ttft_ms = 0;
  double warm_ttft_ms = 0;  // mean over the warm clients
  int64_t tokens_saved = 0;
  bool streams_ok = true;
};

// TTFT of one request driven to completion with a manual step loop.
double drive_ttft_ms(ServingEngine& engine, int id) {
  const auto t0 = std::chrono::steady_clock::now();
  double ttft = -1;
  while (engine.step()) {
    if (ttft < 0 && engine.request(id).first_token_step >= 0) {
      ttft = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
    }
  }
  if (ttft < 0)
    ttft = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
  return ttft;
}

RunResult run(const ModelWeights& weights,
              const std::vector<std::vector<int>>& reference) {
  QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.prefix_caching = true;
  cfg.scheduler.prefill_chunk = kChunk;
  ServingEngine engine(&model, cfg);

  RunResult r;
  const int cold = engine.submit(client_prompt(0), kMaxNew);
  r.cold_ttft_ms = drive_ttft_ms(engine, cold);
  r.streams_ok = engine.request(cold).generated == reference[0];

  // Warm clients one at a time, so each TTFT is a clean measurement of one
  // admission-to-first-token path against the warm cache.
  for (int c = 1; c < kClients; ++c) {
    const int id = engine.submit(client_prompt(c), kMaxNew);
    r.warm_ttft_ms += drive_ttft_ms(engine, id) / double(kClients - 1);
    r.streams_ok =
        r.streams_ok && engine.request(id).generated == reference[size_t(c)];
  }
  r.tokens_saved = engine.stats().prefill_tokens_saved;
  engine.clear_prefix_cache();
  r.streams_ok = r.streams_ok && model.kv_cache().pages_in_use() == 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  const auto reference = reference_streams(weights);
  std::vector<benchutil::GemmBenchRecord> rows;
  std::vector<cpu::Isa> isas{cpu::Isa::kScalar};
  if (cpu::detected_isa() != cpu::Isa::kScalar)
    isas.push_back(cpu::detected_isa());

  std::printf(
      "%d clients sharing a %d-token system prompt, toy W4A8KV4 model\n",
      kClients, kSystemPrompt);
  RunResult best;
  bool all_ok = true;
  for (cpu::Isa isa : isas) {
    cpu::set_isa(isa);
    // Best-of-2 per metric: the engine is deterministic, the wall clock is
    // not, and these rows gate CI like every other bench's.
    best = run(weights, reference);
    all_ok = all_ok && best.streams_ok;
    for (int rep = 1; rep < 2; ++rep) {
      const RunResult again = run(weights, reference);
      all_ok = all_ok && again.streams_ok;
      best.cold_ttft_ms = std::min(best.cold_ttft_ms, again.cold_ttft_ms);
      best.warm_ttft_ms = std::min(best.warm_ttft_ms, again.warm_ttft_ms);
    }
    const int64_t saved_per_client = best.tokens_saved / (kClients - 1);
    const char* iname = cpu::isa_name(isa);
    auto push = [&](const std::string& name, double ttft_ms) {
      benchutil::GemmBenchRecord r;
      r.name = name;
      r.isa = iname;
      r.m = kClients;
      r.n = kSystemPrompt;
      r.k = saved_per_client;
      r.seconds = ttft_ms / 1e3;
      r.gops = ttft_ms > 0 ? 1e3 / ttft_ms : 0;  // first tokens per second
      rows.push_back(r);
    };
    push("serving_prefix_ttft_cold", best.cold_ttft_ms);
    push("serving_prefix_ttft_warm", best.warm_ttft_ms);
    cpu::clear_isa_override();
  }

  if (!all_ok) {
    std::printf("FAIL: warm streams diverged from the cold reference\n");
    return 1;
  }
  std::printf("%-18s %14s %20s\n", "cache state", "TTFT ms",
              "prefill tok saved");
  std::printf("%-18s %14.1f %20d\n", "cold (1st client)", best.cold_ttft_ms, 0);
  std::printf("%-18s %14.1f %20lld\n", "warm (mean)", best.warm_ttft_ms,
              static_cast<long long>(best.tokens_saved / (kClients - 1)));
  std::printf("warm TTFT speedup: %.1fx (streams bitwise identical)\n",
              best.cold_ttft_ms / best.warm_ttft_ms);

  if (!json_path.empty()) {
    if (!benchutil::write_bench_json(json_path,
                                     cpu::isa_name(cpu::detected_isa()),
                                     num_threads(), rows))
      return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
