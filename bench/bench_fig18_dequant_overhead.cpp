// Figure 18 reproduction: fraction of GEMM compute time spent on main-loop
// dequantization (CUDA cores) for W8A8, W4A16, Atom-W4A4 and QServe-W4A8,
// across decode batch sizes m = 8..128 (Llama-7B-sized 4096x4096 GEMMs).
#include <cstdio>

#include "bench_util.h"
#include "simulator/gemm_model.h"

using namespace qserve::sim;
using namespace qserve::benchutil;

int main() {
  const DeviceSpec dev = a100_80g();
  const struct {
    GemmPipeline pipe;
    const char* name;
  } pipes[] = {
      {GemmPipeline::kW8A8, "W8A8"},
      {GemmPipeline::kW4A16, "W4A16"},
      {GemmPipeline::kW4A4Atom, "W4A4 (Atom)"},
      {GemmPipeline::kW4A8PerGroup, "W4A8 (ours, g128)"},
      {GemmPipeline::kW4A8PerChannel, "W4A8 (ours, per-chn)"},
  };

  header("Figure 18: main-loop dequantization overhead (A100, n=k=4096)");
  std::printf("%-22s", "pipeline");
  for (int m : {8, 16, 32, 64, 128}) std::printf("m=%-10d", m);
  std::printf("\n");
  for (const auto& p : pipes) {
    std::printf("%-22s", p.name);
    for (int m : {8, 16, 32, 64, 128}) {
      GemmShape s;
      s.m = m;
      const auto cost = gemm_cost(dev, p.pipe, s);
      std::printf("%-12s", (fmt(100 * cost.dequant_overhead(), 1) + "%").c_str());
    }
    std::printf("\n");
  }
  std::printf("(paper: W8A8 has zero main-loop dequant; Atom reaches up to "
              "90%%; QServe's RLP dequant keeps W4A8 small and comparable "
              "to W4A16 while running on INT8 tensor cores)\n");

  header("Achieved speed vs W8A8 (memory+compute model, same shapes)");
  std::printf("%-22s", "pipeline");
  for (int m : {8, 16, 32, 64, 128}) std::printf("m=%-10d", m);
  std::printf("\n");
  for (const auto& p : pipes) {
    std::printf("%-22s", p.name);
    for (int m : {8, 16, 32, 64, 128}) {
      GemmShape s;
      s.m = m;
      const double base = gemm_cost(dev, GemmPipeline::kW8A8, s).seconds;
      const double t = gemm_cost(dev, p.pipe, s).seconds;
      std::printf("%-12s", (fmt(base / t, 2) + "x").c_str());
    }
    std::printf("\n");
  }
  std::printf("(§4.1: QServe per-group W4A8 GEMM achieves ~1.5x over W8A8 "
              "at decode batch sizes)\n");
  return 0;
}
