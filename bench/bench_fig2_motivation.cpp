// Figure 2 reproduction.
// (a) Latency share of attention vs GEMM vs others across decode batch sizes
//     for Llama-2-7B (FP16 serving, A100).
// (b) Llama-2-7B maximum achievable A100 throughput for TRT-LLM
//     FP16/W4A16/W8A8 and the W4A4 systems (Atom, QuaRot).
#include <cstdio>

#include "bench_util.h"
#include "simulator/serving_model.h"

using namespace qserve;
using namespace qserve::sim;
using namespace qserve::benchutil;

int main() {
  const DeviceSpec dev = a100_80g();
  const ModelConfig model = model_by_name("Llama-2-7B");
  const ServingWorkload wl;

  header("Figure 2a: decode-step latency share, Llama-2-7B FP16 on A100");
  row({"batch", "attention%", "gemm%", "others%"});
  for (int batch : {1, 2, 4, 8, 16, 32, 64}) {
    const auto est = estimate_throughput(
        dev, system_profile(System::kTrtFp16), model, wl, batch);
    if (est.oom) {
      row({std::to_string(batch), "OOM"});
      continue;
    }
    const auto& s = est.mid_decode_step;
    row({std::to_string(batch), fmt(100 * s.attention_seconds / s.total(), 1),
         fmt(100 * s.gemm_seconds / s.total(), 1),
         fmt(100 * s.other_seconds / s.total(), 1)});
  }
  std::printf("(paper: attention exceeds 50%% of runtime by batch 64; "
              "GEMM dominates at small batch)\n");

  header("Figure 2b: Llama-2-7B max A100 throughput (tokens/s)");
  row({"system", "tokens/s", "batch"});
  for (System s : {System::kTrtFp16, System::kTrtW4A16, System::kTrtW8A8,
                   System::kAtomW4A4, System::kQuarotW4A4,
                   System::kQServePerChannel}) {
    const auto profile = system_profile(s);
    const auto est = max_throughput(dev, profile, model, wl);
    row({profile.name,
         est.oom ? "OOM"
                 : (!est.supported ? "N.S." : fmt(est.tokens_per_second, 0)),
         std::to_string(est.batch)});
  }
  std::printf("(paper Fig. 2b: TRT-FP16 1474, W4A16 1468, W8A8 2104, "
              "Atom 817, QuaRot 986 — W4A4 systems lag W8A8 despite 2x "
              "theoretical peak)\n");
  return 0;
}
