// Shared setup for the accuracy-reproduction benches (Tables 2/3/5, Figures
// 7/16): builds the synthetic reference models, calibration data and eval
// corpora once per binary.
#pragma once

#include "eval/harness.h"
#include "model/qoq_quantizer.h"
#include "model/quantized_model.h"
#include "model/reference_model.h"

namespace qserve::benchacc {

struct AccuracySetup {
  ModelWeights weights;
  ReferenceModel ref;
  CalibrationData calib;
  EvalCorpus corpus;

  explicit AccuracySetup(const ModelConfig& cfg, uint64_t seed = 42)
      : weights(make_synthetic_weights(cfg, {.seed = seed})), ref(&weights) {
    EvalCorpusOptions opt;
    opt.calib_sequences = 2;
    opt.calib_len = 40;
    opt.eval_sequences = 3;
    opt.eval_len = 36;
    opt.n_choice_tasks = 24;
    opt.n_long_prompts = 2;
    opt.long_prompt_len = 72;
    opt.seed = seed + 1;
    corpus = build_eval_corpus(ref, opt);
    // Calibrate on the concatenated calibration sequences (first one is
    // enough for transform statistics at toy scale; use the longest).
    ref.forward_calibrate(corpus.calibration[0], &calib);
  }

  double reference_perplexity() const {
    ForwardFn fwd = [this](const std::vector<int>& t) {
      return ref.forward(t);
    };
    return pseudo_perplexity(fwd, corpus.eval);
  }
};

}  // namespace qserve::benchacc
