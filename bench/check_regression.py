#!/usr/bin/env python3
"""Compare bench JSON output against a checked-in baseline.

Usage:
    check_regression.py BASELINE CURRENT [CURRENT2 ...]
                        [--warn-ratio 1.35] [--fail-ratio 2.0]

Multiple CURRENT files (e.g. `bench_w4a8_gemm --json` plus
`bench_serving_batched --json`) are merged before comparison — the baseline
holds the union of every bench's rows, and rows no provided file produced
are reported as skipped.

Rows are matched on (name, isa). Rows the current host did not produce —
e.g. the baseline was recorded on an AVX-512 machine and CI only has AVX2 —
are reported as skipped, so the scalar rows (ISA-independent) always anchor
the comparison. The `gops` field is the compared figure of merit; serving
rows store tokens/second there (only ratios matter).

Policy (CI runs on noisy 1-2 core VMs, so absolute wall clock drifts):
  * slowdown ratio <= warn-ratio        -> ok
  * warn-ratio < ratio <= fail-ratio    -> warning, exit 0
  * ratio > fail-ratio                  -> failure, exit 1

Only rows whose ISA is listed in --gate-isas (default: scalar) can fail the
run; other rows always warn at most. The CI fleet is heterogeneous — an
avx512 baseline recorded on a fast workstation would gate 1:1 against
whatever frequency-licensed VM the job draws, flipping nondeterministically
between skipped and failed. The scalar rows are the stable anchor.
"""

import argparse
import json
import sys


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for r in doc["results"]:
        key = (r["name"], r["isa"])
        if key in rows:
            raise SystemExit(f"FAIL  duplicate row {key} in {path}")
        rows[key] = r
    return doc, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current", nargs="+")
    ap.add_argument("--warn-ratio", type=float, default=1.35,
                    help="slowdown ratio above which to warn (default 1.35)")
    ap.add_argument("--fail-ratio", type=float, default=2.0,
                    help="slowdown ratio above which to fail (default 2.0)")
    ap.add_argument("--gate-isas", default="scalar",
                    help="comma-separated ISAs whose rows may hard-fail; "
                         "others warn only (default: scalar)")
    args = ap.parse_args()
    gate_isas = set(args.gate_isas.split(","))

    base_doc, base = load_results(args.baseline)
    cur = {}
    for path in args.current:
        cur_doc, cur_rows = load_results(path)
        for key in cur_rows:
            if key in cur:
                print(f"FAIL  duplicate row {key} across current files")
                return 1
        cur.update(cur_rows)
        print(f"baseline host_isa={base_doc.get('host_isa')} "
              f"current[{path}] host_isa={cur_doc.get('host_isa')}")
        if base_doc.get("threads") != cur_doc.get("threads"):
            print(f"WARN  thread-count mismatch (baseline "
                  f"{base_doc.get('threads')} vs {path} "
                  f"{cur_doc.get('threads')}): GOPS ratios compare different "
                  f"pool sizes — run the bench with QSERVE_NUM_THREADS="
                  f"{base_doc.get('threads')} for a like-for-like gate")

    failures, warnings, skipped = [], [], []
    for key in sorted(base):
        name, isa = key
        b, c = base[key], cur.get(key)
        if c is None:
            skipped.append(f"{name} [{isa}] (not run on this host)")
            continue
        if c["gops"] <= 0:
            line = f"{name} [{isa}]: current GOPS is zero"
            (failures if isa in gate_isas else warnings).append(line)
            continue
        ratio = b["gops"] / c["gops"]
        line = (f"{name} [{isa}]: {b['gops']:.2f} -> {c['gops']:.2f} GOPS "
                f"(x{ratio:.2f} slowdown)")
        if ratio > args.fail_ratio and isa in gate_isas:
            failures.append(line)
        elif ratio > args.warn_ratio:
            warnings.append(line)
        else:
            print(f"ok    {line}")

    for s in skipped:
        print(f"skip  {s}")
    for w in warnings:
        print(f"WARN  {w}")
    for f_ in failures:
        print(f"FAIL  {f_}")

    if failures:
        print(f"{len(failures)} kernel(s) regressed by more than "
              f"{args.fail_ratio}x")
        return 1
    print(f"{len(warnings)} warning(s), {len(skipped)} skipped — within "
          f"tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
