// Speculative decoding on the real CPU engine: draft-k proposals from a
// layer-truncated draft model, one batched k+1-row target verify forward per
// step, greedy longest-prefix acceptance, KV rollback on both caches.
//
// Both models run the real quantized W4A8/KV4 kernels. The wins measured:
//   * target-model forwards per generated decode token < 1.0 — acceptance
//     lands multiple tokens per verify forward (the baseline spends exactly
//     1.0 by construction), raising the arithmetic intensity of every
//     target GEMM from m=1 decode rows to m=k+1 verify spans;
//   * honest decode tok/s vs the non-speculative baseline — the draft's
//     forwards and the rejected tail's wasted rows are all charged to the
//     decode wall-time split.
//
// Expect the forwards-per-token win but NOT a CPU wall-clock win: speculation
// converts k+1 m=1 target forwards into one m=k+1 forward, which only pays
// when decode is memory-bound enough that an m=k+1 GEMM costs about as much
// as an m=1 GEMM (the GPU regime of Fig. 3). On this CPU the blocked W4A8
// GEMM is mostly compute-bound at decode shapes (bench_serving_batched
// measures only ~1.1x per-row win from batching), so the verify forward
// costs nearly (k+1)x an m=1 step and the draft's forwards are pure
// overhead. The JSON rows record both metrics honestly; the
// tokens-per-forward rows are the paper-transferable figure of merit.
//
// Invoked with `--json <path>` it writes regression records for
// bench/check_regression.py. Rows reuse the GemmBenchRecord schema: `gops`
// carries decode tokens/second for serving_spec_decode_* rows and decode
// tokens per target verify forward (the inverse of forwards-per-token; must
// stay > 1) for serving_spec_tokens_per_forward rows; m = batch size,
// n = decode tokens measured, k = lookahead_k. Streams are greedy and the
// engine is deterministic, so acceptance-derived rows are ISA-stable.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "kernels/cpu/isa.h"
#include "serving/engine.h"

namespace qserve {
namespace {

constexpr int kPromptLen = 16;
constexpr int kMaxNew = 32;
constexpr int kLookahead = 4;

// Same memory-bound-decode shape family as bench_serving_batched but 4
// layers deep, so a layer-truncated draft keeps a meaningful share of the
// target's computation.
ModelConfig target_config() {
  ModelConfig cfg;
  cfg.name = "bench-spec-target";
  cfg.hidden = 512;
  cfg.n_layers = 4;
  cfg.n_heads = 8;
  cfg.n_kv_heads = 4;
  cfg.head_dim = 64;
  cfg.ffn_dim = 1024;
  cfg.vocab = 1024;
  return cfg;
}

// Layer-truncated draft: the target's first n_layers plus its embedding,
// final norm, and LM head — the layer-skip flavor of self-speculative
// decoding, the only draft construction that correlates with an untrained
// synthetic target (a separately sampled small model would propose noise).
// At 2 of 4 layers the draft costs ~half a target forward and reaches ~33%
// acceptance on this workload.
ModelWeights draft_from(const ModelWeights& target, int n_layers) {
  ModelWeights d = target;
  d.cfg.name = "bench-spec-draft";
  d.cfg.n_layers = n_layers;
  d.layers.resize(static_cast<size_t>(n_layers));
  return d;
}

struct RunResult {
  double decode_tokens_per_second = 0;
  double decode_seconds = 0;
  int64_t decode_tokens = 0;
  double acceptance_rate = 0;
  double forwards_per_token = 0;  // target verify forwards / decode token
};

RunResult run(const ModelWeights& target_w, const ModelWeights* draft_w,
              int batch, int lookahead) {
  QuantizedModel model(target_w, QuantSchemeConfig::qserve_w4a8kv4_g128());
  std::unique_ptr<QuantizedModel> draft;
  if (draft_w != nullptr)
    draft = std::make_unique<QuantizedModel>(
        *draft_w, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = batch;
  // One chunk covers every prompt: step 1 is pure prefill, the rest are pure
  // decode steps, so the decode split is uncontaminated.
  cfg.scheduler.prefill_chunk = 1 << 12;
  cfg.speculative.lookahead_k = lookahead;
  ServingEngine engine(&model, draft.get(), cfg);

  for (int i = 0; i < batch; ++i) {
    std::vector<int> prompt;
    for (int t = 0; t < kPromptLen; ++t) prompt.push_back((31 * t + i) % 512);
    engine.submit(prompt, kMaxNew);
  }
  const EngineStats stats = engine.drain();

  RunResult r;
  r.decode_tokens = stats.decode_tokens;
  r.decode_seconds = stats.decode_seconds;
  r.decode_tokens_per_second = stats.decode_tokens_per_second;
  r.acceptance_rate = stats.acceptance_rate;
  r.forwards_per_token = stats.target_forwards_per_decode_token;
  return r;
}

int run_suite(const std::string& json_path) {
  const ModelWeights target_w = make_synthetic_weights(target_config());
  const ModelWeights draft_w = draft_from(target_w, 2);
  std::vector<benchutil::GemmBenchRecord> rows;
  std::vector<cpu::Isa> isas{cpu::Isa::kScalar};
  if (cpu::detected_isa() != cpu::Isa::kScalar)
    isas.push_back(cpu::detected_isa());

  std::printf("%d-token prompts, %d new tokens each, W4A8KV4 target "
              "(hidden=512, 4 layers), layer-skip 2-layer draft, k=%d\n",
              kPromptLen, kMaxNew, kLookahead);
  std::printf("%-8s %-6s %-12s %14s %12s %14s %10s\n", "isa", "batch",
              "mode", "decode tok/s", "accept", "fwd/token", "speedup");
  for (cpu::Isa isa : isas) {
    cpu::set_isa(isa);
    for (int batch : {1, 4}) {
      RunResult base, spec;
      // Best-of-2: the engine is deterministic, the wall clock is not.
      for (int rep = 0; rep < 2; ++rep) {
        const RunResult b = run(target_w, nullptr, batch, kLookahead);
        const RunResult s = run(target_w, &draft_w, batch, kLookahead);
        if (b.decode_tokens_per_second > base.decode_tokens_per_second)
          base = b;
        if (s.decode_tokens_per_second > spec.decode_tokens_per_second)
          spec = s;
      }
      const char* iname = cpu::isa_name(isa);
      const std::string tag = "/b" + std::to_string(batch);
      auto push = [&](const std::string& name, double gops, double seconds,
                      int64_t tokens) {
        benchutil::GemmBenchRecord r;
        r.name = name;
        r.isa = iname;
        r.m = batch;
        r.n = tokens;
        r.k = kLookahead;
        r.seconds = seconds;
        r.gops = gops;  // tok/s or tokens-per-forward (see file comment)
        rows.push_back(r);
      };
      push("serving_spec_decode_base" + tag, base.decode_tokens_per_second,
           base.decode_seconds, base.decode_tokens);
      push("serving_spec_decode_spec" + tag, spec.decode_tokens_per_second,
           spec.decode_seconds, spec.decode_tokens);
      push("serving_spec_tokens_per_forward" + tag,
           spec.forwards_per_token > 0 ? 1.0 / spec.forwards_per_token : 0,
           spec.decode_seconds, spec.decode_tokens);
      std::printf("%-8s %-6d %-12s %14.1f %12s %14s %10s\n", iname, batch,
                  "baseline", base.decode_tokens_per_second, "-", "1.00", "");
      std::printf("%-8s %-6d %-12s %14.1f %11.0f%% %14.2f %9.2fx\n", iname,
                  batch, "speculative", spec.decode_tokens_per_second,
                  100.0 * spec.acceptance_rate, spec.forwards_per_token,
                  spec.decode_tokens_per_second /
                      base.decode_tokens_per_second);
      if (spec.forwards_per_token >= 1.0) {
        std::fprintf(stderr,
                     "WARNING: %s/b%d target forwards per token %.2f >= 1.0 "
                     "— acceptance not working\n",
                     iname, batch, spec.forwards_per_token);
      }
    }
    cpu::clear_isa_override();
  }

  if (!json_path.empty()) {
    if (!benchutil::write_bench_json(json_path,
                                     cpu::isa_name(cpu::detected_isa()),
                                     num_threads(), rows))
      return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace qserve

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }
  return qserve::run_suite(json_path);
}
