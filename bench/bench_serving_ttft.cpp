// Head-of-line blocking demo: wall-clock time-to-first-token for short
// requests that share the engine with a 1024-token prompt, monolithic
// prefill (chunk >= prompt, the pre-chunking behaviour) vs chunked prefill.
// With one monolithic call the long prompt's whole prefill lands in a single
// step and every short request's first token waits behind it; with
// prefill_chunk=128 each step runs at most one chunk, so short TTFT drops to
// roughly one chunk-step.
//
// Invoked with `--json <path>` it writes regression records for
// bench/check_regression.py, so TTFT is gated like decode throughput. Rows
// reuse the GemmBenchRecord schema with `gops` carrying first-tokens/second
// (1e3 / TTFT-ms — the gate compares ratios, and a TTFT increase shows up
// as a gops drop); m = number of requests measured, n = the long prompt's
// length, k = the prefill chunk.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "kernels/cpu/isa.h"
#include "serving/engine.h"

using namespace qserve;

namespace {

constexpr int kLongPrompt = 1024;
constexpr int kShortRequests = 4;

struct RunResult {
  double short_ttft_ms = 0;  // mean over the short requests
  double long_ttft_ms = 0;
  int64_t steps = 0;
  int64_t preemptions = 0;
};

RunResult run(const ModelWeights& weights, int prefill_chunk) {
  QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.prefill_chunk = prefill_chunk;
  ServingEngine engine(&model, cfg);

  std::vector<int> long_prompt;
  for (int i = 0; i < kLongPrompt; ++i) long_prompt.push_back((5 * i + 1) % 512);
  const int big = engine.submit(long_prompt, 8);
  std::vector<int> shorts;
  for (int i = 0; i < kShortRequests; ++i)
    shorts.push_back(engine.submit({4, 8, 15, 16, 23, 42, 7, (9 + i) % 512}, 8));

  // Drive steps manually so we can timestamp each request's first token.
  std::vector<double> first_ms(engine.request(big).id + shorts.size() + 1, -1);
  const auto t0 = std::chrono::steady_clock::now();
  bool more = true;
  while (more) {
    more = engine.step();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    for (size_t id = 0; id < first_ms.size(); ++id) {
      if (first_ms[id] < 0 &&
          engine.request(static_cast<int>(id)).first_token_step >= 0) {
        first_ms[id] = ms;
      }
    }
  }

  RunResult r;
  r.long_ttft_ms = first_ms[static_cast<size_t>(big)];
  for (int id : shorts)
    r.short_ttft_ms += first_ms[static_cast<size_t>(id)] /
                       static_cast<double>(shorts.size());
  r.steps = engine.stats().steps;
  r.preemptions = engine.stats().preemptions;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  std::vector<benchutil::GemmBenchRecord> rows;
  // scalar first (the CI regression anchor), then the host's best ISA; the
  // human-readable table shows the best ISA's numbers.
  std::vector<cpu::Isa> isas{cpu::Isa::kScalar};
  if (cpu::detected_isa() != cpu::Isa::kScalar)
    isas.push_back(cpu::detected_isa());

  std::printf("1024-token prompt + 4x 8-token prompts, toy W4A8KV4 model\n");
  RunResult mono, chunked;
  for (cpu::Isa isa : isas) {
    cpu::set_isa(isa);
    // Best-of-2 per metric: the engine is deterministic, the wall clock is
    // not, and these rows gate CI like every other bench's.
    mono = run(weights, 1 << 20);
    chunked = run(weights, 128);
    for (int rep = 1; rep < 2; ++rep) {
      const RunResult m = run(weights, 1 << 20);
      const RunResult c = run(weights, 128);
      mono.short_ttft_ms = std::min(mono.short_ttft_ms, m.short_ttft_ms);
      mono.long_ttft_ms = std::min(mono.long_ttft_ms, m.long_ttft_ms);
      chunked.short_ttft_ms = std::min(chunked.short_ttft_ms, c.short_ttft_ms);
      chunked.long_ttft_ms = std::min(chunked.long_ttft_ms, c.long_ttft_ms);
    }
    const char* iname = cpu::isa_name(isa);
    auto push = [&](const std::string& name, double ttft_ms,
                    int64_t prefill_chunk) {
      benchutil::GemmBenchRecord r;
      r.name = name;
      r.isa = iname;
      r.m = kShortRequests;
      r.n = kLongPrompt;
      r.k = prefill_chunk;
      r.seconds = ttft_ms / 1e3;
      r.gops = ttft_ms > 0 ? 1e3 / ttft_ms : 0;  // first tokens per second
      rows.push_back(r);
    };
    push("serving_ttft_short_mono", mono.short_ttft_ms, 1 << 20);
    push("serving_ttft_short_chunked", chunked.short_ttft_ms, 128);
    push("serving_ttft_long_chunked", chunked.long_ttft_ms, 128);
    cpu::clear_isa_override();
  }

  std::printf("%-24s %14s %14s %8s\n", "prefill mode", "short TTFT ms",
              "long TTFT ms", "steps");
  std::printf("%-24s %14.1f %14.1f %8lld\n", "monolithic (chunk=inf)",
              mono.short_ttft_ms, mono.long_ttft_ms,
              static_cast<long long>(mono.steps));
  std::printf("%-24s %14.1f %14.1f %8lld\n", "chunked (chunk=128)",
              chunked.short_ttft_ms, chunked.long_ttft_ms,
              static_cast<long long>(chunked.steps));
  std::printf("short-request TTFT speedup: %.1fx\n",
              mono.short_ttft_ms / chunked.short_ttft_ms);

  if (!json_path.empty()) {
    if (!benchutil::write_bench_json(json_path,
                                     cpu::isa_name(cpu::detected_isa()),
                                     num_threads(), rows))
      return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
