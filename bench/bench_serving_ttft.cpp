// Head-of-line blocking demo: wall-clock time-to-first-token for short
// requests that share the engine with a 1024-token prompt, monolithic
// prefill (chunk >= prompt, the pre-chunking behaviour) vs chunked prefill.
// With one monolithic call the long prompt's whole prefill lands in a single
// step and every short request's first token waits behind it; with
// prefill_chunk=128 each step runs at most one chunk, so short TTFT drops to
// roughly one chunk-step.
#include <chrono>
#include <cstdio>
#include <vector>

#include "serving/engine.h"

using namespace qserve;

namespace {

struct RunResult {
  double short_ttft_ms = 0;  // mean over the short requests
  double long_ttft_ms = 0;
  int64_t steps = 0;
  int64_t preemptions = 0;
};

RunResult run(const ModelWeights& weights, int prefill_chunk) {
  QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.prefill_chunk = prefill_chunk;
  ServingEngine engine(&model, cfg);

  std::vector<int> long_prompt;
  for (int i = 0; i < 1024; ++i) long_prompt.push_back((5 * i + 1) % 512);
  const int big = engine.submit(long_prompt, 8);
  std::vector<int> shorts;
  for (int i = 0; i < 4; ++i)
    shorts.push_back(engine.submit({4, 8, 15, 16, 23, 42, 7, (9 + i) % 512}, 8));

  // Drive steps manually so we can timestamp each request's first token.
  std::vector<double> first_ms(engine.request(big).id + shorts.size() + 1, -1);
  const auto t0 = std::chrono::steady_clock::now();
  bool more = true;
  while (more) {
    more = engine.step();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    for (size_t id = 0; id < first_ms.size(); ++id) {
      if (first_ms[id] < 0 &&
          engine.request(static_cast<int>(id)).first_token_step >= 0) {
        first_ms[id] = ms;
      }
    }
  }

  RunResult r;
  r.long_ttft_ms = first_ms[static_cast<size_t>(big)];
  for (int id : shorts)
    r.short_ttft_ms += first_ms[static_cast<size_t>(id)] /
                       static_cast<double>(shorts.size());
  r.steps = engine.stats().steps;
  r.preemptions = engine.stats().preemptions;
  return r;
}

}  // namespace

int main() {
  const ModelWeights weights = make_synthetic_weights(toy_config(1));
  std::printf("1024-token prompt + 4x 8-token prompts, toy W4A8KV4 model\n");
  std::printf("%-24s %14s %14s %8s\n", "prefill mode", "short TTFT ms",
              "long TTFT ms", "steps");
  const RunResult mono = run(weights, 1 << 20);
  std::printf("%-24s %14.1f %14.1f %8lld\n", "monolithic (chunk=inf)",
              mono.short_ttft_ms, mono.long_ttft_ms,
              static_cast<long long>(mono.steps));
  const RunResult chunked = run(weights, 128);
  std::printf("%-24s %14.1f %14.1f %8lld\n", "chunked (chunk=128)",
              chunked.short_ttft_ms, chunked.long_ttft_ms,
              static_cast<long long>(chunked.steps));
  std::printf("short-request TTFT speedup: %.1fx\n",
              mono.short_ttft_ms / chunked.short_ttft_ms);
  return 0;
}
