// Decode-attention microbenchmark over the quantized paged KV cache: one
// fused_decode_attention call (all heads, whole context) per measurement, at
// context 128 / 1k / 4k for INT4 and INT8 KV, on the scalar baseline and the
// best ISA the host supports. Reports per-call latency, decode tok/s
// (1 / latency — one call serves one token of one sequence), and the
// effective GB/s of quantized KV traffic the kernels sustain.
//
//   ./bench_attention [--json out.json]
//
// The JSON rows land in bench/baseline.json and are gated by
// bench/check_regression.py in CI (scalar rows hard-fail, SIMD rows warn),
// so both the baseline and the SIMD speedup are regression-tracked claims.
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "kvcache/fused_attention.h"

namespace qserve {
namespace {

using cpu::Isa;

struct Setup {
  KvCacheConfig ccfg;
  AttentionConfig acfg;
  std::unique_ptr<PagedKvCache> cache;
  int seq = -1;
  std::vector<float> q, out;

  Setup(KvPrecision p, int ctx, uint64_t seed) {
    ccfg.n_kv_heads = 8;
    ccfg.head_dim = 64;
    ccfg.page_size = 16;
    ccfg.precision = p;
    ccfg.max_pages = 1 << 16;
    acfg = {8, 8, 64, /*fp16_accum=*/true};
    cache = std::make_unique<PagedKvCache>(ccfg);
    seq = cache->alloc_sequence();
    Rng rng(seed);
    const size_t span = static_cast<size_t>(ccfg.n_kv_heads) * ccfg.head_dim;
    std::vector<float> k(span), v(span);
    for (int t = 0; t < ctx; ++t) {
      for (auto& x : k) x = rng.normal();
      for (auto& x : v) x = rng.normal();
      k[0] = 9.0f;
      cache->append(seq, k.data(), v.data());
    }
    const size_t hd = static_cast<size_t>(acfg.n_heads) * acfg.head_dim;
    q.resize(hd);
    out.resize(hd);
    for (auto& x : q) x = rng.normal();
  }

  // Quantized page bytes one call touches: K and V codes for every (token,
  // kv_head) plus the in-page FP16 scale/zero pairs, plus q in and out out.
  int64_t bytes_touched(int ctx) const {
    const int64_t span = int64_t(ccfg.n_kv_heads) * ccfg.head_dim;
    const int bits = static_cast<int>(ccfg.precision);
    int64_t b = 2 * int64_t(ctx) * span * bits / 8;      // K + V codes
    b += 2 * int64_t(ctx) * ccfg.n_kv_heads * 4;         // K + V params
    b += 2 * int64_t(acfg.n_heads) * acfg.head_dim * 4;  // q + out
    return b;
  }
};

const char* precision_tag(KvPrecision p) {
  return p == KvPrecision::kInt4 ? "kv4" : "kv8";
}

}  // namespace
}  // namespace qserve

int main(int argc, char** argv) {
  using namespace qserve;
  using benchutil::fmt;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  std::vector<Isa> isas{Isa::kScalar};
  if (cpu::detected_isa() != Isa::kScalar) isas.push_back(cpu::detected_isa());

  std::vector<benchutil::GemmBenchRecord> rows;
  benchutil::header("decode attention: fused quantized-KV kernels");
  benchutil::row({"config", "isa", "latency", "tok/s", "GB/s", "speedup"});
  for (const KvPrecision p : {KvPrecision::kInt4, KvPrecision::kInt8}) {
    for (const int ctx : {128, 1024, 4096}) {
      Setup s(p, ctx, 42 + ctx);
      const int reps = ctx <= 1024 ? 100 : 30;
      double scalar_secs = 0.0;
      for (const Isa isa : isas) {
        cpu::set_isa(isa);
        const double secs = benchutil::time_best_of(
            [&] {
              fused_decode_attention(*s.cache, s.seq, s.q.data(), s.acfg,
                                     s.out.data());
            },
            reps);
        cpu::clear_isa_override();
        if (isa == Isa::kScalar) scalar_secs = secs;

        const std::string name = std::string("attn_decode_") +
                                 precision_tag(p) + "/ctx" +
                                 std::to_string(ctx);
        // tok/s in the gops slot (like the serving rows): one fused call
        // serves one decode token for one sequence.
        benchutil::GemmBenchRecord r;
        r.name = name;
        r.isa = cpu::isa_name(isa);
        r.m = 1;
        r.n = s.acfg.n_heads;
        r.k = ctx;
        r.seconds = secs;
        r.gops = secs > 0 ? 1.0 / secs : 0.0;
        r.gbps = secs > 0 ? double(s.bytes_touched(ctx)) / secs / 1e9 : 0.0;
        rows.push_back(r);
        benchutil::row({name, r.isa, benchutil::fmt_ms(secs, 3),
                        fmt(r.gops, 0), fmt(r.gbps, 2),
                        isa == Isa::kScalar
                            ? "1.00x"
                            : fmt(scalar_secs / secs, 2) + "x"});
      }
    }
  }

  if (!json_path.empty()) {
    if (!benchutil::write_bench_json(json_path,
                                     cpu::isa_name(cpu::detected_isa()),
                                     num_threads(), rows))
      return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
