// Shared formatting helpers for the table/figure reproduction binaries, plus
// the machine-readable JSON emitter used by the bench-regression harness
// (bench_w4a8_gemm --json <path>, compared in CI by bench/check_regression.py
// against bench/baseline.json).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace qserve::benchutil {

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_ms(double seconds, int precision = 2) {
  return fmt(seconds * 1e3, precision) + " ms";
}

// --- bench JSON records ------------------------------------------------------

// One timed kernel configuration. `gops` is 2*m*n*k MACs per second / 1e9;
// `gbps` is the bytes the kernel actually touches (quantized weights +
// activation codes + FP16 outputs) per second / 1e9.
struct GemmBenchRecord {
  std::string name;  // kernel + shape tag, e.g. "w4a8_per_group/prefill"
  std::string isa;   // "scalar" / "avx2" / "avx512"
  int64_t m = 0, n = 0, k = 0;
  double seconds = 0.0;
  double gops = 0.0;
  double gbps = 0.0;
};

// Best-of-`reps` wall time of fn() after one untimed warmup call.
template <typename Fn>
double time_best_of(const Fn& fn, int reps) {
  using clock = std::chrono::steady_clock;
  fn();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = clock::now();
    fn();
    const double dt =
        std::chrono::duration<double>(clock::now() - t0).count();
    if (dt < best) best = dt;
  }
  return best;
}

inline GemmBenchRecord make_record(const std::string& name,
                                   const std::string& isa, int64_t m,
                                   int64_t n, int64_t k, double seconds,
                                   int64_t bytes_touched) {
  GemmBenchRecord r;
  r.name = name;
  r.isa = isa;
  r.m = m;
  r.n = n;
  r.k = k;
  r.seconds = seconds;
  r.gops = seconds > 0 ? 2.0 * double(m) * double(n) * double(k) / seconds /
                             1e9
                       : 0.0;
  r.gbps = seconds > 0 ? double(bytes_touched) / seconds / 1e9 : 0.0;
  return r;
}

// Writes {"host_isa": ..., "threads": ..., "results": [...]}; returns false
// (with a message on stderr) if the file cannot be opened.
inline bool write_bench_json(const std::string& path,
                             const std::string& host_isa, int threads,
                             const std::vector<GemmBenchRecord>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_util: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"host_isa\": \"%s\",\n  \"threads\": %d,\n",
               host_isa.c_str(), threads);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const GemmBenchRecord& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"isa\": \"%s\", \"m\": %lld, "
                 "\"n\": %lld, \"k\": %lld, \"seconds\": %.6e, "
                 "\"gops\": %.4f, \"gbps\": %.4f}%s\n",
                 r.name.c_str(), r.isa.c_str(),
                 static_cast<long long>(r.m), static_cast<long long>(r.n),
                 static_cast<long long>(r.k), r.seconds, r.gops, r.gbps,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace qserve::benchutil
