// Shared formatting helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace qserve::benchutil {

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_ms(double seconds, int precision = 2) {
  return fmt(seconds * 1e3, precision) + " ms";
}

}  // namespace qserve::benchutil
