// Figure 7 reproduction: magnitude structure of Keys and Values before and
// after SmoothAttention, on the synthetic model's calibration pass. Prints
// per-channel abs-max summaries and the outlier ratio that the heatmaps in
// the paper visualize.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "accuracy_common.h"
#include "bench_util.h"
#include "qoq/smooth_attention.h"
#include "quant/kv_quant.h"

using namespace qserve;
using namespace qserve::benchacc;
using namespace qserve::benchutil;

namespace {

void channel_summary(const char* label, const Tensor& x) {
  std::vector<float> cmax(static_cast<size_t>(x.cols()), 0.0f);
  for (int64_t t = 0; t < x.rows(); ++t)
    for (int64_t c = 0; c < x.cols(); ++c)
      cmax[size_t(c)] = std::max(cmax[size_t(c)], std::abs(x.at2(t, c)));
  std::vector<float> sorted = cmax;
  std::sort(sorted.begin(), sorted.end());
  const float p50 = sorted[sorted.size() / 2];
  const float p90 = sorted[sorted.size() * 9 / 10];
  const float top = sorted.back();
  row({label, fmt(p50, 2), fmt(p90, 2), fmt(top, 2),
       fmt(channel_outlier_ratio(x), 1) + "x"},
      30);
}

}  // namespace

int main() {
  AccuracySetup setup(toy_config(2));
  header("Figure 7: Key/Value channel magnitudes (layer 0)");
  row({"tensor", "p50 |ch|max", "p90", "max", "outlier ratio"}, 30);

  const Tensor& keys = setup.calib.post_rope_keys[0];
  const Tensor& values = setup.calib.values[0];
  channel_summary("Keys (original)", keys);
  channel_summary("Values (original)", values);

  const auto scales = compute_smooth_attention_scales(keys, 64, 0.5f);
  channel_summary("Keys (SmoothAttention)", smooth_keys(keys, scales));

  std::printf("\n(paper: Keys show fixed ~10x outlier channels per head; "
              "Values show none; SmoothAttention flattens the Key "
              "outliers)\n");

  header("KV4 quantization error on Keys, per head (relative MSE)");
  auto rel_err = [&](const Tensor& k) {
    double err = 0, mag = 0;
    std::vector<uint8_t> codes(64);
    std::vector<float> out(64);
    for (int64_t t = 0; t < k.rows(); ++t) {
      for (int h = 0; h < 2; ++h) {
        const float* hp = k.row(t) + h * 64;
        const auto p = kv_quantize(hp, 64, 4, codes.data());
        kv_dequantize(codes.data(), 64, p, out.data());
        for (int i = 0; i < 64; ++i) {
          err += (out[size_t(i)] - hp[i]) * (out[size_t(i)] - hp[i]);
          mag += double(hp[i]) * hp[i];
        }
      }
    }
    return err / mag;
  };
  row({"original Keys", fmt(100 * rel_err(keys), 3) + "%"}, 30);
  row({"smoothed Keys", fmt(100 * rel_err(smooth_keys(keys, scales)), 3) + "%"},
      30);
  return 0;
}
