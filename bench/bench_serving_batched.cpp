// Batched step executor vs per-request execution: decode throughput and
// time-to-first-token at batch 1 / 4 / 16 on the real CPU engine.
//
// The sequential path runs one forward call per request — every decode GEMM
// at m=1, the memory/unpack-bound regime. The batched path lowers the whole
// StepPlan into one forward_step, so each projection GEMM sees all the step's
// rows at once and reuses every unpacked weight tile across them.
//
// Invoked with `--json <path>` it writes regression records for
// bench/check_regression.py. Serving rows reuse the GemmBenchRecord schema
// with `gops` carrying tokens/second (decode rows) or first-tokens/second
// (TTFT rows) — the regression gate only compares ratios of that field —
// and m = batch size, n = tokens measured.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "kernels/cpu/isa.h"
#include "serving/engine.h"

namespace qserve {
namespace {

constexpr int kPromptLen = 16;
constexpr int kMaxNew = 32;

// Bigger than toy_config on purpose: ~5 MB of packed weights per model, so a
// per-request m=1 decode GEMM re-streams the weights from L3/DRAM for every
// request, while the batched step reads them once per step — the
// memory-bound-decode regime the W4A8 design targets (Fig. 3). Still small
// enough for a 1-core CI runner.
ModelConfig bench_config() {
  ModelConfig cfg;
  cfg.name = "bench-serving";
  cfg.hidden = 512;
  cfg.n_layers = 2;
  cfg.n_heads = 8;
  cfg.n_kv_heads = 4;
  cfg.head_dim = 64;
  cfg.ffn_dim = 1024;
  cfg.vocab = 1024;
  return cfg;
}

struct RunResult {
  double decode_tokens_per_second = 0;
  double decode_seconds = 0;
  double ttft_ms = 0;  // mean wall-clock first-token latency
  int64_t decode_tokens = 0;
  int64_t peak_batch_tokens = 0;
};

RunResult run(const ModelWeights& weights, int batch, bool batched_step) {
  QuantizedModel model(weights, QuantSchemeConfig::qserve_w4a8kv4_g128());
  EngineConfig cfg;
  cfg.scheduler.max_batch = batch;
  // One chunk covers every prompt: step 1 is pure prefill (TTFT), the rest
  // are pure decode steps, so the decode split is uncontaminated.
  cfg.scheduler.prefill_chunk = 1 << 12;
  cfg.batched_step = batched_step;
  ServingEngine engine(&model, cfg);

  std::vector<int> ids;
  for (int i = 0; i < batch; ++i) {
    std::vector<int> prompt;
    for (int t = 0; t < kPromptLen; ++t) prompt.push_back((31 * t + i) % 512);
    ids.push_back(engine.submit(prompt, kMaxNew));
  }

  std::vector<double> first_ms(ids.size(), -1);
  const auto t0 = std::chrono::steady_clock::now();
  while (engine.step()) {
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    for (size_t i = 0; i < ids.size(); ++i)
      if (first_ms[i] < 0 && engine.request(ids[i]).first_token_step >= 0)
        first_ms[i] = ms;
  }
  const EngineStats stats = engine.drain();

  RunResult r;
  r.decode_tokens = stats.decode_tokens;
  r.decode_seconds = stats.decode_seconds;
  r.decode_tokens_per_second = stats.decode_tokens_per_second;
  r.peak_batch_tokens = stats.peak_batch_tokens;
  for (double ms : first_ms) r.ttft_ms += ms / double(first_ms.size());
  return r;
}

int run_suite(const std::string& json_path) {
  const ModelWeights weights = make_synthetic_weights(bench_config());
  std::vector<benchutil::GemmBenchRecord> rows;
  // scalar first (the CI regression anchor), then the host's best ISA.
  std::vector<cpu::Isa> isas{cpu::Isa::kScalar};
  if (cpu::detected_isa() != cpu::Isa::kScalar)
    isas.push_back(cpu::detected_isa());

  std::printf("%d-token prompts, %d new tokens each, W4A8KV4 model "
              "(hidden=512, 2 layers)\n",
              kPromptLen, kMaxNew);
  std::printf("%-8s %-6s %-12s %16s %16s %10s\n", "isa", "batch", "mode",
              "decode tok/s", "TTFT ms", "speedup");
  for (cpu::Isa isa : isas) {
    cpu::set_isa(isa);
    for (int batch : {1, 4, 16}) {
      RunResult seq, bat;
      // Best-of-3: engine runs are deterministic, wall clock is not.
      for (int rep = 0; rep < 3; ++rep) {
        const RunResult s = run(weights, batch, /*batched_step=*/false);
        const RunResult b = run(weights, batch, /*batched_step=*/true);
        if (s.decode_tokens_per_second > seq.decode_tokens_per_second)
          seq = s;
        if (b.decode_tokens_per_second > bat.decode_tokens_per_second)
          bat = b;
      }
      const char* iname = cpu::isa_name(isa);
      const std::string tag = "/b" + std::to_string(batch);
      auto push = [&](const std::string& name, double per_second,
                      double seconds, int64_t tokens) {
        benchutil::GemmBenchRecord r;
        r.name = name;
        r.isa = iname;
        r.m = batch;
        r.n = tokens;
        r.k = kPromptLen;
        r.seconds = seconds;
        r.gops = per_second;  // tokens/second (see file comment)
        rows.push_back(r);
      };
      push("serving_decode_seq" + tag, seq.decode_tokens_per_second,
           seq.decode_seconds, seq.decode_tokens);
      push("serving_decode_batched" + tag, bat.decode_tokens_per_second,
           bat.decode_seconds, bat.decode_tokens);
      push("serving_ttft_seq" + tag, 1e3 / seq.ttft_ms, seq.ttft_ms / 1e3,
           batch);
      push("serving_ttft_batched" + tag, 1e3 / bat.ttft_ms, bat.ttft_ms / 1e3,
           batch);
      std::printf("%-8s %-6d %-12s %16.1f %16.2f %10s\n", iname, batch,
                  "sequential", seq.decode_tokens_per_second, seq.ttft_ms,
                  "");
      std::printf("%-8s %-6d %-12s %16.1f %16.2f %9.2fx\n", iname, batch,
                  "batched", bat.decode_tokens_per_second, bat.ttft_ms,
                  bat.decode_tokens_per_second /
                      seq.decode_tokens_per_second);
    }
    cpu::clear_isa_override();
  }

  if (!json_path.empty()) {
    if (!benchutil::write_bench_json(json_path,
                                     cpu::isa_name(cpu::detected_isa()),
                                     num_threads(), rows))
      return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace qserve

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }
  return qserve::run_suite(json_path);
}
