// System-design ablations (§5.2): quantifies each QServe kernel decision in
// isolation —
//   A. compute-aware weight reorder vs strided ldmatrix-incompatible access
//   B. subtraction-after-multiplication vs the alternatives (saturated
//      arithmetic / sub-before-mul) for level-2 dequantization
//   C. per-channel vs per-group W4A8 on both devices (the §6.3 choice)
#include <algorithm>
#include <cstdio>
#include <initializer_list>

#include "bench_util.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "kernels/rlp.h"
#include "quant/quantize.h"
#include "simulator/gemm_model.h"

using namespace qserve;
using namespace qserve::sim;
using namespace qserve::benchutil;

int main() {
  const DeviceSpec a100 = a100_80g();
  const DeviceSpec l40s = l40s_48g();

  header("A. compute-aware weight reorder (Fig. 12): modeled GEMM time");
  row({"m", "strided access", "reordered", "speedup"}, 18);
  for (int m : {8, 16, 32, 64, 128}) {
    GemmShape s{.m = m, .n = 4096, .k = 4096};
    s.strided_weight_access = true;
    const double strided =
        gemm_cost(a100, GemmPipeline::kW4A8PerGroup, s).seconds;
    s.strided_weight_access = false;
    const double reordered =
        gemm_cost(a100, GemmPipeline::kW4A8PerGroup, s).seconds;
    row({std::to_string(m), fmt_ms(strided, 3), fmt_ms(reordered, 3),
         fmt(strided / reordered, 2) + "x"},
        18);
  }
  std::printf("(the reorder removes per-fragment pointer arithmetic and "
              "restores 128-bit loads; §4.1 quotes up to 67%% throughput "
              "loss for the saturated alternative)\n");

  header("B. level-2 dequant computation order (Fig. 14), 1M random groups");
  {
    Rng rng(9);
    int after_ok = 0, before_ok = 0, total = 0;
    for (int trial = 0; trial < 1000000; ++trial) {
      const int s1 = rng.uniform_int(1, 16);
      const int z = rng.uniform_int(0, std::min(15, 127 / s1));
      const int lo = std::max(0, z - 128 / s1);
      const int hi = std::min({15, z + 127 / s1, 255 / s1});
      uint8_t q[4];
      uint32_t lanes = 0;
      for (int l = 0; l < 4; ++l) {
        q[l] = static_cast<uint8_t>(rng.uniform_int(lo, hi));
        lanes |= uint32_t(q[l]) << (8 * l);
      }
      const uint32_t after =
          dequant4_sub_after_mul(lanes, uint8_t(s1), uint8_t(z));
      const uint32_t before =
          dequant4_sub_before_mul(lanes, uint8_t(s1), uint8_t(z));
      bool after_all = true, before_all = true;
      for (int l = 0; l < 4; ++l) {
        const int expect = (int(q[l]) - z) * s1;
        if (int(lane_s8(after, l)) != expect) after_all = false;
        if (int(lane_s8(before, l)) != expect) before_all = false;
      }
      after_ok += after_all;
      before_ok += before_all;
      ++total;
    }
    row({"sub-after-mul correct", fmt(100.0 * after_ok / total, 2) + "%"}, 28);
    row({"sub-before-mul correct", fmt(100.0 * before_ok / total, 2) + "%"},
        28);
    std::printf("(sub-before-mul corrupts every group containing a code "
                "below the zero point — progressive quantization makes "
                "sub-after-mul universally lane-safe)\n");
  }

  header("C. per-channel vs per-group W4A8 across devices (§6.3)");
  row({"device", "per-channel", "per-group g128", "better"}, 18);
  for (const DeviceSpec& dev : {a100, l40s}) {
    GemmShape s{.m = 64, .n = 4096, .k = 4096};
    const double pc =
        gemm_cost(dev, GemmPipeline::kW4A8PerChannel, s).seconds;
    const double pg = gemm_cost(dev, GemmPipeline::kW4A8PerGroup, s).seconds;
    row({dev.name, fmt_ms(pc, 3), fmt_ms(pg, 3),
         pc <= pg ? "per-channel" : "per-group"},
        18);
  }
  std::printf("(accuracy favors per-group; the paper picks per-channel on "
              "A100, where CUDA-core dequant is relatively expensive, and "
              "per-group on L40S, whose strong CUDA cores absorb it)\n");

  header("D. protective range: accuracy cost of [-119,119] vs [-127,127]");
  {
    Rng rng(11);
    Tensor w({16, 512});
    for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.heavy_tailed(1.0f);
    ProgressiveOptions prot;  // 119
    ProgressiveOptions naive;
    naive.level1_range = 127;
    const double e_prot = mse(w, dequantize(quantize_progressive(w, prot)));
    // The naive variant needs saturation to stay correct; measure its error
    // with clamped reconstruction.
    const auto qn = quantize_progressive(w, naive);
    const I32Tensor codes = dequantize_level1_codes(qn);
    Tensor deq({w.rows(), w.cols()});
    int saturated = 0;
    for (int64_t r = 0; r < w.rows(); ++r)
      for (int64_t c = 0; c < w.cols(); ++c) {
        int v = codes.at2(r, c);
        if (v > 127 || v < -128) ++saturated;
        v = clamp(v, -128, 127);
        deq.at2(r, c) = float(v) * qn.s0[r];
      }
    const double e_naive = mse(w, deq);
    row({"protective [-119,119] MSE", fmt(e_prot * 1e4, 3) + "e-4"}, 30);
    row({"naive [-127,127]+sat MSE", fmt(e_naive * 1e4, 3) + "e-4"}, 30);
    row({"values needing saturation", std::to_string(saturated)}, 30);
    std::printf("(the protective range costs ~nothing in accuracy and "
                "removes the saturation instructions the paper measures at "
                "up to 67%% throughput loss)\n");
  }
  return 0;
}
