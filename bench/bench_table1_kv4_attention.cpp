// Table 1 + §6.4 breakdown reproduction: decode-attention latency of the
// TRT-LLM KV8 baseline vs a naive KV4 port vs QServe's optimized KV4 kernel,
// across sequence lengths on A100 and L40S, plus the optimization ladder
// (0.48 ms -> 0.28 ms at 64x1024 in the paper).
// The final section leaves the simulator and measures this repo's real CPU
// decode-attention kernels (fused_decode_attention over the quantized paged
// KV cache), scalar vs the best ISA the host supports — the CPU-executable
// analogue of the paper's KV4 kernel claim.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "kvcache/fused_attention.h"
#include "simulator/attention_model.h"

using namespace qserve::sim;
using namespace qserve::benchutil;

namespace {

AttentionShape llama7b_shape(int batch, int seq) {
  AttentionShape s;
  s.batch = batch;
  s.seq_len = seq;
  s.n_heads = 32;
  s.n_kv_heads = 32;
  s.head_dim = 128;
  return s;
}

void table_for(const DeviceSpec& dev) {
  header("Table 1: decode attention latency, batch 64 (" + dev.name + ")");
  row({"seq len", "8-bit KV", "4-bit KV (naive)", "4-bit KV (ours)"}, 18);
  for (int seq : {128, 256, 512, 1024, 1536}) {
    const auto shape = llama7b_shape(64, seq);
    const double kv8 =
        attention_decode_cost(dev, AttentionKernelConfig::trt_kv8(), shape)
            .seconds;
    const double naive =
        attention_decode_cost(dev, AttentionKernelConfig::naive_kv4(), shape)
            .seconds;
    const double ours =
        attention_decode_cost(dev, AttentionKernelConfig::qserve_kv4(), shape)
            .seconds;
    row({std::to_string(seq), fmt_ms(kv8),
         fmt_ms(naive) + " (" + fmt(kv8 / naive, 2) + "x)",
         fmt_ms(ours) + " (" + fmt(kv8 / ours, 2) + "x)"},
        18);
  }
}

// One decode query over a populated quantized cache, timed per ISA.
double measured_decode_ms(qserve::KvPrecision p, int ctx, qserve::cpu::Isa isa) {
  using namespace qserve;
  KvCacheConfig ccfg;
  ccfg.n_kv_heads = 8;
  ccfg.head_dim = 64;
  ccfg.page_size = 16;
  ccfg.precision = p;
  ccfg.max_pages = 1 << 14;
  AttentionConfig acfg{8, 8, 64, /*fp16_accum=*/true};
  PagedKvCache cache(ccfg);
  const int seq = cache.alloc_sequence();
  Rng rng(42 + ctx);
  const size_t span = static_cast<size_t>(ccfg.n_kv_heads) * ccfg.head_dim;
  std::vector<float> k(span), v(span);
  for (int t = 0; t < ctx; ++t) {
    for (auto& x : k) x = rng.normal();
    for (auto& x : v) x = rng.normal();
    cache.append(seq, k.data(), v.data());
  }
  const size_t hd = static_cast<size_t>(acfg.n_heads) * acfg.head_dim;
  std::vector<float> q(hd), out(hd);
  for (auto& x : q) x = rng.normal();

  cpu::set_isa(isa);
  const double secs = time_best_of(
      [&] { fused_decode_attention(cache, seq, q.data(), acfg, out.data()); },
      ctx <= 512 ? 100 : 50);
  cpu::clear_isa_override();
  return secs * 1e3;
}

void measured_cpu_table() {
  using qserve::KvPrecision;
  using qserve::cpu::Isa;
  const Isa best = qserve::cpu::detected_isa();
  header("Measured CPU decode attention (this repo's kernels, 8 heads x 64)");
  row({"config", "scalar", std::string(qserve::cpu::isa_name(best))}, 22);
  for (const KvPrecision p : {KvPrecision::kInt4, KvPrecision::kInt8}) {
    for (const int ctx : {128, 512, 1024}) {
      const double scalar_ms = measured_decode_ms(p, ctx, Isa::kScalar);
      const double best_ms =
          best == Isa::kScalar ? scalar_ms : measured_decode_ms(p, ctx, best);
      row({std::string(p == KvPrecision::kInt4 ? "KV4" : "KV8") + " ctx" +
               std::to_string(ctx),
           fmt_ms(scalar_ms / 1e3, 3),
           fmt_ms(best_ms / 1e3, 3) + " (" + fmt(scalar_ms / best_ms, 2) +
               "x)"},
          22);
    }
  }
  std::printf("(same bitwise results on every ISA; see bench_attention for "
              "the regression-tracked rows)\n");
}

}  // namespace

int main() {
  table_for(a100_80g());
  std::printf("(paper A100: naive KV4 is 0.86-0.90x — a slowdown; ours is "
              "1.29-1.51x faster than KV8)\n");
  table_for(l40s_48g());
  std::printf("(paper: a naive KV4 swap is already ~1.7x faster on L40S "
              "thanks to its stronger CUDA cores)\n");

  // §6.4: optimization breakdown at 64 x 1024 on A100.
  const DeviceSpec dev = a100_80g();
  const auto shape = llama7b_shape(64, 1024);
  header("KV4 attention optimization breakdown, 64x1024 on A100 (§6.4)");
  AttentionKernelConfig cfg = AttentionKernelConfig::naive_kv4();
  row({"naive KV4",
       fmt_ms(attention_decode_cost(dev, cfg, shape).seconds)}, 34);
  cfg.bit_trick_dequant = true;
  row({"+ bit-trick dequant (5->2 ops)",
       fmt_ms(attention_decode_cost(dev, cfg, shape).seconds)}, 34);
  cfg.simplified_control = true;
  row({"+ simplified control flow",
       fmt_ms(attention_decode_cost(dev, cfg, shape).seconds)}, 34);
  cfg.fp16_arithmetic = true;
  row({"+ FP16 QK/SV arithmetic",
       fmt_ms(attention_decode_cost(dev, cfg, shape).seconds)}, 34);
  cfg.prefetch_scales = true;
  row({"+ async scale/zero prefetch",
       fmt_ms(attention_decode_cost(dev, cfg, shape).seconds)}, 34);
  std::printf("(paper ladder: 0.48 -> 0.44 -> 0.39 -> 0.33 -> 0.28 ms)\n");

  measured_cpu_table();
  return 0;
}
