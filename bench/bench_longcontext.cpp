// Long-context decode attention over the quantized paged KV cache: decode
// tok/s and KV bytes/token at context 4k / 16k / 32k, full attention vs a
// 4k sliding window with 64 attention sinks, for the MHA head layout
// (8 KV heads x 64) and the GQA g=4 layout (8 query heads sharing 2 KV
// heads), on the scalar baseline and the best ISA the host supports.
//
//   ./bench_longcontext [--json out.json]
//
// The two headline claims this bench regression-tracks (rows land in
// bench/baseline.json, gated by bench/check_regression.py):
//   * windowed decode tok/s is flat in context — the kernel visits only
//     sinks + window tokens however long the sequence grows, and the page
//     ring keeps the footprint at window_page_cap() pages (asserted here);
//   * GQA g=4 cuts KV bytes/token 4x and speeds up long-context decode
//     (4x less quantized KV traffic per step).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/cpu/isa.h"
#include "kvcache/fused_attention.h"

namespace qserve {
namespace {

using cpu::Isa;

constexpr int64_t kSink = 64;
constexpr int64_t kWindow = 4096;
constexpr int64_t kSlack = 16;  // decode appends one token at a time

struct Layout {
  const char* tag;
  int n_heads;
  int n_kv_heads;
  int head_dim;
};

struct Setup {
  KvCacheConfig ccfg;
  AttentionConfig acfg;
  std::unique_ptr<PagedKvCache> cache;
  int seq = -1;
  bool windowed = false;
  std::vector<float> q, out;

  Setup(const Layout& lay, int ctx, bool window, uint64_t seed) {
    ccfg.n_kv_heads = lay.n_kv_heads;
    ccfg.head_dim = lay.head_dim;
    ccfg.page_size = 16;
    ccfg.precision = KvPrecision::kInt4;
    ccfg.max_pages = 1 << 16;
    acfg = {lay.n_heads, lay.n_kv_heads, lay.head_dim, /*fp16_accum=*/true};
    cache = std::make_unique<PagedKvCache>(ccfg);
    seq = cache->alloc_sequence();
    windowed = window;
    if (window) cache->set_window(seq, kSink, kWindow, kSlack);
    Rng rng(seed);
    const size_t span = static_cast<size_t>(ccfg.n_kv_heads) * ccfg.head_dim;
    std::vector<float> k(span), v(span);
    for (int t = 0; t < ctx; ++t) {
      for (auto& x : k) x = rng.normal();
      for (auto& x : v) x = rng.normal();
      k[0] = 9.0f;
      cache->append(seq, k.data(), v.data());
    }
    const size_t hd = static_cast<size_t>(acfg.n_heads) * acfg.head_dim;
    q.resize(hd);
    out.resize(hd);
    for (auto& x : q) x = rng.normal();
  }

  // KV tokens one decode call actually visits.
  int64_t visible(int ctx) const {
    if (!windowed) return ctx;
    return std::min<int64_t>(ctx, kSink + kWindow);
  }

  // Quantized page bytes one call touches: K and V codes + in-page params
  // for every visited (token, kv_head), plus q in and out out.
  int64_t bytes_touched(int ctx) const {
    const int64_t vis = visible(ctx);
    const int64_t span = int64_t(ccfg.n_kv_heads) * ccfg.head_dim;
    const int bits = static_cast<int>(ccfg.precision);
    int64_t b = 2 * vis * span * bits / 8;
    b += 2 * vis * ccfg.n_kv_heads * 4;
    b += 2 * int64_t(acfg.n_heads) * acfg.head_dim * 4;
    return b;
  }

  double kv_bytes_per_token(int ctx) const {
    return double(cache->bytes_in_use()) / double(ctx);
  }
};

}  // namespace
}  // namespace qserve

int main(int argc, char** argv) {
  using namespace qserve;
  using benchutil::fmt;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  std::vector<Isa> isas{Isa::kScalar};
  if (cpu::detected_isa() != Isa::kScalar) isas.push_back(cpu::detected_isa());

  const Layout layouts[] = {
      {"mha", 8, 8, 64},   // classic multi-head layout
      {"gqa4", 8, 2, 64},  // 4 query heads per KV head (Llama-3-70B ratio)
  };

  std::vector<benchutil::GemmBenchRecord> rows;
  benchutil::header(
      "long-context decode attention: full vs 4k window + 64 sinks");
  benchutil::row({"config", "isa", "latency", "tok/s", "GB/s", "KV B/tok"});
  for (const Layout& lay : layouts) {
    for (const bool windowed : {false, true}) {
      for (const int ctx : {4096, 16384, 32768}) {
        Setup s(lay, ctx, windowed, 42 + ctx);
        if (windowed) {
          // The ring bound is part of the claim: a 32k windowed sequence
          // must hold at most window_page_cap pages, flat in context.
          const int64_t cap = PagedKvCache::window_page_cap(s.ccfg, kSink,
                                                            kWindow, kSlack);
          if (s.cache->pages_in_use() > cap) {
            std::fprintf(stderr,
                         "FAIL: windowed footprint %lld pages exceeds ring "
                         "cap %lld at ctx %d\n",
                         static_cast<long long>(s.cache->pages_in_use()),
                         static_cast<long long>(cap), ctx);
            return 1;
          }
        }
        const int reps = ctx <= 4096 ? 30 : 10;
        for (const Isa isa : isas) {
          cpu::set_isa(isa);
          const double secs = benchutil::time_best_of(
              [&] {
                fused_decode_attention(*s.cache, s.seq, s.q.data(), s.acfg,
                                       s.out.data());
              },
              reps);
          cpu::clear_isa_override();

          const std::string name = std::string("attn_long_") + lay.tag +
                                   (windowed ? "_win4k" : "_full") + "/ctx" +
                                   std::to_string(ctx);
          benchutil::GemmBenchRecord r;
          r.name = name;
          r.isa = cpu::isa_name(isa);
          r.m = 1;
          r.n = s.acfg.n_heads;
          r.k = ctx;
          r.seconds = secs;
          // tok/s in the gops slot: one fused call serves one decode token.
          r.gops = secs > 0 ? 1.0 / secs : 0.0;
          r.gbps = secs > 0 ? double(s.bytes_touched(ctx)) / secs / 1e9 : 0.0;
          rows.push_back(r);
          benchutil::row({name, r.isa, benchutil::fmt_ms(secs, 3),
                          fmt(r.gops, 0), fmt(r.gbps, 2),
                          fmt(s.kv_bytes_per_token(ctx), 0)});
        }
      }
    }
  }
  std::printf(
      "\n(windowed tok/s is flat in context; gqa4 rows move 4x fewer KV "
      "bytes per token than mha at every context)\n");

  if (!json_path.empty()) {
    if (!benchutil::write_bench_json(json_path,
                                     cpu::isa_name(cpu::detected_isa()),
                                     num_threads(), rows))
      return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
