// Figure 3 reproduction: A100 roofline for LLM serving — attainable TOPS vs
// computation intensity for every weight x activation pairing, plus the
// KV-precision attention operating points.
#include <cstdio>

#include "bench_util.h"
#include "simulator/roofline.h"

using namespace qserve::sim;
using namespace qserve::benchutil;

int main() {
  const DeviceSpec dev = a100_80g();

  header("Figure 3: A100 GEMM rooflines (attainable TOPS)");
  const auto curves = gemm_roofline_curves(dev);
  std::printf("%-22s", "intensity (MACs/elem)");
  for (const auto& c : curves) std::printf("%-22s", c.label.c_str());
  std::printf("\n");
  for (double i : {1.0, 4.0, 16.0, 32.0, 64.0, 78.0, 96.0, 128.0, 160.0,
                   192.0}) {
    std::printf("%-22s", fmt(i, 0).c_str());
    for (const auto& c : curves)
      std::printf("%-22s", fmt(attainable_tops(dev, c, i), 0).c_str());
    std::printf("\n");
  }

  header("Turning points (intensity where compute-bound begins)");
  for (const auto& c : curves)
    row({c.label, fmt(turning_point(dev, c), 1)}, 24);
  std::printf("(paper: W4A16 best below m=78, W8A8 best above; the W4A8 "
              "roofline dominates both everywhere)\n");

  header("Attention operating points (intensity = 1 MAC/element)");
  for (const auto& c : attention_roofline_curves(dev))
    row({c.label, fmt(attainable_tops(dev, c, 1.0), 2) + " TOPS"}, 24);
  std::printf("(paper: each halving of KV precision doubles attention's "
              "attainable throughput)\n");
  return 0;
}
