// Figure 16 reproduction: the QoQ technique ladder. Accuracy is measured on
// the synthetic toy model (pseudo-perplexity); serving throughput and GPU
// memory come from the L40S simulator at Llama-2-7B scale, exactly as the
// figure pairs the two axes.
#include <cstdio>

#include "accuracy_common.h"
#include "bench_util.h"
#include "simulator/serving_model.h"

using namespace qserve;
using namespace qserve::benchacc;
using namespace qserve::benchutil;
using namespace qserve::sim;

namespace {

struct Step {
  const char* label;
  QoQOptions qoq;
  QuantSchemeConfig scheme;
  SystemProfile profile;  // serving-cost configuration for this rung
};

SystemProfile with_kv8(SystemProfile p) {
  p.kv_bits = 8;
  p.attention = AttentionKernelConfig::trt_kv8();
  return p;
}

double throughput(const SystemProfile& profile) {
  const ServingWorkload wl;
  return max_throughput(l40s_48g(), profile, model_by_name("Llama-2-7B"), wl,
                        64)
      .tokens_per_second;
}

double memory_gb(const SystemProfile& profile) {
  const auto model = model_by_name("Llama-2-7B");
  const ServingWorkload wl;
  const double weights = double(model.weight_bytes(profile.weight_bits));
  const double kv = kv_pool_bytes(profile, model, wl, 64);
  return (weights + kv) / double(1ull << 30);
}

}  // namespace

int main() {
  AccuracySetup setup(toy_config(2));
  header("Figure 16: QoQ ablation ladder");
  row({"step", "pseudo-ppl", "L40S tok/s", "mem(GB,b=64)"}, 36);
  row({"FP16 reference", fmt(setup.reference_perplexity(), 3), "-", "-"}, 36);

  const SystemProfile qserve_kv4 = system_profile(System::kQServePerGroup);
  const SystemProfile qserve_kv8 = with_kv8(qserve_kv4);

  std::vector<Step> ladder;
  {
    QuantSchemeConfig w8 = QuantSchemeConfig::trt_w8a8();
    ladder.push_back({"8-bit (W8A8KV8)", rtn_options(), w8,
                      system_profile(System::kTrtW8A8)});
  }
  {
    // + 4-bit weights, still KV8.
    QuantSchemeConfig c = QuantSchemeConfig::qserve_w4a8kv4_g128();
    c.kv = KvPrecision::kInt8;
    ladder.push_back({"+ 4-bit weights (W4A8KV8)", rtn_options(), c,
                      qserve_kv8});
  }
  {
    QuantSchemeConfig c = QuantSchemeConfig::qserve_w4a8kv4_g128();
    c.kv = KvPrecision::kInt8;
    QoQOptions o = rtn_options();
    o.fold_norms = true;
    o.rotate_inputs = true;
    o.smooth_outputs = true;
    ladder.push_back({"+ block rotation & smoothing", o, c, qserve_kv8});
    QoQOptions o2 = o;
    o2.weight_clip = true;
    ladder.push_back({"+ block-MSE weight clip", o2, c, qserve_kv8});
    // + 4-bit KV.
    QuantSchemeConfig c4 = c;
    c4.kv = KvPrecision::kInt4;
    ladder.push_back({"+ 4-bit KV (W4A8KV4)", o2, c4, qserve_kv4});
    QoQOptions o3 = o2;
    o3.smooth_attention = true;
    ladder.push_back({"+ SmoothAttention", o3, c4, qserve_kv4});
    QoQOptions o4 = o3;
    o4.reorder_channels = true;
    ladder.push_back({"+ activation-aware reorder", o4, c4, qserve_kv4});
  }

  for (const auto& step : ladder) {
    const auto res = evaluate_scheme(step.label, setup.weights, setup.calib,
                                     step.qoq, step.scheme, setup.ref,
                                     setup.corpus);
    row({step.label, fmt(res.perplexity, 3),
         fmt(throughput(step.profile), 0), fmt(memory_gb(step.profile), 1)},
        36);
  }

  // Progressive vs naive two-level baseline at the final rung.
  {
    QoQOptions full;  // all techniques on
    QuantSchemeConfig prog = QuantSchemeConfig::qserve_w4a8kv4_g128();
    QuantSchemeConfig perchan =
        QuantSchemeConfig::qserve_w4a8kv4_per_channel();
    const auto rp = evaluate_scheme("prog", setup.weights, setup.calib, full,
                                    prog, setup.ref, setup.corpus);
    const auto rc = evaluate_scheme("per-chn", setup.weights, setup.calib,
                                    full, perchan, setup.ref, setup.corpus);
    row({"final QoQ, per-channel W4", fmt(rc.perplexity, 3),
         fmt(throughput(system_profile(System::kQServePerChannel)), 0),
         fmt(memory_gb(system_profile(System::kQServePerChannel)), 1)},
        36);
    row({"final QoQ, progressive g128", fmt(rp.perplexity, 3),
         fmt(throughput(system_profile(System::kQServePerGroup)), 0),
         fmt(memory_gb(system_profile(System::kQServePerGroup)), 1)},
        36);
  }

  std::printf("\n(paper Fig. 16, Llama-2-7B ppl ladder: 5.58 -> 6.19 -> "
              "5.82 [rot+smooth] -> 5.80 [clip] -> 5.75/5.82 [KV4] -> 5.70 "
              "[SmoothAttn] -> 5.66 [progressive] -> 5.67 [reorder]; "
              "throughput 688 -> ... -> 2254 tok/s; each accuracy technique "
              "recovers perplexity at negligible throughput cost)\n");
  return 0;
}
