// Overload behaviour of the serving engine: a burst of submissions far past
// the pool's capacity, served with (a) an unbounded queue, (b) bounded
// admission (max_queued_requests), and (c) bounded admission plus TTFT
// deadlines. Reports goodput, shed/expired counts, queue-depth high-water,
// and mean first-token latency of the requests that were actually served —
// the classic load-shedding story: refusing work at the door keeps latency
// flat for the traffic you accept.
//
// Plain main() reproduction binary (not part of the regression gate).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serving/engine.h"

namespace qserve {
namespace {

constexpr int kBurst = 64;      // requests submitted at once
constexpr int kPromptLen = 24;  // two KV pages each (page = 16 tokens)
constexpr int kMaxNew = 16;

struct OverloadResult {
  EngineStats stats;
  int64_t served = 0;
  int64_t refused = 0;  // shed + expired
};

OverloadResult run(const ModelWeights& weights, int64_t max_queued,
                   int64_t ttft_deadline) {
  QuantSchemeConfig scheme = QuantSchemeConfig::qserve_w4a8kv4_g128();
  scheme.kv_max_pages = 64;  // far smaller than the burst's total footprint
  QuantizedModel model(weights, scheme);
  EngineConfig cfg;
  cfg.scheduler.max_batch = 8;
  cfg.max_queued_requests = max_queued;
  ServingEngine engine(&model, cfg);

  for (int i = 0; i < kBurst; ++i) {
    std::vector<int> prompt;
    for (int t = 0; t < kPromptLen; ++t) prompt.push_back((37 * t + i) % 512);
    RequestOptions opts;
    opts.max_new_tokens = kMaxNew;
    opts.ttft_deadline_steps = ttft_deadline;
    engine.submit(prompt, opts, nullptr, nullptr);
  }
  OverloadResult r;
  r.stats = engine.run_to_completion();
  r.served = r.stats.completed;
  r.refused = r.stats.shed + r.stats.deadline_expired;
  return r;
}

int run_suite() {
  const ModelWeights weights = make_synthetic_weights(toy_config(2));
  benchutil::header("serving under overload: " + std::to_string(kBurst) +
                    "-request burst, 64-page pool");
  std::printf("%-28s %8s %8s %8s %10s %12s %14s\n", "policy", "served",
              "shed", "expired", "steps", "queue hwm", "mean TTFT stp");
  struct Case {
    const char* name;
    int64_t max_queued;
    int64_t ttft_deadline;
  };
  const Case cases[] = {
      {"unbounded queue", 0, 0},
      {"bounded (16 queued)", 16, 0},
      {"unbounded + ttft<=24 steps", 0, 24},
  };
  for (const Case& c : cases) {
    const OverloadResult r = run(weights, c.max_queued, c.ttft_deadline);
    std::printf("%-28s %8lld %8lld %8lld %10lld %12lld %14s\n", c.name,
                static_cast<long long>(r.served),
                static_cast<long long>(r.stats.shed),
                static_cast<long long>(r.stats.deadline_expired),
                static_cast<long long>(r.stats.steps),
                static_cast<long long>(r.stats.queue_depth_high_water),
                benchutil::fmt(r.stats.mean_first_token_steps).c_str());
  }
  std::printf(
      "\nEvery request finished exactly once with a definite FinishReason;\n"
      "sheds happen at submit() time, expiries at plan time — neither\n"
      "perturbs the streams of the requests that are served.\n");
  return 0;
}

}  // namespace
}  // namespace qserve

int main() { return qserve::run_suite(); }
