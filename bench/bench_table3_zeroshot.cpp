// Table 3 reproduction (synthetic proxy): two-alternative likelihood-choice
// accuracy standing in for the zero-shot common-sense suite. The claim shape:
// QoQ W4A8KV4 stays within ~1 point of FP16 while W4A4 drops several points.
#include <cstdio>

#include "accuracy_common.h"
#include "bench_util.h"

using namespace qserve;
using namespace qserve::benchacc;
using namespace qserve::benchutil;

int main() {
  // Two "sizes" of the synthetic family stand in for 7B/13B (the trend
  // across sizes is what Table 3 shows).
  for (int layers : {1, 2}) {
    const ModelConfig cfg = toy_config_mha(layers);
    AccuracySetup setup(cfg, 42 + static_cast<uint64_t>(layers));
    header("Table 3 (synthetic proxy): choice accuracy, " + cfg.name + "-" +
           std::to_string(layers) + "L");
    row({"precision", "method", "accuracy"}, 18);

    ForwardFn ref_fwd = [&](const std::vector<int>& t) {
      return setup.ref.forward(t);
    };
    row({"FP16", "-", fmt(100 * choice_accuracy(ref_fwd,
                                                setup.corpus.choice_tasks), 1)},
        18);

    struct Row {
      const char* precision;
      const char* method;
      QoQOptions qoq;
      QuantSchemeConfig scheme;
    };
    const std::vector<Row> rows = {
        {"W4A4", "QuaRot-like", [] {
           QoQOptions o = rtn_options();
           o.fold_norms = true;
           o.rotate_inputs = true;
           o.weight_clip = true;
           return o;
         }(), QuantSchemeConfig::atom_w4a4()},
        {"W4A4 g128", "Atom", rtn_options(), QuantSchemeConfig::atom_w4a4()},
        {"W4A8KV4", "QoQ", QoQOptions{},
         QuantSchemeConfig::qserve_w4a8kv4_per_channel()},
        {"W4A8KV4 g128", "QoQ", QoQOptions{},
         QuantSchemeConfig::qserve_w4a8kv4_g128()},
    };
    for (const auto& r : rows) {
      const ModelWeights transformed =
          qoq_transform(setup.weights, setup.calib, r.qoq);
      QuantizedModel qm(transformed, r.scheme);
      ForwardFn fwd = [&](const std::vector<int>& t) { return qm.forward(t); };
      row({r.precision, r.method,
           fmt(100 * choice_accuracy(fwd, setup.corpus.choice_tasks), 1)},
          18);
    }
  }
  std::printf("\n(paper Table 3, Llama-2-7B avg: FP16 68.98 | QuaRot-W4A4 "
              "64.69 | Atom-W4A4-g128 59.73 | QoQ-W4A8KV4 67.57 | QoQ-g128 "
              "67.95 — QoQ within ~1 point of FP16, W4A4 several points "
              "behind)\n");
  return 0;
}
