// Figure 17 reproduction: same-batch throughput on L40S, normalized to
// TRT-LLM-FP16, for Llama-2-7B (batch 4..64) and Llama-2-13B (batch 2..32).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "simulator/serving_model.h"

using namespace qserve;
using namespace qserve::sim;
using namespace qserve::benchutil;

namespace {

void model_sweep(const char* name, const std::vector<int>& batches) {
  const DeviceSpec dev = l40s_48g();
  const ModelConfig model = model_by_name(name);
  const ServingWorkload wl;
  const std::vector<System> systems = {
      System::kTrtFp16,         System::kTrtW4A16,
      System::kTrtW8A8,         System::kAtomW4A4,
      System::kQuarotW4A4,      System::kQServePerChannel,
      System::kQServePerGroup};

  header(std::string("Figure 17: same-batch normalized speed, ") + name +
         " on L40S (vs TRT-FP16)");
  std::printf("%-26s", "system");
  for (int b : batches) std::printf("batch=%-8d", b);
  std::printf("%-10s\n", "geomean");

  std::vector<double> fp16(batches.size(), 0.0);
  for (size_t i = 0; i < batches.size(); ++i) {
    const auto est = estimate_throughput(
        dev, system_profile(System::kTrtFp16), model, wl, batches[i]);
    fp16[i] = est.oom ? 0.0 : est.tokens_per_second;
  }

  for (System s : systems) {
    const auto profile = system_profile(s);
    std::printf("%-26s", profile.name.c_str());
    double log_sum = 0;
    int n = 0;
    for (size_t i = 0; i < batches.size(); ++i) {
      const auto est =
          estimate_throughput(dev, profile, model, wl, batches[i]);
      if (!est.supported) {
        std::printf("%-14s", "N.S.");
      } else if (est.oom) {
        std::printf("%-14s", "OOM");
      } else if (fp16[i] <= 0) {
        std::printf("%-14s", fmt(est.tokens_per_second, 0).c_str());
      } else {
        const double norm = est.tokens_per_second / fp16[i];
        std::printf("%-14s", fmt(norm, 2).c_str());
        log_sum += std::log(norm);
        ++n;
      }
    }
    std::printf("%-10s\n", n ? fmt(std::exp(log_sum / n), 2).c_str() : "-");
  }
}

}  // namespace

int main() {
  model_sweep("Llama-2-7B", {4, 8, 16, 32, 64});
  std::printf("(paper: QServe per-group ~1.45x of FP16 at batch 64; Atom "
              "0.57-0.67; QuaRot 0.34-0.37; W8A8 ~1.0-1.1)\n");
  model_sweep("Llama-2-13B", {2, 4, 8, 16, 32});
  std::printf("(paper: FP16 OOMs at batch 32 for 13B; QServe sustains it)\n");
  return 0;
}
