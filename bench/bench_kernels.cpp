// Google-benchmark microbenchmarks for the attention / KV-cache / operator
// kernels of the CPU reproduction.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "kernels/attention.h"
#include "kernels/ops.h"
#include "kvcache/paged_kv_cache.h"
#include "quant/kv_quant.h"

namespace qserve {
namespace {

Tensor random_tensor(int64_t m, int64_t d, uint64_t seed) {
  Rng rng(seed);
  Tensor t({m, d});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal();
  return t;
}

void BM_AttentionDecodeFp32(benchmark::State& state) {
  const int64_t s = state.range(0);
  const AttentionConfig cfg{8, 8, 64, false};
  const Tensor q = random_tensor(1, 512, 1);
  const Tensor k = random_tensor(s, 512, 2);
  const Tensor v = random_tensor(s, 512, 3);
  std::vector<float> out(512);
  for (auto _ : state) {
    attention_decode_token(q.row(0), k, v, cfg, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AttentionDecodeFp32)->Arg(128)->Arg(512)->Arg(1024);

void BM_AttentionDecodeFp16(benchmark::State& state) {
  const int64_t s = state.range(0);
  const AttentionConfig cfg{8, 8, 64, true};
  const Tensor q = random_tensor(1, 512, 1);
  const Tensor k = random_tensor(s, 512, 2);
  const Tensor v = random_tensor(s, 512, 3);
  std::vector<float> out(512);
  for (auto _ : state) {
    attention_decode_token(q.row(0), k, v, cfg, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AttentionDecodeFp16)->Arg(512);

void BM_KvQuantizeHead(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<float> x(128);
  for (auto& v : x) v = rng.normal();
  std::vector<uint8_t> codes(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv_quantize(x.data(), 128, bits, codes.data()));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 128);
}
BENCHMARK(BM_KvQuantizeHead)->Arg(4)->Arg(8);

void BM_PagedCacheAppendGather(benchmark::State& state) {
  KvCacheConfig cfg;
  cfg.n_kv_heads = 8;
  cfg.head_dim = 64;
  cfg.page_size = 16;
  cfg.precision = KvPrecision::kInt4;
  Rng rng(5);
  std::vector<float> kv(512);
  for (auto& v : kv) v = rng.normal();
  for (auto _ : state) {
    PagedKvCache cache(cfg);
    const int seq = cache.alloc_sequence();
    for (int t = 0; t < 64; ++t) cache.append(seq, kv.data(), kv.data());
    Tensor k, v;
    cache.gather(seq, k, v);
    benchmark::DoNotOptimize(k.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 64);
}
BENCHMARK(BM_PagedCacheAppendGather);

void BM_RmsNormQuantFused(benchmark::State& state) {
  const Tensor x = random_tensor(16, 512, 6);
  const Tensor gamma = Tensor::full({512}, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rms_norm_quant(x, gamma));
  }
}
BENCHMARK(BM_RmsNormQuantFused);

void BM_RopeInplace(benchmark::State& state) {
  std::vector<int> positions(16);
  for (int i = 0; i < 16; ++i) positions[size_t(i)] = i;
  for (auto _ : state) {
    Tensor x = random_tensor(16, 512, 7);
    rope_inplace(x, positions, 64);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_RopeInplace);

}  // namespace
}  // namespace qserve

BENCHMARK_MAIN();
