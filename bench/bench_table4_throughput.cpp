// Table 4 / Figure 15 reproduction: maximum achievable generation throughput
// for all eight models on A100-80G and L40S-48G across the six serving
// systems (1024-token prompts, 512-token generations, same memory budget).
#include <cstdio>

#include "bench_util.h"
#include "simulator/serving_model.h"

using namespace qserve;
using namespace qserve::sim;
using namespace qserve::benchutil;

namespace {

void device_table(const DeviceSpec& dev, System qserve_variant) {
  const ServingWorkload wl;
  const std::vector<System> baselines = {System::kTrtFp16, System::kTrtW4A16,
                                         System::kTrtW8A8, System::kAtomW4A4,
                                         System::kQuarotW4A4};

  header("Table 4: max throughput (tokens/s) on " + dev.name);
  std::printf("%-22s", "system");
  for (const auto& m : published_models())
    std::printf("%-13s", m.name.c_str());
  std::printf("\n");

  std::vector<double> best_trt(published_models().size(), 0.0);
  for (System s : baselines) {
    const auto profile = system_profile(s);
    std::printf("%-22s", profile.name.c_str());
    size_t mi = 0;
    for (const auto& m : published_models()) {
      const auto est = max_throughput(dev, profile, m, wl);
      std::string cell = !est.supported ? "N.S."
                         : est.oom      ? "OOM"
                                        : fmt(est.tokens_per_second, 0);
      if (est.supported && !est.oom &&
          (s == System::kTrtFp16 || s == System::kTrtW4A16 ||
           s == System::kTrtW8A8)) {
        best_trt[mi] = std::max(best_trt[mi], est.tokens_per_second);
      }
      std::printf("%-13s", cell.c_str());
      ++mi;
    }
    std::printf("\n");
  }

  const auto qprofile = system_profile(qserve_variant);
  std::printf("%-22s", (qprofile.name + " (ours)").c_str());
  std::vector<double> ours;
  for (const auto& m : published_models()) {
    const auto est = max_throughput(dev, qprofile, m, wl);
    ours.push_back(est.tokens_per_second);
    std::printf("%-13s", est.oom ? "OOM" : fmt(est.tokens_per_second, 0).c_str());
  }
  std::printf("\n%-22s", "speedup vs best TRT");
  for (size_t i = 0; i < ours.size(); ++i) {
    std::printf("%-13s",
                best_trt[i] > 0 ? (fmt(ours[i] / best_trt[i], 2) + "x").c_str()
                                : "-");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  device_table(a100_80g(), System::kQServePerChannel);
  std::printf("(paper A100 speedups: 1.20x / 1.25x / 1.22x / 1.36x / 2.07x "
              "/ 1.23x / 1.17x / 2.38x)\n");
  device_table(l40s_48g(), System::kQServePerGroup);
  std::printf("(paper L40S speedups: 1.39x / 1.88x / 1.47x / 3.02x / 3.41x "
              "/ 2.39x / 2.40x / 3.47x; FP16 and W8A8 OOM for the 70B-class "
              "models)\n");
  return 0;
}
