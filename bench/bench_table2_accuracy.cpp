// Table 2 reproduction (synthetic proxy): pseudo-perplexity of the toy
// models under every precision/algorithm pairing the paper tabulates.
// Absolute values are not comparable to WikiText2; the reproducible claim is
// the ORDERING: FP16 <= W8A8 ~ W4A16 < QoQ-W4A8KV4 < RTN/W4A4.
#include <cstdio>

#include "accuracy_common.h"
#include "bench_util.h"

using namespace qserve;
using namespace qserve::benchacc;
using namespace qserve::benchutil;

namespace {

struct SchemeRow {
  const char* precision;
  const char* algorithm;
  QoQOptions qoq;
  QuantSchemeConfig scheme;
};

QoQOptions awq_like() {
  // AWQ: activation-aware clipping, no rotation/smoothing.
  QoQOptions o = rtn_options();
  o.weight_clip = true;
  o.reorder_channels = true;
  return o;
}

}  // namespace

int main() {
  for (const bool gqa : {true, false}) {
    const ModelConfig cfg = gqa ? toy_config(2) : toy_config_mha(2);
    AccuracySetup setup(cfg);
    header(std::string("Table 2 (synthetic proxy): pseudo-perplexity, ") +
           cfg.name);
    row({"precision", "algorithm", "pseudo-ppl"}, 20);
    row({"FP16", "-", fmt(setup.reference_perplexity(), 2)}, 20);

    std::vector<SchemeRow> rows;
    rows.push_back({"W8A8", "SmoothQuant", rtn_options(),
                    QuantSchemeConfig::trt_w8a8()});
    rows.push_back({"W4A16 g128", "AWQ", awq_like(),
                    QuantSchemeConfig::trt_w4a16()});
    rows.push_back({"W4A4 g128", "Atom", rtn_options(),
                    QuantSchemeConfig::atom_w4a4()});
    rows.push_back({"W4A8KV4", "RTN", rtn_options(),
                    QuantSchemeConfig::qserve_w4a8kv4_per_channel()});
    rows.push_back({"W4A8KV4", "QoQ", QoQOptions{},
                    QuantSchemeConfig::qserve_w4a8kv4_per_channel()});
    rows.push_back({"W4A8KV4 g128", "RTN", rtn_options(),
                    QuantSchemeConfig::qserve_w4a8kv4_g128()});
    rows.push_back({"W4A8KV4 g128", "QoQ", QoQOptions{},
                    QuantSchemeConfig::qserve_w4a8kv4_g128()});
    for (const auto& r : rows) {
      const auto res = evaluate_scheme(r.algorithm, setup.weights, setup.calib,
                                       r.qoq, r.scheme, setup.ref,
                                       setup.corpus);
      row({r.precision, r.algorithm, fmt(res.perplexity, 2)}, 20);
    }
  }
  std::printf("\n(paper Table 2, Llama-2-7B: FP16 5.47 | W8A8 5.54 | W4A16-"
              "AWQ 5.60 | W4A4-Atom 6.16 | W4A8KV4 RTN 6.51 / QoQ 5.75 | "
              "g128 RTN 5.99 / QoQ 5.67 — QoQ recovers most of the RTN gap "
              "and beats W4A4 everywhere)\n");
  return 0;
}
