#include "eval/harness.h"

#include <algorithm>

#include "common/rng.h"

namespace qserve {

EvalCorpus build_eval_corpus(const ReferenceModel& ref,
                             const EvalCorpusOptions& opt) {
  Rng rng(opt.seed);
  const int64_t vocab = ref.config().vocab;
  EvalCorpus corpus;

  auto random_prompt = [&](int len) {
    std::vector<int> p(static_cast<size_t>(len));
    for (auto& t : p) t = rng.uniform_int(0, static_cast<int>(vocab) - 1);
    return p;
  };

  for (int i = 0; i < opt.calib_sequences; ++i) {
    corpus.calibration.push_back(ref.generate(
        random_prompt(8), opt.calib_len - 8, 1.0f, rng.engine()()));
  }
  for (int i = 0; i < opt.eval_sequences; ++i) {
    corpus.eval.push_back(ref.generate(random_prompt(8), opt.eval_len - 8,
                                       0.8f, rng.engine()()));
  }
  for (int i = 0; i < opt.n_choice_tasks; ++i) {
    ChoiceTask task;
    task.prompt = ref.generate(random_prompt(4), opt.choice_prompt_len - 4,
                               0.8f, rng.engine()());
    // Correct continuation: the model's own greedy continuation.
    const auto full = ref.generate(task.prompt, opt.choice_cont_len, 0.0f,
                                   rng.engine()());
    task.correct.assign(full.begin() + static_cast<int64_t>(task.prompt.size()),
                        full.end());
    // Distractor: the correct continuation with one token replaced by a
    // mid-rank alternative under the reference model. This makes the
    // likelihood margin small, so the task discriminates quantization
    // damage instead of being trivially separable (DESIGN.md §1).
    task.distractor = task.correct;
    {
      const size_t pos = static_cast<size_t>(
          rng.uniform_int(0, opt.choice_cont_len - 1));
      std::vector<int> ctx = task.prompt;
      ctx.insert(ctx.end(), task.correct.begin(),
                 task.correct.begin() + static_cast<int64_t>(pos));
      const Tensor logits = ref.forward(ctx);
      const int64_t last = logits.rows() - 1;
      // Pick the token ranked ~4-10 at that position.
      const int target_rank = 4 + rng.uniform_int(0, 6);
      std::vector<int> order(static_cast<size_t>(vocab));
      for (size_t v = 0; v < order.size(); ++v) order[v] = static_cast<int>(v);
      std::partial_sort(order.begin(), order.begin() + target_rank + 1,
                        order.end(), [&](int a, int b) {
                          return logits.at2(last, a) > logits.at2(last, b);
                        });
      int alt = order[static_cast<size_t>(target_rank)];
      if (alt == task.correct[pos]) alt = order[0] == alt ? order[1] : order[0];
      task.distractor[pos] = alt;
    }
    if (task.distractor == task.correct) continue;
    corpus.choice_tasks.push_back(std::move(task));
  }
  for (int i = 0; i < opt.n_long_prompts; ++i) {
    corpus.long_prompts.push_back(ref.generate(
        random_prompt(8), opt.long_prompt_len - 8, 1.0f, rng.engine()()));
  }
  return corpus;
}

QoQOptions rtn_options() {
  QoQOptions o;
  o.fold_norms = false;
  o.rotate_inputs = false;
  o.smooth_attention = false;
  o.smooth_outputs = false;
  o.reorder_channels = false;
  o.weight_clip = false;
  return o;
}

EvalResult evaluate_scheme(const std::string& label,
                           const ModelWeights& weights,
                           const CalibrationData& calib,
                           const QoQOptions& qoq,
                           const QuantSchemeConfig& scheme,
                           const ReferenceModel& ref, const EvalCorpus& corpus,
                           bool with_kl) {
  const ModelWeights transformed = qoq_transform(weights, calib, qoq);
  QuantizedModel qmodel(transformed, scheme);

  ForwardFn quant_fwd = [&](const std::vector<int>& toks) {
    return qmodel.forward(toks);
  };

  EvalResult result;
  result.label = label;
  result.perplexity = pseudo_perplexity(quant_fwd, corpus.eval);
  if (with_kl) {
    ForwardFn ref_fwd = [&](const std::vector<int>& toks) {
      return ref.forward(toks);
    };
    result.kl_to_ref = mean_kl_to_reference(ref_fwd, quant_fwd, corpus.eval);
  }
  return result;
}

}  // namespace qserve
