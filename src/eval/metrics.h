// Accuracy metrics for the synthetic evaluation (DESIGN.md §1 documents the
// substitution for WikiText2 / lm-eval):
//   * pseudo-perplexity — exp(mean next-token NLL) of a token stream under a
//     model, the direct analogue of WikiText2 perplexity;
//   * KL divergence to the FP32 reference — a sharper probe of quantization
//     damage on the output distribution;
//   * choice accuracy — a two-alternative likelihood task standing in for
//     the zero-shot common-sense suite (Table 3);
//   * greedy agreement — long-generation match rate vs the reference
//     (Table 5 long-context proxy).
#pragma once

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace qserve {

// forward(tokens) -> logits [n, vocab].
using ForwardFn = std::function<Tensor(const std::vector<int>&)>;

double pseudo_perplexity(const ForwardFn& forward,
                         const std::vector<std::vector<int>>& corpus);

// Mean KL(ref || model) over all positions of all sequences.
double mean_kl_to_reference(const ForwardFn& reference, const ForwardFn& model,
                            const std::vector<std::vector<int>>& corpus);

struct ChoiceTask {
  std::vector<int> prompt;
  std::vector<int> correct;     // reference-preferred continuation
  std::vector<int> distractor;  // perturbed continuation
};

// Fraction of tasks where the model assigns higher total log-likelihood to
// the correct continuation.
double choice_accuracy(const ForwardFn& forward,
                       const std::vector<ChoiceTask>& tasks);

// Token-level greedy agreement between model and reference over `horizon`
// generated tokens from each prompt (teacher-forced on the reference path).
double greedy_agreement(const ForwardFn& reference, const ForwardFn& model,
                        const std::vector<std::vector<int>>& prompts,
                        int horizon);

}  // namespace qserve
