// Evaluation harness: builds synthetic corpora / tasks from a reference
// model and evaluates quantization schemes against it — the machinery behind
// Tables 2/3/5 and the Figure 16 ablation ladder.
#pragma once

#include <string>

#include "eval/metrics.h"
#include "model/qoq_quantizer.h"
#include "model/quantized_model.h"
#include "model/reference_model.h"

namespace qserve {

struct EvalCorpus {
  std::vector<std::vector<int>> calibration;  // for QoQ transforms
  std::vector<std::vector<int>> eval;         // for perplexity
  std::vector<ChoiceTask> choice_tasks;       // zero-shot proxy
  std::vector<std::vector<int>> long_prompts; // long-context proxy
};

struct EvalCorpusOptions {
  int calib_sequences = 2;
  int calib_len = 48;
  int eval_sequences = 4;
  int eval_len = 48;
  int n_choice_tasks = 24;
  int choice_prompt_len = 16;
  int choice_cont_len = 4;
  int n_long_prompts = 2;
  int long_prompt_len = 96;
  uint64_t seed = 123;
};

// Sequences are sampled from the reference model itself so that "perplexity"
// measures how well a quantized variant preserves the model's own
// distribution (see DESIGN.md §1).
EvalCorpus build_eval_corpus(const ReferenceModel& ref,
                             const EvalCorpusOptions& opt = {});

struct EvalResult {
  std::string label;
  double perplexity = 0;
  double kl_to_ref = 0;
};

// Evaluate one quantization configuration: QoQ-transform (per `qoq`),
// quantize (per `scheme`), and measure pseudo-perplexity on the corpus.
EvalResult evaluate_scheme(const std::string& label,
                           const ModelWeights& weights,
                           const CalibrationData& calib,
                           const QoQOptions& qoq,
                           const QuantSchemeConfig& scheme,
                           const ReferenceModel& ref, const EvalCorpus& corpus,
                           bool with_kl = false);

// Convenience: QoQOptions with every technique disabled (plain RTN).
QoQOptions rtn_options();

}  // namespace qserve
