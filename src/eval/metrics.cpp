#include "eval/metrics.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace qserve {

namespace {

// Log-softmax of one logits row at index `target`.
double token_logprob(const Tensor& logits, int64_t row, int target) {
  const int64_t vocab = logits.cols();
  double m = logits.at2(row, 0);
  for (int64_t v = 1; v < vocab; ++v)
    m = std::max(m, double(logits.at2(row, v)));
  double lse = 0.0;
  for (int64_t v = 0; v < vocab; ++v)
    lse += std::exp(double(logits.at2(row, v)) - m);
  return double(logits.at2(row, target)) - m - std::log(lse);
}

}  // namespace

double pseudo_perplexity(const ForwardFn& forward,
                         const std::vector<std::vector<int>>& corpus) {
  QS_CHECK_MSG(!corpus.empty(), "pseudo_perplexity over an empty corpus");
  double nll = 0.0;
  int64_t count = 0;
  for (const auto& tokens : corpus) {
    QS_CHECK_GE(tokens.size(), 2u);
    const Tensor logits = forward(tokens);
    for (size_t t = 1; t < tokens.size(); ++t) {
      nll -= token_logprob(logits, static_cast<int64_t>(t - 1), tokens[t]);
      ++count;
    }
  }
  QS_CHECK_GT(count, 0);
  return std::exp(nll / double(count));
}

double mean_kl_to_reference(const ForwardFn& reference, const ForwardFn& model,
                            const std::vector<std::vector<int>>& corpus) {
  QS_CHECK_MSG(!corpus.empty(), "mean_kl_to_reference over an empty corpus");
  double kl = 0.0;
  int64_t count = 0;
  for (const auto& tokens : corpus) {
    const Tensor lr = reference(tokens);
    const Tensor lm = model(tokens);
    QS_CHECK(lr.same_shape(lm));
    const int64_t vocab = lr.cols();
    std::vector<float> p(static_cast<size_t>(vocab));
    std::vector<float> q(static_cast<size_t>(vocab));
    for (int64_t row = 0; row < lr.rows(); ++row) {
      for (int64_t v = 0; v < vocab; ++v) {
        p[size_t(v)] = lr.at2(row, v);
        q[size_t(v)] = lm.at2(row, v);
      }
      softmax_inplace(p.data(), static_cast<int>(vocab));
      softmax_inplace(q.data(), static_cast<int>(vocab));
      for (int64_t v = 0; v < vocab; ++v) {
        if (p[size_t(v)] > 1e-8f)
          kl += double(p[size_t(v)]) *
                (std::log(double(p[size_t(v)])) -
                 std::log(std::max(double(q[size_t(v)]), 1e-12)));
      }
      ++count;
    }
  }
  QS_CHECK_GT(count, 0);
  return kl / double(count);
}

namespace {

double continuation_logprob(const ForwardFn& forward,
                            const std::vector<int>& prompt,
                            const std::vector<int>& continuation) {
  std::vector<int> full = prompt;
  full.insert(full.end(), continuation.begin(), continuation.end());
  const Tensor logits = forward(full);
  double lp = 0.0;
  for (size_t i = 0; i < continuation.size(); ++i) {
    const int64_t row = static_cast<int64_t>(prompt.size() + i - 1);
    lp += token_logprob(logits, row, continuation[i]);
  }
  return lp;
}

}  // namespace

double choice_accuracy(const ForwardFn& forward,
                       const std::vector<ChoiceTask>& tasks) {
  QS_CHECK(!tasks.empty());
  int correct = 0;
  for (const auto& task : tasks) {
    const double lp_good =
        continuation_logprob(forward, task.prompt, task.correct);
    const double lp_bad =
        continuation_logprob(forward, task.prompt, task.distractor);
    if (lp_good > lp_bad) ++correct;
  }
  return double(correct) / double(tasks.size());
}

double greedy_agreement(const ForwardFn& reference, const ForwardFn& model,
                        const std::vector<std::vector<int>>& prompts,
                        int horizon) {
  QS_CHECK_MSG(!prompts.empty(), "greedy_agreement over an empty prompt set");
  QS_CHECK_GT(horizon, 0);
  int agree = 0, total = 0;
  for (const auto& prompt : prompts) {
    std::vector<int> ctx = prompt;
    for (int i = 0; i < horizon; ++i) {
      const Tensor lr = reference(ctx);
      const Tensor lm = model(ctx);
      const int64_t row = lr.rows() - 1;
      int64_t ar = 0, am = 0;
      for (int64_t v = 1; v < lr.cols(); ++v) {
        if (lr.at2(row, v) > lr.at2(row, ar)) ar = v;
        if (lm.at2(row, v) > lm.at2(row, am)) am = v;
      }
      if (ar == am) ++agree;
      ++total;
      ctx.push_back(static_cast<int>(ar));  // teacher-forced on reference
    }
  }
  return double(agree) / double(total);
}

}  // namespace qserve
