// Weight clipping via grid search (§4.3.4).
//
// QoQ minimizes *layer output* error ||X W^T - X Q(W; α)^T|| for all linear
// layers (and block-output error for q_proj/k_proj, which callers express by
// passing a custom error functor).
#pragma once

#include <functional>

#include "quant/quantize.h"
#include "tensor/tensor.h"

namespace qserve {

struct ClipSearchOptions {
  float min_ratio = 0.5f;
  int steps = 10;          // grid: 1.0, 1.0-δ, ..., min_ratio
  int group = 128;         // group size for the trial quantizer
  bool progressive = true; // QoQ progressive vs plain per-channel W4
};

// Scale each row of `w` so its dynamic range is `ratio` of the original
// (values are clamped to the shrunken range, not rescaled).
Tensor clip_weights(const Tensor& w, float ratio);

// Quantize with clipping ratio `ratio` using the trial quantizer from `opt`
// and return the dequantized weights.
Tensor quantize_dequantize_clipped(const Tensor& w, float ratio,
                                   const ClipSearchOptions& opt);

// Grid-search the clip ratio that minimizes ||X W^T - X Q(W;α)^T||_F^2.
// `x` is calibration activations [m, k].
struct ClipResult {
  float ratio = 1.0f;
  double error = 0.0;
};
ClipResult search_clip_output_mse(const Tensor& w, const Tensor& x,
                                  const ClipSearchOptions& opt = {});

// Generic form: caller supplies error(ratio) — used for the block-output MSE
// objective of q_proj / k_proj (Eq. 10).
ClipResult search_clip_custom(const std::function<double(float)>& error_fn,
                              const ClipSearchOptions& opt = {});

// Grid-search minimizing weight-space error ||W - Q(W;α)||_F^2 (the
// tensor-self objective used by prior work; kept for ablation).
ClipResult search_clip_weight_mse(const Tensor& w,
                                  const ClipSearchOptions& opt = {});

}  // namespace qserve
