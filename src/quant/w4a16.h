// W4A16 per-group weight-only quantization (AWQ / GPTQ-style baseline).
//
// Asymmetric UINT4 codes with one FP16 scale + zero point per group; the
// GEMM dequantizes weights to FP16 in the main loop (Fig. 5b) and computes on
// FP16 tensor cores.
#pragma once

#include "common/half.h"
#include "common/math_util.h"
#include "quant/types.h"

namespace qserve {

struct W4A16PerGroup {
  PackedU4 qw;  // [n, k]
  U8Tensor z;   // [n, k/g] zero points in [0, 15]
  Tensor s;     // [n, k/g] FP16 scales
  int group = 128;

  int64_t n() const { return qw.rows; }
  int64_t k() const { return qw.cols; }
};

inline W4A16PerGroup quantize_w4a16(const Tensor& w, int group) {
  QS_CHECK_EQ(w.ndim(), 2);
  const int64_t n = w.rows(), k = w.cols();
  QS_CHECK_EQ(k % group, 0);
  const int64_t ng = k / group;
  W4A16PerGroup out;
  out.group = group;
  out.z = U8Tensor({n, ng});
  out.s = Tensor({n, ng});
  U8Tensor codes({n, k});
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t g = 0; g < ng; ++g) {
      const int64_t base = g * group;
      float lo = w.at2(r, base), hi = lo;
      for (int64_t c = 1; c < group; ++c) {
        lo = std::min(lo, w.at2(r, base + c));
        hi = std::max(hi, w.at2(r, base + c));
      }
      lo = std::min(lo, 0.0f);
      hi = std::max(hi, 0.0f);
      float s = to_half_precision((hi - lo) / 15.0f);
      if (s <= 0.0f) s = 6.103515625e-05f;
      const int z = clamp(round_half_away(-lo / s), 0, 15);
      out.s.at2(r, g) = s;
      out.z.at2(r, g) = static_cast<uint8_t>(z);
      for (int64_t c = 0; c < group; ++c) {
        codes.at2(r, base + c) =
            clamp_u4(round_half_away(w.at2(r, base + c) / s) + z);
      }
    }
  }
  out.qw = pack_u4(codes);
  return out;
}

inline Tensor dequantize(const W4A16PerGroup& q) {
  Tensor w({q.n(), q.k()});
  for (int64_t r = 0; r < q.n(); ++r) {
    for (int64_t c = 0; c < q.k(); ++c) {
      const int64_t g = c / q.group;
      w.at2(r, c) = float(int(get_u4(q.qw, r, c)) - int(q.z.at2(r, g))) *
                    q.s.at2(r, g);
    }
  }
  return w;
}

}  // namespace qserve
