#include "quant/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/half.h"
#include "common/math_util.h"
#include "common/parallel.h"

namespace qserve {

namespace {

// FP16-precision scale, guarded against zero rows.
float fp16_scale(float abs_max, float qmax) {
  float s = abs_max / qmax;
  if (s <= 0.0f) s = 1.0f;
  s = to_half_precision(s);
  if (s <= 0.0f) s = 6.103515625e-05f;  // smallest normal half
  return s;
}

}  // namespace

// --- W8A8 --------------------------------------------------------------------

W8PerChannel quantize_w8_per_channel(const Tensor& w) {
  QS_CHECK_EQ(w.ndim(), 2);
  const int64_t n = w.rows(), k = w.cols();
  W8PerChannel out;
  out.qw = I8Tensor({n, k});
  out.s = Tensor({n});
  for (int64_t r = 0; r < n; ++r) {
    const float s = fp16_scale(abs_max(w.row(r), k), 127.0f);
    out.s[r] = s;
    const float inv = 1.0f / s;
    for (int64_t c = 0; c < k; ++c) {
      out.qw.at2(r, c) = clamp_i8(round_half_away(w.at2(r, c) * inv));
    }
  }
  return out;
}

Tensor dequantize(const W8PerChannel& q) {
  Tensor w({q.n(), q.k()});
  for (int64_t r = 0; r < q.n(); ++r)
    for (int64_t c = 0; c < q.k(); ++c)
      w.at2(r, c) = float(q.qw.at2(r, c)) * q.s[r];
  return w;
}

// --- per-channel W4A8 ---------------------------------------------------------

W4PerChannel quantize_w4_per_channel(const Tensor& w) {
  QS_CHECK_EQ(w.ndim(), 2);
  const int64_t n = w.rows(), k = w.cols();
  U8Tensor codes({n, k});
  W4PerChannel out;
  out.z = U8Tensor({n});
  out.s = Tensor({n});
  out.szw = Tensor({n});
  for (int64_t r = 0; r < n; ++r) {
    float lo = w.at2(r, 0), hi = w.at2(r, 0);
    for (int64_t c = 1; c < k; ++c) {
      lo = std::min(lo, w.at2(r, c));
      hi = std::max(hi, w.at2(r, c));
    }
    lo = std::min(lo, 0.0f);
    hi = std::max(hi, 0.0f);
    const float s = fp16_scale(hi - lo, 15.0f);
    const int z = clamp(round_half_away(-lo / s), 0, 15);
    out.s[r] = s;
    out.z[r] = static_cast<uint8_t>(z);
    out.szw[r] = to_half_precision(float(z) * s);
    const float inv = 1.0f / s;
    for (int64_t c = 0; c < k; ++c) {
      codes.at2(r, c) = clamp_u4(round_half_away(w.at2(r, c) * inv) + z);
    }
  }
  out.qw = pack_u4(codes);
  return out;
}

Tensor dequantize(const W4PerChannel& q) {
  Tensor w({q.n(), q.k()});
  for (int64_t r = 0; r < q.n(); ++r) {
    const int z = q.z[r];
    const float s = q.s[r];
    for (int64_t c = 0; c < q.k(); ++c)
      w.at2(r, c) = float(int(get_u4(q.qw, r, c)) - z) * s;
  }
  return w;
}

// --- progressive group quantization --------------------------------------------

W4PerGroup quantize_progressive(const Tensor& w, const ProgressiveOptions& opt) {
  QS_CHECK_EQ(w.ndim(), 2);
  const int64_t n = w.rows(), k = w.cols();
  QS_CHECK_MSG(k % opt.group == 0,
               "k=" << k << " not divisible by group=" << opt.group);
  QS_CHECK(opt.level1_range > 0 && opt.level1_range <= 127);
  const int64_t ng = k / opt.group;

  W4PerGroup out;
  out.group = opt.group;
  out.s0 = Tensor({n});
  out.s1 = U8Tensor({n, ng});
  out.z = U8Tensor({n, ng});
  U8Tensor codes({n, k});
  std::vector<int> q0(static_cast<size_t>(k));

  const float range = static_cast<float>(opt.level1_range);
  for (int64_t r = 0; r < n; ++r) {
    // Level 1: per-channel symmetric INT8 with (protective) range.
    const float s0 = fp16_scale(abs_max(w.row(r), k), range);
    out.s0[r] = s0;
    const float inv0 = 1.0f / s0;
    for (int64_t c = 0; c < k; ++c) {
      q0[static_cast<size_t>(c)] =
          clamp(round_half_away(w.at2(r, c) * inv0), -opt.level1_range,
                opt.level1_range);
    }
    // Level 2: per-group asymmetric UINT4 over the INT8 codes (Figure 6).
    for (int64_t g = 0; g < ng; ++g) {
      const int64_t base = g * opt.group;
      int qmin = q0[static_cast<size_t>(base)], qmax = qmin;
      for (int64_t c = 1; c < opt.group; ++c) {
        const int v = q0[static_cast<size_t>(base + c)];
        qmin = std::min(qmin, v);
        qmax = std::max(qmax, v);
      }
      // Anchor the asymmetric range at zero so z stays in [0, 15] and
      // single-sign groups remain representable.
      qmin = std::min(qmin, 0);
      qmax = std::max(qmax, 0);
      int s1 = round_half_away(float(qmax - qmin) / 15.0f);
      s1 = clamp(s1, 1, 17);
      int z = clamp(round_half_away(-float(qmin) / float(s1)), 0, 15);
      out.s1.at2(r, g) = static_cast<uint8_t>(s1);
      out.z.at2(r, g) = static_cast<uint8_t>(z);
      for (int64_t c = 0; c < opt.group; ++c) {
        const int v = q0[static_cast<size_t>(base + c)];
        codes.at2(r, base + c) = clamp_u4(
            round_half_away(float(v) / float(s1)) + z);
      }
    }
  }
  out.qw = pack_u4(codes);
  return out;
}

I32Tensor dequantize_level1_codes(const W4PerGroup& q) {
  I32Tensor codes({q.n(), q.k()});
  for (int64_t r = 0; r < q.n(); ++r) {
    for (int64_t c = 0; c < q.k(); ++c) {
      const int64_t g = c / q.group;
      const int s1 = q.s1.at2(r, g);
      const int z = q.z.at2(r, g);
      codes.at2(r, c) = (int(get_u4(q.qw, r, c)) - z) * s1;
    }
  }
  return codes;
}

Tensor dequantize(const W4PerGroup& q) {
  const I32Tensor codes = dequantize_level1_codes(q);
  Tensor w({q.n(), q.k()});
  for (int64_t r = 0; r < q.n(); ++r)
    for (int64_t c = 0; c < q.k(); ++c)
      w.at2(r, c) = float(codes.at2(r, c)) * q.s0[r];
  return w;
}

// --- W4A4 (Atom / QuaRot baseline) ---------------------------------------------

W4A4PerGroup quantize_w4a4_per_group(const Tensor& w, int group) {
  QS_CHECK_EQ(w.ndim(), 2);
  const int64_t n = w.rows(), k = w.cols();
  QS_CHECK_EQ(k % group, 0);
  const int64_t ng = k / group;
  W4A4PerGroup out;
  out.group = group;
  out.qw = I8Tensor({n, k});
  out.s = Tensor({n, ng});
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t g = 0; g < ng; ++g) {
      const int64_t base = g * group;
      const float s = fp16_scale(abs_max(w.row(r) + base, group), 7.0f);
      out.s.at2(r, g) = s;
      const float inv = 1.0f / s;
      for (int64_t c = 0; c < group; ++c) {
        out.qw.at2(r, base + c) = static_cast<int8_t>(
            clamp(round_half_away(w.at2(r, base + c) * inv), -7, 7));
      }
    }
  }
  return out;
}

Tensor dequantize(const W4A4PerGroup& q) {
  Tensor w({q.n(), q.k()});
  for (int64_t r = 0; r < q.n(); ++r)
    for (int64_t c = 0; c < q.k(); ++c)
      w.at2(r, c) = float(q.qw.at2(r, c)) * q.s.at2(r, c / q.group);
  return w;
}

// --- activations ---------------------------------------------------------------

QuantizedActs quantize_acts_per_token(const Tensor& x) {
  QS_CHECK_EQ(x.ndim(), 2);
  const int64_t m = x.rows(), k = x.cols();
  QuantizedActs out;
  out.q = I8Tensor({m, k});
  out.s = Tensor({m});
  out.token_sum = Tensor({m});
  // Each token row quantizes independently (scale, codes, and token sum are
  // all per-row), so the batched step executor's stacked activation buffer —
  // decode tokens and prefill chunks from many requests — parallelizes here
  // without changing a single bit.
  parallel_for(0, m, 4, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const float s = fp16_scale(abs_max(x.row(t), k), 127.0f);
      out.s[t] = s;
      const float inv = 1.0f / s;
      float sum = 0.0f;
      for (int64_t c = 0; c < k; ++c) {
        out.q.at2(t, c) = clamp_i8(round_half_away(x.at2(t, c) * inv));
        sum += x.at2(t, c);
      }
      out.token_sum[t] = to_half_precision(sum);
    }
  });
  return out;
}

Tensor dequantize(const QuantizedActs& q) {
  Tensor x({q.m(), q.k()});
  for (int64_t t = 0; t < q.m(); ++t)
    for (int64_t c = 0; c < q.k(); ++c)
      x.at2(t, c) = float(q.q.at2(t, c)) * q.s[t];
  return x;
}

QuantizedActs quantize_acts_per_token_int4(const Tensor& x) {
  QS_CHECK_EQ(x.ndim(), 2);
  const int64_t m = x.rows(), k = x.cols();
  QuantizedActs out;
  out.q = I8Tensor({m, k});
  out.s = Tensor({m});
  out.token_sum = Tensor({m});
  for (int64_t t = 0; t < m; ++t) {
    const float s = fp16_scale(abs_max(x.row(t), k), 7.0f);
    out.s[t] = s;
    const float inv = 1.0f / s;
    float sum = 0.0f;
    for (int64_t c = 0; c < k; ++c) {
      out.q.at2(t, c) = static_cast<int8_t>(
          clamp(round_half_away(x.at2(t, c) * inv), -7, 7));
      sum += x.at2(t, c);
    }
    out.token_sum[t] = to_half_precision(sum);
  }
  return out;
}

// --- VSQuant/DoubleQuant-style two-level baseline --------------------------------

TwoLevelBaseline quantize_two_level_baseline(const Tensor& w, int group) {
  QS_CHECK_EQ(w.ndim(), 2);
  const int64_t n = w.rows(), k = w.cols();
  QS_CHECK_EQ(k % group, 0);
  const int64_t ng = k / group;
  TwoLevelBaseline out;
  out.group = group;
  out.s0 = Tensor({n});
  out.s1 = U8Tensor({n, ng});
  out.z = U8Tensor({n, ng});
  U8Tensor codes({n, k});
  Tensor fscales({n, ng});

  // Step 1: direct per-group asymmetric UINT4 with FP group scales.
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t g = 0; g < ng; ++g) {
      const int64_t base = g * group;
      float lo = w.at2(r, base), hi = lo;
      for (int64_t c = 1; c < group; ++c) {
        lo = std::min(lo, w.at2(r, base + c));
        hi = std::max(hi, w.at2(r, base + c));
      }
      lo = std::min(lo, 0.0f);
      hi = std::max(hi, 0.0f);
      float s = (hi - lo) / 15.0f;
      if (s <= 0.0f) s = 1.0f;
      const int z = clamp(round_half_away(-lo / s), 0, 15);
      fscales.at2(r, g) = s;
      out.z.at2(r, g) = static_cast<uint8_t>(z);
      for (int64_t c = 0; c < group; ++c) {
        codes.at2(r, base + c) =
            clamp_u4(round_half_away(w.at2(r, base + c) / s) + z);
      }
    }
    // Step 2: per-channel symmetric UINT8 quantization of the group scales.
    float smax = 0.0f;
    for (int64_t g = 0; g < ng; ++g) smax = std::max(smax, fscales.at2(r, g));
    float s0 = smax / 255.0f;
    if (s0 <= 0.0f) s0 = 1.0f;
    s0 = to_half_precision(s0);
    out.s0[r] = s0;
    for (int64_t g = 0; g < ng; ++g) {
      out.s1.at2(r, g) = static_cast<uint8_t>(
          clamp(round_half_away(fscales.at2(r, g) / s0), 0, 255));
    }
  }
  out.qw = pack_u4(codes);
  return out;
}

Tensor dequantize(const TwoLevelBaseline& q) {
  const int64_t n = q.qw.rows, k = q.qw.cols;
  Tensor w({n, k});
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < k; ++c) {
      const int64_t g = c / q.group;
      const float s = float(q.s1.at2(r, g)) * q.s0[r];
      w.at2(r, c) = float(int(get_u4(q.qw, r, c)) - int(q.z.at2(r, g))) * s;
    }
  }
  return w;
}

}  // namespace qserve
