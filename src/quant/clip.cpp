#include "quant/clip.h"

#include <cmath>
#include <limits>

#include "common/math_util.h"

namespace qserve {

Tensor clip_weights(const Tensor& w, float ratio) {
  QS_CHECK_EQ(w.ndim(), 2);
  Tensor out = w;
  const int64_t n = w.rows(), k = w.cols();
  for (int64_t r = 0; r < n; ++r) {
    const float bound = abs_max(w.row(r), k) * ratio;
    for (int64_t c = 0; c < k; ++c) {
      out.at2(r, c) = clamp(out.at2(r, c), -bound, bound);
    }
  }
  return out;
}

Tensor quantize_dequantize_clipped(const Tensor& w, float ratio,
                                   const ClipSearchOptions& opt) {
  const Tensor clipped = clip_weights(w, ratio);
  if (opt.progressive) {
    ProgressiveOptions popt;
    popt.group = opt.group;
    return dequantize(quantize_progressive(clipped, popt));
  }
  return dequantize(quantize_w4_per_channel(clipped));
}

namespace {

// Frobenius error of X (Wa - Wb)^T without materializing the product:
// computed row by row over output channels.
double output_mse(const Tensor& x, const Tensor& wa, const Tensor& wb) {
  const int64_t m = x.rows(), k = x.cols(), n = wa.rows();
  QS_CHECK_EQ(wa.cols(), k);
  double total = 0.0;
  std::vector<float> dw(static_cast<size_t>(k));
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < k; ++c) dw[size_t(c)] = wa.at2(r, c) - wb.at2(r, c);
    for (int64_t t = 0; t < m; ++t) {
      double dot = 0.0;
      const float* xr = x.row(t);
      for (int64_t c = 0; c < k; ++c) dot += double(xr[c]) * dw[size_t(c)];
      total += dot * dot;
    }
  }
  return total;
}

}  // namespace

ClipResult search_clip_custom(const std::function<double(float)>& error_fn,
                              const ClipSearchOptions& opt) {
  ClipResult best;
  best.error = std::numeric_limits<double>::infinity();
  for (int i = 0; i < opt.steps; ++i) {
    const float ratio =
        1.0f - (1.0f - opt.min_ratio) * float(i) / float(opt.steps - 1);
    const double err = error_fn(ratio);
    if (err < best.error) {
      best.error = err;
      best.ratio = ratio;
    }
  }
  return best;
}

ClipResult search_clip_output_mse(const Tensor& w, const Tensor& x,
                                  const ClipSearchOptions& opt) {
  return search_clip_custom(
      [&](float ratio) {
        const Tensor deq = quantize_dequantize_clipped(w, ratio, opt);
        return output_mse(x, w, deq);
      },
      opt);
}

ClipResult search_clip_weight_mse(const Tensor& w,
                                  const ClipSearchOptions& opt) {
  return search_clip_custom(
      [&](float ratio) {
        const Tensor deq = quantize_dequantize_clipped(w, ratio, opt);
        double err = 0.0;
        for (int64_t i = 0; i < w.numel(); ++i) {
          const double d = double(w[i]) - double(deq[i]);
          err += d * d;
        }
        return err;
      },
      opt);
}

}  // namespace qserve
