// Dynamic per-head KV-cache quantization (§5.1, §6.1).
//
// QServe stores FP16 scale + zero point per head *inside each KV page*,
// updated on the fly (dynamic), in contrast to TRT-LLM/vLLM's offline
// per-tensor static scales. These routines quantize one head-vector (D dims)
// of K or V at a time, which is exactly the unit the paged cache stores.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/half.h"
#include "common/math_util.h"
#include "tensor/tensor.h"

namespace qserve {

// Asymmetric quantization parameters for one head vector.
struct KvQuantParams {
  float scale = 1.0f;  // FP16
  float zero = 0.0f;   // FP16 (real-valued zero point: x ≈ q*scale + zero)
};

// Quantize `d` floats into `bits`-wide unsigned codes (4 or 8), emitted one
// code per byte; INT4 callers pack pairs with kv_pack_nibbles afterwards.
inline KvQuantParams kv_quantize(const float* x, int d, int bits,
                                 uint8_t* codes) {
  const int qmax = (1 << bits) - 1;
  float lo = x[0], hi = x[0];
  for (int i = 1; i < d; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  float s = (hi - lo) / float(qmax);
  if (s <= 0.0f) s = 1.0f;
  s = to_half_precision(s);
  const float zero = to_half_precision(lo);
  const float inv = 1.0f / s;
  for (int i = 0; i < d; ++i) {
    codes[i] = static_cast<uint8_t>(
        clamp(round_half_away((x[i] - zero) * inv), 0, qmax));
  }
  return {s, zero};
}

inline void kv_dequantize(const uint8_t* codes, int d,
                          const KvQuantParams& p, float* out) {
  for (int i = 0; i < d; ++i) out[i] = float(codes[i]) * p.scale + p.zero;
}

// Nibble packing for INT4 pages: two codes per byte, even index in the low
// nibble. `d` must be even (the paged cache enforces an even head_dim).
inline void kv_pack_nibbles(const uint8_t* codes, int d, uint8_t* packed) {
  QS_DCHECK(d % 2 == 0);
  for (int i = 0; i < d; i += 2)
    packed[i >> 1] =
        static_cast<uint8_t>((codes[i] & 0xF) | (codes[i + 1] << 4));
}

// Dequantize `d` INT4 codes straight out of their nibble-packed storage —
// same arithmetic as kv_dequantize on unpacked codes.
inline void kv_dequantize_packed4(const uint8_t* packed, int d,
                                  const KvQuantParams& p, float* out) {
  for (int i = 0; i < d; ++i) {
    const uint8_t c = (packed[i >> 1] >> ((i & 1) * 4)) & 0xF;
    out[i] = float(c) * p.scale + p.zero;
  }
}

// Static per-tensor symmetric INT8 KV quantization (the TRT-LLM/vLLM KV8
// baseline): one offline scale for the whole cache.
struct StaticKv8Params {
  float scale = 1.0f;
};

inline StaticKv8Params kv8_static_calibrate(const Tensor& sample) {
  StaticKv8Params p;
  p.scale = to_half_precision(abs_max(sample.data(), sample.numel()) / 127.0f);
  if (p.scale <= 0.0f) p.scale = 1.0f;
  return p;
}

inline void kv8_static_quantize(const float* x, int d,
                                const StaticKv8Params& p, int8_t* codes) {
  const float inv = 1.0f / p.scale;
  for (int i = 0; i < d; ++i)
    codes[i] = clamp_i8(round_half_away(x[i] * inv));
}

inline void kv8_static_dequantize(const int8_t* codes, int d,
                                  const StaticKv8Params& p, float* out) {
  for (int i = 0; i < d; ++i) out[i] = float(codes[i]) * p.scale;
}

}  // namespace qserve
