// Quantized-tensor containers and granularity descriptors.
//
// Naming follows the paper (§2.2, §4.1):
//   s0 / s(0)  — first-level per-channel FP16 scale
//   s1 / s(1)  — second-level per-group UINT8 scale
//   z          — UINT4 zero point
// Weights are [n, k] with n = output channels and k = input channels; GEMMs
// compute Y[m,n] = X[m,k] * W[n,k]^T as in Figure 4.
#pragma once

#include <cstdint>

#include "tensor/int4.h"
#include "tensor/tensor.h"

namespace qserve {

enum class Granularity {
  kPerTensor,
  kPerChannel,  // per output channel (weights) / per token (activations)
  kPerGroup,
  kPerHead,  // KV cache
};

// ---------------------------------------------------------------------------
// Weight formats
// ---------------------------------------------------------------------------

// W8A8 baseline: per-channel symmetric INT8 (SmoothQuant / TRT-LLM style).
struct W8PerChannel {
  I8Tensor qw;  // [n, k] signed codes
  Tensor s;     // [n] FP16 scales (stored as float, rounded through Half)

  int64_t n() const { return qw.rows(); }
  int64_t k() const { return qw.cols(); }
};

// Per-channel W4A8: one asymmetric UINT4 code per weight, per-channel FP16
// scale and UINT4 zero point (§5.2.2). Dequantization to SINT8 happens in the
// main loop; the zero-point subtraction is folded into the epilogue.
struct W4PerChannel {
  PackedU4 qw;   // [n, k] unsigned 4-bit codes
  U8Tensor z;    // [n] zero points, each in [0, 15]
  Tensor s;      // [n] FP16 scales
  Tensor szw;    // [n] precomputed z*s ("ZS_W" in Eq. 12), FP16

  int64_t n() const { return qw.rows; }
  int64_t k() const { return qw.cols; }
};

// Progressive group quantization (§4.1): level-1 per-channel symmetric INT8
// with protective range [-119,119]; level-2 per-group asymmetric UINT4 with
// UINT8 scales. Dequantizing level 2 reproduces the *integer* level-1 codes,
// so the GEMM runs entirely on the INT8 path.
struct W4PerGroup {
  PackedU4 qw;   // [n, k] unsigned 4-bit codes
  U8Tensor s1;   // [n, k/g] level-2 UINT8 scales, each in [1, 17]
  U8Tensor z;    // [n, k/g] level-2 UINT4 zero points, each in [0, 15]
  Tensor s0;     // [n] level-1 FP16 scales
  int group = 128;

  int64_t n() const { return qw.rows; }
  int64_t k() const { return qw.cols; }
  int64_t num_groups() const { return s1.cols(); }
};

// W4A4 per-group (Atom/QuaRot style): FP16 scales per group, INT4 symmetric
// codes. Partial sums must be dequantized to FP32 inside the main loop — the
// pathology §3.2 analyses.
struct W4A4PerGroup {
  I8Tensor qw;   // [n, k] signed 4-bit codes stored one-per-byte in [-8, 7]
  Tensor s;      // [n, k/g] FP16 group scales
  int group = 128;

  int64_t n() const { return qw.rows(); }
  int64_t k() const { return qw.cols(); }
};

// ---------------------------------------------------------------------------
// Activation format
// ---------------------------------------------------------------------------

// Per-token symmetric INT8 activations (§6.1), plus the per-token input-channel
// sums tX = X·1_k required by the subtraction-after-multiplication epilogue
// (Eq. 13). tX is produced by the preceding memory-bound kernel in QServe; we
// compute it at quantization time, which models the same fusion.
struct QuantizedActs {
  I8Tensor q;       // [m, k]
  Tensor s;         // [m] FP16 scales
  Tensor token_sum; // [m] tX, FP16 (sum over k of the *unquantized* input)

  int64_t m() const { return q.rows(); }
  int64_t k() const { return q.cols(); }
};

}  // namespace qserve
