// Core quantization / dequantization routines (paper §2.2, §4.1, §6.1).
#pragma once

#include "quant/types.h"

namespace qserve {

// --- W8A8 baseline ----------------------------------------------------------

// Per-channel symmetric INT8 weight quantization into [-127, 127].
W8PerChannel quantize_w8_per_channel(const Tensor& w);
Tensor dequantize(const W8PerChannel& q);

// --- per-channel W4A8 -------------------------------------------------------

W4PerChannel quantize_w4_per_channel(const Tensor& w);
Tensor dequantize(const W4PerChannel& q);

// --- progressive group quantization (QoQ, §4.1) ------------------------------

// Bound on the level-1 symmetric range that guarantees the level-2 round trip
// never leaves [-128, 127] (derivation in §4.1: q_s8 <= 119.5).
inline constexpr int kProtectiveRange = 119;

struct ProgressiveOptions {
  int group = 128;
  // Level-1 clamp. kProtectiveRange reproduces QoQ; 127 reproduces the naive
  // scheme whose overflow Figure 6/14 demonstrates.
  int level1_range = kProtectiveRange;
};

W4PerGroup quantize_progressive(const Tensor& w, const ProgressiveOptions& opt);

// Level-2 dequantization only: reconstruct the *integer* level-1 codes
// (QW^(0)_s8 = (QW_u4 - z) * s1). Values are returned as int32 so that
// out-of-INT8-range results produced by a non-protective range are visible to
// callers/tests rather than silently wrapped.
I32Tensor dequantize_level1_codes(const W4PerGroup& q);

// Full dequantization to float: level-2 then level-1 scaling.
Tensor dequantize(const W4PerGroup& q);

// --- W4A4 (Atom/QuaRot baseline) ---------------------------------------------

W4A4PerGroup quantize_w4a4_per_group(const Tensor& w, int group);
Tensor dequantize(const W4A4PerGroup& q);

// --- activations -------------------------------------------------------------

// Per-token symmetric INT8 (computes tX alongside, see types.h).
QuantizedActs quantize_acts_per_token(const Tensor& x);
Tensor dequantize(const QuantizedActs& q);

// Per-token symmetric INT4 (for the W4A4 baseline path); codes in [-7, 7].
QuantizedActs quantize_acts_per_token_int4(const Tensor& x);

// --- prior-work two-level baseline (VSQuant / DoubleQuant, §4.1) -------------
//
// Group-quantize directly to 4 bits with FP16 group scales, then quantize the
// group scales per channel to UINT8. Unlike progressive quantization, the
// group-scale dequantization of the 4-bit codes does NOT yield INT8 integers,
// so the GEMM cannot stay on the INT8 tensor-core path.
struct TwoLevelBaseline {
  PackedU4 qw;  // [n, k]
  U8Tensor z;   // [n, k/g] zero points
  U8Tensor s1;  // [n, k/g] quantized group scales
  Tensor s0;    // [n] per-channel scale of the group scales
  int group = 128;
};

TwoLevelBaseline quantize_two_level_baseline(const Tensor& w, int group);
Tensor dequantize(const TwoLevelBaseline& q);

}  // namespace qserve
