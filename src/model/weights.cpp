#include "model/weights.h"

#include <cmath>

namespace qserve {

namespace {

// Heavy-tailed weight matrix scaled for unit-ish output variance.
Tensor random_weight(Rng& rng, int64_t out, int64_t in, float df) {
  Tensor w({out, in});
  const float scale = 1.0f / std::sqrt(float(in));
  for (int64_t i = 0; i < w.numel(); ++i)
    w[i] = rng.heavy_tailed(scale, df);
  return w;
}

Tensor ones(int64_t n) { return Tensor::full({n}, 1.0f); }

}  // namespace

ModelWeights make_synthetic_weights(const ModelConfig& cfg,
                                    const SyntheticOptions& opt) {
  Rng rng(opt.seed);
  ModelWeights m;
  m.cfg = cfg;

  // Embedding with persistent outlier channels: a fixed set of hidden
  // channels carries ~8x magnitude for every token, reproducing the
  // channel-wise activation-outlier structure of real LLM residual streams.
  m.embedding = Tensor({cfg.vocab, cfg.hidden});
  std::vector<int> outlier_channels;
  {
    Rng ch = rng.fork();
    const auto perm = ch.permutation(static_cast<int>(cfg.hidden));
    outlier_channels.assign(perm.begin(),
                            perm.begin() + opt.act_outlier_channels);
  }
  for (int64_t t = 0; t < cfg.vocab; ++t) {
    for (int64_t c = 0; c < cfg.hidden; ++c)
      m.embedding.at2(t, c) = rng.normal(0.0f, 1.0f);
    for (int ch : outlier_channels) {
      // Same sign per channel across tokens -> a *fixed* outlier channel.
      const float sign = (ch % 2 == 0) ? 1.0f : -1.0f;
      m.embedding.at2(t, ch) =
          sign * (opt.act_outlier_magnitude +
                  std::abs(rng.normal(0.0f, 0.5f)));
    }
  }

  m.layers.resize(static_cast<size_t>(cfg.n_layers));
  for (auto& layer : m.layers) {
    Rng lr = rng.fork();
    layer.wq = random_weight(lr, cfg.q_dim(), cfg.hidden, opt.weight_df);
    layer.wk = random_weight(lr, cfg.kv_dim(), cfg.hidden, opt.weight_df);
    layer.wv = random_weight(lr, cfg.kv_dim(), cfg.hidden, opt.weight_df);
    layer.wo = random_weight(lr, cfg.hidden, cfg.q_dim(), opt.weight_df);
    layer.w_gate = random_weight(lr, cfg.ffn_dim, cfg.hidden, opt.weight_df);
    layer.w_up = random_weight(lr, cfg.ffn_dim, cfg.hidden, opt.weight_df);
    layer.w_down = random_weight(lr, cfg.hidden, cfg.ffn_dim, opt.weight_df);
    layer.ln_attn = ones(cfg.hidden);
    layer.ln_ffn = ones(cfg.hidden);

    // Key outliers (Fig. 7): amplify a fixed set of k_proj output channels
    // per KV head so post-projection Keys carry ~10x outlier channels at
    // RoPE-paired positions. Values are left clean, as observed.
    for (int h = 0; h < cfg.n_kv_heads; ++h) {
      for (int o = 0; o < opt.key_outliers_per_head; ++o) {
        const int dim = (h * 7 + o * 11) % (cfg.head_dim / 2);
        const int64_t row = int64_t(h) * cfg.head_dim + dim;
        for (int64_t c = 0; c < cfg.hidden; ++c)
          layer.wk.at2(row, c) *= opt.key_outlier_magnitude;
      }
    }

    // Keep the residual stream's outlier channels alive across layers: make
    // wo / w_down approximately preserve those channels.
    for (int ch : outlier_channels) {
      layer.wo.at2(ch, (ch * 3) % cfg.q_dim()) += 1.0f;
      layer.w_down.at2(ch, (ch * 5) % cfg.ffn_dim) += 1.0f;
    }

    // AWQ-style salient weight channels: the input-module weight columns
    // that multiply outlier activations carry a wider dynamic range (Lin et
    // al. 2024 observe salient weights are identified by the activation
    // distribution). This is the pathology activation-aware reordering
    // (§4.3.3) groups together and weight clipping must respect.
    for (int ch : outlier_channels) {
      for (Tensor* w :
           {&layer.wq, &layer.wk, &layer.wv, &layer.w_gate, &layer.w_up}) {
        for (int64_t r = 0; r < w->rows(); ++r) w->at2(r, ch) *= 3.0f;
      }
    }
  }

  m.ln_final = ones(cfg.hidden);
  m.lm_head = random_weight(rng, cfg.vocab, cfg.hidden, opt.weight_df);
  return m;
}

}  // namespace qserve
