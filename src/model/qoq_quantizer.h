// The end-to-end QoQ pre-quantization pipeline (§4): takes FP32 weights and
// calibration data, applies the exact (lossless-in-FP32) transforms in the
// order the paper composes them, and returns transformed weights ready for
// low-bit quantization:
//   1. fold RMSNorm gains into the consuming projections (prerequisite for
//      rotation, as in QuaRot);
//   2. block-input Hadamard rotation (§4.3.1) — absorbed into the embedding,
//      o_proj/down_proj outputs and qkv/gate/up/lm_head inputs;
//   3. SmoothAttention (§4.2) — Λ folded into w_q / w_k;
//   4. block-output smoothing (§4.3.2) — attention output and FFN activation
//      channels balanced into w_v→w_o and w_up→w_down;
//   5. activation-aware channel reordering (§4.3.3) — residual-stream and
//      FFN-intermediate permutations folded into adjacent weights;
//   6. weight clipping (§4.3.4) — grid search on layer-output MSE (attention-
//      block output MSE for q/k).
// Every step is individually toggleable for the Figure-16 ablation.
#pragma once

#include "model/reference_model.h"
#include "model/weights.h"

namespace qserve {

struct QoQOptions {
  bool fold_norms = true;
  bool rotate_inputs = true;
  bool smooth_attention = true;
  bool smooth_outputs = true;
  bool reorder_channels = true;
  bool weight_clip = true;

  float smooth_attn_alpha = 0.5f;
  float smooth_alpha = 0.05f;  // near 0, per §4.3.2
  int clip_group = 128;        // trial quantizer group for the clip search
  bool clip_progressive = true;
  int clip_steps = 8;
  float clip_min_ratio = 0.6f;
};

// Applies the selected transforms. `calib` must come from the *untransformed*
// reference model on calibration tokens (the transforms are equivalence-
// preserving, so pre-transform statistics remain valid where needed; the
// clip step internally re-derives post-transform activations).
ModelWeights qoq_transform(const ModelWeights& weights,
                           const CalibrationData& calib,
                           const QoQOptions& opt = {});

}  // namespace qserve
