// Transformer architecture configs.
//
// `published_models()` carries the real shapes of the seven/eight models the
// paper evaluates — these feed the GPU performance simulator at full scale.
// `toy_config()` is a structurally identical miniature (pow-2 hidden size so
// the Hadamard rotation applies) used for the CPU accuracy experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qserve {

struct ModelConfig {
  std::string name;
  int64_t hidden = 4096;
  int n_layers = 32;
  int n_heads = 32;
  int n_kv_heads = 32;
  int head_dim = 128;
  int64_t ffn_dim = 11008;  // intermediate size (SwiGLU: 2x for gate|up)
  int64_t vocab = 32000;

  int64_t kv_dim() const { return int64_t(n_kv_heads) * head_dim; }
  int64_t q_dim() const { return int64_t(n_heads) * head_dim; }

  // Parameter count of the decoder weights (embeddings + lm head included).
  int64_t param_count() const {
    const int64_t per_layer = hidden * q_dim()        // q_proj
                              + 2 * hidden * kv_dim() // k_proj, v_proj
                              + q_dim() * hidden      // o_proj
                              + 3 * hidden * ffn_dim; // gate, up, down
    return int64_t(n_layers) * per_layer + 2 * vocab * hidden;
  }

  // Weight bytes at a given weight bit width (scales ignored; the simulator
  // adds group-scale overhead separately).
  int64_t weight_bytes(int weight_bits) const {
    return param_count() * weight_bits / 8;
  }

  // KV cache bytes per token at a given KV bit width.
  int64_t kv_bytes_per_token(int kv_bits) const {
    return 2 * int64_t(n_layers) * kv_dim() * kv_bits / 8;
  }
};

// The models of Table 4 / Figure 15 with their published shapes.
std::vector<ModelConfig> published_models();
ModelConfig model_by_name(const std::string& name);

// Structurally faithful miniature for CPU-scale accuracy experiments.
// hidden=256 (pow2), 4 heads x 64, GQA 2 kv heads, SwiGLU FFN, vocab 512.
ModelConfig toy_config(int n_layers = 2);
// GQA-free variant (Llama-2-7B-like structure).
ModelConfig toy_config_mha(int n_layers = 2);
// Deeper grouping: 8 query heads sharing 2 KV heads (group = 4, the
// Llama-3-70B ratio), same hidden size as toy_config via head_dim=32. Two
// KV heads keep 2-way tensor parallelism exercisable.
ModelConfig toy_config_gqa4(int n_layers = 2);

}  // namespace qserve
