#include "model/config.h"

#include "common/check.h"

namespace qserve {

std::vector<ModelConfig> published_models() {
  // name, hidden, layers, heads, kv_heads, head_dim, ffn, vocab
  return {
      {"Llama-3-8B", 4096, 32, 32, 8, 128, 14336, 128256},
      {"Llama-2-7B", 4096, 32, 32, 32, 128, 11008, 32000},
      {"Mistral-7B", 4096, 32, 32, 8, 128, 14336, 32000},
      {"Llama-2-13B", 5120, 40, 40, 40, 128, 13824, 32000},
      {"Llama-30B", 6656, 60, 52, 52, 128, 17920, 32000},
      {"Yi-34B", 7168, 60, 56, 8, 128, 20480, 64000},
      {"Llama-2-70B", 8192, 80, 64, 8, 128, 28672, 32000},
      {"Qwen1.5-72B", 8192, 80, 64, 64, 128, 24576, 152064},
  };
}

ModelConfig model_by_name(const std::string& name) {
  for (const auto& m : published_models()) {
    if (m.name == name) return m;
  }
  QS_CHECK_MSG(false, "unknown model: " << name);
}

ModelConfig toy_config(int n_layers) {
  ModelConfig cfg;
  cfg.name = "toy-gqa";
  cfg.hidden = 256;
  cfg.n_layers = n_layers;
  cfg.n_heads = 4;
  cfg.n_kv_heads = 2;
  cfg.head_dim = 64;
  cfg.ffn_dim = 512;
  cfg.vocab = 512;
  return cfg;
}

ModelConfig toy_config_mha(int n_layers) {
  ModelConfig cfg = toy_config(n_layers);
  cfg.name = "toy-mha";
  cfg.n_kv_heads = cfg.n_heads;
  return cfg;
}

ModelConfig toy_config_gqa4(int n_layers) {
  ModelConfig cfg;
  cfg.name = "toy-gqa4";
  cfg.hidden = 256;
  cfg.n_layers = n_layers;
  cfg.n_heads = 8;
  cfg.n_kv_heads = 2;
  cfg.head_dim = 32;
  cfg.ffn_dim = 512;
  cfg.vocab = 512;
  return cfg;
}

}  // namespace qserve
