#include "model/qoq_quantizer.h"

#include <cmath>

#include "kernels/attention.h"
#include "kernels/gemm.h"
#include "kernels/ops.h"
#include "qoq/hadamard.h"
#include "qoq/reorder.h"
#include "qoq/smooth.h"
#include "qoq/smooth_attention.h"
#include "quant/clip.h"

namespace qserve {

namespace {

void fold_gamma_into_consumer(Tensor& w, const Tensor& gamma) {
  QS_CHECK_EQ(w.cols(), gamma.numel());
  for (int64_t r = 0; r < w.rows(); ++r)
    for (int64_t c = 0; c < w.cols(); ++c) w.at2(r, c) *= gamma[c];
}

Tensor permute_rows(const Tensor& w, const std::vector<int>& perm) {
  QS_CHECK_EQ(w.rows(), static_cast<int64_t>(perm.size()));
  Tensor out({w.rows(), w.cols()});
  for (size_t r = 0; r < perm.size(); ++r)
    for (int64_t c = 0; c < w.cols(); ++c)
      out.at2(static_cast<int64_t>(r), c) = w.at2(perm[r], c);
  return out;
}

// Scale columns of activations in place (λ division for smoothing).
void divide_columns(Tensor& x, const Tensor& lambda) {
  QS_CHECK_EQ(x.cols(), lambda.numel());
  for (int64_t t = 0; t < x.rows(); ++t)
    for (int64_t c = 0; c < x.cols(); ++c) x.at2(t, c) /= lambda[c];
}

}  // namespace

ModelWeights qoq_transform(const ModelWeights& weights,
                           const CalibrationData& calib,
                           const QoQOptions& opt) {
  ModelWeights m = weights;  // working copy
  const ModelConfig& cfg = m.cfg;
  const int L = cfg.n_layers;
  QS_CHECK_EQ(static_cast<int>(calib.attn_input.size()), L);

  // Calibration tensors transformed in lock-step with the weights, so later
  // stages (reorder salience, clip objectives) see post-transform statistics.
  CalibrationData c = calib;

  // ---- 1. fold RMSNorm gains ------------------------------------------------
  if (opt.fold_norms) {
    for (auto& layer : m.layers) {
      fold_gamma_into_consumer(layer.wq, layer.ln_attn);
      fold_gamma_into_consumer(layer.wk, layer.ln_attn);
      fold_gamma_into_consumer(layer.wv, layer.ln_attn);
      fold_gamma_into_consumer(layer.w_gate, layer.ln_ffn);
      fold_gamma_into_consumer(layer.w_up, layer.ln_ffn);
      layer.ln_attn = Tensor::full({cfg.hidden}, 1.0f);
      layer.ln_ffn = Tensor::full({cfg.hidden}, 1.0f);
    }
    fold_gamma_into_consumer(m.lm_head, m.ln_final);
    m.ln_final = Tensor::full({cfg.hidden}, 1.0f);
    // Calib inputs were captured post-gamma; after folding, the norm output
    // the consumers see is the un-gamma'd one. Dividing out the (original)
    // gains restores consistency. Original gains came from `weights`.
    for (int l = 0; l < L; ++l) {
      for (int64_t t = 0; t < c.attn_input[size_t(l)].rows(); ++t)
        for (int64_t ch = 0; ch < cfg.hidden; ++ch) {
          c.attn_input[size_t(l)].at2(t, ch) /=
              weights.layers[size_t(l)].ln_attn[ch];
          c.ffn_input[size_t(l)].at2(t, ch) /=
              weights.layers[size_t(l)].ln_ffn[ch];
        }
    }
  }

  // ---- 2. block-input rotation ----------------------------------------------
  if (opt.rotate_inputs) {
    QS_CHECK_MSG(is_pow2(cfg.hidden),
                 "rotation requires power-of-two hidden size");
    const Tensor q = hadamard_matrix(cfg.hidden);
    m.embedding = rotate_activations(m.embedding, q);
    m.lm_head = rotate_weight_for_rotated_input(m.lm_head, q);
    for (auto& layer : m.layers) {
      layer.wq = rotate_weight_for_rotated_input(layer.wq, q);
      layer.wk = rotate_weight_for_rotated_input(layer.wk, q);
      layer.wv = rotate_weight_for_rotated_input(layer.wv, q);
      layer.w_gate = rotate_weight_for_rotated_input(layer.w_gate, q);
      layer.w_up = rotate_weight_for_rotated_input(layer.w_up, q);
      layer.wo = rotate_weight_producing_rotated_output(layer.wo, q);
      layer.w_down = rotate_weight_producing_rotated_output(layer.w_down, q);
    }
    for (int l = 0; l < L; ++l) {
      c.attn_input[size_t(l)] = rotate_activations(c.attn_input[size_t(l)], q);
      c.ffn_input[size_t(l)] = rotate_activations(c.ffn_input[size_t(l)], q);
    }
  }

  // ---- 3. SmoothAttention ------------------------------------------------------
  if (opt.smooth_attention) {
    for (int l = 0; l < L; ++l) {
      auto& layer = m.layers[size_t(l)];
      const auto scales = compute_smooth_attention_scales(
          c.post_rope_keys[size_t(l)], cfg.head_dim, opt.smooth_attn_alpha);
      fold_smooth_attention(scales, cfg.n_heads, cfg.n_kv_heads, layer.wq,
                            layer.wk);
      c.post_rope_keys[size_t(l)] =
          smooth_keys(c.post_rope_keys[size_t(l)], scales);
      c.post_rope_queries[size_t(l)] = scale_queries(
          c.post_rope_queries[size_t(l)], scales, cfg.n_heads);
    }
  }

  // ---- 4. block-output smoothing -----------------------------------------------
  if (opt.smooth_outputs) {
    const int group = cfg.n_heads / cfg.n_kv_heads;
    for (int l = 0; l < L; ++l) {
      auto& layer = m.layers[size_t(l)];
      // Attention output channels: λ constrained constant across the q-heads
      // sharing one kv head (they are produced by the same wv rows).
      Tensor lam_kv({cfg.kv_dim()});
      for (int64_t j = 0; j < cfg.kv_dim(); ++j) {
        const int64_t kv_head = j / cfg.head_dim;
        const int64_t dim = j % cfg.head_dim;
        float amax = 1e-5f, wmax = 1e-5f;
        for (int g = 0; g < group; ++g) {
          const int64_t qc = (kv_head * group + g) * cfg.head_dim + dim;
          for (int64_t t = 0; t < c.attn_out[size_t(l)].rows(); ++t)
            amax = std::max(amax,
                            std::abs(c.attn_out[size_t(l)].at2(t, qc)));
          for (int64_t r = 0; r < layer.wo.rows(); ++r)
            wmax = std::max(wmax, std::abs(layer.wo.at2(r, qc)));
        }
        lam_kv[j] = clamp(std::pow(amax, opt.smooth_alpha) /
                              std::pow(wmax, 1.0f - opt.smooth_alpha),
                          1e-2f, 1e2f);
      }
      // Fold: wv rows /= λ, wo columns (per q channel) *= λ of its kv channel.
      Tensor lam_q({cfg.q_dim()});
      for (int64_t qc = 0; qc < cfg.q_dim(); ++qc) {
        const int64_t q_head = qc / cfg.head_dim;
        const int64_t dim = qc % cfg.head_dim;
        lam_q[qc] = lam_kv[(q_head / group) * cfg.head_dim + dim];
      }
      for (int64_t r = 0; r < cfg.kv_dim(); ++r) {
        const float inv = 1.0f / lam_kv[r];
        for (int64_t ccol = 0; ccol < layer.wv.cols(); ++ccol)
          layer.wv.at2(r, ccol) *= inv;
      }
      for (int64_t r = 0; r < layer.wo.rows(); ++r)
        for (int64_t ccol = 0; ccol < cfg.q_dim(); ++ccol)
          layer.wo.at2(r, ccol) *= lam_q[ccol];
      divide_columns(c.attn_out[size_t(l)], lam_q);
      divide_columns(c.values[size_t(l)], lam_kv);

      // FFN activation channels: w_up rows /= λ, w_down columns *= λ.
      const Tensor lam_f = compute_smoothing_scales(
          c.ffn_act[size_t(l)], layer.w_down, opt.smooth_alpha);
      fold_smoothing(lam_f, layer.w_up, layer.w_down);
      divide_columns(c.ffn_act[size_t(l)], lam_f);
    }
  }

  // ---- 5. activation-aware channel reordering -------------------------------------
  if (opt.reorder_channels) {
    // (a) residual stream: one global permutation from pooled input salience.
    Tensor pooled({int64_t(L) * 2 * c.attn_input[0].rows(), cfg.hidden});
    int64_t row = 0;
    for (int l = 0; l < L; ++l) {
      for (const Tensor* src :
           {&c.attn_input[size_t(l)], &c.ffn_input[size_t(l)]}) {
        for (int64_t t = 0; t < src->rows(); ++t, ++row)
          for (int64_t ch = 0; ch < cfg.hidden; ++ch)
            pooled.at2(row, ch) = src->at2(t, ch);
      }
    }
    const std::vector<int> perm = salience_order(pooled);
    m.embedding = permute_columns(m.embedding, perm);
    m.lm_head = permute_columns(m.lm_head, perm);
    for (auto& layer : m.layers) {
      layer.wq = permute_columns(layer.wq, perm);
      layer.wk = permute_columns(layer.wk, perm);
      layer.wv = permute_columns(layer.wv, perm);
      layer.w_gate = permute_columns(layer.w_gate, perm);
      layer.w_up = permute_columns(layer.w_up, perm);
      layer.wo = permute_rows(layer.wo, perm);
      layer.w_down = permute_rows(layer.w_down, perm);
      // Norm gains live on the permuted stream.
      Tensor la({cfg.hidden}), lf({cfg.hidden});
      for (size_t i = 0; i < perm.size(); ++i) {
        la[int64_t(i)] = layer.ln_attn[perm[i]];
        lf[int64_t(i)] = layer.ln_ffn[perm[i]];
      }
      layer.ln_attn = la;
      layer.ln_ffn = lf;
    }
    Tensor lfin({cfg.hidden});
    for (size_t i = 0; i < perm.size(); ++i)
      lfin[int64_t(i)] = m.ln_final[perm[i]];
    m.ln_final = lfin;
    for (int l = 0; l < L; ++l) {
      c.attn_input[size_t(l)] = permute_columns(c.attn_input[size_t(l)], perm);
      c.ffn_input[size_t(l)] = permute_columns(c.ffn_input[size_t(l)], perm);
    }

    // (b) FFN intermediate channels, per layer (gate/up rows + down columns;
    // gate and up must share the permutation because SwiGLU pairs them).
    for (int l = 0; l < L; ++l) {
      auto& layer = m.layers[size_t(l)];
      const std::vector<int> pf = salience_order(c.ffn_act[size_t(l)]);
      layer.w_gate = permute_rows(layer.w_gate, pf);
      layer.w_up = permute_rows(layer.w_up, pf);
      layer.w_down = permute_columns(layer.w_down, pf);
      c.ffn_act[size_t(l)] = permute_columns(c.ffn_act[size_t(l)], pf);
    }
  }

  // ---- 6. weight clipping ----------------------------------------------------
  if (opt.weight_clip) {
    ClipSearchOptions copt;
    copt.group = opt.clip_group;
    copt.progressive = opt.clip_progressive;
    copt.steps = opt.clip_steps;
    copt.min_ratio = opt.clip_min_ratio;

    AttentionConfig acfg;
    acfg.n_heads = cfg.n_heads;
    acfg.n_kv_heads = cfg.n_kv_heads;
    acfg.head_dim = cfg.head_dim;

    for (int l = 0; l < L; ++l) {
      auto& layer = m.layers[size_t(l)];
      const Tensor& x_attn = c.attn_input[size_t(l)];
      const Tensor& x_ffn = c.ffn_input[size_t(l)];
      std::vector<int> positions(static_cast<size_t>(x_attn.rows()));
      for (size_t i = 0; i < positions.size(); ++i)
        positions[i] = static_cast<int>(i);

      // q/k: block-output objective (Eq. 10) — error of the attention output
      // with the clipped projection against the unclipped one.
      const Tensor o_ref =
          attention_prefill(c.post_rope_queries[size_t(l)],
                            c.post_rope_keys[size_t(l)],
                            c.values[size_t(l)], acfg);
      auto block_err_q = [&](float ratio) {
        Tensor qt = gemm_f32_ref(
            x_attn, quantize_dequantize_clipped(layer.wq, ratio, copt));
        rope_inplace(qt, positions, cfg.head_dim);
        const Tensor o = attention_prefill(qt, c.post_rope_keys[size_t(l)],
                                           c.values[size_t(l)], acfg);
        return mse(o, o_ref) * double(o.numel());
      };
      auto block_err_k = [&](float ratio) {
        Tensor kt = gemm_f32_ref(
            x_attn, quantize_dequantize_clipped(layer.wk, ratio, copt));
        rope_inplace(kt, positions, cfg.head_dim);
        const Tensor o =
            attention_prefill(c.post_rope_queries[size_t(l)], kt,
                              c.values[size_t(l)], acfg);
        return mse(o, o_ref) * double(o.numel());
      };
      layer.wq = clip_weights(layer.wq,
                              search_clip_custom(block_err_q, copt).ratio);
      layer.wk = clip_weights(layer.wk,
                              search_clip_custom(block_err_k, copt).ratio);
      // Remaining projections: layer-output MSE.
      layer.wv = clip_weights(
          layer.wv, search_clip_output_mse(layer.wv, x_attn, copt).ratio);
      layer.wo = clip_weights(
          layer.wo,
          search_clip_output_mse(layer.wo, c.attn_out[size_t(l)], copt).ratio);
      layer.w_gate = clip_weights(
          layer.w_gate,
          search_clip_output_mse(layer.w_gate, x_ffn, copt).ratio);
      layer.w_up = clip_weights(
          layer.w_up, search_clip_output_mse(layer.w_up, x_ffn, copt).ratio);
      layer.w_down = clip_weights(
          layer.w_down,
          search_clip_output_mse(layer.w_down, c.ffn_act[size_t(l)], copt)
              .ratio);
    }
  }

  return m;
}

}  // namespace qserve
