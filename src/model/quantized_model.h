// Quantized transformer executor — the CPU analogue of the QServe runtime
// (Fig. 11): all GEMMs take quantized inputs and produce FP16 outputs,
// activation quantization is fused into RMSNorm / SwiGLU, a separate quant
// node precedes o_proj, and the KV cache is paged + quantized per head.
#pragma once

#include <memory>

#include "kernels/attention.h"
#include "kernels/weight_layout.h"
#include "kvcache/paged_kv_cache.h"
#include "model/weights.h"
#include "quant/types.h"
#include "quant/w4a16.h"
#include "tensor/tensor.h"

namespace qserve {

// Tensor-parallel execution config. n_shards = 0 resolves the shard count
// from the runtime default (QSERVE_TP_SHARDS / set_tp_shards()) and clamps
// it to what the model can serve: INT8-path weight schemes (W8A8 and the two
// W4A8 variants) shard up to n_kv_heads ways; every other scheme runs
// single-shard. An explicit n_shards >= 1 is validated loudly instead —
// requesting 2 shards of a scheme or head layout that cannot shard throws
// CheckError at construction, not a silent fallback.
struct TpConfig {
  int n_shards = 0;
};

enum class WeightScheme {
  kFp16,
  kW8PerChannel,          // SmoothQuant / TRT-LLM W8A8
  kW4PerChannel,          // QServe per-channel W4A8
  kW4PerGroupProgressive, // QServe per-group W4A8 (QoQ)
  kW4A16Group,            // AWQ/GPTQ-style weight-only
  kW4A4Group,             // Atom/QuaRot-style
};

enum class ActScheme { kFp16, kInt8PerToken, kInt4PerToken };

struct QuantSchemeConfig {
  WeightScheme weights = WeightScheme::kW4PerGroupProgressive;
  ActScheme acts = ActScheme::kInt8PerToken;
  KvPrecision kv = KvPrecision::kInt4;
  int group = 128;
  int level1_range = 119;  // kProtectiveRange; 127 = naive (overflow repro)
  bool fp16_attention = true;  // QServe's FP16 attention arithmetic
  // KV pool size (pages of 16 tokens per layer-sequence); shrink to create
  // real memory pressure in serving tests.
  int64_t kv_max_pages = 1 << 20;

  static QuantSchemeConfig qserve_w4a8kv4_g128();
  static QuantSchemeConfig qserve_w4a8kv4_per_channel();
  static QuantSchemeConfig trt_w8a8();
  static QuantSchemeConfig trt_w4a16();
  static QuantSchemeConfig atom_w4a4();
  static QuantSchemeConfig fp16();
};

// One quantized projection; holds exactly the representation `scheme` needs.
class QuantizedLinear {
 public:
  QuantizedLinear() = default;
  QuantizedLinear(const Tensor& w, const QuantSchemeConfig& cfg);
  // Tensor-parallel construction (INT8-path schemes only): quantize the full
  // matrix once, then pack one rectangular slice per shard via
  // pack_gemm_b_slice — no full pack is ever built, so TP holds each weight
  // exactly once. Column-parallel layers pass full-k row slices;
  // row-parallel layers pass full-n column (k) slices.
  QuantizedLinear(const Tensor& w, const QuantSchemeConfig& cfg,
                  const std::vector<PackSlice>& shard_slices);

  // x is the FP activation; quantization (if any) happens inside, matching
  // the fused quant nodes of Fig. 11.
  Tensor apply(const Tensor& x) const;

  // Column-parallel shard GEMM: the FP16 output slice for shard s's row
  // range, from the centrally quantized full-k activations. Bitwise the
  // corresponding output columns of the unsharded apply().
  Tensor apply_shard(const QuantizedActs& x, int s) const;
  // Row-parallel shard GEMM: shard s's exact INT32 partial accumulators over
  // its k-slice. `x_slice` holds the shard's columns of the centrally
  // quantized codes with the FULL-row per-token scale/token_sum; integer
  // partials from disjoint k-slices sum exactly, so the all-reduced total
  // fed to gemm_blocked_epilogue is bitwise the unsharded accumulator.
  I32Tensor acc_shard(const QuantizedActs& x_slice, int s) const;
  // Full-row epilogue constants for the post-reduction epilogue. Row-
  // parallel slices span every output row, so every shard pack carries the
  // identical vectors; shard 0's are returned.
  const std::vector<float>& epilogue_scale() const;
  const std::vector<float>& epilogue_zp_term() const;

  int64_t out_features() const { return n_; }

 private:
  WeightScheme scheme_ = WeightScheme::kFp16;
  ActScheme acts_ = ActScheme::kFp16;
  int64_t n_ = 0;
  Tensor fp_;
  W4A16PerGroup w4a16_;
  W4A4PerGroup w4a4_;
  // INT8-path schemes (W8A8, per-channel/per-group W4A8) keep only this
  // packed form: ISA-interleaved tiles, per-group weights pre-dequantized to
  // level-1 codes, epilogue constants inline. Every apply() — a decode step
  // or a whole stacked prefill — reuses the tiles via the blocked GEMM
  // driver instead of re-dequantizing weight rows per call, and the
  // quantization-time structs are dropped after packing to avoid holding
  // the weights twice.
  PackedGemmB packed_;
  // Tensor-parallel form: per-shard slice packs (and no packed_). Each
  // shard's tiles were interleaved once at construction from its own slice.
  std::vector<PackedGemmB> shard_packs_;
};

// One sequence's slice of a batched engine step: `tokens` are appended to
// sequence `seq` starting at absolute position `pos0` (which must equal
// seq_pos(seq)). A single-token chunk of an already-prefilled sequence is a
// decode row; a multi-token chunk is a prefill chunk or a speculative verify
// span. `logit_rows` declares how many of the chunk's TRAILING rows need LM-
// head logits: 1 (default) is the classic chunk-last sampling row, 0 skips
// the LM head entirely (a mid-prompt prefill chunk samples nothing), and
// tokens.size() asks for logits at every position — what a verify span needs
// to score all k+1 speculative candidates in one forward.
struct StepSeqChunk {
  int seq = -1;
  std::vector<int> tokens;
  int pos0 = 0;
  int logit_rows = 1;
};

// The model-level lowering of a scheduler StepPlan: every decode token and
// every prefill-chunk token from all scheduled requests, stacked row-wise.
// Each row is tagged with its (seq, pos) through the chunk structure; rows of
// one chunk are contiguous and in position order.
struct BatchedStep {
  std::vector<StepSeqChunk> chunks;  // distinct sequences, one chunk each
  int64_t total_rows() const {
    int64_t n = 0;
    for (const auto& c : chunks) n += static_cast<int64_t>(c.tokens.size());
    return n;
  }
  int64_t total_logit_rows() const {
    int64_t n = 0;
    for (const auto& c : chunks) n += c.logit_rows;
    return n;
  }
};

class QuantizedModel {
 public:
  // `weights` are the (possibly QoQ-transformed) FP32 weights to quantize.
  // The two-argument form resolves the tensor-parallel shard count from the
  // runtime default (TpConfig{0}); pass an explicit TpConfig to pin it.
  QuantizedModel(const ModelWeights& weights, const QuantSchemeConfig& cfg);
  QuantizedModel(const ModelWeights& weights, const QuantSchemeConfig& cfg,
                 const TpConfig& tp);

  // Stateless full-sequence forward (allocates a scratch KV sequence).
  Tensor forward(const std::vector<int>& tokens);

  // Streaming interface for the serving engine.
  int begin_sequence();                       // KV sequence handle
  void end_sequence(int seq);
  // Prefill `tokens`, return logits of the last position ([vocab]).
  Tensor prefill(int seq, const std::vector<int>& tokens);
  // Chunked prefill: run one slice of a prompt whose first `pos0` tokens are
  // already in the cache. `pos0` must equal the sequence's current position
  // (the engine tracks it per request). Per-token outputs are bitwise
  // identical to a monolithic prefill of the whole prompt — every GEMM row,
  // norm, and attention score is computed per position, and the causal mask
  // offsets against the cached prefix. Returns logits of the chunk's last
  // position ([vocab]); only the final chunk's logits are sampled.
  Tensor prefill_chunk(int seq, const std::vector<int>& tokens, int pos0);
  // Decode one token given the previous one; returns logits [vocab].
  Tensor decode_step(int seq, int token);
  // Batched step executor: run every chunk's rows through the block stack in
  // ONE stacked forward — a single GEMM call per projection per layer covers
  // all decode tokens and prefill-chunk tokens of the step (per-token
  // activation quantization is row-wise, so stacking changes no numerics).
  // Only attention fans out per-sequence against the paged KV cache, and KV
  // appends use the cache's batched scatter. Returns
  // [total_logit_rows(), vocab] logits: chunks contribute their trailing
  // `logit_rows` positions, in chunk order, positions ascending within a
  // chunk (logit_rows = 0 chunks contribute nothing and skip the LM head).
  // Each row of the result, and every KV entry written, is bitwise identical
  // to executing the chunks one token at a time via prefill_chunk() /
  // decode_step(), at any thread count and ISA — a multi-row chunk's row at
  // position p sees exactly the cached prefix [0, p) through the causal
  // mask, which is what makes a k+1-row speculative verify span score every
  // candidate with the same bits as k+1 sequential decode steps.
  Tensor forward_step(const BatchedStep& step);
  // Roll `seq` back to `new_len` tokens across every layer's KV sequence and
  // rewind the next append position — the speculative-decoding rejection
  // path. Freed pages return to the pool; stale SeqViews trip QS_DCHECK (see
  // PagedKvCache::truncate_sequence). A subsequent append of the same tokens
  // reconstructs bitwise-identical state.
  void truncate_sequence(int seq, int64_t new_len);
  // Fork: a new logical sequence aliasing src's first `upto_len` tokens
  // across every layer's KV sequence — page refcounts go up, nothing is
  // copied (copy-on-write happens lazily in the cache when a writer touches
  // a shared page; see PagedKvCache::fork_sequence). The fork's next append
  // position is upto_len. This is the prefix-cache / parallel-sampling
  // primitive: requests sharing a prompt prefix share its KV pages.
  int fork_sequence(int src, int64_t upto_len);
  // Install a sliding window with attention sinks on `seq` across every
  // layer's KV sequence (PagedKvCache::set_window). From then on the
  // sequence's attention — decode rows via the paged SeqView, prefill chunks
  // via gather_visible + attention_prefill_windowed — walks only the sink
  // runs plus each row's trailing window, and the cache recycles the oldest
  // non-sink page in place once the ring fills, so a 32k generation holds a
  // constant page footprint. Must be called before the sequence grows past
  // sinks + window + slack; `slack_tokens` must cover both the deepest
  // truncate_sequence rollback and the largest single append span (the
  // engine passes max(prefill chunk, speculative span)). window == context
  // or larger never recycles and is bitwise identical to full attention.
  void set_sequence_window(int seq, int64_t sink_tokens, int64_t window_tokens,
                           int64_t slack_tokens);
  // Tokens appended to `seq` so far (next position to prefill/decode).
  int64_t seq_pos(int seq) const;
  // Page-generation snapshot across every layer's KV sequence, concatenated
  // in layer order — the prefix index's validity stamp for a cached entry.
  std::vector<uint32_t> sequence_page_generations(int seq) const;
  // Currently-shared pages across every layer's KV sequence (observability).
  int64_t sequence_shared_pages(int seq) const;

  const ModelConfig& config() const { return cfg_; }
  const QuantSchemeConfig& scheme() const { return qcfg_; }
  PagedKvCache& kv_cache() { return *kv_; }

  // Observability for the attention executor (EngineStats reads these):
  // cumulative wall time spent in the per-layer attention sections of the
  // block stack (KV append + QK/softmax/SV, both the batched decode executor
  // and the prefill gather path).
  double attention_seconds() const { return attention_seconds_; }
  // How many batched_fused_decode_attention dispatches ran (one per layer
  // per step that carries at least one single-row span; one per SHARD per
  // layer under tensor parallelism, since each shard dispatches its own
  // head range) and how many sequence-items they covered in total — a step
  // with d decode rows adds d * n_layers items regardless of shard count,
  // never a per-sequence fan-out.
  int64_t batched_attention_calls() const { return batched_attention_calls_; }
  int64_t decode_attention_items() const { return decode_attention_items_; }

  // Tensor-parallel observability. tp_shards() is the resolved shard count
  // (1 = single-shard execution, the classic path). tp_comm_seconds() is the
  // cumulative wall time spent at the reduction boundaries — the concat of
  // column-parallel output slices and the all-reduce + epilogue of
  // row-parallel partials — i.e. the time a multi-device deployment would
  // spend in collectives. tp_shard_max/mean_seconds() accumulate, per shard
  // region, the slowest shard's wall time and the mean shard wall time;
  // their ratio is the shard-imbalance factor EngineStats reports.
  int tp_shards() const { return tp_; }
  double tp_comm_seconds() const { return tp_comm_seconds_; }
  double tp_shard_max_seconds() const { return tp_shard_max_seconds_; }
  double tp_shard_mean_seconds() const { return tp_shard_mean_seconds_; }

 private:
  struct QLayer {
    QuantizedLinear wq, wk, wv, wo, w_gate, w_up, w_down;
    Tensor ln_attn, ln_ffn;
  };

  // Row range [row0, row0 + n) of a stacked activation matrix belonging to
  // one sequence — the executor's internal row tag.
  struct SeqSpan {
    int seq;
    int64_t row0;
    int64_t n;
  };

  // Run the block stack over a chunk of tokens starting at `pos0`; returns
  // hidden states [n, hidden]. Appends K/V to `seq`'s cache. Thin wrapper
  // over the batched executor with a single span.
  Tensor run_blocks(int seq, const Tensor& embedded, int pos0);
  // The shared executor: `embedded` stacks every span's rows; positions[r]
  // is row r's absolute position. GEMMs/norms/activations run on the whole
  // stack; KV append + attention fan out per span.
  Tensor run_blocks_batched(const std::vector<SeqSpan>& spans,
                            const Tensor& embedded,
                            const std::vector<int>& positions);
  // Tensor-parallel executor (tp_ > 1): same contract, same bits. Each layer
  // runs five run_sharded regions — QKV+RoPE slices, KV writes + sharded
  // attention, o_proj partials, gate/up+SwiGLU slices, down partials — with
  // centrally-timed concat / all-reduce boundaries between them.
  Tensor run_blocks_batched_tp(const std::vector<SeqSpan>& spans,
                               const Tensor& embedded,
                               const std::vector<int>& positions);
  struct SeqState;  // defined below with the data members
  // Multi-row span attention against the paged cache: full-attention spans
  // gather every cached K/V row and run attention_prefill; windowed spans
  // gather only the visible rows (sinks + retained tail) and run
  // attention_prefill_windowed. [kh0, kh1) selects the KV head range — TP
  // shards pass their slice together with a head-sliced AttentionConfig;
  // the single-shard path passes the full range. `s_total` is the sequence
  // length after the span's rows were appended.
  Tensor span_attention(int lseq, const SeqState& st, const Tensor& qspan,
                        int64_t s_total, const AttentionConfig& acfg, int kh0,
                        int kh1) const;
  Tensor logits_from_hidden(const Tensor& h) const;
  // Fold one shard region's per-shard wall times into the imbalance
  // accumulators.
  void note_shard_times(const std::vector<double>& seconds);

  // One shard's slice of every per-layer dimension. KV head ranges are
  // contiguous and near-even (feasibility caps shards at n_kv_heads); query
  // head ranges are the KV range times the GQA group, so a KV head's whole
  // query group lives on one shard; the FFN partition slices ffn_dim with
  // granularity 1; the o_proj/down k-slices are the matching near-even input
  // splits (head-layout-unaligned bounds are fine — pack_gemm_b_slice looks
  // metadata up at absolute indices).
  struct TpShard {
    int kh0 = 0, kh1 = 0;      // KV head range [kh0, kh1)
    int qh0 = 0, qh1 = 0;      // query head range
    int64_t f0 = 0, f1 = 0;    // ffn_dim range (gate/up rows, down k-slice)
    int64_t ko0 = 0, ko1 = 0;  // o_proj k-slice of n_heads * head_dim
  };

  ModelConfig cfg_;
  QuantSchemeConfig qcfg_;
  // Built and validated once at construction (INT4 KV implies even
  // head_dim); every forward reuses it instead of re-deriving per call.
  AttentionConfig attn_cfg_;
  int tp_ = 1;
  std::vector<TpShard> tp_plan_;
  double attention_seconds_ = 0.0;
  double tp_comm_seconds_ = 0.0;
  double tp_shard_max_seconds_ = 0.0;
  double tp_shard_mean_seconds_ = 0.0;
  int64_t batched_attention_calls_ = 0;
  int64_t decode_attention_items_ = 0;
  Tensor embedding_;
  std::vector<QLayer> layers_;
  Tensor ln_final_;
  QuantizedLinear lm_head_;
  std::unique_ptr<PagedKvCache> kv_;
  // Each logical sequence owns one cache sequence per layer.
  struct SeqState {
    std::vector<int> layer_seqs;
    int64_t next_pos = 0;
    // Sliding-window attention parameters (0 = full attention); mirrors the
    // per-layer cache state so the executors can route multi-row spans to
    // the windowed gather/prefill path without a cache query.
    int64_t sink = 0;
    int64_t window = 0;
    bool live = false;
  };
  std::vector<SeqState> seqs_;
};

}  // namespace qserve
