#include "model/quantized_model.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/half.h"
#include "common/parallel.h"
#include "kernels/attention.h"
#include "kernels/cpu/microkernel.h"
#include "kernels/gemm.h"
#include "kernels/ops.h"
#include "kvcache/fused_attention.h"
#include "quant/quantize.h"

namespace qserve {

// --- scheme presets -----------------------------------------------------------

QuantSchemeConfig QuantSchemeConfig::qserve_w4a8kv4_g128() {
  QuantSchemeConfig c;
  c.weights = WeightScheme::kW4PerGroupProgressive;
  c.acts = ActScheme::kInt8PerToken;
  c.kv = KvPrecision::kInt4;
  return c;
}

QuantSchemeConfig QuantSchemeConfig::qserve_w4a8kv4_per_channel() {
  QuantSchemeConfig c = qserve_w4a8kv4_g128();
  c.weights = WeightScheme::kW4PerChannel;
  return c;
}

QuantSchemeConfig QuantSchemeConfig::trt_w8a8() {
  QuantSchemeConfig c;
  c.weights = WeightScheme::kW8PerChannel;
  c.acts = ActScheme::kInt8PerToken;
  c.kv = KvPrecision::kInt8;
  c.fp16_attention = false;
  return c;
}

QuantSchemeConfig QuantSchemeConfig::trt_w4a16() {
  QuantSchemeConfig c;
  c.weights = WeightScheme::kW4A16Group;
  c.acts = ActScheme::kFp16;
  c.kv = KvPrecision::kFp16;
  c.fp16_attention = false;
  return c;
}

QuantSchemeConfig QuantSchemeConfig::atom_w4a4() {
  QuantSchemeConfig c;
  c.weights = WeightScheme::kW4A4Group;
  c.acts = ActScheme::kInt4PerToken;
  c.kv = KvPrecision::kInt4;
  c.fp16_attention = false;
  return c;
}

QuantSchemeConfig QuantSchemeConfig::fp16() {
  QuantSchemeConfig c;
  c.weights = WeightScheme::kFp16;
  c.acts = ActScheme::kFp16;
  c.kv = KvPrecision::kFp16;
  c.fp16_attention = false;
  return c;
}

// --- QuantizedLinear -----------------------------------------------------------

QuantizedLinear::QuantizedLinear(const Tensor& w,
                                 const QuantSchemeConfig& cfg)
    : scheme_(cfg.weights), acts_(cfg.acts), n_(w.rows()) {
  // INT8-path schemes are packed for the ISA active at construction; the
  // blocked driver falls back to the scalar microkernel if the active ISA
  // changes to an incompatible vector width afterwards.
  const int nr = cpu::microkernel_for(cpu::active_isa()).nr;
  switch (scheme_) {
    case WeightScheme::kFp16:
      fp_ = w;
      for (int64_t i = 0; i < fp_.numel(); ++i)
        fp_[i] = to_half_precision(fp_[i]);
      break;
    case WeightScheme::kW8PerChannel:
      packed_ = pack_gemm_b(quantize_w8_per_channel(w), nr);
      break;
    case WeightScheme::kW4PerChannel:
      packed_ = pack_gemm_b(quantize_w4_per_channel(w), nr);
      break;
    case WeightScheme::kW4PerGroupProgressive: {
      ProgressiveOptions popt;
      popt.group = static_cast<int>(std::min<int64_t>(cfg.group, w.cols()));
      popt.level1_range = cfg.level1_range;
      packed_ = pack_gemm_b(quantize_progressive(w, popt), nr);
      break;
    }
    case WeightScheme::kW4A16Group:
      w4a16_ = quantize_w4a16(
          w, static_cast<int>(std::min<int64_t>(cfg.group, w.cols())));
      break;
    case WeightScheme::kW4A4Group:
      w4a4_ = quantize_w4a4_per_group(
          w, static_cast<int>(std::min<int64_t>(cfg.group, w.cols())));
      break;
  }
}

Tensor QuantizedLinear::apply(const Tensor& x) const {
  switch (scheme_) {
    case WeightScheme::kFp16:
      return gemm_f32_ref(x, fp_);
    // The INT8 paths hit the pre-packed blocked GEMM: weight tiles were
    // interleaved (and, for per-group, dequantized to level-1 codes) once at
    // construction, and a stacked prefill reuses each tile across all its
    // tokens in one call.
    case WeightScheme::kW8PerChannel:
    case WeightScheme::kW4PerChannel:
    case WeightScheme::kW4PerGroupProgressive:
      return gemm_blocked(quantize_acts_per_token(x), packed_);
    case WeightScheme::kW4A16Group:
      return gemm_w4a16(x, w4a16_);
    case WeightScheme::kW4A4Group:
      return gemm_w4a4_atom(quantize_acts_per_token_int4(x), w4a4_);
  }
  QS_CHECK(false);
  return Tensor{};
}

// --- QuantizedModel --------------------------------------------------------------

QuantizedModel::QuantizedModel(const ModelWeights& weights,
                               const QuantSchemeConfig& cfg)
    : cfg_(weights.cfg), qcfg_(cfg) {
  // Loud scheme validation at construction instead of downstream
  // misbehavior (a non-positive group would divide by zero at pack time; a
  // level-1 range outside (0, 127] is not representable in INT8).
  QS_CHECK_MSG(cfg.group > 0, "QuantSchemeConfig.group must be >= 1");
  QS_CHECK_MSG(cfg.level1_range >= 1 && cfg.level1_range <= 127,
               "QuantSchemeConfig.level1_range must be in [1, 127]");
  QS_CHECK_MSG(cfg.kv_max_pages > 0,
               "QuantSchemeConfig.kv_max_pages must be >= 1");
  embedding_ = weights.embedding;
  layers_.reserve(weights.layers.size());
  for (const auto& lw : weights.layers) {
    QLayer ql;
    ql.wq = QuantizedLinear(lw.wq, cfg);
    ql.wk = QuantizedLinear(lw.wk, cfg);
    ql.wv = QuantizedLinear(lw.wv, cfg);
    ql.wo = QuantizedLinear(lw.wo, cfg);
    ql.w_gate = QuantizedLinear(lw.w_gate, cfg);
    ql.w_up = QuantizedLinear(lw.w_up, cfg);
    ql.w_down = QuantizedLinear(lw.w_down, cfg);
    ql.ln_attn = lw.ln_attn;
    ql.ln_ffn = lw.ln_ffn;
    layers_.push_back(std::move(ql));
  }
  ln_final_ = weights.ln_final;
  // The LM head stays FP16 in all configurations (standard practice).
  QuantSchemeConfig head_cfg = cfg;
  head_cfg.weights = WeightScheme::kFp16;
  head_cfg.acts = ActScheme::kFp16;
  lm_head_ = QuantizedLinear(weights.lm_head, head_cfg);

  KvCacheConfig kcfg;
  kcfg.n_kv_heads = cfg_.n_kv_heads;
  kcfg.head_dim = cfg_.head_dim;
  kcfg.precision = cfg.kv;
  kcfg.page_size = 16;
  kcfg.max_pages = cfg.kv_max_pages;
  kv_ = std::make_unique<PagedKvCache>(kcfg);

  // Loud construction-time validation: a head layout the attention kernels
  // cannot serve (e.g. odd head_dim with nibble-packed INT4 KV) throws here,
  // not deep inside the first forward.
  attn_cfg_.n_heads = cfg_.n_heads;
  attn_cfg_.n_kv_heads = cfg_.n_kv_heads;
  attn_cfg_.head_dim = cfg_.head_dim;
  attn_cfg_.fp16_accum = qcfg_.fp16_attention;
  attn_cfg_.validate(/*int4_kv=*/qcfg_.kv == KvPrecision::kInt4);
}

int QuantizedModel::begin_sequence() {
  int id = -1;
  for (size_t i = 0; i < seqs_.size(); ++i) {
    if (!seqs_[i].live) {
      id = static_cast<int>(i);
      break;
    }
  }
  if (id < 0) {
    id = static_cast<int>(seqs_.size());
    seqs_.emplace_back();
  }
  auto& s = seqs_[static_cast<size_t>(id)];
  s.layer_seqs.clear();
  for (int l = 0; l < cfg_.n_layers; ++l)
    s.layer_seqs.push_back(kv_->alloc_sequence());
  s.next_pos = 0;
  s.live = true;
  return id;
}

void QuantizedModel::end_sequence(int seq) {
  auto& s = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(s.live);
  for (int ls : s.layer_seqs) kv_->free_sequence(ls);
  s.live = false;
}

Tensor QuantizedModel::run_blocks(int seq, const Tensor& embedded, int pos0) {
  const int64_t n = embedded.rows();
  std::vector<int> positions(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    positions[static_cast<size_t>(i)] = pos0 + static_cast<int>(i);
  return run_blocks_batched({{seq, 0, n}}, embedded, positions);
}

Tensor QuantizedModel::run_blocks_batched(const std::vector<SeqSpan>& spans,
                                          const Tensor& embedded,
                                          const std::vector<int>& positions) {
  const int64_t n = embedded.rows();
  QS_CHECK_EQ(n, static_cast<int64_t>(positions.size()));
  const AttentionConfig& acfg = attn_cfg_;

  Tensor x = embedded;
  for (size_t li = 0; li < layers_.size(); ++li) {
    auto& layer = layers_[li];
    // Attention block. Every projection runs ONE GEMM over the whole row
    // stack — all sequences' decode tokens and prefill chunks together.
    // Activation quantization is fused into RMSNorm (QuantizedLinear::apply
    // re-runs the same deterministic per-row quantizer), so stacking rows
    // from different sequences changes no per-row numerics.
    Tensor h = rms_norm(x, layer.ln_attn);
    Tensor q = layer.wq.apply(h);
    Tensor k = layer.wk.apply(h);
    Tensor v = layer.wv.apply(h);
    rope_inplace(q, positions, cfg_.head_dim);
    rope_inplace(k, positions, cfg_.head_dim);

    // Attention section, timed separately (attention_seconds_): KV append +
    // attend. Every span first appends its K/V rows to its own cache
    // sequence in one batched scatter; then all single-row spans (decode and
    // token-wise verify rows) run through ONE batched executor call that
    // walks all sequences × heads in a single parallel_for, dequantizing
    // page data inline in the ISA-dispatched microkernels (§5.3). Multi-row
    // spans (prefill chunks) gather the full dequantized K/V once — both
    // paths share the same kernel arithmetic, so the step is bitwise
    // identical to a per-sequence fan-out at any thread count and ISA.
    const auto attn_t0 = std::chrono::steady_clock::now();
    Tensor attn;
    if (spans.size() == 1 && spans[0].n > 1) {
      // Single multi-row span (a plain prefill chunk): q already is exactly
      // this span's rows, so attend on it directly — no scratch copies.
      const SeqSpan& sp = spans[0];
      const int lseq = seqs_[static_cast<size_t>(sp.seq)].layer_seqs[li];
      kv_->append_batch(lseq, k.row(0), v.row(0), sp.n);
      Tensor kd, vd;
      kv_->gather(lseq, kd, vd);
      attn = attention_prefill(q, kd, vd, acfg);
    } else {
      attn = Tensor({n, q.cols()});
      // Pass 1: appends. Distinct sequences may scatter concurrently (the
      // pool bookkeeping is internally locked), and every span's KV must be
      // in its pages before that span attends.
      parallel_for(
          0, static_cast<int64_t>(spans.size()), 1,
          [&](int64_t lo, int64_t hi) {
            for (int64_t si = lo; si < hi; ++si) {
              const SeqSpan& sp = spans[static_cast<size_t>(si)];
              const int lseq =
                  seqs_[static_cast<size_t>(sp.seq)].layer_seqs[li];
              kv_->append_batch(lseq, k.row(sp.row0), v.row(sp.row0), sp.n);
            }
          });
      // Pass 2: one batched decode-attention dispatch for every single-row
      // span of the step...
      std::vector<DecodeAttentionItem> items;
      std::vector<size_t> multi;
      items.reserve(spans.size());
      for (size_t si = 0; si < spans.size(); ++si) {
        const SeqSpan& sp = spans[si];
        if (sp.n == 1) {
          items.push_back(
              {seqs_[static_cast<size_t>(sp.seq)].layer_seqs[li],
               q.row(sp.row0), attn.row(sp.row0)});
        } else {
          multi.push_back(si);
        }
      }
      if (!items.empty()) {
        batched_fused_decode_attention(*kv_, items, acfg);
        ++batched_attention_calls_;
        decode_attention_items_ += static_cast<int64_t>(items.size());
      }
      // ...and the gather path for the (rare) multi-row spans sharing the
      // step with decodes.
      if (!multi.empty()) {
        parallel_for(
            0, static_cast<int64_t>(multi.size()), 1,
            [&](int64_t lo, int64_t hi) {
              for (int64_t mi = lo; mi < hi; ++mi) {
                const SeqSpan& sp = spans[multi[static_cast<size_t>(mi)]];
                const int lseq =
                    seqs_[static_cast<size_t>(sp.seq)].layer_seqs[li];
                Tensor kd, vd;
                kv_->gather(lseq, kd, vd);
                Tensor qs({sp.n, q.cols()});
                std::copy(q.row(sp.row0), q.row(sp.row0) + sp.n * q.cols(),
                          qs.data());
                const Tensor a = attention_prefill(qs, kd, vd, acfg);
                std::copy(a.data(), a.data() + a.numel(), attn.row(sp.row0));
              }
            });
      }
    }
    attention_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      attn_t0)
            .count();
    // Separate quant node before the output projection (Fig. 11).
    Tensor attn_proj = layer.wo.apply(attn);
    add_inplace(x, attn_proj);

    // FFN block.
    Tensor h2 = rms_norm(x, layer.ln_ffn);
    Tensor gate = layer.w_gate.apply(h2);
    Tensor up = layer.w_up.apply(h2);
    Tensor act({n, cfg_.ffn_dim});
    // Row-independent like the norm/quant loops, so the stacked rows of a
    // batched step parallelize bitwise-identically.
    parallel_for(0, n, 4, [&](int64_t lo, int64_t hi) {
      for (int64_t t = lo; t < hi; ++t)
        for (int64_t c = 0; c < cfg_.ffn_dim; ++c) {
          const float g = gate.at2(t, c);
          act.at2(t, c) = (g / (1.0f + std::exp(-g))) * up.at2(t, c);
        }
    });
    Tensor down = layer.w_down.apply(act);
    add_inplace(x, down);
  }
  return x;
}

Tensor QuantizedModel::logits_from_hidden(const Tensor& h) const {
  return lm_head_.apply(rms_norm(h, ln_final_));
}

Tensor QuantizedModel::prefill(int seq, const std::vector<int>& tokens) {
  return prefill_chunk(
      seq, tokens,
      static_cast<int>(seqs_[static_cast<size_t>(seq)].next_pos));
}

Tensor QuantizedModel::prefill_chunk(int seq, const std::vector<int>& tokens,
                                     int pos0) {
  QS_CHECK(!tokens.empty());
  auto& state = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(state.live);
  QS_CHECK_EQ(int64_t(pos0), state.next_pos);
  // The chunk is stacked into one [n, hidden] activation matrix, so each
  // projection below is a single blocked GEMM call and every packed weight
  // tile is unpacked once and reused across all n tokens — this is what
  // makes the pre-packed layout pay during prefill.
  const int64_t n = static_cast<int64_t>(tokens.size());
  Tensor x({n, cfg_.hidden});
  for (int64_t t = 0; t < n; ++t)
    for (int64_t c = 0; c < cfg_.hidden; ++c)
      x.at2(t, c) = embedding_.at2(tokens[static_cast<size_t>(t)], c);
  Tensor h = run_blocks(seq, x, pos0);
  state.next_pos += n;

  Tensor last({1, cfg_.hidden});
  for (int64_t c = 0; c < cfg_.hidden; ++c)
    last.at2(0, c) = h.at2(n - 1, c);
  Tensor logits = logits_from_hidden(last);
  return logits.reshaped({cfg_.vocab});
}

Tensor QuantizedModel::forward_step(const BatchedStep& step) {
  QS_CHECK(!step.chunks.empty());
  const int64_t n = step.total_rows();

  // Validate chunks and lay out the stacked rows: chunk i occupies the
  // contiguous row range [spans[i].row0, spans[i].row0 + |tokens|).
  std::vector<SeqSpan> spans;
  spans.reserve(step.chunks.size());
  std::vector<int> positions(static_cast<size_t>(n));
  std::unordered_set<int> seen_seqs;
  int64_t row0 = 0;
  for (const StepSeqChunk& c : step.chunks) {
    QS_CHECK(!c.tokens.empty());
    QS_CHECK(c.seq >= 0 && c.seq < static_cast<int>(seqs_.size()));
    const auto& state = seqs_[static_cast<size_t>(c.seq)];
    QS_CHECK(state.live);
    QS_CHECK_EQ(int64_t(c.pos0), state.next_pos);
    QS_CHECK_MSG(c.logit_rows >= 0 &&
                     c.logit_rows <= static_cast<int>(c.tokens.size()),
                 "logit_rows must be in [0, |tokens|]");
    QS_CHECK_MSG(seen_seqs.insert(c.seq).second,
                 "a sequence may appear in at most one chunk per step");
    const int64_t cn = static_cast<int64_t>(c.tokens.size());
    for (int64_t t = 0; t < cn; ++t) {
      QS_CHECK(c.tokens[static_cast<size_t>(t)] >= 0 &&
               c.tokens[static_cast<size_t>(t)] < cfg_.vocab);
      positions[static_cast<size_t>(row0 + t)] =
          c.pos0 + static_cast<int>(t);
    }
    spans.push_back({c.seq, row0, cn});
    row0 += cn;
  }

  // Row-gathered embedding lookup into one stacked activation buffer; each
  // chunk's rows are contiguous, so the gather parallelizes over chunks
  // without changing bits.
  Tensor x({n, cfg_.hidden});
  parallel_for(
      0, static_cast<int64_t>(step.chunks.size()), 1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t ci = lo; ci < hi; ++ci) {
          const StepSeqChunk& c = step.chunks[static_cast<size_t>(ci)];
          const SeqSpan& sp = spans[static_cast<size_t>(ci)];
          for (int64_t t = 0; t < sp.n; ++t) {
            const int tok = c.tokens[static_cast<size_t>(t)];
            std::copy(embedding_.row(tok), embedding_.row(tok) + cfg_.hidden,
                      x.row(sp.row0 + t));
          }
        }
      });

  Tensor h = run_blocks_batched(spans, x, positions);
  for (const StepSeqChunk& c : step.chunks)
    seqs_[static_cast<size_t>(c.seq)].next_pos +=
        static_cast<int64_t>(c.tokens.size());

  // One LM-head GEMM over every row that declared it needs logits — a
  // chunk's trailing logit_rows positions, gathered chunk by chunk. A step
  // whose chunks all set logit_rows = 0 (e.g. only mid-prompt prefill
  // chunks) skips the LM head entirely.
  const int64_t n_logits = step.total_logit_rows();
  if (n_logits == 0) return Tensor({0, cfg_.vocab});
  Tensor last({n_logits, cfg_.hidden});
  int64_t out = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    const int lr = step.chunks[i].logit_rows;
    for (int64_t j = 0; j < lr; ++j) {
      const int64_t src = spans[i].row0 + spans[i].n - lr + j;
      std::copy(h.row(src), h.row(src) + cfg_.hidden, last.row(out++));
    }
  }
  return logits_from_hidden(last);
}

void QuantizedModel::truncate_sequence(int seq, int64_t new_len) {
  auto& state = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(state.live);
  QS_CHECK_MSG(new_len >= 0 && new_len <= state.next_pos,
               "truncate target " << new_len << " outside [0, "
                                  << state.next_pos << "]");
  for (int ls : state.layer_seqs) kv_->truncate_sequence(ls, new_len);
  state.next_pos = new_len;
}

int QuantizedModel::fork_sequence(int src, int64_t upto_len) {
  const auto& source = seqs_[static_cast<size_t>(src)];
  QS_CHECK(source.live);
  QS_CHECK_MSG(upto_len >= 0 && upto_len <= source.next_pos,
               "fork upto_len " << upto_len << " outside [0, "
                                << source.next_pos << "]");
  int id = -1;
  for (size_t i = 0; i < seqs_.size(); ++i) {
    if (!seqs_[i].live) {
      id = static_cast<int>(i);
      break;
    }
  }
  if (id < 0) {
    id = static_cast<int>(seqs_.size());
    seqs_.emplace_back();
  }
  auto& s = seqs_[static_cast<size_t>(id)];
  // seqs_ may have reallocated; re-resolve the source.
  const auto& sp = seqs_[static_cast<size_t>(src)];
  s.layer_seqs.clear();
  for (int ls : sp.layer_seqs)
    s.layer_seqs.push_back(kv_->fork_sequence(ls, upto_len));
  s.next_pos = upto_len;
  s.live = true;
  return id;
}

int64_t QuantizedModel::seq_pos(int seq) const {
  const auto& state = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(state.live);
  return state.next_pos;
}

std::vector<uint32_t> QuantizedModel::sequence_page_generations(
    int seq) const {
  const auto& state = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(state.live);
  std::vector<uint32_t> gens;
  for (int ls : state.layer_seqs) {
    const std::vector<uint32_t> layer = kv_->page_generations(ls);
    gens.insert(gens.end(), layer.begin(), layer.end());
  }
  return gens;
}

int64_t QuantizedModel::sequence_shared_pages(int seq) const {
  const auto& state = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(state.live);
  int64_t n = 0;
  for (int ls : state.layer_seqs) n += kv_->seq_shared_pages(ls);
  return n;
}

Tensor QuantizedModel::decode_step(int seq, int token) {
  return prefill(seq, {token});
}

Tensor QuantizedModel::forward(const std::vector<int>& tokens) {
  const int seq = begin_sequence();
  const int64_t n = static_cast<int64_t>(tokens.size());
  Tensor x({n, cfg_.hidden});
  for (int64_t t = 0; t < n; ++t)
    for (int64_t c = 0; c < cfg_.hidden; ++c)
      x.at2(t, c) = embedding_.at2(tokens[static_cast<size_t>(t)], c);
  Tensor h = run_blocks(seq, x, 0);
  Tensor logits = logits_from_hidden(h);
  end_sequence(seq);
  return logits;
}

}  // namespace qserve
