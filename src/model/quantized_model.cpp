#include "model/quantized_model.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/half.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "kernels/attention.h"
#include "kernels/cpu/microkernel.h"
#include "kernels/gemm.h"
#include "kernels/ops.h"
#include "kvcache/fused_attention.h"
#include "quant/quantize.h"

namespace qserve {

namespace {

// Tensor parallelism is restricted to the schemes whose GEMMs accumulate in
// exact INT32 — that is what makes the row-parallel all-reduce bitwise
// (integer partials from disjoint k-slices sum exactly in any order).
bool int8_path_scheme(WeightScheme w) {
  return w == WeightScheme::kW8PerChannel ||
         w == WeightScheme::kW4PerChannel ||
         w == WeightScheme::kW4PerGroupProgressive;
}

int resolve_tp_shards(const ModelConfig& cfg, const QuantSchemeConfig& qcfg,
                      const TpConfig& tp) {
  const int max_feasible =
      int8_path_scheme(qcfg.weights) ? cfg.n_kv_heads : 1;
  if (tp.n_shards == 0) {
    // Runtime default: clamp silently — QSERVE_TP_SHARDS applies to every
    // model in the process, shardable or not.
    return std::max(1, std::min(tp_shards(), max_feasible));
  }
  QS_CHECK_MSG(tp.n_shards >= 1, "TpConfig.n_shards must be >= 1 (0 = auto)");
  if (tp.n_shards > 1) {
    QS_CHECK_MSG(int8_path_scheme(qcfg.weights),
                 "tensor parallelism requires an INT8-path weight scheme "
                 "(W8A8 or W4A8)");
    QS_CHECK_MSG(tp.n_shards <= cfg.n_kv_heads,
                 "TpConfig.n_shards "
                     << tp.n_shards << " exceeds n_kv_heads "
                     << cfg.n_kv_heads << " (GQA group "
                     << cfg.n_heads / cfg.n_kv_heads
                     << ": each shard must carry at least one KV head with "
                        "its whole query-head group)");
  }
  return tp.n_shards;
}

// Column slice [c0, c1) of centrally quantized activations: shard-local
// codes, shared FULL-row per-token scale and token sum — the row-parallel
// input contract (the quantizer must see every column of a row, so shards
// slice codes, never re-quantize).
QuantizedActs slice_acts_cols(const QuantizedActs& x, int64_t c0, int64_t c1) {
  QuantizedActs out;
  out.q = I8Tensor({x.m(), c1 - c0});
  for (int64_t t = 0; t < x.m(); ++t)
    std::copy(x.q.row(t) + c0, x.q.row(t) + c1, out.q.row(t));
  out.s = x.s;
  out.token_sum = x.token_sum;
  return out;
}

// All-reduce of per-shard INT32 partial accumulators over the fixed pairwise
// summation tree (math_util.h). Integer sums are exact in any order, but the
// fixed tree keeps the reduction's definition shard-count-explicit and
// matches the float helper the tests pin down.
I32Tensor reduce_partials(const std::vector<I32Tensor>& parts) {
  const int64_t s_count = static_cast<int64_t>(parts.size());
  QS_CHECK_GT(s_count, 0);
  I32Tensor out({parts[0].rows(), parts[0].cols()});
  for (const I32Tensor& p : parts) QS_CHECK(p.same_shape(out));
  parallel_for(0, out.numel(), 1024, [&](int64_t lo, int64_t hi) {
    thread_local std::vector<int32_t> vals;
    vals.resize(static_cast<size_t>(s_count));
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t s = 0; s < s_count; ++s)
        vals[static_cast<size_t>(s)] = parts[static_cast<size_t>(s)][i];
      out[i] = pairwise_tree_sum(vals.data(), s_count);
    }
  });
  return out;
}

}  // namespace

// --- scheme presets -----------------------------------------------------------

QuantSchemeConfig QuantSchemeConfig::qserve_w4a8kv4_g128() {
  QuantSchemeConfig c;
  c.weights = WeightScheme::kW4PerGroupProgressive;
  c.acts = ActScheme::kInt8PerToken;
  c.kv = KvPrecision::kInt4;
  return c;
}

QuantSchemeConfig QuantSchemeConfig::qserve_w4a8kv4_per_channel() {
  QuantSchemeConfig c = qserve_w4a8kv4_g128();
  c.weights = WeightScheme::kW4PerChannel;
  return c;
}

QuantSchemeConfig QuantSchemeConfig::trt_w8a8() {
  QuantSchemeConfig c;
  c.weights = WeightScheme::kW8PerChannel;
  c.acts = ActScheme::kInt8PerToken;
  c.kv = KvPrecision::kInt8;
  c.fp16_attention = false;
  return c;
}

QuantSchemeConfig QuantSchemeConfig::trt_w4a16() {
  QuantSchemeConfig c;
  c.weights = WeightScheme::kW4A16Group;
  c.acts = ActScheme::kFp16;
  c.kv = KvPrecision::kFp16;
  c.fp16_attention = false;
  return c;
}

QuantSchemeConfig QuantSchemeConfig::atom_w4a4() {
  QuantSchemeConfig c;
  c.weights = WeightScheme::kW4A4Group;
  c.acts = ActScheme::kInt4PerToken;
  c.kv = KvPrecision::kInt4;
  c.fp16_attention = false;
  return c;
}

QuantSchemeConfig QuantSchemeConfig::fp16() {
  QuantSchemeConfig c;
  c.weights = WeightScheme::kFp16;
  c.acts = ActScheme::kFp16;
  c.kv = KvPrecision::kFp16;
  c.fp16_attention = false;
  return c;
}

// --- QuantizedLinear -----------------------------------------------------------

QuantizedLinear::QuantizedLinear(const Tensor& w,
                                 const QuantSchemeConfig& cfg)
    : scheme_(cfg.weights), acts_(cfg.acts), n_(w.rows()) {
  // INT8-path schemes are packed for the ISA active at construction; the
  // blocked driver falls back to the scalar microkernel if the active ISA
  // changes to an incompatible vector width afterwards.
  const int nr = cpu::microkernel_for(cpu::active_isa()).nr;
  switch (scheme_) {
    case WeightScheme::kFp16:
      fp_ = w;
      for (int64_t i = 0; i < fp_.numel(); ++i)
        fp_[i] = to_half_precision(fp_[i]);
      break;
    case WeightScheme::kW8PerChannel:
      packed_ = pack_gemm_b(quantize_w8_per_channel(w), nr);
      break;
    case WeightScheme::kW4PerChannel:
      packed_ = pack_gemm_b(quantize_w4_per_channel(w), nr);
      break;
    case WeightScheme::kW4PerGroupProgressive: {
      ProgressiveOptions popt;
      popt.group = static_cast<int>(std::min<int64_t>(cfg.group, w.cols()));
      popt.level1_range = cfg.level1_range;
      packed_ = pack_gemm_b(quantize_progressive(w, popt), nr);
      break;
    }
    case WeightScheme::kW4A16Group:
      w4a16_ = quantize_w4a16(
          w, static_cast<int>(std::min<int64_t>(cfg.group, w.cols())));
      break;
    case WeightScheme::kW4A4Group:
      w4a4_ = quantize_w4a4_per_group(
          w, static_cast<int>(std::min<int64_t>(cfg.group, w.cols())));
      break;
  }
}

QuantizedLinear::QuantizedLinear(const Tensor& w, const QuantSchemeConfig& cfg,
                                 const std::vector<PackSlice>& shard_slices)
    : scheme_(cfg.weights), acts_(cfg.acts), n_(w.rows()) {
  QS_CHECK_MSG(!shard_slices.empty(),
               "tensor-parallel QuantizedLinear needs at least one slice");
  const int nr = cpu::microkernel_for(cpu::active_isa()).nr;
  shard_packs_.reserve(shard_slices.size());
  // Quantize the full matrix ONCE, then pack each shard's rectangle from it.
  // pack_gemm_b_slice reads metadata at absolute indices, so every packed
  // code / row_sum / epilogue constant is bitwise the full pack's entry for
  // the same (row, col) — and the quantization-time struct is dropped after
  // the loop, so TP never holds the weight twice.
  switch (scheme_) {
    case WeightScheme::kW8PerChannel: {
      const W8PerChannel qw = quantize_w8_per_channel(w);
      for (const PackSlice& s : shard_slices)
        shard_packs_.push_back(pack_gemm_b_slice(qw, nr, s));
      break;
    }
    case WeightScheme::kW4PerChannel: {
      const W4PerChannel qw = quantize_w4_per_channel(w);
      for (const PackSlice& s : shard_slices)
        shard_packs_.push_back(pack_gemm_b_slice(qw, nr, s));
      break;
    }
    case WeightScheme::kW4PerGroupProgressive: {
      ProgressiveOptions popt;
      popt.group = static_cast<int>(std::min<int64_t>(cfg.group, w.cols()));
      popt.level1_range = cfg.level1_range;
      const W4PerGroup qw = quantize_progressive(w, popt);
      for (const PackSlice& s : shard_slices)
        shard_packs_.push_back(pack_gemm_b_slice(qw, nr, s));
      break;
    }
    default:
      QS_CHECK_MSG(false,
                   "tensor-parallel sharding requires an INT8-path weight "
                   "scheme (W8A8 or W4A8)");
  }
}

Tensor QuantizedLinear::apply_shard(const QuantizedActs& x, int s) const {
  QS_DCHECK(s >= 0 && s < static_cast<int>(shard_packs_.size()));
  return gemm_blocked(x, shard_packs_[static_cast<size_t>(s)]);
}

I32Tensor QuantizedLinear::acc_shard(const QuantizedActs& x_slice,
                                     int s) const {
  QS_DCHECK(s >= 0 && s < static_cast<int>(shard_packs_.size()));
  return gemm_blocked_acc(x_slice, shard_packs_[static_cast<size_t>(s)]);
}

const std::vector<float>& QuantizedLinear::epilogue_scale() const {
  QS_CHECK(!shard_packs_.empty());
  return shard_packs_[0].scale;
}

const std::vector<float>& QuantizedLinear::epilogue_zp_term() const {
  QS_CHECK(!shard_packs_.empty());
  return shard_packs_[0].zp_term;
}

Tensor QuantizedLinear::apply(const Tensor& x) const {
  switch (scheme_) {
    case WeightScheme::kFp16:
      return gemm_f32_ref(x, fp_);
    // The INT8 paths hit the pre-packed blocked GEMM: weight tiles were
    // interleaved (and, for per-group, dequantized to level-1 codes) once at
    // construction, and a stacked prefill reuses each tile across all its
    // tokens in one call.
    case WeightScheme::kW8PerChannel:
    case WeightScheme::kW4PerChannel:
    case WeightScheme::kW4PerGroupProgressive:
      return gemm_blocked(quantize_acts_per_token(x), packed_);
    case WeightScheme::kW4A16Group:
      return gemm_w4a16(x, w4a16_);
    case WeightScheme::kW4A4Group:
      return gemm_w4a4_atom(quantize_acts_per_token_int4(x), w4a4_);
  }
  QS_CHECK(false);
  return Tensor{};
}

// --- QuantizedModel --------------------------------------------------------------

QuantizedModel::QuantizedModel(const ModelWeights& weights,
                               const QuantSchemeConfig& cfg)
    : QuantizedModel(weights, cfg, TpConfig{}) {}

QuantizedModel::QuantizedModel(const ModelWeights& weights,
                               const QuantSchemeConfig& cfg,
                               const TpConfig& tp)
    : cfg_(weights.cfg), qcfg_(cfg) {
  // Loud scheme validation at construction instead of downstream
  // misbehavior (a non-positive group would divide by zero at pack time; a
  // level-1 range outside (0, 127] is not representable in INT8).
  QS_CHECK_MSG(cfg.group > 0, "QuantSchemeConfig.group must be >= 1");
  QS_CHECK_MSG(cfg.level1_range >= 1 && cfg.level1_range <= 127,
               "QuantSchemeConfig.level1_range must be in [1, 127]");
  QS_CHECK_MSG(cfg.kv_max_pages > 0,
               "QuantSchemeConfig.kv_max_pages must be >= 1");
  tp_ = resolve_tp_shards(cfg_, cfg, tp);
  if (tp_ > 1) {
    // Shard plan: contiguous near-even KV head ranges (feasibility caps
    // tp_ at n_kv_heads, so every range is non-empty), query ranges scaled
    // by the GQA group, and near-even granularity-1 splits of ffn_dim and
    // the o_proj input — the k-splits need no head/group alignment because
    // pack_gemm_b_slice resolves metadata at absolute indices.
    const int group = cfg_.n_heads / cfg_.n_kv_heads;
    const int64_t q_dim = int64_t(cfg_.n_heads) * cfg_.head_dim;
    QS_CHECK_GE(cfg_.ffn_dim, int64_t(tp_));
    tp_plan_.resize(static_cast<size_t>(tp_));
    for (int s = 0; s < tp_; ++s) {
      TpShard& sh = tp_plan_[static_cast<size_t>(s)];
      sh.kh0 = (s * cfg_.n_kv_heads) / tp_;
      sh.kh1 = ((s + 1) * cfg_.n_kv_heads) / tp_;
      sh.qh0 = sh.kh0 * group;
      sh.qh1 = sh.kh1 * group;
      sh.f0 = (int64_t(s) * cfg_.ffn_dim) / tp_;
      sh.f1 = (int64_t(s + 1) * cfg_.ffn_dim) / tp_;
      sh.ko0 = (int64_t(s) * q_dim) / tp_;
      sh.ko1 = (int64_t(s + 1) * q_dim) / tp_;
      QS_CHECK(sh.kh1 > sh.kh0 && sh.f1 > sh.f0 && sh.ko1 > sh.ko0);
    }
  }
  embedding_ = weights.embedding;
  layers_.reserve(weights.layers.size());
  if (tp_ > 1) {
    // Per-projection slice lists, identical for every layer: column-parallel
    // layers (QKV, gate/up) slice output rows; row-parallel layers (o_proj,
    // down) slice input columns. Each shard's rectangle is packed once at
    // construction — no duplicated packing, no full pack.
    const int64_t dim = cfg_.head_dim;
    const int64_t hidden = cfg_.hidden;
    std::vector<PackSlice> sq, skv, so, sffn, sdown;
    for (const TpShard& sh : tp_plan_) {
      sq.push_back({int64_t(sh.qh0) * dim, int64_t(sh.qh1) * dim, 0, hidden});
      skv.push_back(
          {int64_t(sh.kh0) * dim, int64_t(sh.kh1) * dim, 0, hidden});
      so.push_back({0, hidden, sh.ko0, sh.ko1});
      sffn.push_back({sh.f0, sh.f1, 0, hidden});
      sdown.push_back({0, hidden, sh.f0, sh.f1});
    }
    for (const auto& lw : weights.layers) {
      QLayer ql;
      ql.wq = QuantizedLinear(lw.wq, cfg, sq);
      ql.wk = QuantizedLinear(lw.wk, cfg, skv);
      ql.wv = QuantizedLinear(lw.wv, cfg, skv);
      ql.wo = QuantizedLinear(lw.wo, cfg, so);
      ql.w_gate = QuantizedLinear(lw.w_gate, cfg, sffn);
      ql.w_up = QuantizedLinear(lw.w_up, cfg, sffn);
      ql.w_down = QuantizedLinear(lw.w_down, cfg, sdown);
      ql.ln_attn = lw.ln_attn;
      ql.ln_ffn = lw.ln_ffn;
      layers_.push_back(std::move(ql));
    }
  } else {
    for (const auto& lw : weights.layers) {
      QLayer ql;
      ql.wq = QuantizedLinear(lw.wq, cfg);
      ql.wk = QuantizedLinear(lw.wk, cfg);
      ql.wv = QuantizedLinear(lw.wv, cfg);
      ql.wo = QuantizedLinear(lw.wo, cfg);
      ql.w_gate = QuantizedLinear(lw.w_gate, cfg);
      ql.w_up = QuantizedLinear(lw.w_up, cfg);
      ql.w_down = QuantizedLinear(lw.w_down, cfg);
      ql.ln_attn = lw.ln_attn;
      ql.ln_ffn = lw.ln_ffn;
      layers_.push_back(std::move(ql));
    }
  }
  ln_final_ = weights.ln_final;
  // The LM head stays FP16 in all configurations (standard practice).
  QuantSchemeConfig head_cfg = cfg;
  head_cfg.weights = WeightScheme::kFp16;
  head_cfg.acts = ActScheme::kFp16;
  lm_head_ = QuantizedLinear(weights.lm_head, head_cfg);

  KvCacheConfig kcfg;
  kcfg.n_kv_heads = cfg_.n_kv_heads;
  kcfg.head_dim = cfg_.head_dim;
  kcfg.precision = cfg.kv;
  kcfg.page_size = 16;
  kcfg.max_pages = cfg.kv_max_pages;
  kv_ = std::make_unique<PagedKvCache>(kcfg);

  // Loud construction-time validation: a head layout the attention kernels
  // cannot serve (e.g. odd head_dim with nibble-packed INT4 KV) throws here,
  // not deep inside the first forward.
  attn_cfg_.n_heads = cfg_.n_heads;
  attn_cfg_.n_kv_heads = cfg_.n_kv_heads;
  attn_cfg_.head_dim = cfg_.head_dim;
  attn_cfg_.fp16_accum = qcfg_.fp16_attention;
  attn_cfg_.validate(/*int4_kv=*/qcfg_.kv == KvPrecision::kInt4);
}

int QuantizedModel::begin_sequence() {
  int id = -1;
  for (size_t i = 0; i < seqs_.size(); ++i) {
    if (!seqs_[i].live) {
      id = static_cast<int>(i);
      break;
    }
  }
  if (id < 0) {
    id = static_cast<int>(seqs_.size());
    seqs_.emplace_back();
  }
  auto& s = seqs_[static_cast<size_t>(id)];
  s.layer_seqs.clear();
  for (int l = 0; l < cfg_.n_layers; ++l)
    s.layer_seqs.push_back(kv_->alloc_sequence());
  s.next_pos = 0;
  s.sink = 0;
  s.window = 0;
  s.live = true;
  return id;
}

void QuantizedModel::set_sequence_window(int seq, int64_t sink_tokens,
                                         int64_t window_tokens,
                                         int64_t slack_tokens) {
  auto& state = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(state.live);
  for (int ls : state.layer_seqs)
    kv_->set_window(ls, sink_tokens, window_tokens, slack_tokens);
  state.sink = sink_tokens;
  state.window = window_tokens;
}

void QuantizedModel::end_sequence(int seq) {
  auto& s = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(s.live);
  for (int ls : s.layer_seqs) kv_->free_sequence(ls);
  s.live = false;
}

Tensor QuantizedModel::run_blocks(int seq, const Tensor& embedded, int pos0) {
  const int64_t n = embedded.rows();
  std::vector<int> positions(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    positions[static_cast<size_t>(i)] = pos0 + static_cast<int>(i);
  return run_blocks_batched({{seq, 0, n}}, embedded, positions);
}

Tensor QuantizedModel::run_blocks_batched(const std::vector<SeqSpan>& spans,
                                          const Tensor& embedded,
                                          const std::vector<int>& positions) {
  if (tp_ > 1) return run_blocks_batched_tp(spans, embedded, positions);
  const int64_t n = embedded.rows();
  QS_CHECK_EQ(n, static_cast<int64_t>(positions.size()));
  const AttentionConfig& acfg = attn_cfg_;

  Tensor x = embedded;
  for (size_t li = 0; li < layers_.size(); ++li) {
    auto& layer = layers_[li];
    // Attention block. Every projection runs ONE GEMM over the whole row
    // stack — all sequences' decode tokens and prefill chunks together.
    // Activation quantization is fused into RMSNorm (QuantizedLinear::apply
    // re-runs the same deterministic per-row quantizer), so stacking rows
    // from different sequences changes no per-row numerics.
    Tensor h = rms_norm(x, layer.ln_attn);
    Tensor q = layer.wq.apply(h);
    Tensor k = layer.wk.apply(h);
    Tensor v = layer.wv.apply(h);
    rope_inplace(q, positions, cfg_.head_dim);
    rope_inplace(k, positions, cfg_.head_dim);

    // Attention section, timed separately (attention_seconds_): KV append +
    // attend. Every span first appends its K/V rows to its own cache
    // sequence in one batched scatter; then all single-row spans (decode and
    // token-wise verify rows) run through ONE batched executor call that
    // walks all sequences × heads in a single parallel_for, dequantizing
    // page data inline in the ISA-dispatched microkernels (§5.3). Multi-row
    // spans (prefill chunks) gather the full dequantized K/V once — both
    // paths share the same kernel arithmetic, so the step is bitwise
    // identical to a per-sequence fan-out at any thread count and ISA.
    const auto attn_t0 = std::chrono::steady_clock::now();
    Tensor attn;
    if (spans.size() == 1 && spans[0].n > 1) {
      // Single multi-row span (a plain prefill chunk): q already is exactly
      // this span's rows, so attend on it directly — no scratch copies.
      const SeqSpan& sp = spans[0];
      const auto& st = seqs_[static_cast<size_t>(sp.seq)];
      const int lseq = st.layer_seqs[li];
      kv_->append_batch(lseq, k.row(0), v.row(0), sp.n);
      attn = span_attention(lseq, st, q,
                            int64_t(positions[static_cast<size_t>(sp.row0)]) +
                                sp.n,
                            acfg, 0, cfg_.n_kv_heads);
    } else {
      attn = Tensor({n, q.cols()});
      // Pass 1: appends. Distinct sequences may scatter concurrently (the
      // pool bookkeeping is internally locked), and every span's KV must be
      // in its pages before that span attends.
      parallel_for(
          0, static_cast<int64_t>(spans.size()), 1,
          [&](int64_t lo, int64_t hi) {
            for (int64_t si = lo; si < hi; ++si) {
              const SeqSpan& sp = spans[static_cast<size_t>(si)];
              const int lseq =
                  seqs_[static_cast<size_t>(sp.seq)].layer_seqs[li];
              kv_->append_batch(lseq, k.row(sp.row0), v.row(sp.row0), sp.n);
            }
          });
      // Pass 2: one batched decode-attention dispatch for every single-row
      // span of the step...
      std::vector<DecodeAttentionItem> items;
      std::vector<size_t> multi;
      items.reserve(spans.size());
      for (size_t si = 0; si < spans.size(); ++si) {
        const SeqSpan& sp = spans[si];
        if (sp.n == 1) {
          items.push_back(
              {seqs_[static_cast<size_t>(sp.seq)].layer_seqs[li],
               q.row(sp.row0), attn.row(sp.row0)});
        } else {
          multi.push_back(si);
        }
      }
      if (!items.empty()) {
        batched_fused_decode_attention(*kv_, items, acfg);
        ++batched_attention_calls_;
        decode_attention_items_ += static_cast<int64_t>(items.size());
      }
      // ...and the gather path for the (rare) multi-row spans sharing the
      // step with decodes.
      if (!multi.empty()) {
        parallel_for(
            0, static_cast<int64_t>(multi.size()), 1,
            [&](int64_t lo, int64_t hi) {
              for (int64_t mi = lo; mi < hi; ++mi) {
                const SeqSpan& sp = spans[multi[static_cast<size_t>(mi)]];
                const auto& st = seqs_[static_cast<size_t>(sp.seq)];
                const int lseq = st.layer_seqs[li];
                Tensor qs({sp.n, q.cols()});
                std::copy(q.row(sp.row0), q.row(sp.row0) + sp.n * q.cols(),
                          qs.data());
                const Tensor a = span_attention(
                    lseq, st, qs,
                    int64_t(positions[static_cast<size_t>(sp.row0)]) + sp.n,
                    acfg, 0, cfg_.n_kv_heads);
                std::copy(a.data(), a.data() + a.numel(), attn.row(sp.row0));
              }
            });
      }
    }
    attention_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      attn_t0)
            .count();
    // Separate quant node before the output projection (Fig. 11).
    Tensor attn_proj = layer.wo.apply(attn);
    add_inplace(x, attn_proj);

    // FFN block.
    Tensor h2 = rms_norm(x, layer.ln_ffn);
    Tensor gate = layer.w_gate.apply(h2);
    Tensor up = layer.w_up.apply(h2);
    Tensor act({n, cfg_.ffn_dim});
    // Row-independent like the norm/quant loops, so the stacked rows of a
    // batched step parallelize bitwise-identically.
    parallel_for(0, n, 4, [&](int64_t lo, int64_t hi) {
      for (int64_t t = lo; t < hi; ++t)
        for (int64_t c = 0; c < cfg_.ffn_dim; ++c) {
          const float g = gate.at2(t, c);
          act.at2(t, c) = (g / (1.0f + std::exp(-g))) * up.at2(t, c);
        }
    });
    Tensor down = layer.w_down.apply(act);
    add_inplace(x, down);
  }
  return x;
}

void QuantizedModel::note_shard_times(const std::vector<double>& seconds) {
  if (seconds.empty()) return;
  double mx = 0.0, sum = 0.0;
  for (double v : seconds) {
    mx = std::max(mx, v);
    sum += v;
  }
  tp_shard_max_seconds_ += mx;
  tp_shard_mean_seconds_ += sum / double(seconds.size());
}

Tensor QuantizedModel::run_blocks_batched_tp(const std::vector<SeqSpan>& spans,
                                             const Tensor& embedded,
                                             const std::vector<int>& positions) {
  const int64_t n = embedded.rows();
  QS_CHECK_EQ(n, static_cast<int64_t>(positions.size()));
  const AttentionConfig& acfg = attn_cfg_;
  const int S = tp_;
  const int64_t dim = cfg_.head_dim;
  const auto dur = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  std::vector<double> times(static_cast<size_t>(S), 0.0);
  // Per-shard scratch reused across regions of one layer.
  std::vector<Tensor> qs(static_cast<size_t>(S)), ks(static_cast<size_t>(S)),
      vs(static_cast<size_t>(S)), attns(static_cast<size_t>(S)),
      acts(static_cast<size_t>(S));
  std::vector<I32Tensor> accs(static_cast<size_t>(S));

  Tensor x = embedded;
  for (size_t li = 0; li < layers_.size(); ++li) {
    auto& layer = layers_[li];
    // Attention block. Norm + activation quantization run centrally over
    // FULL rows (the per-token scale must see every column); each shard then
    // runs its QKV row-slice GEMMs and RoPE on its own head slices — RoPE is
    // per-head, so a head slice transforms bitwise like the full matrix.
    const QuantizedActs hq =
        quantize_acts_per_token(rms_norm(x, layer.ln_attn));
    run_sharded(
        S,
        [&](int s) {
          qs[static_cast<size_t>(s)] = layer.wq.apply_shard(hq, s);
          ks[static_cast<size_t>(s)] = layer.wk.apply_shard(hq, s);
          vs[static_cast<size_t>(s)] = layer.wv.apply_shard(hq, s);
          rope_inplace(qs[static_cast<size_t>(s)], positions, cfg_.head_dim);
          rope_inplace(ks[static_cast<size_t>(s)], positions, cfg_.head_dim);
        },
        times.data());
    note_shard_times(times);

    // Attention section (timed like the single-shard path: KV append +
    // attend). Slots for every span are reserved centrally, in span order —
    // ONE kKvAppend fault draw per span, exactly append_batch's schedule, so
    // an armed fault site fires at the same step regardless of shard count.
    const auto attn_t0 = std::chrono::steady_clock::now();
    std::vector<int64_t> pos0(spans.size());
    for (size_t si = 0; si < spans.size(); ++si) {
      const SeqSpan& sp = spans[si];
      const int lseq = seqs_[static_cast<size_t>(sp.seq)].layer_seqs[li];
      pos0[si] = kv_->append_reserve(lseq, sp.n);
    }
    int64_t n_single = 0;
    for (const SeqSpan& sp : spans) n_single += (sp.n == 1) ? 1 : 0;
    run_sharded(
        S,
        [&](int s) {
          const TpShard& sh = tp_plan_[static_cast<size_t>(s)];
          const int qn = sh.qh1 - sh.qh0;
          Tensor& ksl = ks[static_cast<size_t>(s)];
          Tensor& vsl = vs[static_cast<size_t>(s)];
          Tensor& qsl = qs[static_cast<size_t>(s)];
          // Each shard writes its own KV head range of every span's reserved
          // rows — disjoint byte ranges (INT4 head boundaries are
          // byte-aligned via the even head_dim), written lock-free after a
          // short locked destination resolution.
          for (size_t si = 0; si < spans.size(); ++si) {
            const SeqSpan& sp = spans[si];
            const int lseq =
                seqs_[static_cast<size_t>(sp.seq)].layer_seqs[li];
            kv_->append_write_heads(lseq, pos0[si], ksl.row(sp.row0),
                                    vsl.row(sp.row0), sp.n, sh.kh0, sh.kh1,
                                    ksl.cols());
          }
          // No cross-shard barrier before attending: a shard reads only the
          // KV heads it just wrote.
          Tensor& attn_s = attns[static_cast<size_t>(s)];
          attn_s = Tensor({n, int64_t(qn) * dim});
          std::vector<DecodeAttentionItem> items;
          std::vector<size_t> multi;
          items.reserve(spans.size());
          for (size_t si = 0; si < spans.size(); ++si) {
            const SeqSpan& sp = spans[si];
            const int lseq =
                seqs_[static_cast<size_t>(sp.seq)].layer_seqs[li];
            if (sp.n == 1) {
              items.push_back(
                  {lseq, qsl.row(sp.row0), attn_s.row(sp.row0)});
            } else {
              multi.push_back(si);
            }
          }
          if (!items.empty())
            batched_fused_decode_attention(*kv_, items, acfg, sh.qh0, qn);
          if (!multi.empty()) {
            // Multi-row spans (prefill chunks / verify spans): gather the
            // shard's KV head range and attend with the slice config — the
            // kernels are per-head, so the slice output is bitwise the
            // matching columns of the unsharded call.
            AttentionConfig scfg = acfg;
            scfg.n_heads = qn;
            scfg.n_kv_heads = sh.kh1 - sh.kh0;
            for (size_t mi : multi) {
              const SeqSpan& sp = spans[mi];
              const auto& st = seqs_[static_cast<size_t>(sp.seq)];
              const int lseq = st.layer_seqs[li];
              Tensor qspan({sp.n, attn_s.cols()});
              std::copy(qsl.row(sp.row0),
                        qsl.row(sp.row0) + sp.n * qspan.cols(),
                        qspan.data());
              const Tensor a = span_attention(
                  lseq, st, qspan,
                  int64_t(positions[static_cast<size_t>(sp.row0)]) + sp.n,
                  scfg, sh.kh0, sh.kh1);
              std::copy(a.data(), a.data() + a.numel(),
                        attn_s.row(sp.row0));
            }
          }
        },
        times.data());
    note_shard_times(times);
    attention_seconds_ += dur(attn_t0);
    if (n_single > 0) {
      batched_attention_calls_ += S;  // one head-ranged dispatch per shard
      decode_attention_items_ += n_single;
    }

    // Reduction boundary 1 (comm): concat the column-parallel attention
    // slices back into full rows for the central o_proj quantization.
    const auto cat_t0 = std::chrono::steady_clock::now();
    Tensor attn({n, int64_t(cfg_.n_heads) * dim});
    for (int s = 0; s < S; ++s) {
      const TpShard& sh = tp_plan_[static_cast<size_t>(s)];
      const int64_t w = int64_t(sh.qh1 - sh.qh0) * dim;
      const Tensor& attn_s = attns[static_cast<size_t>(s)];
      for (int64_t t = 0; t < n; ++t)
        std::copy(attn_s.row(t), attn_s.row(t) + w,
                  attn.row(t) + int64_t(sh.qh0) * dim);
    }
    tp_comm_seconds_ += dur(cat_t0);

    // Row-parallel o_proj: central full-row quantization, per-shard k-slice
    // partial accumulators, then the all-reduce + shared epilogue.
    const QuantizedActs aq = quantize_acts_per_token(attn);
    run_sharded(
        S,
        [&](int s) {
          const TpShard& sh = tp_plan_[static_cast<size_t>(s)];
          accs[static_cast<size_t>(s)] =
              layer.wo.acc_shard(slice_acts_cols(aq, sh.ko0, sh.ko1), s);
        },
        times.data());
    note_shard_times(times);
    // Reduction boundary 2 (comm): fixed pairwise-tree all-reduce of the
    // exact INT32 partials + the identical post-reduction epilogue.
    const auto red_t0 = std::chrono::steady_clock::now();
    Tensor attn_proj = gemm_blocked_epilogue(
        reduce_partials(accs), aq, layer.wo.epilogue_scale(),
        layer.wo.epilogue_zp_term());
    tp_comm_seconds_ += dur(red_t0);
    add_inplace(x, attn_proj);

    // FFN block: column-parallel gate/up + SwiGLU on slices, concat, then
    // row-parallel down with the same reduce + epilogue shape.
    const QuantizedActs h2q =
        quantize_acts_per_token(rms_norm(x, layer.ln_ffn));
    run_sharded(
        S,
        [&](int s) {
          const TpShard& sh = tp_plan_[static_cast<size_t>(s)];
          const Tensor gate = layer.w_gate.apply_shard(h2q, s);
          const Tensor up = layer.w_up.apply_shard(h2q, s);
          const int64_t w = sh.f1 - sh.f0;
          Tensor& act_s = acts[static_cast<size_t>(s)];
          act_s = Tensor({n, w});
          for (int64_t t = 0; t < n; ++t)
            for (int64_t c = 0; c < w; ++c) {
              const float g = gate.at2(t, c);
              act_s.at2(t, c) = (g / (1.0f + std::exp(-g))) * up.at2(t, c);
            }
        },
        times.data());
    note_shard_times(times);
    const auto cat2_t0 = std::chrono::steady_clock::now();
    Tensor act({n, cfg_.ffn_dim});
    for (int s = 0; s < S; ++s) {
      const TpShard& sh = tp_plan_[static_cast<size_t>(s)];
      const int64_t w = sh.f1 - sh.f0;
      const Tensor& act_s = acts[static_cast<size_t>(s)];
      for (int64_t t = 0; t < n; ++t)
        std::copy(act_s.row(t), act_s.row(t) + w, act.row(t) + sh.f0);
    }
    tp_comm_seconds_ += dur(cat2_t0);
    const QuantizedActs actq = quantize_acts_per_token(act);
    run_sharded(
        S,
        [&](int s) {
          const TpShard& sh = tp_plan_[static_cast<size_t>(s)];
          accs[static_cast<size_t>(s)] =
              layer.w_down.acc_shard(slice_acts_cols(actq, sh.f0, sh.f1), s);
        },
        times.data());
    note_shard_times(times);
    const auto red2_t0 = std::chrono::steady_clock::now();
    Tensor down = gemm_blocked_epilogue(
        reduce_partials(accs), actq, layer.w_down.epilogue_scale(),
        layer.w_down.epilogue_zp_term());
    tp_comm_seconds_ += dur(red2_t0);
    add_inplace(x, down);
  }
  return x;
}

Tensor QuantizedModel::span_attention(int lseq, const SeqState& st,
                                      const Tensor& qspan, int64_t s_total,
                                      const AttentionConfig& acfg, int kh0,
                                      int kh1) const {
  Tensor kd, vd;
  if (st.window > 0) {
    const int64_t tail0 = kv_->gather_visible_heads(lseq, kd, vd, kh0, kh1);
    return attention_prefill_windowed(qspan, kd, vd, acfg, s_total, st.sink,
                                      st.window, tail0);
  }
  if (kh0 == 0 && kh1 == cfg_.n_kv_heads) {
    kv_->gather(lseq, kd, vd);
  } else {
    kv_->gather_heads(lseq, kd, vd, kh0, kh1);
  }
  return attention_prefill(qspan, kd, vd, acfg);
}

Tensor QuantizedModel::logits_from_hidden(const Tensor& h) const {
  return lm_head_.apply(rms_norm(h, ln_final_));
}

Tensor QuantizedModel::prefill(int seq, const std::vector<int>& tokens) {
  return prefill_chunk(
      seq, tokens,
      static_cast<int>(seqs_[static_cast<size_t>(seq)].next_pos));
}

Tensor QuantizedModel::prefill_chunk(int seq, const std::vector<int>& tokens,
                                     int pos0) {
  QS_CHECK(!tokens.empty());
  auto& state = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(state.live);
  QS_CHECK_EQ(int64_t(pos0), state.next_pos);
  // The chunk is stacked into one [n, hidden] activation matrix, so each
  // projection below is a single blocked GEMM call and every packed weight
  // tile is unpacked once and reused across all n tokens — this is what
  // makes the pre-packed layout pay during prefill.
  const int64_t n = static_cast<int64_t>(tokens.size());
  Tensor x({n, cfg_.hidden});
  for (int64_t t = 0; t < n; ++t)
    for (int64_t c = 0; c < cfg_.hidden; ++c)
      x.at2(t, c) = embedding_.at2(tokens[static_cast<size_t>(t)], c);
  Tensor h = run_blocks(seq, x, pos0);
  state.next_pos += n;

  Tensor last({1, cfg_.hidden});
  for (int64_t c = 0; c < cfg_.hidden; ++c)
    last.at2(0, c) = h.at2(n - 1, c);
  Tensor logits = logits_from_hidden(last);
  return logits.reshaped({cfg_.vocab});
}

Tensor QuantizedModel::forward_step(const BatchedStep& step) {
  QS_CHECK(!step.chunks.empty());
  const int64_t n = step.total_rows();

  // Validate chunks and lay out the stacked rows: chunk i occupies the
  // contiguous row range [spans[i].row0, spans[i].row0 + |tokens|).
  std::vector<SeqSpan> spans;
  spans.reserve(step.chunks.size());
  std::vector<int> positions(static_cast<size_t>(n));
  std::unordered_set<int> seen_seqs;
  int64_t row0 = 0;
  for (const StepSeqChunk& c : step.chunks) {
    QS_CHECK(!c.tokens.empty());
    QS_CHECK(c.seq >= 0 && c.seq < static_cast<int>(seqs_.size()));
    const auto& state = seqs_[static_cast<size_t>(c.seq)];
    QS_CHECK(state.live);
    QS_CHECK_EQ(int64_t(c.pos0), state.next_pos);
    QS_CHECK_MSG(c.logit_rows >= 0 &&
                     c.logit_rows <= static_cast<int>(c.tokens.size()),
                 "logit_rows must be in [0, |tokens|]");
    QS_CHECK_MSG(seen_seqs.insert(c.seq).second,
                 "a sequence may appear in at most one chunk per step");
    const int64_t cn = static_cast<int64_t>(c.tokens.size());
    for (int64_t t = 0; t < cn; ++t) {
      QS_CHECK(c.tokens[static_cast<size_t>(t)] >= 0 &&
               c.tokens[static_cast<size_t>(t)] < cfg_.vocab);
      positions[static_cast<size_t>(row0 + t)] =
          c.pos0 + static_cast<int>(t);
    }
    spans.push_back({c.seq, row0, cn});
    row0 += cn;
  }

  // Row-gathered embedding lookup into one stacked activation buffer; each
  // chunk's rows are contiguous, so the gather parallelizes over chunks
  // without changing bits.
  Tensor x({n, cfg_.hidden});
  parallel_for(
      0, static_cast<int64_t>(step.chunks.size()), 1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t ci = lo; ci < hi; ++ci) {
          const StepSeqChunk& c = step.chunks[static_cast<size_t>(ci)];
          const SeqSpan& sp = spans[static_cast<size_t>(ci)];
          for (int64_t t = 0; t < sp.n; ++t) {
            const int tok = c.tokens[static_cast<size_t>(t)];
            std::copy(embedding_.row(tok), embedding_.row(tok) + cfg_.hidden,
                      x.row(sp.row0 + t));
          }
        }
      });

  Tensor h = run_blocks_batched(spans, x, positions);
  for (const StepSeqChunk& c : step.chunks)
    seqs_[static_cast<size_t>(c.seq)].next_pos +=
        static_cast<int64_t>(c.tokens.size());

  // One LM-head GEMM over every row that declared it needs logits — a
  // chunk's trailing logit_rows positions, gathered chunk by chunk. A step
  // whose chunks all set logit_rows = 0 (e.g. only mid-prompt prefill
  // chunks) skips the LM head entirely.
  const int64_t n_logits = step.total_logit_rows();
  if (n_logits == 0) return Tensor({0, cfg_.vocab});
  Tensor last({n_logits, cfg_.hidden});
  int64_t out = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    const int lr = step.chunks[i].logit_rows;
    for (int64_t j = 0; j < lr; ++j) {
      const int64_t src = spans[i].row0 + spans[i].n - lr + j;
      std::copy(h.row(src), h.row(src) + cfg_.hidden, last.row(out++));
    }
  }
  return logits_from_hidden(last);
}

void QuantizedModel::truncate_sequence(int seq, int64_t new_len) {
  auto& state = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(state.live);
  QS_CHECK_MSG(new_len >= 0 && new_len <= state.next_pos,
               "truncate target " << new_len << " outside [0, "
                                  << state.next_pos << "]");
  for (int ls : state.layer_seqs) kv_->truncate_sequence(ls, new_len);
  state.next_pos = new_len;
}

int QuantizedModel::fork_sequence(int src, int64_t upto_len) {
  const auto& source = seqs_[static_cast<size_t>(src)];
  QS_CHECK(source.live);
  QS_CHECK_MSG(upto_len >= 0 && upto_len <= source.next_pos,
               "fork upto_len " << upto_len << " outside [0, "
                                << source.next_pos << "]");
  int id = -1;
  for (size_t i = 0; i < seqs_.size(); ++i) {
    if (!seqs_[i].live) {
      id = static_cast<int>(i);
      break;
    }
  }
  if (id < 0) {
    id = static_cast<int>(seqs_.size());
    seqs_.emplace_back();
  }
  auto& s = seqs_[static_cast<size_t>(id)];
  // seqs_ may have reallocated; re-resolve the source.
  const auto& sp = seqs_[static_cast<size_t>(src)];
  s.layer_seqs.clear();
  for (int ls : sp.layer_seqs)
    s.layer_seqs.push_back(kv_->fork_sequence(ls, upto_len));
  s.next_pos = upto_len;
  // Forks start full-attention regardless of the source's policy (the cache
  // enforces that only never-recycled pages were aliased); the caller
  // installs its own window if it wants one.
  s.sink = 0;
  s.window = 0;
  s.live = true;
  return id;
}

int64_t QuantizedModel::seq_pos(int seq) const {
  const auto& state = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(state.live);
  return state.next_pos;
}

std::vector<uint32_t> QuantizedModel::sequence_page_generations(
    int seq) const {
  const auto& state = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(state.live);
  std::vector<uint32_t> gens;
  for (int ls : state.layer_seqs) {
    const std::vector<uint32_t> layer = kv_->page_generations(ls);
    gens.insert(gens.end(), layer.begin(), layer.end());
  }
  return gens;
}

int64_t QuantizedModel::sequence_shared_pages(int seq) const {
  const auto& state = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(state.live);
  int64_t n = 0;
  for (int ls : state.layer_seqs) n += kv_->seq_shared_pages(ls);
  return n;
}

Tensor QuantizedModel::decode_step(int seq, int token) {
  return prefill(seq, {token});
}

Tensor QuantizedModel::forward(const std::vector<int>& tokens) {
  const int seq = begin_sequence();
  const int64_t n = static_cast<int64_t>(tokens.size());
  Tensor x({n, cfg_.hidden});
  for (int64_t t = 0; t < n; ++t)
    for (int64_t c = 0; c < cfg_.hidden; ++c)
      x.at2(t, c) = embedding_.at2(tokens[static_cast<size_t>(t)], c);
  Tensor h = run_blocks(seq, x, 0);
  Tensor logits = logits_from_hidden(h);
  end_sequence(seq);
  return logits;
}

}  // namespace qserve
