#include "model/reference_model.h"

#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"
#include "kernels/attention.h"
#include "kernels/gemm.h"
#include "kernels/ops.h"

namespace qserve {

ReferenceModel::ReferenceModel(const ModelWeights* weights) : w_(weights) {
  QS_CHECK(weights != nullptr);
}

Tensor ReferenceModel::forward(const std::vector<int>& tokens) const {
  return forward_calibrate(tokens, nullptr);
}

Tensor ReferenceModel::forward_calibrate(const std::vector<int>& tokens,
                                         CalibrationData* calib) const {
  const ModelConfig& cfg = w_->cfg;
  const int64_t n = static_cast<int64_t>(tokens.size());
  QS_CHECK_GT(n, 0);

  std::vector<int> positions(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) positions[i] = static_cast<int>(i);

  Tensor x({n, cfg.hidden});
  for (int64_t t = 0; t < n; ++t) {
    const int tok = tokens[static_cast<size_t>(t)];
    QS_CHECK(tok >= 0 && tok < cfg.vocab);
    for (int64_t c = 0; c < cfg.hidden; ++c)
      x.at2(t, c) = w_->embedding.at2(tok, c);
  }

  AttentionConfig attn_cfg;
  attn_cfg.n_heads = cfg.n_heads;
  attn_cfg.n_kv_heads = cfg.n_kv_heads;
  attn_cfg.head_dim = cfg.head_dim;

  for (const auto& layer : w_->layers) {
    // --- attention block ---
    Tensor h = rms_norm(x, layer.ln_attn);
    if (calib) calib->attn_input.push_back(h);
    Tensor q = gemm_f32_ref(h, layer.wq);
    Tensor k = gemm_f32_ref(h, layer.wk);
    Tensor v = gemm_f32_ref(h, layer.wv);
    rope_inplace(q, positions, cfg.head_dim);
    rope_inplace(k, positions, cfg.head_dim);
    if (calib) {
      calib->post_rope_keys.push_back(k);
      calib->post_rope_queries.push_back(q);
      calib->values.push_back(v);
    }
    Tensor attn = attention_prefill(q, k, v, attn_cfg);
    if (calib) calib->attn_out.push_back(attn);
    Tensor attn_proj = gemm_f32_ref(attn, layer.wo);
    add_inplace(x, attn_proj);

    // --- FFN block ---
    Tensor h2 = rms_norm(x, layer.ln_ffn);
    if (calib) calib->ffn_input.push_back(h2);
    Tensor gate = gemm_f32_ref(h2, layer.w_gate);
    Tensor up = gemm_f32_ref(h2, layer.w_up);
    Tensor act({n, cfg.ffn_dim});
    for (int64_t t = 0; t < n; ++t) {
      for (int64_t c = 0; c < cfg.ffn_dim; ++c) {
        const float g = gate.at2(t, c);
        act.at2(t, c) = (g / (1.0f + std::exp(-g))) * up.at2(t, c);
      }
    }
    if (calib) calib->ffn_act.push_back(act);
    Tensor down = gemm_f32_ref(act, layer.w_down);
    add_inplace(x, down);
  }

  Tensor final_h = rms_norm(x, w_->ln_final);
  return gemm_f32_ref(final_h, w_->lm_head);
}

std::vector<int> ReferenceModel::generate(const std::vector<int>& prompt,
                                          int n_new, float temperature,
                                          uint64_t seed) const {
  QS_CHECK(!prompt.empty());
  Rng rng(seed);
  std::vector<int> tokens = prompt;
  for (int step = 0; step < n_new; ++step) {
    // O(n^2) re-prefill; fine at calibration scale.
    const Tensor logits = forward(tokens);
    const int64_t last = logits.rows() - 1;
    std::vector<float> probs(static_cast<size_t>(w_->cfg.vocab));
    for (int64_t v = 0; v < w_->cfg.vocab; ++v)
      probs[size_t(v)] = logits.at2(last, v) / std::max(temperature, 1e-3f);
    softmax_inplace(probs.data(), static_cast<int>(probs.size()));
    float r = rng.uniform();
    int chosen = 0;
    for (size_t v = 0; v < probs.size(); ++v) {
      r -= probs[v];
      if (r <= 0.0f) {
        chosen = static_cast<int>(v);
        break;
      }
    }
    tokens.push_back(chosen);
  }
  return tokens;
}

}  // namespace qserve
