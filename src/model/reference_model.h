// FP32 reference transformer (Llama-style pre-norm decoder).
//
// Serves three roles: (1) the accuracy gold standard every quantized variant
// is compared against, (2) the calibration-data source for QoQ (per-layer
// inputs, post-RoPE keys, block intermediates), and (3) the generator of
// synthetic evaluation token streams (eval/).
#pragma once

#include <vector>

#include "model/weights.h"
#include "tensor/tensor.h"

namespace qserve {

// Per-layer activations captured during a calibration pass.
struct CalibrationData {
  // Inputs to the input modules (post-RMSNorm): feeds qkv / gate|up.
  std::vector<Tensor> attn_input;  // [layer][tokens, hidden]
  std::vector<Tensor> ffn_input;   // [layer][tokens, hidden]
  // Post-RoPE keys (SmoothAttention operand, Fig. 7).
  std::vector<Tensor> post_rope_keys;  // [layer][tokens, kv_dim]
  // Block intermediates consumed by the output modules.
  std::vector<Tensor> attn_out;  // [layer][tokens, q_dim] (input to o_proj)
  std::vector<Tensor> ffn_act;   // [layer][tokens, ffn_dim] (input to down)
  // Post-RoPE queries (needed by the q/k block-output clip objective).
  std::vector<Tensor> post_rope_queries;  // [layer][tokens, q_dim]
  // Value projections (attention operand for the q/k clip objective).
  std::vector<Tensor> values;  // [layer][tokens, kv_dim]
};

class ReferenceModel {
 public:
  explicit ReferenceModel(const ModelWeights* weights);

  // Full causal forward over a token sequence; returns logits [n, vocab].
  Tensor forward(const std::vector<int>& tokens) const;

  // Forward pass that also captures calibration activations.
  Tensor forward_calibrate(const std::vector<int>& tokens,
                           CalibrationData* calib) const;

  // Greedy/sampled generation used to build synthetic eval corpora: starts
  // from `prompt`, appends `n_new` tokens sampled at `temperature`.
  std::vector<int> generate(const std::vector<int>& prompt, int n_new,
                            float temperature, uint64_t seed) const;

  const ModelConfig& config() const { return w_->cfg; }
  const ModelWeights& weights() const { return *w_; }

 private:
  const ModelWeights* w_;
};

}  // namespace qserve
