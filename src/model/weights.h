// FP32 model weights + synthetic generation with the statistical pathologies
// QoQ targets (DESIGN.md §1 documents the substitution for real checkpoints):
//   * heavy-tailed weights,
//   * fixed per-head outlier channels in k_proj outputs (Fig. 7: Keys have
//     ~10x outlier channels; Values do not),
//   * outlier channels in the residual stream (motivating rotation/smoothing/
//     reordering), injected via the embedding and preserved by the layers.
#pragma once

#include <vector>

#include "common/rng.h"
#include "model/config.h"
#include "tensor/tensor.h"

namespace qserve {

struct LayerWeights {
  Tensor wq;       // [q_dim, hidden]
  Tensor wk;       // [kv_dim, hidden]
  Tensor wv;       // [kv_dim, hidden]
  Tensor wo;       // [hidden, q_dim]
  Tensor w_gate;   // [ffn, hidden]
  Tensor w_up;     // [ffn, hidden]
  Tensor w_down;   // [hidden, ffn]
  Tensor ln_attn;  // [hidden] RMSNorm gains
  Tensor ln_ffn;   // [hidden]
};

struct ModelWeights {
  ModelConfig cfg;
  Tensor embedding;  // [vocab, hidden]
  std::vector<LayerWeights> layers;
  Tensor ln_final;   // [hidden]
  Tensor lm_head;    // [vocab, hidden]
};

struct SyntheticOptions {
  uint64_t seed = 42;
  float key_outlier_magnitude = 10.0f;  // Fig. 7: Keys ~10x
  int key_outliers_per_head = 2;
  float act_outlier_magnitude = 8.0f;   // residual-stream outlier channels
  int act_outlier_channels = 6;
  float weight_df = 5.0f;               // heavy-tail degrees of freedom
};

ModelWeights make_synthetic_weights(const ModelConfig& cfg,
                                    const SyntheticOptions& opt = {});

}  // namespace qserve
