// INT4 nibble packing.
//
// Two unsigned 4-bit codes per byte, low nibble first — the storage format of
// the 4-bit weight tensor QW_u4 and the 4-bit KV cache. The RLP-interleaved
// *compute* layout of §5.2 is a separate transformation in
// kernels/weight_layout.h; this header is only the canonical storage codec.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "tensor/tensor.h"

namespace qserve {

// Packed unsigned-INT4 matrix. Rows are padded to an even number of elements.
struct PackedU4 {
  U8Tensor bytes;     // [rows, cols_padded/2]
  int64_t rows = 0;
  int64_t cols = 0;   // logical (unpadded) column count

  int64_t bytes_per_row() const { return bytes.cols(); }
};

inline PackedU4 pack_u4(const U8Tensor& codes) {
  PackedU4 p;
  p.rows = codes.rows();
  p.cols = codes.cols();
  const int64_t bpr = (p.cols + 1) / 2;
  p.bytes = U8Tensor({p.rows, bpr});
  for (int64_t r = 0; r < p.rows; ++r) {
    const uint8_t* src = codes.row(r);
    uint8_t* dst = p.bytes.row(r);
    for (int64_t c = 0; c < p.cols; ++c) {
      QS_DCHECK(src[c] <= 15);
      if ((c & 1) == 0) {
        dst[c / 2] = src[c] & 0x0F;
      } else {
        dst[c / 2] = static_cast<uint8_t>(dst[c / 2] | (src[c] << 4));
      }
    }
  }
  return p;
}

inline U8Tensor unpack_u4(const PackedU4& p) {
  U8Tensor codes({p.rows, p.cols});
  for (int64_t r = 0; r < p.rows; ++r) {
    const uint8_t* src = p.bytes.row(r);
    uint8_t* dst = codes.row(r);
    for (int64_t c = 0; c < p.cols; ++c) {
      dst[c] = (c & 1) ? (src[c / 2] >> 4) : (src[c / 2] & 0x0F);
    }
  }
  return codes;
}

inline uint8_t get_u4(const PackedU4& p, int64_t r, int64_t c) {
  const uint8_t b = p.bytes.at2(r, c / 2);
  return (c & 1) ? (b >> 4) : (b & 0x0F);
}

}  // namespace qserve
