// Minimal dense row-major tensor used throughout the reproduction.
//
// The library deliberately keeps the tensor type simple (owning, contiguous,
// row-major) — all layout tricks the paper relies on (INT4 packing, RLP
// interleaving, compute-aware reorder) are explicit transformation functions
// in src/kernels and src/quant rather than strided views, mirroring how the
// CUDA implementation stores pre-transformed weights in global memory.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace qserve {

template <typename T>
class TensorT {
 public:
  TensorT() = default;

  explicit TensorT(std::vector<int64_t> shape) : shape_(std::move(shape)) {
    int64_t n = 1;
    for (int64_t d : shape_) {
      QS_CHECK_GE(d, 0);
      n *= d;
    }
    data_.assign(static_cast<size_t>(n), T{});
  }

  TensorT(std::initializer_list<int64_t> shape)
      : TensorT(std::vector<int64_t>(shape)) {}

  static TensorT zeros(std::vector<int64_t> shape) {
    return TensorT(std::move(shape));
  }

  static TensorT full(std::vector<int64_t> shape, T value) {
    TensorT t(std::move(shape));
    std::fill(t.data_.begin(), t.data_.end(), value);
    return t;
  }

  const std::vector<int64_t>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const {
    QS_CHECK(i >= 0 && i < ndim());
    return shape_[static_cast<size_t>(i)];
  }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  // 2-D convenience accessors (most tensors here are matrices).
  int64_t rows() const {
    QS_CHECK_EQ(ndim(), 2);
    return shape_[0];
  }
  int64_t cols() const {
    QS_CHECK_EQ(ndim(), 2);
    return shape_[1];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator[](int64_t i) {
    QS_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  const T& operator[](int64_t i) const {
    QS_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }

  T& at2(int64_t r, int64_t c) {
    QS_DCHECK(ndim() == 2 && r >= 0 && r < shape_[0] && c >= 0 &&
              c < shape_[1]);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  const T& at2(int64_t r, int64_t c) const {
    QS_DCHECK(ndim() == 2 && r >= 0 && r < shape_[0] && c >= 0 &&
              c < shape_[1]);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  T* row(int64_t r) { return data() + r * cols(); }
  const T* row(int64_t r) const { return data() + r * cols(); }

  TensorT reshaped(std::vector<int64_t> new_shape) const {
    TensorT t;
    t.shape_ = std::move(new_shape);
    int64_t n = 1;
    for (int64_t d : t.shape_) n *= d;
    QS_CHECK_EQ(n, numel());
    t.data_ = data_;
    return t;
  }

  bool same_shape(const TensorT& other) const {
    return shape_ == other.shape_;
  }

  std::vector<T>& vec() { return data_; }
  const std::vector<T>& vec() const { return data_; }

 private:
  std::vector<int64_t> shape_;
  std::vector<T> data_;
};

using Tensor = TensorT<float>;
using I8Tensor = TensorT<int8_t>;
using U8Tensor = TensorT<uint8_t>;
using I32Tensor = TensorT<int32_t>;

// Max absolute value of a row segment; the building block of every
// quantization-scale computation in the paper.
template <typename T>
inline float abs_max(const T* x, int64_t n) {
  float m = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float a = x[i] < 0 ? -static_cast<float>(x[i])
                             : static_cast<float>(x[i]);
    if (a > m) m = a;
  }
  return m;
}

inline float max_abs_diff(const Tensor& a, const Tensor& b) {
  QS_CHECK(a.same_shape(b));
  float m = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float d = std::abs(a[i] - b[i]);
    if (d > m) m = d;
  }
  return m;
}

inline double mse(const Tensor& a, const Tensor& b) {
  QS_CHECK(a.same_shape(b));
  double s = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = double(a[i]) - double(b[i]);
    s += d * d;
  }
  return a.numel() > 0 ? s / double(a.numel()) : 0.0;
}

}  // namespace qserve
