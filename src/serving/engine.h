// Serving engine: continuous-batching loop over a QuantizedModel.
//
// This is the CPU-executable counterpart of the QServe runtime — it really
// runs the quantized kernels and the paged quantized KV cache, so integration
// tests can assert end-to-end behaviour (admission under memory pressure,
// in-flight join/leave, chunked prefill, preemption round trips, token-order
// preservation). Wall-clock throughput at GPU scale comes from src/simulator.
//
// Each step executes the Scheduler's StepPlan: all pending decodes (one token
// each) plus at most one chunk's worth of prefill work, so a long prompt can
// no longer stall running decodes for a whole monolithic prefill call.
#pragma once

#include <memory>

#include "common/rng.h"
#include "model/quantized_model.h"
#include "serving/scheduler.h"

namespace qserve {

struct EngineConfig {
  SchedulerConfig scheduler;
  // Sampling: 0 = greedy argmax.
  float temperature = 0.0f;
  uint64_t sample_seed = 7;
};

struct EngineStats {
  int64_t steps = 0;
  // Prompt tokens run through prefill chunks (re-prefill after preemption
  // counts again — it is real work).
  int64_t prefill_tokens = 0;
  // Tokens produced by decode steps, plus post-preemption re-prefill
  // completions (they continue the decode stream). First tokens are counted
  // separately: the token sampled when a prompt's prefill completes is not a
  // decode token and must not inflate decode throughput.
  int64_t decode_tokens = 0;
  int64_t first_tokens = 0;
  int64_t preemptions = 0;
  // Wall time split by work type (forward passes only) plus the whole-step
  // total (includes scheduling/sampling overhead).
  double prefill_seconds = 0;
  double decode_seconds = 0;
  double wall_seconds = 0;
  int peak_batch = 0;
  // Throughputs over the matching wall-time split.
  double prefill_tokens_per_second = 0;
  double decode_tokens_per_second = 0;
  // Per-request latency in engine steps.
  double mean_first_token_steps = 0;
  double mean_completion_steps = 0;
};

class ServingEngine {
 public:
  ServingEngine(QuantizedModel* model, const EngineConfig& cfg);

  // Submit a request; returns its id. Requests are owned by the engine.
  int submit(std::vector<int> prompt, int max_new_tokens);

  // One engine iteration: plan (admit/evict), run all decodes + one prefill
  // chunk, sample. Returns false when fully idle.
  bool step();

  // Run until all submitted requests finish.
  EngineStats run_to_completion();

  const Request& request(int id) const;
  const EngineStats& stats() const { return stats_; }

 private:
  int sample(const Tensor& logits);
  void finish(Request& r);
  // Preempt: free the KV sequence and reset prefill progress; the request is
  // already back in the scheduler queue.
  void evict(Request& r);

  QuantizedModel* model_;
  EngineConfig cfg_;
  Scheduler scheduler_;
  std::vector<std::unique_ptr<Request>> requests_;
  std::vector<Request*> running_;  // admission order; back = youngest
  EngineStats stats_;
  Rng rng_;
};

}  // namespace qserve
