// Serving engine: continuous-batching loop over a QuantizedModel.
//
// This is the CPU-executable counterpart of the QServe runtime — it really
// runs the quantized kernels and the paged quantized KV cache, so integration
// tests can assert end-to-end behaviour (admission under memory pressure,
// in-flight join/leave, token-order preservation). Wall-clock throughput at
// GPU scale comes from src/simulator instead.
#pragma once

#include <memory>

#include "common/rng.h"
#include "model/quantized_model.h"
#include "serving/scheduler.h"

namespace qserve {

struct EngineConfig {
  SchedulerConfig scheduler;
  // Sampling: 0 = greedy argmax.
  float temperature = 0.0f;
  uint64_t sample_seed = 7;
};

struct EngineStats {
  int64_t steps = 0;
  int64_t prefill_tokens = 0;
  int64_t decode_tokens = 0;
  double wall_seconds = 0;
  int peak_batch = 0;
  double decode_tokens_per_second = 0;
  // Per-request latency in engine steps.
  double mean_first_token_steps = 0;
  double mean_completion_steps = 0;
};

class ServingEngine {
 public:
  ServingEngine(QuantizedModel* model, const EngineConfig& cfg);

  // Submit a request; returns its id. Requests are owned by the engine.
  int submit(std::vector<int> prompt, int max_new_tokens);

  // One engine iteration: admit, prefill newcomers, decode running batch.
  // Returns false when fully idle.
  bool step();

  // Run until all submitted requests finish.
  EngineStats run_to_completion();

  const Request& request(int id) const;
  const EngineStats& stats() const { return stats_; }

 private:
  int sample(const Tensor& logits);
  void finish(Request& r);
  // KV pages this request reserves at its maximum final length, all layers.
  int64_t reserved_pages(const Request& r) const;

  QuantizedModel* model_;
  EngineConfig cfg_;
  Scheduler scheduler_;
  std::vector<std::unique_ptr<Request>> requests_;
  std::vector<Request*> running_;
  // Pages reserved by running requests (max final length); admission offers
  // the scheduler only what is left after these reservations.
  int64_t committed_pages_ = 0;
  EngineStats stats_;
  Rng rng_;
};

}  // namespace qserve
