// Serving engine: continuous-batching loop over a QuantizedModel.
//
// This is the CPU-executable counterpart of the QServe runtime — it really
// runs the quantized kernels and the paged quantized KV cache, so integration
// tests can assert end-to-end behaviour (admission under memory pressure,
// in-flight join/leave, chunked prefill, preemption round trips, token-order
// preservation). Wall-clock throughput at GPU scale comes from src/simulator.
//
// Each step lowers the Scheduler's StepPlan into one BatchedStep — every
// decode token plus every prefill-chunk token, stacked row-wise — and
// executes it with a single QuantizedModel::forward_step() call, so the
// pre-packed cache-blocked GEMMs see the whole step's rows in one call per
// projection per layer instead of m=1 decode calls per request. The
// per-request execution path (one forward call per request) is kept behind
// EngineConfig::batched_step = false as the bitwise reference and benchmark
// baseline; both paths produce identical token streams at any thread count
// and ISA.
//
// Callers can stream results instead of polling run_to_completion():
// submit(prompt, opts, on_token, on_finish) registers per-token/finish
// callbacks, and drain() (or a caller-driven step() loop) pumps the engine
// until idle.
//
// Failure semantics: every request finishes exactly once with a definite
// FinishReason (see request.h). Per-request conditions — bad input, a
// deadline, cancellation, bounded-queue overload, a throwing user callback,
// an injected fault — never abort the process and never perturb other
// requests' token streams: an injected KV-allocation or step fault converts
// to recompute-on-resume preemption of the step's participants, which is
// bitwise stream-preserving by construction.
#pragma once

#include <memory>

#include "common/rng.h"
#include "model/quantized_model.h"
#include "serving/prefix_index.h"
#include "serving/scheduler.h"

namespace qserve {

// Draft/verify speculative decoding, active when the engine is constructed
// with a draft model. Each decode step proposes `lookahead_k` tokens with the
// draft (a small quantized model with its own KV cache), scores all k+1
// positions with ONE batched target verify forward, accepts the longest
// prefix of draft tokens that match the target's greedy argmax, and
// truncates the rejected tail from both caches. Greedy acceptance makes the
// output streams bitwise identical to the non-speculative engine — every
// emitted token is the target's own argmax over logits computed against
// exactly the KV state the baseline would hold. Requires temperature == 0.
struct SpeculativeConfig {
  // Draft tokens proposed per verify step; the target scores k+1 positions
  // per request per step and the scheduler reserves k+1 tokens' pages per
  // decoding request.
  int lookahead_k = 4;
};

struct EngineConfig {
  SchedulerConfig scheduler;
  // Sampling: 0 = greedy argmax.
  float temperature = 0.0f;
  uint64_t sample_seed = 7;
  // Execute each step as one stacked forward_step (batched GEMMs across all
  // requests' rows). false = per-request forward calls; same token streams,
  // kept for A/B benchmarking and as the identity-test reference. A
  // speculative engine always uses the batched executor (the verify span IS
  // a batched multi-row chunk); the flag is ignored there.
  bool batched_step = true;
  SpeculativeConfig speculative;
  // Bounded admission (0 = unlimited). When a new submission would push the
  // scheduler queue past either cap, submit() finishes it immediately with
  // FinishReason::kShedOverload and try_submit() returns -1 without creating
  // a request — load sheds at the door instead of building unbounded queues.
  // Running requests do not count; the caps bound *waiting* work.
  int64_t max_queued_requests = 0;
  int64_t max_queued_prompt_tokens = 0;
  // Prefix caching: when a request's prefill completes, its prompt's
  // page-aligned KV prefix is donated to a radix-tree index (a zero-copy
  // fork — the pages' refcounts go up); a later request whose prompt shares
  // a prefix with any cached entry forks those full pages at admission and
  // starts prefill at the match length, skipping the matched tokens'
  // compute. Token streams are bitwise identical to cold runs (the KV bytes
  // of a token prefix are a pure function of the prefix). Off by default:
  // cached entries hold pages after their donor finishes — pages_in_use()
  // only returns to 0 after clear_prefix_cache() — and under page pressure
  // the engine reclaims unpinned entries LRU-first before any running
  // request is preempted.
  bool prefix_caching = false;
  // Cached-entry cap; at capacity the LRU unpinned entry is reclaimed to
  // make room for a new donation (skipped if every entry is pinned).
  int64_t prefix_cache_max_entries = 64;
};

struct EngineStats {
  int64_t steps = 0;
  // Prompt tokens run through prefill chunks (re-prefill after preemption
  // counts again — it is real work).
  int64_t prefill_tokens = 0;
  // Tokens produced by decode steps, plus post-preemption re-prefill
  // completions (they continue the decode stream). First tokens are counted
  // separately: the token sampled when a prompt's prefill completes is not a
  // decode token and must not inflate decode throughput.
  int64_t decode_tokens = 0;
  int64_t first_tokens = 0;
  int64_t preemptions = 0;
  // Wall time split by work type (forward passes only) plus the whole-step
  // total (includes scheduling/sampling overhead). A batched step runs one
  // forward for both kinds of work; its time is apportioned by row count.
  double prefill_seconds = 0;
  double decode_seconds = 0;
  double wall_seconds = 0;
  // Wall time the forwards spent inside the per-layer attention sections
  // (KV append + QK/softmax/SV; batched decode executor and prefill gather
  // alike), summed over target and draft models, and its share of
  // wall_seconds — the observable this PR's SIMD attention kernels move.
  double attention_seconds = 0;
  double attention_share = 0;
  // Tensor-parallel observables, maintained identically by the plain and
  // speculative engines (draft-model deltas included, like
  // attention_seconds). comm_seconds is wall time at the shard reduction
  // boundaries — column-parallel concats and row-parallel all-reduce +
  // epilogue. shard_imbalance is cumulative slowest-shard wall time over
  // cumulative mean shard wall time across every shard region (1.0 =
  // perfectly balanced; 0 when no shard region ever ran, i.e. tp_shards==1).
  double comm_seconds = 0;
  double shard_imbalance = 0;
  // Peak *requests* running in one step.
  int peak_batch = 0;
  // Batched-GEMM occupancy: peak stacked rows (decode tokens + prefill-chunk
  // tokens) executed in one step, and the mean over all steps — the m each
  // projection GEMM actually sees.
  int64_t peak_batch_tokens = 0;
  int64_t step_tokens = 0;  // total rows across all steps
  double mean_tokens_per_step = 0;
  // Throughputs over the matching wall-time split.
  double prefill_tokens_per_second = 0;
  double decode_tokens_per_second = 0;
  // Per-request latency in engine steps.
  double mean_first_token_steps = 0;
  double mean_completion_steps = 0;
  // --- speculative decoding ---------------------------------------------
  // Engine steps that ran a target verify forward (>= 1 decoding request).
  // Their draft + verify wall time lands in decode_seconds and every token
  // they emit counts once in decode_tokens, so a step that lands 1 + a
  // accepted tokens raises decode tok/s honestly instead of inflating it —
  // the same discipline that keeps first tokens out of the decode split.
  int64_t speculative_steps = 0;
  // Per-request verify executions: how many times a request's k+1-token span
  // went through a target forward. The baseline spends exactly one target
  // forward per decode token; speculation spends verify_forwards for
  // (accepted + verify_forwards) tokens, so the ratio below dropping under
  // 1.0 is the "fewer target forwards than tokens" win.
  int64_t verify_forwards = 0;
  int64_t proposed_tokens = 0;  // lookahead_k per request per verify step
  int64_t accepted_tokens = 0;  // accepted draft prefix lengths, summed
  double acceptance_rate = 0;   // accepted_tokens / proposed_tokens
  double target_forwards_per_decode_token = 0;
  // --- request lifecycle --------------------------------------------------
  // Finished-request counts by FinishReason; their sum is the number of
  // on_finish callbacks fired. Maintained identically by the plain and
  // speculative engines.
  int64_t completed = 0;         // kLength
  int64_t cancelled = 0;         // kCancelled
  int64_t deadline_expired = 0;  // kDeadline
  int64_t shed = 0;              // kShedOverload
  int64_t rejected = 0;          // kRejected
  int64_t errored = 0;           // kError
  // Deepest the admission queue ever got (sampled at submit and per step).
  int64_t queue_depth_high_water = 0;
  // Steps whose execution was aborted by an injected fault and converted to
  // preemption of the step's participants.
  int64_t faulted_steps = 0;
  // User on_token/on_finish callbacks that threw (caught at the boundary).
  int64_t callback_exceptions = 0;
  // --- prefix caching & CoW sharing ---------------------------------------
  // Admissions that forked KV from a cached prefix instead of cold-starting.
  int64_t prefix_hits = 0;
  // KV tokens aliased from shared pages at those forks (full pages only).
  int64_t prefix_tokens_reused = 0;
  // Prompt tokens whose prefill compute was skipped, cumulatively — each hit
  // starts prefill_pos at the aligned match length instead of 0.
  int64_t prefill_tokens_saved = 0;
  // Entries donated to / reclaimed from / invalidated out of the index.
  int64_t prefix_insertions = 0;
  int64_t prefix_evictions = 0;
  int64_t prefix_invalidations = 0;
  // Gauges (sampled every step and on drain): copy-on-write page copies the
  // KV cache has performed (cumulative), pages currently referenced by more
  // than one sequence, and the index's entry/page footprint.
  int64_t cow_page_copies = 0;
  int64_t shared_pages = 0;
  int64_t prefix_cache_entries = 0;
  int64_t prefix_cache_pages = 0;
  // --- sliding-window attention -------------------------------------------
  // Requests submitted with a non-zero attention_window (counted once at
  // submit, not per re-admission).
  int64_t windowed_requests = 0;
  // Cumulative pages the KV cache recycled in place for windowed sequences
  // (PagedKvCache::recycled_pages; every recycle is an allocation a full-
  // attention run would have needed).
  int64_t kv_recycled_pages = 0;
};

class ServingEngine {
 public:
  // Validates the configuration loudly (QS_CHECK): temperature >= 0 and a
  // sane scheduler config (the Scheduler constructor checks its own fields).
  ServingEngine(QuantizedModel* model, const EngineConfig& cfg);

  // Speculative engine: `draft` is a distinct (typically much smaller)
  // quantized model sharing the target's vocabulary, with its own KV cache
  // and pool. Decode steps run draft-k / verify / rollback (see
  // SpeculativeConfig); prefill is unchanged and runs only on the target.
  // Requires cfg.temperature == 0 and cfg.speculative.lookahead_k >= 1; the
  // scheduler's decode reservation is widened to k+1 tokens per step. Size
  // the draft's kv_max_pages like the target's — the draft mirrors every
  // decoding request's context (its pages free on preemption and finish just
  // like the target's), but its pool is not scheduler-managed, so exhaustion
  // there fails loudly instead of triggering eviction.
  ServingEngine(QuantizedModel* model, QuantizedModel* draft,
                const EngineConfig& cfg);

  // Submit a request; returns its id. Requests are owned by the engine.
  int submit(std::vector<int> prompt, int max_new_tokens);

  // Streaming submit: on_token fires once per generated token in stream
  // order (during the step that sampled it), on_finish exactly once after
  // the last token. Either callback may be null. Never throws for
  // per-request conditions: unservable input finishes immediately with
  // kRejected, a full queue with kShedOverload — in both cases on_finish has
  // already fired by the time submit() returns.
  int submit(std::vector<int> prompt, const RequestOptions& opts,
             std::function<void(const Request&, int)> on_token,
             std::function<void(const Request&)> on_finish = nullptr);

  // Backpressure-reporting submit: returns -1 WITHOUT creating a request
  // when the queue caps would shed it, so callers can retry later or
  // propagate the pushback upstream. Unservable input still creates the
  // request and finishes it kRejected (retrying would never help), exactly
  // like submit().
  int try_submit(std::vector<int> prompt, const RequestOptions& opts,
                 std::function<void(const Request&, int)> on_token = nullptr,
                 std::function<void(const Request&)> on_finish = nullptr);

  // Cancel a request. Returns true if the cancellation was accepted (the
  // request will finish with FinishReason::kCancelled), false if it already
  // finished or was already cancelled. Safe to call from inside on_token /
  // on_finish: mid-step cancellations are applied at the next safe point
  // (already-delivered tokens stand; no further tokens are delivered after
  // the step in which the cancellation is applied). Frees the target and
  // draft KV sequences and fires on_finish exactly once.
  bool cancel(int id);

  // One engine iteration: plan (admit/evict), execute the step's rows (one
  // batched forward by default), sample per finished row, fire callbacks.
  // Returns false when fully idle.
  bool step();

  // Pump step() until idle. The streaming counterpart of
  // run_to_completion(): callers consume tokens via callbacks instead of
  // polling request state afterwards. Derived stats (throughputs, means)
  // are refreshed at the end of every step(), so a caller-driven step()
  // loop reads the same numbers from stats().
  EngineStats drain();

  // Run until all submitted requests finish (alias of drain(), kept for
  // non-streaming callers).
  EngineStats run_to_completion() { return drain(); }

  const Request& request(int id) const;
  const EngineStats& stats() const { return stats_; }

  // Release every cached prefix entry (their KV sequences are freed; pages
  // shared with running requests survive via refcounts). After the engine is
  // also drained, pages_in_use() is back to 0. Safe to call any time —
  // in-flight requests that forked from a released entry keep their pages.
  void clear_prefix_cache();

 private:
  struct ChunkJob;  // one prefill share's materialized tokens (engine.cpp)

  int sample(const float* logits, int64_t vocab);
  // Shared between the speculative and non-speculative batched paths, so
  // the prefill bookkeeping cannot drift between them:
  // Append the step's prefill chunks to `bstep` (a completing chunk asks
  // for one logit row, a mid-prompt chunk for none) and record each chunk's
  // logits-row index (-1 for mid-prompt), numbering from next_logit_row.
  void lower_prefill_chunks(BatchedStep& bstep,
                            const std::vector<ChunkJob>& chunks,
                            int64_t next_logit_row,
                            std::vector<int64_t>& chunk_logit_row);
  // Point every completing chunk's `out` at its row of the step's logits.
  static void bind_chunk_logits(std::vector<ChunkJob>& chunks,
                                const std::vector<int64_t>& chunk_logit_row,
                                const Tensor& step_logits);
  // The prefill half of the sampling loop: advance chunk bookkeeping and,
  // when the chunk completes the request's prefill, transition it to
  // decoding and sample its first token from c.out.
  void handle_prefill_result(Request& r, ChunkJob& c);
  // Record a sampled token: append, fire on_token, finish if complete.
  void deliver(Request& r, int token);
  // The single finish path: set the reason, free both KV sequences, bump the
  // per-reason counter, fire on_finish exactly once (exceptions caught).
  void finish_with(Request& r, FinishReason reason,
                   const char* error = nullptr);
  // Shared body of submit()/try_submit(): validate (kRejected), apply queue
  // caps (kShedOverload, or -1 when !create_on_shed), else enqueue.
  int submit_impl(std::vector<int> prompt, const RequestOptions& opts,
                  std::function<void(const Request&, int)> on_token,
                  std::function<void(const Request&)> on_finish,
                  bool create_on_shed);
  // Finish every pending cancellation (deferred while a step is executing)
  // and drop the finished requests from running_.
  void apply_pending_cancellations();
  // Convert an injected fault that aborted this step's execution into
  // recompute-on-resume preemption of every step participant.
  void fault_preempt(const std::vector<Request*>& decodes,
                     const std::vector<PrefillWork>& prefills);
  // Drop finished requests from running_ (admission order is preserved).
  void prune_finished();
  // Preempt: free the KV sequence(s) and reset prefill progress; the request
  // is already back in the scheduler queue.
  void evict(Request& r);
  bool speculative() const { return draft_ != nullptr; }
  // --- prefix caching ------------------------------------------------------
  // Scheduler admission hook: longest-prefix lookup (generation-validated),
  // set prefill_pos to the page-aligned match and stash the fork source.
  void bind_prefix(Request& r);
  // At prefill completion: donate the prompt's page-aligned KV prefix to the
  // index (zero-copy fork; skipped if the exact key is cached or the entry
  // cap is reached with everything pinned).
  void maybe_insert_prefix(Request& r);
  // Drop this request's pins on index entries (finish / preemption).
  void unpin_prefix(Request& r);
  // Reclaim LRU unpinned entries while the pool is under the step's
  // conservative page watermark — cached prefixes never cause a running
  // request to be preempted.
  void prefix_pressure_evict();
  // Parallel sampling: fork n-1 sibling requests at the primary's first
  // prefill completion, sampling each sibling's first token from the same
  // logits; siblings enqueue and re-enter admission (hitting the prompt's
  // just-donated prefix entry when caching is on).
  void spawn_siblings(Request& r, const float* logits);
  // Draft-k proposals for every decoding request of the plan, one batched
  // draft forward per lookahead depth (depth 0 also catches the draft up on
  // context it has not seen). Returns proposals[i] for plan.decodes[i].
  std::vector<std::vector<int>> propose_draft_tokens(
      const std::vector<Request*>& decodes);
  // Speculative execution of one planned step: draft proposals, one batched
  // target verify forward (verify spans + the step's prefill chunks),
  // greedy longest-prefix acceptance in admission order, KV rollback on both
  // models. Fills the same per-request sampling bookkeeping as the normal
  // paths.
  void run_speculative_step(const std::vector<Request*>& decodes,
                            std::vector<ChunkJob>& chunks);
  // Non-speculative execution of one planned step (batched or per-request
  // forwards per cfg_.batched_step) plus the serial sampling loop.
  void run_normal_step(const std::vector<Request*>& decodes,
                       std::vector<ChunkJob>& chunks, int64_t decode_rows,
                       int64_t prefill_rows);
  // Recompute the derived stats (throughputs, per-step/request means) from
  // the running counters; called at the end of every step().
  void refresh_derived_stats();

  QuantizedModel* model_;
  QuantizedModel* draft_ = nullptr;  // speculative decoding draft model
  EngineConfig cfg_;
  // Ring slack passed to PagedKvCache::set_window for every windowed
  // request: the largest single append span the engine can produce — a full
  // prefill chunk or a speculative verify span (k+1 tokens, which is also
  // the deepest rollback) — so the ring never recycles a page a pending
  // span or rollback still needs. Fixed at construction; identical across
  // preemption round trips, which keeps recompute-on-resume ring geometry
  // (and therefore the token streams) bitwise stable.
  int64_t window_slack_ = 0;
  Scheduler scheduler_;
  PrefixIndex prefix_index_;
  std::vector<std::unique_ptr<Request>> requests_;
  std::vector<Request*> running_;  // admission order; back = youngest
  EngineStats stats_;
  // Incremental latency sums over finished requests that produced at least
  // one token (O(1) per-step derived stats instead of a rescan of
  // requests_). Shed/rejected/never-served requests are excluded so the
  // latency means describe served traffic.
  double first_token_steps_sum_ = 0;
  double completion_steps_sum_ = 0;
  int64_t served_finished_ = 0;
  // Cancellations requested while a step was executing; applied at the next
  // safe point (step boundaries and after the sampling loop).
  std::vector<int> pending_cancels_;
  bool in_step_ = false;
  bool applying_cancels_ = false;
  Rng rng_;
};

}  // namespace qserve
