// Request / sequence state machine for the serving engine.
//
// Lifecycle: kQueued -> kPrefilling -> kDecoding -> kFinished, with one back
// edge: preemption returns a running request to kQueued (its KV pages are
// freed and prefill_pos resets). On re-admission it re-prefills its whole
// context — prompt plus every token generated so far — which rebuilds the
// identical KV state, so the continued token stream is bitwise unchanged.
//
// Every request finishes exactly once, with a definite FinishReason: the
// engine never aborts the process for a per-request condition (bad input,
// pool too small for that request, expired deadline, cancellation, a
// throwing user callback, an injected fault) — the affected request fails
// alone and every other stream is bitwise unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace qserve {

enum class RequestState { kQueued, kPrefilling, kDecoding, kFinished };

// Why a request reached kFinished. Exactly one reason per request; on_finish
// fires exactly once after it is set.
enum class FinishReason {
  kNone = 0,      // not finished yet
  kLength,        // produced max_new_tokens — the only "success" terminal
  kCancelled,     // ServingEngine::cancel()
  kDeadline,      // deadline_steps / ttft_deadline_steps expired
  kShedOverload,  // bounded admission queue was full at submit()
  kRejected,      // unservable as submitted (empty prompt, bad limits,
                  // larger than the whole KV pool)
  kError,         // runtime failure (user callback threw, pool can never
                  // fit the request's next step mid-flight)
};

inline const char* to_string(FinishReason reason) {
  switch (reason) {
    case FinishReason::kNone: return "none";
    case FinishReason::kLength: return "length";
    case FinishReason::kCancelled: return "cancelled";
    case FinishReason::kDeadline: return "deadline";
    case FinishReason::kShedOverload: return "shed_overload";
    case FinishReason::kRejected: return "rejected";
    case FinishReason::kError: return "error";
  }
  return "unknown";
}

// Per-request knobs for the streaming submit API.
struct RequestOptions {
  int max_new_tokens = 16;
  // Parallel sampling: generate `n` independent completions of the prompt.
  // The submitted request is sample 0; when its prefill completes, the
  // engine forks n-1 sibling requests whose KV sequences share the prompt's
  // pages copy-on-write (via the prefix cache when enabled, by re-prefill
  // otherwise). Each sibling streams through the same on_token/on_finish
  // callbacks, distinguishable by Request::sample_index / parent_id;
  // on_finish fires once per completion (n times total). Meaningful with
  // temperature > 0 (greedy siblings all emit the primary's stream).
  int n = 1;
  // Deadlines in engine steps, measured from submission; 0 disables. The
  // scheduler expires them at plan time: a request that has not finished
  // within deadline_steps (or produced its first token within
  // ttft_deadline_steps) finishes with FinishReason::kDeadline and its KV
  // pages are freed before any new work is admitted that step.
  int64_t deadline_steps = 0;
  int64_t ttft_deadline_steps = 0;
  // Sliding-window attention with attention sinks (StreamingLLM-style;
  // 0 = full attention). Each attention row sees the first `sink_tokens`
  // positions plus its own trailing `attention_window` positions; once the
  // sequence exceeds sinks + window (+ scheduling slack) the KV cache
  // recycles the oldest non-sink page in place, so the request's page
  // footprint stays constant no matter how long it generates. Both values
  // must be multiples of the KV page size (16) — the ring recycles whole
  // pages — and sink_tokens requires a non-zero window; violations reject
  // the request (FinishReason::kRejected) rather than crash the engine.
  // window >= context behaves bitwise identically to full attention.
  int64_t attention_window = 0;
  int64_t sink_tokens = 0;
};

struct Request {
  int id = -1;
  std::vector<int> prompt;
  int max_new_tokens = 16;
  int64_t deadline_steps = 0;       // see RequestOptions
  int64_t ttft_deadline_steps = 0;  // see RequestOptions
  int64_t attention_window = 0;     // see RequestOptions
  int64_t sink_tokens = 0;          // see RequestOptions
  // Per-layer page-footprint bound once the window's ring is installed
  // (PagedKvCache::window_page_cap; 0 = unbounded). Precomputed at submit;
  // the scheduler clamps this request's held/growth page arithmetic to it.
  int64_t window_page_cap = 0;

  // Streaming callbacks (either may be empty). on_token fires once per
  // generated token — the first token included — in stream order, during the
  // engine step that sampled it; r.generated already contains the token.
  // Preemption never re-fires delivered tokens (a re-prefill reconstructs KV
  // state but samples no already-delivered positions). on_finish fires
  // exactly once, after the final on_token. A callback that throws is caught
  // at the boundary: the engine stays consistent, and a throwing on_token
  // finishes its request with FinishReason::kError.
  std::function<void(const Request&, int token)> on_token;
  std::function<void(const Request&)> on_finish;

  RequestState state = RequestState::kQueued;
  FinishReason finish_reason = FinishReason::kNone;
  // Human-readable detail for kRejected / kError finishes.
  std::string error;
  // Set by ServingEngine::cancel(); applied at the next safe point (engine-
  // internal — callers should treat it as opaque).
  bool cancel_requested = false;

  std::vector<int> generated;
  int seq_handle = -1;  // QuantizedModel sequence id while running

  // Speculative decoding (engine has a draft model): the draft's own KV
  // sequence for this request, holding a prefix of prompt + generated. The
  // draft catches up lazily (its first proposal forward prefills whatever
  // context it has not seen), so admission and preemption cost nothing
  // extra on the draft side beyond freeing the sequence.
  int draft_seq_handle = -1;
  // Per-request speculation outcome (sums of the per-step k and accepted-
  // prefix lengths) for stats and tests.
  int64_t draft_proposed = 0;
  int64_t draft_accepted = 0;

  // Chunked prefill progress: context tokens (prompt + generated, for a
  // resumed request) already appended to the KV cache. Reset on preemption.
  // A prefix-cache hit starts this at the match length — the matched tokens'
  // KV is forked from the cached entry instead of recomputed.
  int64_t prefill_pos = 0;
  int preemptions = 0;

  // --- prefix caching (engine-internal) ----------------------------------
  // Set by the admission hook on a cache hit, consumed when admission is
  // applied: fork prefix_fork_len tokens from model sequence prefix_src_seq
  // instead of begin_sequence(). Reset after the fork.
  int prefix_src_seq = -1;
  int64_t prefix_fork_len = 0;
  // Per-layer count of this request's pages known to be shared with a cache
  // entry or sibling (full pages of the forked/donated prefix). The
  // scheduler subtracts these from eviction page credits — freeing the
  // sequence releases only privately-held pages. Reset on preemption.
  int64_t prefix_shared_pages = 0;
  // Prefix-index entries this request pins (its cache hit, and the entry it
  // donated at prefill completion); unpinned at finish/eviction.
  std::vector<int64_t> pinned_prefix_entries;

  // --- parallel sampling (RequestOptions::n) ------------------------------
  int n_samples = 1;
  int sample_index = 0;        // 0 = the submitted primary
  int parent_id = -1;          // primary's id for a forked sibling
  std::vector<int> sibling_ids;  // on the primary, ids of forked siblings
  bool forks_spawned = false;

  // Timeline (engine step indices) for latency metrics.
  int64_t submitted_step = -1;
  int64_t first_token_step = -1;
  int64_t finished_step = -1;

  bool done() const { return state == RequestState::kFinished; }
  // The tokens a (re-)prefill must append before decoding can proceed.
  int64_t context_len() const {
    return static_cast<int64_t>(prompt.size() + generated.size());
  }
};

}  // namespace qserve
