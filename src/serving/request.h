// Request / sequence state machine for the serving engine.
//
// Lifecycle: kQueued -> kPrefilling -> kDecoding -> kFinished, with one back
// edge: preemption returns a running request to kQueued (its KV pages are
// freed and prefill_pos resets). On re-admission it re-prefills its whole
// context — prompt plus every token generated so far — which rebuilds the
// identical KV state, so the continued token stream is bitwise unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace qserve {

enum class RequestState { kQueued, kPrefilling, kDecoding, kFinished };

// Per-request knobs for the streaming submit API.
struct RequestOptions {
  int max_new_tokens = 16;
};

struct Request {
  int id = -1;
  std::vector<int> prompt;
  int max_new_tokens = 16;

  // Streaming callbacks (either may be empty). on_token fires once per
  // generated token — the first token included — in stream order, during the
  // engine step that sampled it; r.generated already contains the token.
  // Preemption never re-fires delivered tokens (a re-prefill reconstructs KV
  // state but samples no already-delivered positions). on_finish fires
  // exactly once, after the final on_token.
  std::function<void(const Request&, int token)> on_token;
  std::function<void(const Request&)> on_finish;

  RequestState state = RequestState::kQueued;
  std::vector<int> generated;
  int seq_handle = -1;  // QuantizedModel sequence id while running

  // Speculative decoding (engine has a draft model): the draft's own KV
  // sequence for this request, holding a prefix of prompt + generated. The
  // draft catches up lazily (its first proposal forward prefills whatever
  // context it has not seen), so admission and preemption cost nothing
  // extra on the draft side beyond freeing the sequence.
  int draft_seq_handle = -1;
  // Per-request speculation outcome (sums of the per-step k and accepted-
  // prefix lengths) for stats and tests.
  int64_t draft_proposed = 0;
  int64_t draft_accepted = 0;

  // Chunked prefill progress: context tokens (prompt + generated, for a
  // resumed request) already appended to the KV cache. Reset on preemption.
  int64_t prefill_pos = 0;
  int preemptions = 0;

  // Timeline (engine step indices) for latency metrics.
  int64_t submitted_step = -1;
  int64_t first_token_step = -1;
  int64_t finished_step = -1;

  bool done() const { return state == RequestState::kFinished; }
  // The tokens a (re-)prefill must append before decoding can proceed.
  int64_t context_len() const {
    return static_cast<int64_t>(prompt.size() + generated.size());
  }
};

}  // namespace qserve
