// Request / sequence state machine for the serving engine.
#pragma once

#include <cstdint>
#include <vector>

namespace qserve {

enum class RequestState { kQueued, kPrefilling, kDecoding, kFinished };

struct Request {
  int id = -1;
  std::vector<int> prompt;
  int max_new_tokens = 16;

  RequestState state = RequestState::kQueued;
  std::vector<int> generated;
  int seq_handle = -1;  // QuantizedModel sequence id while running

  // Timeline (engine step indices) for latency metrics.
  int64_t submitted_step = -1;
  int64_t first_token_step = -1;
  int64_t finished_step = -1;

  bool done() const { return state == RequestState::kFinished; }
  int64_t total_len() const {
    return static_cast<int64_t>(prompt.size() + generated.size());
  }
};

}  // namespace qserve
