#include "serving/scheduler.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace qserve {

Scheduler::Scheduler(const SchedulerConfig& cfg, int page_size, int n_layers)
    : cfg_(cfg), page_size_(page_size), n_layers_(n_layers) {
  // Loud construction-time validation: a zero/negative chunk or batch would
  // otherwise plan empty steps forever, and a bad pool geometry would
  // corrupt the page-cost arithmetic downstream.
  QS_CHECK_MSG(cfg_.max_batch > 0, "SchedulerConfig.max_batch must be >= 1");
  QS_CHECK_MSG(cfg_.prefill_chunk > 0,
               "SchedulerConfig.prefill_chunk must be >= 1");
  QS_CHECK_MSG(cfg_.decode_tokens_per_step > 0,
               "SchedulerConfig.decode_tokens_per_step must be >= 1");
  QS_CHECK_MSG(page_size_ > 0, "KV page_size must be >= 1");
  QS_CHECK_MSG(n_layers_ > 0, "model must have >= 1 layer");
}

int64_t Scheduler::kv_len(const Request& r) {
  if (r.state == RequestState::kDecoding) {
    // The most recent sampled token is appended by the *next* decode step.
    return r.context_len() - 1;
  }
  return r.prefill_pos;
}

int64_t Scheduler::grow_pages(int64_t len, int64_t tokens) const {
  return (ceil_div(len + tokens, int64_t(page_size_)) -
          ceil_div(len, int64_t(page_size_))) *
         n_layers_;
}

int64_t Scheduler::grow_pages(const Request& r, int64_t tokens) const {
  const int64_t len = kv_len(r);
  const int64_t cap = r.window_page_cap;
  if (cap <= 0) return grow_pages(len, tokens);
  // Page count is clamped at the ring cap: once the sequence holds cap pages
  // per layer, further tokens recycle the oldest non-sink page in place.
  const int64_t now = std::min(ceil_div(len, int64_t(page_size_)), cap);
  const int64_t then =
      std::min(ceil_div(len + tokens, int64_t(page_size_)), cap);
  return (then - now) * n_layers_;
}

int64_t Scheduler::held_pages(const Request& r) const {
  // Pages freed if this request's sequence goes away. Pages shared with a
  // prefix-cache entry or a sibling fork (prefix_shared_pages per layer)
  // only drop a refcount, so they are excluded — the credit is conservative
  // (never over-counts; sharing that has since dissolved just under-counts).
  // A windowed request's footprint is clamped at its ring cap regardless of
  // logical length.
  int64_t per_layer = ceil_div(kv_len(r), int64_t(page_size_));
  if (r.window_page_cap > 0)
    per_layer = std::min(per_layer, r.window_page_cap);
  per_layer -= r.prefix_shared_pages;
  return std::max<int64_t>(per_layer, 0) * n_layers_;
}

int64_t Scheduler::token_capacity(int64_t len, int64_t free) const {
  const int64_t slack = len % page_size_ ? page_size_ - len % page_size_ : 0;
  return slack + std::max<int64_t>(free, 0) / n_layers_ * page_size_;
}

int64_t Scheduler::token_capacity(const Request& r, int64_t free) const {
  const int64_t len = kv_len(r);
  const int64_t cap = r.window_page_cap;
  if (cap > 0) {
    // Remaining allocations before the ring is full; past that, every append
    // recycles in place and the request can absorb any number of tokens.
    const int64_t now = std::min(ceil_div(len, int64_t(page_size_)), cap);
    if (std::max<int64_t>(free, 0) / n_layers_ >= cap - now)
      return std::numeric_limits<int64_t>::max() / 4;
  }
  return token_capacity(len, free);
}

bool Scheduler::past_deadline(const Request& r, int64_t current_step) {
  const int64_t age = current_step - r.submitted_step;
  if (r.deadline_steps > 0 && age >= r.deadline_steps) return true;
  if (r.ttft_deadline_steps > 0 && r.first_token_step < 0 &&
      age >= r.ttft_deadline_steps)
    return true;
  return false;
}

bool Scheduler::remove_queued(Request* r) {
  auto it = std::find(queue_.begin(), queue_.end(), r);
  if (it == queue_.end()) return false;
  queued_prompt_tokens_ -= r->context_len();
  queue_.erase(it);
  return true;
}

StepPlan Scheduler::plan(const std::vector<Request*>& running,
                         int64_t free_pages, int64_t current_step) {
  StepPlan plan;
  int64_t free = free_pages;

  // 0. Deadline expiry, before any reservation: expired requests leave the
  // batch and the queue now, and a running expiree's pages are credited to
  // this step's budget (the engine frees its sequences before executing).
  std::vector<Request*> live;
  live.reserve(running.size());
  for (Request* r : running) {
    if (past_deadline(*r, current_step)) {
      free += held_pages(*r);
      plan.expired.push_back(r);
    } else {
      live.push_back(r);
    }
  }
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (past_deadline(**it, current_step)) {
      queued_prompt_tokens_ -= (*it)->context_len();
      plan.expired.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }

  // 1. Decode-priority page reservation. Evict the youngest running request
  // (prefilling or decoding) until every decode's step fits — a step appends
  // decode_tokens_per_step tokens at peak (1 classic, k+1 for a speculative
  // verify forward before its rollback). If a *lone* decode still cannot
  // fit, the pool can never serve it: move it to `stalled` instead of
  // spinning (the engine finishes it with kError).
  const auto decode_need = [&live, this]() {
    int64_t need = 0;
    for (Request* r : live)
      if (r->state == RequestState::kDecoding)
        need += grow_pages(*r, cfg_.decode_tokens_per_step);
    return need;
  };
  int64_t need = decode_need();
  while (need > free && live.size() > 1) {
    Request* victim = live.back();
    live.pop_back();
    free += held_pages(*victim);
    plan.evicted.push_back(victim);
    // Front of the queue: an evictee outranks never-admitted requests, and
    // evicting youngest-first then pushing front keeps older evictees ahead.
    requeue_front(victim);
    need = decode_need();
  }
  if (need > free) {
    Request* lone = live.back();
    live.pop_back();
    free += held_pages(*lone);
    plan.stalled.push_back(lone);
    need = decode_need();
    QS_CHECK_MSG(need == 0, "stalled-decode conversion left residual need");
  }
  free -= need;
  for (Request* r : live)
    if (r->state == RequestState::kDecoding) plan.decodes.push_back(r);

  // 2. FCFS admission against what the decodes left over. Admission is
  // page-incremental: one token's pages must fit now; later growth is
  // resolved by allocation on demand and, if needed, preemption. Skipped on
  // eviction steps so a victim's pages are not immediately re-committed.
  if (plan.evicted.empty()) {
    int64_t admit_hold = 0;  // one-page-per-layer notional hold per admit
    while (!queue_.empty() &&
           static_cast<int>(live.size()) < cfg_.max_batch &&
           free - admit_hold >= n_layers_) {
      Request* r = queue_.front();
      queue_.pop_front();
      queued_prompt_tokens_ -= r->context_len();
      // Prefix-cache consultation: a hit advances r->prefill_pos to the
      // match length before the chunk distribution below, so the planned
      // shares and page growth already reflect the skipped prefill.
      if (admission_hook_) admission_hook_(*r);
      plan.admitted.push_back(r);
      live.push_back(r);
      admit_hold += n_layers_;
    }
  }

  // 3. Distribute the prefill chunk. Shortest-remaining-first bounds a short
  // request's time-to-first-token by one chunk step even when a long prompt
  // is mid-prefill; the oldest prefilling request keeps at least half the
  // chunk so short arrivals cannot starve it. Page-exact clamping: the
  // engine appends exactly the planned tokens, so the pool cannot be
  // exhausted mid-step.
  const auto remaining = [](const Request* r) {
    return r->context_len() - r->prefill_pos;
  };
  const auto distribute = [&]() {
    std::vector<Request*> pre;
    for (Request* r : live)
      if (r->state != RequestState::kDecoding) pre.push_back(r);
    Request* const oldest = pre.empty() ? nullptr : pre.front();
    std::stable_sort(pre.begin(), pre.end(),
                     [&](const Request* a, const Request* b) {
                       return remaining(a) < remaining(b);
                     });
    int64_t budget = cfg_.prefill_chunk;
    int64_t other_budget = budget / 2;
    for (Request* r : pre) {
      const int64_t cap =
          r == oldest ? budget : std::min(budget, other_budget);
      int64_t t = std::min(remaining(r), cap);
      t = std::min(t, token_capacity(*r, free));
      if (t <= 0) continue;
      plan.prefills.push_back({r, static_cast<int>(t)});
      free -= grow_pages(*r, t);
      budget -= t;
      if (r != oldest) other_budget -= t;
    }
  };
  distribute();

  // 4. Prefill-deadlock relief. With no decodes to drive eviction, several
  // mid-prefill requests can jointly exhaust the pool and all stall even
  // though each would complete alone. Evict the youngest (freeing its
  // pages) until the oldest can progress. Admission cannot have happened on
  // such a step (no pages -> no admission), so the victims are always
  // previously-running prefills. `plan.prefills` is empty on entry (nothing
  // was assigned), so re-running the distribution after freeing pages
  // starts from a clean slate.
  while (plan.decodes.empty() && plan.prefills.empty() && live.size() > 1) {
    Request* victim = live.back();
    live.pop_back();
    free += held_pages(*victim);
    plan.evicted.push_back(victim);
    requeue_front(victim);
    distribute();
  }

  // 5. Livelock conversion: a lone mid-prefill request that cannot place a
  // single token even with the rest of the pool free can never progress —
  // fail *that request* (kError via `stalled`) instead of the whole engine.
  // The guards are deliberately conservative: any eviction, expiry, or
  // prior stall this step may free pages, so the next plan() call gets a
  // fresh chance before anything is declared stuck. (An empty batch with a
  // non-empty queue and no pages is NOT converted here: with nothing
  // running, the pool's pages are simply not free *yet* from this planner's
  // point of view — the engine, which knows the pool is fully idle in that
  // state, handles the genuinely-unadmittable case.)
  if (plan.empty() && plan.expired.empty() && plan.stalled.empty() &&
      live.size() == 1 && remaining(live[0]) > 0) {
    Request* lone = live[0];
    live.pop_back();
    free += held_pages(*lone);
    plan.stalled.push_back(lone);
  }
  return plan;
}

}  // namespace qserve
