#include "serving/scheduler.h"

namespace qserve {

std::vector<Request*> Scheduler::admit(int running,
                                       int64_t kv_tokens_available) {
  std::vector<Request*> admitted;
  int64_t budget = kv_tokens_available;
  while (!queue_.empty() &&
         running + static_cast<int>(admitted.size()) < cfg_.max_batch) {
    Request* r = queue_.front();
    const int64_t raw =
        static_cast<int64_t>(r->prompt.size()) + r->max_new_tokens;
    const int64_t pr = cfg_.page_round > 0 ? cfg_.page_round : 1;
    const int64_t need = (raw + pr - 1) / pr * pr;
    if (need > budget) break;  // FCFS: do not skip ahead of the head
    budget -= need;
    queue_.pop_front();
    admitted.push_back(r);
  }
  return admitted;
}

}  // namespace qserve
