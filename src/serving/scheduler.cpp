#include "serving/scheduler.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace qserve {

Scheduler::Scheduler(const SchedulerConfig& cfg, int page_size, int n_layers)
    : cfg_(cfg), page_size_(page_size), n_layers_(n_layers) {
  // Loud construction-time validation: a zero/negative chunk or batch would
  // otherwise plan empty steps forever, and a bad pool geometry would
  // corrupt the page-cost arithmetic downstream.
  QS_CHECK_MSG(cfg_.max_batch > 0, "SchedulerConfig.max_batch must be >= 1");
  QS_CHECK_MSG(cfg_.prefill_chunk > 0,
               "SchedulerConfig.prefill_chunk must be >= 1");
  QS_CHECK_MSG(cfg_.decode_tokens_per_step > 0,
               "SchedulerConfig.decode_tokens_per_step must be >= 1");
  QS_CHECK_MSG(page_size_ > 0, "KV page_size must be >= 1");
  QS_CHECK_MSG(n_layers_ > 0, "model must have >= 1 layer");
}

int64_t Scheduler::kv_len(const Request& r) {
  if (r.state == RequestState::kDecoding) {
    // The most recent sampled token is appended by the *next* decode step.
    return r.context_len() - 1;
  }
  return r.prefill_pos;
}

int64_t Scheduler::grow_pages(int64_t len, int64_t tokens) const {
  return (ceil_div(len + tokens, int64_t(page_size_)) -
          ceil_div(len, int64_t(page_size_))) *
         n_layers_;
}

int64_t Scheduler::held_pages(const Request& r) const {
  return ceil_div(kv_len(r), int64_t(page_size_)) * n_layers_;
}

int64_t Scheduler::token_capacity(int64_t len, int64_t free) const {
  const int64_t slack = len % page_size_ ? page_size_ - len % page_size_ : 0;
  return slack + std::max<int64_t>(free, 0) / n_layers_ * page_size_;
}

StepPlan Scheduler::plan(const std::vector<Request*>& running,
                         int64_t free_pages) {
  StepPlan plan;
  int64_t free = free_pages;
  std::vector<Request*> live = running;

  // 1. Decode-priority page reservation. Evict the youngest running request
  // (prefilling or decoding) until every decode's step fits — a step appends
  // decode_tokens_per_step tokens at peak (1 classic, k+1 for a speculative
  // verify forward before its rollback).
  const auto decode_need = [&live, this]() {
    int64_t need = 0;
    for (Request* r : live)
      if (r->state == RequestState::kDecoding)
        need += grow_pages(kv_len(*r), cfg_.decode_tokens_per_step);
    return need;
  };
  int64_t need = decode_need();
  while (need > free) {
    QS_CHECK_MSG(live.size() > 1,
                 "KV pool cannot hold a single request's next decode step");
    Request* victim = live.back();
    live.pop_back();
    free += held_pages(*victim);
    plan.evicted.push_back(victim);
    // Front of the queue: an evictee outranks never-admitted requests, and
    // evicting youngest-first then pushing front keeps older evictees ahead.
    queue_.push_front(victim);
    need = decode_need();
  }
  free -= need;
  for (Request* r : live)
    if (r->state == RequestState::kDecoding) plan.decodes.push_back(r);

  // 2. FCFS admission against what the decodes left over. Admission is
  // page-incremental: one token's pages must fit now; later growth is
  // resolved by allocation on demand and, if needed, preemption. Skipped on
  // eviction steps so a victim's pages are not immediately re-committed.
  if (plan.evicted.empty()) {
    int64_t admit_hold = 0;  // one-page-per-layer notional hold per admit
    while (!queue_.empty() &&
           static_cast<int>(live.size()) < cfg_.max_batch &&
           free - admit_hold >= n_layers_) {
      Request* r = queue_.front();
      queue_.pop_front();
      plan.admitted.push_back(r);
      live.push_back(r);
      admit_hold += n_layers_;
    }
  }

  // 3. Distribute the prefill chunk. Shortest-remaining-first bounds a short
  // request's time-to-first-token by one chunk step even when a long prompt
  // is mid-prefill; the oldest prefilling request keeps at least half the
  // chunk so short arrivals cannot starve it. Page-exact clamping: the
  // engine appends exactly the planned tokens, so the pool cannot be
  // exhausted mid-step.
  const auto remaining = [](const Request* r) {
    return r->context_len() - r->prefill_pos;
  };
  const auto distribute = [&]() {
    std::vector<Request*> pre;
    for (Request* r : live)
      if (r->state != RequestState::kDecoding) pre.push_back(r);
    Request* const oldest = pre.empty() ? nullptr : pre.front();
    std::stable_sort(pre.begin(), pre.end(),
                     [&](const Request* a, const Request* b) {
                       return remaining(a) < remaining(b);
                     });
    int64_t budget = cfg_.prefill_chunk;
    int64_t other_budget = budget / 2;
    for (Request* r : pre) {
      const int64_t cap =
          r == oldest ? budget : std::min(budget, other_budget);
      int64_t t = std::min(remaining(r), cap);
      t = std::min(t, token_capacity(kv_len(*r), free));
      if (t <= 0) continue;
      plan.prefills.push_back({r, static_cast<int>(t)});
      free -= grow_pages(kv_len(*r), t);
      budget -= t;
      if (r != oldest) other_budget -= t;
    }
  };
  distribute();

  // 4. Prefill-deadlock relief. With no decodes to drive eviction, several
  // mid-prefill requests can jointly exhaust the pool and all stall even
  // though each would complete alone. Evict the youngest (freeing its
  // pages) until the oldest can progress; if one lone request still cannot,
  // the pool is genuinely too small and the engine fails loudly. Admission
  // cannot have happened on such a step (no pages -> no admission), so the
  // victims are always previously-running prefills. `plan.prefills` is
  // empty on entry (nothing was assigned), so re-running the distribution
  // after freeing pages starts from a clean slate.
  while (plan.decodes.empty() && plan.prefills.empty() && live.size() > 1) {
    Request* victim = live.back();
    live.pop_back();
    free += held_pages(*victim);
    plan.evicted.push_back(victim);
    queue_.push_front(victim);
    distribute();
  }
  return plan;
}

}  // namespace qserve
