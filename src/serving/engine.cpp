#include "serving/engine.h"

#include <algorithm>
#include <chrono>

#include "common/math_util.h"

namespace qserve {

ServingEngine::ServingEngine(QuantizedModel* model, const EngineConfig& cfg)
    : model_(model), cfg_(cfg), scheduler_(cfg.scheduler),
      rng_(cfg.sample_seed) {
  QS_CHECK(model != nullptr);
}

int ServingEngine::submit(std::vector<int> prompt, int max_new_tokens) {
  QS_CHECK(!prompt.empty());
  QS_CHECK_GT(max_new_tokens, 0);
  auto req = std::make_unique<Request>();
  req->id = static_cast<int>(requests_.size());
  req->prompt = std::move(prompt);
  req->max_new_tokens = max_new_tokens;
  req->submitted_step = stats_.steps;
  Request* ptr = req.get();
  requests_.push_back(std::move(req));
  scheduler_.enqueue(ptr);
  return ptr->id;
}

int ServingEngine::sample(const Tensor& logits) {
  const int64_t vocab = logits.numel();
  if (cfg_.temperature <= 0.0f) {
    int64_t best = 0;
    for (int64_t v = 1; v < vocab; ++v)
      if (logits[v] > logits[best]) best = v;
    return static_cast<int>(best);
  }
  std::vector<float> probs(static_cast<size_t>(vocab));
  for (int64_t v = 0; v < vocab; ++v)
    probs[size_t(v)] = logits[v] / cfg_.temperature;
  softmax_inplace(probs.data(), static_cast<int>(vocab));
  float r = rng_.uniform();
  for (size_t v = 0; v < probs.size(); ++v) {
    r -= probs[v];
    if (r <= 0.0f) return static_cast<int>(v);
  }
  return static_cast<int>(vocab - 1);
}

void ServingEngine::finish(Request& r) {
  r.state = RequestState::kFinished;
  r.finished_step = stats_.steps;
  model_->end_sequence(r.seq_handle);
  r.seq_handle = -1;
}

bool ServingEngine::step() {
  const auto t0 = std::chrono::steady_clock::now();

  // --- admit ---
  const auto& kv = model_->kv_cache();
  const int64_t tokens_available =
      kv.free_pages() / std::max(1, model_->config().n_layers) *
      kv.config().page_size;
  const auto admitted =
      scheduler_.admit(static_cast<int>(running_.size()), tokens_available);
  for (Request* r : admitted) {
    r->state = RequestState::kPrefilling;
    r->seq_handle = model_->begin_sequence();
    running_.push_back(r);
  }

  // --- prefill newcomers, decode the rest (one token each) ---
  for (Request* r : running_) {
    Tensor logits;
    if (r->state == RequestState::kPrefilling) {
      logits = model_->prefill(r->seq_handle, r->prompt);
      stats_.prefill_tokens += static_cast<int64_t>(r->prompt.size());
      r->state = RequestState::kDecoding;
    } else {
      logits = model_->decode_step(r->seq_handle, r->generated.back());
    }
    const int tok = sample(logits);
    r->generated.push_back(tok);
    ++stats_.decode_tokens;
    if (r->first_token_step < 0) r->first_token_step = stats_.steps;
    if (static_cast<int>(r->generated.size()) >= r->max_new_tokens) {
      finish(*r);
    }
  }
  stats_.peak_batch =
      std::max(stats_.peak_batch, static_cast<int>(running_.size()));
  running_.erase(std::remove_if(running_.begin(), running_.end(),
                                [](Request* r) { return r->done(); }),
                 running_.end());

  ++stats_.steps;
  stats_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return !scheduler_.idle(static_cast<int>(running_.size()));
}

EngineStats ServingEngine::run_to_completion() {
  while (step()) {
  }
  stats_.decode_tokens_per_second =
      stats_.wall_seconds > 0 ? double(stats_.decode_tokens) /
                                    stats_.wall_seconds
                              : 0;
  double ft = 0, comp = 0;
  int64_t n = 0;
  for (const auto& r : requests_) {
    if (!r->done()) continue;
    ft += double(r->first_token_step - r->submitted_step);
    comp += double(r->finished_step - r->submitted_step);
    ++n;
  }
  if (n > 0) {
    stats_.mean_first_token_steps = ft / double(n);
    stats_.mean_completion_steps = comp / double(n);
  }
  return stats_;
}

const Request& ServingEngine::request(int id) const {
  QS_CHECK(id >= 0 && id < static_cast<int>(requests_.size()));
  return *requests_[static_cast<size_t>(id)];
}

}  // namespace qserve
