#include "serving/engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/math_util.h"
#include "common/parallel.h"

namespace qserve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ServingEngine::ServingEngine(QuantizedModel* model, const EngineConfig& cfg)
    : model_(model), cfg_(cfg),
      scheduler_(cfg.scheduler, model->kv_cache().config().page_size,
                 model->config().n_layers),
      rng_(cfg.sample_seed) {}

int ServingEngine::submit(std::vector<int> prompt, int max_new_tokens) {
  QS_CHECK(!prompt.empty());
  QS_CHECK_GT(max_new_tokens, 0);
  auto req = std::make_unique<Request>();
  req->id = static_cast<int>(requests_.size());
  req->prompt = std::move(prompt);
  req->max_new_tokens = max_new_tokens;
  req->submitted_step = stats_.steps;
  Request* ptr = req.get();
  requests_.push_back(std::move(req));
  scheduler_.enqueue(ptr);
  return ptr->id;
}

int ServingEngine::sample(const Tensor& logits) {
  const int64_t vocab = logits.numel();
  if (cfg_.temperature <= 0.0f) {
    int64_t best = 0;
    for (int64_t v = 1; v < vocab; ++v)
      if (logits[v] > logits[best]) best = v;
    return static_cast<int>(best);
  }
  std::vector<float> probs(static_cast<size_t>(vocab));
  for (int64_t v = 0; v < vocab; ++v)
    probs[size_t(v)] = logits[v] / cfg_.temperature;
  softmax_inplace(probs.data(), static_cast<int>(vocab));
  float r = rng_.uniform();
  for (size_t v = 0; v < probs.size(); ++v) {
    r -= probs[v];
    if (r <= 0.0f) return static_cast<int>(v);
  }
  return static_cast<int>(vocab - 1);
}

void ServingEngine::finish(Request& r) {
  r.state = RequestState::kFinished;
  r.finished_step = stats_.steps;
  model_->end_sequence(r.seq_handle);
  r.seq_handle = -1;
}

void ServingEngine::evict(Request& r) {
  model_->end_sequence(r.seq_handle);
  r.seq_handle = -1;
  r.prefill_pos = 0;
  r.state = RequestState::kQueued;
  ++r.preemptions;
  ++stats_.preemptions;
}

bool ServingEngine::step() {
  const auto t0 = std::chrono::steady_clock::now();

  StepPlan plan = scheduler_.plan(running_, model_->kv_cache().free_pages());
  // An all-empty plan with work outstanding means the pool can never serve
  // it (e.g. a single request larger than the whole pool): nothing running
  // will free pages and nothing queued can be admitted. Fail loudly rather
  // than spinning.
  QS_CHECK_MSG(!(plan.empty() &&
                 !scheduler_.idle(static_cast<int>(running_.size()))),
               "serving stalled: KV pool too small for the submitted work");

  // Apply evictions (the scheduler already re-queued the victims).
  if (!plan.evicted.empty()) {
    for (Request* r : plan.evicted) evict(*r);
    running_.erase(std::remove_if(running_.begin(), running_.end(),
                                  [](Request* r) {
                                    return r->state == RequestState::kQueued;
                                  }),
                   running_.end());
  }
  // Apply admissions (FCFS order; keeps running_ in admission order).
  for (Request* r : plan.admitted) {
    r->state = RequestState::kPrefilling;
    r->seq_handle = model_->begin_sequence();
    running_.push_back(r);
  }

  // Materialize each prefill share's token slice (prompt, then generated
  // tokens for a request resuming after preemption).
  struct ChunkJob {
    Request* req = nullptr;
    std::vector<int> tokens;
    Tensor logits;
  };
  std::vector<ChunkJob> chunks(plan.prefills.size());
  for (size_t i = 0; i < plan.prefills.size(); ++i) {
    Request* r = plan.prefills[i].req;
    chunks[i].req = r;
    chunks[i].tokens.reserve(static_cast<size_t>(plan.prefills[i].tokens));
    const int64_t prompt_len = static_cast<int64_t>(r->prompt.size());
    for (int64_t p = r->prefill_pos;
         p < r->prefill_pos + plan.prefills[i].tokens; ++p) {
      chunks[i].tokens.push_back(
          p < prompt_len ? r->prompt[static_cast<size_t>(p)]
                         : r->generated[static_cast<size_t>(p - prompt_len)]);
    }
  }

  // Forward passes fan out across requests; each touches only its own
  // sequence (the KV pool bookkeeping is internally locked). Decode and
  // prefill run as separate fan-outs so their wall time is split in stats.
  std::vector<Tensor> decode_logits(plan.decodes.size());
  const auto td = std::chrono::steady_clock::now();
  parallel_for(0, static_cast<int64_t>(plan.decodes.size()), 1,
               [&](int64_t lo, int64_t hi) {
                 for (int64_t i = lo; i < hi; ++i) {
                   Request* r = plan.decodes[static_cast<size_t>(i)];
                   decode_logits[static_cast<size_t>(i)] =
                       model_->decode_step(r->seq_handle,
                                           r->generated.back());
                 }
               });
  if (!plan.decodes.empty()) stats_.decode_seconds += seconds_since(td);

  const auto tp = std::chrono::steady_clock::now();
  parallel_for(0, static_cast<int64_t>(chunks.size()), 1,
               [&](int64_t lo, int64_t hi) {
                 for (int64_t i = lo; i < hi; ++i) {
                   ChunkJob& c = chunks[static_cast<size_t>(i)];
                   c.logits = model_->prefill_chunk(
                       c.req->seq_handle, c.tokens,
                       static_cast<int>(c.req->prefill_pos));
                 }
               });
  if (!chunks.empty()) stats_.prefill_seconds += seconds_since(tp);

  // Sampling and stats stay serial, in admission (running_) order, so the
  // generated streams are identical to the single-thread engine.
  std::unordered_map<const Request*, const Tensor*> decode_out;
  for (size_t i = 0; i < plan.decodes.size(); ++i)
    decode_out.emplace(plan.decodes[i], &decode_logits[i]);
  std::unordered_map<const Request*, ChunkJob*> chunk_out;
  for (auto& c : chunks) chunk_out.emplace(c.req, &c);

  for (Request* r : running_) {
    if (auto it = chunk_out.find(r); it != chunk_out.end()) {
      ChunkJob& c = *it->second;
      r->prefill_pos += static_cast<int64_t>(c.tokens.size());
      stats_.prefill_tokens += static_cast<int64_t>(c.tokens.size());
      if (r->prefill_pos < r->context_len()) continue;  // more chunks to go
      r->state = RequestState::kDecoding;
      const int tok = sample(c.logits);
      r->generated.push_back(tok);
      if (r->first_token_step < 0) {
        r->first_token_step = stats_.steps;
        ++stats_.first_tokens;
      } else {
        // Re-prefill after preemption: this token continues the decode
        // stream the request was producing before it was evicted.
        ++stats_.decode_tokens;
      }
      if (static_cast<int>(r->generated.size()) >= r->max_new_tokens)
        finish(*r);
    } else if (auto dit = decode_out.find(r); dit != decode_out.end()) {
      const int tok = sample(*dit->second);
      r->generated.push_back(tok);
      ++stats_.decode_tokens;
      if (static_cast<int>(r->generated.size()) >= r->max_new_tokens)
        finish(*r);
    }
  }

  stats_.peak_batch =
      std::max(stats_.peak_batch, static_cast<int>(running_.size()));
  running_.erase(std::remove_if(running_.begin(), running_.end(),
                                [](Request* r) { return r->done(); }),
                 running_.end());

  ++stats_.steps;
  stats_.wall_seconds += seconds_since(t0);
  return !scheduler_.idle(static_cast<int>(running_.size()));
}

EngineStats ServingEngine::run_to_completion() {
  while (step()) {
  }
  stats_.decode_tokens_per_second =
      stats_.decode_seconds > 0
          ? double(stats_.decode_tokens) / stats_.decode_seconds
          : 0;
  stats_.prefill_tokens_per_second =
      stats_.prefill_seconds > 0
          ? double(stats_.prefill_tokens) / stats_.prefill_seconds
          : 0;
  double ft = 0, comp = 0;
  int64_t n = 0;
  for (const auto& r : requests_) {
    if (!r->done()) continue;
    ft += double(r->first_token_step - r->submitted_step);
    comp += double(r->finished_step - r->submitted_step);
    ++n;
  }
  if (n > 0) {
    stats_.mean_first_token_steps = ft / double(n);
    stats_.mean_completion_steps = comp / double(n);
  }
  return stats_;
}

const Request& ServingEngine::request(int id) const {
  QS_CHECK(id >= 0 && id < static_cast<int>(requests_.size()));
  return *requests_[static_cast<size_t>(id)];
}

}  // namespace qserve
