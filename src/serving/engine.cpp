#include "serving/engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/math_util.h"
#include "common/parallel.h"

namespace qserve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Constructor-time validation, run before any member dereferences the model.
const EngineConfig& validated(const QuantizedModel* model,
                              const EngineConfig& cfg) {
  QS_CHECK_MSG(model != nullptr, "ServingEngine needs a model");
  QS_CHECK_GE(cfg.temperature, 0.0f);
  return cfg;
}

}  // namespace

ServingEngine::ServingEngine(QuantizedModel* model, const EngineConfig& cfg)
    : model_(model), cfg_(validated(model, cfg)),
      scheduler_(cfg.scheduler, model->kv_cache().config().page_size,
                 model->config().n_layers),
      rng_(cfg.sample_seed) {}

int ServingEngine::submit(std::vector<int> prompt, int max_new_tokens) {
  RequestOptions opts;
  opts.max_new_tokens = max_new_tokens;
  return submit(std::move(prompt), opts, nullptr, nullptr);
}

int ServingEngine::submit(std::vector<int> prompt, const RequestOptions& opts,
                          std::function<void(const Request&, int)> on_token,
                          std::function<void(const Request&)> on_finish) {
  QS_CHECK(!prompt.empty());
  QS_CHECK_GT(opts.max_new_tokens, 0);
  auto req = std::make_unique<Request>();
  req->id = static_cast<int>(requests_.size());
  req->prompt = std::move(prompt);
  req->max_new_tokens = opts.max_new_tokens;
  req->on_token = std::move(on_token);
  req->on_finish = std::move(on_finish);
  req->submitted_step = stats_.steps;
  Request* ptr = req.get();
  requests_.push_back(std::move(req));
  scheduler_.enqueue(ptr);
  return ptr->id;
}

int ServingEngine::sample(const float* logits, int64_t vocab) {
  if (cfg_.temperature <= 0.0f) {
    int64_t best = 0;
    for (int64_t v = 1; v < vocab; ++v)
      if (logits[v] > logits[best]) best = v;
    return static_cast<int>(best);
  }
  std::vector<float> probs(static_cast<size_t>(vocab));
  for (int64_t v = 0; v < vocab; ++v)
    probs[size_t(v)] = logits[v] / cfg_.temperature;
  softmax_inplace(probs.data(), static_cast<int>(vocab));
  float r = rng_.uniform();
  for (size_t v = 0; v < probs.size(); ++v) {
    r -= probs[v];
    if (r <= 0.0f) return static_cast<int>(v);
  }
  return static_cast<int>(vocab - 1);
}

void ServingEngine::deliver(Request& r, int token) {
  r.generated.push_back(token);
  if (r.first_token_step < 0) {
    r.first_token_step = stats_.steps;
    ++stats_.first_tokens;
  } else {
    // Decode output — or a post-preemption re-prefill completion, which
    // continues the decode stream the request was producing before it was
    // evicted.
    ++stats_.decode_tokens;
  }
  if (r.on_token) r.on_token(r, token);
  if (static_cast<int>(r.generated.size()) >= r.max_new_tokens) finish(r);
}

void ServingEngine::finish(Request& r) {
  r.state = RequestState::kFinished;
  r.finished_step = stats_.steps;
  first_token_steps_sum_ += double(r.first_token_step - r.submitted_step);
  completion_steps_sum_ += double(r.finished_step - r.submitted_step);
  ++finished_requests_;
  model_->end_sequence(r.seq_handle);
  r.seq_handle = -1;
  if (r.on_finish) r.on_finish(r);
}

void ServingEngine::evict(Request& r) {
  model_->end_sequence(r.seq_handle);
  r.seq_handle = -1;
  r.prefill_pos = 0;
  r.state = RequestState::kQueued;
  ++r.preemptions;
  ++stats_.preemptions;
}

bool ServingEngine::step() {
  const auto t0 = std::chrono::steady_clock::now();

  StepPlan plan = scheduler_.plan(running_, model_->kv_cache().free_pages());
  // An all-empty plan with work outstanding means the pool can never serve
  // it (e.g. a single request larger than the whole pool): nothing running
  // will free pages and nothing queued can be admitted. Fail loudly rather
  // than spinning.
  QS_CHECK_MSG(!(plan.empty() &&
                 !scheduler_.idle(static_cast<int>(running_.size()))),
               "serving stalled: KV pool too small for the submitted work");

  // Apply evictions (the scheduler already re-queued the victims).
  if (!plan.evicted.empty()) {
    for (Request* r : plan.evicted) evict(*r);
    running_.erase(std::remove_if(running_.begin(), running_.end(),
                                  [](Request* r) {
                                    return r->state == RequestState::kQueued;
                                  }),
                   running_.end());
  }
  // Apply admissions (FCFS order; keeps running_ in admission order).
  for (Request* r : plan.admitted) {
    r->state = RequestState::kPrefilling;
    r->seq_handle = model_->begin_sequence();
    running_.push_back(r);
  }

  // Materialize each prefill share's token slice (prompt, then generated
  // tokens for a request resuming after preemption).
  struct ChunkJob {
    Request* req = nullptr;
    std::vector<int> tokens;
    Tensor logits;             // per-request path: owned storage
    const float* out = nullptr;  // logits of the chunk's last position
  };
  std::vector<ChunkJob> chunks(plan.prefills.size());
  int64_t prefill_rows = 0;
  for (size_t i = 0; i < plan.prefills.size(); ++i) {
    Request* r = plan.prefills[i].req;
    chunks[i].req = r;
    chunks[i].tokens.reserve(static_cast<size_t>(plan.prefills[i].tokens));
    const int64_t prompt_len = static_cast<int64_t>(r->prompt.size());
    for (int64_t p = r->prefill_pos;
         p < r->prefill_pos + plan.prefills[i].tokens; ++p) {
      chunks[i].tokens.push_back(
          p < prompt_len ? r->prompt[static_cast<size_t>(p)]
                         : r->generated[static_cast<size_t>(p - prompt_len)]);
    }
    prefill_rows += static_cast<int64_t>(chunks[i].tokens.size());
  }
  const int64_t decode_rows = static_cast<int64_t>(plan.decodes.size());
  const int64_t step_rows = decode_rows + prefill_rows;

  std::unordered_map<const Request*, const float*> decode_out;
  std::unordered_map<const Request*, ChunkJob*> chunk_out;
  // Logits storage must outlive the sampling loop below: the batched path
  // points rows into step_logits, the per-request path owns decode_logits
  // and the ChunkJobs' logits tensors.
  std::vector<Tensor> decode_logits;
  Tensor step_logits;

  if (cfg_.batched_step) {
    // Lower the StepPlan to one BatchedStep — decode rows first, then the
    // prefill chunks — and execute it as a single stacked forward: one GEMM
    // call per projection per layer covers every row of the step.
    BatchedStep bstep;
    bstep.chunks.reserve(plan.decodes.size() + chunks.size());
    for (Request* r : plan.decodes)
      bstep.chunks.push_back(
          {r->seq_handle,
           {r->generated.back()},
           static_cast<int>(model_->seq_pos(r->seq_handle))});
    for (ChunkJob& c : chunks)
      bstep.chunks.push_back({c.req->seq_handle, c.tokens,
                              static_cast<int>(c.req->prefill_pos)});
    if (!bstep.chunks.empty()) {
      const auto tf = std::chrono::steady_clock::now();
      step_logits = model_->forward_step(bstep);
      // One forward covers both work types; apportion its wall time by row
      // count so the prefill/decode throughput split stays meaningful.
      const double dt = seconds_since(tf);
      stats_.decode_seconds += dt * double(decode_rows) / double(step_rows);
      stats_.prefill_seconds += dt * double(prefill_rows) / double(step_rows);
      for (size_t i = 0; i < plan.decodes.size(); ++i)
        decode_out.emplace(plan.decodes[i],
                           step_logits.row(static_cast<int64_t>(i)));
      for (size_t i = 0; i < chunks.size(); ++i) {
        chunks[i].out = step_logits.row(
            static_cast<int64_t>(plan.decodes.size() + i));
        chunk_out.emplace(chunks[i].req, &chunks[i]);
      }
    }
  } else {
    // Per-request reference path: forward passes fan out across requests;
    // each touches only its own sequence (the KV pool bookkeeping is
    // internally locked). Decode and prefill run as separate fan-outs so
    // their wall time is split in stats.
    decode_logits.resize(plan.decodes.size());
    const auto td = std::chrono::steady_clock::now();
    parallel_for(0, static_cast<int64_t>(plan.decodes.size()), 1,
                 [&](int64_t lo, int64_t hi) {
                   for (int64_t i = lo; i < hi; ++i) {
                     Request* r = plan.decodes[static_cast<size_t>(i)];
                     decode_logits[static_cast<size_t>(i)] =
                         model_->decode_step(r->seq_handle,
                                             r->generated.back());
                   }
                 });
    if (!plan.decodes.empty()) stats_.decode_seconds += seconds_since(td);

    const auto tp = std::chrono::steady_clock::now();
    parallel_for(0, static_cast<int64_t>(chunks.size()), 1,
                 [&](int64_t lo, int64_t hi) {
                   for (int64_t i = lo; i < hi; ++i) {
                     ChunkJob& c = chunks[static_cast<size_t>(i)];
                     c.logits = model_->prefill_chunk(
                         c.req->seq_handle, c.tokens,
                         static_cast<int>(c.req->prefill_pos));
                   }
                 });
    if (!chunks.empty()) stats_.prefill_seconds += seconds_since(tp);

    for (size_t i = 0; i < plan.decodes.size(); ++i)
      decode_out.emplace(plan.decodes[i], decode_logits[i].data());
    for (ChunkJob& c : chunks) {
      c.out = c.logits.data();
      chunk_out.emplace(c.req, &c);
    }
  }

  // Sampling, callbacks, and stats stay serial, in admission (running_)
  // order, so the generated streams — and the RNG consumption order under
  // temperature > 0 — are identical across execution modes and thread
  // counts.
  const int64_t vocab = model_->config().vocab;
  for (Request* r : running_) {
    if (auto it = chunk_out.find(r); it != chunk_out.end()) {
      ChunkJob& c = *it->second;
      r->prefill_pos += static_cast<int64_t>(c.tokens.size());
      stats_.prefill_tokens += static_cast<int64_t>(c.tokens.size());
      if (r->prefill_pos < r->context_len()) continue;  // more chunks to go
      r->state = RequestState::kDecoding;
      deliver(*r, sample(c.out, vocab));
    } else if (auto dit = decode_out.find(r); dit != decode_out.end()) {
      deliver(*r, sample(dit->second, vocab));
    }
  }

  stats_.peak_batch =
      std::max(stats_.peak_batch, static_cast<int>(running_.size()));
  stats_.peak_batch_tokens = std::max(stats_.peak_batch_tokens, step_rows);
  stats_.step_tokens += step_rows;
  running_.erase(std::remove_if(running_.begin(), running_.end(),
                                [](Request* r) { return r->done(); }),
                 running_.end());

  ++stats_.steps;
  stats_.wall_seconds += seconds_since(t0);
  refresh_derived_stats();
  return !scheduler_.idle(static_cast<int>(running_.size()));
}

void ServingEngine::refresh_derived_stats() {
  stats_.decode_tokens_per_second =
      stats_.decode_seconds > 0
          ? double(stats_.decode_tokens) / stats_.decode_seconds
          : 0;
  stats_.prefill_tokens_per_second =
      stats_.prefill_seconds > 0
          ? double(stats_.prefill_tokens) / stats_.prefill_seconds
          : 0;
  stats_.mean_tokens_per_step =
      stats_.steps > 0 ? double(stats_.step_tokens) / double(stats_.steps)
                       : 0;
  if (finished_requests_ > 0) {
    stats_.mean_first_token_steps =
        first_token_steps_sum_ / double(finished_requests_);
    stats_.mean_completion_steps =
        completion_steps_sum_ / double(finished_requests_);
  }
}

EngineStats ServingEngine::drain() {
  while (step()) {
  }
  return stats_;
}

const Request& ServingEngine::request(int id) const {
  QS_CHECK(id >= 0 && id < static_cast<int>(requests_.size()));
  return *requests_[static_cast<size_t>(id)];
}

}  // namespace qserve
