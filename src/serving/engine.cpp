#include "serving/engine.h"

#include <algorithm>
#include <chrono>

#include "common/math_util.h"
#include "common/parallel.h"

namespace qserve {

namespace {

// KV admission must reserve whole pages: a request's tokens land in
// ceil(tokens / page_size) pages per layer, so token-granular reservations
// can admit a request the pool cannot actually hold and strand a running
// request mid-decode. Align the scheduler's rounding to the real page size.
SchedulerConfig page_aligned(SchedulerConfig sched, QuantizedModel* model) {
  QS_CHECK(model != nullptr);
  const int page_size = model->kv_cache().config().page_size;
  // A page_round above page_size but not a multiple of it would still
  // under-reserve (17-token rounding for 16-token pages misses the second
  // page a 17-token request needs), so align to a whole page multiple.
  sched.page_round = static_cast<int>(
      round_up(std::max(sched.page_round, page_size), page_size));
  return sched;
}

}  // namespace

ServingEngine::ServingEngine(QuantizedModel* model, const EngineConfig& cfg)
    : model_(model), cfg_(cfg), scheduler_(page_aligned(cfg.scheduler, model)),
      rng_(cfg.sample_seed) {}

int ServingEngine::submit(std::vector<int> prompt, int max_new_tokens) {
  QS_CHECK(!prompt.empty());
  QS_CHECK_GT(max_new_tokens, 0);
  auto req = std::make_unique<Request>();
  req->id = static_cast<int>(requests_.size());
  req->prompt = std::move(prompt);
  req->max_new_tokens = max_new_tokens;
  req->submitted_step = stats_.steps;
  Request* ptr = req.get();
  requests_.push_back(std::move(req));
  scheduler_.enqueue(ptr);
  return ptr->id;
}

int ServingEngine::sample(const Tensor& logits) {
  const int64_t vocab = logits.numel();
  if (cfg_.temperature <= 0.0f) {
    int64_t best = 0;
    for (int64_t v = 1; v < vocab; ++v)
      if (logits[v] > logits[best]) best = v;
    return static_cast<int>(best);
  }
  std::vector<float> probs(static_cast<size_t>(vocab));
  for (int64_t v = 0; v < vocab; ++v)
    probs[size_t(v)] = logits[v] / cfg_.temperature;
  softmax_inplace(probs.data(), static_cast<int>(vocab));
  float r = rng_.uniform();
  for (size_t v = 0; v < probs.size(); ++v) {
    r -= probs[v];
    if (r <= 0.0f) return static_cast<int>(v);
  }
  return static_cast<int>(vocab - 1);
}

int64_t ServingEngine::reserved_pages(const Request& r) const {
  const auto& kv_cfg = model_->kv_cache().config();
  return ceil_div(static_cast<int64_t>(r.prompt.size()) + r.max_new_tokens,
                  kv_cfg.page_size) *
         std::max(1, model_->config().n_layers);
}

void ServingEngine::finish(Request& r) {
  r.state = RequestState::kFinished;
  r.finished_step = stats_.steps;
  model_->end_sequence(r.seq_handle);
  r.seq_handle = -1;
  committed_pages_ -= reserved_pages(r);
  QS_CHECK_GE(committed_pages_, 0);
}

bool ServingEngine::step() {
  const auto t0 = std::chrono::steady_clock::now();

  // --- admit ---
  // Conservative page-granular admission: every running request holds a
  // reservation for its *maximum* final length (committed_pages_), so the
  // budget offered to the scheduler excludes growth pages that running
  // requests have reserved but not yet allocated. Without that term a new
  // request could take the last free page and strand a running decode.
  const auto& kv = model_->kv_cache();
  const int n_layers = std::max(1, model_->config().n_layers);
  const int64_t future_growth = committed_pages_ - kv.pages_in_use();
  QS_CHECK_GE(future_growth, 0);
  const int64_t admissible_pages = kv.free_pages() - future_growth;
  const int64_t tokens_available =
      admissible_pages > 0
          ? admissible_pages / n_layers * kv.config().page_size
          : 0;
  const auto admitted =
      scheduler_.admit(static_cast<int>(running_.size()), tokens_available);
  for (Request* r : admitted) {
    committed_pages_ += reserved_pages(*r);
    // Admission invariant: reservations never exceed what the pool can hold.
    QS_CHECK_LE(committed_pages_ - kv.pages_in_use(), kv.free_pages());
    r->state = RequestState::kPrefilling;
    r->seq_handle = model_->begin_sequence();
    running_.push_back(r);
  }

  // --- prefill newcomers, decode the rest (one token each) ---
  // The forward passes fan out across requests: each one touches only its
  // own sequence (the KV pool bookkeeping is internally locked). Sampling
  // and stats stay serial, in submission order, so the generated streams are
  // identical to the single-thread engine.
  std::vector<Tensor> logits(running_.size());
  parallel_for(0, static_cast<int64_t>(running_.size()), 1,
               [&](int64_t lo, int64_t hi) {
                 for (int64_t i = lo; i < hi; ++i) {
                   Request* r = running_[static_cast<size_t>(i)];
                   logits[static_cast<size_t>(i)] =
                       r->state == RequestState::kPrefilling
                           ? model_->prefill(r->seq_handle, r->prompt)
                           : model_->decode_step(r->seq_handle,
                                                 r->generated.back());
                 }
               });
  for (size_t i = 0; i < running_.size(); ++i) {
    Request* r = running_[i];
    if (r->state == RequestState::kPrefilling) {
      stats_.prefill_tokens += static_cast<int64_t>(r->prompt.size());
      r->state = RequestState::kDecoding;
    }
    const int tok = sample(logits[i]);
    r->generated.push_back(tok);
    ++stats_.decode_tokens;
    if (r->first_token_step < 0) r->first_token_step = stats_.steps;
    if (static_cast<int>(r->generated.size()) >= r->max_new_tokens) {
      finish(*r);
    }
  }
  stats_.peak_batch =
      std::max(stats_.peak_batch, static_cast<int>(running_.size()));
  running_.erase(std::remove_if(running_.begin(), running_.end(),
                                [](Request* r) { return r->done(); }),
                 running_.end());

  ++stats_.steps;
  stats_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return !scheduler_.idle(static_cast<int>(running_.size()));
}

EngineStats ServingEngine::run_to_completion() {
  while (step()) {
  }
  stats_.decode_tokens_per_second =
      stats_.wall_seconds > 0 ? double(stats_.decode_tokens) /
                                    stats_.wall_seconds
                              : 0;
  double ft = 0, comp = 0;
  int64_t n = 0;
  for (const auto& r : requests_) {
    if (!r->done()) continue;
    ft += double(r->first_token_step - r->submitted_step);
    comp += double(r->finished_step - r->submitted_step);
    ++n;
  }
  if (n > 0) {
    stats_.mean_first_token_steps = ft / double(n);
    stats_.mean_completion_steps = comp / double(n);
  }
  return stats_;
}

const Request& ServingEngine::request(int id) const {
  QS_CHECK(id >= 0 && id < static_cast<int>(requests_.size()));
  return *requests_[static_cast<size_t>(id)];
}

}  // namespace qserve
