#include "serving/engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/math_util.h"
#include "common/parallel.h"

namespace qserve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Constructor-time validation, run before any member dereferences the model.
const EngineConfig& validated(const QuantizedModel* model,
                              const QuantizedModel* draft,
                              const EngineConfig& cfg) {
  QS_CHECK_MSG(model != nullptr, "ServingEngine needs a model");
  QS_CHECK_GE(cfg.temperature, 0.0f);
  if (draft != nullptr) {
    QS_CHECK_MSG(cfg.speculative.lookahead_k >= 1,
                 "speculative decoding needs lookahead_k >= 1");
    QS_CHECK_MSG(cfg.temperature == 0.0f,
                 "speculative decoding requires greedy sampling "
                 "(temperature == 0): the bitwise-identity guarantee rests "
                 "on longest-prefix acceptance of the target's argmax");
    QS_CHECK_MSG(draft->config().vocab == model->config().vocab,
                 "draft and target models must share a vocabulary");
  }
  return cfg;
}

// The scheduler must reserve the verify forward's full k+1-token peak per
// decoding request, not the post-rollback footprint.
SchedulerConfig scheduler_config(const EngineConfig& cfg, bool speculative) {
  SchedulerConfig s = cfg.scheduler;
  if (speculative) s.decode_tokens_per_step = cfg.speculative.lookahead_k + 1;
  return s;
}

// Context token at absolute position p: the prompt, then the generated
// stream (what a resumed or draft-catch-up chunk replays).
int context_token(const Request& r, int64_t p) {
  const int64_t prompt_len = static_cast<int64_t>(r.prompt.size());
  return p < prompt_len ? r.prompt[static_cast<size_t>(p)]
                        : r.generated[static_cast<size_t>(p - prompt_len)];
}

}  // namespace

// One request's prefill share for this step: its materialized token slice
// and, once the forward ran, the logits of the chunk's last position (null
// for a mid-prompt chunk that samples nothing).
struct ServingEngine::ChunkJob {
  Request* req = nullptr;
  std::vector<int> tokens;
  bool completes_prefill = false;
  Tensor logits;               // per-request path: owned storage
  const float* out = nullptr;  // logits of the chunk's last position
};

ServingEngine::ServingEngine(QuantizedModel* model, const EngineConfig& cfg)
    : ServingEngine(model, nullptr, cfg) {}

ServingEngine::ServingEngine(QuantizedModel* model, QuantizedModel* draft,
                             const EngineConfig& cfg)
    : model_(model), draft_(draft), cfg_(validated(model, draft, cfg)),
      scheduler_(scheduler_config(cfg, draft != nullptr),
                 model->kv_cache().config().page_size,
                 model->config().n_layers),
      rng_(cfg.sample_seed) {}

int ServingEngine::submit(std::vector<int> prompt, int max_new_tokens) {
  RequestOptions opts;
  opts.max_new_tokens = max_new_tokens;
  return submit(std::move(prompt), opts, nullptr, nullptr);
}

int ServingEngine::submit(std::vector<int> prompt, const RequestOptions& opts,
                          std::function<void(const Request&, int)> on_token,
                          std::function<void(const Request&)> on_finish) {
  QS_CHECK(!prompt.empty());
  QS_CHECK_GT(opts.max_new_tokens, 0);
  auto req = std::make_unique<Request>();
  req->id = static_cast<int>(requests_.size());
  req->prompt = std::move(prompt);
  req->max_new_tokens = opts.max_new_tokens;
  req->on_token = std::move(on_token);
  req->on_finish = std::move(on_finish);
  req->submitted_step = stats_.steps;
  Request* ptr = req.get();
  requests_.push_back(std::move(req));
  scheduler_.enqueue(ptr);
  return ptr->id;
}

int ServingEngine::sample(const float* logits, int64_t vocab) {
  if (cfg_.temperature <= 0.0f) {
    int64_t best = 0;
    for (int64_t v = 1; v < vocab; ++v)
      if (logits[v] > logits[best]) best = v;
    return static_cast<int>(best);
  }
  std::vector<float> probs(static_cast<size_t>(vocab));
  for (int64_t v = 0; v < vocab; ++v)
    probs[size_t(v)] = logits[v] / cfg_.temperature;
  softmax_inplace(probs.data(), static_cast<int>(vocab));
  float r = rng_.uniform();
  for (size_t v = 0; v < probs.size(); ++v) {
    r -= probs[v];
    if (r <= 0.0f) return static_cast<int>(v);
  }
  return static_cast<int>(vocab - 1);
}

void ServingEngine::deliver(Request& r, int token) {
  r.generated.push_back(token);
  if (r.first_token_step < 0) {
    r.first_token_step = stats_.steps;
    ++stats_.first_tokens;
  } else {
    // Decode output — or a post-preemption re-prefill completion, which
    // continues the decode stream the request was producing before it was
    // evicted.
    ++stats_.decode_tokens;
  }
  if (r.on_token) r.on_token(r, token);
  if (static_cast<int>(r.generated.size()) >= r.max_new_tokens) finish(r);
}

void ServingEngine::finish(Request& r) {
  r.state = RequestState::kFinished;
  r.finished_step = stats_.steps;
  first_token_steps_sum_ += double(r.first_token_step - r.submitted_step);
  completion_steps_sum_ += double(r.finished_step - r.submitted_step);
  ++finished_requests_;
  model_->end_sequence(r.seq_handle);
  r.seq_handle = -1;
  if (r.draft_seq_handle >= 0) {
    draft_->end_sequence(r.draft_seq_handle);
    r.draft_seq_handle = -1;
  }
  if (r.on_finish) r.on_finish(r);
}

void ServingEngine::evict(Request& r) {
  model_->end_sequence(r.seq_handle);
  r.seq_handle = -1;
  if (r.draft_seq_handle >= 0) {
    draft_->end_sequence(r.draft_seq_handle);
    r.draft_seq_handle = -1;
  }
  r.prefill_pos = 0;
  r.state = RequestState::kQueued;
  ++r.preemptions;
  ++stats_.preemptions;
}

void ServingEngine::lower_prefill_chunks(
    BatchedStep& bstep, const std::vector<ChunkJob>& chunks,
    int64_t next_logit_row, std::vector<int64_t>& chunk_logit_row) {
  chunk_logit_row.assign(chunks.size(), -1);
  for (size_t i = 0; i < chunks.size(); ++i) {
    const ChunkJob& c = chunks[i];
    bstep.chunks.push_back({c.req->seq_handle, c.tokens,
                            static_cast<int>(c.req->prefill_pos),
                            c.completes_prefill ? 1 : 0});
    if (c.completes_prefill) chunk_logit_row[i] = next_logit_row++;
  }
}

void ServingEngine::bind_chunk_logits(
    std::vector<ChunkJob>& chunks, const std::vector<int64_t>& chunk_logit_row,
    const Tensor& step_logits) {
  for (size_t i = 0; i < chunks.size(); ++i)
    if (chunk_logit_row[i] >= 0)
      chunks[i].out = step_logits.row(chunk_logit_row[i]);
}

void ServingEngine::handle_prefill_result(Request& r, ChunkJob& c) {
  r.prefill_pos += static_cast<int64_t>(c.tokens.size());
  stats_.prefill_tokens += static_cast<int64_t>(c.tokens.size());
  if (r.prefill_pos < r.context_len()) return;  // more chunks to go
  r.state = RequestState::kDecoding;
  deliver(r, sample(c.out, model_->config().vocab));
}

std::vector<std::vector<int>> ServingEngine::propose_draft_tokens(
    const std::vector<Request*>& decodes) {
  const int k = cfg_.speculative.lookahead_k;
  const int64_t vocab = model_->config().vocab;
  std::vector<std::vector<int>> proposals(decodes.size());
  std::vector<int> prev(decodes.size(), 0);
  // One batched draft forward per lookahead depth across every decoding
  // request — the draft model sees the same GEMM-occupancy benefit as the
  // target. Depth 0 feeds each draft sequence everything it has not
  // appended yet (post-admission: the whole context; steady state: the
  // previous step's rejected-then-re-emitted token plus the pending one),
  // so the draft needs no separately scheduled prefill.
  for (int depth = 0; depth < k; ++depth) {
    BatchedStep ds;
    ds.chunks.reserve(decodes.size());
    for (size_t i = 0; i < decodes.size(); ++i) {
      Request* r = decodes[i];
      StepSeqChunk c;
      c.seq = r->draft_seq_handle;
      c.pos0 = static_cast<int>(draft_->seq_pos(r->draft_seq_handle));
      if (depth == 0) {
        const int64_t ctx = r->context_len();
        for (int64_t p = c.pos0; p < ctx; ++p)
          c.tokens.push_back(context_token(*r, p));
      } else {
        c.tokens.push_back(prev[i]);
      }
      ds.chunks.push_back(std::move(c));
    }
    const Tensor dl = draft_->forward_step(ds);
    for (size_t i = 0; i < decodes.size(); ++i) {
      // Greedy draft: same deterministic argmax as the engine's sampler.
      prev[i] = sample(dl.row(static_cast<int64_t>(i)), vocab);
      proposals[i].push_back(prev[i]);
    }
  }
  return proposals;
}

void ServingEngine::run_speculative_step(const std::vector<Request*>& decodes,
                                         std::vector<ChunkJob>& chunks) {
  const int k = cfg_.speculative.lookahead_k;
  const int64_t vocab = model_->config().vocab;

  // 1. Draft proposals. The draft is decode work: its wall time joins the
  // decode split so speculative decode tok/s pays for the draft honestly.
  std::vector<std::vector<int>> proposals;
  if (!decodes.empty()) {
    const auto td = std::chrono::steady_clock::now();
    proposals = propose_draft_tokens(decodes);
    stats_.decode_seconds += seconds_since(td);
  }

  // 2. One batched target forward: every request's verify span (pending
  // token + k draft candidates, logits at all k+1 positions) stacked with
  // every prefill chunk (logits only where a sample will happen).
  BatchedStep bstep;
  bstep.chunks.reserve(decodes.size() + chunks.size());
  int64_t prefill_rows = 0;
  for (size_t i = 0; i < decodes.size(); ++i) {
    Request* r = decodes[i];
    StepSeqChunk c;
    c.seq = r->seq_handle;
    c.pos0 = static_cast<int>(model_->seq_pos(r->seq_handle));
    c.tokens.reserve(static_cast<size_t>(k) + 1);
    c.tokens.push_back(r->generated.back());
    c.tokens.insert(c.tokens.end(), proposals[i].begin(), proposals[i].end());
    c.logit_rows = k + 1;
    bstep.chunks.push_back(std::move(c));
  }
  // Map each chunk to its row in the logits tensor: verify span i owns rows
  // [i*(k+1), (i+1)*(k+1)); completing prefill chunks follow, one row each.
  std::vector<int64_t> chunk_logit_row;
  lower_prefill_chunks(bstep, chunks,
                       static_cast<int64_t>(decodes.size()) * (k + 1),
                       chunk_logit_row);
  for (const ChunkJob& c : chunks)
    prefill_rows += static_cast<int64_t>(c.tokens.size());
  if (bstep.chunks.empty()) return;

  const int64_t verify_rows = static_cast<int64_t>(decodes.size()) * (k + 1);
  const auto tf = std::chrono::steady_clock::now();
  const Tensor step_logits = model_->forward_step(bstep);
  const double dt = seconds_since(tf);
  stats_.decode_seconds +=
      dt * double(verify_rows) / double(verify_rows + prefill_rows);
  stats_.prefill_seconds +=
      dt * double(prefill_rows) / double(verify_rows + prefill_rows);
  if (!decodes.empty()) ++stats_.speculative_steps;
  bind_chunk_logits(chunks, chunk_logit_row, step_logits);

  std::unordered_map<const Request*, size_t> verify_index;
  for (size_t i = 0; i < decodes.size(); ++i) verify_index.emplace(decodes[i], i);
  std::unordered_map<const Request*, ChunkJob*> chunk_out;
  for (ChunkJob& c : chunks) chunk_out.emplace(c.req, &c);

  // 3. Acceptance, emission, and rollback — serial, in admission order,
  // like every sampling loop in this engine.
  for (Request* r : running_) {
    if (auto it = chunk_out.find(r); it != chunk_out.end()) {
      handle_prefill_result(*r, *it->second);
    } else if (auto vit = verify_index.find(r); vit != verify_index.end()) {
      const int64_t base = static_cast<int64_t>(vit->second) * (k + 1);
      const std::vector<int>& prop = proposals[vit->second];
      // Longest prefix of draft tokens matching the target's own greedy
      // argmax. Row j scored position pos0+j, i.e. the logits the baseline
      // engine would have decoded after consuming prop[0..j-1].
      int accepted = 0;
      while (accepted < k &&
             sample(step_logits.row(base + accepted), vocab) ==
                 prop[static_cast<size_t>(accepted)]) {
        ++accepted;
      }
      r->draft_proposed += k;
      r->draft_accepted += accepted;
      stats_.proposed_tokens += k;
      stats_.accepted_tokens += accepted;
      ++stats_.verify_forwards;
      const int64_t ctx_before = r->context_len();
      // Emit the accepted prefix plus the target's correction/bonus token.
      // Emission may hit max_new_tokens mid-prefix; finish() then frees both
      // sequences and the rollback below is skipped.
      for (int j = 0; j < accepted && !r->done(); ++j)
        deliver(*r, prop[static_cast<size_t>(j)]);
      if (!r->done())
        deliver(*r, sample(step_logits.row(base + accepted), vocab));
      if (!r->done()) {
        // Truncate the rejected tail on both models. The target rolls back
        // to context_len - 1 — exactly the baseline invariant (the newest
        // emitted token is appended by the NEXT verify span). The draft
        // rolls back to its provably-context-matching prefix; depth-0 of the
        // next proposal replays whatever it is still missing.
        model_->truncate_sequence(r->seq_handle, r->context_len() - 1);
        const int64_t draft_len = draft_->seq_pos(r->draft_seq_handle);
        draft_->truncate_sequence(
            r->draft_seq_handle, std::min(draft_len, ctx_before + accepted));
      }
    }
  }
}

bool ServingEngine::step() {
  const auto t0 = std::chrono::steady_clock::now();
  // Attention time is accumulated inside the model(s); the step's share is
  // the delta across this call (target + draft forwards alike).
  const double attn0 =
      model_->attention_seconds() +
      (draft_ ? draft_->attention_seconds() : 0.0);

  StepPlan plan = scheduler_.plan(running_, model_->kv_cache().free_pages());
  // An all-empty plan with work outstanding means the pool can never serve
  // it (e.g. a single request larger than the whole pool): nothing running
  // will free pages and nothing queued can be admitted. Fail loudly rather
  // than spinning.
  QS_CHECK_MSG(!(plan.empty() &&
                 !scheduler_.idle(static_cast<int>(running_.size()))),
               "serving stalled: KV pool too small for the submitted work");

  // Apply evictions (the scheduler already re-queued the victims).
  if (!plan.evicted.empty()) {
    for (Request* r : plan.evicted) evict(*r);
    running_.erase(std::remove_if(running_.begin(), running_.end(),
                                  [](Request* r) {
                                    return r->state == RequestState::kQueued;
                                  }),
                   running_.end());
  }
  // Apply admissions (FCFS order; keeps running_ in admission order).
  for (Request* r : plan.admitted) {
    r->state = RequestState::kPrefilling;
    r->seq_handle = model_->begin_sequence();
    if (speculative()) r->draft_seq_handle = draft_->begin_sequence();
    running_.push_back(r);
  }

  // Materialize each prefill share's token slice (prompt, then generated
  // tokens for a request resuming after preemption).
  std::vector<ChunkJob> chunks(plan.prefills.size());
  int64_t prefill_rows = 0;
  for (size_t i = 0; i < plan.prefills.size(); ++i) {
    Request* r = plan.prefills[i].req;
    chunks[i].req = r;
    chunks[i].tokens.reserve(static_cast<size_t>(plan.prefills[i].tokens));
    for (int64_t p = r->prefill_pos;
         p < r->prefill_pos + plan.prefills[i].tokens; ++p)
      chunks[i].tokens.push_back(context_token(*r, p));
    chunks[i].completes_prefill =
        r->prefill_pos + plan.prefills[i].tokens >= r->context_len();
    prefill_rows += static_cast<int64_t>(chunks[i].tokens.size());
  }
  const int64_t decode_rows =
      static_cast<int64_t>(plan.decodes.size()) *
      (speculative() ? cfg_.speculative.lookahead_k + 1 : 1);
  const int64_t step_rows = decode_rows + prefill_rows;

  if (speculative()) {
    run_speculative_step(plan.decodes, chunks);
  } else {
    std::unordered_map<const Request*, const float*> decode_out;
    std::unordered_map<const Request*, ChunkJob*> chunk_out;
    // Logits storage must outlive the sampling loop below: the batched path
    // points rows into step_logits, the per-request path owns decode_logits
    // and the ChunkJobs' logits tensors.
    std::vector<Tensor> decode_logits;
    Tensor step_logits;

    if (cfg_.batched_step) {
      // Lower the StepPlan to one BatchedStep — decode rows first, then the
      // prefill chunks — and execute it as a single stacked forward: one GEMM
      // call per projection per layer covers every row of the step.
      // Per-row logit selection: decode rows and completing prefill chunks
      // sample, mid-prompt chunks skip the LM head entirely.
      BatchedStep bstep;
      bstep.chunks.reserve(plan.decodes.size() + chunks.size());
      for (Request* r : plan.decodes)
        bstep.chunks.push_back(
            {r->seq_handle,
             {r->generated.back()},
             static_cast<int>(model_->seq_pos(r->seq_handle)),
             /*logit_rows=*/1});
      std::vector<int64_t> chunk_logit_row;
      lower_prefill_chunks(bstep, chunks,
                           static_cast<int64_t>(plan.decodes.size()),
                           chunk_logit_row);
      if (!bstep.chunks.empty()) {
        const auto tf = std::chrono::steady_clock::now();
        step_logits = model_->forward_step(bstep);
        // One forward covers both work types; apportion its wall time by row
        // count so the prefill/decode throughput split stays meaningful.
        const double dt = seconds_since(tf);
        stats_.decode_seconds += dt * double(decode_rows) / double(step_rows);
        stats_.prefill_seconds +=
            dt * double(prefill_rows) / double(step_rows);
        for (size_t i = 0; i < plan.decodes.size(); ++i)
          decode_out.emplace(plan.decodes[i],
                             step_logits.row(static_cast<int64_t>(i)));
        bind_chunk_logits(chunks, chunk_logit_row, step_logits);
        for (ChunkJob& c : chunks) chunk_out.emplace(c.req, &c);
      }
    } else {
      // Per-request reference path: forward passes fan out across requests;
      // each touches only its own sequence (the KV pool bookkeeping is
      // internally locked). Decode and prefill run as separate fan-outs so
      // their wall time is split in stats.
      decode_logits.resize(plan.decodes.size());
      const auto td = std::chrono::steady_clock::now();
      parallel_for(0, static_cast<int64_t>(plan.decodes.size()), 1,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) {
                       Request* r = plan.decodes[static_cast<size_t>(i)];
                       decode_logits[static_cast<size_t>(i)] =
                           model_->decode_step(r->seq_handle,
                                               r->generated.back());
                     }
                   });
      if (!plan.decodes.empty()) stats_.decode_seconds += seconds_since(td);

      const auto tp = std::chrono::steady_clock::now();
      parallel_for(0, static_cast<int64_t>(chunks.size()), 1,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) {
                       ChunkJob& c = chunks[static_cast<size_t>(i)];
                       c.logits = model_->prefill_chunk(
                           c.req->seq_handle, c.tokens,
                           static_cast<int>(c.req->prefill_pos));
                     }
                   });
      if (!chunks.empty()) stats_.prefill_seconds += seconds_since(tp);

      for (size_t i = 0; i < plan.decodes.size(); ++i)
        decode_out.emplace(plan.decodes[i], decode_logits[i].data());
      for (ChunkJob& c : chunks) {
        c.out = c.logits.data();
        chunk_out.emplace(c.req, &c);
      }
    }

    // Sampling, callbacks, and stats stay serial, in admission (running_)
    // order, so the generated streams — and the RNG consumption order under
    // temperature > 0 — are identical across execution modes and thread
    // counts.
    const int64_t vocab = model_->config().vocab;
    for (Request* r : running_) {
      if (auto it = chunk_out.find(r); it != chunk_out.end()) {
        handle_prefill_result(*r, *it->second);
      } else if (auto dit = decode_out.find(r); dit != decode_out.end()) {
        deliver(*r, sample(dit->second, vocab));
      }
    }
  }

  stats_.peak_batch =
      std::max(stats_.peak_batch, static_cast<int>(running_.size()));
  stats_.peak_batch_tokens = std::max(stats_.peak_batch_tokens, step_rows);
  stats_.step_tokens += step_rows;
  running_.erase(std::remove_if(running_.begin(), running_.end(),
                                [](Request* r) { return r->done(); }),
                 running_.end());

  ++stats_.steps;
  stats_.wall_seconds += seconds_since(t0);
  stats_.attention_seconds +=
      model_->attention_seconds() +
      (draft_ ? draft_->attention_seconds() : 0.0) - attn0;
  refresh_derived_stats();
  return !scheduler_.idle(static_cast<int>(running_.size()));
}

void ServingEngine::refresh_derived_stats() {
  stats_.decode_tokens_per_second =
      stats_.decode_seconds > 0
          ? double(stats_.decode_tokens) / stats_.decode_seconds
          : 0;
  stats_.prefill_tokens_per_second =
      stats_.prefill_seconds > 0
          ? double(stats_.prefill_tokens) / stats_.prefill_seconds
          : 0;
  stats_.mean_tokens_per_step =
      stats_.steps > 0 ? double(stats_.step_tokens) / double(stats_.steps)
                       : 0;
  stats_.attention_share =
      stats_.wall_seconds > 0
          ? stats_.attention_seconds / stats_.wall_seconds
          : 0;
  stats_.acceptance_rate =
      stats_.proposed_tokens > 0
          ? double(stats_.accepted_tokens) / double(stats_.proposed_tokens)
          : 0;
  // Only meaningful for a speculative engine (0 otherwise): the baseline
  // spends exactly 1.0 target forwards per decode token by construction.
  stats_.target_forwards_per_decode_token =
      stats_.decode_tokens > 0
          ? double(stats_.verify_forwards) / double(stats_.decode_tokens)
          : 0;
  if (finished_requests_ > 0) {
    stats_.mean_first_token_steps =
        first_token_steps_sum_ / double(finished_requests_);
    stats_.mean_completion_steps =
        completion_steps_sum_ / double(finished_requests_);
  }
}

EngineStats ServingEngine::drain() {
  while (step()) {
  }
  return stats_;
}

const Request& ServingEngine::request(int id) const {
  QS_CHECK(id >= 0 && id < static_cast<int>(requests_.size()));
  return *requests_[static_cast<size_t>(id)];
}

}  // namespace qserve
