#include "serving/engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "common/fault_injection.h"
#include "common/math_util.h"
#include "common/parallel.h"

namespace qserve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Constructor-time validation, run before any member dereferences the model.
const EngineConfig& validated(const QuantizedModel* model,
                              const QuantizedModel* draft,
                              const EngineConfig& cfg) {
  QS_CHECK_MSG(model != nullptr, "ServingEngine needs a model");
  QS_CHECK_GE(cfg.temperature, 0.0f);
  if (draft != nullptr) {
    QS_CHECK_MSG(cfg.speculative.lookahead_k >= 1,
                 "speculative decoding needs lookahead_k >= 1");
    QS_CHECK_MSG(cfg.temperature == 0.0f,
                 "speculative decoding requires greedy sampling "
                 "(temperature == 0): the bitwise-identity guarantee rests "
                 "on longest-prefix acceptance of the target's argmax");
    QS_CHECK_MSG(draft->config().vocab == model->config().vocab,
                 "draft and target models must share a vocabulary");
  }
  return cfg;
}

// The scheduler must reserve the verify forward's full k+1-token peak per
// decoding request, not the post-rollback footprint.
SchedulerConfig scheduler_config(const EngineConfig& cfg, bool speculative) {
  SchedulerConfig s = cfg.scheduler;
  if (speculative) s.decode_tokens_per_step = cfg.speculative.lookahead_k + 1;
  return s;
}

// Context token at absolute position p: the prompt, then the generated
// stream (what a resumed or draft-catch-up chunk replays).
int context_token(const Request& r, int64_t p) {
  const int64_t prompt_len = static_cast<int64_t>(r.prompt.size());
  return p < prompt_len ? r.prompt[static_cast<size_t>(p)]
                        : r.generated[static_cast<size_t>(p - prompt_len)];
}

}  // namespace

// One request's prefill share for this step: its materialized token slice
// and, once the forward ran, the logits of the chunk's last position (null
// for a mid-prompt chunk that samples nothing).
struct ServingEngine::ChunkJob {
  Request* req = nullptr;
  std::vector<int> tokens;
  bool completes_prefill = false;
  Tensor logits;               // per-request path: owned storage
  const float* out = nullptr;  // logits of the chunk's last position
};

ServingEngine::ServingEngine(QuantizedModel* model, const EngineConfig& cfg)
    : ServingEngine(model, nullptr, cfg) {}

ServingEngine::ServingEngine(QuantizedModel* model, QuantizedModel* draft,
                             const EngineConfig& cfg)
    : model_(model), draft_(draft), cfg_(validated(model, draft, cfg)),
      scheduler_(scheduler_config(cfg, draft != nullptr),
                 model->kv_cache().config().page_size,
                 model->config().n_layers),
      rng_(cfg.sample_seed) {
  const SchedulerConfig sc = scheduler_config(cfg, draft != nullptr);
  window_slack_ = std::max<int64_t>(sc.prefill_chunk,
                                    sc.decode_tokens_per_step);
  if (cfg_.prefix_caching) {
    QS_CHECK_MSG(cfg_.prefix_cache_max_entries >= 1,
                 "prefix_cache_max_entries must be >= 1 when caching is on");
    scheduler_.set_admission_hook([this](Request& r) { bind_prefix(r); });
  }
}

int ServingEngine::submit(std::vector<int> prompt, int max_new_tokens) {
  RequestOptions opts;
  opts.max_new_tokens = max_new_tokens;
  return submit(std::move(prompt), opts, nullptr, nullptr);
}

int ServingEngine::submit(std::vector<int> prompt, const RequestOptions& opts,
                          std::function<void(const Request&, int)> on_token,
                          std::function<void(const Request&)> on_finish) {
  return submit_impl(std::move(prompt), opts, std::move(on_token),
                     std::move(on_finish), /*create_on_shed=*/true);
}

int ServingEngine::try_submit(std::vector<int> prompt,
                              const RequestOptions& opts,
                              std::function<void(const Request&, int)> on_token,
                              std::function<void(const Request&)> on_finish) {
  return submit_impl(std::move(prompt), opts, std::move(on_token),
                     std::move(on_finish), /*create_on_shed=*/false);
}

int ServingEngine::submit_impl(std::vector<int> prompt,
                               const RequestOptions& opts,
                               std::function<void(const Request&, int)> on_token,
                               std::function<void(const Request&)> on_finish,
                               bool create_on_shed) {
  // Rejection: conditions retrying can never fix. Checked before the queue
  // caps so an unservable request is reported as kRejected, not shed.
  const KvCacheConfig& kv = model_->kv_cache().config();
  const char* reject = nullptr;
  if (prompt.empty()) {
    reject = "empty prompt";
  } else if (opts.max_new_tokens <= 0) {
    reject = "max_new_tokens must be >= 1";
  } else if (opts.n < 1) {
    reject = "parallel sampling needs n >= 1";
  } else if (opts.attention_window < 0 || opts.sink_tokens < 0) {
    reject = "attention_window and sink_tokens must be >= 0";
  } else if (opts.sink_tokens > 0 && opts.attention_window == 0) {
    reject = "sink_tokens requires a non-zero attention_window";
  } else if (opts.attention_window % kv.page_size != 0 ||
             opts.sink_tokens % kv.page_size != 0) {
    // The ring recycles whole pages; partial-page windows are not supported.
    reject = "attention_window and sink_tokens must be multiples of the KV "
             "page size";
  } else {
    // Larger than the whole KV pool: prefill plus the first decode token can
    // never fit, even with every other request evicted. A windowed request's
    // footprint is bounded by its ring cap (sinks + window + slack) instead
    // of its context length — that bound is what must fit.
    int64_t need = ceil_div(static_cast<int64_t>(prompt.size()) + 1,
                            static_cast<int64_t>(kv.page_size)) *
                   model_->config().n_layers;
    if (opts.attention_window > 0) {
      need = std::min(need, PagedKvCache::window_page_cap(
                                kv, opts.sink_tokens, opts.attention_window,
                                window_slack_) *
                                model_->config().n_layers);
    }
    if (need > kv.max_pages) {
      reject = opts.attention_window > 0
                   ? "windowed KV footprint (sinks + window + scheduling "
                     "slack) exceeds the pool"
                   : "request KV footprint exceeds the pool";
    }
  }
  const bool shed =
      reject == nullptr &&
      ((cfg_.max_queued_requests > 0 &&
        scheduler_.queued() >= cfg_.max_queued_requests) ||
       (cfg_.max_queued_prompt_tokens > 0 &&
        scheduler_.queued_prompt_tokens() +
                static_cast<int64_t>(prompt.size()) >
            cfg_.max_queued_prompt_tokens));
  if (shed && !create_on_shed) return -1;

  auto req = std::make_unique<Request>();
  req->id = static_cast<int>(requests_.size());
  req->prompt = std::move(prompt);
  req->max_new_tokens = opts.max_new_tokens;
  req->deadline_steps = opts.deadline_steps;
  req->ttft_deadline_steps = opts.ttft_deadline_steps;
  req->n_samples = opts.n;
  if (reject == nullptr && opts.attention_window > 0) {
    req->attention_window = opts.attention_window;
    req->sink_tokens = opts.sink_tokens;
    req->window_page_cap = PagedKvCache::window_page_cap(
        kv, opts.sink_tokens, opts.attention_window, window_slack_);
  }
  req->on_token = std::move(on_token);
  req->on_finish = std::move(on_finish);
  req->submitted_step = stats_.steps;
  Request* ptr = req.get();
  requests_.push_back(std::move(req));
  if (reject != nullptr) {
    finish_with(*ptr, FinishReason::kRejected, reject);
  } else if (shed) {
    finish_with(*ptr, FinishReason::kShedOverload, "admission queue full");
  } else {
    if (ptr->attention_window > 0) ++stats_.windowed_requests;
    scheduler_.enqueue(ptr);
    stats_.queue_depth_high_water =
        std::max(stats_.queue_depth_high_water, scheduler_.queued());
  }
  return ptr->id;
}

bool ServingEngine::cancel(int id) {
  QS_CHECK(id >= 0 && id < static_cast<int>(requests_.size()));
  Request& r = *requests_[static_cast<size_t>(id)];
  if (r.done() || r.cancel_requested) return false;
  r.cancel_requested = true;
  pending_cancels_.push_back(id);
  // Inside a step (a callback cancelling a request) the cancellation is
  // deferred to the step's next safe point; outside it applies immediately.
  if (!in_step_ && !applying_cancels_) apply_pending_cancellations();
  return true;
}

void ServingEngine::apply_pending_cancellations() {
  if (pending_cancels_.empty()) return;
  applying_cancels_ = true;
  // on_finish of a cancelled request may cancel further requests; loop until
  // the pending list stays empty.
  while (!pending_cancels_.empty()) {
    std::vector<int> ids;
    ids.swap(pending_cancels_);
    for (int id : ids) {
      Request& r = *requests_[static_cast<size_t>(id)];
      // The request may have finished (e.g. kLength) after the cancellation
      // was requested — the earlier finish stands.
      if (r.done()) continue;
      scheduler_.remove_queued(&r);  // no-op if running
      finish_with(r, FinishReason::kCancelled);
    }
  }
  applying_cancels_ = false;
  prune_finished();
}

void ServingEngine::prune_finished() {
  running_.erase(std::remove_if(running_.begin(), running_.end(),
                                [](Request* r) { return r->done(); }),
                 running_.end());
}

int ServingEngine::sample(const float* logits, int64_t vocab) {
  if (cfg_.temperature <= 0.0f) {
    int64_t best = 0;
    for (int64_t v = 1; v < vocab; ++v)
      if (logits[v] > logits[best]) best = v;
    return static_cast<int>(best);
  }
  std::vector<float> probs(static_cast<size_t>(vocab));
  for (int64_t v = 0; v < vocab; ++v)
    probs[size_t(v)] = logits[v] / cfg_.temperature;
  softmax_inplace(probs.data(), static_cast<int>(vocab));
  float r = rng_.uniform();
  for (size_t v = 0; v < probs.size(); ++v) {
    r -= probs[v];
    if (r <= 0.0f) return static_cast<int>(v);
  }
  return static_cast<int>(vocab - 1);
}

void ServingEngine::deliver(Request& r, int token) {
  r.generated.push_back(token);
  if (r.first_token_step < 0) {
    r.first_token_step = stats_.steps;
    ++stats_.first_tokens;
  } else {
    // Decode output — or a post-preemption re-prefill completion, which
    // continues the decode stream the request was producing before it was
    // evicted.
    ++stats_.decode_tokens;
  }
  if (r.on_token) {
    try {
      r.on_token(r, token);
    } catch (...) {
      // A throwing user callback fails its own request, not the engine: the
      // engine's state is fully consistent here (the token is recorded), so
      // finish this request with kError and keep serving everyone else.
      ++stats_.callback_exceptions;
      finish_with(r, FinishReason::kError, "on_token callback threw");
      return;
    }
  }
  if (static_cast<int>(r.generated.size()) >= r.max_new_tokens)
    finish_with(r, FinishReason::kLength);
}

void ServingEngine::finish_with(Request& r, FinishReason reason,
                                const char* error) {
  QS_CHECK_MSG(!r.done(), "request finished twice");
  r.state = RequestState::kFinished;
  r.finish_reason = reason;
  if (error != nullptr) r.error = error;
  r.finished_step = stats_.steps;
  // Latency means describe served traffic only: a request that never
  // produced a token (shed, rejected, expired/cancelled while queued) has no
  // first-token or completion latency to report.
  if (r.first_token_step >= 0) {
    first_token_steps_sum_ += double(r.first_token_step - r.submitted_step);
    completion_steps_sum_ += double(r.finished_step - r.submitted_step);
    ++served_finished_;
  }
  if (r.seq_handle >= 0) {
    model_->end_sequence(r.seq_handle);
    r.seq_handle = -1;
  }
  if (r.draft_seq_handle >= 0) {
    draft_->end_sequence(r.draft_seq_handle);
    r.draft_seq_handle = -1;
  }
  unpin_prefix(r);
  switch (reason) {
    case FinishReason::kLength: ++stats_.completed; break;
    case FinishReason::kCancelled: ++stats_.cancelled; break;
    case FinishReason::kDeadline: ++stats_.deadline_expired; break;
    case FinishReason::kShedOverload: ++stats_.shed; break;
    case FinishReason::kRejected: ++stats_.rejected; break;
    case FinishReason::kError: ++stats_.errored; break;
    case FinishReason::kNone: QS_CHECK_MSG(false, "finish without a reason");
  }
  if (r.on_finish) {
    try {
      r.on_finish(r);
    } catch (...) {
      // The request is already finished; a throwing on_finish is counted and
      // contained (there is nothing left to fail).
      ++stats_.callback_exceptions;
    }
  }
}

void ServingEngine::evict(Request& r) {
  model_->end_sequence(r.seq_handle);
  r.seq_handle = -1;
  if (r.draft_seq_handle >= 0) {
    draft_->end_sequence(r.draft_seq_handle);
    r.draft_seq_handle = -1;
  }
  // Drop prefix-cache state: the re-admission hook runs a fresh lookup (the
  // cache may have better — or no — entries by then). Recompute-on-resume
  // stays bitwise intact either way: KV bytes for a token prefix are a pure
  // function of the prefix, forked or recomputed.
  unpin_prefix(r);
  r.prefix_src_seq = -1;
  r.prefix_fork_len = 0;
  r.prefix_shared_pages = 0;
  r.prefill_pos = 0;
  r.state = RequestState::kQueued;
  ++r.preemptions;
  ++stats_.preemptions;
}

void ServingEngine::bind_prefix(Request& r) {
  r.prefix_src_seq = -1;
  r.prefix_fork_len = 0;
  r.prefix_shared_pages = 0;
  const int64_t page = model_->kv_cache().config().page_size;
  const auto validate = [this](const PrefixEntry& e) {
    // Generation-checked invalidation: if any page under the entry was
    // reclaimed since insert (a snapshot mismatch), the cached bytes are not
    // the prompt's KV anymore — drop the entry instead of serving them.
    return model_->sequence_page_generations(e.seq) == e.generations;
  };
  const auto release = [this](const PrefixEntry& e) {
    ++stats_.prefix_invalidations;
    model_->end_sequence(e.seq);
  };
  const auto hit = prefix_index_.lookup(r.prompt, validate, release);
  if (!hit) return;
  // Fork full pages only (zero-allocation fork; the partial boundary page's
  // tokens are recomputed), and always leave >= 1 token to prefill so the
  // completing chunk produces the first-token logits.
  int64_t m = std::min(hit->match_len, r.context_len() - 1);
  // A windowed consumer may only fork positions that are full-causal under
  // its own policy: rows at p < sinks + window attend [0, p+1) exactly like
  // full attention, so their KV bytes are policy-independent and shareable.
  // Beyond that the hidden states (and thus KV bytes) diverge — recompute.
  if (r.attention_window > 0)
    m = std::min(m, r.sink_tokens + r.attention_window);
  m = m / page * page;
  if (m <= 0) return;
  prefix_index_.pin(hit->uid);
  r.pinned_prefix_entries.push_back(hit->uid);
  r.prefix_src_seq = hit->seq;
  r.prefix_fork_len = m;
  r.prefix_shared_pages = m / page;
  r.prefill_pos = m;
  ++stats_.prefix_hits;
  stats_.prefix_tokens_reused += m;
  stats_.prefill_tokens_saved += m;
}

void ServingEngine::maybe_insert_prefix(Request& r) {
  if (!cfg_.prefix_caching) return;
  const int64_t page = model_->kv_cache().config().page_size;
  int64_t cached_len = static_cast<int64_t>(r.prompt.size()) / page * page;
  if (r.attention_window > 0) {
    // A windowed donor can only share pages whose KV bytes match what full
    // attention would have produced (rows at p < sinks + window), and whose
    // pages the ring will never recycle under the donor. If the whole prompt
    // fits under sinks + window nothing has been recycled yet and the full
    // aligned prompt is donatable; otherwise only the sink pages are — they
    // are pinned outside the ring for the donor's lifetime.
    const int64_t prompt_len = static_cast<int64_t>(r.prompt.size());
    if (prompt_len > r.sink_tokens + r.attention_window)
      cached_len = std::min(cached_len, r.sink_tokens);
  }
  if (cached_len <= 0) return;                     // prompt shorter than a page
  if (prefix_index_.contains(r.prompt)) return;    // identical key cached
  while (prefix_index_.size() >= cfg_.prefix_cache_max_entries) {
    const auto dead = prefix_index_.evict_lru_unpinned();
    if (!dead) return;  // every entry pinned by in-flight requests; skip
    ++stats_.prefix_evictions;
    model_->end_sequence(dead->seq);
  }
  // Zero-copy donation: the entry forks the request's first cached_len
  // tokens — full pages shared with the donor, which keeps its private
  // partial tail page and decodes on without ever writing a shared page.
  const int seq = model_->fork_sequence(r.seq_handle, cached_len);
  const int64_t pages_per_layer = cached_len / page;
  const int64_t uid = prefix_index_.insert(
      r.prompt, seq, cached_len, model_->sequence_page_generations(seq),
      pages_per_layer * model_->config().n_layers);
  QS_CHECK_GE(uid, 0);  // contains() was checked above
  // The donor now shares its full prompt pages with the entry: record that
  // for the scheduler's eviction-credit arithmetic, and pin the entry so
  // pressure eviction skips it while the donor lives (freeing it would
  // release nothing).
  prefix_index_.pin(uid);
  r.pinned_prefix_entries.push_back(uid);
  r.prefix_shared_pages = std::max(r.prefix_shared_pages, pages_per_layer);
  ++stats_.prefix_insertions;
}

void ServingEngine::unpin_prefix(Request& r) {
  for (const int64_t uid : r.pinned_prefix_entries) prefix_index_.unpin(uid);
  r.pinned_prefix_entries.clear();
}

void ServingEngine::prefix_pressure_evict() {
  if (prefix_index_.size() == 0) return;
  const int64_t page = model_->kv_cache().config().page_size;
  const int64_t decode_tokens =
      speculative() ? cfg_.speculative.lookahead_k + 1
                    : cfg_.scheduler.decode_tokens_per_step;
  // Conservative per-step need: every running request's peak decode append
  // (+1 page for boundary crossing), a full prefill chunk, and one admission
  // hold — if the pool can cover that, the cache is not in the way.
  const int64_t watermark =
      (static_cast<int64_t>(running_.size()) * (ceil_div(decode_tokens, page) + 1) +
       ceil_div(static_cast<int64_t>(cfg_.scheduler.prefill_chunk), page) + 2) *
      model_->config().n_layers;
  while (model_->kv_cache().free_pages() < watermark) {
    const auto dead = prefix_index_.evict_lru_unpinned();
    if (!dead) return;  // nothing reclaimable (all pinned) or index empty
    ++stats_.prefix_evictions;
    model_->end_sequence(dead->seq);
  }
}

void ServingEngine::spawn_siblings(Request& r, const float* logits) {
  const int64_t vocab = model_->config().vocab;
  for (int i = 1; i < r.n_samples; ++i) {
    auto req = std::make_unique<Request>();
    req->id = static_cast<int>(requests_.size());
    req->prompt = r.prompt;
    req->max_new_tokens = r.max_new_tokens;
    req->deadline_steps = r.deadline_steps;
    req->ttft_deadline_steps = r.ttft_deadline_steps;
    req->attention_window = r.attention_window;
    req->sink_tokens = r.sink_tokens;
    req->window_page_cap = r.window_page_cap;
    req->on_token = r.on_token;
    req->on_finish = r.on_finish;
    req->n_samples = r.n_samples;
    req->sample_index = i;
    req->parent_id = r.id;
    req->submitted_step = stats_.steps;
    Request* ptr = req.get();
    requests_.push_back(std::move(req));
    r.sibling_ids.push_back(ptr->id);
    // The sibling's first token is sampled NOW from the primary's prefill
    // logits (all n samples draw from the same distribution; under greedy
    // they are identical). Its KV state materializes at admission — with
    // prefix caching on, the sibling forks the prompt's just-donated pages
    // and prefills only the partial tail + its first token; without it, it
    // re-prefills its context like any preempted request. Both paths build
    // the same bytes, so the streams are independent of the cache state.
    deliver(*ptr, sample(logits, vocab));
    if (!ptr->done()) {
      scheduler_.enqueue(ptr);
      stats_.queue_depth_high_water =
          std::max(stats_.queue_depth_high_water, scheduler_.queued());
    }
  }
}

void ServingEngine::clear_prefix_cache() {
  prefix_index_.clear([this](const PrefixEntry& e) {
    model_->end_sequence(e.seq);
  });
}

void ServingEngine::fault_preempt(const std::vector<Request*>& decodes,
                                  const std::vector<PrefillWork>& prefills) {
  ++stats_.faulted_steps;
  // The aborted forward may have appended a partial chunk for any step
  // participant, but it delivered no tokens (sampling runs strictly after
  // the forwards), so preemption is sufficient AND stream-preserving:
  // end_sequence() discards whatever partial KV state exists, and the
  // recompute-on-resume re-prefill rebuilds it exactly. Non-participants
  // (e.g. admitted this step with a zero-token chunk share) hold no state
  // the fault could have touched and keep running.
  std::unordered_set<Request*> participants;
  for (Request* r : decodes) participants.insert(r);
  for (const PrefillWork& w : prefills) participants.insert(w.req);
  // Reverse admission order: requeue_front()ing youngest-first leaves the
  // queue in FCFS order, same as the scheduler's own eviction policy.
  for (auto it = running_.rbegin(); it != running_.rend(); ++it) {
    Request* r = *it;
    if (participants.count(r) == 0) continue;
    evict(*r);
    scheduler_.requeue_front(r);
  }
  running_.erase(std::remove_if(running_.begin(), running_.end(),
                                [](Request* r) {
                                  return r->state == RequestState::kQueued;
                                }),
                 running_.end());
}

void ServingEngine::lower_prefill_chunks(
    BatchedStep& bstep, const std::vector<ChunkJob>& chunks,
    int64_t next_logit_row, std::vector<int64_t>& chunk_logit_row) {
  chunk_logit_row.assign(chunks.size(), -1);
  for (size_t i = 0; i < chunks.size(); ++i) {
    const ChunkJob& c = chunks[i];
    bstep.chunks.push_back({c.req->seq_handle, c.tokens,
                            static_cast<int>(c.req->prefill_pos),
                            c.completes_prefill ? 1 : 0});
    if (c.completes_prefill) chunk_logit_row[i] = next_logit_row++;
  }
}

void ServingEngine::bind_chunk_logits(
    std::vector<ChunkJob>& chunks, const std::vector<int64_t>& chunk_logit_row,
    const Tensor& step_logits) {
  for (size_t i = 0; i < chunks.size(); ++i)
    if (chunk_logit_row[i] >= 0)
      chunks[i].out = step_logits.row(chunk_logit_row[i]);
}

void ServingEngine::handle_prefill_result(Request& r, ChunkJob& c) {
  r.prefill_pos += static_cast<int64_t>(c.tokens.size());
  stats_.prefill_tokens += static_cast<int64_t>(c.tokens.size());
  if (r.prefill_pos < r.context_len()) return;  // more chunks to go
  r.state = RequestState::kDecoding;
  // Donate the prompt's KV prefix BEFORE delivering: deliver may finish the
  // request (max_new_tokens == 1) and free its sequence, and the donation
  // must fork while the KV state is live. Sibling forks are decided before
  // deliver for the same reason, but spawned after it so the RNG draws in
  // stream order: primary's token first, then siblings ascending.
  maybe_insert_prefix(r);
  const bool spawn = r.n_samples > 1 && r.sample_index == 0 &&
                     !r.forks_spawned && r.generated.empty();
  deliver(r, sample(c.out, model_->config().vocab));
  if (spawn) {
    r.forks_spawned = true;
    spawn_siblings(r, c.out);
  }
}

std::vector<std::vector<int>> ServingEngine::propose_draft_tokens(
    const std::vector<Request*>& decodes) {
  const int k = cfg_.speculative.lookahead_k;
  const int64_t vocab = model_->config().vocab;
  std::vector<std::vector<int>> proposals(decodes.size());
  std::vector<int> prev(decodes.size(), 0);
  // One batched draft forward per lookahead depth across every decoding
  // request — the draft model sees the same GEMM-occupancy benefit as the
  // target. Depth 0 feeds each draft sequence everything it has not
  // appended yet (post-admission: the whole context; steady state: the
  // previous step's rejected-then-re-emitted token plus the pending one),
  // so the draft needs no separately scheduled prefill.
  for (int depth = 0; depth < k; ++depth) {
    BatchedStep ds;
    ds.chunks.reserve(decodes.size());
    for (size_t i = 0; i < decodes.size(); ++i) {
      Request* r = decodes[i];
      StepSeqChunk c;
      c.seq = r->draft_seq_handle;
      c.pos0 = static_cast<int>(draft_->seq_pos(r->draft_seq_handle));
      if (depth == 0) {
        const int64_t ctx = r->context_len();
        for (int64_t p = c.pos0; p < ctx; ++p)
          c.tokens.push_back(context_token(*r, p));
      } else {
        c.tokens.push_back(prev[i]);
      }
      ds.chunks.push_back(std::move(c));
    }
    const Tensor dl = draft_->forward_step(ds);
    for (size_t i = 0; i < decodes.size(); ++i) {
      // Greedy draft: same deterministic argmax as the engine's sampler.
      prev[i] = sample(dl.row(static_cast<int64_t>(i)), vocab);
      proposals[i].push_back(prev[i]);
    }
  }
  return proposals;
}

void ServingEngine::run_speculative_step(const std::vector<Request*>& decodes,
                                         std::vector<ChunkJob>& chunks) {
  const int k = cfg_.speculative.lookahead_k;
  const int64_t vocab = model_->config().vocab;

  // 1. Draft proposals. The draft is decode work: its wall time joins the
  // decode split so speculative decode tok/s pays for the draft honestly.
  std::vector<std::vector<int>> proposals;
  if (!decodes.empty()) {
    const auto td = std::chrono::steady_clock::now();
    proposals = propose_draft_tokens(decodes);
    stats_.decode_seconds += seconds_since(td);
  }

  // 2. One batched target forward: every request's verify span (pending
  // token + k draft candidates, logits at all k+1 positions) stacked with
  // every prefill chunk (logits only where a sample will happen).
  BatchedStep bstep;
  bstep.chunks.reserve(decodes.size() + chunks.size());
  int64_t prefill_rows = 0;
  for (size_t i = 0; i < decodes.size(); ++i) {
    Request* r = decodes[i];
    StepSeqChunk c;
    c.seq = r->seq_handle;
    c.pos0 = static_cast<int>(model_->seq_pos(r->seq_handle));
    c.tokens.reserve(static_cast<size_t>(k) + 1);
    c.tokens.push_back(r->generated.back());
    c.tokens.insert(c.tokens.end(), proposals[i].begin(), proposals[i].end());
    c.logit_rows = k + 1;
    bstep.chunks.push_back(std::move(c));
  }
  // Map each chunk to its row in the logits tensor: verify span i owns rows
  // [i*(k+1), (i+1)*(k+1)); completing prefill chunks follow, one row each.
  std::vector<int64_t> chunk_logit_row;
  lower_prefill_chunks(bstep, chunks,
                       static_cast<int64_t>(decodes.size()) * (k + 1),
                       chunk_logit_row);
  for (const ChunkJob& c : chunks)
    prefill_rows += static_cast<int64_t>(c.tokens.size());
  if (bstep.chunks.empty()) return;

  const int64_t verify_rows = static_cast<int64_t>(decodes.size()) * (k + 1);
  const auto tf = std::chrono::steady_clock::now();
  const Tensor step_logits = model_->forward_step(bstep);
  const double dt = seconds_since(tf);
  stats_.decode_seconds +=
      dt * double(verify_rows) / double(verify_rows + prefill_rows);
  stats_.prefill_seconds +=
      dt * double(prefill_rows) / double(verify_rows + prefill_rows);
  if (!decodes.empty()) ++stats_.speculative_steps;
  bind_chunk_logits(chunks, chunk_logit_row, step_logits);

  std::unordered_map<const Request*, size_t> verify_index;
  for (size_t i = 0; i < decodes.size(); ++i) verify_index.emplace(decodes[i], i);
  std::unordered_map<const Request*, ChunkJob*> chunk_out;
  for (ChunkJob& c : chunks) chunk_out.emplace(c.req, &c);

  // 3. Acceptance, emission, and rollback — serial, in admission order,
  // like every sampling loop in this engine.
  for (Request* r : running_) {
    if (auto it = chunk_out.find(r); it != chunk_out.end()) {
      handle_prefill_result(*r, *it->second);
    } else if (auto vit = verify_index.find(r); vit != verify_index.end()) {
      const int64_t base = static_cast<int64_t>(vit->second) * (k + 1);
      const std::vector<int>& prop = proposals[vit->second];
      // Longest prefix of draft tokens matching the target's own greedy
      // argmax. Row j scored position pos0+j, i.e. the logits the baseline
      // engine would have decoded after consuming prop[0..j-1].
      int accepted = 0;
      while (accepted < k &&
             sample(step_logits.row(base + accepted), vocab) ==
                 prop[static_cast<size_t>(accepted)]) {
        ++accepted;
      }
      r->draft_proposed += k;
      r->draft_accepted += accepted;
      stats_.proposed_tokens += k;
      stats_.accepted_tokens += accepted;
      ++stats_.verify_forwards;
      const int64_t ctx_before = r->context_len();
      // Emit the accepted prefix plus the target's correction/bonus token.
      // Emission may hit max_new_tokens mid-prefix; finish() then frees both
      // sequences and the rollback below is skipped.
      for (int j = 0; j < accepted && !r->done(); ++j)
        deliver(*r, prop[static_cast<size_t>(j)]);
      if (!r->done())
        deliver(*r, sample(step_logits.row(base + accepted), vocab));
      if (!r->done()) {
        // Truncate the rejected tail on both models. The target rolls back
        // to context_len - 1 — exactly the baseline invariant (the newest
        // emitted token is appended by the NEXT verify span). The draft
        // rolls back to its provably-context-matching prefix; depth-0 of the
        // next proposal replays whatever it is still missing.
        model_->truncate_sequence(r->seq_handle, r->context_len() - 1);
        const int64_t draft_len = draft_->seq_pos(r->draft_seq_handle);
        draft_->truncate_sequence(
            r->draft_seq_handle, std::min(draft_len, ctx_before + accepted));
      }
    }
  }
}

bool ServingEngine::step() {
  const auto t0 = std::chrono::steady_clock::now();
  // Attention time is accumulated inside the model(s); the step's share is
  // the delta across this call (target + draft forwards alike).
  const double attn0 =
      model_->attention_seconds() +
      (draft_ ? draft_->attention_seconds() : 0.0);
  const double comm0 = model_->tp_comm_seconds() +
                       (draft_ ? draft_->tp_comm_seconds() : 0.0);

  // Mark the step in progress so cancel() from inside a callback defers to
  // this step's safe points instead of mutating mid-flight state.
  struct StepGuard {
    bool& flag;
    explicit StepGuard(bool& f) : flag(f) { flag = true; }
    ~StepGuard() { flag = false; }
  } step_guard(in_step_);
  apply_pending_cancellations();

  // Under page pressure, cached prefixes are reclaimed LRU-first BEFORE the
  // plan sees the free-page count — the cache must never cause a running
  // request to be preempted.
  prefix_pressure_evict();

  StepPlan plan = scheduler_.plan(running_, model_->kv_cache().free_pages(),
                                  stats_.steps);
  stats_.queue_depth_high_water =
      std::max(stats_.queue_depth_high_water, scheduler_.queued());

  // Retire the requests the scheduler removed this step, BEFORE executing:
  // the plan's page budget assumes their sequences are freed.
  if (!plan.expired.empty() || !plan.stalled.empty()) {
    for (Request* r : plan.expired) finish_with(*r, FinishReason::kDeadline);
    for (Request* r : plan.stalled)
      finish_with(*r, FinishReason::kError,
                  "KV pool cannot serve this request's next step");
    prune_finished();
  }

  // Livelock backstop. The scheduler converts every stuck *running* request
  // to `stalled`, and submit-time validation rejects requests larger than
  // the pool, so an all-empty plan with work outstanding should be
  // unreachable. If it ever happens anyway (a queued request the idle pool
  // still cannot admit), fail that request, not the process.
  if (plan.empty() && plan.expired.empty() && plan.stalled.empty() &&
      !scheduler_.idle(static_cast<int>(running_.size()))) {
    Request* head = scheduler_.queued_front();
    QS_CHECK_MSG(running_.empty() && head != nullptr,
                 "serving stalled: scheduler planned no work and retired "
                 "none");
    scheduler_.remove_queued(head);
    finish_with(*head, FinishReason::kError,
                "KV pool cannot admit this request");
  }

  // Apply evictions (the scheduler already re-queued the victims).
  if (!plan.evicted.empty()) {
    for (Request* r : plan.evicted) evict(*r);
    running_.erase(std::remove_if(running_.begin(), running_.end(),
                                  [](Request* r) {
                                    return r->state == RequestState::kQueued;
                                  }),
                   running_.end());
  }
  // Apply admissions (FCFS order; keeps running_ in admission order). A
  // prefix-cache hit (bound by the admission hook during plan()) forks the
  // cached entry's full pages — refcounts go up, nothing is copied or
  // allocated, so this cannot fault and the plan's page arithmetic is exact.
  for (Request* r : plan.admitted) {
    r->state = RequestState::kPrefilling;
    if (r->prefix_src_seq >= 0) {
      r->seq_handle = model_->fork_sequence(r->prefix_src_seq,
                                            r->prefix_fork_len);
      r->prefix_src_seq = -1;
      r->prefix_fork_len = 0;
    } else {
      r->seq_handle = model_->begin_sequence();
    }
    // Install the sliding window before any token is appended (bind_prefix
    // clamps a forked prefix under sinks + window, so the cache's
    // before-exceeding-the-ring precondition always holds). Re-admission
    // after preemption reinstalls the identical geometry, so the recomputed
    // ring state — and the token stream — is bitwise the uninterrupted run's.
    // The draft model (speculative decoding) stays full-attention.
    if (r->attention_window > 0)
      model_->set_sequence_window(r->seq_handle, r->sink_tokens,
                                  r->attention_window, window_slack_);
    if (speculative()) r->draft_seq_handle = draft_->begin_sequence();
    running_.push_back(r);
  }

  // Materialize each prefill share's token slice (prompt, then generated
  // tokens for a request resuming after preemption).
  std::vector<ChunkJob> chunks(plan.prefills.size());
  int64_t prefill_rows = 0;
  for (size_t i = 0; i < plan.prefills.size(); ++i) {
    Request* r = plan.prefills[i].req;
    chunks[i].req = r;
    chunks[i].tokens.reserve(static_cast<size_t>(plan.prefills[i].tokens));
    for (int64_t p = r->prefill_pos;
         p < r->prefill_pos + plan.prefills[i].tokens; ++p)
      chunks[i].tokens.push_back(context_token(*r, p));
    chunks[i].completes_prefill =
        r->prefill_pos + plan.prefills[i].tokens >= r->context_len();
    prefill_rows += static_cast<int64_t>(chunks[i].tokens.size());
  }
  const int64_t decode_rows =
      static_cast<int64_t>(plan.decodes.size()) *
      (speculative() ? cfg_.speculative.lookahead_k + 1 : 1);
  const int64_t step_rows = decode_rows + prefill_rows;

  // Execute. Injected faults (fault::kEngineStep here; kv_alloc / kv_append
  // inside the forwards) abort execution strictly before any sampling, so
  // converting them to preemption of the step's participants loses no
  // delivered token and recompute-on-resume keeps every stream bitwise
  // intact. Only FaultInjectedError is caught — a genuine CheckError still
  // means a broken invariant and must abort.
  bool faulted = false;
  try {
    if (step_rows > 0) fault::maybe_fail(fault::kEngineStep);
    if (speculative()) {
      run_speculative_step(plan.decodes, chunks);
    } else {
      run_normal_step(plan.decodes, chunks, decode_rows, prefill_rows);
    }
  } catch (const FaultInjectedError&) {
    faulted = true;
  }
  if (faulted) fault_preempt(plan.decodes, plan.prefills);
  // Cancellations requested by this step's callbacks.
  apply_pending_cancellations();

  if (!faulted) {
    stats_.peak_batch =
        std::max(stats_.peak_batch, static_cast<int>(running_.size()));
    stats_.peak_batch_tokens = std::max(stats_.peak_batch_tokens, step_rows);
    stats_.step_tokens += step_rows;
  }
  prune_finished();

  ++stats_.steps;
  stats_.wall_seconds += seconds_since(t0);
  stats_.attention_seconds +=
      model_->attention_seconds() +
      (draft_ ? draft_->attention_seconds() : 0.0) - attn0;
  stats_.comm_seconds += model_->tp_comm_seconds() +
                         (draft_ ? draft_->tp_comm_seconds() : 0.0) - comm0;
  refresh_derived_stats();
  return !scheduler_.idle(static_cast<int>(running_.size()));
}

void ServingEngine::run_normal_step(const std::vector<Request*>& decodes,
                                    std::vector<ChunkJob>& chunks,
                                    int64_t decode_rows,
                                    int64_t prefill_rows) {
  const int64_t step_rows = decode_rows + prefill_rows;
  std::unordered_map<const Request*, const float*> decode_out;
  std::unordered_map<const Request*, ChunkJob*> chunk_out;
  // Logits storage must outlive the sampling loop below: the batched path
  // points rows into step_logits, the per-request path owns decode_logits
  // and the ChunkJobs' logits tensors.
  std::vector<Tensor> decode_logits;
  Tensor step_logits;

  if (cfg_.batched_step) {
    // Lower the StepPlan to one BatchedStep — decode rows first, then the
    // prefill chunks — and execute it as a single stacked forward: one GEMM
    // call per projection per layer covers every row of the step.
    // Per-row logit selection: decode rows and completing prefill chunks
    // sample, mid-prompt chunks skip the LM head entirely.
    BatchedStep bstep;
    bstep.chunks.reserve(decodes.size() + chunks.size());
    for (Request* r : decodes)
      bstep.chunks.push_back(
          {r->seq_handle,
           {r->generated.back()},
           static_cast<int>(model_->seq_pos(r->seq_handle)),
           /*logit_rows=*/1});
    std::vector<int64_t> chunk_logit_row;
    lower_prefill_chunks(bstep, chunks,
                         static_cast<int64_t>(decodes.size()),
                         chunk_logit_row);
    if (!bstep.chunks.empty()) {
      const auto tf = std::chrono::steady_clock::now();
      step_logits = model_->forward_step(bstep);
      // One forward covers both work types; apportion its wall time by row
      // count so the prefill/decode throughput split stays meaningful.
      const double dt = seconds_since(tf);
      stats_.decode_seconds += dt * double(decode_rows) / double(step_rows);
      stats_.prefill_seconds += dt * double(prefill_rows) / double(step_rows);
      for (size_t i = 0; i < decodes.size(); ++i)
        decode_out.emplace(decodes[i],
                           step_logits.row(static_cast<int64_t>(i)));
      bind_chunk_logits(chunks, chunk_logit_row, step_logits);
      for (ChunkJob& c : chunks) chunk_out.emplace(c.req, &c);
    }
  } else {
    // Per-request reference path: forward passes fan out across requests;
    // each touches only its own sequence (the KV pool bookkeeping is
    // internally locked). Decode and prefill run as separate fan-outs so
    // their wall time is split in stats.
    decode_logits.resize(decodes.size());
    const auto td = std::chrono::steady_clock::now();
    parallel_for(0, static_cast<int64_t>(decodes.size()), 1,
                 [&](int64_t lo, int64_t hi) {
                   for (int64_t i = lo; i < hi; ++i) {
                     Request* r = decodes[static_cast<size_t>(i)];
                     decode_logits[static_cast<size_t>(i)] =
                         model_->decode_step(r->seq_handle,
                                             r->generated.back());
                   }
                 });
    if (!decodes.empty()) stats_.decode_seconds += seconds_since(td);

    const auto tp = std::chrono::steady_clock::now();
    parallel_for(0, static_cast<int64_t>(chunks.size()), 1,
                 [&](int64_t lo, int64_t hi) {
                   for (int64_t i = lo; i < hi; ++i) {
                     ChunkJob& c = chunks[static_cast<size_t>(i)];
                     c.logits = model_->prefill_chunk(
                         c.req->seq_handle, c.tokens,
                         static_cast<int>(c.req->prefill_pos));
                   }
                 });
    if (!chunks.empty()) stats_.prefill_seconds += seconds_since(tp);

    for (size_t i = 0; i < decodes.size(); ++i)
      decode_out.emplace(decodes[i], decode_logits[i].data());
    for (ChunkJob& c : chunks) {
      c.out = c.logits.data();
      chunk_out.emplace(c.req, &c);
    }
  }

  // Sampling, callbacks, and stats stay serial, in admission (running_)
  // order, so the generated streams — and the RNG consumption order under
  // temperature > 0 — are identical across execution modes and thread
  // counts.
  const int64_t vocab = model_->config().vocab;
  for (Request* r : running_) {
    if (auto it = chunk_out.find(r); it != chunk_out.end()) {
      handle_prefill_result(*r, *it->second);
    } else if (auto dit = decode_out.find(r); dit != decode_out.end()) {
      deliver(*r, sample(dit->second, vocab));
    }
  }
}

void ServingEngine::refresh_derived_stats() {
  stats_.decode_tokens_per_second =
      stats_.decode_seconds > 0
          ? double(stats_.decode_tokens) / stats_.decode_seconds
          : 0;
  stats_.prefill_tokens_per_second =
      stats_.prefill_seconds > 0
          ? double(stats_.prefill_tokens) / stats_.prefill_seconds
          : 0;
  stats_.mean_tokens_per_step =
      stats_.steps > 0 ? double(stats_.step_tokens) / double(stats_.steps)
                       : 0;
  stats_.attention_share =
      stats_.wall_seconds > 0
          ? stats_.attention_seconds / stats_.wall_seconds
          : 0;
  stats_.acceptance_rate =
      stats_.proposed_tokens > 0
          ? double(stats_.accepted_tokens) / double(stats_.proposed_tokens)
          : 0;
  // Only meaningful for a speculative engine (0 otherwise): the baseline
  // spends exactly 1.0 target forwards per decode token by construction.
  stats_.target_forwards_per_decode_token =
      stats_.decode_tokens > 0
          ? double(stats_.verify_forwards) / double(stats_.decode_tokens)
          : 0;
  if (served_finished_ > 0) {
    stats_.mean_first_token_steps =
        first_token_steps_sum_ / double(served_finished_);
    stats_.mean_completion_steps =
        completion_steps_sum_ / double(served_finished_);
  }
  const double shard_max =
      model_->tp_shard_max_seconds() +
      (draft_ ? draft_->tp_shard_max_seconds() : 0.0);
  const double shard_mean =
      model_->tp_shard_mean_seconds() +
      (draft_ ? draft_->tp_shard_mean_seconds() : 0.0);
  stats_.shard_imbalance = shard_mean > 0 ? shard_max / shard_mean : 0;
  stats_.cow_page_copies = model_->kv_cache().cow_page_copies();
  stats_.shared_pages = model_->kv_cache().shared_pages();
  stats_.kv_recycled_pages = model_->kv_cache().recycled_pages();
  stats_.prefix_cache_entries = prefix_index_.size();
  stats_.prefix_cache_pages = prefix_index_.pages();
}

EngineStats ServingEngine::drain() {
  while (step()) {
  }
  return stats_;
}

const Request& ServingEngine::request(int id) const {
  QS_CHECK(id >= 0 && id < static_cast<int>(requests_.size()));
  return *requests_[static_cast<size_t>(id)];
}

}  // namespace qserve
