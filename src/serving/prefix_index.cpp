#include "serving/prefix_index.h"

#include <algorithm>

#include "common/check.h"

namespace qserve {

PrefixIndex::~PrefixIndex() = default;

int64_t PrefixIndex::first_entry_in_subtree(const Node* n) {
  if (n->entry_uid >= 0) return n->entry_uid;
  for (const auto& [tok, kid] : n->kids) {
    (void)tok;
    const int64_t uid = first_entry_in_subtree(kid.get());
    if (uid >= 0) return uid;
  }
  return -1;
}

void PrefixIndex::touch(Stored& s) {
  lru_.erase(s.lru_it);
  lru_.push_front(s.entry.uid);
  s.lru_it = lru_.begin();
}

std::optional<PrefixIndex::Hit> PrefixIndex::lookup(
    const std::vector<int>& prompt,
    const std::function<bool(const PrefixEntry&)>& validate,
    const std::function<void(const PrefixEntry&)>& on_release) {
  for (;;) {
    // Walk as deep as the prompt matches. `matched` counts prompt tokens
    // consumed; `sub` is the deepest node whose subtree shares those tokens.
    const Node* sub = &root_;
    size_t matched = 0;
    for (;;) {
      if (matched == prompt.size()) break;
      const auto it = sub->kids.find(prompt[matched]);
      if (it == sub->kids.end()) break;
      const Node* kid = it->second.get();
      size_t j = 0;
      while (j < kid->edge.size() && matched < prompt.size() &&
             kid->edge[j] == prompt[matched]) {
        ++j;
        ++matched;
      }
      sub = kid;  // every entry under `kid` shares prompt[0, matched)
      if (j < kid->edge.size()) break;  // stopped mid-edge
    }
    if (matched == 0) return std::nullopt;
    const int64_t uid = first_entry_in_subtree(sub);
    if (uid < 0) {
      // Reachable only from the root (entry-less branches are pruned).
      QS_CHECK_MSG(sub == &root_, "prefix tree branch without entries");
      return std::nullopt;
    }
    Stored& s = entries_.at(uid);
    if (validate && !validate(s.entry)) {
      const PrefixEntry dead = erase_entry(uid);
      if (on_release) on_release(dead);
      continue;  // retry against the pruned tree
    }
    touch(s);
    Hit hit;
    hit.uid = uid;
    hit.seq = s.entry.seq;
    hit.match_len =
        std::min<int64_t>(static_cast<int64_t>(matched), s.entry.cached_len);
    return hit;
  }
}

int64_t PrefixIndex::insert(std::vector<int> key, int seq, int64_t cached_len,
                            std::vector<uint32_t> generations, int64_t pages) {
  QS_CHECK_MSG(!key.empty(), "prefix index key must be non-empty");
  QS_CHECK(cached_len >= 0 &&
           cached_len <= static_cast<int64_t>(key.size()));
  Node* n = &root_;
  size_t i = 0;
  while (i < key.size()) {
    auto it = n->kids.find(key[i]);
    if (it == n->kids.end()) {
      // No shared edge: hang the whole remainder as one leaf.
      auto leaf = std::make_unique<Node>();
      leaf->edge.assign(key.begin() + static_cast<std::ptrdiff_t>(i),
                        key.end());
      leaf->parent = n;
      Node* raw = leaf.get();
      n->kids.emplace(key[i], std::move(leaf));
      n = raw;
      i = key.size();
      break;
    }
    Node* kid = it->second.get();
    size_t j = 0;
    while (j < kid->edge.size() && i < key.size() && kid->edge[j] == key[i]) {
      ++j;
      ++i;
    }
    if (j == kid->edge.size()) {
      n = kid;  // consumed the whole edge, descend
      continue;
    }
    // Key diverges mid-edge: split `kid` at j. `mid` takes the shared edge
    // prefix and adopts `kid` (whose edge shrinks to the suffix).
    auto mid = std::make_unique<Node>();
    mid->edge.assign(kid->edge.begin(),
                     kid->edge.begin() + static_cast<std::ptrdiff_t>(j));
    mid->parent = n;
    std::unique_ptr<Node> kid_owned = std::move(it->second);
    kid_owned->edge.erase(kid_owned->edge.begin(),
                          kid_owned->edge.begin() +
                              static_cast<std::ptrdiff_t>(j));
    kid_owned->parent = mid.get();
    mid->kids.emplace(kid_owned->edge.front(), std::move(kid_owned));
    Node* mid_raw = mid.get();
    it->second = std::move(mid);
    n = mid_raw;
    // The rest of the key (if any) becomes a fresh leaf under mid; the loop
    // re-enters with no matching kid and creates it.
  }
  if (n->entry_uid >= 0) return -1;  // identical key already cached

  const int64_t uid = next_uid_++;
  n->entry_uid = uid;
  Stored s;
  s.entry.uid = uid;
  s.entry.key = std::move(key);
  s.entry.cached_len = cached_len;
  s.entry.seq = seq;
  s.entry.generations = std::move(generations);
  s.entry.pages = pages;
  s.node = n;
  lru_.push_front(uid);
  s.lru_it = lru_.begin();
  total_pages_ += pages;
  entries_.emplace(uid, std::move(s));
  return uid;
}

bool PrefixIndex::contains(const std::vector<int>& key) const {
  const Node* n = &root_;
  size_t i = 0;
  while (i < key.size()) {
    const auto it = n->kids.find(key[i]);
    if (it == n->kids.end()) return false;
    const Node* kid = it->second.get();
    size_t j = 0;
    while (j < kid->edge.size() && i < key.size() && kid->edge[j] == key[i]) {
      ++j;
      ++i;
    }
    if (j < kid->edge.size()) return false;  // diverged or key ended mid-edge
    n = kid;
  }
  return n->entry_uid >= 0;
}

void PrefixIndex::pin(int64_t uid) { ++entries_.at(uid).entry.pins; }

void PrefixIndex::unpin(int64_t uid) {
  const auto it = entries_.find(uid);
  if (it == entries_.end()) return;  // entry invalidated while pinned
  QS_CHECK_GT(it->second.entry.pins, 0);
  --it->second.entry.pins;
}

PrefixEntry PrefixIndex::erase_entry(int64_t uid) {
  auto it = entries_.find(uid);
  QS_CHECK(it != entries_.end());
  Stored& s = it->second;
  lru_.erase(s.lru_it);
  total_pages_ -= s.entry.pages;
  Node* n = s.node;
  n->entry_uid = -1;
  // Prune entry-less leaf chains so lookups never land in a dead subtree.
  while (n != &root_ && n->entry_uid < 0 && n->kids.empty()) {
    Node* parent = n->parent;
    parent->kids.erase(n->edge.front());
    n = parent;
  }
  PrefixEntry dead = std::move(s.entry);
  entries_.erase(it);
  return dead;
}

std::optional<PrefixEntry> PrefixIndex::evict_lru_unpinned() {
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    if (entries_.at(*it).entry.pins == 0) return erase_entry(*it);
  }
  return std::nullopt;
}

void PrefixIndex::clear(
    const std::function<void(const PrefixEntry&)>& on_release) {
  while (!lru_.empty()) {
    const PrefixEntry dead = erase_entry(lru_.back());
    if (on_release) on_release(dead);
  }
  QS_CHECK(entries_.empty());
  QS_CHECK_EQ(total_pages_, 0);
}

}  // namespace qserve
