// Radix-tree (compressed trie) index over prompt token IDs mapping prompt
// prefixes to cached KV sequences — the lookup side of prefix caching.
//
// Each entry maps a full prompt (the key) to a model sequence holding the
// KV state of the prompt's first `cached_len` tokens (the engine caches
// page-aligned prefixes so a cache hit forks full pages only and never
// allocates). lookup() walks the tree for the longest common prefix between
// a new prompt and any cached key, then returns the first entry (in
// deterministic child order) of the deepest reached subtree — every entry
// below that point shares at least the matched tokens, so any of them is a
// valid fork source for `min(match, cached_len)` tokens.
//
// The index is passive bookkeeping: it owns no KV state and calls no model
// API. The engine drives the lifecycle — it forks a sequence INTO the index
// at insert, frees the sequence an evicted/invalidated entry returns, and
// revalidates an entry's stored page-generation snapshot on every hit (a
// mismatch means a page under the entry was reclaimed; the entry is dropped
// instead of serving another request's bytes). Entries pinned by in-flight
// requests (which share pages with the entry) are skipped by LRU eviction:
// freeing them would release no pages while the sharer lives.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace qserve {

// One cached prefix. `seq` is a model sequence handle whose KV covers
// key[0, cached_len); `generations` is the page-generation snapshot taken at
// insert; `pages` is the entry's per-model page footprint (for observability
// and page-pressure accounting).
struct PrefixEntry {
  int64_t uid = -1;
  std::vector<int> key;
  int64_t cached_len = 0;
  int seq = -1;
  std::vector<uint32_t> generations;
  int64_t pages = 0;
  int pins = 0;
};

class PrefixIndex {
 public:
  struct Hit {
    int64_t uid = -1;
    int seq = -1;
    // Common-prefix tokens between the prompt and the entry's key, clamped
    // to the entry's cached length — the most KV the caller may fork.
    int64_t match_len = 0;
  };

  PrefixIndex() = default;
  ~PrefixIndex();
  PrefixIndex(const PrefixIndex&) = delete;
  PrefixIndex& operator=(const PrefixIndex&) = delete;

  // Longest-prefix lookup; touches the returned entry's LRU position.
  // `validate` (optional) is consulted before an entry is returned; an entry
  // failing validation is erased, handed to `on_release` (the caller frees
  // its KV sequence), and the lookup continues with the next candidate.
  // Returns nullopt when no entry shares >= 1 token with the prompt.
  std::optional<Hit> lookup(
      const std::vector<int>& prompt,
      const std::function<bool(const PrefixEntry&)>& validate = nullptr,
      const std::function<void(const PrefixEntry&)>& on_release = nullptr);

  // Insert an entry for `key` -> (seq, cached_len). Returns the new entry's
  // uid, or -1 if an entry with the identical key already exists (the caller
  // keeps ownership of `seq` and should free it).
  int64_t insert(std::vector<int> key, int seq, int64_t cached_len,
                 std::vector<uint32_t> generations, int64_t pages);

  bool contains(const std::vector<int>& key) const;

  // Pin/unpin an entry against LRU eviction while a request shares pages
  // with it. unpin() of an already-erased uid is a no-op (an entry can be
  // invalidated while pinned — pinning is an eviction-policy hint, not a
  // correctness requirement; page refcounts protect the shared bytes).
  void pin(int64_t uid);
  void unpin(int64_t uid);

  // Remove the least-recently-used unpinned entry and return it (the caller
  // frees its KV sequence). nullopt when the index is empty or every entry
  // is pinned.
  std::optional<PrefixEntry> evict_lru_unpinned();

  // Remove every entry, handing each to `on_release`.
  void clear(const std::function<void(const PrefixEntry&)>& on_release);

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  // Sum of entries' page footprints (pages may be shared with running
  // requests or other entries, so this is an upper bound on exclusively-held
  // pages).
  int64_t pages() const { return total_pages_; }

 private:
  struct Node {
    std::vector<int> edge;  // tokens on the edge from parent to this node
    std::map<int, std::unique_ptr<Node>> kids;  // keyed by first edge token
    Node* parent = nullptr;
    int64_t entry_uid = -1;
  };

  struct Stored {
    PrefixEntry entry;
    Node* node = nullptr;
    std::list<int64_t>::iterator lru_it;
  };

  void touch(Stored& s);
  PrefixEntry erase_entry(int64_t uid);
  // First entry uid in `n`'s subtree, deterministic (node entry first, then
  // children in ascending first-token order). -1 if none.
  static int64_t first_entry_in_subtree(const Node* n);

  Node root_;
  std::unordered_map<int64_t, Stored> entries_;
  std::list<int64_t> lru_;  // front = most recently used
  int64_t next_uid_ = 0;
  int64_t total_pages_ = 0;
};

}  // namespace qserve
