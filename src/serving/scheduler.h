// Decode-priority continuous-batching scheduler with chunked prefill and
// preemption (§5.1: QServe supports in-flight batching like vLLM / TRT-LLM;
// chunking follows Sarathi-style stall-free scheduling, preemption follows
// vLLM's recompute-on-resume).
//
// Each engine step asks the scheduler for a StepPlan:
//   1. Requests past their deadline (deadline_steps / ttft_deadline_steps)
//      are expired first — running or queued — so their pages are free
//      before any reservation or admission decision this step.
//   2. Every decoding request decodes one token. Their page needs are
//      reserved *first*; if the pool cannot serve them, the youngest running
//      request is evicted back to the *front* of the queue (its pages free
//      immediately, it re-prefills prompt + generated-so-far on re-admission)
//      — queued prefill work can never starve a running decode.
//   3. Admission is FCFS and incremental: a queued request joins as soon as
//      the batch has room and at least one token's worth of pages is left
//      after the decode reservations. No max-final-length reservation — the
//      pool is allowed to over-commit, and preemption resolves the pressure.
//   4. At most `prefill_chunk` prompt tokens are prefilled per step, shared
//      across the batch shortest-remaining-first (so a short prompt's TTFT
//      is never stuck behind a long prompt's prefill), with the oldest
//      prefilling request guaranteed at least half the chunk (so a stream
//      of short arrivals cannot starve a long prompt). Every share is
//      clamped to the pages actually free, so a planned step can never
//      exhaust the pool mid-forward.
//   5. A request that cannot make progress even with the whole pool to
//      itself is moved to `stalled` instead of livelocking the loop — the
//      engine finishes it with FinishReason::kError and every other request
//      keeps running.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "serving/request.h"

namespace qserve {

struct SchedulerConfig {
  int max_batch = 8;
  // Maximum prompt tokens prefilled per engine step, shared across requests.
  int prefill_chunk = 128;
  // KV tokens one decode step may append per decoding request before its
  // rollback (if any). 1 for classic decode; a speculative engine sets this
  // to lookahead_k + 1, because a verify forward appends the pending token
  // plus k draft candidates before truncating the rejected tail. plan()
  // reserves pages for the full peak, so admission and preemption stay sound
  // even though the post-rollback footprint is usually smaller.
  int decode_tokens_per_step = 1;
};

// One request's slice of this step's prefill chunk budget.
struct PrefillWork {
  Request* req = nullptr;
  int tokens = 0;
};

// Work for one engine step. A request appears in at most one list.
struct StepPlan {
  std::vector<Request*> decodes;     // one token each, always all decoders
  std::vector<PrefillWork> prefills; // chunk shares, includes newly admitted
  std::vector<Request*> admitted;    // FCFS order
  std::vector<Request*> evicted;     // youngest first; already re-queued
  // Requests the scheduler removed from service this step. The engine must
  // finish them (kDeadline / kError) and free their KV sequences *before*
  // executing the step: their pages were credited to this plan's budget.
  std::vector<Request*> expired;     // past a deadline; no longer queued/live
  std::vector<Request*> stalled;     // cannot progress even alone in the pool
  // "No execution work" — expired/stalled are excluded on purpose: a step
  // that only retires requests still counts as progress for the engine's
  // livelock check but runs no forward.
  bool empty() const {
    return decodes.empty() && prefills.empty() && admitted.empty() &&
           evicted.empty();
  }
};

class Scheduler {
 public:
  // `page_size` / `n_layers` give the KV pool geometry: appending one token
  // to a request costs one page per layer whenever its length crosses a
  // page boundary.
  Scheduler(const SchedulerConfig& cfg, int page_size, int n_layers);

  void enqueue(Request* r) {
    queue_.push_back(r);
    queued_prompt_tokens_ += r->context_len();
  }
  // Push an evicted/fault-recovered request back to the queue front so it
  // outranks never-admitted requests on re-admission.
  void requeue_front(Request* r) {
    queue_.push_front(r);
    queued_prompt_tokens_ += r->context_len();
  }
  // Remove `r` from the queue if it is queued (cancellation of a not-yet-
  // admitted request). Returns false if `r` was not in the queue.
  bool remove_queued(Request* r);

  // Consulted once per admitted request, after it is popped from the queue
  // and before the prefill chunk is distributed. The engine's prefix-cache
  // hook lives here: on a hit it sets r.prefill_pos to the match length (so
  // this very plan's chunk shares and page arithmetic already see the
  // smaller remaining prefill) and stashes the fork source the engine
  // consumes when it applies the admission. The hook must not touch KV
  // state — forking happens engine-side, after the plan is returned.
  void set_admission_hook(std::function<void(Request&)> hook) {
    admission_hook_ = std::move(hook);
  }

  // Plan one step. `running` is the engine's batch in admission order (the
  // eviction victim is its back); `free_pages` is the pool's current free
  // page count; `current_step` is the engine step index used for deadline
  // expiry. Evicted requests are pushed to the queue front (oldest evictee
  // first); admitted requests are popped. The engine applies the
  // corresponding model-side state changes.
  StepPlan plan(const std::vector<Request*>& running, int64_t free_pages,
                int64_t current_step = 0);

  bool idle(int running) const { return queue_.empty() && running == 0; }
  Request* queued_front() const {
    return queue_.empty() ? nullptr : queue_.front();
  }
  int64_t queued() const { return static_cast<int64_t>(queue_.size()); }
  // Context tokens (prompt + any pre-eviction generation) across the queue,
  // maintained incrementally for O(1) admission-cap checks.
  int64_t queued_prompt_tokens() const { return queued_prompt_tokens_; }

  // KV tokens `r` has appended so far (used for page-cost arithmetic; also
  // handy for tests). During prefill this is the chunk progress; during
  // decode the last sampled token is not yet appended.
  static int64_t kv_len(const Request& r);

 private:
  int64_t grow_pages(int64_t len, int64_t tokens) const;
  // Bounded-footprint variant: a request with a sliding window
  // (window_page_cap > 0) never holds more than cap pages per layer — once
  // the ring is full, appends recycle pages in place instead of allocating,
  // so growth beyond the cap costs nothing. This is what lets a 32k
  // generation admit into a pool sized for ~5k tokens.
  int64_t grow_pages(const Request& r, int64_t tokens) const;
  int64_t held_pages(const Request& r) const;
  // Tokens that fit in the last partially-filled page plus `free` new pages.
  int64_t token_capacity(int64_t len, int64_t free) const;
  // Per-request variant: a windowed request whose remaining page growth fits
  // in `free` can absorb any number of tokens (the ring recycles from there).
  int64_t token_capacity(const Request& r, int64_t free) const;
  static bool past_deadline(const Request& r, int64_t current_step);

  SchedulerConfig cfg_;
  int page_size_;
  int n_layers_;
  std::deque<Request*> queue_;
  int64_t queued_prompt_tokens_ = 0;
  std::function<void(Request&)> admission_hook_;
};

}  // namespace qserve
