// Decode-priority continuous-batching scheduler with chunked prefill and
// preemption (§5.1: QServe supports in-flight batching like vLLM / TRT-LLM;
// chunking follows Sarathi-style stall-free scheduling, preemption follows
// vLLM's recompute-on-resume).
//
// Each engine step asks the scheduler for a StepPlan:
//   1. Every decoding request decodes one token. Their page needs are
//      reserved *first*; if the pool cannot serve them, the youngest running
//      request is evicted back to the *front* of the queue (its pages free
//      immediately, it re-prefills prompt + generated-so-far on re-admission)
//      — queued prefill work can never starve a running decode.
//   2. Admission is FCFS and incremental: a queued request joins as soon as
//      the batch has room and at least one token's worth of pages is left
//      after the decode reservations. No max-final-length reservation — the
//      pool is allowed to over-commit, and preemption resolves the pressure.
//   3. At most `prefill_chunk` prompt tokens are prefilled per step, shared
//      across the batch shortest-remaining-first (so a short prompt's TTFT
//      is never stuck behind a long prompt's prefill), with the oldest
//      prefilling request guaranteed at least half the chunk (so a stream
//      of short arrivals cannot starve a long prompt). Every share is
//      clamped to the pages actually free, so a planned step can never
//      exhaust the pool mid-forward.
#pragma once

#include <deque>
#include <vector>

#include "serving/request.h"

namespace qserve {

struct SchedulerConfig {
  int max_batch = 8;
  // Maximum prompt tokens prefilled per engine step, shared across requests.
  int prefill_chunk = 128;
  // KV tokens one decode step may append per decoding request before its
  // rollback (if any). 1 for classic decode; a speculative engine sets this
  // to lookahead_k + 1, because a verify forward appends the pending token
  // plus k draft candidates before truncating the rejected tail. plan()
  // reserves pages for the full peak, so admission and preemption stay sound
  // even though the post-rollback footprint is usually smaller.
  int decode_tokens_per_step = 1;
};

// One request's slice of this step's prefill chunk budget.
struct PrefillWork {
  Request* req = nullptr;
  int tokens = 0;
};

// Work for one engine step. A request appears in at most one list.
struct StepPlan {
  std::vector<Request*> decodes;     // one token each, always all decoders
  std::vector<PrefillWork> prefills; // chunk shares, includes newly admitted
  std::vector<Request*> admitted;    // FCFS order
  std::vector<Request*> evicted;     // youngest first; already re-queued
  bool empty() const {
    return decodes.empty() && prefills.empty() && admitted.empty() &&
           evicted.empty();
  }
};

class Scheduler {
 public:
  // `page_size` / `n_layers` give the KV pool geometry: appending one token
  // to a request costs one page per layer whenever its length crosses a
  // page boundary.
  Scheduler(const SchedulerConfig& cfg, int page_size, int n_layers);

  void enqueue(Request* r) { queue_.push_back(r); }

  // Plan one step. `running` is the engine's batch in admission order (the
  // eviction victim is its back); `free_pages` is the pool's current free
  // page count. Evicted requests are pushed to the queue front (oldest
  // evictee first); admitted requests are popped. The engine applies the
  // corresponding model-side state changes.
  StepPlan plan(const std::vector<Request*>& running, int64_t free_pages);

  bool idle(int running) const { return queue_.empty() && running == 0; }
  int64_t queued() const { return static_cast<int64_t>(queue_.size()); }

  // KV tokens `r` has appended so far (used for page-cost arithmetic; also
  // handy for tests). During prefill this is the chunk progress; during
  // decode the last sampled token is not yet appended.
  static int64_t kv_len(const Request& r);

 private:
  int64_t grow_pages(int64_t len, int64_t tokens) const;
  int64_t held_pages(const Request& r) const;
  // Tokens that fit in the last partially-filled page plus `free` new pages.
  int64_t token_capacity(int64_t len, int64_t free) const;

  SchedulerConfig cfg_;
  int page_size_;
  int n_layers_;
  std::deque<Request*> queue_;
};

}  // namespace qserve
