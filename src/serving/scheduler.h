// Continuous (in-flight) batching scheduler (§5.1: QServe supports in-flight
// batching like vLLM / TRT-LLM).
//
// Policy: FCFS admission. A queued request is admitted when (a) the running
// batch is below `max_batch` and (b) the KV pool can hold the request at its
// *maximum* final length (prompt + max_new_tokens) — the conservative
// admission that guarantees a running request never has to be evicted.
// Finished sequences release their pages immediately, letting the next
// queued request join mid-flight (iteration-level scheduling, as in Orca).
#pragma once

#include <deque>
#include <vector>

#include "serving/request.h"

namespace qserve {

struct SchedulerConfig {
  int max_batch = 8;
  // KV reservations are rounded up to whole pages of this many tokens.
  int page_round = 1;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerConfig& cfg) : cfg_(cfg) {}

  void enqueue(Request* r) { queue_.push_back(r); }

  // Admit queued requests that fit. `kv_tokens_available` is a callback-free
  // snapshot: the number of tokens the KV pool can still hold; admission
  // reserves (prompt + max_new) tokens per request.
  std::vector<Request*> admit(int running, int64_t kv_tokens_available);

  bool idle(int running) const { return queue_.empty() && running == 0; }
  int64_t queued() const { return static_cast<int64_t>(queue_.size()); }

 private:
  SchedulerConfig cfg_;
  std::deque<Request*> queue_;
};

}  // namespace qserve
