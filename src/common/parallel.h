// Persistent thread-pool parallel-for for the CPU hot paths (GEMM main
// loops, batched attention, the serving engine's per-request fan-out).
//
// Design notes:
//  - The pool is created lazily on the first parallel_for and lives for the
//    process; workers sleep on a condition variable between regions.
//  - The caller thread participates in the region, so `num_threads() == 1`
//    (or a single chunk) degenerates to a plain inline call with zero
//    synchronization.
//  - Regions do not nest: a parallel_for issued from inside a worker chunk
//    runs the body inline on that worker. The serving engine exploits this —
//    fanning out across requests serializes the per-request GEMM loops, while
//    a single-request step still parallelizes inside the kernels.
//  - Exceptions thrown by the body (e.g. QS_CHECK) are captured and rethrown
//    on the calling thread after the region drains, so QS_CHECK keeps its
//    crash-over-corruption contract under parallel execution.
//
// Thread count resolution order (first match wins, clamped to >= 1):
//  1. set_num_threads(n) — programmatic override, resizes the pool.
//  2. QSERVE_NUM_THREADS environment variable, read once at pool creation.
//  3. std::thread::hardware_concurrency().
#pragma once

#include <cstdint>
#include <functional>

namespace qserve {

// Body of a parallel region: processes the half-open index range [lo, hi).
using ParallelRangeFn = std::function<void(int64_t lo, int64_t hi)>;

// Total threads participating in a region (pool workers + caller), >= 1.
int num_threads();

// Override the thread count (resizes the pool). n <= 0 resets to the
// env/hardware default. Must not be called from inside a parallel region.
void set_num_threads(int n);

// Partition [begin, end) into contiguous chunks of at least `grain` indices
// (the final chunk may be smaller) and invoke fn on each chunk, spread over
// the pool. Every index is covered exactly once; fn must be safe to call
// concurrently on disjoint ranges. Empty ranges are a no-op. grain < 1 is
// treated as 1.
void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const ParallelRangeFn& fn);

// True while executing inside a parallel_for worker chunk (nested regions
// run inline). Exposed for tests and for code that must avoid re-entry.
bool in_parallel_region();

}  // namespace qserve
