// Persistent thread-pool parallel-for for the CPU hot paths (GEMM main
// loops, batched attention, the serving engine's per-request fan-out), plus
// the shard-partitioned execution substrate for tensor parallelism.
//
// Design notes:
//  - The global pool is created lazily on the first parallel_for and lives
//    for the process; workers sleep on a condition variable between regions.
//  - The caller thread participates in the region, so `num_threads() == 1`
//    (or a single chunk) degenerates to a plain inline call with zero
//    synchronization.
//  - NO-NESTING RULE: regions do not nest. A parallel_for issued from inside
//    a worker chunk runs the body inline on that worker — it must never try
//    to re-enter a pool, because the pool's threads are already committed to
//    the enclosing region and re-entry would deadlock on the region lock.
//    The same rule covers shard-local pools: a shard body may issue
//    parallel_for (it runs on that shard's private pool), but a region
//    issued from inside one of the shard pool's worker chunks again runs
//    inline. parallel_for enforces this by checking in_parallel_region()
//    before dispatch; ThreadPool::run carries a Debug QS_DCHECK as a
//    regression guard for any future caller that bypasses parallel_for.
//    The serving engine exploits inline nesting — fanning out across
//    requests serializes the per-request GEMM loops, while a
//    single-request step still parallelizes inside the kernels.
//  - Exceptions thrown by the body (e.g. QS_CHECK) are captured and rethrown
//    on the calling thread after the region drains, so QS_CHECK keeps its
//    crash-over-corruption contract under parallel execution.
//
// Thread count resolution order (first match wins, clamped to >= 1):
//  1. set_num_threads(n) — programmatic override, resizes the pool.
//  2. QSERVE_NUM_THREADS environment variable, read once at pool creation.
//  3. std::thread::hardware_concurrency().
//
// Tensor-parallel sharding (run_sharded): the global thread budget T =
// num_threads() is partitioned into n_shards disjoint shard-local pools of
// max(1, T / n_shards) threads each. run_sharded(n, fn) executes fn(0..n-1)
// concurrently — shard 0 on the caller, shards 1..n-1 on persistent leader
// threads — and while a shard body runs, parallel_for on that thread (and
// num_threads()) resolve to the shard's private pool. Shard count resolution
// mirrors the thread count: set_tp_shards(n) overrides, else the
// QSERVE_TP_SHARDS environment variable, else 1.
#pragma once

#include <cstdint>
#include <functional>

namespace qserve {

// Body of a parallel region: processes the half-open index range [lo, hi).
using ParallelRangeFn = std::function<void(int64_t lo, int64_t hi)>;

// Body of a sharded region: executes shard `shard` of [0, n_shards).
using ShardFn = std::function<void(int shard)>;

// Total threads participating in a region issued from this thread (pool
// workers + caller), >= 1. Inside a run_sharded shard body this is the
// shard-local pool's size, not the global budget.
int num_threads();

// Override the global thread count (resizes the pool). n <= 0 resets to the
// env/hardware default. Must not be called from inside a parallel region or
// a shard body.
void set_num_threads(int n);

// Partition [begin, end) into contiguous chunks of at least `grain` indices
// (the final chunk may be smaller) and invoke fn on each chunk, spread over
// the pool this thread resolves to. Every index is covered exactly once; fn
// must be safe to call concurrently on disjoint ranges. Empty ranges are a
// no-op. grain < 1 is treated as 1.
void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const ParallelRangeFn& fn);

// True while executing inside a parallel_for worker chunk (nested regions
// run inline). Exposed for tests and for code that must avoid re-entry.
bool in_parallel_region();

// Requested tensor-parallel shard count, >= 1. Resolution order:
//  1. set_tp_shards(n), 2. QSERVE_TP_SHARDS (read once), 3. 1.
// This is a *request*: consumers (QuantizedModel) clamp it to what the model
// geometry supports, which is safe because sharded execution is bitwise
// identical at every shard count.
int tp_shards();

// Override the shard count. n <= 0 resets to the env default.
void set_tp_shards(int n);

// Run fn(0), ..., fn(n_shards - 1) concurrently, one shard per thread: the
// caller runs shard 0, persistent leader threads run the rest. While a shard
// body executes, parallel_for/num_threads() on that thread resolve to the
// shard's private pool of max(1, num_threads() / n_shards) threads, so the
// shards compute on disjoint partitions of the global thread budget.
//
// Nesting follows the no-nesting rule above: a run_sharded issued from
// inside a parallel region or another shard body runs every shard inline on
// the caller, sequentially in shard order — it never deadlocks. n_shards == 1
// also runs inline (on the caller's normal pool, zero synchronization).
//
// If shard_seconds is non-null it must point at n_shards doubles; each
// shard's wall time is written there (imbalance telemetry). If any shard
// throws, the exception from the lowest-numbered throwing shard is rethrown
// after every shard has finished.
void run_sharded(int n_shards, const ShardFn& fn,
                 double* shard_seconds = nullptr);

// The shard index this thread is executing (-1 outside run_sharded).
int current_shard();

}  // namespace qserve
