// Deterministic, site-keyed fault injection for robustness testing.
//
// A fault *site* is a named point in the code (e.g. KV page allocation) that
// asks should_fail() before doing its work. Sites are armed either from the
// environment — QSERVE_FAULT=<site>:<rate>[:<seed>][,<site>:<rate>[:<seed>]...]
// — or programmatically via configure()/set_site() (which override the env;
// tests use this to pin exact fault schedules). Each site keeps its own draw
// counter; draw n fails iff hash(seed, n) < rate, so a given (site, rate,
// seed) triple produces the same injected-fault indices on every run. Under
// concurrency each call still receives a unique draw index atomically, so the
// *set* of injected indices over N calls is deterministic; which thread's
// call lands on a given index follows the interleaving.
//
// Armed sites throw FaultInjectedError — a type distinct from CheckError so
// recovery code (the serving engine converts injected KV-allocation failures
// into preemption) can catch injected faults without masking genuine
// invariant violations.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace qserve {

class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : std::runtime_error("injected fault at site '" + site + "'"),
        site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

namespace fault {

// Well-known site names (callers may also mint their own).
inline constexpr const char* kKvAlloc = "kv_alloc";     // page allocation
inline constexpr const char* kKvAppend = "kv_append";   // token append entry
inline constexpr const char* kEngineStep = "engine_step";  // step execution

// True iff this draw of `site` should fail. Cheap no-op (one relaxed atomic
// load) when no site is armed. The first query lazily arms sites from
// QSERVE_FAULT unless configure()/set_site()/clear() ran first.
bool should_fail(const char* site);

// should_fail() + throw FaultInjectedError(site) on a hit.
void maybe_fail(const char* site);

// Replace the armed sites with `spec` (same syntax as QSERVE_FAULT; "" or
// whitespace disarms everything). Throws CheckError on a malformed spec.
void configure(const std::string& spec);

// Arm (or re-arm, resetting counters) one site. rate in [0, 1].
void set_site(const std::string& site, double rate, uint64_t seed);

// Disarm every site. The environment is NOT re-read afterwards — tests that
// clear() own the configuration for the rest of the process.
void clear();

// Any site armed?
bool enabled();

// Per-site observability (zeros for unknown sites).
struct SiteCounters {
  int64_t draws = 0;
  int64_t injected = 0;
};
SiteCounters counters(const std::string& site);

}  // namespace fault
}  // namespace qserve
