#include "common/fault_injection.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace qserve {
namespace fault {
namespace {

struct Site {
  double rate = 0.0;
  uint64_t seed = 0;
  std::atomic<int64_t> draws{0};
  std::atomic<int64_t> injected{0};
};

struct Registry {
  std::mutex mu;
  // unique_ptr keeps Site addresses stable (atomics are not movable).
  std::unordered_map<std::string, std::unique_ptr<Site>> sites;
  // Fast path: skip the mutex entirely when nothing is armed.
  std::atomic<bool> armed{false};
  // Set once the env has been consulted OR a programmatic call took over;
  // afterwards QSERVE_FAULT is never re-read.
  std::atomic<bool> ready{false};
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Parse "<site>:<rate>[:<seed>]" into the registry (caller holds mu).
void parse_entry_locked(Registry& reg, const std::string& entry) {
  const size_t c1 = entry.find(':');
  QS_CHECK_MSG(c1 != std::string::npos && c1 > 0,
               "QSERVE_FAULT entry '" << entry
                                      << "' is not <site>:<rate>[:<seed>]");
  const size_t c2 = entry.find(':', c1 + 1);
  const std::string site = entry.substr(0, c1);
  const std::string rate_s = entry.substr(
      c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
  double rate = 0.0;
  uint64_t seed = 0;
  try {
    rate = std::stod(rate_s);
    if (c2 != std::string::npos)
      seed = std::stoull(entry.substr(c2 + 1));
  } catch (const std::exception&) {
    QS_CHECK_MSG(false, "QSERVE_FAULT entry '" << entry
                                               << "' has a malformed number");
  }
  QS_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
               "QSERVE_FAULT rate " << rate << " outside [0, 1]");
  auto s = std::make_unique<Site>();
  s->rate = rate;
  s->seed = seed;
  reg.sites[site] = std::move(s);
}

void configure_locked(Registry& reg, const std::string& spec) {
  reg.sites.clear();
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    // Trim surrounding whitespace so "a:0.1, b:0.2" parses.
    size_t lo = pos, hi = comma;
    while (lo < hi && std::isspace(static_cast<unsigned char>(spec[lo])))
      ++lo;
    while (hi > lo && std::isspace(static_cast<unsigned char>(spec[hi - 1])))
      --hi;
    if (hi > lo) parse_entry_locked(reg, spec.substr(lo, hi - lo));
    pos = comma + 1;
  }
  reg.armed.store(!reg.sites.empty(), std::memory_order_release);
  reg.ready.store(true, std::memory_order_release);
}

void ensure_env_loaded(Registry& reg) {
  if (reg.ready.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(reg.mu);
  if (reg.ready.load(std::memory_order_acquire)) return;
  const char* env = std::getenv("QSERVE_FAULT");
  configure_locked(reg, env != nullptr ? std::string(env) : std::string());
}

}  // namespace

bool should_fail(const char* site) {
  Registry& reg = registry();
  ensure_env_loaded(reg);
  if (!reg.armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lk(reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return false;
  Site& s = *it->second;
  const int64_t n = s.draws.fetch_add(1, std::memory_order_relaxed);
  if (s.rate <= 0.0) return false;
  // Deterministic per-draw hash: draw n of (site, seed) always lands on the
  // same side of rate. 53 mantissa bits give an unbiased uniform in [0, 1).
  const uint64_t x =
      splitmix64(s.seed ^ (0xD1B54A32D192ED03ull * static_cast<uint64_t>(n)));
  const bool hit =
      static_cast<double>(x >> 11) * 0x1.0p-53 < s.rate;
  if (hit) s.injected.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void maybe_fail(const char* site) {
  if (should_fail(site)) throw FaultInjectedError(site);
}

void configure(const std::string& spec) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  configure_locked(reg, spec);
}

void set_site(const std::string& site, double rate, uint64_t seed) {
  QS_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
               "fault rate " << rate << " outside [0, 1]");
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto s = std::make_unique<Site>();
  s->rate = rate;
  s->seed = seed;
  reg.sites[site] = std::move(s);
  reg.armed.store(true, std::memory_order_release);
  reg.ready.store(true, std::memory_order_release);
}

void clear() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.sites.clear();
  reg.armed.store(false, std::memory_order_release);
  reg.ready.store(true, std::memory_order_release);
}

bool enabled() {
  Registry& reg = registry();
  ensure_env_loaded(reg);
  return reg.armed.load(std::memory_order_acquire);
}

SiteCounters counters(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto it = reg.sites.find(site);
  SiteCounters c;
  if (it != reg.sites.end()) {
    c.draws = it->second->draws.load(std::memory_order_relaxed);
    c.injected = it->second->injected.load(std::memory_order_relaxed);
  }
  return c;
}

}  // namespace fault
}  // namespace qserve
