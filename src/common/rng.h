// Deterministic random number generation for synthetic weights/activations.
//
// All stochastic pieces of the reproduction (synthetic model weights, outlier
// injection, calibration data) flow through this RNG so that every test and
// benchmark is reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace qserve {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  float uniform(float lo = 0.0f, float hi = 1.0f) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  float normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  // Student-t style heavy-tailed sample: normal / sqrt(chi2/df). LLM
  // activations are famously heavy-tailed; df ~ 4-8 mimics published
  // kurtosis levels.
  float heavy_tailed(float scale = 1.0f, float df = 5.0f) {
    const float z = normal();
    float chi2 = 0.0f;
    const int idf = static_cast<int>(df);
    for (int i = 0; i < idf; ++i) {
      const float g = normal();
      chi2 += g * g;
    }
    return scale * z / std::sqrt(chi2 / df + 1e-12f);
  }

  int uniform_int(int lo, int hi) {  // inclusive
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  std::vector<float> normal_vec(size_t n, float mean = 0.0f,
                                float stddev = 1.0f) {
    std::vector<float> v(n);
    for (auto& x : v) x = normal(mean, stddev);
    return v;
  }

  // Fisher-Yates permutation of [0, n).
  std::vector<int> permutation(int n) {
    std::vector<int> p(n);
    for (int i = 0; i < n; ++i) p[i] = i;
    for (int i = n - 1; i > 0; --i) {
      std::swap(p[i], p[uniform_int(0, i)]);
    }
    return p;
  }

  std::mt19937_64& engine() { return engine_; }

  // Derive an independent child stream (for per-layer weight generation).
  Rng fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qserve
