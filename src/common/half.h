// Software IEEE 754 binary16 ("half") emulation.
//
// The GPU kernels in the paper hold activations, scales and attention
// intermediates in FP16. This environment has no hardware half type, so we
// emulate it with exact bit-level conversions. Round-tripping a float through
// `Half` reproduces the precision loss a real FP16 register would introduce,
// which matters for the KV4-attention FP16-accumulation experiments (§5.3).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace qserve {

namespace detail {

// C++17 stand-in for std::bit_cast (C++20).
template <typename To, typename From>
inline To bit_cast(const From& from) {
  static_assert(sizeof(To) == sizeof(From), "bit_cast size mismatch");
  To to;
  std::memcpy(&to, &from, sizeof(To));
  return to;
}

// Scalar float -> binary16 bits with round-to-nearest-even.
inline uint16_t float_to_half_bits(float f) {
  const uint32_t x = bit_cast<uint32_t>(f);
  const uint32_t sign = (x >> 16) & 0x8000u;
  const uint32_t abs = x & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {  // inf or NaN
    const uint32_t mant = (abs > 0x7F800000u) ? 0x0200u : 0;  // quiet NaN
    return static_cast<uint16_t>(sign | 0x7C00u | mant);
  }
  if (abs >= 0x477FF000u) {  // overflow to inf (>= 65520 after rounding)
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x38800000u) {  // subnormal half or zero
    if (abs < 0x33000000u) return static_cast<uint16_t>(sign);  // underflow
    // value = M * 2^(E-126) with M the 24-bit significand; the subnormal
    // half mantissa is M >> (126 - E), rounded to nearest even.
    const int shift = 126 - static_cast<int>(abs >> 23);  // 14..24
    uint32_t mant = (abs & 0x007FFFFFu) | 0x00800000u;
    const uint32_t dropped = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    mant >>= shift;
    if (dropped > halfway || (dropped == halfway && (mant & 1))) ++mant;
    return static_cast<uint16_t>(sign | mant);  // carry into exp=1 is valid
  }
  // Normal case.
  uint32_t bits = sign | ((abs - 0x38000000u) >> 13);
  const uint32_t dropped = abs & 0x1FFFu;
  if (dropped > 0x1000u || (dropped == 0x1000u && (bits & 1))) ++bits;
  return static_cast<uint16_t>(bits);
}

inline float half_bits_to_float(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  const uint32_t mant = h & 0x3FFu;

  if (exp == 0x1Fu) {  // inf / NaN
    return bit_cast<float>(sign | 0x7F800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) return bit_cast<float>(sign);  // zero
    // Subnormal: normalize.
    int e = -1;
    uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x400u) == 0);
    return bit_cast<float>(sign | ((127 - 15 - e) << 23) |
                                ((m & 0x3FFu) << 13));
  }
  return bit_cast<float>(sign | ((exp + 112) << 23) | (mant << 13));
}

}  // namespace detail

// Value type wrapping binary16 bits. Arithmetic promotes to float; assign
// back to Half to model an FP16 register write.
class Half {
 public:
  constexpr Half() = default;
  Half(float f) : bits_(detail::float_to_half_bits(f)) {}  // NOLINT(implicit)

  operator float() const { return detail::half_bits_to_float(bits_); }

  static constexpr Half from_bits(uint16_t b) {
    Half h;
    h.bits_ = b;
    return h;
  }
  uint16_t bits() const { return bits_; }

  Half& operator+=(float rhs) { return *this = Half(float(*this) + rhs); }
  Half& operator-=(float rhs) { return *this = Half(float(*this) - rhs); }
  Half& operator*=(float rhs) { return *this = Half(float(*this) * rhs); }
  Half& operator/=(float rhs) { return *this = Half(float(*this) / rhs); }

  static float max() { return 65504.0f; }

 private:
  uint16_t bits_ = 0;
};

// Round a float through FP16 precision (the common use in kernels).
inline float to_half_precision(float f) { return float(Half(f)); }

}  // namespace qserve
