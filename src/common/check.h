// Lightweight runtime-check macros used across the QServe reproduction.
//
// QS_CHECK is always on (including release builds): the library is a research
// artifact and silent corruption is worse than a crash. QS_DCHECK compiles out
// in NDEBUG builds and is reserved for hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qserve {

class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream oss;
  oss << "QS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw CheckError(oss.str());
}

}  // namespace detail
}  // namespace qserve

#define QS_CHECK(expr)                                                 \
  do {                                                                 \
    if (!(expr))                                                       \
      ::qserve::detail::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define QS_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream qs_oss_;                                      \
      qs_oss_ << msg;                                                  \
      ::qserve::detail::check_failed(#expr, __FILE__, __LINE__,        \
                                     qs_oss_.str());                   \
    }                                                                  \
  } while (0)

#define QS_CHECK_EQ(a, b) QS_CHECK_MSG((a) == (b), (a) << " vs " << (b))
#define QS_CHECK_NE(a, b) QS_CHECK_MSG((a) != (b), (a) << " vs " << (b))
#define QS_CHECK_LT(a, b) QS_CHECK_MSG((a) < (b), (a) << " vs " << (b))
#define QS_CHECK_LE(a, b) QS_CHECK_MSG((a) <= (b), (a) << " vs " << (b))
#define QS_CHECK_GT(a, b) QS_CHECK_MSG((a) > (b), (a) << " vs " << (b))
#define QS_CHECK_GE(a, b) QS_CHECK_MSG((a) >= (b), (a) << " vs " << (b))

#ifdef NDEBUG
#define QS_DCHECK(expr) ((void)0)
#define QS_DCHECK_MSG(expr, msg) ((void)0)
#else
#define QS_DCHECK(expr) QS_CHECK(expr)
#define QS_DCHECK_MSG(expr, msg) QS_CHECK_MSG(expr, msg)
#endif
