// Small numeric helpers shared by the quantization and kernel code.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace qserve {

// Round-half-away-from-zero, the ⌊x⌉ used throughout the paper's equations.
inline int round_half_away(float x) {
  return static_cast<int>(x >= 0.0f ? std::floor(x + 0.5f)
                                    : std::ceil(x - 0.5f));
}

inline int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

inline int64_t round_up(int64_t a, int64_t b) { return ceil_div(a, b) * b; }

template <typename T>
inline T clamp(T v, T lo, T hi) {
  return std::min(std::max(v, lo), hi);
}

inline int8_t clamp_i8(int v) {
  return static_cast<int8_t>(clamp(v, -128, 127));
}

inline uint8_t clamp_u4(int v) { return static_cast<uint8_t>(clamp(v, 0, 15)); }

inline bool is_pow2(int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

inline int ilog2(int64_t x) {
  int l = 0;
  while ((int64_t(1) << (l + 1)) <= x) ++l;
  return l;
}

// Fixed pairwise (recursive-halving) summation tree over v[0..n). The split
// point is the largest power of two strictly below n, so the tree shape is a
// function of n alone. Two properties the tensor-parallel all-reduce relies
// on:
//  - For power-of-two n, the partial sums of any even partition into
//    power-of-two-aligned blocks combine (again pairwise) into bitwise the
//    same result as summing all n leaves in one tree — shard count does not
//    change the bits.
//  - For integer T the sum is exact, so ANY grouping matches; the fixed tree
//    is still used so float and integer reductions share one code path.
template <typename T>
inline T pairwise_tree_sum(const T* v, int64_t n) {
  if (n <= 0) return T(0);
  if (n == 1) return v[0];
  if (n == 2) return static_cast<T>(v[0] + v[1]);
  int64_t half = 1;
  while (half * 2 < n) half *= 2;  // largest power of two < n
  return static_cast<T>(pairwise_tree_sum(v, half) +
                        pairwise_tree_sum(v + half, n - half));
}

// Numerically stable softmax over a contiguous row, in place.
inline void softmax_inplace(float* x, int n) {
  float m = x[0];
  for (int i = 1; i < n; ++i) m = std::max(m, x[i]);
  float sum = 0.0f;
  for (int i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - m);
    sum += x[i];
  }
  const float inv = 1.0f / sum;
  for (int i = 0; i < n; ++i) x[i] *= inv;
}

}  // namespace qserve
