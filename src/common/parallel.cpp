#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace qserve {
namespace {

thread_local bool tl_in_region = false;
thread_local int tl_shard = -1;  // shard index inside run_sharded, else -1

class ThreadPool;
// The pool parallel_for on this thread dispatches to; null means the global
// pool. Shard leader threads point this at their shard-local pool for the
// duration of the shard body.
thread_local ThreadPool* tl_pool = nullptr;

int default_thread_count() {
  if (const char* env = std::getenv("QSERVE_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// One in-flight region, owned by the caller's stack frame. Participants claim
// chunks with fetch_add on `next`; `entered`/`exited` (guarded by the pool
// mutex) let the caller wait until every participant has left before the
// frame is destroyed.
struct Region {
  const ParallelRangeFn* fn = nullptr;
  int64_t end = 0, grain = 1;
  std::atomic<int64_t> next{0};
  int entered = 0, exited = 0;  // pool workers only, guarded by pool mu_
  std::exception_ptr error;     // first exception, guarded by error_mu
  std::mutex error_mu;

  // Claim and run chunks until the range is exhausted.
  void work() {
    tl_in_region = true;
    for (;;) {
      const int64_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const int64_t hi = std::min(lo + grain, end);
      try {
        (*fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lk(error_mu);
        if (!error) error = std::current_exception();
      }
    }
    tl_in_region = false;
  }
};

// Instantiable pool: the process-wide instance() resolves its size from
// set_num_threads / QSERVE_NUM_THREADS / hardware, while shard-local pools
// are constructed with a fixed size by the ShardGroup.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool* pool = new ThreadPool();  // leaked: workers must
    return *pool;                                // outlive static dtors
  }

  ThreadPool() = default;
  explicit ThreadPool(int n) : override_(std::max(n, 1)) {}

  ~ThreadPool() { resize(0); }

  int threads() {
    std::lock_guard<std::mutex> lk(mu_);
    return threads_unlocked();
  }

  void resize(int n) {
    QS_CHECK_MSG(!tl_in_region,
                 "set_num_threads called inside a parallel region");
    // run_mu_ guarantees no region is in flight while workers are retired.
    std::lock_guard<std::mutex> serial(run_mu_);
    std::vector<std::thread> old;
    {
      std::lock_guard<std::mutex> lk(mu_);
      override_ = n > 0 ? n : 0;
      if (!workers_.empty()) {
        shutdown_ = true;
        ++epoch_;
        wake_.notify_all();
        old.swap(workers_);
      }
    }
    for (auto& t : old) t.join();
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = false;
    // Workers respawn lazily on the next run().
  }

  void run(int64_t begin, int64_t end, int64_t grain,
           const ParallelRangeFn& fn) {
    // No-nesting rule: parallel_for inlines nested regions before reaching
    // the pool; anything that lands here from inside a worker chunk is a
    // bug that would deadlock on run_mu_ below.
    QS_DCHECK_MSG(!tl_in_region,
                  "ThreadPool::run re-entered from inside a parallel region "
                  "(nested regions must run inline)");
    std::lock_guard<std::mutex> serial(run_mu_);
    Region region;
    region.fn = &fn;
    region.end = end;
    region.grain = grain;
    region.next.store(begin, std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> lk(mu_);
      const int want = threads_unlocked() - 1;
      while (static_cast<int>(workers_.size()) < want)
        workers_.emplace_back([this] { worker_loop(); });
      current_ = &region;
      ++epoch_;
      wake_.notify_all();
    }

    region.work();  // the caller is a full participant

    // The caller's loop only returns once every chunk is claimed; wait for
    // workers still holding one, and bar late arrivals from entering.
    {
      std::unique_lock<std::mutex> lk(mu_);
      current_ = nullptr;
      done_.wait(lk, [&] { return region.entered == region.exited; });
    }
    if (region.error) std::rethrow_exception(region.error);
  }

 private:
  int threads_unlocked() {
    if (override_ > 0) return override_;
    if (default_ == 0) default_ = default_thread_count();
    return default_;
  }

  void worker_loop() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      wake_.wait(lk, [&] { return epoch_ != seen; });
      seen = epoch_;
      if (shutdown_) return;
      Region* region = current_;
      if (region == nullptr) continue;
      ++region->entered;
      lk.unlock();
      region->work();
      lk.lock();
      ++region->exited;
      done_.notify_all();
    }
  }

  std::mutex run_mu_;  // serializes whole regions (and pool resizing)
  std::mutex mu_;      // guards everything below
  std::condition_variable wake_, done_;
  std::vector<std::thread> workers_;
  Region* current_ = nullptr;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
  int override_ = 0;
  int default_ = 0;  // resolved lazily from env/hardware
};

// One sharded job in flight, owned by ShardGroup::run's stack frame.
struct ShardJob {
  const ShardFn* fn = nullptr;
  int n_shards = 0;
  std::exception_ptr* errors = nullptr;  // one slot per shard
  double* seconds = nullptr;             // one slot per shard
  int done = 0;                          // leader shards only, guarded by mu_
};

// Persistent leader threads + shard-local pools. Leaders sleep between jobs;
// shard-local pools are (re)sized to max(1, global_threads / n_shards) at
// the start of each run, so the shards always partition the current budget.
class ShardGroup {
 public:
  static ShardGroup& instance() {
    static ShardGroup* group = new ShardGroup();  // leaked, like the pool
    return *group;
  }

  void run(int n_shards, const ShardFn& fn, double* shard_seconds) {
    std::lock_guard<std::mutex> serial(run_mu_);
    const int total = ThreadPool::instance().threads();
    const int per_shard = std::max(1, total / n_shards);
    {
      std::lock_guard<std::mutex> lk(mu_);
      while (static_cast<int>(pools_.size()) < n_shards)
        pools_.emplace_back(std::make_unique<ThreadPool>(per_shard));
    }
    if (per_shard != pool_threads_) {
      // Safe outside mu_: run_mu_ means no shard body is using a pool.
      for (auto& p : pools_) p->resize(per_shard);
      pool_threads_ = per_shard;
    }

    std::vector<std::exception_ptr> errors(static_cast<size_t>(n_shards));
    std::vector<double> seconds(static_cast<size_t>(n_shards), 0.0);
    ShardJob job;
    job.fn = &fn;
    job.n_shards = n_shards;
    job.errors = errors.data();
    job.seconds = seconds.data();

    {
      std::lock_guard<std::mutex> lk(mu_);
      while (static_cast<int>(leaders_.size()) < n_shards - 1) {
        const int idx = static_cast<int>(leaders_.size());
        leaders_.emplace_back([this, idx] { leader_loop(idx); });
      }
      current_ = &job;
      ++epoch_;
      wake_.notify_all();
    }

    exec_shard(0, job);  // the caller is shard 0

    {
      std::unique_lock<std::mutex> lk(mu_);
      done_.wait(lk, [&] { return job.done == n_shards - 1; });
      current_ = nullptr;
    }
    if (shard_seconds != nullptr)
      std::copy(seconds.begin(), seconds.end(), shard_seconds);
    for (int s = 0; s < n_shards; ++s)  // deterministic: lowest shard first
      if (errors[static_cast<size_t>(s)])
        std::rethrow_exception(errors[static_cast<size_t>(s)]);
  }

 private:
  ShardGroup() = default;

  void exec_shard(int shard, ShardJob& job) {
    ThreadPool* prev_pool = tl_pool;
    const int prev_shard = tl_shard;
    tl_pool = pools_[static_cast<size_t>(shard)].get();
    tl_shard = shard;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      (*job.fn)(shard);
    } catch (...) {
      job.errors[shard] = std::current_exception();
    }
    job.seconds[shard] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    tl_pool = prev_pool;
    tl_shard = prev_shard;
  }

  void leader_loop(int idx) {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      wake_.wait(lk, [&] { return epoch_ != seen; });
      seen = epoch_;
      ShardJob* job = current_;
      if (job == nullptr || idx + 1 >= job->n_shards) continue;
      lk.unlock();
      exec_shard(idx + 1, *job);
      lk.lock();
      ++job->done;
      done_.notify_all();
    }
  }

  std::mutex run_mu_;  // serializes whole sharded jobs
  std::mutex mu_;      // guards everything below
  std::condition_variable wake_, done_;
  std::vector<std::thread> leaders_;  // leaders_[i] runs shard i + 1
  std::vector<std::unique_ptr<ThreadPool>> pools_;  // pools_[s] = shard s
  ShardJob* current_ = nullptr;
  uint64_t epoch_ = 0;
  int pool_threads_ = 0;
};

std::atomic<int> tp_override{0};

int default_tp_shards() {
  static const int env_shards = [] {
    if (const char* env = std::getenv("QSERVE_TP_SHARDS")) {
      const int n = std::atoi(env);
      if (n > 0) return n;
    }
    return 1;
  }();
  return env_shards;
}

}  // namespace

int num_threads() {
  ThreadPool* pool = tl_pool;
  return pool != nullptr ? pool->threads() : ThreadPool::instance().threads();
}

void set_num_threads(int n) {
  QS_CHECK_MSG(tl_shard < 0, "set_num_threads called inside run_sharded");
  ThreadPool::instance().resize(n);
}

bool in_parallel_region() { return tl_in_region; }

void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const ParallelRangeFn& fn) {
  if (end <= begin) return;
  grain = std::max<int64_t>(grain, 1);
  // Single chunk, single thread, or nested region: run inline. The nested
  // call must not clear tl_in_region on return; the others never set it.
  if (tl_in_region || end - begin <= grain || num_threads() == 1) {
    fn(begin, end);
    return;
  }
  ThreadPool* pool = tl_pool;
  (pool != nullptr ? *pool : ThreadPool::instance()).run(begin, end, grain, fn);
}

int tp_shards() {
  const int n = tp_override.load(std::memory_order_relaxed);
  return n > 0 ? n : default_tp_shards();
}

void set_tp_shards(int n) {
  tp_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int current_shard() { return tl_shard; }

void run_sharded(int n_shards, const ShardFn& fn, double* shard_seconds) {
  QS_CHECK(n_shards >= 1);
  // Nested (or trivial) sharding runs inline, sequentially, in shard order:
  // the enclosing region/shard already owns this thread's pool, so handing
  // shards to leader threads would contend for it (see the no-nesting rule
  // in the header). Exceptions propagate from the lowest throwing shard
  // because execution is ordered.
  if (n_shards == 1 || tl_in_region || tl_shard >= 0) {
    const int prev_shard = tl_shard;
    for (int s = 0; s < n_shards; ++s) {
      tl_shard = s;  // shard bodies always see their own index
      const auto t0 = std::chrono::steady_clock::now();
      try {
        fn(s);
      } catch (...) {
        tl_shard = prev_shard;
        throw;
      }
      if (shard_seconds != nullptr)
        shard_seconds[s] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
    }
    tl_shard = prev_shard;
    return;
  }
  ShardGroup::instance().run(n_shards, fn, shard_seconds);
}

}  // namespace qserve
