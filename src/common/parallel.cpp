#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace qserve {
namespace {

thread_local bool tl_in_region = false;

int default_thread_count() {
  if (const char* env = std::getenv("QSERVE_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// One in-flight region, owned by the caller's stack frame. Participants claim
// chunks with fetch_add on `next`; `entered`/`exited` (guarded by the pool
// mutex) let the caller wait until every participant has left before the
// frame is destroyed.
struct Region {
  const ParallelRangeFn* fn = nullptr;
  int64_t end = 0, grain = 1;
  std::atomic<int64_t> next{0};
  int entered = 0, exited = 0;  // pool workers only, guarded by pool mu_
  std::exception_ptr error;     // first exception, guarded by error_mu
  std::mutex error_mu;

  // Claim and run chunks until the range is exhausted.
  void work() {
    tl_in_region = true;
    for (;;) {
      const int64_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const int64_t hi = std::min(lo + grain, end);
      try {
        (*fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lk(error_mu);
        if (!error) error = std::current_exception();
      }
    }
    tl_in_region = false;
  }
};

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool* pool = new ThreadPool();  // leaked: workers must
    return *pool;                                // outlive static dtors
  }

  int threads() {
    std::lock_guard<std::mutex> lk(mu_);
    return threads_unlocked();
  }

  void resize(int n) {
    QS_CHECK_MSG(!tl_in_region,
                 "set_num_threads called inside a parallel region");
    // run_mu_ guarantees no region is in flight while workers are retired.
    std::lock_guard<std::mutex> serial(run_mu_);
    std::vector<std::thread> old;
    {
      std::lock_guard<std::mutex> lk(mu_);
      override_ = n > 0 ? n : 0;
      if (!workers_.empty()) {
        shutdown_ = true;
        ++epoch_;
        wake_.notify_all();
        old.swap(workers_);
      }
    }
    for (auto& t : old) t.join();
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = false;
    // Workers respawn lazily on the next run().
  }

  void run(int64_t begin, int64_t end, int64_t grain,
           const ParallelRangeFn& fn) {
    std::lock_guard<std::mutex> serial(run_mu_);
    Region region;
    region.fn = &fn;
    region.end = end;
    region.grain = grain;
    region.next.store(begin, std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> lk(mu_);
      const int want = threads_unlocked() - 1;
      while (static_cast<int>(workers_.size()) < want)
        workers_.emplace_back([this] { worker_loop(); });
      current_ = &region;
      ++epoch_;
      wake_.notify_all();
    }

    region.work();  // the caller is a full participant

    // The caller's loop only returns once every chunk is claimed; wait for
    // workers still holding one, and bar late arrivals from entering.
    {
      std::unique_lock<std::mutex> lk(mu_);
      current_ = nullptr;
      done_.wait(lk, [&] { return region.entered == region.exited; });
    }
    if (region.error) std::rethrow_exception(region.error);
  }

 private:
  ThreadPool() = default;

  int threads_unlocked() {
    if (override_ > 0) return override_;
    if (default_ == 0) default_ = default_thread_count();
    return default_;
  }

  void worker_loop() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      wake_.wait(lk, [&] { return epoch_ != seen; });
      seen = epoch_;
      if (shutdown_) return;
      Region* region = current_;
      if (region == nullptr) continue;
      ++region->entered;
      lk.unlock();
      region->work();
      lk.lock();
      ++region->exited;
      done_.notify_all();
    }
  }

  std::mutex run_mu_;  // serializes whole regions (and pool resizing)
  std::mutex mu_;      // guards everything below
  std::condition_variable wake_, done_;
  std::vector<std::thread> workers_;
  Region* current_ = nullptr;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
  int override_ = 0;
  int default_ = 0;  // resolved lazily from env/hardware
};

}  // namespace

int num_threads() { return ThreadPool::instance().threads(); }

void set_num_threads(int n) { ThreadPool::instance().resize(n); }

bool in_parallel_region() { return tl_in_region; }

void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const ParallelRangeFn& fn) {
  if (end <= begin) return;
  grain = std::max<int64_t>(grain, 1);
  // Single chunk, single thread, or nested region: run inline. The nested
  // call must not clear tl_in_region on return; the others never set it.
  if (tl_in_region || end - begin <= grain || num_threads() == 1) {
    fn(begin, end);
    return;
  }
  ThreadPool::instance().run(begin, end, grain, fn);
}

}  // namespace qserve
