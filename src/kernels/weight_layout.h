// Compute-aware weight reordering (§5.2.1, Fig. 12) + RLP nibble interleave.
//
// The CUDA kernel cannot use `ldmatrix` for W4A8 because storage (4-bit) and
// compute (8-bit) types differ, so QServe stores weights *in the order the
// tensor-core fragments consume them*: the GEMM is tiled into 32x32 blocks
// (32 output x 32 input channels); within a tile, each of the 32 threads owns
// a 128-bit word holding exactly the 32 codes it feeds to the MMA. Every 8
// codes inside the word are nibble-interleaved (w0,w16,w1,w17,...) so the
// Figure-13 unpack applies.
//
// On CPU the layout is a pure permutation; we implement it exactly so that
//  (a) round-trip tests prove it is a bijection, and
//  (b) the streaming GEMM (gemm.h) can consume the stream strictly
//      sequentially, which is what eliminates per-fragment pointer arithmetic
//      on the GPU (the simulator charges address-calculation ops per fragment
//      for the non-reordered layout).
#pragma once

#include <cstdint>
#include <vector>

#include "common/math_util.h"
#include "quant/types.h"

namespace qserve {

inline constexpr int kTileN = 32;  // output channels per tile
inline constexpr int kTileK = 32;  // input channels per tile
inline constexpr int kThreadsPerTile = 32;
inline constexpr int kWordsPerThread = 4;  // 4 u32 words = 128 bits

// Thread-to-channel mapping inside a 32x32 tile (mirrors Fig. 12a/c):
// thread t covers output channels (t/4) + 8*j for j in 0..3 and input
// channels (t%4)*4 + l and (t%4)*4 + l + 16 for l in 0..3.
inline int tile_out_channel(int thread, int j) {
  return (thread / 4) + 8 * j;
}
inline int tile_in_channel_a(int thread, int l) { return (thread % 4) * 4 + l; }
inline int tile_in_channel_b(int thread, int l) {
  return (thread % 4) * 4 + l + 16;
}

// Reordered stream: tiles in (n_tile-major, then k_tile) order — the order a
// thread block walks the main loop — then thread id, then word index.
struct ReorderedW4 {
  std::vector<uint32_t> words;
  int64_t n = 0;
  int64_t k = 0;
  int64_t n_tiles() const { return n / kTileN; }
  int64_t k_tiles() const { return k / kTileK; }
  // Stream offset of a (n_tile, k_tile, thread, word) fragment.
  int64_t index(int64_t nt, int64_t kt, int thread, int word) const {
    return ((nt * k_tiles() + kt) * kThreadsPerTile + thread) *
               kWordsPerThread +
           word;
  }
};

// Reorder a packed UINT4 weight matrix ([n, k], n % 32 == 0, k % 32 == 0).
ReorderedW4 reorder_w4_for_compute(const PackedU4& qw);

// Inverse transformation (for round-trip verification).
U8Tensor unreorder_w4(const ReorderedW4& r);

// Per-(channel, group) metadata (scales / zero points) reordered to match the
// stream: for each (n_tile, k_tile) the 32 output-channel entries of the
// group containing that k-tile, in thread consumption order. The paper
// applies the same reordering to zeros and scales (§5.2.1).
struct ReorderedGroupMeta {
  std::vector<uint8_t> s1;  // stream-ordered level-2 scales
  std::vector<uint8_t> z;   // stream-ordered zero points
  int group = 128;
};

ReorderedGroupMeta reorder_group_meta(const W4PerGroup& w);

// ---------------------------------------------------------------------------
// ISA-friendly packed layout for the cache-blocked SIMD GEMM driver
// ---------------------------------------------------------------------------
//
// pack_gemm_b() transforms a quantized weight matrix once per layer into the
// interleaved panel layout the CPU microkernels (kernels/cpu/microkernel.h)
// consume: output channels are tiled into panels of `nr` rows, input channels
// into k-groups of 4 codes, and within a k-group the nr rows are contiguous:
//
//   data[p * k_padded * nr + (g * nr + r) * 4 + j]
//     = code(row p*nr + r, input channel g*4 + j)
//
// k is zero-padded to a multiple of 4 and the last panel's missing rows are
// zero codes, so the microkernels never need edge handling. Packing also:
//  * pre-dequantizes per-group W4 weights to their level-1 INT8 codes
//    ((q - z) * s1, two's-complement wrap, exactly the scalar kernel's
//    arithmetic) — eliminating the per-call re-dequantization of weight rows
//    the plain kernel pays on every token batch;
//  * precomputes per-row code sums (`row_sum`) so the AVX-512 VNNI kernel's
//    biased-activation trick can be compensated exactly in the epilogue;
//  * carries the per-row epilogue constants (scale, and z*s for the
//    per-channel scheme) so the driver needs no access to the source struct.
struct PackedGemmB {
  std::vector<int8_t> data;      // interleaved codes (u4 codes stored 0..15)
  std::vector<int32_t> row_sum;  // [n] sum of codes per row (bias compensation)
  std::vector<float> scale;      // [n] per-row epilogue scale (s / s0)
  std::vector<float> zp_term;    // [n] per-row z*s; empty unless per-channel W4
  int64_t n = 0;
  int64_t k = 0;
  int64_t k_padded = 0;  // k rounded up to a k-group multiple
  int nr = 8;            // rows per panel (microkernel vector width)
  bool unsigned_codes = false;  // true: UINT4 codes, use the dot_u4 kernel

  bool valid() const { return n > 0; }
  int64_t panels() const { return ceil_div(n, nr); }
  int64_t panel_stride() const { return k_padded * nr; }  // bytes per panel
};

// `nr` is the microkernel vector width — pass
// cpu::microkernel_for(cpu::active_isa()).nr (the blocked driver falls back
// to the scalar kernel when the packed nr no longer matches the active ISA).
PackedGemmB pack_gemm_b(const W8PerChannel& w, int nr);
PackedGemmB pack_gemm_b(const W4PerChannel& w, int nr);
PackedGemmB pack_gemm_b(const W4PerGroup& w, int nr);

// Rectangular slice of a weight matrix, packed for one tensor-parallel
// shard: rows [row0, row1) are output channels (column-parallel sharding),
// cols [col0, col1) input channels (row-parallel sharding). Metadata is
// looked up at ABSOLUTE indices — per-group scales/zeros come from the
// group containing the absolute column — so every packed code, row_sum and
// epilogue constant is bitwise the one the full pack would carry for the
// same (row, col). No alignment is required of the slice bounds; empty
// slices produce an invalid (n == 0 or k == 0) pack the caller must skip.
struct PackSlice {
  int64_t row0 = 0, row1 = 0;
  int64_t col0 = 0, col1 = 0;
};

PackedGemmB pack_gemm_b_slice(const W8PerChannel& w, int nr,
                              const PackSlice& s);
PackedGemmB pack_gemm_b_slice(const W4PerChannel& w, int nr,
                              const PackSlice& s);
PackedGemmB pack_gemm_b_slice(const W4PerGroup& w, int nr,
                              const PackSlice& s);

}  // namespace qserve
