// GEMM kernels reproducing the numerics of each serving system's pipeline
// (Figure 5). All kernels compute Y[m,n] = X[m,k] * W[n,k]^T.
//
//   gemm_w8a8              — TRT-LLM W8A8 path: INT8 MACs, epilogue scaling.
//   gemm_w4a8_per_channel  — QServe per-channel: UINT4 codes MAC'd directly,
//                            zero-point term folded into the epilogue via the
//                            precomputed token sums tX (Eq. 12/13).
//   gemm_w4a8_per_group    — QServe progressive: level-2 dequant to level-1
//                            INT8 codes in the main loop (sub-after-mul),
//                            INT8 MACs, level-1 scaling in the epilogue.
//   gemm_w4a8_per_group_streamed — same numerics, but consuming the
//                            compute-aware reordered stream with the SWAR RLP
//                            path; exists to validate layout + RLP end to end.
//   gemm_w4a4_atom         — Atom path: INT4 MACs with per-group FP32
//                            partial-sum dequantization in the main loop.
//   gemm_w4a16             — weight-only path: FP16 dequant in the main loop.
//
// Outputs are rounded through FP16 (the GPU kernels emit FP16).
//
// The three INT8-path kernels (w8a8, w4a8 per-channel, w4a8 per-group) run on
// runtime-dispatched SIMD microkernels (kernels/cpu/) over a cache-blocked,
// pre-packed weight layout; QSERVE_ISA selects scalar/avx2/avx512 at runtime
// and every path is bitwise identical.
#pragma once

#include "kernels/weight_layout.h"
#include "quant/types.h"
#include "quant/w4a16.h"

namespace qserve {

// FP32 reference (stands in for the FP16 tensor-core baseline).
Tensor gemm_f32_ref(const Tensor& x, const Tensor& w);

// Raw INT8 x INT8 -> INT32 (the "tensor core" primitive).
I32Tensor gemm_i8i8_i32(const I8Tensor& x, const I8Tensor& w);

Tensor gemm_w8a8(const QuantizedActs& x, const W8PerChannel& w);

Tensor gemm_w4a8_per_channel(const QuantizedActs& x, const W4PerChannel& w);

Tensor gemm_w4a8_per_group(const QuantizedActs& x, const W4PerGroup& w);

// --- cache-blocked SIMD driver on pre-packed weights -------------------------
//
// The three INT8-path kernels above are thin wrappers: they pack the weights
// for the active ISA (kernels/cpu/isa.h) and call gemm_blocked. Callers that
// run many GEMMs against the same weights (every model layer, the benches)
// should pack once with pack_gemm_b (kernels/weight_layout.h) and call
// gemm_blocked directly — packing also pre-dequantizes per-group weights to
// their level-1 INT8 codes, so the per-call re-dequantization disappears.
//
// The driver tiles over (n, k): output channels in panels of `w.nr` rows,
// input channels in blocks sized to keep a weight sub-panel L1-resident, and
// iterates tokens innermost so each unpacked weight tile is reused across
// all m tokens of the call. Results are bitwise identical for every ISA and
// any thread count: the INT32 accumulators are exact integer sums and the
// FP16 epilogue is evaluated in the same order as the scalar kernels.
Tensor gemm_blocked(const QuantizedActs& x, const PackedGemmB& w);

// The raw INT32 accumulators acc[t, r] = sum_c x.q[t, c] * code(r, c) before
// the epilogue — exposed so tests can assert cross-ISA bitwise identity at
// the accumulator level, not just after FP16 rounding, and so the
// tensor-parallel row-parallel path can all-reduce per-shard k-slice
// partials exactly (integer sums are order-independent).
I32Tensor gemm_blocked_acc(const QuantizedActs& x, const PackedGemmB& w);

// gemm_blocked's exact epilogue applied to externally-reduced accumulators
// (the tensor-parallel all-reduce of per-shard partials). `scale`/`zp_term`
// are the full-row epilogue constants — identical in every k-slice pack,
// since they are per-output-row — and `x` supplies the full-row per-token
// scale and token sum (zp_term empty = no zero-point term). Bitwise
// identical to gemm_blocked on the unsliced pack: the INT32 accumulator sum
// is exact and the float expression is evaluated in the same order.
Tensor gemm_blocked_epilogue(const I32Tensor& acc, const QuantizedActs& x,
                             const std::vector<float>& scale,
                             const std::vector<float>& zp_term);

Tensor gemm_w4a8_per_group_streamed(const QuantizedActs& x,
                                    const W4PerGroup& w,
                                    const ReorderedW4& stream,
                                    const ReorderedGroupMeta& meta);

// x must be per-token INT4-quantized (quantize_acts_per_token_int4).
Tensor gemm_w4a4_atom(const QuantizedActs& x, const W4A4PerGroup& w);

Tensor gemm_w4a16(const Tensor& x, const W4A16PerGroup& w);

}  // namespace qserve
