#include "kernels/weight_layout.h"

#include "common/check.h"
#include "common/parallel.h"
#include "kernels/cpu/microkernel.h"
#include "kernels/rlp.h"
#include "tensor/int4.h"

namespace qserve {

ReorderedW4 reorder_w4_for_compute(const PackedU4& qw) {
  QS_CHECK_EQ(qw.rows % kTileN, 0);
  QS_CHECK_EQ(qw.cols % kTileK, 0);
  ReorderedW4 out;
  out.n = qw.rows;
  out.k = qw.cols;
  out.words.resize(static_cast<size_t>(out.n_tiles() * out.k_tiles() *
                                       kThreadsPerTile * kWordsPerThread));
  for (int64_t nt = 0; nt < out.n_tiles(); ++nt) {
    for (int64_t kt = 0; kt < out.k_tiles(); ++kt) {
      for (int t = 0; t < kThreadsPerTile; ++t) {
        for (int j = 0; j < kWordsPerThread; ++j) {
          const int64_t row = nt * kTileN + tile_out_channel(t, j);
          uint8_t a[4], b[4];
          for (int l = 0; l < 4; ++l) {
            a[l] = get_u4(qw, row, kt * kTileK + tile_in_channel_a(t, l));
            b[l] = get_u4(qw, row, kt * kTileK + tile_in_channel_b(t, l));
          }
          out.words[static_cast<size_t>(out.index(nt, kt, t, j))] =
              interleave_u4x8(a, b);
        }
      }
    }
  }
  return out;
}

U8Tensor unreorder_w4(const ReorderedW4& r) {
  U8Tensor codes({r.n, r.k});
  for (int64_t nt = 0; nt < r.n_tiles(); ++nt) {
    for (int64_t kt = 0; kt < r.k_tiles(); ++kt) {
      for (int t = 0; t < kThreadsPerTile; ++t) {
        for (int j = 0; j < kWordsPerThread; ++j) {
          const uint32_t word =
              r.words[static_cast<size_t>(r.index(nt, kt, t, j))];
          const UnpackedU4x8 u = unpack_u4x8(word);
          const int64_t row = nt * kTileN + tile_out_channel(t, j);
          for (int l = 0; l < 4; ++l) {
            codes.at2(row, kt * kTileK + tile_in_channel_a(t, l)) =
                lane_u8(u.low, l);
            codes.at2(row, kt * kTileK + tile_in_channel_b(t, l)) =
                lane_u8(u.high, l);
          }
        }
      }
    }
  }
  return codes;
}

ReorderedGroupMeta reorder_group_meta(const W4PerGroup& w) {
  QS_CHECK_EQ(w.n() % kTileN, 0);
  QS_CHECK_EQ(w.k() % kTileK, 0);
  QS_CHECK_EQ(w.group % kTileK, 0);  // groups are whole k-tiles
  ReorderedGroupMeta out;
  out.group = w.group;
  const int64_t n_tiles = w.n() / kTileN;
  const int64_t k_tiles = w.k() / kTileK;
  out.s1.reserve(static_cast<size_t>(n_tiles * k_tiles * kThreadsPerTile *
                                     kWordsPerThread));
  out.z.reserve(out.s1.capacity());
  for (int64_t nt = 0; nt < n_tiles; ++nt) {
    for (int64_t kt = 0; kt < k_tiles; ++kt) {
      const int64_t g = (kt * kTileK) / w.group;
      for (int t = 0; t < kThreadsPerTile; ++t) {
        for (int j = 0; j < kWordsPerThread; ++j) {
          const int64_t row = nt * kTileN + tile_out_channel(t, j);
          out.s1.push_back(w.s1.at2(row, g));
          out.z.push_back(w.z.at2(row, g));
        }
      }
    }
  }
  return out;
}

// --- packed layout for the blocked SIMD GEMM driver --------------------------

namespace {

// `code_at(row, col)` returns the signed code value at ABSOLUTE matrix
// indices; the packed slice covers rows [row0, row0 + n) and input channels
// [col0, col0 + k). Out-of-range panel slots are zero codes (they contribute
// nothing to dot products or row sums).
template <typename CodeAtFn>
PackedGemmB pack_panels(int64_t n, int64_t k, int64_t row0, int64_t col0,
                        int nr, bool unsigned_codes, const CodeAtFn& code_at) {
  QS_CHECK(nr > 0);
  PackedGemmB b;
  b.n = n;
  b.k = k;
  b.k_padded = round_up(k, cpu::kKGroup);
  b.nr = nr;
  b.unsigned_codes = unsigned_codes;
  b.data.assign(static_cast<size_t>(b.panels() * b.panel_stride()), 0);
  b.row_sum.assign(static_cast<size_t>(n), 0);
  // Panels write disjoint data/row_sum slices, so packing fans out over the
  // pool — plain-API GEMM calls (which pack per call) and the streamed
  // kernel's m==1 bypass keep the dequant parallelism the old in-kernel
  // per-row dequant had.
  parallel_for(0, b.panels(), 1, [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      int8_t* panel = b.data.data() + p * b.panel_stride();
      for (int64_t g = 0; g < b.k_padded / cpu::kKGroup; ++g) {
        for (int r = 0; r < nr; ++r) {
          const int64_t row = p * nr + r;
          if (row >= n) continue;
          for (int j = 0; j < cpu::kKGroup; ++j) {
            const int64_t col = g * cpu::kKGroup + j;
            if (col >= k) continue;
            const int code = code_at(row0 + row, col0 + col);
            panel[(g * nr + r) * cpu::kKGroup + j] =
                static_cast<int8_t>(code);
            b.row_sum[static_cast<size_t>(row)] += code;
          }
        }
      }
    }
  });
  return b;
}

PackSlice checked_slice(const PackSlice& s, int64_t n, int64_t k) {
  QS_CHECK(0 <= s.row0 && s.row0 <= s.row1 && s.row1 <= n);
  QS_CHECK(0 <= s.col0 && s.col0 <= s.col1 && s.col1 <= k);
  return s;
}

}  // namespace

PackedGemmB pack_gemm_b_slice(const W8PerChannel& w, int nr,
                              const PackSlice& sl) {
  const PackSlice s = checked_slice(sl, w.n(), w.k());
  PackedGemmB b = pack_panels(
      s.row1 - s.row0, s.col1 - s.col0, s.row0, s.col0, nr,
      /*unsigned_codes=*/false,
      [&](int64_t r, int64_t c) { return int(w.qw.at2(r, c)); });
  b.scale.assign(static_cast<size_t>(b.n), 0.0f);
  for (int64_t r = 0; r < b.n; ++r)
    b.scale[static_cast<size_t>(r)] = w.s[s.row0 + r];
  return b;
}

PackedGemmB pack_gemm_b_slice(const W4PerChannel& w, int nr,
                              const PackSlice& sl) {
  // Raw UINT4 codes are MAC'd directly; the zero-point term is handled in
  // the epilogue via tX * (z*s) (Eq. 12/13), carried here as zp_term.
  const PackSlice s = checked_slice(sl, w.n(), w.k());
  PackedGemmB b = pack_panels(
      s.row1 - s.row0, s.col1 - s.col0, s.row0, s.col0, nr,
      /*unsigned_codes=*/true,
      [&](int64_t r, int64_t c) { return int(get_u4(w.qw, r, c)); });
  b.scale.assign(static_cast<size_t>(b.n), 0.0f);
  b.zp_term.assign(static_cast<size_t>(b.n), 0.0f);
  for (int64_t r = 0; r < b.n; ++r) {
    b.scale[static_cast<size_t>(r)] = w.s[s.row0 + r];
    b.zp_term[static_cast<size_t>(r)] = w.szw[s.row0 + r];
  }
  return b;
}

PackedGemmB pack_gemm_b_slice(const W4PerGroup& w, int nr,
                              const PackSlice& sl) {
  // Level-2 dequant (q - z) * s1 restores the integer level-1 codes once, at
  // pack time. With the protective range (level1_range = 119) the code
  // always fits INT8; with the naive range (127) it can exceed it, and the
  // cast wraps exactly like the INT8 register in the GPU kernel — that
  // overflow is the accuracy bug the paper's Fig. 6 reproduces, so it must
  // not be asserted away. The group index is computed from the ABSOLUTE
  // column, so a k-slice needs no group alignment.
  const PackSlice s = checked_slice(sl, w.n(), w.k());
  PackedGemmB b = pack_panels(
      s.row1 - s.row0, s.col1 - s.col0, s.row0, s.col0, nr,
      /*unsigned_codes=*/false,
      [&](int64_t r, int64_t c) {
        const int64_t g = c / w.group;
        const int code = (int(get_u4(w.qw, r, c)) - int(w.z.at2(r, g))) *
                         int(w.s1.at2(r, g));
        return int(static_cast<int8_t>(code));
      });
  b.scale.assign(static_cast<size_t>(b.n), 0.0f);
  for (int64_t r = 0; r < b.n; ++r)
    b.scale[static_cast<size_t>(r)] = w.s0[s.row0 + r];
  return b;
}

PackedGemmB pack_gemm_b(const W8PerChannel& w, int nr) {
  return pack_gemm_b_slice(w, nr, PackSlice{0, w.n(), 0, w.k()});
}

PackedGemmB pack_gemm_b(const W4PerChannel& w, int nr) {
  return pack_gemm_b_slice(w, nr, PackSlice{0, w.n(), 0, w.k()});
}

PackedGemmB pack_gemm_b(const W4PerGroup& w, int nr) {
  return pack_gemm_b_slice(w, nr, PackSlice{0, w.n(), 0, w.k()});
}

}  // namespace qserve
