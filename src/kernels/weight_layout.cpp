#include "kernels/weight_layout.h"

#include "common/check.h"
#include "kernels/rlp.h"
#include "tensor/int4.h"

namespace qserve {

ReorderedW4 reorder_w4_for_compute(const PackedU4& qw) {
  QS_CHECK_EQ(qw.rows % kTileN, 0);
  QS_CHECK_EQ(qw.cols % kTileK, 0);
  ReorderedW4 out;
  out.n = qw.rows;
  out.k = qw.cols;
  out.words.resize(static_cast<size_t>(out.n_tiles() * out.k_tiles() *
                                       kThreadsPerTile * kWordsPerThread));
  for (int64_t nt = 0; nt < out.n_tiles(); ++nt) {
    for (int64_t kt = 0; kt < out.k_tiles(); ++kt) {
      for (int t = 0; t < kThreadsPerTile; ++t) {
        for (int j = 0; j < kWordsPerThread; ++j) {
          const int64_t row = nt * kTileN + tile_out_channel(t, j);
          uint8_t a[4], b[4];
          for (int l = 0; l < 4; ++l) {
            a[l] = get_u4(qw, row, kt * kTileK + tile_in_channel_a(t, l));
            b[l] = get_u4(qw, row, kt * kTileK + tile_in_channel_b(t, l));
          }
          out.words[static_cast<size_t>(out.index(nt, kt, t, j))] =
              interleave_u4x8(a, b);
        }
      }
    }
  }
  return out;
}

U8Tensor unreorder_w4(const ReorderedW4& r) {
  U8Tensor codes({r.n, r.k});
  for (int64_t nt = 0; nt < r.n_tiles(); ++nt) {
    for (int64_t kt = 0; kt < r.k_tiles(); ++kt) {
      for (int t = 0; t < kThreadsPerTile; ++t) {
        for (int j = 0; j < kWordsPerThread; ++j) {
          const uint32_t word =
              r.words[static_cast<size_t>(r.index(nt, kt, t, j))];
          const UnpackedU4x8 u = unpack_u4x8(word);
          const int64_t row = nt * kTileN + tile_out_channel(t, j);
          for (int l = 0; l < 4; ++l) {
            codes.at2(row, kt * kTileK + tile_in_channel_a(t, l)) =
                lane_u8(u.low, l);
            codes.at2(row, kt * kTileK + tile_in_channel_b(t, l)) =
                lane_u8(u.high, l);
          }
        }
      }
    }
  }
  return codes;
}

ReorderedGroupMeta reorder_group_meta(const W4PerGroup& w) {
  QS_CHECK_EQ(w.n() % kTileN, 0);
  QS_CHECK_EQ(w.k() % kTileK, 0);
  QS_CHECK_EQ(w.group % kTileK, 0);  // groups are whole k-tiles
  ReorderedGroupMeta out;
  out.group = w.group;
  const int64_t n_tiles = w.n() / kTileN;
  const int64_t k_tiles = w.k() / kTileK;
  out.s1.reserve(static_cast<size_t>(n_tiles * k_tiles * kThreadsPerTile *
                                     kWordsPerThread));
  out.z.reserve(out.s1.capacity());
  for (int64_t nt = 0; nt < n_tiles; ++nt) {
    for (int64_t kt = 0; kt < k_tiles; ++kt) {
      const int64_t g = (kt * kTileK) / w.group;
      for (int t = 0; t < kThreadsPerTile; ++t) {
        for (int j = 0; j < kWordsPerThread; ++j) {
          const int64_t row = nt * kTileN + tile_out_channel(t, j);
          out.s1.push_back(w.s1.at2(row, g));
          out.z.push_back(w.z.at2(row, g));
        }
      }
    }
  }
  return out;
}

}  // namespace qserve
