// Attention kernels (Eq. 1) for prefill and decode, with GQA support.
//
// K/V inputs arrive as float matrices — in the quantized-serving path they
// are produced by the paged KV cache's dequantization (src/kvcache), so the
// INT4/INT8 round-trip error is already embedded, exactly like the fused GPU
// kernel that dequantizes page data inline. `fp16_accum` models QServe's
// FP32→FP16 conversion of the QK and SV products (§5.3).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace qserve {

struct AttentionConfig {
  int n_heads = 8;
  int n_kv_heads = 8;   // GQA when < n_heads
  int head_dim = 64;
  bool fp16_accum = false;

  // Loud construction-time validation (same pattern as BatchedStep in PR 4):
  // throws CheckError unless n_heads/n_kv_heads/head_dim are positive,
  // n_heads is a multiple of n_kv_heads, and — when the KV cache stores
  // nibble-packed INT4 codes — head_dim is even. Call once where the config
  // is built; the kernels then only re-check shapes against their inputs.
  void validate(bool int4_kv = false) const;
};

// Causal self-attention for a chunk of `n` new tokens whose keys/values have
// already been appended to K/V. q is [n, H*D]; K, V are [s, HKV*D] with
// s >= n; the new tokens occupy rows s-n .. s-1. Returns [n, H*D].
Tensor attention_prefill(const Tensor& q, const Tensor& k, const Tensor& v,
                         const AttentionConfig& cfg);

// Sliding-window + attention-sink variant of attention_prefill for sequences
// whose KV cache has begun recycling pages (StreamingLLM-style eviction).
//
// K/V hold only the *visible* gathered rows of a logically `s_total`-token
// sequence — exactly what PagedKvCache::gather_visible produces:
//   rows [0, sink_eff)                    = logical tokens [0, sink_eff)
//   rows [sink_eff, k.rows())             = logical tokens [tail0, s_total)
// with sink_eff = min(sink, s_total) and tail0 the oldest resident post-sink
// logical position. The `n` query rows are logical positions
// s_total-n .. s_total-1; row at position p attends the per-row visible set
//   [0, min(p+1, sink))  ∪  [max(sink, p+1-window), p+1)
// i.e. every row sees its *own* trailing window into history, not a shared
// cut — this is what makes recompute-on-resume re-derive bitwise-identical
// prefill results after preemption. When the two intervals are adjacent
// (p+1 <= sink+window) the row degenerates to full causal attention, and the
// split QK/SV kernel calls over adjacent gathered rows are bitwise identical
// to the single-range attention_prefill path — so window >= context is
// bit-for-bit today's full attention by construction.
Tensor attention_prefill_windowed(const Tensor& q, const Tensor& k,
                                  const Tensor& v, const AttentionConfig& cfg,
                                  int64_t s_total, int64_t sink,
                                  int64_t window, int64_t tail0);

// Decode: one query token against `s` cached keys/values. q is [H*D],
// K, V are [s, HKV*D]. Writes H*D floats to `out`.
void attention_decode_token(const float* q, const Tensor& k, const Tensor& v,
                            const AttentionConfig& cfg, float* out);

}  // namespace qserve
