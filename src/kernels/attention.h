// Attention kernels (Eq. 1) for prefill and decode, with GQA support.
//
// K/V inputs arrive as float matrices — in the quantized-serving path they
// are produced by the paged KV cache's dequantization (src/kvcache), so the
// INT4/INT8 round-trip error is already embedded, exactly like the fused GPU
// kernel that dequantizes page data inline. `fp16_accum` models QServe's
// FP32→FP16 conversion of the QK and SV products (§5.3).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace qserve {

struct AttentionConfig {
  int n_heads = 8;
  int n_kv_heads = 8;   // GQA when < n_heads
  int head_dim = 64;
  bool fp16_accum = false;

  // Loud construction-time validation (same pattern as BatchedStep in PR 4):
  // throws CheckError unless n_heads/n_kv_heads/head_dim are positive,
  // n_heads is a multiple of n_kv_heads, and — when the KV cache stores
  // nibble-packed INT4 codes — head_dim is even. Call once where the config
  // is built; the kernels then only re-check shapes against their inputs.
  void validate(bool int4_kv = false) const;
};

// Causal self-attention for a chunk of `n` new tokens whose keys/values have
// already been appended to K/V. q is [n, H*D]; K, V are [s, HKV*D] with
// s >= n; the new tokens occupy rows s-n .. s-1. Returns [n, H*D].
Tensor attention_prefill(const Tensor& q, const Tensor& k, const Tensor& v,
                         const AttentionConfig& cfg);

// Decode: one query token against `s` cached keys/values. q is [H*D],
// K, V are [s, HKV*D]. Writes H*D floats to `out`.
void attention_decode_token(const float* q, const Tensor& k, const Tensor& v,
                            const AttentionConfig& cfg, float* out);

}  // namespace qserve
