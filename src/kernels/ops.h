// Elementwise / normalization operators with the fusion points QServe uses
// (§5.1): activation quantization is fused into the preceding LayerNorm or
// activation kernel, and the token-sum tX needed by the W4A8 epilogue is
// produced by the same pass.
#pragma once

#include "quant/types.h"

namespace qserve {

// RMSNorm over the last dimension: y = x / rms(x) * gamma.
Tensor rms_norm(const Tensor& x, const Tensor& gamma, float eps = 1e-5f);

// Fused RMSNorm + per-token INT8 quantization (QKV / FFN-1 input in Fig. 11).
QuantizedActs rms_norm_quant(const Tensor& x, const Tensor& gamma,
                             float eps = 1e-5f);

// SiLU and the SwiGLU gate: out = silu(gate) * up, both halves of the FFN-1
// output ([m, 2*d] -> [m, d]).
Tensor silu(const Tensor& x);
Tensor swiglu(const Tensor& gate_up);  // concatenated [gate | up]

// Fused SwiGLU + per-token INT8 quantization (FFN-2 input in Fig. 11).
QuantizedActs swiglu_quant(const Tensor& gate_up);

// Rotary positional embedding applied in-place to a [tokens, heads*dim]
// matrix; `positions[t]` is the absolute position of token t. Pairs channel i
// with channel i + dim/2 inside each head (the convention §4.2 relies on for
// the SmoothAttention constraint λ_i = λ_{i+D/2}).
void rope_inplace(Tensor& x, const std::vector<int>& positions, int head_dim,
                  float theta = 10000.0f);

// y += x
void add_inplace(Tensor& y, const Tensor& x);

}  // namespace qserve
