// Register-level parallelism (RLP) primitives (§5.2.2, §5.2.3, Fig. 13/14).
//
// NVIDIA GPUs manipulate four packed INT8 lanes in one 32-bit register
// (`vadd4` etc.). This header emulates exactly those semantics on the CPU:
//  * `unpack_u4x8` — the 3-logical-op UINT4→UINT8 unpack of Figure 13,
//    operating on the w0,w16,w1,w17,... interleaved storage order;
//  * `vadd4` — per-byte addition with NO carry across lanes (the hardware
//    instruction ignores inter-lane carries);
//  * `mul4_u8_scalar` — the *simulated* 4-way multiply: a full 32-bit integer
//    multiply by a scale padded with 24 zero MSBs. This is only lane-safe if
//    every byte product stays within 8 bits — the property the protective
//    range of progressive quantization guarantees (Fig. 14b) and the naive
//    scheme violates (Fig. 14a). We intentionally emulate it as a plain
//    32-bit multiply so that overflow corrupts neighbouring lanes exactly as
//    it would on the GPU.
#pragma once

#include <cstdint>

namespace qserve {

// --- Figure 13: UINT4 -> UINT8 unpack, 3 logical ops per 8 weights -----------

struct UnpackedU4x8 {
  uint32_t low;   // lanes w0, w1, w2, w3   (bytes, little-endian lane 0 first)
  uint32_t high;  // lanes w16, w17, w18, w19 ... see interleave below
};

// `packed` holds eight 4-bit codes in the RLP interleaved order
//   nibble 0: w0, nibble 1: w16, nibble 2: w1, nibble 3: w17, ...
// so that one shift+two ands split them into two registers of four UINT8
// lanes each: low = {w0,w1,w2,w3}, high = {w16,w17,w18,w19}.
inline UnpackedU4x8 unpack_u4x8(uint32_t packed) {
  UnpackedU4x8 u;
  u.low = packed & 0x0F0F0F0Fu;
  u.high = (packed >> 4) & 0x0F0F0F0Fu;
  return u;
}

// Interleave eight UINT4 codes {a0..a3, b0..b3} -> packed word expected by
// unpack_u4x8 (a* end up in `low`, b* in `high`).
inline uint32_t interleave_u4x8(const uint8_t a[4], const uint8_t b[4]) {
  uint32_t w = 0;
  for (int i = 0; i < 4; ++i) {
    w |= (uint32_t(a[i] & 0x0F)) << (8 * i);
    w |= (uint32_t(b[i] & 0x0F)) << (8 * i + 4);
  }
  return w;
}

// --- 4-way INT8 lane arithmetic ----------------------------------------------

// Hardware vadd4: per-byte add, carries do not propagate across lanes.
inline uint32_t vadd4(uint32_t a, uint32_t b) {
  // Classic SWAR trick: add low 7 bits, then fix up the MSBs.
  const uint32_t sum7 = (a & 0x7F7F7F7Fu) + (b & 0x7F7F7F7Fu);
  return sum7 ^ ((a ^ b) & 0x80808080u);
}

// Simulated 4-way multiply by an 8-bit scalar (§5.2.3): pad the scale into a
// 32-bit register and use one integer multiply. Deliberately NOT lane-safe —
// if any byte product exceeds 255 the carry corrupts the next lane, which is
// precisely the failure mode of subtraction-before-multiplication (Fig. 14a).
inline uint32_t mul4_u8_scalar(uint32_t lanes, uint8_t scale) {
  return lanes * uint32_t(scale);
}

// Broadcast one byte into all four lanes.
inline uint32_t broadcast4(uint8_t b) { return 0x01010101u * uint32_t(b); }

// Lane extraction helpers (lane 0 = least significant byte).
inline uint8_t lane_u8(uint32_t word, int lane) {
  return static_cast<uint8_t>(word >> (8 * lane));
}
inline int8_t lane_s8(uint32_t word, int lane) {
  return static_cast<int8_t>(lane_u8(word, lane));
}

// --- Fused per-group dequant step (Fig. 14b) ---------------------------------
//
// Given four UINT4 codes in lanes, a UINT8 level-2 scale s1 and a UINT4 zero
// point z, produce four SINT8 level-1 codes using subtraction AFTER
// multiplication: lanes*s1 first (each product <= 255, guaranteed by the
// protective range), then vadd4 with the broadcast of -(z*s1).
inline uint32_t dequant4_sub_after_mul(uint32_t u4_lanes, uint8_t s1,
                                       uint8_t z) {
  const uint32_t scaled = mul4_u8_scalar(u4_lanes, s1);
  const uint8_t neg_zs = static_cast<uint8_t>(-(int(z) * int(s1)));  // 2's comp
  return vadd4(scaled, broadcast4(neg_zs));
}

// Subtraction BEFORE multiplication (Fig. 14a): vadd4 with -z first (always
// lane-safe), then the 4-way multiply — which overflows whenever |q-z|*s1
// leaves the signed 8-bit range, corrupting neighbour lanes.
inline uint32_t dequant4_sub_before_mul(uint32_t u4_lanes, uint8_t s1,
                                        uint8_t z) {
  const uint8_t neg_z = static_cast<uint8_t>(-int(z));
  const uint32_t shifted = vadd4(u4_lanes, broadcast4(neg_z));
  return mul4_u8_scalar(shifted, s1);
}

}  // namespace qserve
