#include "kernels/gemm.h"

#include <algorithm>
#include <vector>

#include "common/half.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "kernels/cpu/microkernel.h"
#include "kernels/rlp.h"

namespace qserve {

namespace {

// Input channels per cache block of the (n, k) tiling. An nr x kKcBlock
// weight sub-panel (8-16 KiB) stays L1-resident while the driver sweeps all
// m tokens over it, so unpacked weight tiles are read from memory once per
// call instead of once per token.
constexpr int64_t kKcBlock = 1024;

// Weight-stream size (n*k elements) above which a single-token call should
// take the plain per-group kernel instead of walking the reordered stream:
// for m == 1 the stream walk is pure overhead (one fragment feeds one
// output), and decode-layer weights are always far above this threshold.
constexpr int64_t kStreamedDecodeBypassElems = 1 << 14;

// Panels per parallel_for chunk, derived from the panel count and the pool
// size so small-n decode layers spread over every worker instead of
// serializing on one chunk (a fixed grain of 8 rows left n <= 8*threads
// running on a fraction of the pool). Capped at 8 panels per chunk to keep
// chunks cache-friendly on wide layers.
int64_t panel_grain(int64_t panels) {
  const int64_t threads = std::max(1, num_threads());
  return clamp<int64_t>(panels / (4 * threads), 1, 8);
}

// Core blocked driver. Calls epilogue(t, r, acc) exactly once per output
// element with the exact scalar INT32 accumulator; epilogue must be safe to
// call concurrently for disjoint r.
template <typename EpilogueFn>
void run_blocked(const QuantizedActs& x, const PackedGemmB& w,
                 const EpilogueFn& epilogue) {
  QS_CHECK(w.valid());
  QS_CHECK_EQ(x.k(), w.k);
  const int64_t m = x.m(), kp = w.k_padded;
  const int nr = w.nr;

  // Microkernel lookup: if the active ISA's vector width no longer matches
  // the packed layout (a test flipped QSERVE_ISA after packing), fall back
  // to the scalar kernel, which handles any nr.
  const cpu::Microkernel* mk = &cpu::microkernel_for(cpu::active_isa());
  if (mk->nr != nr) mk = &cpu::microkernel_for(cpu::Isa::kScalar);
  const bool compensate = mk->bias_compensated && !w.unsigned_codes;

  // Stage activations zero-padded to the k-group multiple (pad codes are
  // zero and pad weight codes are zero, so pads contribute nothing).
  const int8_t* xbase = x.q.data();
  std::vector<int8_t> xpad;
  if (kp != w.k) {
    xpad.assign(static_cast<size_t>(m * kp), 0);
    for (int64_t t = 0; t < m; ++t)
      std::copy(x.q.row(t), x.q.row(t) + w.k, xpad.data() + t * kp);
    xbase = xpad.data();
  }

  parallel_for(0, w.panels(), panel_grain(w.panels()), [&](int64_t p0,
                                                           int64_t p1) {
    std::vector<int32_t> pacc(static_cast<size_t>(m * nr));
    for (int64_t p = p0; p < p1; ++p) {
      std::fill(pacc.begin(), pacc.end(), 0);
      const int8_t* panel = w.data.data() + p * w.panel_stride();
      for (int64_t c0 = 0; c0 < kp; c0 += kKcBlock) {
        const int64_t kc = std::min(kKcBlock, kp - c0);
        const int8_t* sub = panel + c0 * nr;
        for (int64_t t = 0; t < m; ++t) {
          const int8_t* xr = xbase + t * kp + c0;
          int32_t* acc = pacc.data() + t * nr;
          if (w.unsigned_codes) {
            mk->dot_u4(xr, reinterpret_cast<const uint8_t*>(sub), kc, nr, acc);
          } else {
            mk->dot_s8(xr, sub, kc, nr, acc);
          }
        }
      }
      const int64_t r_end = std::min<int64_t>(nr, w.n - p * nr);
      for (int64_t t = 0; t < m; ++t) {
        for (int64_t ri = 0; ri < r_end; ++ri) {
          const int64_t r = p * nr + ri;
          int32_t a = pacc[static_cast<size_t>(t * nr + ri)];
          if (compensate) a -= 128 * w.row_sum[static_cast<size_t>(r)];
          epilogue(t, r, a);
        }
      }
    }
  });
}

int preferred_nr() {
  return cpu::microkernel_for(cpu::active_isa()).nr;
}

}  // namespace

Tensor gemm_f32_ref(const Tensor& x, const Tensor& w) {
  QS_CHECK_EQ(x.cols(), w.cols());
  const int64_t m = x.rows(), k = x.cols(), n = w.rows();
  Tensor y({m, n});
  for (int64_t t = 0; t < m; ++t) {
    const float* xr = x.row(t);
    for (int64_t r = 0; r < n; ++r) {
      const float* wr = w.row(r);
      double acc = 0.0;
      for (int64_t c = 0; c < k; ++c) acc += double(xr[c]) * double(wr[c]);
      y.at2(t, r) = static_cast<float>(acc);
    }
  }
  return y;
}

I32Tensor gemm_i8i8_i32(const I8Tensor& x, const I8Tensor& w) {
  QS_CHECK_EQ(x.cols(), w.cols());
  const int64_t m = x.rows(), k = x.cols(), n = w.rows();
  I32Tensor y({m, n});
  for (int64_t t = 0; t < m; ++t) {
    const int8_t* xr = x.row(t);
    for (int64_t r = 0; r < n; ++r) {
      const int8_t* wr = w.row(r);
      int32_t acc = 0;
      for (int64_t c = 0; c < k; ++c)
        acc += int32_t(xr[c]) * int32_t(wr[c]);
      y.at2(t, r) = acc;
    }
  }
  return y;
}

Tensor gemm_blocked(const QuantizedActs& x, const PackedGemmB& w) {
  Tensor y({x.m(), w.n});
  const bool has_zp = !w.zp_term.empty();
  run_blocked(x, w, [&](int64_t t, int64_t r, int32_t acc) {
    // Epilogue: outer-product scaling, FP16 output; the per-channel W4A8
    // zero-point term -tX * (z*s) is subtracted after multiplication
    // (Eq. 12/13). Evaluation order matches the scalar kernels exactly.
    float v = float(acc) * x.s[t] * w.scale[static_cast<size_t>(r)];
    if (has_zp) v -= x.token_sum[t] * w.zp_term[static_cast<size_t>(r)];
    y.at2(t, r) = to_half_precision(v);
  });
  return y;
}

I32Tensor gemm_blocked_acc(const QuantizedActs& x, const PackedGemmB& w) {
  I32Tensor acc({x.m(), w.n});
  run_blocked(x, w,
              [&](int64_t t, int64_t r, int32_t a) { acc.at2(t, r) = a; });
  return acc;
}

Tensor gemm_blocked_epilogue(const I32Tensor& acc, const QuantizedActs& x,
                             const std::vector<float>& scale,
                             const std::vector<float>& zp_term) {
  const int64_t m = acc.rows(), n = acc.cols();
  QS_CHECK_EQ(m, x.m());
  QS_CHECK_EQ(n, static_cast<int64_t>(scale.size()));
  const bool has_zp = !zp_term.empty();
  if (has_zp) QS_CHECK_EQ(n, static_cast<int64_t>(zp_term.size()));
  Tensor y({m, n});
  parallel_for(0, m, 1, [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      for (int64_t r = 0; r < n; ++r) {
        float v = float(acc.at2(t, r)) * x.s[t] * scale[static_cast<size_t>(r)];
        if (has_zp) v -= x.token_sum[t] * zp_term[static_cast<size_t>(r)];
        y.at2(t, r) = to_half_precision(v);
      }
    }
  });
  return y;
}

Tensor gemm_w8a8(const QuantizedActs& x, const W8PerChannel& w) {
  QS_CHECK_EQ(x.k(), w.k());
  return gemm_blocked(x, pack_gemm_b(w, preferred_nr()));
}

Tensor gemm_w4a8_per_channel(const QuantizedActs& x, const W4PerChannel& w) {
  QS_CHECK_EQ(x.k(), w.k());
  // Main loop MACs the raw UINT4 codes against INT8 activations; the
  // zero-point correction -tX * (z*s) happens once per output in the
  // epilogue (subtraction after multiplication, Eq. 12/13).
  return gemm_blocked(x, pack_gemm_b(w, preferred_nr()));
}

Tensor gemm_w4a8_per_group(const QuantizedActs& x, const W4PerGroup& w) {
  QS_CHECK_EQ(x.k(), w.k());
  // Packing performs the level-2 dequant (q - z) * s1 to integer level-1
  // codes (the protective range guarantees they fit INT8; the naive range
  // wraps, reproducing the paper's Fig. 6 overflow); the blocked GEMM then
  // runs entirely on the INT8 path. The SWAR-faithful version of the dequant
  // is exercised by the streamed kernel below; the arithmetic is identical.
  return gemm_blocked(x, pack_gemm_b(w, preferred_nr()));
}

Tensor gemm_w4a8_per_group_streamed(const QuantizedActs& x,
                                    const W4PerGroup& w,
                                    const ReorderedW4& stream,
                                    const ReorderedGroupMeta& meta) {
  QS_CHECK_EQ(x.k(), w.k());
  QS_CHECK_EQ(stream.n, w.n());
  QS_CHECK_EQ(stream.k, w.k());
  const int64_t m = x.m(), n = w.n();

  // Single-token decode against a large weight stream: every fragment feeds
  // exactly one output, so the sequential stream walk buys nothing and the
  // per-fragment bookkeeping dominates. Route to the plain kernel (bitwise
  // identical, and it takes the blocked SIMD path).
  if (m == 1 && n * w.k() >= kStreamedDecodeBypassElems)
    return gemm_w4a8_per_group(x, w);

  I32Tensor acc({m, n});

  // Walk the stream in storage order — one pass, no per-fragment index
  // arithmetic beyond the tile bookkeeping a real thread block keeps.
  size_t pos = 0;
  for (int64_t nt = 0; nt < stream.n_tiles(); ++nt) {
    for (int64_t kt = 0; kt < stream.k_tiles(); ++kt) {
      for (int t = 0; t < kThreadsPerTile; ++t) {
        for (int j = 0; j < kWordsPerThread; ++j, ++pos) {
          const uint32_t word = stream.words[pos];
          const uint8_t s1 = meta.s1[pos];
          const uint8_t z = meta.z[pos];
          // Figure 13 unpack + Figure 14b sub-after-mul dequant, both on
          // packed 32-bit registers.
          const UnpackedU4x8 u = unpack_u4x8(word);
          const uint32_t lo = dequant4_sub_after_mul(u.low, s1, z);
          const uint32_t hi = dequant4_sub_after_mul(u.high, s1, z);
          const int64_t row = nt * kTileN + tile_out_channel(t, j);
          for (int64_t tok = 0; tok < m; ++tok) {
            const int8_t* xr = x.q.row(tok);
            int32_t a = 0;
            for (int l = 0; l < 4; ++l) {
              const int64_t ca = kt * kTileK + tile_in_channel_a(t, l);
              const int64_t cb = kt * kTileK + tile_in_channel_b(t, l);
              a += int32_t(xr[ca]) * int32_t(lane_s8(lo, l));
              a += int32_t(xr[cb]) * int32_t(lane_s8(hi, l));
            }
            acc.at2(tok, row) += a;
          }
        }
      }
    }
  }

  Tensor y({m, n});
  for (int64_t tok = 0; tok < m; ++tok)
    for (int64_t r = 0; r < n; ++r)
      y.at2(tok, r) =
          to_half_precision(float(acc.at2(tok, r)) * x.s[tok] * w.s0[r]);
  return y;
}

Tensor gemm_w4a4_atom(const QuantizedActs& x, const W4A4PerGroup& w) {
  QS_CHECK_EQ(x.k(), w.k());
  const int64_t m = x.m(), k = x.k(), n = w.n();
  const int64_t ng = k / w.group;
  Tensor y({m, n});
  for (int64_t t = 0; t < m; ++t) {
    const int8_t* xr = x.q.row(t);
    const float sx = x.s[t];
    for (int64_t r = 0; r < n; ++r) {
      const int8_t* wr = w.qw.row(r);
      // Per-group INT32 partial sums dequantized to FP32 *inside* the main
      // loop — the CUDA-core bottleneck of Fig. 5c.
      float acc = 0.0f;
      for (int64_t g = 0; g < ng; ++g) {
        const int64_t base = g * w.group;
        int32_t partial = 0;
        for (int64_t c = 0; c < w.group; ++c)
          partial += int32_t(xr[base + c]) * int32_t(wr[base + c]);
        acc += float(partial) * sx * w.s.at2(r, g);
      }
      y.at2(t, r) = to_half_precision(acc);
    }
  }
  return y;
}

Tensor gemm_w4a16(const Tensor& x, const W4A16PerGroup& w) {
  QS_CHECK_EQ(x.cols(), w.k());
  const int64_t m = x.rows(), k = x.cols(), n = w.n();
  Tensor y({m, n});
  for (int64_t r = 0; r < n; ++r) {
    // Main-loop INT4 -> FP16 weight dequantization (Fig. 5b).
    std::vector<float> wrow(static_cast<size_t>(k));
    for (int64_t c = 0; c < k; ++c) {
      const int64_t g = c / w.group;
      wrow[static_cast<size_t>(c)] = to_half_precision(
          float(int(get_u4(w.qw, r, c)) - int(w.z.at2(r, g))) *
          w.s.at2(r, g));
    }
    for (int64_t t = 0; t < m; ++t) {
      const float* xr = x.row(t);
      float acc = 0.0f;
      for (int64_t c = 0; c < k; ++c)
        acc += xr[c] * wrow[static_cast<size_t>(c)];
      y.at2(t, r) = to_half_precision(acc);
    }
  }
  return y;
}

}  // namespace qserve
