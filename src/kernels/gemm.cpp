#include "kernels/gemm.h"

#include <vector>

#include "common/half.h"
#include "common/parallel.h"
#include "kernels/rlp.h"

namespace qserve {

namespace {

// Output channels per parallel_for chunk. Each (t, r) output is computed
// independently, so any partition yields bitwise-identical results.
constexpr int64_t kRowGrain = 8;

}  // namespace

Tensor gemm_f32_ref(const Tensor& x, const Tensor& w) {
  QS_CHECK_EQ(x.cols(), w.cols());
  const int64_t m = x.rows(), k = x.cols(), n = w.rows();
  Tensor y({m, n});
  for (int64_t t = 0; t < m; ++t) {
    const float* xr = x.row(t);
    for (int64_t r = 0; r < n; ++r) {
      const float* wr = w.row(r);
      double acc = 0.0;
      for (int64_t c = 0; c < k; ++c) acc += double(xr[c]) * double(wr[c]);
      y.at2(t, r) = static_cast<float>(acc);
    }
  }
  return y;
}

I32Tensor gemm_i8i8_i32(const I8Tensor& x, const I8Tensor& w) {
  QS_CHECK_EQ(x.cols(), w.cols());
  const int64_t m = x.rows(), k = x.cols(), n = w.rows();
  I32Tensor y({m, n});
  for (int64_t t = 0; t < m; ++t) {
    const int8_t* xr = x.row(t);
    for (int64_t r = 0; r < n; ++r) {
      const int8_t* wr = w.row(r);
      int32_t acc = 0;
      for (int64_t c = 0; c < k; ++c)
        acc += int32_t(xr[c]) * int32_t(wr[c]);
      y.at2(t, r) = acc;
    }
  }
  return y;
}

Tensor gemm_w8a8(const QuantizedActs& x, const W8PerChannel& w) {
  QS_CHECK_EQ(x.k(), w.k());
  const int64_t m = x.m(), k = x.k(), n = w.n();
  Tensor y({m, n});
  parallel_for(0, n, kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int8_t* wr = w.qw.row(r);
      for (int64_t t = 0; t < m; ++t) {
        const int8_t* xr = x.q.row(t);
        int32_t acc = 0;
        for (int64_t c = 0; c < k; ++c)
          acc += int32_t(xr[c]) * int32_t(wr[c]);
        // Epilogue: outer-product scaling, FP16 output.
        y.at2(t, r) = to_half_precision(float(acc) * x.s[t] * w.s[r]);
      }
    }
  });
  return y;
}

Tensor gemm_w4a8_per_channel(const QuantizedActs& x, const W4PerChannel& w) {
  QS_CHECK_EQ(x.k(), w.k());
  const int64_t m = x.m(), k = x.k(), n = w.n();
  Tensor y({m, n});
  // Main loop MACs the raw UINT4 codes against INT8 activations; the
  // zero-point correction -tX * (z*s) happens once per output in the epilogue
  // (subtraction after multiplication, Eq. 12/13).
  parallel_for(0, n, kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t t = 0; t < m; ++t) {
        const int8_t* xr = x.q.row(t);
        int32_t acc = 0;
        for (int64_t c = 0; c < k; ++c)
          acc += int32_t(xr[c]) * int32_t(get_u4(w.qw, r, c));
        const float main_term = float(acc) * x.s[t] * w.s[r];
        y.at2(t, r) = to_half_precision(main_term - x.token_sum[t] * w.szw[r]);
      }
    }
  });
  return y;
}

Tensor gemm_w4a8_per_group(const QuantizedActs& x, const W4PerGroup& w) {
  QS_CHECK_EQ(x.k(), w.k());
  const int64_t m = x.m(), k = x.k(), n = w.n();
  Tensor y({m, n});
  // Main loop: level-2 dequant (q - z) * s1 restores the *integer* level-1
  // codes (the protective range guarantees they fit INT8), then INT8 MACs.
  // The SWAR-faithful version of this dequant is exercised by the streamed
  // kernel below; the integer arithmetic is identical.
  parallel_for(0, n, kRowGrain, [&](int64_t r0, int64_t r1) {
    std::vector<int8_t> wrow(static_cast<size_t>(k));  // per-chunk scratch
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t c = 0; c < k; ++c) {
        const int64_t g = c / w.group;
        const int code = (int(get_u4(w.qw, r, c)) - int(w.z.at2(r, g))) *
                         int(w.s1.at2(r, g));
        // With the protective range (level1_range = 119) the code always
        // fits INT8; with the naive range (127) it can exceed it, and the
        // cast wraps exactly like the INT8 register in the GPU kernel —
        // that overflow is the accuracy bug the paper's Fig. 6 reproduces,
        // so it must not be asserted away.
        wrow[static_cast<size_t>(c)] = static_cast<int8_t>(code);
      }
      for (int64_t t = 0; t < m; ++t) {
        const int8_t* xr = x.q.row(t);
        int32_t acc = 0;
        for (int64_t c = 0; c < k; ++c)
          acc += int32_t(xr[c]) * int32_t(wrow[static_cast<size_t>(c)]);
        y.at2(t, r) = to_half_precision(float(acc) * x.s[t] * w.s0[r]);
      }
    }
  });
  return y;
}

Tensor gemm_w4a8_per_group_streamed(const QuantizedActs& x,
                                    const W4PerGroup& w,
                                    const ReorderedW4& stream,
                                    const ReorderedGroupMeta& meta) {
  QS_CHECK_EQ(x.k(), w.k());
  QS_CHECK_EQ(stream.n, w.n());
  QS_CHECK_EQ(stream.k, w.k());
  const int64_t m = x.m(), n = w.n();
  I32Tensor acc({m, n});

  // Walk the stream in storage order — one pass, no per-fragment index
  // arithmetic beyond the tile bookkeeping a real thread block keeps.
  size_t pos = 0;
  for (int64_t nt = 0; nt < stream.n_tiles(); ++nt) {
    for (int64_t kt = 0; kt < stream.k_tiles(); ++kt) {
      for (int t = 0; t < kThreadsPerTile; ++t) {
        for (int j = 0; j < kWordsPerThread; ++j, ++pos) {
          const uint32_t word = stream.words[pos];
          const uint8_t s1 = meta.s1[pos];
          const uint8_t z = meta.z[pos];
          // Figure 13 unpack + Figure 14b sub-after-mul dequant, both on
          // packed 32-bit registers.
          const UnpackedU4x8 u = unpack_u4x8(word);
          const uint32_t lo = dequant4_sub_after_mul(u.low, s1, z);
          const uint32_t hi = dequant4_sub_after_mul(u.high, s1, z);
          const int64_t row = nt * kTileN + tile_out_channel(t, j);
          for (int64_t tok = 0; tok < m; ++tok) {
            const int8_t* xr = x.q.row(tok);
            int32_t a = 0;
            for (int l = 0; l < 4; ++l) {
              const int64_t ca = kt * kTileK + tile_in_channel_a(t, l);
              const int64_t cb = kt * kTileK + tile_in_channel_b(t, l);
              a += int32_t(xr[ca]) * int32_t(lane_s8(lo, l));
              a += int32_t(xr[cb]) * int32_t(lane_s8(hi, l));
            }
            acc.at2(tok, row) += a;
          }
        }
      }
    }
  }

  Tensor y({m, n});
  for (int64_t tok = 0; tok < m; ++tok)
    for (int64_t r = 0; r < n; ++r)
      y.at2(tok, r) =
          to_half_precision(float(acc.at2(tok, r)) * x.s[tok] * w.s0[r]);
  return y;
}

Tensor gemm_w4a4_atom(const QuantizedActs& x, const W4A4PerGroup& w) {
  QS_CHECK_EQ(x.k(), w.k());
  const int64_t m = x.m(), k = x.k(), n = w.n();
  const int64_t ng = k / w.group;
  Tensor y({m, n});
  for (int64_t t = 0; t < m; ++t) {
    const int8_t* xr = x.q.row(t);
    const float sx = x.s[t];
    for (int64_t r = 0; r < n; ++r) {
      const int8_t* wr = w.qw.row(r);
      // Per-group INT32 partial sums dequantized to FP32 *inside* the main
      // loop — the CUDA-core bottleneck of Fig. 5c.
      float acc = 0.0f;
      for (int64_t g = 0; g < ng; ++g) {
        const int64_t base = g * w.group;
        int32_t partial = 0;
        for (int64_t c = 0; c < w.group; ++c)
          partial += int32_t(xr[base + c]) * int32_t(wr[base + c]);
        acc += float(partial) * sx * w.s.at2(r, g);
      }
      y.at2(t, r) = to_half_precision(acc);
    }
  }
  return y;
}

Tensor gemm_w4a16(const Tensor& x, const W4A16PerGroup& w) {
  QS_CHECK_EQ(x.cols(), w.k());
  const int64_t m = x.rows(), k = x.cols(), n = w.n();
  Tensor y({m, n});
  for (int64_t r = 0; r < n; ++r) {
    // Main-loop INT4 -> FP16 weight dequantization (Fig. 5b).
    std::vector<float> wrow(static_cast<size_t>(k));
    for (int64_t c = 0; c < k; ++c) {
      const int64_t g = c / w.group;
      wrow[static_cast<size_t>(c)] = to_half_precision(
          float(int(get_u4(w.qw, r, c)) - int(w.z.at2(r, g))) *
          w.s.at2(r, g));
    }
    for (int64_t t = 0; t < m; ++t) {
      const float* xr = x.row(t);
      float acc = 0.0f;
      for (int64_t c = 0; c < k; ++c)
        acc += xr[c] * wrow[static_cast<size_t>(c)];
      y.at2(t, r) = to_half_precision(acc);
    }
  }
  return y;
}

}  // namespace qserve
