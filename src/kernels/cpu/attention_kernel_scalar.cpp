// Scalar reference attention kernels + the dispatch table.
//
// Like microkernel_scalar.cpp, this file is compiled with auto-vectorization
// disabled (and -ffp-contract=off, see CMakeLists) so QSERVE_ISA=scalar
// measures a genuine one-MAC-at-a-time baseline whose roundings match the
// vector kernels' mul-then-add sequences exactly.
#include "kernels/cpu/attention_kernel.h"

#include "kernels/cpu/attention_kernel_inline.h"

namespace qserve::cpu {

namespace {

using attn_inline::run_element;
using attn_inline::token_params;

template <KvRunKind K>
void qk_dot_scalar_t(const float* q, const KvHeadRun& run, int head_dim,
                     float* dots) {
  for (int64_t t = 0; t < run.n_tokens; ++t) {
    const uint8_t* ct = run.codes ? run.codes + t * run.stride : nullptr;
    const uint16_t* ht =
        run.half_bits ? run.half_bits + t * run.stride : nullptr;
    const float* ft = run.f32 ? run.f32 + t * run.stride : nullptr;
    const auto p = token_params<K>(run, t);
    // The canonical 16-lane accumulation: lane d & 15, increasing d.
    float lanes[kQkLanes] = {};
    for (int d = 0; d < head_dim; ++d)
      lanes[d & (kQkLanes - 1)] +=
          q[d] * run_element<K>(ct, ht, ft, d, p.scale, p.zero);
    dots[t] = fold_qk_lanes(lanes);
  }
}

template <KvRunKind K>
void sv_accum_scalar_t(const float* p, const KvHeadRun& run, int head_dim,
                       float* out) {
  for (int64_t t = 0; t < run.n_tokens; ++t) {
    const uint8_t* ct = run.codes ? run.codes + t * run.stride : nullptr;
    const uint16_t* ht =
        run.half_bits ? run.half_bits + t * run.stride : nullptr;
    const float* ft = run.f32 ? run.f32 + t * run.stride : nullptr;
    const auto tp = token_params<K>(run, t);
    const float pt = p[t];
    for (int d = 0; d < head_dim; ++d)
      out[d] += pt * run_element<K>(ct, ht, ft, d, tp.scale, tp.zero);
  }
}

void qk_dot_scalar(const float* q, const KvHeadRun& run, int head_dim,
                   float* dots) {
  switch (run.kind) {
    case KvRunKind::kF32:
      return qk_dot_scalar_t<KvRunKind::kF32>(q, run, head_dim, dots);
    case KvRunKind::kFp16:
      return qk_dot_scalar_t<KvRunKind::kFp16>(q, run, head_dim, dots);
    case KvRunKind::kInt8Dyn:
      return qk_dot_scalar_t<KvRunKind::kInt8Dyn>(q, run, head_dim, dots);
    case KvRunKind::kInt8Static:
      return qk_dot_scalar_t<KvRunKind::kInt8Static>(q, run, head_dim, dots);
    case KvRunKind::kInt4Dyn:
      return qk_dot_scalar_t<KvRunKind::kInt4Dyn>(q, run, head_dim, dots);
  }
}

void sv_accum_scalar(const float* p, const KvHeadRun& run, int head_dim,
                     float* out) {
  switch (run.kind) {
    case KvRunKind::kF32:
      return sv_accum_scalar_t<KvRunKind::kF32>(p, run, head_dim, out);
    case KvRunKind::kFp16:
      return sv_accum_scalar_t<KvRunKind::kFp16>(p, run, head_dim, out);
    case KvRunKind::kInt8Dyn:
      return sv_accum_scalar_t<KvRunKind::kInt8Dyn>(p, run, head_dim, out);
    case KvRunKind::kInt8Static:
      return sv_accum_scalar_t<KvRunKind::kInt8Static>(p, run, head_dim, out);
    case KvRunKind::kInt4Dyn:
      return sv_accum_scalar_t<KvRunKind::kInt4Dyn>(p, run, head_dim, out);
  }
}

constexpr AttentionKernels kScalarAttentionKernels = {
    Isa::kScalar,
    qk_dot_scalar,
    sv_accum_scalar,
};

}  // namespace

const AttentionKernels& attention_kernel_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      break;
    case Isa::kAvx2:
      if (const AttentionKernels* k = avx2_attention_kernel()) return *k;
      break;
    case Isa::kAvx512:
      if (const AttentionKernels* k = avx512_attention_kernel()) return *k;
      break;
  }
  return kScalarAttentionKernels;
}

}  // namespace qserve::cpu
