// Runtime ISA selection for the CPU GEMM microkernels.
//
// The hot INT8 dot-product loops have three implementations (scalar, AVX2,
// AVX-512 VNNI) that are bitwise-identical in their INT32 accumulators; this
// header picks which one runs. Resolution order for active_isa():
//   1. set_isa(...) — programmatic override (tests, benches),
//   2. the QSERVE_ISA environment variable ("scalar" / "avx2" / "avx512"),
//   3. the best ISA the host CPU reports via CPUID.
// Requests for an ISA the host does not support clamp down to detected_isa(),
// so QSERVE_ISA=avx512 on an AVX2 machine degrades gracefully instead of
// faulting on the first 512-bit instruction.
#pragma once

#include <optional>

namespace qserve::cpu {

// Ordered by capability: every level can execute the levels below it.
enum class Isa : int {
  kScalar = 0,
  kAvx2 = 1,    // vpmaddwd 16-bit-widened dot products
  kAvx512 = 2,  // AVX-512 VNNI vpdpbusd dot products
};

const char* isa_name(Isa isa);

// Parse a QSERVE_ISA-style string; nullopt for anything unrecognized.
std::optional<Isa> parse_isa(const char* s);

// Best ISA supported by this host (CPUID; cached after the first call).
Isa detected_isa();

// The ISA the dispatch tables currently resolve to (see resolution order
// above). The env variable is re-read on each call so tests can toggle it;
// the cost is one getenv per GEMM call, far off the hot path.
Isa active_isa();

// Pin the active ISA (clamped to detected_isa()); kScalar is always honored.
void set_isa(Isa isa);

// Drop the set_isa pin, returning control to QSERVE_ISA / detection.
void clear_isa_override();

}  // namespace qserve::cpu
