// Internal helpers shared by the attention kernel TUs (scalar/AVX2/AVX-512).
//
// Include ONLY from src/kernels/cpu/attention_kernel_*.cpp: the dequantize
// helpers here are mul-then-add chains whose roundings are part of the
// cross-ISA numerics contract, and those TUs are the ones CMake compiles
// with -ffp-contract=off (a TU built with contraction enabled could fuse
// `float(c) * scale + zero` into an FMA and break bitwise identity).
#pragma once

#include <cstdint>

#include "common/half.h"
#include "kernels/cpu/attention_kernel.h"

namespace qserve::cpu::attn_inline {

// Per-token dequant parameters: dynamic kinds read the in-page FP16
// scale/zero pair, the static-INT8 kind carries its one tensor-wide scale,
// and the float kinds need none.
struct TokenParams {
  float scale = 0.0f;
  float zero = 0.0f;
};

template <KvRunKind K>
inline TokenParams token_params(const KvHeadRun& run, int64_t t) {
  if constexpr (K == KvRunKind::kInt8Dyn || K == KvRunKind::kInt4Dyn) {
    const uint16_t* p = run.params + t * run.param_stride;
    return {detail::half_bits_to_float(p[0]),
            detail::half_bits_to_float(p[1])};
  } else if constexpr (K == KvRunKind::kInt8Static) {
    return {run.static_scale, 0.0f};
  } else {
    (void)run;
    (void)t;
    return {};
  }
}

// Dequantized element d of one token, given that token's base pointers —
// the scalar reference every vector kernel's tail must reproduce exactly.
template <KvRunKind K>
inline float run_element(const uint8_t* codes_t, const uint16_t* half_t,
                         const float* f32_t, int d, float scale, float zero) {
  if constexpr (K == KvRunKind::kF32) {
    return f32_t[d];
  } else if constexpr (K == KvRunKind::kFp16) {
    return detail::half_bits_to_float(half_t[d]);
  } else if constexpr (K == KvRunKind::kInt8Dyn) {
    return float(codes_t[d]) * scale + zero;
  } else if constexpr (K == KvRunKind::kInt8Static) {
    (void)zero;
    return float(static_cast<int8_t>(codes_t[d])) * scale;
  } else {  // kInt4Dyn: two codes per byte, even index in the low nibble
    const uint8_t c = (codes_t[d >> 1] >> ((d & 1) * 4)) & 0xF;
    return float(c) * scale + zero;
  }
}

}  // namespace qserve::cpu::attn_inline
