// AVX2 attention kernels: 16 dequantized KV elements per step held in two
// __m256 accumulators — exactly the 16 virtual lanes of the canonical QK
// reduction order (attention_kernel.h), so the vector code IS the reference
// order. All float math is mul_ps/add_ps (never fmadd), matching the
// contraction-free scalar kernel rounding for rounding.
//
// Compiled via function-level target attributes so the TU builds regardless
// of -march; dispatch guarantees these run only on AVX2+F16C hosts.
#include "kernels/cpu/attention_kernel.h"

#if defined(__x86_64__) && defined(__GNUC__)

#include <immintrin.h>

#include "kernels/cpu/attention_kernel_inline.h"

namespace qserve::cpu {

namespace {

using attn_inline::run_element;
using attn_inline::token_params;

#define QS_AVX2_TARGET __attribute__((target("avx2,f16c")))

// 16 dequantized elements [d, d+16) of one token: lanes 0-7 in `lo`,
// lanes 8-15 in `hi`.
struct Dequant16 {
  __m256 lo, hi;
};

template <KvRunKind K>
QS_AVX2_TARGET inline Dequant16 load16(const uint8_t* ct, const uint16_t* ht,
                                       const float* ft, int d, __m256 vs,
                                       __m256 vz) {
  if constexpr (K == KvRunKind::kF32) {
    return {_mm256_loadu_ps(ft + d), _mm256_loadu_ps(ft + d + 8)};
  } else if constexpr (K == KvRunKind::kFp16) {
    // Half -> float is exact, and the stored halves are never signalling
    // NaNs (float_to_half_bits quiets them), so vcvtph2ps reproduces
    // detail::half_bits_to_float bit for bit.
    const __m128i h0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ht + d));
    const __m128i h1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ht + d + 8));
    return {_mm256_cvtph_ps(h0), _mm256_cvtph_ps(h1)};
  } else if constexpr (K == KvRunKind::kInt8Dyn) {
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ct + d));
    const __m256 f0 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(b));
    const __m256 f1 =
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_srli_si128(b, 8)));
    return {_mm256_add_ps(_mm256_mul_ps(f0, vs), vz),
            _mm256_add_ps(_mm256_mul_ps(f1, vs), vz)};
  } else if constexpr (K == KvRunKind::kInt8Static) {
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ct + d));
    const __m256 f0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
    const __m256 f1 =
        _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(b, 8)));
    return {_mm256_mul_ps(f0, vs), _mm256_mul_ps(f1, vs)};
  } else {  // kInt4Dyn: 8 bytes hold the 16 nibble-packed codes
    const __m128i b = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(ct + (d >> 1)));
    const __m128i mask = _mm_set1_epi8(0x0F);
    const __m128i even = _mm_and_si128(b, mask);                     // low nibbles
    const __m128i odd = _mm_and_si128(_mm_srli_epi16(b, 4), mask);   // high
    const __m128i codes = _mm_unpacklo_epi8(even, odd);  // element order
    const __m256 f0 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(codes));
    const __m256 f1 =
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_srli_si128(codes, 8)));
    return {_mm256_add_ps(_mm256_mul_ps(f0, vs), vz),
            _mm256_add_ps(_mm256_mul_ps(f1, vs), vz)};
  }
}

template <KvRunKind K>
QS_AVX2_TARGET void qk_dot_avx2_t(const float* q, const KvHeadRun& run,
                                  int head_dim, float* dots) {
  const int blocks = head_dim & ~(kQkLanes - 1);
  for (int64_t t = 0; t < run.n_tokens; ++t) {
    const uint8_t* ct = run.codes ? run.codes + t * run.stride : nullptr;
    const uint16_t* ht =
        run.half_bits ? run.half_bits + t * run.stride : nullptr;
    const float* ft = run.f32 ? run.f32 + t * run.stride : nullptr;
    const auto p = token_params<K>(run, t);
    const __m256 vs = _mm256_set1_ps(p.scale);
    const __m256 vz = _mm256_set1_ps(p.zero);
    __m256 acc_lo = _mm256_setzero_ps();
    __m256 acc_hi = _mm256_setzero_ps();
    for (int d = 0; d < blocks; d += kQkLanes) {
      const Dequant16 kv = load16<K>(ct, ht, ft, d, vs, vz);
      acc_lo =
          _mm256_add_ps(acc_lo, _mm256_mul_ps(_mm256_loadu_ps(q + d), kv.lo));
      acc_hi = _mm256_add_ps(acc_hi,
                             _mm256_mul_ps(_mm256_loadu_ps(q + d + 8), kv.hi));
    }
    float lanes[kQkLanes];
    _mm256_storeu_ps(lanes, acc_lo);
    _mm256_storeu_ps(lanes + 8, acc_hi);
    // Tail elements continue the same lane walk the scalar kernel performs.
    for (int d = blocks; d < head_dim; ++d)
      lanes[d & (kQkLanes - 1)] +=
          q[d] * run_element<K>(ct, ht, ft, d, p.scale, p.zero);
    dots[t] = fold_qk_lanes(lanes);
  }
}

template <KvRunKind K>
QS_AVX2_TARGET void sv_accum_avx2_t(const float* p, const KvHeadRun& run,
                                    int head_dim, float* out) {
  const int blocks = head_dim & ~(kQkLanes - 1);
  for (int64_t t = 0; t < run.n_tokens; ++t) {
    const uint8_t* ct = run.codes ? run.codes + t * run.stride : nullptr;
    const uint16_t* ht =
        run.half_bits ? run.half_bits + t * run.stride : nullptr;
    const float* ft = run.f32 ? run.f32 + t * run.stride : nullptr;
    const auto tp = token_params<K>(run, t);
    const __m256 vs = _mm256_set1_ps(tp.scale);
    const __m256 vz = _mm256_set1_ps(tp.zero);
    const __m256 vp = _mm256_set1_ps(p[t]);
    for (int d = 0; d < blocks; d += kQkLanes) {
      const Dequant16 v = load16<K>(ct, ht, ft, d, vs, vz);
      const __m256 o0 = _mm256_loadu_ps(out + d);
      const __m256 o1 = _mm256_loadu_ps(out + d + 8);
      _mm256_storeu_ps(out + d,
                       _mm256_add_ps(o0, _mm256_mul_ps(vp, v.lo)));
      _mm256_storeu_ps(out + d + 8,
                       _mm256_add_ps(o1, _mm256_mul_ps(vp, v.hi)));
    }
    for (int d = blocks; d < head_dim; ++d)
      out[d] += p[t] * run_element<K>(ct, ht, ft, d, tp.scale, tp.zero);
  }
}

void qk_dot_avx2(const float* q, const KvHeadRun& run, int head_dim,
                 float* dots) {
  switch (run.kind) {
    case KvRunKind::kF32:
      return qk_dot_avx2_t<KvRunKind::kF32>(q, run, head_dim, dots);
    case KvRunKind::kFp16:
      return qk_dot_avx2_t<KvRunKind::kFp16>(q, run, head_dim, dots);
    case KvRunKind::kInt8Dyn:
      return qk_dot_avx2_t<KvRunKind::kInt8Dyn>(q, run, head_dim, dots);
    case KvRunKind::kInt8Static:
      return qk_dot_avx2_t<KvRunKind::kInt8Static>(q, run, head_dim, dots);
    case KvRunKind::kInt4Dyn:
      return qk_dot_avx2_t<KvRunKind::kInt4Dyn>(q, run, head_dim, dots);
  }
}

void sv_accum_avx2(const float* p, const KvHeadRun& run, int head_dim,
                   float* out) {
  switch (run.kind) {
    case KvRunKind::kF32:
      return sv_accum_avx2_t<KvRunKind::kF32>(p, run, head_dim, out);
    case KvRunKind::kFp16:
      return sv_accum_avx2_t<KvRunKind::kFp16>(p, run, head_dim, out);
    case KvRunKind::kInt8Dyn:
      return sv_accum_avx2_t<KvRunKind::kInt8Dyn>(p, run, head_dim, out);
    case KvRunKind::kInt8Static:
      return sv_accum_avx2_t<KvRunKind::kInt8Static>(p, run, head_dim, out);
    case KvRunKind::kInt4Dyn:
      return sv_accum_avx2_t<KvRunKind::kInt4Dyn>(p, run, head_dim, out);
  }
}

#undef QS_AVX2_TARGET

constexpr AttentionKernels kAvx2AttentionKernels = {
    Isa::kAvx2,
    qk_dot_avx2,
    sv_accum_avx2,
};

}  // namespace

const AttentionKernels* avx2_attention_kernel() {
  return &kAvx2AttentionKernels;
}

}  // namespace qserve::cpu

#else  // non-x86 or non-GNU toolchain: AVX2 path compiled out.

namespace qserve::cpu {
const AttentionKernels* avx2_attention_kernel() { return nullptr; }
}  // namespace qserve::cpu

#endif
