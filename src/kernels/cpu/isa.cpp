#include "kernels/cpu/isa.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qserve::cpu {

namespace {

// -1 = no programmatic override.
std::atomic<int> g_isa_override{-1};

Isa detect_host_isa() {
#if defined(__x86_64__) && defined(__GNUC__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vnni")) {
    return Isa::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
  return Isa::kScalar;
}

Isa clamp_to_detected(Isa isa) {
  return static_cast<int>(isa) <= static_cast<int>(detected_isa())
             ? isa
             : detected_isa();
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

std::optional<Isa> parse_isa(const char* s) {
  if (s == nullptr) return std::nullopt;
  if (std::strcmp(s, "scalar") == 0) return Isa::kScalar;
  if (std::strcmp(s, "avx2") == 0) return Isa::kAvx2;
  if (std::strcmp(s, "avx512") == 0 || std::strcmp(s, "avx512vnni") == 0)
    return Isa::kAvx512;
  return std::nullopt;
}

Isa detected_isa() {
  static const Isa detected = detect_host_isa();
  return detected;
}

Isa active_isa() {
  const int pinned = g_isa_override.load(std::memory_order_relaxed);
  if (pinned >= 0) return clamp_to_detected(static_cast<Isa>(pinned));
  if (const auto env = parse_isa(std::getenv("QSERVE_ISA")))
    return clamp_to_detected(*env);
  return detected_isa();
}

void set_isa(Isa isa) {
  g_isa_override.store(static_cast<int>(clamp_to_detected(isa)),
                       std::memory_order_relaxed);
}

void clear_isa_override() {
  g_isa_override.store(-1, std::memory_order_relaxed);
}

}  // namespace qserve::cpu
