// Scalar reference microkernel + the dispatch table.
//
// This file is compiled with auto-vectorization disabled (see CMakeLists) so
// that QSERVE_ISA=scalar measures a genuine one-MAC-at-a-time baseline and
// the bench regression numbers stay comparable across compiler versions.
#include "kernels/cpu/microkernel.h"

namespace qserve::cpu {

namespace {

void dot_s8_scalar(const int8_t* x, const int8_t* w_panel, int64_t kc, int nr,
                   int32_t* acc) {
  for (int64_t g = 0; g < kc / kKGroup; ++g) {
    const int8_t* xg = x + g * kKGroup;
    const int8_t* wg = w_panel + g * nr * kKGroup;
    for (int r = 0; r < nr; ++r) {
      int32_t a = acc[r];
      for (int j = 0; j < kKGroup; ++j)
        a += int32_t(xg[j]) * int32_t(wg[r * kKGroup + j]);
      acc[r] = a;
    }
  }
}

void dot_u4_scalar(const int8_t* x, const uint8_t* w_panel, int64_t kc,
                   int nr, int32_t* acc) {
  for (int64_t g = 0; g < kc / kKGroup; ++g) {
    const int8_t* xg = x + g * kKGroup;
    const uint8_t* wg = w_panel + g * nr * kKGroup;
    for (int r = 0; r < nr; ++r) {
      int32_t a = acc[r];
      for (int j = 0; j < kKGroup; ++j)
        a += int32_t(xg[j]) * int32_t(wg[r * kKGroup + j]);
      acc[r] = a;
    }
  }
}

constexpr Microkernel kScalarKernel = {
    Isa::kScalar,
    /*nr=*/8,  // shares the AVX2 panel layout so ISA flips stay compatible
    /*bias_compensated=*/false,
    dot_s8_scalar,
    dot_u4_scalar,
};

}  // namespace

const Microkernel& microkernel_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      break;
    case Isa::kAvx2:
      if (const Microkernel* mk = avx2_microkernel()) return *mk;
      break;
    case Isa::kAvx512:
      if (const Microkernel* mk = avx512_microkernel()) return *mk;
      break;
  }
  return kScalarKernel;
}

}  // namespace qserve::cpu
