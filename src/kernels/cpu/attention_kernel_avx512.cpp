// AVX-512 attention kernels: one __m512 accumulator holds the 16 virtual
// lanes of the canonical QK reduction order (attention_kernel.h) directly, so
// a single storeu + fold_qk_lanes reproduces the scalar reference bit for
// bit. Float math is mul_ps/add_ps only — never fmadd — to keep roundings
// identical to the contraction-free scalar TU.
//
// Compiled via function-level target attributes so the TU builds regardless
// of -march; dispatch guarantees these run only on AVX-512F hosts.
#include "kernels/cpu/attention_kernel.h"

#if defined(__x86_64__) && defined(__GNUC__)

#include <immintrin.h>

#include "kernels/cpu/attention_kernel_inline.h"

namespace qserve::cpu {

namespace {

using attn_inline::run_element;
using attn_inline::token_params;

#define QS_AVX512_TARGET __attribute__((target("avx512f")))

// 16 dequantized elements [d, d+16) of one token, one per lane.
template <KvRunKind K>
QS_AVX512_TARGET inline __m512 load16(const uint8_t* ct, const uint16_t* ht,
                                      const float* ft, int d, __m512 vs,
                                      __m512 vz) {
  if constexpr (K == KvRunKind::kF32) {
    return _mm512_loadu_ps(ft + d);
  } else if constexpr (K == KvRunKind::kFp16) {
    // Exact conversion; stored halves are never signalling NaNs
    // (float_to_half_bits quiets them), so vcvtph2ps matches
    // detail::half_bits_to_float bit for bit.
    return _mm512_cvtph_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ht + d)));
  } else if constexpr (K == KvRunKind::kInt8Dyn) {
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ct + d));
    const __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(b));
    return _mm512_add_ps(_mm512_mul_ps(f, vs), vz);
  } else if constexpr (K == KvRunKind::kInt8Static) {
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ct + d));
    const __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(b));
    return _mm512_mul_ps(f, vs);
  } else {  // kInt4Dyn: 8 bytes hold the 16 nibble-packed codes
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ct + (d >> 1)));
    const __m128i mask = _mm_set1_epi8(0x0F);
    const __m128i even = _mm_and_si128(b, mask);                    // low nibbles
    const __m128i odd = _mm_and_si128(_mm_srli_epi16(b, 4), mask);  // high
    const __m128i codes = _mm_unpacklo_epi8(even, odd);  // element order
    const __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(codes));
    return _mm512_add_ps(_mm512_mul_ps(f, vs), vz);
  }
}

template <KvRunKind K>
QS_AVX512_TARGET void qk_dot_avx512_t(const float* q, const KvHeadRun& run,
                                      int head_dim, float* dots) {
  const int blocks = head_dim & ~(kQkLanes - 1);
  for (int64_t t = 0; t < run.n_tokens; ++t) {
    const uint8_t* ct = run.codes ? run.codes + t * run.stride : nullptr;
    const uint16_t* ht =
        run.half_bits ? run.half_bits + t * run.stride : nullptr;
    const float* ft = run.f32 ? run.f32 + t * run.stride : nullptr;
    const auto p = token_params<K>(run, t);
    const __m512 vs = _mm512_set1_ps(p.scale);
    const __m512 vz = _mm512_set1_ps(p.zero);
    __m512 acc = _mm512_setzero_ps();
    for (int d = 0; d < blocks; d += kQkLanes) {
      const __m512 kv = load16<K>(ct, ht, ft, d, vs, vz);
      acc = _mm512_add_ps(acc, _mm512_mul_ps(_mm512_loadu_ps(q + d), kv));
    }
    float lanes[kQkLanes];
    _mm512_storeu_ps(lanes, acc);
    // Tail elements continue the same lane walk the scalar kernel performs.
    for (int d = blocks; d < head_dim; ++d)
      lanes[d & (kQkLanes - 1)] +=
          q[d] * run_element<K>(ct, ht, ft, d, p.scale, p.zero);
    dots[t] = fold_qk_lanes(lanes);
  }
}

template <KvRunKind K>
QS_AVX512_TARGET void sv_accum_avx512_t(const float* p, const KvHeadRun& run,
                                        int head_dim, float* out) {
  const int blocks = head_dim & ~(kQkLanes - 1);
  for (int64_t t = 0; t < run.n_tokens; ++t) {
    const uint8_t* ct = run.codes ? run.codes + t * run.stride : nullptr;
    const uint16_t* ht =
        run.half_bits ? run.half_bits + t * run.stride : nullptr;
    const float* ft = run.f32 ? run.f32 + t * run.stride : nullptr;
    const auto tp = token_params<K>(run, t);
    const __m512 vs = _mm512_set1_ps(tp.scale);
    const __m512 vz = _mm512_set1_ps(tp.zero);
    const __m512 vp = _mm512_set1_ps(p[t]);
    for (int d = 0; d < blocks; d += kQkLanes) {
      const __m512 v = load16<K>(ct, ht, ft, d, vs, vz);
      const __m512 o = _mm512_loadu_ps(out + d);
      _mm512_storeu_ps(out + d, _mm512_add_ps(o, _mm512_mul_ps(vp, v)));
    }
    for (int d = blocks; d < head_dim; ++d)
      out[d] += p[t] * run_element<K>(ct, ht, ft, d, tp.scale, tp.zero);
  }
}

void qk_dot_avx512(const float* q, const KvHeadRun& run, int head_dim,
                   float* dots) {
  switch (run.kind) {
    case KvRunKind::kF32:
      return qk_dot_avx512_t<KvRunKind::kF32>(q, run, head_dim, dots);
    case KvRunKind::kFp16:
      return qk_dot_avx512_t<KvRunKind::kFp16>(q, run, head_dim, dots);
    case KvRunKind::kInt8Dyn:
      return qk_dot_avx512_t<KvRunKind::kInt8Dyn>(q, run, head_dim, dots);
    case KvRunKind::kInt8Static:
      return qk_dot_avx512_t<KvRunKind::kInt8Static>(q, run, head_dim, dots);
    case KvRunKind::kInt4Dyn:
      return qk_dot_avx512_t<KvRunKind::kInt4Dyn>(q, run, head_dim, dots);
  }
}

void sv_accum_avx512(const float* p, const KvHeadRun& run, int head_dim,
                     float* out) {
  switch (run.kind) {
    case KvRunKind::kF32:
      return sv_accum_avx512_t<KvRunKind::kF32>(p, run, head_dim, out);
    case KvRunKind::kFp16:
      return sv_accum_avx512_t<KvRunKind::kFp16>(p, run, head_dim, out);
    case KvRunKind::kInt8Dyn:
      return sv_accum_avx512_t<KvRunKind::kInt8Dyn>(p, run, head_dim, out);
    case KvRunKind::kInt8Static:
      return sv_accum_avx512_t<KvRunKind::kInt8Static>(p, run, head_dim, out);
    case KvRunKind::kInt4Dyn:
      return sv_accum_avx512_t<KvRunKind::kInt4Dyn>(p, run, head_dim, out);
  }
}

#undef QS_AVX512_TARGET

constexpr AttentionKernels kAvx512AttentionKernels = {
    Isa::kAvx512,
    qk_dot_avx512,
    sv_accum_avx512,
};

}  // namespace

const AttentionKernels* avx512_attention_kernel() {
  return &kAvx512AttentionKernels;
}

}  // namespace qserve::cpu

#else  // non-x86 or non-GNU toolchain: AVX-512 path compiled out.

namespace qserve::cpu {
const AttentionKernels* avx512_attention_kernel() { return nullptr; }
}  // namespace qserve::cpu

#endif
