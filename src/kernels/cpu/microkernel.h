// INT8 dot-product microkernels behind the runtime ISA dispatch.
//
// One microkernel call accumulates a panel of `nr` output channels against a
// run of `kc` input channels for a single token:
//
//   acc[r] += sum_{c < kc} x[c] * w_panel[c, r]        (r in [0, nr))
//
// `w_panel` is the interleaved layout produced by pack_gemm_b()
// (kernels/weight_layout.h): input channels are grouped in fours ("k-groups",
// the granularity of vpdpbusd / vpmaddubsw), and within a k-group the `nr`
// rows are stored contiguously:
//
//   w_panel[(g * nr + r) * 4 + j] = code(row r, input channel g*4 + j)
//
// so one 64-byte vector load yields 16 rows x 4 input channels — the same
// fragment shape an MMA tile consumes on the GPU. `kc` is always a multiple
// of 4 (the packer zero-pads k).
//
// Numerics contract: every implementation produces the INT32 accumulator the
// scalar loop produces, bit for bit, for the full operand ranges
// (activations and signed weight codes in [-128, 127], unsigned codes in
// [0, 15]). Two ISA-specific tricks keep that true:
//  * AVX2 widens both operands to 16 bits and uses vpmaddwd — exact for all
//    int8 products (vpmaddubsw on sign-split operands would saturate or
//    mis-handle -128, which the naive-range overflow repro can emit).
//  * AVX-512 VNNI biases activations to unsigned (x ^ 0x80 = x + 128) and
//    uses vpdpbusd; the driver subtracts 128 * row_sum(w) once per output
//    (`bias_compensated`), restoring the exact sum.
// Integer addition is associative, so vector-lane order never matters.
#pragma once

#include <cstdint>

#include "kernels/cpu/isa.h"

namespace qserve::cpu {

// Input channels per packed k-group (vpdpbusd granularity).
inline constexpr int kKGroup = 4;

struct Microkernel {
  Isa isa;
  int nr;  // output channels per panel (vector width in INT32 lanes)
  // True if dot_s8 accumulates sum((x + 128) * w); the caller must subtract
  // 128 * row_sum afterwards. dot_u4 never needs compensation.
  bool bias_compensated;
  // Signed weight codes (W8A8 and pre-dequantized per-group W4A8 panels).
  void (*dot_s8)(const int8_t* x, const int8_t* w_panel, int64_t kc, int nr,
                 int32_t* acc);
  // Unsigned UINT4 codes stored one per byte (per-channel W4A8 panels).
  void (*dot_u4)(const int8_t* x, const uint8_t* w_panel, int64_t kc, int nr,
                 int32_t* acc);
};

// Dispatch table lookup; falls back to the scalar kernel if `isa` was not
// compiled into this binary (non-x86 builds).
const Microkernel& microkernel_for(Isa isa);

// Per-ISA factories (nullptr when compiled out). The scalar kernel accepts
// any nr; the vector kernels require nr == their fixed width.
const Microkernel* avx2_microkernel();
const Microkernel* avx512_microkernel();

}  // namespace qserve::cpu
