// AVX2 microkernels: 8 output channels per panel, one 32-byte weight load per
// k-group (8 rows x 4 input channels).
//
// Compiled via function-level target attributes so the translation unit
// builds regardless of -march; the dispatch in isa.cpp guarantees these are
// only called on hosts that support AVX2.
#include "kernels/cpu/microkernel.h"

#if defined(__x86_64__) && defined(__GNUC__)

#include <immintrin.h>

#include <cstring>

namespace qserve::cpu {

namespace {

constexpr int kNr = 8;

// Broadcast a 4-byte k-group of activations, sign-extended to 16 bits:
// lanes = {x0,x1,x2,x3} repeated four times.
__attribute__((target("avx2"))) inline __m256i broadcast_x16(const int8_t* x) {
  uint32_t word;
  std::memcpy(&word, x, sizeof(word));
  return _mm256_cvtepi8_epi16(_mm_set1_epi32(static_cast<int>(word)));
}

// Signed weights: widen both operands to int16 and vpmaddwd. Exact for the
// full int8 x int8 range (products <= 2^14, pair sums <= 2^15 — far inside
// int32), unlike vpmaddubsw sign-splitting which breaks on -128 operands.
__attribute__((target("avx2"))) void dot_s8_avx2(const int8_t* x,
                                                 const int8_t* w_panel,
                                                 int64_t kc, int nr,
                                                 int32_t* acc) {
  (void)nr;  // dispatch guarantees nr == kNr
  // Accumulate in "two partial int32 lanes per row" form; the pairs are
  // folded after the k loop. Integer adds commute, so this is still the
  // scalar accumulator bit for bit.
  __m256i acc_lo = _mm256_setzero_si256();  // rows 0-3
  __m256i acc_hi = _mm256_setzero_si256();  // rows 4-7
  const int64_t groups = kc / kKGroup;
  for (int64_t g = 0; g < groups; ++g) {
    const __m256i x16 = broadcast_x16(x + g * kKGroup);
    const __m256i wv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(w_panel + g * kNr * kKGroup));
    const __m256i w_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv));
    const __m256i w_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wv, 1));
    acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(w_lo, x16));
    acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(w_hi, x16));
  }
  // acc_lo = [r0a r0b r1a r1b | r2a r2b r3a r3b], acc_hi likewise for rows
  // 4-7. hadd folds pairs per 128-bit half: [r0 r1 r4 r5 | r2 r3 r6 r7].
  const __m256i folded = _mm256_hadd_epi32(acc_lo, acc_hi);
  const __m256i order = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  const __m256i rows = _mm256_permutevar8x32_epi32(folded, order);
  const __m256i prev =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc),
                      _mm256_add_epi32(prev, rows));
}

// Unsigned UINT4 codes (0..15): vpmaddubsw(w, x) is exact — byte products
// are at most 15*128, so the int16 pair sums never saturate.
__attribute__((target("avx2"))) void dot_u4_avx2(const int8_t* x,
                                                 const uint8_t* w_panel,
                                                 int64_t kc, int nr,
                                                 int32_t* acc) {
  (void)nr;
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i accv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc));
  const int64_t groups = kc / kKGroup;
  for (int64_t g = 0; g < groups; ++g) {
    uint32_t word;
    std::memcpy(&word, x + g * kKGroup, sizeof(word));
    const __m256i xb = _mm256_set1_epi32(static_cast<int>(word));
    const __m256i wv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(w_panel + g * kNr * kKGroup));
    const __m256i pairs = _mm256_maddubs_epi16(wv, xb);
    accv = _mm256_add_epi32(accv, _mm256_madd_epi16(pairs, ones));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc), accv);
}

constexpr Microkernel kAvx2Kernel = {
    Isa::kAvx2,
    kNr,
    /*bias_compensated=*/false,
    dot_s8_avx2,
    dot_u4_avx2,
};

}  // namespace

const Microkernel* avx2_microkernel() { return &kAvx2Kernel; }

}  // namespace qserve::cpu

#else  // non-x86 or non-GNU toolchain: AVX2 path compiled out.

namespace qserve::cpu {
const Microkernel* avx2_microkernel() { return nullptr; }
}  // namespace qserve::cpu

#endif
