// AVX-512 VNNI microkernels: 16 output channels per panel, one vpdpbusd per
// 64-byte weight load (16 rows x 4 input channels = 64 MACs per instruction).
//
// vpdpbusd multiplies unsigned bytes by signed bytes. The unsigned operand:
//  * dot_u4 — the UINT4 weight codes themselves (0..15), activations signed;
//  * dot_s8 — the activations biased by +128 (x ^ 0x80), weights signed. The
//    accumulator then holds sum((x+128)*w) = sum(x*w) + 128*sum(w); the
//    driver subtracts 128*row_sum(w) once per output (bias_compensated),
//    which is exact in two's-complement int32 for any operand values —
//    including the -128 weight codes the naive-range overflow repro emits.
#include "kernels/cpu/microkernel.h"

#if defined(__x86_64__) && defined(__GNUC__)

#include <immintrin.h>

#include <cstring>

namespace qserve::cpu {

namespace {

constexpr int kNr = 16;

#define QS_AVX512_TARGET \
  __attribute__((target("avx512f,avx512bw,avx512vnni")))

QS_AVX512_TARGET inline __m512i load_panel(const void* p) {
  return _mm512_loadu_si512(p);
}

QS_AVX512_TARGET inline __m512i broadcast_group(const int8_t* x) {
  uint32_t word;
  std::memcpy(&word, x, sizeof(word));
  return _mm512_set1_epi32(static_cast<int>(word));
}

QS_AVX512_TARGET void dot_s8_avx512(const int8_t* x, const int8_t* w_panel,
                                    int64_t kc, int nr, int32_t* acc) {
  (void)nr;  // dispatch guarantees nr == kNr
  const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
  __m512i a0 = _mm512_loadu_si512(acc);
  __m512i a1 = _mm512_setzero_si512();  // second chain hides vpdpbusd latency
  const int64_t groups = kc / kKGroup;
  int64_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    const __m512i x0 = _mm512_xor_si512(broadcast_group(x + g * kKGroup), bias);
    const __m512i x1 =
        _mm512_xor_si512(broadcast_group(x + (g + 1) * kKGroup), bias);
    a0 = _mm512_dpbusd_epi32(a0, x0,
                             load_panel(w_panel + g * kNr * kKGroup));
    a1 = _mm512_dpbusd_epi32(a1, x1,
                             load_panel(w_panel + (g + 1) * kNr * kKGroup));
  }
  if (g < groups) {
    const __m512i x0 = _mm512_xor_si512(broadcast_group(x + g * kKGroup), bias);
    a0 = _mm512_dpbusd_epi32(a0, x0,
                             load_panel(w_panel + g * kNr * kKGroup));
  }
  _mm512_storeu_si512(acc, _mm512_add_epi32(a0, a1));
}

QS_AVX512_TARGET void dot_u4_avx512(const int8_t* x, const uint8_t* w_panel,
                                    int64_t kc, int nr, int32_t* acc) {
  (void)nr;
  __m512i a0 = _mm512_loadu_si512(acc);
  __m512i a1 = _mm512_setzero_si512();
  const int64_t groups = kc / kKGroup;
  int64_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    a0 = _mm512_dpbusd_epi32(a0, load_panel(w_panel + g * kNr * kKGroup),
                             broadcast_group(x + g * kKGroup));
    a1 = _mm512_dpbusd_epi32(a1, load_panel(w_panel + (g + 1) * kNr * kKGroup),
                             broadcast_group(x + (g + 1) * kKGroup));
  }
  if (g < groups) {
    a0 = _mm512_dpbusd_epi32(a0, load_panel(w_panel + g * kNr * kKGroup),
                             broadcast_group(x + g * kKGroup));
  }
  _mm512_storeu_si512(acc, _mm512_add_epi32(a0, a1));
}

#undef QS_AVX512_TARGET

constexpr Microkernel kAvx512Kernel = {
    Isa::kAvx512,
    kNr,
    /*bias_compensated=*/true,
    dot_s8_avx512,
    dot_u4_avx512,
};

}  // namespace

const Microkernel* avx512_microkernel() { return &kAvx512Kernel; }

}  // namespace qserve::cpu

#else  // non-x86 or non-GNU toolchain: AVX-512 path compiled out.

namespace qserve::cpu {
const Microkernel* avx512_microkernel() { return nullptr; }
}  // namespace qserve::cpu

#endif
