// Attention microkernels over quantized KV page runs, behind the same
// runtime ISA dispatch as the GEMM microkernels (microkernel.h).
//
// One QK call computes, for every token in a contiguous page run, the dot
// product of a query head-vector against the token's key vector dequantized
// inline from its stored form (nibble-packed INT4, INT8 codes, FP16 bits, or
// already-dequantized floats for the gather path). One SV call accumulates
// the probability-weighted value vectors the same way. Neither kernel ever
// materializes a dequantized K/V matrix — the CPU counterpart of the QServe
// CUDA kernel that walks pages and dequantizes per head-vector (§5.3).
//
// Numerics contract: float summation is not associative, so — unlike the
// INT32 GEMM microkernels — vector-lane order matters. Every implementation
// therefore commits to one canonical reduction order, chosen to be the
// natural SIMD order so the vector kernels pay nothing for it:
//
//  * QK dot: 16 virtual lanes. Lane l accumulates the products q[d] *
//    dequant(k[d]) for d ≡ l (mod 16) in increasing d; the lanes are then
//    folded pairwise 16→8→4→2→1 (fold_qk_lanes below). The scalar kernel
//    keeps the 16 lanes in a float array; AVX2 holds them in two __m256
//    accumulators, AVX-512 in one __m512 — identical per-lane add sequences,
//    identical fold, bitwise-identical dots.
//  * SV: out[d] += p[t] * dequant(v_t[d]) with tokens strictly in run order.
//    The accumulation chain per output element is token-sequential at any
//    vector width, so this is order-stable by construction.
//
// Every dequantized element and every product/sum is computed mul-then-add
// with separate roundings: no FMA anywhere (the attention kernel TUs are
// compiled with -ffp-contract=off, and the vector kernels use mul_ps/add_ps,
// never fmadd). This is what makes scalar/AVX2/AVX-512 agree bit for bit —
// a property tests/test_attention_isa.cpp pins across KV formats, GQA
// shapes, and page-crossing lengths.
#pragma once

#include <cstdint>

#include "kernels/cpu/isa.h"

namespace qserve::cpu {

// Virtual accumulator lanes of the canonical QK reduction order.
inline constexpr int kQkLanes = 16;

// Canonical pairwise fold of the 16 QK lanes (16→8→4→2→1) — the order a
// SIMD horizontal reduce performs naturally. Pure adds: contraction-free by
// construction, so it is safe to inline into any TU.
inline float fold_qk_lanes(const float* lanes) {
  float s8[8], s4[4], s2[2];
  for (int l = 0; l < 8; ++l) s8[l] = lanes[l] + lanes[l + 8];
  for (int l = 0; l < 4; ++l) s4[l] = s8[l] + s8[l + 4];
  for (int l = 0; l < 2; ++l) s2[l] = s4[l] + s4[l + 2];
  return s2[0] + s2[1];
}

// Storage form of one KV head run (mirrors PagedKvCache's page layout plus
// the float form the gather path produces).
enum class KvRunKind : int {
  kF32 = 0,     // dequantized floats (gather / prefill path)
  kFp16,        // binary16 bits (KvPrecision::kFp16 pages)
  kInt8Dyn,     // unsigned INT8 codes + per-(token,head) FP16 scale/zero
  kInt8Static,  // signed INT8 codes + one static scale (TRT-LLM baseline)
  kInt4Dyn,     // nibble-packed UINT4 codes + per-(token,head) FP16 params
};

// One head's slice of a contiguous run of tokens (at most one KV page): the
// kernel-facing view PagedKvCache::SeqView::k_run/v_run produce. Exactly one
// of codes/half_bits/f32 is set, per `kind`. Strides are token-to-token:
// bytes for `codes`, elements for `half_bits`/`f32`, uint16 elements for
// `params` (which points at token 0's {scale_bits, zero_bits} pair).
struct KvHeadRun {
  KvRunKind kind = KvRunKind::kF32;
  int64_t n_tokens = 0;
  const uint8_t* codes = nullptr;
  const uint16_t* half_bits = nullptr;
  const float* f32 = nullptr;
  int64_t stride = 0;
  const uint16_t* params = nullptr;
  int64_t param_stride = 0;
  float static_scale = 1.0f;
};

struct AttentionKernels {
  Isa isa;
  // dots[t] = canonical-order dot of q[0..head_dim) against run token t's
  // dequantized key vector, for every t in [0, run.n_tokens). The caller
  // applies the 1/sqrt(D) scale and any FP16 rounding — the kernel returns
  // raw dots.
  void (*qk_dot)(const float* q, const KvHeadRun& run, int head_dim,
                 float* dots);
  // out[d] += p[t] * dequant(v_t[d]) for t in run order — accumulates into
  // `out`, so the caller zeroes it once and chains runs back to back.
  void (*sv_accum)(const float* p, const KvHeadRun& run, int head_dim,
                   float* out);
};

// Dispatch table lookup; falls back to the scalar kernels if `isa` was not
// compiled into this binary (non-x86 builds).
const AttentionKernels& attention_kernel_for(Isa isa);

// Per-ISA factories (nullptr when compiled out), mirroring microkernel.h.
const AttentionKernels* avx2_attention_kernel();
const AttentionKernels* avx512_attention_kernel();

}  // namespace qserve::cpu
