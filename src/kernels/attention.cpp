#include "kernels/attention.h"

#include <cmath>
#include <vector>

#include "common/half.h"
#include "common/math_util.h"
#include "common/parallel.h"

namespace qserve {

namespace {

// One head, one query vector, keys rows [0, s_visible). Scores buffer must
// hold s_visible floats.
void head_attention(const float* qh, const Tensor& k, const Tensor& v,
                    int64_t kv_head, int head_dim, int64_t s_visible,
                    bool fp16_accum, float* scores, float* out) {
  const float scale = 1.0f / std::sqrt(float(head_dim));
  const int64_t kv_stride = k.cols();
  for (int64_t t = 0; t < s_visible; ++t) {
    const float* kt = k.row(t) + kv_head * head_dim;
    float dot = 0.0f;
    for (int d = 0; d < head_dim; ++d) dot += qh[d] * kt[d];
    // QServe converts the QK product to FP16 (§5.3); the baseline keeps FP32.
    scores[t] = fp16_accum ? to_half_precision(dot * scale) : dot * scale;
  }
  softmax_inplace(scores, static_cast<int>(s_visible));
  for (int d = 0; d < head_dim; ++d) out[d] = 0.0f;
  for (int64_t t = 0; t < s_visible; ++t) {
    const float* vt = v.row(t) + kv_head * head_dim;
    const float p = scores[t];
    for (int d = 0; d < head_dim; ++d) out[d] += p * vt[d];
  }
  if (fp16_accum) {
    for (int d = 0; d < head_dim; ++d) out[d] = to_half_precision(out[d]);
  }
  (void)kv_stride;
}

}  // namespace

Tensor attention_prefill(const Tensor& q, const Tensor& k, const Tensor& v,
                         const AttentionConfig& cfg) {
  QS_CHECK_EQ(q.cols(), int64_t(cfg.n_heads) * cfg.head_dim);
  QS_CHECK_EQ(k.cols(), int64_t(cfg.n_kv_heads) * cfg.head_dim);
  QS_CHECK(k.same_shape(v));
  QS_CHECK_EQ(cfg.n_heads % cfg.n_kv_heads, 0);
  const int64_t n = q.rows(), s = k.rows();
  QS_CHECK_LE(n, s);
  const int group = cfg.n_heads / cfg.n_kv_heads;

  Tensor out({n, q.cols()});
  // Parallel over query positions; every (position, head) pair is
  // independent, so the result is bitwise identical to the serial loop.
  parallel_for(0, n, 1, [&](int64_t i0, int64_t i1) {
    // Reused per pool thread to keep per-row heap traffic off the hot path.
    thread_local std::vector<float> scores;
    scores.resize(static_cast<size_t>(s));
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t visible = s - n + i + 1;  // causal mask
      for (int h = 0; h < cfg.n_heads; ++h) {
        const float* qh = q.row(i) + int64_t(h) * cfg.head_dim;
        float* oh = out.row(i) + int64_t(h) * cfg.head_dim;
        head_attention(qh, k, v, h / group, cfg.head_dim, visible,
                       cfg.fp16_accum, scores.data(), oh);
      }
    }
  });
  return out;
}

void attention_decode_token(const float* q, const Tensor& k, const Tensor& v,
                            const AttentionConfig& cfg, float* out) {
  QS_CHECK_EQ(k.cols(), int64_t(cfg.n_kv_heads) * cfg.head_dim);
  QS_CHECK(k.same_shape(v));
  const int64_t s = k.rows();
  const int group = cfg.n_heads / cfg.n_kv_heads;
  parallel_for(0, cfg.n_heads, 1, [&](int64_t h0, int64_t h1) {
    // Reused per pool thread to keep per-head heap traffic off the hot path.
    thread_local std::vector<float> scores;
    scores.resize(static_cast<size_t>(s));
    for (int64_t h = h0; h < h1; ++h) {
      head_attention(q + h * cfg.head_dim, k, v, static_cast<int>(h) / group,
                     cfg.head_dim, s, cfg.fp16_accum, scores.data(),
                     out + h * cfg.head_dim);
    }
  });
}

}  // namespace qserve
